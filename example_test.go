package voltsense_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"voltsense"
)

// ExamplePlaceSensors demonstrates the methodology on synthetic data: two
// of five candidate sites drive the monitored voltages, and group lasso
// finds exactly those two.
func ExamplePlaceSensors() {
	rng := rand.New(rand.NewSource(1))
	const m, k, n = 5, 3, 400
	x := voltsense.ZeroMatrix(m, n)
	f := voltsense.ZeroMatrix(k, n)
	for j := 0; j < n; j++ {
		// Candidates 1 and 3 carry independent droop signals; the rest are
		// uninformative noise sites.
		d1, d3 := rng.NormFloat64(), rng.NormFloat64()
		for i := 0; i < m; i++ {
			switch i {
			case 1:
				x.Set(i, j, 0.95+0.02*d1)
			case 3:
				x.Set(i, j, 0.95+0.02*d3)
			default:
				x.Set(i, j, 0.95+0.01*rng.NormFloat64())
			}
		}
		for i := 0; i < k; i++ {
			f.Set(i, j, 0.90+0.015*d1+0.010*d3)
		}
	}
	ds := &voltsense.Dataset{X: x, F: f}
	pl, err := voltsense.PlaceSensors(ds, voltsense.PlacementConfig{Lambda: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("selected sensors:", pl.Selected)
	// Output:
	// selected sensors: [1 3]
}

// ExampleBuildPredictor fits the unbiased runtime model on the selected
// sensors and predicts a monitored voltage from raw readings.
func ExampleBuildPredictor() {
	// Monitored voltage = 0.4*x0 + 0.6*x1 - 0.05, exactly linear.
	x := voltsense.MatrixFromRows([][]float64{
		{0.90, 0.95, 1.00, 0.92, 0.97, 0.94},
		{0.93, 0.91, 0.99, 0.96, 0.90, 0.98},
	})
	f := voltsense.ZeroMatrix(1, 6)
	for j := 0; j < 6; j++ {
		f.Set(0, j, 0.4*x.At(0, j)+0.6*x.At(1, j)-0.05)
	}
	pred, err := voltsense.BuildPredictor(&voltsense.Dataset{X: x, F: f}, []int{0, 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	got := pred.Predict([]float64{0.95, 0.95})
	fmt.Printf("predicted %.4f V\n", got[0])
	// Output:
	// predicted 0.9000 V
}

// ExampleScoreDetection computes the paper's three error rates from truth
// and alarm streams.
func ExampleScoreDetection() {
	truth := []bool{true, true, false, false, true, false, false, false}
	alarm := []bool{true, false, false, true, true, false, false, false}
	r := voltsense.ScoreDetection(truth, alarm)
	fmt.Printf("ME=%.3f WAE=%.3f TE=%.3f\n", r.ME, r.WAE, r.TE)
	// Output:
	// ME=0.333 WAE=0.200 TE=0.250
}

// ExampleEmergencyTruth flags voltage maps containing an emergency.
func ExampleEmergencyTruth() {
	v := voltsense.MatrixFromRows([][]float64{
		{0.92, 0.83, 0.95},
		{0.91, 0.90, 0.84},
	})
	fmt.Println(voltsense.EmergencyTruth(v, voltsense.DefaultVth))
	// Output:
	// [false true true]
}

// ExamplePlaceEagleEye shows the baseline covering training emergencies
// with directly-thresholded sensors.
func ExamplePlaceEagleEye() {
	f := voltsense.MatrixFromRows([][]float64{{0.80, 0.82, 0.95, 0.96}})
	x := voltsense.MatrixFromRows([][]float64{
		{0.80, 0.90, 0.95, 0.95}, // covers emergency sample 0
		{0.90, 0.82, 0.95, 0.95}, // covers emergency sample 1
		{0.95, 0.95, 0.95, 0.95}, // covers nothing
	})
	p := voltsense.PlaceEagleEye(x, f, voltsense.DefaultVth, 2)
	fmt.Println("sensors:", p.Selected, "coverage:", p.Coverage)
	// Output:
	// sensors: [0 1] coverage: 1
}

// ExampleSweepLambda runs the budget/accuracy sweep of the paper's Section
// 2.4 and reports the shape of the tradeoff.
func ExampleSweepLambda() {
	rng := rand.New(rand.NewSource(2))
	const m, k, n = 8, 2, 600
	x := voltsense.ZeroMatrix(m, n)
	f := voltsense.ZeroMatrix(k, n)
	for j := 0; j < n; j++ {
		var drivers [3]float64
		for d := range drivers {
			drivers[d] = rng.NormFloat64()
		}
		for i := 0; i < m; i++ {
			if i < 3 {
				x.Set(i, j, 0.95+0.02*drivers[i])
			} else {
				x.Set(i, j, 0.95+0.01*rng.NormFloat64())
			}
		}
		f.Set(0, j, 0.9+0.01*drivers[0]+0.008*drivers[1])
		f.Set(1, j, 0.9+0.01*drivers[1]+0.008*drivers[2])
	}
	full := &voltsense.Dataset{X: x, F: f}
	train := full.Subset(seq(0, 400))
	test := full.Subset(seq(400, 600))
	pts, err := voltsense.SweepLambda(train, test, []float64{0.3, 3}, voltsense.PlacementConfig{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("small budget sensors:", pts[0].NumSensors)
	fmt.Println("large budget sensors:", pts[1].NumSensors)
	fmt.Println("error improved:", pts[1].RelError < pts[0].RelError)
	// Output:
	// small budget sensors: 2
	// large budget sensors: 3
	// error improved: true
}

func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// ExampleMonitorConfig shows the runtime monitor reacting to a droop in
// streamed predictions.
func ExampleMonitorConfig() {
	// A stub predictor that passes its single reading through.
	pred := passthrough{}
	mon, err := voltsense.NewMonitor(pred, 1, voltsense.MonitorConfig{Vth: 0.85}, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for cycle, v := range []float64{0.95, 0.80, 0.95, 0.95, 0.95} {
		for _, e := range mon.Process(cycle, []float64{v}) {
			fmt.Printf("cycle %d: %v at %.2f V\n", e.Cycle, e.Kind, e.Voltage)
		}
	}
	// Output:
	// cycle 1: raised at 0.80 V
	// cycle 3: cleared at 0.95 V
}

type passthrough struct{}

func (passthrough) Predict(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// ExampleScoreDetection_perfect shows that a perfect detector scores zero
// on every rate.
func ExampleScoreDetection_perfect() {
	truth := []bool{true, false, true}
	r := voltsense.ScoreDetection(truth, truth)
	fmt.Println(r.ME == 0 && r.WAE == 0 && r.TE == 0)
	// Output:
	// true
}

// ExampleTrainMapGenerator reconstructs a full field from two sensors when
// the field is linear in them.
func ExampleTrainMapGenerator() {
	rng := rand.New(rand.NewSource(3))
	const nodes, n = 6, 200
	sensors := voltsense.ZeroMatrix(2, n)
	field := voltsense.ZeroMatrix(nodes, n)
	for j := 0; j < n; j++ {
		a, b := 0.9+0.03*rng.NormFloat64(), 0.9+0.03*rng.NormFloat64()
		sensors.Set(0, j, a)
		sensors.Set(1, j, b)
		for i := 0; i < nodes; i++ {
			w := float64(i) / float64(nodes-1)
			field.Set(i, j, (1-w)*a+w*b)
		}
	}
	gen, err := voltsense.TrainMapGenerator(sensors, field)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m := gen.Generate([]float64{0.90, 0.88})
	fmt.Printf("ends: %.3f %.3f, midpoint ≈ %.3f\n", m[0], m[nodes-1], m[2])
	// Output:
	// ends: 0.900 0.880, midpoint ≈ 0.892
}

// ExampleSavePredictor round-trips a runtime model through its JSON form.
func ExampleSavePredictor() {
	x := voltsense.MatrixFromRows([][]float64{
		{0.90, 0.95, 1.00, 0.92, 0.97},
	})
	f := voltsense.ZeroMatrix(1, 5)
	for j := 0; j < 5; j++ {
		f.Set(0, j, 0.5*x.At(0, j)+0.4)
	}
	pred, err := voltsense.BuildPredictor(&voltsense.Dataset{X: x, F: f}, []int{0})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var buf strings.Builder
	if err := voltsense.SavePredictor(&buf, pred); err != nil {
		fmt.Println("error:", err)
		return
	}
	loaded, err := voltsense.LoadPredictor(strings.NewReader(buf.String()))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%.3f\n", loaded.Predict([]float64{1.0})[0])
	// Output:
	// 0.900
}

var _ = math.Pi // keep math imported for future examples
