// Command voltbench offers a configurable fleet workload — predict,
// feedback, calibrate, and NDJSON streaming sessions across many tenants —
// to a voltsense inference server and reports latency quantiles, throughput,
// and shed rates.
//
// By default it is self-contained: it synthesizes a tenant store, starts the
// fleet server in-process over pipe connections (no sockets, so thousands of
// concurrent streams fit in one process), and drives it. Point it at a live
// deployment instead with -addr.
//
// -calibrate-every folds few-shot /v1/calibrate alignments into the unary
// mix. In-process mode then pools the synthetic tenant artifacts into a
// golden voltsense-prior/v1 and serves in fleet mode, so calibrations write
// real thin delta artifacts under live traffic; against -addr, the remote
// server must have been started with -prior.
//
// The output JSON is benchreport-compatible — `benchreport -compare
// BENCH_PR9.json new.json` diffs the mean latencies like any other
// benchmark — with a "fleet" section carrying the full quantile and shed
// breakdown.
//
// Usage:
//
//	go run ./cmd/voltbench -tenants 8 -streams 1000 -requests 2000 -calibrate-every 50 -out BENCH_PR9.json
//	go run ./cmd/voltbench -addr http://prod:8080 -tenants 4 -streams 64
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"voltsense/internal/core"
	"voltsense/internal/loadgen"
	"voltsense/internal/monitor"
	"voltsense/internal/serve"
	"voltsense/internal/transfer"
)

func main() {
	var (
		out      = flag.String("out", "BENCH_PR9.json", "output JSON path")
		addr     = flag.String("addr", "", "base URL of a live server; empty serves in-process")
		store    = flag.String("store", "", "existing tenant store for in-process mode; empty synthesizes one")
		tenants  = flag.Int("tenants", 8, "number of tenants to spread load across")
		sensors  = flag.Int("sensors", 2, "sensors per synthetic tenant model (reading width)")
		blocks   = flag.Int("blocks", 3, "blocks per synthetic tenant model (voltage width)")
		workers  = flag.Int("workers", 8, "concurrent unary clients")
		requests = flag.Int("requests", 2000, "total unary requests (predict + feedback)")
		fbEvery  = flag.Int("feedback-every", 8, "every Nth unary request is feedback; 0 disables")
		calEvery = flag.Int("calibrate-every", 0, "every Nth unary request is a /v1/calibrate few-shot alignment; 0 disables")
		streams  = flag.Int("streams", 1000, "concurrent NDJSON sessions to open and hold")
		cycles   = flag.Int("cycles", 3, "cycles pumped per accepted session")

		maxInflight = flag.Int("max-inflight", 0, "in-process server: unary admission slots; 0 unlimited")
		maxQueue    = flag.Int("max-queue", 0, "in-process server: admission queue depth")
		maxStreams  = flag.Int("max-streams", 0, "in-process server: global stream cap; 0 unlimited")
		maxTenantSt = flag.Int("max-tenant-streams", 0, "in-process server: per-tenant stream cap; 0 unlimited")
	)
	flag.Parse()

	ids := tenantIDs(*tenants)
	target, shutdown, err := buildTarget(*addr, *store, ids, *sensors, *blocks, *calEvery > 0, serve.Overload{
		MaxInflight:      *maxInflight,
		MaxQueue:         *maxQueue,
		MaxStreams:       *maxStreams,
		MaxTenantStreams: *maxTenantSt,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "voltbench: %v\n", err)
		os.Exit(1)
	}
	defer shutdown()

	rep, err := loadgen.Run(target, loadgen.Options{
		Tenants:        ids,
		Sensors:        *sensors,
		Blocks:         *blocks,
		Workers:        *workers,
		Requests:       *requests,
		FeedbackEvery:  *fbEvery,
		CalibrateEvery: *calEvery,
		Streams:        *streams,
		StreamCycles:   *cycles,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "voltbench: %v\n", err)
		os.Exit(1)
	}

	if err := writeReport(*out, rep); err != nil {
		fmt.Fprintf(os.Stderr, "voltbench: %v\n", err)
		os.Exit(1)
	}
	printSummary(*out, rep)
}

// tenantIDs names n tenants; the first is "default" so unlabeled requests
// exercise the single-tenant compatibility path too.
func tenantIDs(n int) []string {
	if n < 1 {
		n = 1
	}
	ids := []string{"default"}
	for i := 1; i < n; i++ {
		ids = append(ids, fmt.Sprintf("chip%03d", i))
	}
	return ids
}

// buildTarget either points at a live server or synthesizes a store and
// serves it in-process over pipe connections. With calibrate set, the
// in-process server also gets a golden prior pooled from the synthetic
// artifact family, so /v1/calibrate is live (fleet mode).
func buildTarget(addr, store string, ids []string, sensors, blocks int, calibrate bool, ov serve.Overload) (loadgen.Target, func(), error) {
	if addr != "" {
		return loadgen.Target{BaseURL: addr, Client: http.DefaultClient}, func() {}, nil
	}
	cleanup := func() {}
	if store == "" {
		dir, err := os.MkdirTemp("", "voltbench-store-")
		if err != nil {
			return loadgen.Target{}, nil, err
		}
		cleanup = func() { os.RemoveAll(dir) }
		for i, id := range ids {
			if err := os.WriteFile(filepath.Join(dir, id+".json"), syntheticArtifact(sensors, blocks, i), 0o644); err != nil {
				cleanup()
				return loadgen.Target{}, nil, err
			}
		}
		store = dir
	}
	var prior *transfer.SharedPrior
	if calibrate {
		var err error
		if prior, err = syntheticPrior(sensors, blocks); err != nil {
			cleanup()
			return loadgen.Target{}, nil, err
		}
	}
	s, err := newServer(store, prior, ov)
	if err != nil {
		cleanup()
		return loadgen.Target{}, nil, err
	}
	target, stop := loadgen.ServeInProcess(s.Handler())
	return target, func() { stop(); cleanup() }, nil
}

func newServer(store string, prior *transfer.SharedPrior, ov serve.Overload) (*serve.Server, error) {
	return serve.New(serve.Config{
		StoreDir:   store,
		MaxTenants: 4096, // the bench offers the fleet; don't evict under it
		Monitor:    monitor.Config{Vth: 0.85, ClearMargin: 0.02, ClearCycles: 2},
		Adapt:      true,
		Overload:   ov,
		Prior:      prior,
	})
}

// syntheticPrior pools a few members of the synthetic artifact family into a
// shared golden prior, the same distillation a real fleet runs over its
// characterized golden chips.
func syntheticPrior(q, k int) (*transfer.SharedPrior, error) {
	goldens := make([]*core.Predictor, 0, 3)
	for seed := 0; seed < 3; seed++ {
		p, err := core.LoadPredictor(bytes.NewReader(syntheticArtifact(q, k, seed)))
		if err != nil {
			return nil, fmt.Errorf("synthetic golden %d: %w", seed, err)
		}
		goldens = append(goldens, p)
	}
	return transfer.FitPrior(goldens, transfer.PriorConfig{})
}

// syntheticArtifact emits a valid voltsense-predictor/v1 with Q sensors and
// K blocks; the tenant seed perturbs coefficients so tenants differ.
func syntheticArtifact(q, k, seed int) []byte {
	sel := make([]int, q)
	alpha := make([][]float64, k)
	c := make([]float64, k)
	for j := range sel {
		sel[j] = j
	}
	for i := range alpha {
		row := make([]float64, q)
		for j := range row {
			row[j] = (1 + 0.01*float64((seed+i+j)%7)) / float64(q)
		}
		alpha[i] = row
	}
	b, _ := json.MarshalIndent(map[string]any{
		"format":           "voltsense-predictor/v1",
		"selected_sensors": sel,
		"alpha":            alpha,
		"c":                c,
	}, "", "  ")
	return append(b, '\n')
}

// benchEntry and benchFile mirror cmd/benchreport's report schema so
// -compare works on voltbench output unchanged; the fleet section rides
// along as an extra key benchreport ignores.
type benchEntry struct {
	Name       string  `json:"name"`
	Package    string  `json:"package"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

type benchFile struct {
	GeneratedAt string          `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	BenchTime   string          `json:"benchtime"`
	Benchmarks  []benchEntry    `json:"benchmarks"`
	Fleet       *loadgen.Report `json:"fleet"`
}

func writeReport(path string, rep *loadgen.Report) error {
	f := benchFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		BenchTime:   time.Duration(rep.WallNs).Round(time.Millisecond).String(),
		Fleet:       rep,
	}
	add := func(name string, st loadgen.OpStats) {
		if st.Count == 0 {
			return
		}
		f.Benchmarks = append(f.Benchmarks, benchEntry{
			Name: name, Package: "cmd/voltbench", Iterations: st.Count, NsPerOp: st.MeanNs,
		})
	}
	add("BenchmarkFleetPredict", rep.Predict)
	add("BenchmarkFleetFeedback", rep.Feedback)
	add("BenchmarkFleetCalibrate", rep.Calibrate)
	add("BenchmarkFleetStreamOpen", rep.StreamOpen)
	add("BenchmarkFleetStreamCycle", rep.StreamCycle)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func printSummary(path string, rep *loadgen.Report) {
	ms := func(ns float64) float64 { return ns / 1e6 }
	fmt.Printf("wrote %s\n", path)
	fmt.Printf("  tenants %d, wall %s, shed %d (rate %.3f)\n",
		rep.Tenants, time.Duration(rep.WallNs).Round(time.Millisecond), rep.ShedTotal, rep.ShedRate)
	line := func(name string, st loadgen.OpStats) {
		if st.Count == 0 && st.Shed == 0 && st.Errors == 0 {
			return
		}
		fmt.Printf("  %-12s n=%-6d err=%-4d shed=%-4d p50=%.2fms p95=%.2fms p99=%.2fms %.0f ops/s\n",
			name, st.Count, st.Errors, st.Shed, ms(st.P50Ns), ms(st.P95Ns), ms(st.P99Ns), st.OpsPerSec)
	}
	line("predict", rep.Predict)
	line("feedback", rep.Feedback)
	line("calibrate", rep.Calibrate)
	line("stream_open", rep.StreamOpen)
	line("stream_cycle", rep.StreamCycle)
	fmt.Printf("  streams: requested %d, peak concurrent %d\n", rep.Streams, rep.PeakStreams)
}
