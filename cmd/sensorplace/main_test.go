package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"voltsense/internal/mat"
	"voltsense/internal/traceio"
)

func randm(rng *rand.Rand, r, c int) *mat.Matrix {
	m := mat.Zeros(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// synthData writes a rank-4 latent-factor dataset (20 candidates, 5 monitored
// nodes, 120 samples) as the two CSVs run expects, returning their paths.
func synthData(t *testing.T) (xPath, fPath string) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	h := randm(rng, 4, 120)
	x := mat.Mul(randm(rng, 20, 4), h)
	f := mat.Mul(randm(rng, 5, 4), h)
	for i := 0; i < x.Rows(); i++ {
		for j := 0; j < x.Cols(); j++ {
			// Voltage-like offsets; the tiny noise keeps OLS refits well-posed
			// when more sensors than latent factors are selected.
			x.Set(i, j, 1+0.05*x.At(i, j)+1e-4*rng.NormFloat64())
		}
	}
	for i := 0; i < f.Rows(); i++ {
		for j := 0; j < f.Cols(); j++ {
			f.Set(i, j, 1+0.05*f.At(i, j))
		}
	}
	dir := t.TempDir()
	write := func(name string, m *mat.Matrix) string {
		path := filepath.Join(dir, name)
		w, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		if err := traceio.WriteMatrixCSV(w, m, nil); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write("x.csv", x), write("f.csv", f)
}

func TestRunCriterionPlacement(t *testing.T) {
	xPath, fPath := synthData(t)
	for _, crit := range []string{"qrpivot", "dopt", "eopt"} {
		var out bytes.Buffer
		err := run([]string{"-x", xPath, "-f", fPath, "-count", "5", "-criterion", crit}, &out)
		if err != nil {
			t.Fatalf("%s: %v\n%s", crit, err, out.String())
		}
		if !strings.Contains(out.String(), crit+" selected 5 sensors") {
			t.Errorf("%s: missing selection line in output:\n%s", crit, out.String())
		}
		if !strings.Contains(out.String(), "held-out relative prediction error") {
			t.Errorf("%s: missing held-out accuracy line:\n%s", crit, out.String())
		}
	}
}

func TestRunMixedBudget(t *testing.T) {
	xPath, fPath := synthData(t)
	var out bytes.Buffer
	err := run([]string{"-x", xPath, "-f", fPath, "-budget", "16", "-rank", "3",
		"-class-noise", "0.004,0.05"}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "budget 16 placed") {
		t.Errorf("missing mixed placement line in output:\n%s", out.String())
	}
}

// TestRunFlagConflicts pins every mutual-exclusion rule the usage text
// documents: each conflicting combination must fail fast with a message
// naming the clash, before any data is read.
func TestRunFlagConflicts(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"lambda and count", []string{"-lambda", "0.1", "-count", "4"}, "exactly one of -lambda or -count"},
		{"neither lambda nor count", nil, "exactly one of -lambda or -count"},
		{"criterion with lambda", []string{"-criterion", "dopt", "-lambda", "0.1"}, "use -count, not -lambda"},
		{"unknown criterion", []string{"-criterion", "bogus", "-count", "4"}, "unknown criterion"},
		{"budget with count", []string{"-budget", "8", "-count", "4"}, "-budget replaces -lambda/-count"},
		{"budget with criterion", []string{"-budget", "8", "-criterion", "dopt"}, "mixed-class greedy"},
		{"budget with fallbacks", []string{"-budget", "8", "-fallback-budget", "1"}, "cannot combine"},
		{"class-noise without budget", []string{"-count", "4", "-class-noise", "0.01,0.04"}, "only applies to -budget"},
		{"malformed class-noise", []string{"-budget", "8", "-class-noise", "0.01"}, "want REFVAR,LOWVAR"},
		{"rank and energy", []string{"-count", "4", "-rank", "2", "-energy", "0.9"}, "at most one of -rank and -energy"},
	}
	xPath, fPath := synthData(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(append([]string{"-x", xPath, "-f", fPath}, tc.args...), &out)
			if err == nil {
				t.Fatalf("expected error containing %q, got success:\n%s", tc.want, out.String())
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
