// Command sensorplace runs the DAC 2015 sensor-placement methodology on
// user-supplied voltage samples, so the library can be applied to data from
// any power-grid simulator or silicon instrumentation without writing Go.
//
// Inputs are two CSV files with one header row and one row per simultaneous
// sample (see internal/traceio): -x holds the candidate-site voltages, -f
// the monitored-node voltages. The tool selects sensors — by the paper's
// group lasso at a fixed budget (-lambda) or targeting a sensor count
// (-count), or by any registered placement criterion (-criterion, see
// DESIGN.md §13) at a sensor count — refits the unbiased prediction model,
// reports held-out accuracy, and optionally writes the runtime model as
// JSON (-model) for deployment.
//
// With -budget the tool instead spends a cost budget across heterogeneous
// sensor classes (reference vs low-cost devices, priced and noise-rated by
// -class-noise) and refits by GLS so each sensor is weighted by its
// precision.
//
// With -fallback-budget the artifact additionally carries leave-k-out
// fallback submodels so voltserved can survive up to that many sensor
// failures at runtime (see internal/faults). With -rank or -energy the
// group-lasso selection runs in a POD compression of the monitored nodes —
// same methodology at O(r/K) of the solver cost (see internal/basis); for
// criterion-driven placement the same flags size the candidate POD basis
// instead. Flag precedence when combined: -fallback-budget always forces
// the dense leave-k-out refit, so -rank/-energy then accelerate only the
// selection, not the refit.
//
//	sensorplace -x candidates.csv -f blocks.csv -count 4 -fallback-budget 1 -model model.json
//	sensorplace -x candidates.csv -f blocks.csv -count 8 -criterion qrpivot
//	sensorplace -x candidates.csv -f blocks.csv -budget 24 -class-noise 0.0025,0.04
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"voltsense/internal/basis"
	"voltsense/internal/core"
	"voltsense/internal/lasso"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
	"voltsense/internal/place"
	"voltsense/internal/profiling"
	"voltsense/internal/traceio"
)

// startProfiles hooks the -cpuprofile/-memprofile flags up to the shared
// profiling helper; the returned stop writes both files.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	return profiling.Start(cpuPath, memPath)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sensorplace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sensorplace", flag.ContinueOnError)
	xPath := fs.String("x", "", "CSV of candidate-site voltage samples (required)")
	fPath := fs.String("f", "", "CSV of monitored-node voltage samples (required)")
	lambda := fs.Float64("lambda", 0, "group-lasso budget λ (mutually exclusive with -count)")
	count := fs.Int("count", 0, "target sensor count (mutually exclusive with -lambda)")
	threshold := fs.Float64("threshold", core.DefaultThreshold, "group-norm selection threshold T")
	holdout := fs.Float64("holdout", 0.25, "fraction of samples reserved for accuracy reporting")
	modelPath := fs.String("model", "", "write the fitted runtime model as JSON to this path")
	criterion := fs.String("criterion", "grouplasso", "placement criterion ("+strings.Join(place.Names(), ", ")+"); non-grouplasso criteria require -count and refuse -lambda (see DESIGN.md §13)")
	budget := fs.Float64("budget", 0, "mixed-class cost budget: place reference and low-cost sensors until the budget runs out and refit by GLS (mutually exclusive with -lambda/-count/-criterion/-fallback-budget)")
	classNoise := fs.String("class-noise", "", "per-class noise variances REFVAR,LOWVAR for -budget placement (default 0.0025,0.04)")
	fallbackBudget := fs.Int("fallback-budget", 0, "fit leave-k-out fallback submodels tolerating up to this many failed sensors (0 = none); takes precedence over -rank/-energy for the refit, which then stays dense")
	rank := fs.Int("rank", 0, "rank-r POD basis: compresses the monitored nodes for group lasso, sizes the candidate basis for other criteria (0 = default)")
	energyFrac := fs.Float64("energy", 0, "smallest POD basis capturing this energy fraction, e.g. 0.99; same role as -rank (0 = default)")
	sparseWorkers := fs.Int("sparse-workers", 0, "bound the shared worker pool of the matrix and solver kernels (0 = all cores, 1 = serial); results are identical either way")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := fs.String("memprofile", "", "write a heap profile to this path on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sparseWorkers < 0 {
		return fmt.Errorf("-sparse-workers must be >= 0, got %d", *sparseWorkers)
	}
	if *sparseWorkers > 0 {
		mat.SetParallelism(*sparseWorkers)
	}
	stopProf, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "sensorplace: profiling:", err)
		}
	}()
	if *xPath == "" || *fPath == "" {
		fs.Usage()
		return errors.New("both -x and -f are required")
	}
	crit, err := place.ParseCriterion(*criterion)
	if err != nil {
		return err
	}
	critDriven := crit.Name() != "grouplasso"
	mixed := *budget > 0
	if mixed {
		if *lambda > 0 || *count > 0 {
			return errors.New("-budget replaces -lambda/-count: the cost budget determines the sensor count")
		}
		if critDriven {
			return errors.New("-budget runs its own mixed-class greedy; drop -criterion")
		}
		if *fallbackBudget > 0 {
			return errors.New("-fallback-budget needs the dense homogeneous refit and cannot combine with the GLS refit of -budget")
		}
	} else {
		if *classNoise != "" {
			return errors.New("-class-noise only applies to -budget mixed placement")
		}
		if (*lambda > 0) == (*count > 0) {
			return errors.New("specify exactly one of -lambda or -count (or a mixed-class -budget)")
		}
		if critDriven && *lambda > 0 {
			return fmt.Errorf("-criterion %s selects by sensor count; use -count, not -lambda", crit.Name())
		}
	}
	if *holdout < 0 || *holdout >= 1 {
		return fmt.Errorf("-holdout %v out of [0, 1)", *holdout)
	}
	if *rank > 0 && *energyFrac > 0 {
		return errors.New("specify at most one of -rank and -energy")
	}
	reduced := *rank > 0 || *energyFrac > 0
	bc := basis.Config{Rank: *rank, Energy: *energyFrac}

	xf, err := os.Open(*xPath)
	if err != nil {
		return err
	}
	defer xf.Close()
	ff, err := os.Open(*fPath)
	if err != nil {
		return err
	}
	defer ff.Close()
	rawX, xNames, err := traceio.ReadMatrixCSV(xf)
	if err != nil {
		return fmt.Errorf("reading -x: %w", err)
	}
	rawF, _, err := traceio.ReadMatrixCSV(ff)
	if err != nil {
		return fmt.Errorf("reading -f: %w", err)
	}
	if rawX.Cols() != rawF.Cols() {
		return fmt.Errorf("-x has %d samples, -f has %d", rawX.Cols(), rawF.Cols())
	}
	full := &core.Dataset{X: rawX, F: rawF}
	fmt.Fprintf(out, "loaded %d candidates x %d samples, %d monitored nodes\n",
		full.X.Rows(), full.X.Cols(), full.F.Rows())

	train, test := split(full, *holdout)

	var selected []int
	var pred *core.Predictor // set early by the mixed path, which refits by GLS
	cc := core.CriterionConfig{Basis: bc, Threshold: *threshold, Solver: lasso.Options{MaxIter: 3000, Tol: 1e-7}}
	switch {
	case mixed:
		spec := place.DefaultClassSpec
		if *classNoise != "" {
			if spec.RefVar, spec.LowCostVar, err = parseClassNoise(*classNoise); err != nil {
				return err
			}
		}
		mp, prob, err := core.PlaceMixedSensors(train, spec, *budget, cc)
		if err != nil {
			return err
		}
		selected = mp.Selected
		ref, low := mp.CountByClass()
		fmt.Fprintf(out, "budget %g placed %d sensors (%d reference, %d low-cost, cost %g)\n",
			*budget, len(selected), ref, low, mp.Cost)
		pred, err = core.BuildGLSPredictor(prob, mp.Selected, mp.NoiseVariances(spec))
		if err != nil {
			return err
		}
	case critDriven:
		cp, err := core.PlaceWith(train, crit, *count, cc)
		if err != nil {
			return err
		}
		selected = cp.Selected
		fmt.Fprintf(out, "%s selected %d sensors (candidate POD rank %d)\n",
			crit.Name(), len(selected), cp.Problem.Rank())
	case *lambda > 0 && reduced:
		pl, err := core.PlaceSensorsReduced(train, core.Config{Lambda: *lambda, Threshold: *threshold}, bc)
		if err != nil {
			return err
		}
		selected = pl.Selected
		fmt.Fprintf(out, "λ=%g selected %d sensors (POD rank %d, %.4f%% energy)\n",
			*lambda, len(selected), pl.Basis.Rank(), 100*pl.Basis.EnergyCaptured())
	case *lambda > 0:
		pl, err := core.PlaceSensors(train, core.Config{Lambda: *lambda, Threshold: *threshold})
		if err != nil {
			return err
		}
		selected = pl.Selected
		fmt.Fprintf(out, "λ=%g selected %d sensors\n", *lambda, len(selected))
	default:
		sel, mu, b, err := placeForCount(train, *count, *threshold, reduced, bc)
		if err != nil {
			return err
		}
		selected = sel
		if b != nil {
			fmt.Fprintf(out, "count targeting reached %d sensors (μ=%.4g, POD rank %d, %.4f%% energy)\n",
				len(selected), mu, b.Rank(), 100*b.EnergyCaptured())
		} else {
			fmt.Fprintf(out, "count targeting reached %d sensors (μ=%.4g)\n", len(selected), mu)
		}
	}
	if len(selected) == 0 {
		return errors.New("no sensors selected; increase -lambda or check the data")
	}
	fmt.Fprintf(out, "selected candidate indices: %v\n", selected)
	names := make([]string, len(selected))
	for i, s := range selected {
		names[i] = xNames[s]
	}
	fmt.Fprintf(out, "selected candidate names:   %v\n", names)

	switch {
	case pred != nil:
		// Mixed placement already refit by GLS above.
	case *fallbackBudget > 0:
		// The fallback machinery refits dense leave-k-out submodels; the
		// reduced basis (when requested) still accelerated the selection.
		pred, err = core.BuildPredictorWithFallbacks(train, selected, *fallbackBudget)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "fitted %d fallback submodels (budget %d failed sensors)\n",
			len(pred.Fallbacks.Models), *fallbackBudget)
	case reduced && !critDriven:
		var rb *basis.Basis
		pred, rb, err = core.BuildReducedPredictor(train, selected, bc)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "refit in POD coefficient space (rank %d, %.4f%% energy)\n",
			rb.Rank(), 100*rb.EnergyCaptured())
	default:
		pred, err = core.BuildPredictor(train, selected)
		if err != nil {
			return err
		}
	}
	if test != nil {
		rel := ols.RelativeError(pred.PredictDataset(test), test.F)
		fmt.Fprintf(out, "held-out relative prediction error: %.4f%%\n", 100*rel)
	}
	if *modelPath != "" {
		mf, err := os.Create(*modelPath)
		if err != nil {
			return err
		}
		defer mf.Close()
		if err := pred.Save(mf); err != nil {
			return err
		}
		fmt.Fprintf(out, "runtime model written to %s\n", *modelPath)
	}
	return nil
}

// parseClassNoise parses "REFVAR,LOWVAR" into the two class noise variances.
func parseClassNoise(s string) (refVar, lowVar float64, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-class-noise %q: want REFVAR,LOWVAR", s)
	}
	if refVar, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64); err != nil {
		return 0, 0, fmt.Errorf("-class-noise reference variance: %w", err)
	}
	if lowVar, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64); err != nil {
		return 0, 0, fmt.Errorf("-class-noise low-cost variance: %w", err)
	}
	return refVar, lowVar, nil
}

// split reserves the trailing holdout fraction for testing.
func split(ds *core.Dataset, holdout float64) (train, test *core.Dataset) {
	n := ds.X.Cols()
	nTest := int(float64(n) * holdout)
	if nTest < 1 {
		return ds, nil
	}
	trainCols := make([]int, 0, n-nTest)
	testCols := make([]int, 0, nTest)
	for j := 0; j < n-nTest; j++ {
		trainCols = append(trainCols, j)
	}
	for j := n - nTest; j < n; j++ {
		testCols = append(testCols, j)
	}
	return ds.Subset(trainCols), ds.Subset(testCols)
}

// placeForCount bisects the penalized multiplier to land q sensors, trimming
// to the strongest groups when the count cannot land exactly. The whole
// search runs on one warm-started path solver: a single Gram build, each
// midpoint solve starting from the previous solution with safe screening —
// the same ≤40 solves as before at a fraction of the cost. With reduced
// set, the targets are first projected onto a POD basis (bc picks the
// rank), so every one of those solves costs O(r/K) of the dense version;
// the fitted basis is returned for reporting (nil on the dense path).
func placeForCount(ds *core.Dataset, q int, threshold float64, reduced bool, bc basis.Config) ([]int, float64, *basis.Basis, error) {
	if q < 1 || q > ds.X.Rows() {
		return nil, 0, nil, fmt.Errorf("count %d out of range 1..%d", q, ds.X.Rows())
	}
	z, _ := mat.Standardize(ds.X)
	g, _ := mat.Standardize(ds.F)
	var b *basis.Basis
	if reduced {
		var err error
		b, err = basis.Fit(g, bc)
		if err != nil {
			return nil, 0, nil, err
		}
		g, err = b.Project(g)
		if err != nil {
			return nil, 0, nil, err
		}
	}
	ps := lasso.NewPathSolver(z, g, lasso.Options{MaxIter: 3000, Tol: 1e-7})
	lo, hi := 0.0, ps.MuMax()
	var best *lasso.Result
	bestCount := -1
	var bestMu float64
	for it := 0; it < 40; it++ {
		mu := (lo + hi) / 2
		r, _, err := ps.SolvePenalized(mu)
		if err != nil && !errors.Is(err, lasso.ErrDidNotConverge) {
			return nil, mu, nil, err
		}
		n := len(r.Select(threshold))
		if n >= q && (bestCount < 0 || n < bestCount) {
			best, bestCount, bestMu = r, n, mu
		}
		if n == q {
			break
		}
		if n > q {
			lo = mu
		} else {
			hi = mu
		}
	}
	if best == nil {
		return nil, 0, nil, fmt.Errorf("could not reach %d sensors", q)
	}
	sel := best.Select(threshold)
	if len(sel) > q {
		sort.Slice(sel, func(a, b int) bool { return best.GroupNorms[sel[a]] > best.GroupNorms[sel[b]] })
		sel = sel[:q]
		sort.Ints(sel)
	}
	return sel, bestMu, b, nil
}
