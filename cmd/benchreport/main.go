// Command benchreport runs the repository's benchmark suite and writes a
// machine-readable summary, including the speedup of each parallel or
// warm-started implementation over its serial/cold baseline. `make bench`
// invokes it to produce BENCH_PR10.json; CI runs the same benchmarks once per
// commit and diffs them against the committed baseline.
//
// Usage:
//
//	go run ./cmd/benchreport [-out BENCH_PR10.json] [-benchtime 100ms] [-bench .]
//	go run ./cmd/benchreport -compare old.json new.json [-tolerance 0.25]
//	go run ./cmd/benchreport -trajectory [dir]
//
// Compare mode never fails the build: micro-benchmarks on shared CI runners
// are noisy, so regressions beyond the tolerance are reported as warnings
// for a human to read, not as a flaky red X.
//
// Trajectory mode reads every committed BENCH_*.json in the given directory
// (default .) in PR order and prints how each benchmark and speedup pair
// evolved across the PRs that recorded it — the repository's performance
// history at a glance.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// benchPackages is the suite the report covers: the kernel layer, the solver
// hot loops (cold and path), the banded factor, the transient engine, the
// experiment pipeline (placement sweep + trace collection), the inference
// server, the online recalibration loop (rank-1 update + shadow scoring),
// and the placement criteria (greedy optimal design).
var benchPackages = []string{
	"./internal/mat/",
	"./internal/lasso/",
	"./internal/banded/",
	"./internal/sparse/",
	"./internal/pdn/",
	"./internal/experiments/",
	"./internal/serve/",
	"./internal/online/",
	"./internal/place/",
}

// speedupPairs maps each parallel/blocked/warm-started benchmark to the
// serial or cold baseline it is measured against. Names are as reported by
// `go test -bench`, without the -GOMAXPROCS suffix.
var speedupPairs = []struct{ Kernel, Baseline string }{
	{"BenchmarkMul128", "BenchmarkMulSerial128"},
	{"BenchmarkMul256", "BenchmarkMulSerial256"},
	{"BenchmarkMul512", "BenchmarkMulSerial512"},
	{"BenchmarkMulTGram", "BenchmarkMulTGramSerial"},
	{"BenchmarkSolvePathWarm", "BenchmarkSolvePathCold"},
	{"BenchmarkPlacementPathWarm", "BenchmarkPlacementColdPerPoint"},
	{"BenchmarkCollectParallel", "BenchmarkCollectSerial"},
	{"BenchmarkNewSimulator512Sparse", "BenchmarkNewSimulator512Banded"},
	{"BenchmarkSpMVParallel", "BenchmarkSpMVSerial"},
	{"BenchmarkICApplyParallel", "BenchmarkICApplySerial"},
	{"BenchmarkSolveBatch", "BenchmarkSolveLooped"},
	{"BenchmarkStepSparse1024Parallel", "BenchmarkStepSparse1024Serial"},
	{"BenchmarkStepBatch512", "BenchmarkStepLooped512"},
	{"BenchmarkPlaceChipReduced", "BenchmarkPlaceChipDense"},
	{"BenchmarkPlaceChipPathReduced", "BenchmarkPlaceChipPathDense"},
	{"BenchmarkDOptSherman", "BenchmarkDOptNaive"},
}

type benchResult struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type speedup struct {
	Kernel     string  `json:"kernel"`
	Baseline   string  `json:"baseline"`
	KernelNs   float64 `json:"kernel_ns_per_op"`
	BaselineNs float64 `json:"baseline_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

type report struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	BenchTime   string        `json:"benchtime"`
	Benchmarks  []benchResult `json:"benchmarks"`
	Speedups    []speedup     `json:"speedups"`
}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output JSON path")
	benchTime := flag.String("benchtime", "100ms", "go test -benchtime value")
	pattern := flag.String("bench", ".", "go test -bench pattern")
	compareWith := flag.String("compare", "", "baseline report JSON; compare the report named by the positional argument against it instead of running benchmarks")
	tolerance := flag.Float64("tolerance", 0.25, "relative ns/op drift tolerated in -compare mode before a benchmark is flagged")
	trajectory := flag.Bool("trajectory", false, "summarize every committed BENCH_*.json (in the optional positional dir) across PRs instead of running benchmarks")
	flag.Parse()

	if *trajectory {
		dir := "."
		if flag.NArg() > 0 {
			dir = flag.Arg(0)
		}
		if err := trajectoryReport(dir); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *compareWith != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchreport: -compare needs exactly one positional argument (the new report)")
			os.Exit(2)
		}
		if err := compareReports(*compareWith, flag.Arg(0), *tolerance); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(1)
		}
		return
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		BenchTime:   *benchTime,
	}
	for _, pkg := range benchPackages {
		results, err := runPackage(pkg, *pattern, *benchTime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %s: %v\n", pkg, err)
			os.Exit(1)
		}
		rep.Benchmarks = append(rep.Benchmarks, results...)
	}

	byName := make(map[string]benchResult, len(rep.Benchmarks))
	for _, r := range rep.Benchmarks {
		byName[r.Name] = r
	}
	for _, p := range speedupPairs {
		k, okK := byName[p.Kernel]
		b, okB := byName[p.Baseline]
		if !okK || !okB || k.NsPerOp == 0 {
			continue
		}
		rep.Speedups = append(rep.Speedups, speedup{
			Kernel:     p.Kernel,
			Baseline:   p.Baseline,
			KernelNs:   k.NsPerOp,
			BaselineNs: b.NsPerOp,
			Speedup:    b.NsPerOp / k.NsPerOp,
		})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d benchmarks, %d speedup pairs\n", *out, len(rep.Benchmarks), len(rep.Speedups))
	for _, s := range rep.Speedups {
		fmt.Printf("  %-24s %.2fx over %s\n", strings.TrimPrefix(s.Kernel, "Benchmark"), s.Speedup, strings.TrimPrefix(s.Baseline, "Benchmark"))
	}
}

// compareReports diffs two benchreport JSON files by benchmark name and
// prints every benchmark whose ns/op drifted beyond tol in either direction.
// It is warn-only by design — shared runners make micro-benchmark timings
// noisy, so the exit status reflects only whether the comparison itself ran.
func compareReports(oldPath, newPath string, tol float64) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]benchResult, len(oldRep.Benchmarks))
	for _, r := range oldRep.Benchmarks {
		oldBy[r.Name] = r
	}
	var slower, faster, missing int
	fmt.Printf("comparing %s (new) against %s (baseline), tolerance ±%.0f%%\n", newPath, oldPath, 100*tol)
	for _, nr := range newRep.Benchmarks {
		or, ok := oldBy[nr.Name]
		if !ok || or.NsPerOp == 0 {
			missing++
			continue
		}
		ratio := nr.NsPerOp / or.NsPerOp
		switch {
		case ratio > 1+tol:
			slower++
			fmt.Printf("  WARN %-36s %12.0f -> %12.0f ns/op (%.2fx slower)\n", nr.Name, or.NsPerOp, nr.NsPerOp, ratio)
		case ratio < 1-tol:
			faster++
			fmt.Printf("  ok   %-36s %12.0f -> %12.0f ns/op (%.2fx faster)\n", nr.Name, or.NsPerOp, nr.NsPerOp, 1/ratio)
		}
	}
	fmt.Printf("%d benchmarks compared: %d slower beyond tolerance, %d faster, %d without baseline\n",
		len(newRep.Benchmarks), slower, faster, missing)
	if slower > 0 {
		fmt.Println("regressions are warn-only; investigate before trusting or updating the committed baseline")
	}
	return nil
}

// trajectoryReport reads every BENCH_*.json in dir in lexical (= PR) order
// and prints, per benchmark and per speedup pair, the trail of values across
// the PRs that recorded it. Benchmarks appear in the order the newest report
// lists them; ones absent from the newest report (retired benchmarks) are
// skipped — the trajectory is about where the suite is now and how it got
// there.
func trajectoryReport(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH_*.json files under %s", dir)
	}
	sort.Strings(paths)
	type entry struct {
		label string
		rep   *report
	}
	var reports []entry
	for _, p := range paths {
		rep, err := loadReport(p)
		if err != nil {
			return err
		}
		label := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json")
		reports = append(reports, entry{label, rep})
	}

	fmt.Printf("benchmark trajectory across %d reports\n\n", len(reports))
	fmt.Printf("%-8s %-12s %-10s %11s %13s\n", "report", "generated", "go", "benchmarks", "speedup pairs")
	for _, e := range reports {
		date := e.rep.GeneratedAt
		if len(date) >= 10 {
			date = date[:10]
		}
		fmt.Printf("%-8s %-12s %-10s %11d %13d\n", e.label, date, e.rep.GoVersion, len(e.rep.Benchmarks), len(e.rep.Speedups))
	}

	newest := reports[len(reports)-1].rep
	byReport := make([]map[string]benchResult, len(reports))
	for i, e := range reports {
		byReport[i] = make(map[string]benchResult, len(e.rep.Benchmarks))
		for _, r := range e.rep.Benchmarks {
			byReport[i][r.Name] = r
		}
	}
	fmt.Printf("\n%-40s", "benchmark (ns/op)")
	for _, e := range reports {
		fmt.Printf(" %12s", e.label)
	}
	fmt.Println()
	for _, r := range newest.Benchmarks {
		fmt.Printf("%-40s", r.Name)
		var first, last float64
		for i := range reports {
			if br, ok := byReport[i][r.Name]; ok {
				fmt.Printf(" %12.0f", br.NsPerOp)
				if first == 0 {
					first = br.NsPerOp
				}
				last = br.NsPerOp
			} else {
				fmt.Printf(" %12s", "-")
			}
		}
		if first > 0 && last > 0 && first != last {
			fmt.Printf("  (%.2fx %s)", max2(first/last, last/first), trend(first, last))
		}
		fmt.Println()
	}

	fmt.Printf("\n%-56s", "speedup pair")
	for _, e := range reports {
		fmt.Printf(" %8s", e.label)
	}
	fmt.Println()
	seen := map[string]bool{}
	for i := len(reports) - 1; i >= 0; i-- {
		for _, s := range reports[i].rep.Speedups {
			key := s.Kernel + "/" + s.Baseline
			if seen[key] {
				continue
			}
			seen[key] = true
			fmt.Printf("%-56s", strings.TrimPrefix(s.Kernel, "Benchmark")+" vs "+strings.TrimPrefix(s.Baseline, "Benchmark"))
			for j := range reports {
				val := "-"
				for _, sj := range reports[j].rep.Speedups {
					if sj.Kernel == s.Kernel && sj.Baseline == s.Baseline {
						val = fmt.Sprintf("%.2fx", sj.Speedup)
						break
					}
				}
				fmt.Printf(" %8s", val)
			}
			fmt.Println()
		}
	}
	return nil
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func trend(first, last float64) string {
	if last < first {
		return "faster"
	}
	return "slower"
}

func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// runPackage runs one package's benchmarks and parses the textual results.
func runPackage(pkg, pattern, benchTime string) ([]benchResult, error) {
	// -timeout 0: the suite's cost is bounded by -benchtime per benchmark,
	// and the 10⁶-node transient fixtures alone exceed go test's default
	// 10-minute package budget.
	cmd := exec.Command("go", "test", "-run", "^$", "-timeout", "0",
		"-bench", pattern, "-benchmem", "-benchtime", benchTime, pkg)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var results []benchResult
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parseBenchLine(pkg, line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test: %w", err)
	}
	return results, nil
}

// parseBenchLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkMul128-4   2212   533776 ns/op   131072 B/op   1 allocs/op
func parseBenchLine(pkg, line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i] // strip the -GOMAXPROCS suffix
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	r := benchResult{Name: name, Package: strings.Trim(pkg, "./"), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	if r.NsPerOp == 0 {
		return benchResult{}, false
	}
	return r, true
}
