// Command voltmap regenerates the tables and figures of "A Statistical
// Methodology for Noise Sensor Placement and Full-Chip Voltage Map
// Generation" (DAC 2015) on the voltsense substrate.
//
// Usage:
//
//	voltmap [flags] <experiment>
//
// Experiments:
//
//	table1   λ sweep: sensors per core vs aggregated relative error
//	table2   per-benchmark ME/WAE/TE, Eagle-Eye vs proposed
//	fig1     group norms ‖β_m‖₂ for every candidate in core 0
//	fig2     predicted vs real voltage trace at one critical node
//	fig3     sensor locations, Eagle-Eye vs proposed, one core
//	fig4     error rates vs total sensor count for one benchmark
//	map      full-chip voltage map reconstruction demo (ASCII)
//	all      everything above in order
//
// Extensions beyond the paper's figures:
//
//	correlation  |corr| between candidates and critical nodes vs distance
//	perblock     Table 2 rates re-scored at (sample, block) granularity
//	ablations    GL-direct vs refit, OLS-magnitude, plain lasso, FA sensors
//	robustness   detection quality vs ADC resolution and sensor noise
//	variation    deploy the design-time model on a process-varied die
//	closedloop   alarms throttle the cores; emergencies drop (the payoff)
//	loo          leave-one-benchmark-out workload generalization
//	faults       detection quality with failed sensors: naive vs fallback
//	adapt        online recalibration under grid drift: static vs adapted
//	rank         chip-joint placement, dense vs reduced-basis: rank/accuracy/time
//	shootout     every placement criterion + mixed sensor classes, ranked on TE
//	transfer     fleet few-shot calibration: golden prior vs aligned vs scratch
//
// Flags select the pipeline scale (-full for the paper-scale run), CSV
// output, sensor budgets and benchmark choice; see -help.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"voltsense/internal/detect"
	"voltsense/internal/experiments"
	"voltsense/internal/online"
	"voltsense/internal/pdn"
	"voltsense/internal/place"
	"voltsense/internal/profiling"
	"voltsense/internal/sparse"
	"voltsense/internal/transfer"
	"voltsense/internal/vmap"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "voltmap:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("voltmap", flag.ContinueOnError)
	full := fs.Bool("full", false, "use the paper-scale pipeline (minutes) instead of the quick one (seconds)")
	csv := fs.Bool("csv", false, "emit CSV data instead of rendered text where available")
	sensors := fs.Int("sensors", 2, "sensors per core for table2")
	benchIdx := fs.Int("bench", -1, "benchmark index for fig2/fig4 (-1 = auto: most emergencies)")
	block := fs.Int("block", 14, "block ID for fig2 (default 14 = core 0 alu0)")
	steps := fs.Int("steps", 200, "trace length for fig2")
	lambdaList := fs.String("lambdas", "", "comma-separated λ sweep for table1 (default: config sweep)")
	seed := fs.Int64("seed", 1, "pipeline master seed")
	useUarch := fs.Bool("uarch", false, "drive the grid from the microarchitectural performance model instead of the phase generator")
	useThermal := fs.Bool("thermal", false, "couple average power to temperature and scale leakage (hotter blocks leak more)")
	budget := fs.Int("budget", 2, "fallback budget (max simultaneous failed sensors) for faults")
	backend := fs.String("backend", "", "transient solver backend: auto (default), banded, or sparse")
	precond := fs.String("precond", "", "sparse-backend preconditioner: auto (default), ic, jacobi, or cheby")
	sparseWorkers := fs.Int("sparse-workers", 0, "worker shares per sparse solve (0 = pool default, 1 = serial); results are bitwise identical either way")
	batch := fs.String("batch", "auto", "multi-RHS trace collection: auto (batch when sparse), on, or off")
	rankLambda := fs.Float64("ranklambda", 12, "chip-joint λ for the rank experiment")
	shootQ := fs.Int("shootq", 8, "chip-wide sensor count for the shootout experiment")
	criteria := fs.String("criteria", "", "comma-separated criterion subset for shootout (default: all)")
	shootBudget := fs.Float64("shootbudget", 0, "mixed-class cost budget for shootout (0 = shootq reference sensors' worth)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := fs.String("memprofile", "", "write a heap profile to this path on exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: voltmap [flags] <table1|table2|fig1|fig2|fig3|fig4|map|all|correlation|perblock|ablations|robustness|variation|closedloop|loo|faults|adapt|rank|shootout|transfer>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one experiment, got %d args", fs.NArg())
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "voltmap: profiling:", err)
		}
	}()
	exp := fs.Arg(0)
	if !knownExperiments[exp] {
		fs.Usage()
		return fmt.Errorf("unknown experiment %q", exp)
	}

	cfg := experiments.QuickConfig()
	if *full {
		cfg = experiments.DefaultConfig()
	}
	cfg.Seed = *seed
	if *useUarch {
		cfg.TraceSource = experiments.TraceUarch
	}
	cfg.ThermalFeedback = *useThermal
	be, err := pdn.ParseBackend(*backend)
	if err != nil {
		return err
	}
	cfg.Backend = be
	pc, err := sparse.ParsePrecond(*precond)
	if err != nil {
		return err
	}
	cfg.Precond = pc
	if *sparseWorkers < 0 {
		return fmt.Errorf("-sparse-workers must be >= 0, got %d", *sparseWorkers)
	}
	cfg.SparseWorkers = *sparseWorkers
	switch *batch {
	case "auto":
		cfg.BatchTraces = experiments.BatchAuto
	case "on":
		cfg.BatchTraces = experiments.BatchOn
	case "off":
		cfg.BatchTraces = experiments.BatchOff
	default:
		return fmt.Errorf("unknown -batch mode %q (want auto, on, or off)", *batch)
	}

	fmt.Fprintf(os.Stderr, "building pipeline (%s scale)...\n", scaleName(*full))
	p, err := experiments.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pipeline ready: %d candidates, %d blocks, emergency fraction %.2f\n",
		len(p.Grid.Candidates), p.Chip.NumBlocks(), p.EmergencyFraction(p.TestAll()))

	var lambdas []float64
	if *lambdaList != "" {
		for _, tok := range strings.Split(*lambdaList, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return fmt.Errorf("bad -lambdas entry %q: %v", tok, err)
			}
			lambdas = append(lambdas, v)
		}
	}

	bench := *benchIdx
	if bench < 0 {
		bench = p.BusiestBenchmark()
	}

	dispatch := map[string]func() error{
		"table1":      func() error { return doTable1(p, lambdas, *csv) },
		"table2":      func() error { return doTable2(p, *sensors, *csv) },
		"fig1":        func() error { return doFig1(p, *csv) },
		"fig2":        func() error { return doFig2(p, bench, *block, *steps, *csv) },
		"fig3":        func() error { return doFig3(p) },
		"fig4":        func() error { return doFig4(p, bench, *csv) },
		"map":         func() error { return doMap(p) },
		"correlation": func() error { return doCorrelation(p, *csv) },
		"perblock":    func() error { return doPerBlock(p, *sensors) },
		"ablations":   func() error { return doAblations(p) },
		"robustness":  func() error { return doRobustness(p, *sensors) },
		"variation":   func() error { return doVariation(p, *sensors) },
		"closedloop":  func() error { return doClosedLoop(p, bench, *sensors) },
		"loo":         func() error { return doLOO(p, *sensors) },
		"faults":      func() error { return doFaults(p, *sensors, *budget, *csv) },
		"adapt":       func() error { return doAdapt(p, *sensors, *csv) },
		"rank":        func() error { return doRank(p, *rankLambda, *csv) },
		"shootout":    func() error { return doShootout(p, *shootQ, *criteria, *shootBudget, *csv) },
		"transfer":    func() error { return doTransfer(p, *sensors, *csv) },
	}
	if exp == "all" {
		for _, name := range []string{"fig1", "table1", "fig2", "fig3", "table2", "fig4", "map"} {
			fmt.Printf("==== %s ====\n", name)
			if err := dispatch[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	return dispatch[exp]()
}

// knownExperiments is checked before the expensive pipeline build.
var knownExperiments = map[string]bool{
	"table1": true, "table2": true, "fig1": true, "fig2": true, "fig3": true,
	"fig4": true, "map": true, "all": true, "correlation": true,
	"perblock": true, "ablations": true, "robustness": true, "variation": true,
	"closedloop": true, "loo": true, "faults": true, "adapt": true, "rank": true,
	"shootout": true, "transfer": true,
}

func scaleName(full bool) string {
	if full {
		return "full"
	}
	return "quick"
}

func doTable1(p *experiments.Pipeline, lambdas []float64, csv bool) error {
	d, err := p.Table1(lambdas)
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(d.CSV())
	} else {
		fmt.Print(d.Render())
	}
	return nil
}

func doTable2(p *experiments.Pipeline, sensors int, csv bool) error {
	d, err := p.Table2(sensors)
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(d.CSV())
	} else {
		fmt.Print(d.Render())
		eagle, prop := d.MeanRates()
		fmt.Printf("%-16s | %7.4f %8.4f %7.4f | %7.4f %8.4f %7.4f\n",
			"mean", eagle[0], eagle[1], eagle[2], prop[0], prop[1], prop[2])
	}
	return nil
}

func doFig1(p *experiments.Pipeline, csv bool) error {
	d, err := p.Figure1()
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(d.CSV())
	} else {
		fmt.Print(d.Render())
	}
	return nil
}

func doFig2(p *experiments.Pipeline, bench, block, steps int, csv bool) error {
	d, err := p.Figure2(bench, block, steps)
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(d.CSV())
	} else {
		fmt.Print(d.Render())
	}
	return nil
}

func doFig3(p *experiments.Pipeline) error {
	d, err := p.Figure3(0, 7)
	if err != nil {
		return err
	}
	fmt.Print(d.Render(p))
	return nil
}

func doFig4(p *experiments.Pipeline, bench int, csv bool) error {
	d, err := p.Figure4(bench)
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(d.CSV())
	} else {
		fmt.Print(d.Render())
	}
	return nil
}

func doCorrelation(p *experiments.Pipeline, csv bool) error {
	prof, err := p.CorrelationProfile(1.0)
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(prof.CSV())
	} else {
		fmt.Print(prof.Render())
	}
	return nil
}

func doPerBlock(p *experiments.Pipeline, sensors int) error {
	d, err := p.Table2PerBlock(sensors)
	if err != nil {
		return err
	}
	fmt.Printf("%d sensors/core, pooled held-out set\n", d.SensorsPerCore)
	fmt.Printf("chip-level (paper accounting): %v\n", d.ChipLevel)
	fmt.Printf("per-block extension          : %v\n", d.PerBlock)
	return nil
}

func doAblations(p *experiments.Pipeline) error {
	gl, err := p.AblationGLDirect(4)
	if err != nil {
		return err
	}
	fmt.Printf("GL-direct (Eq.14) vs OLS refit (Eq.20) at λ=%g, %d sensors:\n  %.5f vs %.5f rel err\n",
		gl.Lambda, gl.SensorsCore0, gl.RelErrGL, gl.RelErrRefit)
	om, err := p.AblationOLSMagnitude(4)
	if err != nil {
		return err
	}
	fmt.Printf("OLS-magnitude selection vs GL at q=%d:\n  %.5f vs %.5f rel err (overlap %d)\n",
		om.Q, om.RelErrAlt, om.RelErrGL, om.OverlapsGL)
	pl, err := p.AblationPlainLasso(4)
	if err != nil {
		return err
	}
	fmt.Printf("plain per-output lasso vs GL at q=%d:\n  %.5f vs %.5f rel err (overlap %d)\n",
		pl.Q, pl.RelErrAlt, pl.RelErrGL, pl.OverlapsGL)
	pca, err := p.AblationPCA(4)
	if err != nil {
		return err
	}
	fmt.Printf("PCA loading selection vs GL at q=%d:\n  %.5f vs %.5f rel err (overlap %d)\n",
		pca.Q, pca.RelErrAlt, pca.RelErrGL, pca.OverlapsGL)
	fa, err := p.AblationSensorsInFA(4)
	if err != nil {
		return err
	}
	fmt.Printf("sensors allowed inside FA at q=%d:\n  BA-only %.5f vs with-FA %.5f rel err (%d FA sites chosen)\n",
		fa.Q, fa.RelErrBAOnly, fa.RelErrWithFA, fa.FASelected)
	return nil
}

// doMap demonstrates full-chip voltage map generation: train the per-node
// model on the placed sensors, reconstruct a held-out map, render both.
func doClosedLoop(p *experiments.Pipeline, bench, sensors int) error {
	d, err := p.ClosedLoop(bench, sensors, 400)
	if err != nil {
		return err
	}
	fmt.Printf("%s, %d sensors/core, %d steps\n", d.Bench, d.SensorsPerCore, d.Steps)
	fmt.Printf("open loop : %d emergency steps\n", d.OpenEmergencySteps)
	fmt.Printf("closed    : %d emergency steps (%d alarms, %d throttled core-steps)\n",
		d.ClosedEmergencySteps, d.Alarms, d.ThrottleSteps)
	return nil
}

func doLOO(p *experiments.Pipeline, sensors int) error {
	d, err := p.LeaveOneOut(sensors)
	if err != nil {
		return err
	}
	fmt.Print(d.Render())
	return nil
}

func doVariation(p *experiments.Pipeline, sensors int) error {
	d, err := p.AblationProcessVariation(sensors, 0.15)
	if err != nil {
		return err
	}
	fmt.Printf("process variation σ=%.2f, %d sensors/core (builds a second die; slow)\n", d.SegRSigma, d.SensorsPerCore)
	fmt.Printf("nominal die           : rel err %.4f%%, %v\n", 100*d.NominalRelErr, d.NominalRates)
	fmt.Printf("varied die, no recal  : rel err %.4f%%, %v\n", 100*d.VariedRelErr, d.VariedRates)
	fmt.Printf("varied die, recalib'd : rel err %.4f%%, %v\n", 100*d.RecalRelErr, d.RecalRates)
	return nil
}

func doFaults(p *experiments.Pipeline, sensors, budget int, csv bool) error {
	d, err := p.AblationFaultTolerance(sensors, budget)
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(d.CSV())
	} else {
		fmt.Print(d.Render())
	}
	return nil
}

func doAdapt(p *experiments.Pipeline, sensors int, csv bool) error {
	d, err := p.AblationOnlineAdaptation(sensors, 0.15, online.Config{})
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(d.CSV())
	} else {
		fmt.Print(d.Render())
	}
	return nil
}

func doTransfer(p *experiments.Pipeline, sensors int, csv bool) error {
	d, err := p.AblationTransfer(sensors, 0.15, 3, nil, transfer.AlignConfig{})
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(d.CSV())
	} else {
		fmt.Print(d.Render())
	}
	return nil
}

func doRank(p *experiments.Pipeline, lambda float64, csv bool) error {
	d, err := p.RankStudy(lambda, []float64{0.99, 0.999, 0.9999})
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(d.CSV())
	} else {
		fmt.Print(d.Render())
	}
	return nil
}

func doShootout(p *experiments.Pipeline, q int, criteriaCSV string, budget float64, csv bool) error {
	var criteria []string
	if criteriaCSV != "" {
		for _, tok := range strings.Split(criteriaCSV, ",") {
			criteria = append(criteria, strings.TrimSpace(tok))
		}
	}
	spec := place.DefaultClassSpec
	if budget <= 0 {
		budget = float64(q) * spec.RefCost
	}
	d, err := p.CriteriaShootout(q, criteria, spec, budget)
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(d.CSV())
	} else {
		fmt.Print(d.Render())
	}
	return nil
}

func doRobustness(p *experiments.Pipeline, sensors int) error {
	d, err := p.AblationSensorRobustness(sensors, nil)
	if err != nil {
		return err
	}
	fmt.Print(d.Render())
	return nil
}

func doMap(p *experiments.Pipeline) error {
	_, union, err := p.ChipPlacementCount(2)
	if err != nil {
		return err
	}
	// Training data for the map generator: the full candidate+critical rows
	// only cover monitored nodes; for the demo we reconstruct the candidate
	// field itself (every blank-area node) plus the critical nodes.
	sensorX := p.Train.CandV.SelectRows(union)
	gen, err := vmap.Train(sensorX, p.Train.CandV)
	if err != nil {
		return err
	}
	test := p.TestByBench[p.BusiestBenchmark()]
	col := worstColumn(test)
	sensorV := make([]float64, len(union))
	for i, s := range union {
		sensorV[i] = test.CandV.At(s, col)
	}
	pred := gen.Generate(sensorV)
	truth := test.CandV.Col(col)
	e := vmap.Compare(pred, truth)
	fmt.Printf("reconstructed blank-area voltage field from %d sensors: rel=%.5f rms=%.5f V max=%.5f V\n",
		len(union), e.Rel, e.RMS, e.MaxAbs)

	// Render truth and reconstruction over the full mesh (function-area
	// nodes shown at VDD since only BA rows are reconstructed here).
	vdd := p.Grid.Cfg.VDD
	full := make([]float64, p.Grid.NumNodes())
	fillMap(full, vdd)
	for i, nd := range p.Grid.Candidates {
		full[nd] = truth[i]
	}
	fmt.Println("measured blank-area field:")
	fmt.Print(vmap.Render(p.Grid, full, detect.DefaultVth, vdd))
	for i, nd := range p.Grid.Candidates {
		full[nd] = pred[i]
	}
	fmt.Println("reconstructed from sensors:")
	fmt.Print(vmap.Render(p.Grid, full, detect.DefaultVth, vdd))
	return nil
}

func fillMap(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}

// worstColumn returns the sample with the deepest critical-node droop.
func worstColumn(s *experiments.SampleSet) int {
	best, bestV := 0, 2.0
	for j := 0; j < s.N(); j++ {
		for i := 0; i < s.CritV.Rows(); i++ {
			if v := s.CritV.At(i, j); v < bestV {
				best, bestV = j, v
			}
		}
	}
	return best
}
