package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckGodocFlagsUndocumentedExports(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.go"), `// Package p.
package p

// Documented is fine.
func Documented() {}

func Undocumented() {}

type Bare struct{}

// Grouped doc covers both.
const (
	A = 1
	B = 2
)
`)
	problems, err := checkGodoc(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	if !strings.Contains(joined, "Undocumented") || !strings.Contains(joined, "Bare") {
		t.Errorf("missing expected problems in %q", joined)
	}
	if strings.Contains(joined, "Documented") || strings.Contains(joined, "exported value A") {
		t.Errorf("false positives in %q", joined)
	}
}

func TestCheckGodocCleanOnRealPlacePackage(t *testing.T) {
	problems, err := checkGodoc(filepath.Join("..", "..", "internal", "place"))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("internal/place has undocumented exports:\n%s", strings.Join(problems, "\n"))
	}
}

func TestCheckFormatNames(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "doc.md")
	write(t, md, "Artifacts use voltsense-predictor/v1 and voltsense-prior/v1.\n\n```json\n{\"format\": \"voltsense-deltas/v1\"}\n```\n")
	problems, err := checkFormatNames(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], `"voltsense-deltas/v1"`) {
		t.Errorf("want exactly the voltsense-deltas/v1 violation, got %v", problems)
	}
}

func TestCommandFlagSetsFromRealRepo(t *testing.T) {
	cmds, err := commandFlagSets(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for cmd, flags := range map[string][]string{
		"voltserved":  {"prior", "calibrate-shrinkage", "calibrate-min-samples", "store"},
		"voltbench":   {"calibrate-every", "tenants", "streams"},
		"sensorplace": {"criterion"},
	} {
		set := cmds[cmd]
		if set == nil {
			t.Fatalf("no flag set extracted for %s", cmd)
		}
		for _, f := range flags {
			if !set[f] {
				t.Errorf("%s: flag %q not extracted; got %v", cmd, f, set)
			}
		}
	}
}

func TestCheckCommandFlags(t *testing.T) {
	cmds := map[string]map[string]bool{
		"voltserved":  {"store": true, "prior": true},
		"benchreport": {"compare": true},
	}
	dir := t.TempDir()
	md := filepath.Join(dir, "doc.md")
	write(t, md, strings.Join([]string{
		"Prose voltserved -nosuchprose mentions are not attributed.",
		"Inline `voltserved -prior golden.json` is fine; `voltserved -bogus` is not.",
		"",
		"```sh",
		"voltserved -store /var/lib/fleet \\",
		"  -prior golden.prior.json \\",
		"  -stale-flag 1",
		"voltserved -store s | benchreport -compare a.json",
		"benchreport -nope",
		"```",
	}, "\n")+"\n")
	problems, err := checkCommandFlags(md, cmds)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{"-bogus", "-stale-flag", "-nope"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s violation in %q", want, joined)
		}
	}
	for _, miss := range []string{"-nosuchprose", "-prior", "-store", "-compare"} {
		if strings.Contains(joined, "flag "+miss+"\n") || strings.HasSuffix(joined, "flag "+miss) {
			t.Errorf("false positive %s in %q", miss, joined)
		}
	}
	if len(problems) != 3 {
		t.Errorf("want exactly 3 violations, got %v", problems)
	}
}

func TestCheckCriterionValues(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "doc.md")
	write(t, md, "Run `sensorplace -criterion qrpivot` or `-criterion=dopt`.\n\n```\nsensorplace -criterion nosuch\n```\n")
	problems, err := checkCriterionValues(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], `"nosuch"`) {
		t.Errorf("want exactly the nosuch violation, got %v", problems)
	}
}
