package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckGodocFlagsUndocumentedExports(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.go"), `// Package p.
package p

// Documented is fine.
func Documented() {}

func Undocumented() {}

type Bare struct{}

// Grouped doc covers both.
const (
	A = 1
	B = 2
)
`)
	problems, err := checkGodoc(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	if !strings.Contains(joined, "Undocumented") || !strings.Contains(joined, "Bare") {
		t.Errorf("missing expected problems in %q", joined)
	}
	if strings.Contains(joined, "Documented") || strings.Contains(joined, "exported value A") {
		t.Errorf("false positives in %q", joined)
	}
}

func TestCheckGodocCleanOnRealPlacePackage(t *testing.T) {
	problems, err := checkGodoc(filepath.Join("..", "..", "internal", "place"))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Errorf("internal/place has undocumented exports:\n%s", strings.Join(problems, "\n"))
	}
}

func TestCheckCriterionValues(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "doc.md")
	write(t, md, "Run `sensorplace -criterion qrpivot` or `-criterion=dopt`.\n\n```\nsensorplace -criterion nosuch\n```\n")
	problems, err := checkCriterionValues(md)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], `"nosuch"`) {
		t.Errorf("want exactly the nosuch violation, got %v", problems)
	}
}
