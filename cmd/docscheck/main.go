// Command docscheck enforces the repository's documentation bar in CI:
//
//   - every Go package (including commands) carries a package comment, so
//     `go doc` explains how each piece maps onto the DAC 2015 methodology;
//   - every relative link in the repository's markdown files resolves to a
//     file that actually exists, so the docs never rot as code moves;
//   - every exported identifier in internal/place — the user-facing criterion
//     subsystem — carries a doc comment;
//   - every `-criterion <value>` mentioned in the markdown docs parses via
//     the real place.ParseCriterion, so README/OPERATIONS examples cannot
//     drift from the registry;
//   - every `voltsense-*/v*` artifact format name the docs mention is one the
//     code actually writes (predictor, prior, delta), so serialization docs
//     cannot invent or misspell a format;
//   - every `-flag` that follows a command name (voltserved, voltbench, …) in
//     a markdown example or sentence exists in that command's real flag set,
//     extracted from cmd/*/main.go by AST — stale `-prior`/`-calibrate-*`
//     style examples fail CI instead of misleading operators.
//
// It prints one line per violation and exits non-zero if any were found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"voltsense/internal/core"
	"voltsense/internal/place"
	"voltsense/internal/transfer"
)

func main() {
	problems, err := check(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problems\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: packages documented, markdown links resolve, place exports documented, -criterion examples valid, artifact format names valid, command flags in docs exist")
}

// check walks root and returns every violation, deterministically ordered.
func check(root string) ([]string, error) {
	var problems []string
	pkgDocs := make(map[string]bool) // dir → has a package comment
	var mdFiles []string

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		switch {
		case strings.HasSuffix(name, ".md"):
			mdFiles = append(mdFiles, path)
		case strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go"):
			dir := filepath.Dir(path)
			if _, seen := pkgDocs[dir]; !seen {
				pkgDocs[dir] = false
			}
			f, perr := parser.ParseFile(token.NewFileSet(), path, nil, parser.PackageClauseOnly|parser.ParseComments)
			if perr != nil {
				return fmt.Errorf("%s: %w", path, perr)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				pkgDocs[dir] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	dirs := make([]string, 0, len(pkgDocs))
	for dir := range pkgDocs {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		if !pkgDocs[dir] {
			problems = append(problems, fmt.Sprintf("%s: package has no package comment", dir))
		}
	}

	cmdFlags, err := commandFlagSets(root)
	if err != nil {
		return nil, err
	}
	sort.Strings(mdFiles)
	for _, md := range mdFiles {
		ps, err := checkMarkdown(md)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
		ps, err = checkCriterionValues(md)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
		ps, err = checkFormatNames(md)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
		ps, err = checkCommandFlags(md, cmdFlags)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}

	placeDir := filepath.Join(root, "internal", "place")
	if _, err := os.Stat(placeDir); err == nil {
		ps, err := checkGodoc(placeDir)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	return problems, nil
}

// checkGodoc parses every non-test Go file in dir and reports exported
// top-level identifiers — types, functions, methods, consts and vars — that
// carry no doc comment. A doc comment on a grouped declaration covers every
// spec inside it.
func checkGodoc(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var problems []string
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					problems = append(problems, fmt.Sprintf("%s: exported %s %s has no doc comment", path, kind, d.Name.Name))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							problems = append(problems, fmt.Sprintf("%s: exported type %s has no doc comment", path, s.Name.Name))
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && d.Doc == nil && s.Doc == nil {
								problems = append(problems, fmt.Sprintf("%s: exported value %s has no doc comment", path, n.Name))
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// criterionRe matches `-criterion value` and `-criterion=value` mentions in
// prose and shell examples alike. The leading guard keeps hyphenated words
// like "per-criterion" from matching as the flag.
var criterionRe = regexp.MustCompile(`(?:^|[^[:alnum:]-])-criterion[ =]([A-Za-z0-9_-]+)`)

// checkCriterionValues verifies that every -criterion value a markdown file
// mentions parses through the real registry, fenced code blocks included —
// command examples are exactly where stale names hide.
func checkCriterionValues(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	for ln, line := range strings.Split(string(data), "\n") {
		for _, m := range criterionRe.FindAllStringSubmatch(line, -1) {
			if _, err := place.ParseCriterion(m[1]); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: -criterion value %q is not a registered criterion", path, ln+1, m[1]))
			}
		}
	}
	return problems, nil
}

// formatRe matches artifact format-name tokens like voltsense-prior/v1.
var formatRe = regexp.MustCompile(`voltsense-[a-z]+/v[0-9]+`)

// knownFormats is every artifact format the code actually serializes,
// sourced from the constants the writers use — not re-typed strings.
var knownFormats = map[string]bool{
	core.PredictorFormat: true,
	transfer.PriorFormat: true,
	transfer.DeltaFormat: true,
}

// checkFormatNames verifies that every voltsense-*/v* format name a markdown
// file mentions — in prose or inside fenced JSON examples — is one the code
// writes. A misspelled or invented format in serialization docs is exactly
// the kind of rot that survives review.
func checkFormatNames(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	for ln, line := range strings.Split(string(data), "\n") {
		for _, m := range formatRe.FindAllString(line, -1) {
			if !knownFormats[m] {
				problems = append(problems, fmt.Sprintf("%s:%d: artifact format %q is not one the code writes", path, ln+1, m))
			}
		}
	}
	return problems, nil
}

// flagMethods are the flag.FlagSet definition methods whose first argument
// names a flag.
var flagMethods = map[string]bool{
	"String": true, "Bool": true, "Int": true, "Int64": true,
	"Float64": true, "Duration": true,
}

// commandFlagSets extracts each cmd/<name> binary's real flag set by walking
// the AST of its non-test Go files for flag-definition calls with a
// string-literal name (flag.String("prior", …) and friends). Commands that
// define no flags are omitted, so doc mentions of them are not flag-checked.
func commandFlagSets(root string) (map[string]map[string]bool, error) {
	cmdRoot := filepath.Join(root, "cmd")
	entries, err := os.ReadDir(cmdRoot)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	out := make(map[string]map[string]bool)
	fset := token.NewFileSet()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(cmdRoot, e.Name())
		files, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		set := make(map[string]bool)
		for _, fe := range files {
			name := fe.Name()
			if fe.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			af, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			ast.Inspect(af, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !flagMethods[sel.Sel.Name] || len(call.Args) == 0 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				if flagName, err := strconv.Unquote(lit.Value); err == nil && flagName != "" {
					set[flagName] = true
				}
				return true
			})
		}
		if len(set) > 0 {
			out[e.Name()] = set
		}
	}
	return out, nil
}

// flagTokenRe matches a Go-style single-dash flag token, capturing the flag
// name and dropping any =value suffix. Double-dash tokens are left alone:
// this repo's commands are documented single-dash, and `--always`-style
// options belong to foreign tools inside command substitutions.
var flagTokenRe = regexp.MustCompile(`^-([A-Za-z][A-Za-z0-9-]*)`)

// inlineCodeRe matches inline markdown code spans: `voltserved -prior …`.
var inlineCodeRe = regexp.MustCompile("`([^`]+)`")

// checkCommandFlags verifies that every -flag token following a command name
// in a markdown code context — a fenced block line or an inline code span —
// names a flag that command really defines. Prose is not scanned: changelog
// sentences mention flags of many tools at once and cannot be attributed.
// Backslash-continued fence lines are joined so multi-line invocations check
// as one command, and a later command name rebinds attribution, so piped
// `voltbench … | benchreport -compare` examples check each segment against
// its own flag set.
func checkCommandFlags(path string, cmds map[string]map[string]bool) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(data), "\n")
	var problems []string
	inFence := false
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		ln := i
		if inFence {
			text := line
			for strings.HasSuffix(strings.TrimRight(text, " \t"), `\`) && i+1 < len(lines) {
				text = strings.TrimSuffix(strings.TrimRight(text, " \t"), `\`) + " " + lines[i+1]
				i++
			}
			problems = append(problems, scanInvocation(path, ln, text, cmds)...)
			continue
		}
		for _, m := range inlineCodeRe.FindAllStringSubmatch(line, -1) {
			problems = append(problems, scanInvocation(path, ln, m[1], cmds)...)
		}
	}
	return problems, nil
}

// scanInvocation attributes -flag tokens in one code snippet to the most
// recently named command and reports flags that command does not define.
func scanInvocation(path string, ln int, text string, cmds map[string]map[string]bool) []string {
	var problems []string
	var set map[string]bool
	var cmd string
	for _, field := range strings.Fields(text) {
		field = strings.Trim(field, "`\"'(),.;:|")
		base := field
		if j := strings.LastIndexByte(base, '/'); j >= 0 {
			base = base[j+1:]
		}
		if s, ok := cmds[base]; ok {
			set, cmd = s, base
			continue
		}
		if set == nil || strings.HasPrefix(field, "--") {
			continue
		}
		if m := flagTokenRe.FindStringSubmatch(field); m != nil && !set[m[1]] {
			problems = append(problems, fmt.Sprintf("%s:%d: %s has no flag -%s", path, ln+1, cmd, m[1]))
		}
	}
	return problems
}

// linkRe matches inline markdown links and images: [text](target).
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdown verifies that every relative link target in one markdown
// file exists. External schemes and pure in-page anchors are skipped;
// fenced code blocks are ignored so shell examples don't false-positive.
func checkMarkdown(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	inFence := false
	for ln, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", path, ln+1, m[1]))
			}
		}
	}
	return problems, nil
}
