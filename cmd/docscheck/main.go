// Command docscheck enforces the repository's documentation bar in CI:
//
//   - every Go package (including commands) carries a package comment, so
//     `go doc` explains how each piece maps onto the DAC 2015 methodology;
//   - every relative link in the repository's markdown files resolves to a
//     file that actually exists, so the docs never rot as code moves;
//   - every exported identifier in internal/place — the user-facing criterion
//     subsystem — carries a doc comment;
//   - every `-criterion <value>` mentioned in the markdown docs parses via
//     the real place.ParseCriterion, so README/OPERATIONS examples cannot
//     drift from the registry.
//
// It prints one line per violation and exits non-zero if any were found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"voltsense/internal/place"
)

func main() {
	problems, err := check(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problems\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: packages documented, markdown links resolve, place exports documented, -criterion examples valid")
}

// check walks root and returns every violation, deterministically ordered.
func check(root string) ([]string, error) {
	var problems []string
	pkgDocs := make(map[string]bool) // dir → has a package comment
	var mdFiles []string

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			return nil
		}
		switch {
		case strings.HasSuffix(name, ".md"):
			mdFiles = append(mdFiles, path)
		case strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go"):
			dir := filepath.Dir(path)
			if _, seen := pkgDocs[dir]; !seen {
				pkgDocs[dir] = false
			}
			f, perr := parser.ParseFile(token.NewFileSet(), path, nil, parser.PackageClauseOnly|parser.ParseComments)
			if perr != nil {
				return fmt.Errorf("%s: %w", path, perr)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				pkgDocs[dir] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	dirs := make([]string, 0, len(pkgDocs))
	for dir := range pkgDocs {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		if !pkgDocs[dir] {
			problems = append(problems, fmt.Sprintf("%s: package has no package comment", dir))
		}
	}

	sort.Strings(mdFiles)
	for _, md := range mdFiles {
		ps, err := checkMarkdown(md)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
		ps, err = checkCriterionValues(md)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}

	placeDir := filepath.Join(root, "internal", "place")
	if _, err := os.Stat(placeDir); err == nil {
		ps, err := checkGodoc(placeDir)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	return problems, nil
}

// checkGodoc parses every non-test Go file in dir and reports exported
// top-level identifiers — types, functions, methods, consts and vars — that
// carry no doc comment. A doc comment on a grouped declaration covers every
// spec inside it.
func checkGodoc(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var problems []string
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					problems = append(problems, fmt.Sprintf("%s: exported %s %s has no doc comment", path, kind, d.Name.Name))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
							problems = append(problems, fmt.Sprintf("%s: exported type %s has no doc comment", path, s.Name.Name))
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && d.Doc == nil && s.Doc == nil {
								problems = append(problems, fmt.Sprintf("%s: exported value %s has no doc comment", path, n.Name))
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// criterionRe matches `-criterion value` and `-criterion=value` mentions in
// prose and shell examples alike. The leading guard keeps hyphenated words
// like "per-criterion" from matching as the flag.
var criterionRe = regexp.MustCompile(`(?:^|[^[:alnum:]-])-criterion[ =]([A-Za-z0-9_-]+)`)

// checkCriterionValues verifies that every -criterion value a markdown file
// mentions parses through the real registry, fenced code blocks included —
// command examples are exactly where stale names hide.
func checkCriterionValues(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	for ln, line := range strings.Split(string(data), "\n") {
		for _, m := range criterionRe.FindAllStringSubmatch(line, -1) {
			if _, err := place.ParseCriterion(m[1]); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: -criterion value %q is not a registered criterion", path, ln+1, m[1]))
			}
		}
	}
	return problems, nil
}

// linkRe matches inline markdown links and images: [text](target).
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdown verifies that every relative link target in one markdown
// file exists. External schemes and pure in-page anchors are skipped;
// fenced code blocks are ignored so shell examples don't false-positive.
func checkMarkdown(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	inFence := false
	for ln, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s:%d: broken link %q", path, ln+1, m[1]))
			}
		}
	}
	return problems, nil
}
