// Command voltserved serves a fitted voltsense runtime model over HTTP: the
// online half of the DAC 2015 methodology. Train and save a model with
// cmd/sensorplace, then:
//
//	voltserved -model model.json -vth 0.95 -addr :8080
//
// Endpoints (see internal/serve):
//
//	POST /v1/predict   batched inference, sensor readings → block voltages
//	POST /v1/stream    NDJSON session, one cycle per line → alarm events
//	GET  /healthz      liveness and loaded-model summary
//	GET  /metrics      Prometheus text metrics
//	POST /v1/reload    hot-swap the model file (also: kill -HUP)
//
// SIGHUP reloads the model atomically without dropping in-flight streams;
// SIGINT/SIGTERM drain gracefully for -shutdown-grace before force-closing.
//
// When the model artifact carries fallback submodels (sensorplace
// -fallback-budget), the server detects failed sensors at runtime and
// switches to the matching leave-k-out fallback; -fault-spec injects
// synthetic sensor faults for drilling that path against a live server:
//
//	voltserved -model model.json -fault-spec '{"faults":[{"sensor":0,"kind":"stuck","start":100,"value":0.93}]}'
//
// -adapt enables online recalibration: POST /v1/feedback ingests labeled
// samples (sensor readings plus measured critical-node voltages) into a
// shadow refit that is promoted to the serving model when it beats it on the
// paper's total-error rate — see internal/online and the OPERATIONS.md
// recalibration runbook. POST /v1/rollback reverts the last promotion.
//
//	voltserved -model model.json -adapt -forgetting 0.995 -feedback-log feedback.csv
//
// -store runs the server in fleet mode instead of -model: a directory of
// <tenant-id>.json artifacts becomes a multi-tenant model registry, requests
// route by the X-Voltsense-Tenant header (or tenant field), and SIGHUP or
// POST /v1/reload rescans the store, swapping only the tenants whose
// artifacts changed. Overload knobs bound admission and stream concurrency;
// past them the server sheds with 503 + Retry-After:
//
//	voltserved -store /var/lib/voltsense/fleet -max-tenants 64 -tenant-idle 30m \
//	  -max-inflight 256 -max-streams 2000 -max-tenant-streams 200
//
// -prior pins a shared golden-chip prior (voltsense-prior/v1, written by
// transfer.FitPrior + Save over the fleet's golden artifacts) over the fleet
// store. With it,
// POST /v1/calibrate aligns a tenant's few labeled samples against the prior
// and persists the result as a thin voltsense-delta/v1 artifact — a new chip
// joins the fleet with a handful of samples instead of a full training
// campaign — and delta artifacts already in the store resolve against the
// prior at load time. Legacy full artifacts in the same store serve
// unchanged:
//
//	voltserved -store /var/lib/voltsense/fleet -prior golden.prior.json \
//	  -calibrate-shrinkage 1 -calibrate-min-samples 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on the side listener's mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"voltsense/internal/core"
	"voltsense/internal/faults"
	"voltsense/internal/monitor"
	"voltsense/internal/online"
	"voltsense/internal/serve"
	"voltsense/internal/transfer"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "voltserved:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("voltserved", flag.ContinueOnError)
	modelPath := fs.String("model", "", "predictor artifact JSON written by sensorplace -model (single-tenant mode)")
	storeDir := fs.String("store", "", "directory of <tenant-id>.json artifacts (fleet mode; mutually exclusive with -model)")
	defaultTenant := fs.String("default-tenant", "", "tenant served to requests that name none (default \"default\")")
	maxTenants := fs.Int("max-tenants", 0, "resident tenant models before LRU eviction (0 = default 64)")
	tenantIdle := fs.Duration("tenant-idle", 0, "evict tenants idle longer than this; 0 disables the sweep")
	maxInflight := fs.Int("max-inflight", 0, "concurrently admitted unary requests; 0 = unlimited")
	maxQueue := fs.Int("max-queue", 0, "requests queued for an admission slot before shedding")
	queueTimeout := fs.Duration("queue-timeout", 0, "longest a queued request waits before shedding (0 = default 250ms)")
	maxStreams := fs.Int("max-streams", 0, "concurrently open NDJSON sessions across all tenants; 0 = unlimited")
	maxTenantStreams := fs.Int("max-tenant-streams", 0, "concurrently open NDJSON sessions per tenant; 0 = unlimited")
	addr := fs.String("addr", ":8080", "listen address")
	vth := fs.Float64("vth", 0.95, "default emergency threshold for streaming sessions (volts)")
	clearMargin := fs.Float64("clear-margin", 0, "hysteresis margin above vth to clear an alarm (0 = monitor default)")
	clearCycles := fs.Int("clear-cycles", 0, "consecutive recovered cycles to clear an alarm (0 = monitor default)")
	maxBatch := fs.Int("max-batch", 4096, "largest /v1/predict batch accepted")
	grace := fs.Duration("shutdown-grace", 10*time.Second, "drain time before force-closing streams on SIGINT/SIGTERM")
	faultSpec := fs.String("fault-spec", "", "inject synthetic sensor faults: inline JSON or a path to a spec file (chaos drills)")
	detWindow := fs.Int("detector-window", 0, "fault-detector rolling window in cycles (0 = default 32)")
	retryAfter := fs.Duration("retry-after", 0, "Retry-After sent with degraded 503s (0 = default 10s)")
	adapt := fs.Bool("adapt", false, "enable online recalibration via POST /v1/feedback (shadow refit + guarded promotion)")
	forgetting := fs.Float64("forgetting", 0, "exponential forgetting factor λ for the shadow refit, 0<λ≤1 (0 = default 0.995)")
	promoteMin := fs.Int("promote-min-samples", 0, "scored samples required before a shadow may be promoted (0 = default 256)")
	promoteMargin := fs.Float64("promote-margin", 0, "TE improvement the shadow must show over the live model (0 = default 0.002)")
	feedbackLog := fs.String("feedback-log", "", "append accepted /v1/feedback samples to this CSV file (audit trail)")
	priorPath := fs.String("prior", "", "shared golden-chip prior artifact (voltsense-prior/v1); enables POST /v1/calibrate and thin delta artifacts in the store (fleet mode only)")
	calibShrinkage := fs.Float64("calibrate-shrinkage", 0, "prior trust τ for /v1/calibrate refits; larger stays closer to the golden prior (0 = default 1)")
	calibMinSamples := fs.Int("calibrate-min-samples", 0, "labeled samples below which /v1/calibrate enrolls at the pure prior mean (0 = default 4)")
	version := fs.String("version", "", "build version reported by the voltsense_build_info metric")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this side address (e.g. localhost:6060); keep it off the service port and firewalled")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" && *storeDir == "" {
		fs.Usage()
		return errors.New("one of -model or -store is required")
	}
	if *modelPath != "" && *storeDir != "" {
		return errors.New("-model and -store are mutually exclusive")
	}
	injected, err := loadFaultSpec(*faultSpec)
	if err != nil {
		return err
	}
	var prior *transfer.SharedPrior
	if *priorPath != "" {
		if *storeDir == "" {
			return errors.New("-prior requires -store (fleet mode)")
		}
		f, err := os.Open(*priorPath)
		if err != nil {
			return fmt.Errorf("-prior: %w", err)
		}
		prior, err = transfer.LoadPrior(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("-prior: %w", err)
		}
	}

	var loader func() (*core.Predictor, error)
	if *modelPath != "" {
		loader = func() (*core.Predictor, error) {
			f, err := os.Open(*modelPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return core.LoadPredictor(f)
		}
	}

	var fbLog io.Writer
	if *feedbackLog != "" {
		f, err := os.OpenFile(*feedbackLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("-feedback-log: %w", err)
		}
		defer f.Close()
		fbLog = f
	}

	srv, err := serve.New(serve.Config{
		Loader:        loader,
		StoreDir:      *storeDir,
		DefaultTenant: *defaultTenant,
		MaxTenants:    *maxTenants,
		Overload: serve.Overload{
			MaxInflight:      *maxInflight,
			MaxQueue:         *maxQueue,
			QueueTimeout:     *queueTimeout,
			MaxStreams:       *maxStreams,
			MaxTenantStreams: *maxTenantStreams,
		},
		Monitor: monitor.Config{
			Vth:         *vth,
			ClearMargin: *clearMargin,
			ClearCycles: *clearCycles,
		},
		MaxBatch:     *maxBatch,
		Detector:     faults.DetectorConfig{Window: *detWindow},
		InjectFaults: injected,
		RetryAfter:   *retryAfter,
		Adapt:        *adapt,
		Adaptation: online.Config{
			Forgetting: *forgetting,
			MinSamples: *promoteMin,
			Margin:     *promoteMargin,
		},
		FeedbackLog:         fbLog,
		Version:             *version,
		Prior:               prior,
		CalibrateShrinkage:  *calibShrinkage,
		CalibrateMinSamples: *calibMinSamples,
	})
	if err != nil {
		return err
	}
	if *storeDir != "" {
		log.Printf("voltserved: fleet store %s (default tenant %q), listening on %s", *storeDir, srv.DefaultTenantID(), *addr)
	} else {
		log.Printf("voltserved: model %s loaded (generation %d), listening on %s", *modelPath, srv.Generation(), *addr)
	}
	if len(injected) > 0 {
		log.Printf("voltserved: CHAOS MODE — injecting %d synthetic sensor faults per -fault-spec", len(injected))
	}
	if *adapt {
		log.Printf("voltserved: online recalibration enabled (POST /v1/feedback); rollback via POST /v1/rollback")
	}
	if prior != nil {
		log.Printf("voltserved: fleet transfer calibration enabled (POST /v1/calibrate); prior %s fingerprint %s", *priorPath, prior.Fingerprint())
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.Reload(); err != nil {
				log.Printf("voltserved: SIGHUP reload failed, previous models still serving: %v", err)
				continue
			}
			if *storeDir != "" {
				log.Printf("voltserved: SIGHUP rescanned %s", *storeDir)
			} else {
				log.Printf("voltserved: SIGHUP reloaded %s (generation %d)", *modelPath, srv.Generation())
			}
		}
	}()

	if *tenantIdle > 0 {
		sweep := *tenantIdle / 4
		if sweep < time.Second {
			sweep = time.Second
		}
		go func() {
			for range time.Tick(sweep) {
				if evicted := srv.EvictIdleTenants(*tenantIdle); len(evicted) > 0 {
					log.Printf("voltserved: evicted idle tenants %v", evicted)
				}
			}
		}()
	}

	if *pprofAddr != "" {
		// The pprof handlers register themselves on http.DefaultServeMux via
		// the net/http/pprof import; serving that mux on a dedicated side
		// listener keeps profiling endpoints off the public service mux.
		go func() {
			log.Printf("voltserved: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("voltserved: pprof listener failed: %v", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("voltserved: %v, draining for up to %v", sig, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("voltserved: grace period expired, force-closed remaining streams: %v", err)
		}
		return <-errc
	}
}

// loadFaultSpec resolves the -fault-spec flag: empty means none, a leading
// '{' means inline JSON, anything else is a file path.
func loadFaultSpec(spec string) ([]faults.Fault, error) {
	if spec == "" {
		return nil, nil
	}
	data := []byte(spec)
	if !strings.HasPrefix(strings.TrimSpace(spec), "{") {
		b, err := os.ReadFile(spec)
		if err != nil {
			return nil, fmt.Errorf("-fault-spec: %w", err)
		}
		data = b
	}
	fl, err := faults.ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("-fault-spec: %w", err)
	}
	return fl, nil
}
