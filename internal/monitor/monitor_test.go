package monitor

import (
	"math"
	"testing"
)

// scriptedPredictor replays pre-scripted per-cycle predictions, ignoring the
// sensor readings.
type scriptedPredictor struct {
	script [][]float64
	cycle  int
}

func (s *scriptedPredictor) Predict([]float64) []float64 {
	out := s.script[s.cycle%len(s.script)]
	s.cycle++
	return out
}

func newMonitor(t *testing.T, script [][]float64, cfg Config, th Throttler) *Monitor {
	t.Helper()
	m, err := New(&scriptedPredictor{script: script}, len(script[0]), cfg, th)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAlarmRaiseAndClear(t *testing.T) {
	script := [][]float64{
		{0.95, 0.95}, // quiet
		{0.80, 0.95}, // block 0 dips
		{0.80, 0.95}, // still down (no new event)
		{0.90, 0.95}, // recovered 1
		{0.90, 0.95}, // recovered 2 → clear
		{0.95, 0.95},
	}
	m := newMonitor(t, script, Config{Vth: 0.85, ClearMargin: 0.02, ClearCycles: 2}, nil)
	var all []Event
	for c := range script {
		all = append(all, m.Process(c, nil)...)
	}
	if len(all) != 2 {
		t.Fatalf("events = %+v, want raise+clear", all)
	}
	if all[0].Kind != AlarmRaised || all[0].Block != 0 || all[0].Cycle != 1 {
		t.Fatalf("first event = %+v", all[0])
	}
	if all[1].Kind != AlarmCleared || all[1].Cycle != 4 {
		t.Fatalf("second event = %+v", all[1])
	}
}

func TestHysteresisPreventsChatter(t *testing.T) {
	// Voltage oscillates right around Vth: alarm must raise once and stay
	// raised because recovery never reaches Vth+margin.
	script := [][]float64{
		{0.849}, {0.851}, {0.849}, {0.851}, {0.849}, {0.851},
	}
	m := newMonitor(t, script, Config{Vth: 0.85, ClearMargin: 0.02, ClearCycles: 2}, nil)
	raises := 0
	for c := range script {
		for _, e := range m.Process(c, nil) {
			if e.Kind == AlarmRaised {
				raises++
			}
		}
	}
	if raises != 1 {
		t.Fatalf("raises = %d, want 1 (hysteresis)", raises)
	}
	if !m.InAlarm(0) {
		t.Fatal("alarm should still be active")
	}
}

func TestClearRequiresConsecutiveCycles(t *testing.T) {
	script := [][]float64{
		{0.80},  // raise
		{0.90},  // recovered 1
		{0.845}, // dip below clear band (but not below Vth) → reset counter
		{0.90},  // recovered 1
		{0.90},  // recovered 2 → clear
	}
	m := newMonitor(t, script, Config{Vth: 0.85, ClearMargin: 0.02, ClearCycles: 2}, nil)
	var clearCycle = -1
	for c := range script {
		for _, e := range m.Process(c, nil) {
			if e.Kind == AlarmCleared {
				clearCycle = e.Cycle
			}
		}
	}
	if clearCycle != 4 {
		t.Fatalf("cleared at %d, want 4 (counter reset by dip)", clearCycle)
	}
}

func TestThrottlerInvoked(t *testing.T) {
	script := [][]float64{
		{0.95, 0.80, 0.80},
		{0.95, 0.95, 0.95},
	}
	var got [][]int
	th := ThrottleFunc(func(cycle int, blocks []int) {
		got = append(got, append([]int{cycle}, blocks...))
	})
	m := newMonitor(t, script, Config{Vth: 0.85}, th)
	m.Process(0, nil)
	m.Process(1, nil)
	if len(got) != 1 {
		t.Fatalf("throttler called %d times, want 1", len(got))
	}
	if got[0][0] != 0 || got[0][1] != 1 || got[0][2] != 2 {
		t.Fatalf("throttle call = %v, want cycle 0 blocks [1 2]", got[0])
	}
}

func TestStats(t *testing.T) {
	script := [][]float64{
		{0.95, 0.80},
		{0.95, 0.78},
		{0.95, 0.95},
		{0.95, 0.95},
		{0.95, 0.95},
	}
	m := newMonitor(t, script, Config{Vth: 0.85, ClearCycles: 2}, nil)
	for c := range script {
		m.Process(c, nil)
	}
	s := m.Stats()
	if s.Cycles != 5 {
		t.Errorf("Cycles = %d", s.Cycles)
	}
	if s.Alarms != 1 || s.PerBlockAlarms[1] != 1 || s.PerBlockAlarms[0] != 0 {
		t.Errorf("alarm counts wrong: %+v", s)
	}
	if s.WorstVoltage != 0.78 || s.WorstBlock != 1 {
		t.Errorf("worst = %v at %d", s.WorstVoltage, s.WorstBlock)
	}
	// In alarm during cycles 1 (raise was cycle 0): cycles 0,1,2,3 — raised
	// at 0, recovered cycles 2 and 3 clear at 3. EmergencyCycles counts
	// block-cycles spent in alarm: cycles 0,1,2 plus cycle 3 pre-clear? The
	// machine clears during cycle 3, so alarm is active on 0,1,2.
	if s.EmergencyCycles != 3 {
		t.Errorf("EmergencyCycles = %d, want 3", s.EmergencyCycles)
	}
	if s.PerBlockMin[0] != 0.95 {
		t.Errorf("PerBlockMin[0] = %v", s.PerBlockMin[0])
	}
}

func TestActiveAlarms(t *testing.T) {
	script := [][]float64{{0.80, 0.95, 0.80}}
	m := newMonitor(t, script, Config{Vth: 0.85}, nil)
	m.Process(0, nil)
	got := m.ActiveAlarms()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("ActiveAlarms = %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(&scriptedPredictor{script: [][]float64{{1}}}, 1, Config{}, nil); err == nil {
		t.Error("expected error for missing Vth")
	}
	if _, err := New(&scriptedPredictor{script: [][]float64{{1}}}, 0, Config{Vth: 0.85}, nil); err == nil {
		t.Error("expected error for zero blocks")
	}
	if _, err := New(&scriptedPredictor{script: [][]float64{{1}}}, 1, Config{Vth: 0.85, ClearMargin: -1}, nil); err == nil {
		t.Error("expected error for negative margin")
	}
}

func TestPredictorSizeMismatchPanics(t *testing.T) {
	m, err := New(&scriptedPredictor{script: [][]float64{{1, 2}}}, 3, Config{Vth: 0.85}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Process(0, nil)
}

func TestResetClearsAllSessionState(t *testing.T) {
	script := [][]float64{
		{0.80, 0.78}, // both blocks raise; block 1 is the worst
		{0.80, 0.90},
	}
	m := newMonitor(t, script, Config{Vth: 0.85, ClearCycles: 2}, nil)
	m.Process(0, nil)
	m.Process(1, nil)
	if len(m.ActiveAlarms()) == 0 || m.Stats().Alarms == 0 {
		t.Fatal("setup failed to open alarms")
	}

	m.Reset()

	if got := m.ActiveAlarms(); got != nil {
		t.Errorf("ActiveAlarms after Reset = %v", got)
	}
	s := m.Stats()
	if s.Cycles != 0 || s.Alarms != 0 || s.EmergencyCycles != 0 {
		t.Errorf("counters survived Reset: %+v", s)
	}
	if s.WorstBlock != -1 || !math.IsInf(s.WorstVoltage, 1) {
		t.Errorf("worst tracking survived Reset: %+v", s)
	}
	for b := range s.PerBlockAlarms {
		if s.PerBlockAlarms[b] != 0 || !math.IsInf(s.PerBlockMin[b], 1) {
			t.Errorf("per-block state survived Reset: %+v", s)
		}
	}

	// A reset monitor must behave identically to a fresh one, including the
	// hysteresis counters: a dip-recover sequence straddling Reset must not
	// count pre-Reset recovered cycles.
	fresh := newMonitor(t, script, Config{Vth: 0.85, ClearCycles: 2}, nil)
	reused, _ := m.pred.(*scriptedPredictor)
	reused.cycle = 0
	for c := range script {
		got := m.Process(c, nil)
		want := fresh.Process(c, nil)
		if len(got) != len(want) {
			t.Fatalf("cycle %d: reset monitor emitted %v, fresh emitted %v", c, got, want)
		}
	}
	if m.NumBlocks() != 2 {
		t.Errorf("NumBlocks = %d", m.NumBlocks())
	}
}

func TestProcessPredictedSkipsPredictor(t *testing.T) {
	m, err := New(nil, 2, Config{Vth: 0.85}, nil)
	if err != nil {
		t.Fatal(err)
	}
	events := m.ProcessPredicted(0, []float64{0.80, 0.95})
	if len(events) != 1 || events[0].Block != 0 || events[0].Kind != AlarmRaised {
		t.Fatalf("events = %+v", events)
	}
}

func TestEventKindString(t *testing.T) {
	if AlarmRaised.String() != "raised" || AlarmCleared.String() != "cleared" {
		t.Error("EventKind strings wrong")
	}
	if EventKind(9).String() == "" {
		t.Error("unknown kind should stringify")
	}
}

// TestSetPredictorPreservesAlarmState is the fault-tolerance switch
// contract: swapping to a fallback predictor mid-session must not reset
// open alarms or hysteresis counters.
func TestSetPredictorPreservesAlarmState(t *testing.T) {
	primary := &scriptedPredictor{script: [][]float64{
		{0.80, 0.95}, // block 0 enters emergency
		{0.80, 0.95},
	}}
	m, err := New(primary, 2, Config{Vth: 0.85, ClearMargin: 0.02, ClearCycles: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Process(0, nil)
	m.Process(1, nil)
	if !m.InAlarm(0) {
		t.Fatal("block 0 should be in emergency before the switch")
	}

	// Switch to a fallback that sees block 0 recovered: the open alarm must
	// survive the swap and clear only through normal hysteresis.
	fallback := &scriptedPredictor{script: [][]float64{{0.90, 0.95}}}
	m.SetPredictor(fallback)
	if !m.InAlarm(0) {
		t.Fatal("SetPredictor reset the open alarm")
	}
	ev := m.Process(2, nil) // recovered 1 of 2 — must not clear yet
	if len(ev) != 0 || !m.InAlarm(0) {
		t.Fatalf("hysteresis counter reset by SetPredictor: events %v", ev)
	}
	ev = m.Process(3, nil) // recovered 2 of 2 → clear
	if len(ev) != 1 || ev[0].Kind != AlarmCleared || m.InAlarm(0) {
		t.Fatalf("expected clear after 2 recovered cycles, got %v", ev)
	}
	st := m.Stats()
	if st.Cycles != 4 || st.Alarms != 1 {
		t.Fatalf("session stats reset by SetPredictor: %+v", st)
	}
}
