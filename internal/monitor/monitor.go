// Package monitor is the runtime half of the methodology: the paper trains
// the placement and prediction model at design time, then only evaluates
// Eq. 20 "for dynamic noise management at runtime". This package wraps that
// evaluation in the state machine a real noise-management loop needs —
// per-block emergency tracking with hysteresis, event generation, throttle
// hooks, and occupancy statistics — consuming one sensor-reading vector per
// cycle.
//
// The monitor is deliberately predictor-agnostic: SetPredictor swaps the
// model mid-session while every alarm and hysteresis counter survives, which
// is how the serving layer's fault-tolerance tier (internal/faults) switches
// to a leave-k-out fallback without resetting open emergencies.
package monitor

import (
	"fmt"
	"math"
)

// Predictor maps one sensor-reading vector to per-block voltage estimates.
// core.Predictor satisfies it; tests use stubs.
type Predictor interface {
	Predict(sensorV []float64) []float64
}

// Throttler receives the block IDs entering emergency, so a DVFS/issue
// controller can react. Implementations must be fast; they run inline.
type Throttler interface {
	Throttle(cycle int, blocks []int)
}

// ThrottleFunc adapts a function to the Throttler interface.
type ThrottleFunc func(cycle int, blocks []int)

// Throttle calls f.
func (f ThrottleFunc) Throttle(cycle int, blocks []int) { f(cycle, blocks) }

// EventKind distinguishes monitor events.
type EventKind int

// Event kinds.
const (
	AlarmRaised EventKind = iota
	AlarmCleared
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case AlarmRaised:
		return "raised"
	case AlarmCleared:
		return "cleared"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one emergency state transition at one block.
type Event struct {
	Cycle   int
	Kind    EventKind
	Block   int
	Voltage float64 // predicted voltage that triggered the transition
}

// Config tunes the alarm state machine.
type Config struct {
	// Vth is the emergency threshold (volts). Required.
	Vth float64
	// ClearMargin is how far above Vth a block must recover before its
	// alarm clears, preventing chatter around the threshold. Default 0.01 V.
	ClearMargin float64
	// ClearCycles is how many consecutive recovered cycles are needed to
	// clear. Default 2.
	ClearCycles int
}

func (c Config) withDefaults() (Config, error) {
	if c.Vth <= 0 {
		return c, fmt.Errorf("monitor: Vth %v must be positive", c.Vth)
	}
	if c.ClearMargin < 0 {
		return c, fmt.Errorf("monitor: negative ClearMargin %v", c.ClearMargin)
	}
	if c.ClearMargin == 0 {
		c.ClearMargin = 0.01
	}
	if c.ClearCycles <= 0 {
		c.ClearCycles = 2
	}
	return c, nil
}

// Stats aggregates a monitoring session.
type Stats struct {
	Cycles          int
	Alarms          int       // raise events
	EmergencyCycles int       // Σ over blocks of cycles spent in alarm
	WorstVoltage    float64   // most pessimistic prediction seen
	WorstBlock      int       // block of WorstVoltage
	PerBlockAlarms  []int     // raise events per block
	PerBlockMin     []float64 // worst prediction per block
}

// Monitor tracks per-block emergency state from streaming predictions.
type Monitor struct {
	pred      Predictor
	cfg       Config
	throttler Throttler

	inAlarm   []bool
	recovered []int // consecutive cycles above Vth+margin while in alarm
	stats     Stats
}

// New builds a monitor for a predictor with k output blocks.
func New(pred Predictor, k int, cfg Config, throttler Throttler) (*Monitor, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("monitor: block count %d must be positive", k)
	}
	m := &Monitor{
		pred:      pred,
		cfg:       c,
		throttler: throttler,
		inAlarm:   make([]bool, k),
		recovered: make([]int, k),
	}
	m.stats.PerBlockAlarms = make([]int, k)
	m.stats.PerBlockMin = make([]float64, k)
	m.resetStats()
	return m, nil
}

func (m *Monitor) resetStats() {
	m.stats.Cycles = 0
	m.stats.Alarms = 0
	m.stats.EmergencyCycles = 0
	for i := range m.stats.PerBlockAlarms {
		m.stats.PerBlockAlarms[i] = 0
		m.stats.PerBlockMin[i] = math.Inf(1)
	}
	m.stats.WorstVoltage = math.Inf(1)
	m.stats.WorstBlock = -1
}

// Reset returns the monitor to its freshly-constructed state — no open
// alarms, zeroed hysteresis counters, cleared statistics — without
// reallocating, so serving layers can pool monitors across sessions.
func (m *Monitor) Reset() {
	for i := range m.inAlarm {
		m.inAlarm[i] = false
		m.recovered[i] = 0
	}
	m.resetStats()
}

// NumBlocks returns the number of blocks the monitor tracks.
func (m *Monitor) NumBlocks() int { return len(m.inAlarm) }

// SetPredictor swaps the predictor feeding Process while preserving every
// open alarm, hysteresis counter, and session statistic. This is the
// fault-tolerance switch: when sensors fail and a leave-k-out fallback takes
// over (see internal/faults), a block already in emergency must stay in
// emergency — resetting the state machine on a model swap would silently
// clear real alarms and re-raise phantom ones. The new predictor must emit
// the same number of blocks.
func (m *Monitor) SetPredictor(pred Predictor) {
	m.pred = pred
}

// Process consumes one cycle's sensor readings and returns the emergency
// transitions it caused, in block order. The returned slice is nil on quiet
// cycles.
func (m *Monitor) Process(cycle int, readings []float64) []Event {
	return m.ProcessPredicted(cycle, m.pred.Predict(readings))
}

// ProcessPredicted is Process for callers that already evaluated the
// predictor this cycle (e.g. a serving layer that also streams the voltage
// map), so the Eq. 20 evaluation is not paid twice.
func (m *Monitor) ProcessPredicted(cycle int, f []float64) []Event {
	if len(f) != len(m.inAlarm) {
		panic(fmt.Sprintf("monitor: predictor returned %d blocks, monitor has %d", len(f), len(m.inAlarm)))
	}
	m.stats.Cycles++
	var events []Event
	var raised []int
	for b, v := range f {
		if v < m.stats.PerBlockMin[b] {
			m.stats.PerBlockMin[b] = v
		}
		if v < m.stats.WorstVoltage {
			m.stats.WorstVoltage = v
			m.stats.WorstBlock = b
		}
		switch {
		case !m.inAlarm[b] && v < m.cfg.Vth:
			m.inAlarm[b] = true
			m.recovered[b] = 0
			m.stats.Alarms++
			m.stats.PerBlockAlarms[b]++
			events = append(events, Event{Cycle: cycle, Kind: AlarmRaised, Block: b, Voltage: v})
			raised = append(raised, b)
		case m.inAlarm[b] && v >= m.cfg.Vth+m.cfg.ClearMargin:
			m.recovered[b]++
			if m.recovered[b] >= m.cfg.ClearCycles {
				m.inAlarm[b] = false
				m.recovered[b] = 0
				events = append(events, Event{Cycle: cycle, Kind: AlarmCleared, Block: b, Voltage: v})
			}
		case m.inAlarm[b]:
			m.recovered[b] = 0 // dipped back under the clear band
		}
		if m.inAlarm[b] {
			m.stats.EmergencyCycles++
		}
	}
	if len(raised) > 0 && m.throttler != nil {
		m.throttler.Throttle(cycle, raised)
	}
	return events
}

// InAlarm reports whether block b is currently in emergency.
func (m *Monitor) InAlarm(b int) bool { return m.inAlarm[b] }

// ActiveAlarms returns the blocks currently in emergency, ascending.
func (m *Monitor) ActiveAlarms() []int {
	var out []int
	for b, a := range m.inAlarm {
		if a {
			out = append(out, b)
		}
	}
	return out
}

// Stats returns a snapshot of the session statistics.
func (m *Monitor) Stats() Stats {
	s := m.stats
	s.PerBlockAlarms = append([]int(nil), m.stats.PerBlockAlarms...)
	s.PerBlockMin = append([]float64(nil), m.stats.PerBlockMin...)
	return s
}
