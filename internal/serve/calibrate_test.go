package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"voltsense/internal/core"
	"voltsense/internal/mat"
	"voltsense/internal/online"
	"voltsense/internal/transfer"
)

// testPrior pins a golden-chip prior with exactly testPredictor's
// coefficients as its mean (2 sensors, 3 blocks), so prior-only enrollment
// serves the same numbers as the legacy fixture.
func testPrior() *transfer.SharedPrior {
	mean := mat.Zeros(3, 3) // rows: alpha0, alpha1, intercept per block
	mean.Set(0, 0, 1)
	mean.Set(1, 1, 1)
	mean.Set(2, 0, 0.5)
	mean.Set(2, 1, 0.5)
	return &transfer.SharedPrior{
		Selected: []int{3, 7},
		Mean:     mean,
		Prec:     []float64{10, 10, 10},
		NoiseVar: 1e-4,
		Goldens:  2,
	}
}

// trueChip is the fielded chip's actual response, deliberately off the
// golden prior: per-chip process variation the calibration must recover.
func trueChip(r0, r1 float64) []float64 {
	return []float64{0.9*r0 + 0.05, 1.1*r1 - 0.02, 0.55*r0 + 0.45*r1 + 0.01}
}

// calibBody builds a /v1/calibrate request with n labeled samples drawn
// from trueChip at pseudo-random operating points.
func calibBody(t *testing.T, tenant string, rng *rand.Rand, n int) string {
	t.Helper()
	req := calibrateRequest{Tenant: tenant}
	for i := 0; i < n; i++ {
		r0 := 0.85 + 0.15*rng.Float64()
		r1 := 0.85 + 0.15*rng.Float64()
		req.Samples = append(req.Samples, feedbackSample{
			Readings: []reading{reading(r0), reading(r1)},
			Voltages: trueChip(r0, r1),
		})
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCalibrateDisabledWithoutPrior(t *testing.T) {
	// Fleet mode without a pinned prior: calibration is off.
	_, ts, _ := newFleetServer(t, Config{}, map[string]string{"default": legacyArtifact})
	code, b := postJSON(t, ts.URL+"/v1/calibrate", `{"tenant":"chipA","samples":[]}`)
	if code != 404 || !strings.Contains(string(b), "-prior") {
		t.Fatalf("calibrate without prior: code %d body %s", code, b)
	}

	// Single-tenant mode can never calibrate (no store to persist into).
	_, ts2 := newTestServer(t)
	code, b = postJSON(t, ts2.URL+"/v1/calibrate", `{"samples":[]}`)
	if code != 404 || !strings.Contains(string(b), "-store") {
		t.Fatalf("calibrate in single-tenant mode: code %d body %s", code, b)
	}

	// Prior without a store is a config error, not a silent no-op.
	if _, err := New(Config{
		Loader: func() (*core.Predictor, error) { return testPredictor(), nil },
		Prior:  testPrior(),
	}); err == nil {
		t.Fatal("Config.Prior without StoreDir accepted")
	}
}

func TestCalibrateEnrollsNewTenantAndRecalibrates(t *testing.T) {
	s, ts, dir := newFleetServer(t, Config{Prior: testPrior()},
		map[string]string{"default": legacyArtifact})
	legacyBefore, err := os.ReadFile(filepath.Join(dir, "default.json"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	// A tenant with no artifact at all enrolls through calibration.
	code, b := postJSON(t, ts.URL+"/v1/calibrate", calibBody(t, "chipNew", rng, 16))
	var cr calibrateResponse
	json.Unmarshal(b, &cr)
	if code != 200 || cr.PriorOnly || cr.Accepted != 16 || cr.ModelVersion != 1 {
		t.Fatalf("enroll: code %d resp %+v body %s", code, cr, b)
	}
	if cr.DeltaCoefficients == 0 || cr.PriorFingerprint == "" {
		t.Fatalf("enroll produced empty delta or fingerprint: %+v", cr)
	}
	art, err := os.ReadFile(filepath.Join(dir, "chipNew.json"))
	if err != nil {
		t.Fatalf("calibration wrote no artifact: %v", err)
	}
	if !bytes.Contains(art, []byte(transfer.DeltaFormat)) {
		t.Fatalf("artifact is not a thin delta: %s", art)
	}

	// The aligned model serves immediately and tracks the fielded chip, not
	// the golden prior.
	code, pr, _ := predictAs(t, ts, "chipNew", `{"readings":[[1.0,1.0]]}`)
	if code != 200 || pr.Tenant != "chipNew" {
		t.Fatalf("predict on calibrated tenant: code %d resp %+v", code, pr)
	}
	want := trueChip(1.0, 1.0)
	for i, v := range pr.Voltages[0] {
		if math.Abs(v-want[i]) > 0.02 {
			t.Fatalf("block %d: aligned predicts %.4f, fielded chip is %.4f (prior mean 1.0)", i, v, want[i])
		}
	}

	// Recalibration chains the lineage: version parent+1, generation bumps.
	genBefore := cr.ModelGeneration
	code, b = postJSON(t, ts.URL+"/v1/calibrate", calibBody(t, "chipNew", rng, 32))
	json.Unmarshal(b, &cr)
	if code != 200 || cr.ModelVersion != 2 || cr.ModelGeneration <= genBefore {
		t.Fatalf("recalibrate: code %d resp %+v body %s", code, cr, b)
	}

	// The legacy tenant's artifact and serving behavior are untouched.
	legacyAfter, err := os.ReadFile(filepath.Join(dir, "default.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacyBefore, legacyAfter) {
		t.Fatal("calibrating chipNew rewrote the legacy default artifact")
	}
	code, pr, _ = predictAs(t, ts, "", `{"readings":[[0.9,0.7]]}`)
	if code != 200 || pr.Tenant != "default" || pr.Blocks != 3 {
		t.Fatalf("legacy tenant after calibrations: code %d resp %+v", code, pr)
	}

	if got := s.Metrics().TransferCalibrations.Value(); got != 2 {
		t.Fatalf("TransferCalibrations = %d, want 2", got)
	}
	if got := s.Metrics().TransferSamples.Value(); got != 48 {
		t.Fatalf("TransferSamples = %d, want 48", got)
	}
	if got := s.Metrics().TransferDeltaLoads.Value(); got < 2 {
		t.Fatalf("TransferDeltaLoads = %d, want >= 2", got)
	}
	var mb strings.Builder
	s.Metrics().WritePrometheus(&mb)
	if !strings.Contains(mb.String(), "voltserved_transfer_calibrations_total 2") {
		t.Fatal("metrics exposition missing voltserved_transfer_calibrations_total")
	}
}

func TestCalibrateEvidenceGateEnrollsAtPriorMean(t *testing.T) {
	_, ts, _ := newFleetServer(t, Config{Prior: testPrior()}, nil)
	rng := rand.New(rand.NewSource(7))

	// Two samples sit below the default gate of four: the tenant enrolls at
	// the pure prior mean and the response says so.
	code, b := postJSON(t, ts.URL+"/v1/calibrate", calibBody(t, "sparse", rng, 2))
	var cr calibrateResponse
	json.Unmarshal(b, &cr)
	if code != 200 || !cr.PriorOnly || cr.Note == "" {
		t.Fatalf("gated calibrate: code %d resp %+v body %s", code, cr, b)
	}
	code, pr, _ := predictAs(t, ts, "sparse", `{"readings":[[1.0,1.0]]}`)
	if code != 200 {
		t.Fatalf("predict on gated tenant: code %d", code)
	}
	for i, v := range pr.Voltages[0] {
		if math.Abs(v-1.0) > 1e-9 { // prior mean at [1,1] is exactly 1.0 per block
			t.Fatalf("block %d: gated tenant predicts %.6f, want exact prior mean 1.0", i, v)
		}
	}

	// Zero samples is legal zero-shot enrollment.
	code, b = postJSON(t, ts.URL+"/v1/calibrate", `{"tenant":"zeroshot","samples":[]}`)
	json.Unmarshal(b, &cr)
	if code != 200 || !cr.PriorOnly || cr.Accepted != 0 {
		t.Fatalf("zero-shot enroll: code %d resp %+v body %s", code, cr, b)
	}

	// Shape violations reject the whole batch.
	code, b = postJSON(t, ts.URL+"/v1/calibrate",
		`{"tenant":"bad","samples":[{"readings":[1.0],"voltages":[1,1,1]}]}`)
	if code != 400 {
		t.Fatalf("short readings accepted: code %d body %s", code, b)
	}
	code, _ = postJSON(t, ts.URL+"/v1/calibrate",
		`{"tenant":"bad","samples":[{"readings":[1.0,1.0],"voltages":[1,1]}]}`)
	if code != 400 {
		t.Fatal("short voltages accepted")
	}
	code, _ = postJSON(t, ts.URL+"/v1/calibrate",
		`{"tenant":"bad","samples":[{"readings":[null,1.0],"voltages":[1,1,1]}]}`)
	if code != 400 {
		t.Fatal("null reading accepted into calibration")
	}
	code, _ = postJSON(t, ts.URL+"/v1/calibrate", `{"tenant":"../evil","samples":[]}`)
	if code != 400 {
		t.Fatal("invalid tenant id accepted")
	}
}

// TestFleetMixedStoreLegacyAndDeltaUnderTraffic is the acceptance check for
// the thin-artifact path: a store holding both legacy full predictors and
// delta artifacts serves both tenant kinds under concurrent traffic, with
// recalibrations landing mid-flight, and the legacy artifact stays
// byte-identical on disk.
func TestFleetMixedStoreLegacyAndDeltaUnderTraffic(t *testing.T) {
	prior := testPrior()

	// Pre-write a delta artifact the way an earlier calibration would have.
	rng := rand.New(rand.NewSource(3))
	n := 12
	x := mat.Zeros(2, n)
	f := mat.Zeros(3, n)
	for i := 0; i < n; i++ {
		r0 := 0.85 + 0.15*rng.Float64()
		r1 := 0.85 + 0.15*rng.Float64()
		x.Set(0, i, r0)
		x.Set(1, i, r1)
		for j, v := range trueChip(r0, r1) {
			f.Set(j, i, v)
		}
	}
	al, err := transfer.AlignChip(prior, x, f, transfer.AlignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := transfer.SaveDelta(&buf, al.Delta, al.Predictor.Lineage); err != nil {
		t.Fatal(err)
	}

	s, ts, dir := newFleetServer(t, Config{Prior: prior}, map[string]string{
		"legacy": legacyArtifact,
		"thin":   buf.String(),
	})
	legacyBefore, err := os.ReadFile(filepath.Join(dir, "legacy.json"))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				for _, tenant := range []string{"legacy", "thin"} {
					code, _, body := predictAs(t, ts, tenant, `{"readings":[[0.95,0.95]]}`)
					if code != 200 {
						errc <- fmt.Errorf("%s predict: code %d body %s", tenant, code, body)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		crng := rand.New(rand.NewSource(99))
		for i := 0; i < 5; i++ {
			code, b := postJSON(t, ts.URL+"/v1/calibrate", calibBody(t, "thin", crng, 8))
			if code != 200 {
				errc <- fmt.Errorf("mid-traffic calibrate: code %d body %s", code, b)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	legacyAfter, err := os.ReadFile(filepath.Join(dir, "legacy.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacyBefore, legacyAfter) {
		t.Fatal("traffic + recalibration modified the legacy artifact")
	}
	if got := s.Metrics().TransferDeltaLoads.Value(); got < 1 {
		t.Fatalf("TransferDeltaLoads = %d, want >= 1", got)
	}

	// A server over the same store without the prior must refuse the thin
	// tenant with an actionable error, not serve garbage.
	s2, err := New(Config{StoreDir: dir, Monitor: s.cfg.Monitor})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Registry().Get("thin"); err == nil || !strings.Contains(err.Error(), "-prior") {
		t.Fatalf("delta artifact loaded without a prior: %v", err)
	}
}

// TestConcurrentCalibrateAndFeedbackSameTenant hammers one tenant with
// interleaved /v1/calibrate refits (which replace the tenant runtime through
// the registry) and /v1/feedback ingests (which adapt whatever runtime they
// resolved) under -race. Every request must complete coherently; promotions
// from adapters orphaned by a concurrent refresh are refused, not raced.
func TestConcurrentCalibrateAndFeedbackSameTenant(t *testing.T) {
	s, ts, _ := newFleetServer(t, Config{
		Prior: testPrior(),
		Adapt: true,
		Adaptation: online.Config{
			Forgetting: 0.999,
			MinSamples: 64,
		},
	}, nil)
	rng := rand.New(rand.NewSource(5))

	// Enroll the tenant first so feedback has a runtime to land on.
	code, b := postJSON(t, ts.URL+"/v1/calibrate", calibBody(t, "chip", rng, 8))
	if code != 200 {
		t.Fatalf("initial calibrate: code %d body %s", code, b)
	}

	const calibrators, feeders, iters = 2, 4, 15
	var wg sync.WaitGroup
	errc := make(chan error, calibrators+feeders)
	for w := 0; w < calibrators; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				code, b := postJSON(t, ts.URL+"/v1/calibrate", calibBody(t, "chip", crng, 8))
				if code != 200 {
					errc <- fmt.Errorf("calibrate: code %d body %s", code, b)
					return
				}
			}
		}(int64(100 + w))
	}
	for w := 0; w < feeders; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			frng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				body := calibBody(t, "chip", frng, 4) // same JSON shape as feedback
				code, b := postJSON(t, ts.URL+"/v1/feedback", body)
				if code != 200 {
					errc <- fmt.Errorf("feedback: code %d body %s", code, b)
					return
				}
			}
		}(int64(200 + w))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The tenant is still coherent: it serves, and every calibration was
	// counted exactly once.
	code, pr, _ := predictAs(t, ts, "chip", `{"readings":[[1.0,1.0]]}`)
	if code != 200 || len(pr.Voltages) != 1 {
		t.Fatalf("post-race predict: code %d resp %+v", code, pr)
	}
	if got := s.Metrics().TransferCalibrations.Value(); got != 1+calibrators*iters {
		t.Fatalf("TransferCalibrations = %d, want %d", got, 1+calibrators*iters)
	}
}
