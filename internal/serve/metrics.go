package serve

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer metric.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float64 metric, stored atomically via its
// IEEE bit pattern so readers never observe a torn value.
type FloatGauge struct{ v atomic.Uint64 }

// Set replaces the value.
func (g *FloatGauge) Set(f float64) { g.v.Store(math.Float64bits(f)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// latencyBuckets are the histogram upper bounds in seconds, spanning the
// sub-millisecond Eq. 20 evaluations up to pathological multi-second stalls.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64 // cumulative, one per latencyBuckets entry
	sum    float64
	count  uint64
}

// Observe records one latency sample in seconds.
func (h *Histogram) Observe(seconds float64) {
	h.mu.Lock()
	if h.counts == nil {
		h.counts = make([]uint64, len(latencyBuckets))
	}
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
	h.sum += seconds
	h.count++
	h.mu.Unlock()
}

// snapshot returns a consistent copy for exposition.
func (h *Histogram) snapshot() (counts []uint64, sum float64, count uint64) {
	h.mu.Lock()
	counts = make([]uint64, len(latencyBuckets))
	copy(counts, h.counts)
	sum, count = h.sum, h.count
	h.mu.Unlock()
	return
}

// TenantMetrics holds one tenant's monotone counters. Counter families are
// label-bounded by construction: the registry folds a tenant's counts into
// the `_retired` aggregate when it leaves the cache (RetireTenant), so the
// exposition's tenant label set never outgrows the resident fleet.
type TenantMetrics struct {
	mu          sync.Mutex
	predictions map[uint64]*Counter // model generation → vectors evaluated
	shed        map[string]*Counter // shed reason → count

	StreamsTotal     Counter // streaming sessions ever opened on this tenant
	DegradedRequests Counter // requests refused or streams ended degraded
}

// AddPredictions counts n evaluated sensor vectors against the given model
// generation, so promotions and reloads are visible in scrape deltas.
func (t *TenantMetrics) AddPredictions(gen uint64, n uint64) {
	t.mu.Lock()
	c := t.predictions[gen]
	if c == nil {
		c = &Counter{}
		t.predictions[gen] = c
	}
	t.mu.Unlock()
	c.Add(n)
}

// Shed returns the counter for one shed reason (see the shedReasons set).
func (t *TenantMetrics) Shed(reason string) *Counter {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.shed[reason]
	if c == nil {
		c = &Counter{}
		t.shed[reason] = c
	}
	return c
}

// predictionsSnapshot returns the per-generation counts in generation order.
func (t *TenantMetrics) predictionsSnapshot() ([]uint64, map[uint64]uint64) {
	t.mu.Lock()
	gens := make([]uint64, 0, len(t.predictions))
	vals := make(map[uint64]uint64, len(t.predictions))
	for g, c := range t.predictions {
		gens = append(gens, g)
		vals[g] = c.Value()
	}
	t.mu.Unlock()
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, vals
}

// shedSnapshot returns the per-reason shed counts.
func (t *TenantMetrics) shedSnapshot() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]uint64, len(t.shed))
	for reason, c := range t.shed {
		out[reason] = c.Value()
	}
	return out
}

// predictionsTotal sums evaluated vectors across generations.
func (t *TenantMetrics) predictionsTotal() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n uint64
	for _, c := range t.predictions {
		n += c.Value()
	}
	return n
}

// TenantSnapshot is one tenant's instantaneous state, collected at scrape
// time so gauge cardinality always equals the resident tenant set.
type TenantSnapshot struct {
	ID            string
	Generation    uint64
	ActiveStreams int64
	FaultySensors int
	Degraded      bool
}

// retiredTenant is the label value aggregating counters of tenants that
// left the registry (eviction, removal, or artifact swap).
const retiredTenant = "_retired"

// Metrics is the server's dependency-free metric registry. It exposes the
// Prometheus text format (version 0.0.4) without importing any client
// library, per the repo's stdlib-only rule.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]*Counter   // "path\x00code" → count
	latency  map[string]*Histogram // path → latency histogram
	tenants  map[string]*TenantMetrics
	version  string // build version for voltsense_build_info

	// Folded counts of retired tenants keep the totals monotone while the
	// per-tenant series disappear with their tenant.
	retiredPredictions Counter
	retiredStreams     Counter
	retiredDegraded    Counter
	retiredShed        map[string]*Counter

	// snapshotFn supplies the scrape-time per-tenant gauges; admissionFn
	// supplies the admission-queue gauges. Both are set by the server.
	snapshotFn  func() []TenantSnapshot
	admissionFn func() (inflight, queued int64)

	ActiveStreams Gauge   // streaming sessions currently open
	StreamsTotal  Counter // streaming sessions ever opened
	AlarmsRaised  Counter // cumulative raise events across all streams
	AlarmsCleared Counter // cumulative clear events across all streams
	Reloads       Counter // successful model hot-swaps

	FaultySensors    Gauge   // sensors currently diagnosed faulty
	ActiveFallback   Gauge   // sensors excluded by the serving fallback (0 = primary model)
	FallbackSwitches Counter // fault-tier state changes (diagnoses and switches)
	DegradedRequests Counter // requests refused or sessions ended in degraded mode

	ModelGeneration   Gauge      // generation of the predictor currently serving
	Promotions        Counter    // shadow models promoted to live
	Rollbacks         Counter    // operator rollbacks to the previous generation
	PromotionsBlocked Counter    // promotion attempts refused (degraded, faulty, stale)
	FeedbackSamples   Counter    // labeled samples accepted into the adaptation loop
	FeedbackSkipped   Counter    // labeled samples dropped (faulty sensors, bad values)
	DriftScore        FloatGauge // live-model residual sigmas above its baseline
	LiveTE            FloatGauge // live-model total error over the evaluation window
	ShadowTE          FloatGauge // shadow-model total error over the evaluation window

	Shed            Counter // requests/streams shed by overload control, all tenants
	TenantLoads     Counter // tenant runtimes built (cold loads and rescan swaps)
	TenantEvictions Counter // tenants retired by LRU capacity, idle TTL, or removal

	TransferCalibrations Counter // /v1/calibrate alignments completed
	TransferPriorOnly    Counter // calibrations held at the prior mean by the evidence gate
	TransferSamples      Counter // labeled samples consumed by calibrations
	TransferDeltaLoads   Counter // thin delta artifacts resolved against the pinned prior
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:    make(map[string]*Counter),
		latency:     make(map[string]*Histogram),
		tenants:     make(map[string]*TenantMetrics),
		retiredShed: make(map[string]*Counter),
		version:     "dev",
	}
}

// Tenant returns (creating if needed) the counter set for one tenant id.
func (m *Metrics) Tenant(id string) *TenantMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tenants[id]
	if t == nil {
		t = &TenantMetrics{
			predictions: make(map[uint64]*Counter),
			shed:        make(map[string]*Counter),
		}
		m.tenants[id] = t
	}
	return t
}

// RetireTenant folds a departed tenant's counters into the `_retired`
// aggregate and drops its per-tenant series, keeping label cardinality
// bounded by the resident fleet while totals stay monotone.
func (m *Metrics) RetireTenant(id string) {
	m.mu.Lock()
	t := m.tenants[id]
	delete(m.tenants, id)
	m.mu.Unlock()
	if t == nil {
		return
	}
	m.retiredPredictions.Add(t.predictionsTotal())
	m.retiredStreams.Add(t.StreamsTotal.Value())
	m.retiredDegraded.Add(t.DegradedRequests.Value())
	t.mu.Lock()
	shed := make(map[string]uint64, len(t.shed))
	for reason, c := range t.shed {
		shed[reason] = c.Value()
	}
	t.mu.Unlock()
	m.mu.Lock()
	for reason, n := range shed {
		c := m.retiredShed[reason]
		if c == nil {
			c = &Counter{}
			m.retiredShed[reason] = c
		}
		c.Add(n)
	}
	m.mu.Unlock()
}

// TenantLabelCount reports how many tenant ids currently carry counter
// series (the cardinality-bound invariant checked by tests).
func (m *Metrics) TenantLabelCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.tenants)
}

// SetTenantSnapshotFunc installs the scrape-time source of per-tenant
// gauges (resident tenants only).
func (m *Metrics) SetTenantSnapshotFunc(fn func() []TenantSnapshot) {
	m.mu.Lock()
	m.snapshotFn = fn
	m.mu.Unlock()
}

// SetAdmissionStatsFunc installs the scrape-time source of the admission
// queue gauges.
func (m *Metrics) SetAdmissionStatsFunc(fn func() (inflight, queued int64)) {
	m.mu.Lock()
	m.admissionFn = fn
	m.mu.Unlock()
}

// SetVersion records the build version exposed by voltsense_build_info.
func (m *Metrics) SetVersion(v string) {
	m.mu.Lock()
	if v != "" {
		m.version = v
	}
	m.mu.Unlock()
}

// PredictionsTotal sums evaluated vectors across all tenants and
// generations, including retired tenants.
func (m *Metrics) PredictionsTotal() uint64 {
	m.mu.Lock()
	tenants := make([]*TenantMetrics, 0, len(m.tenants))
	for _, t := range m.tenants {
		tenants = append(tenants, t)
	}
	m.mu.Unlock()
	total := m.retiredPredictions.Value()
	for _, t := range tenants {
		total += t.predictionsTotal()
	}
	return total
}

// ObserveRequest records one completed HTTP request.
func (m *Metrics) ObserveRequest(path string, code int, d time.Duration) {
	key := path + "\x00" + strconv.Itoa(code)
	m.mu.Lock()
	c := m.requests[key]
	if c == nil {
		c = &Counter{}
		m.requests[key] = c
	}
	h := m.latency[path]
	if h == nil {
		h = &Histogram{}
		m.latency[path] = h
	}
	m.mu.Unlock()
	c.Inc()
	h.Observe(d.Seconds())
}

// RequestCount returns the recorded count for one path+code pair (testing
// and health reporting).
func (m *Metrics) RequestCount(path string, code int) uint64 {
	m.mu.Lock()
	c := m.requests[path+"\x00"+strconv.Itoa(code)]
	m.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// WritePrometheus writes the registry in Prometheus text exposition format,
// with series in deterministic order. Every metric family — including
// multi-series families like the generation-labeled prediction counter —
// gets exactly one # HELP and one # TYPE line ahead of its samples.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	reqKeys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	latKeys := make([]string, 0, len(m.latency))
	for k := range m.latency {
		latKeys = append(latKeys, k)
	}
	reqs := make(map[string]*Counter, len(m.requests))
	for k, v := range m.requests {
		reqs[k] = v
	}
	lats := make(map[string]*Histogram, len(m.latency))
	for k, v := range m.latency {
		lats[k] = v
	}
	tenantIDs := make([]string, 0, len(m.tenants))
	for id := range m.tenants {
		tenantIDs = append(tenantIDs, id)
	}
	tenants := make(map[string]*TenantMetrics, len(m.tenants))
	for id, t := range m.tenants {
		tenants[id] = t
	}
	retiredShed := make(map[string]uint64, len(m.retiredShed))
	for reason, c := range m.retiredShed {
		retiredShed[reason] = c.Value()
	}
	snapshotFn, admissionFn := m.snapshotFn, m.admissionFn
	version := m.version
	m.mu.Unlock()
	sort.Strings(reqKeys)
	sort.Strings(latKeys)
	sort.Strings(tenantIDs)
	var snaps []TenantSnapshot
	if snapshotFn != nil {
		snaps = snapshotFn()
	}

	fmt.Fprintln(w, "# HELP voltserved_requests_total HTTP requests served, by path and status code.")
	fmt.Fprintln(w, "# TYPE voltserved_requests_total counter")
	for _, k := range reqKeys {
		var path, code string
		for i := 0; i < len(k); i++ {
			if k[i] == 0 {
				path, code = k[:i], k[i+1:]
				break
			}
		}
		fmt.Fprintf(w, "voltserved_requests_total{path=%q,code=%q} %d\n", path, code, reqs[k].Value())
	}

	fmt.Fprintln(w, "# HELP voltserved_request_seconds Request latency, by path.")
	fmt.Fprintln(w, "# TYPE voltserved_request_seconds histogram")
	for _, path := range latKeys {
		counts, sum, count := lats[path].snapshot()
		for i, ub := range latencyBuckets {
			fmt.Fprintf(w, "voltserved_request_seconds_bucket{path=%q,le=%q} %d\n",
				path, strconv.FormatFloat(ub, 'g', -1, 64), counts[i])
		}
		fmt.Fprintf(w, "voltserved_request_seconds_bucket{path=%q,le=\"+Inf\"} %d\n", path, count)
		fmt.Fprintf(w, "voltserved_request_seconds_sum{path=%q} %g\n", path, sum)
		fmt.Fprintf(w, "voltserved_request_seconds_count{path=%q} %d\n", path, count)
	}

	writeGauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	writeCounter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintln(w, "# HELP voltserved_predictions_total Sensor vectors evaluated (batch and stream), by tenant and model generation.")
	fmt.Fprintln(w, "# TYPE voltserved_predictions_total counter")
	for _, id := range tenantIDs {
		gens, vals := tenants[id].predictionsSnapshot()
		for _, g := range gens {
			fmt.Fprintf(w, "voltserved_predictions_total{tenant=%q,model_generation=\"%d\"} %d\n", id, g, vals[g])
		}
	}
	if v := m.retiredPredictions.Value(); v > 0 {
		fmt.Fprintf(w, "voltserved_predictions_total{tenant=%q,model_generation=\"all\"} %d\n", retiredTenant, v)
	}

	writeGauge("voltserved_active_streams", "Streaming sessions currently open.", m.ActiveStreams.Value())
	writeCounter("voltserved_streams_total", "Streaming sessions ever opened.", m.StreamsTotal.Value())
	writeCounter("voltserved_alarms_raised_total", "Alarm raise events across all streams.", m.AlarmsRaised.Value())
	writeCounter("voltserved_alarms_cleared_total", "Alarm clear events across all streams.", m.AlarmsCleared.Value())
	writeCounter("voltserved_model_reloads_total", "Successful predictor hot-swaps.", m.Reloads.Value())
	writeGauge("voltserved_faulty_sensors", "Sensors currently diagnosed faulty (dropout, stuck, or drift).", m.FaultySensors.Value())
	writeGauge("voltserved_active_fallback", "Sensors excluded by the serving fallback model (0 = primary).", m.ActiveFallback.Value())
	writeCounter("voltserved_fallback_switches_total", "Fault-tier state changes: diagnoses and fallback switches.", m.FallbackSwitches.Value())
	writeCounter("voltserved_degraded_requests_total", "Requests refused (503) or streams ended because no fallback covers the failed sensors.", m.DegradedRequests.Value())

	writeGauge("voltserved_model_generation", "Generation of the predictor currently serving.", m.ModelGeneration.Value())
	writeCounter("voltserved_promotions_total", "Shadow models promoted to live by the adaptation loop.", m.Promotions.Value())
	writeCounter("voltserved_rollbacks_total", "Operator rollbacks to the previous model generation.", m.Rollbacks.Value())
	writeCounter("voltserved_promotions_blocked_total", "Promotion attempts refused (degraded serving tier, faulty sensors, or stale adapter).", m.PromotionsBlocked.Value())
	writeCounter("voltserved_feedback_samples_total", "Labeled samples accepted into the adaptation loop.", m.FeedbackSamples.Value())
	writeCounter("voltserved_feedback_skipped_total", "Labeled samples dropped before ingestion (faulty sensors or bad values).", m.FeedbackSkipped.Value())
	writeFloatGauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	writeFloatGauge("voltserved_drift_score", "Live-model residual sigmas above the drift baseline.", m.DriftScore.Value())
	writeFloatGauge("voltserved_live_te", "Live-model total error over the shadow evaluation window.", m.LiveTE.Value())
	writeFloatGauge("voltserved_shadow_te", "Shadow-model total error over the shadow evaluation window.", m.ShadowTE.Value())

	// Transfer-calibration families (/v1/calibrate and delta artifact loads).
	writeCounter("voltserved_transfer_calibrations_total", "Fleet transfer calibrations completed via /v1/calibrate.", m.TransferCalibrations.Value())
	writeCounter("voltserved_transfer_prior_only_total", "Calibrations held at the shared prior mean by the evidence gate.", m.TransferPriorOnly.Value())
	writeCounter("voltserved_transfer_samples_total", "Labeled samples consumed by fleet transfer calibrations.", m.TransferSamples.Value())
	writeCounter("voltserved_transfer_delta_loads_total", "Thin voltsense-delta/v1 artifacts resolved against the pinned prior.", m.TransferDeltaLoads.Value())

	// Fleet families. Counter series carry the tenant label only while the
	// tenant holds counters; retired tenants fold into one _retired series,
	// so cardinality tracks the resident fleet, not its history.
	writeCounter("voltserved_shed_total", "Requests and streams refused by overload control, all tenants.", m.Shed.Value())
	fmt.Fprintln(w, "# HELP voltserved_tenant_shed_total Requests and streams refused by overload control, by tenant and reason.")
	fmt.Fprintln(w, "# TYPE voltserved_tenant_shed_total counter")
	for _, id := range tenantIDs {
		shed := tenants[id].shedSnapshot()
		for _, reason := range shedReasons {
			if v, ok := shed[reason]; ok {
				fmt.Fprintf(w, "voltserved_tenant_shed_total{tenant=%q,reason=%q} %d\n", id, reason, v)
			}
		}
	}
	for _, reason := range shedReasons {
		if v, ok := retiredShed[reason]; ok && v > 0 {
			fmt.Fprintf(w, "voltserved_tenant_shed_total{tenant=%q,reason=%q} %d\n", retiredTenant, reason, v)
		}
	}
	fmt.Fprintln(w, "# HELP voltserved_tenant_streams_total Streaming sessions ever opened, by tenant.")
	fmt.Fprintln(w, "# TYPE voltserved_tenant_streams_total counter")
	for _, id := range tenantIDs {
		fmt.Fprintf(w, "voltserved_tenant_streams_total{tenant=%q} %d\n", id, tenants[id].StreamsTotal.Value())
	}
	if v := m.retiredStreams.Value(); v > 0 {
		fmt.Fprintf(w, "voltserved_tenant_streams_total{tenant=%q} %d\n", retiredTenant, v)
	}
	fmt.Fprintln(w, "# HELP voltserved_tenant_degraded_requests_total Requests refused or streams ended degraded, by tenant.")
	fmt.Fprintln(w, "# TYPE voltserved_tenant_degraded_requests_total counter")
	for _, id := range tenantIDs {
		fmt.Fprintf(w, "voltserved_tenant_degraded_requests_total{tenant=%q} %d\n", id, tenants[id].DegradedRequests.Value())
	}
	if v := m.retiredDegraded.Value(); v > 0 {
		fmt.Fprintf(w, "voltserved_tenant_degraded_requests_total{tenant=%q} %d\n", retiredTenant, v)
	}
	writeCounter("voltserved_tenant_loads_total", "Tenant runtimes built: cold loads and rescan swaps.", m.TenantLoads.Value())
	writeCounter("voltserved_tenant_evictions_total", "Tenants retired by LRU capacity, idle TTL, or artifact removal.", m.TenantEvictions.Value())
	writeGauge("voltserved_tenants_resident", "Tenants currently loaded in the model registry.", int64(len(snaps)))

	// Per-tenant gauges come from a scrape-time snapshot of the resident
	// fleet; an evicted tenant's series vanish with it.
	fmt.Fprintln(w, "# HELP voltserved_tenant_model_generation Generation of the predictor serving each resident tenant.")
	fmt.Fprintln(w, "# TYPE voltserved_tenant_model_generation gauge")
	for _, sn := range snaps {
		fmt.Fprintf(w, "voltserved_tenant_model_generation{tenant=%q} %d\n", sn.ID, sn.Generation)
	}
	fmt.Fprintln(w, "# HELP voltserved_tenant_active_streams Streaming sessions currently open, by resident tenant.")
	fmt.Fprintln(w, "# TYPE voltserved_tenant_active_streams gauge")
	for _, sn := range snaps {
		fmt.Fprintf(w, "voltserved_tenant_active_streams{tenant=%q} %d\n", sn.ID, sn.ActiveStreams)
	}
	fmt.Fprintln(w, "# HELP voltserved_tenant_faulty_sensors Sensors currently diagnosed faulty, by resident tenant.")
	fmt.Fprintln(w, "# TYPE voltserved_tenant_faulty_sensors gauge")
	for _, sn := range snaps {
		fmt.Fprintf(w, "voltserved_tenant_faulty_sensors{tenant=%q} %d\n", sn.ID, sn.FaultySensors)
	}
	fmt.Fprintln(w, "# HELP voltserved_tenant_degraded Whether the tenant's fault tier is degraded (1) or serving (0).")
	fmt.Fprintln(w, "# TYPE voltserved_tenant_degraded gauge")
	for _, sn := range snaps {
		degraded := 0
		if sn.Degraded {
			degraded = 1
		}
		fmt.Fprintf(w, "voltserved_tenant_degraded{tenant=%q} %d\n", sn.ID, degraded)
	}
	var inflight, queued int64
	if admissionFn != nil {
		inflight, queued = admissionFn()
	}
	writeGauge("voltserved_admission_inflight", "Unary requests currently admitted by overload control.", inflight)
	writeGauge("voltserved_admission_queued", "Unary requests waiting for an admission slot.", queued)

	fmt.Fprintln(w, "# HELP voltsense_build_info Build metadata; the value is always 1.")
	fmt.Fprintln(w, "# TYPE voltsense_build_info gauge")
	fmt.Fprintf(w, "voltsense_build_info{version=%q,goversion=%q} 1\n", version, runtime.Version())
}
