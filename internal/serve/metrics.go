package serve

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer metric.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float64 metric, stored atomically via its
// IEEE bit pattern so readers never observe a torn value.
type FloatGauge struct{ v atomic.Uint64 }

// Set replaces the value.
func (g *FloatGauge) Set(f float64) { g.v.Store(math.Float64bits(f)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// latencyBuckets are the histogram upper bounds in seconds, spanning the
// sub-millisecond Eq. 20 evaluations up to pathological multi-second stalls.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64 // cumulative, one per latencyBuckets entry
	sum    float64
	count  uint64
}

// Observe records one latency sample in seconds.
func (h *Histogram) Observe(seconds float64) {
	h.mu.Lock()
	if h.counts == nil {
		h.counts = make([]uint64, len(latencyBuckets))
	}
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.counts[i]++
		}
	}
	h.sum += seconds
	h.count++
	h.mu.Unlock()
}

// snapshot returns a consistent copy for exposition.
func (h *Histogram) snapshot() (counts []uint64, sum float64, count uint64) {
	h.mu.Lock()
	counts = make([]uint64, len(latencyBuckets))
	copy(counts, h.counts)
	sum, count = h.sum, h.count
	h.mu.Unlock()
	return
}

// Metrics is the server's dependency-free metric registry. It exposes the
// Prometheus text format (version 0.0.4) without importing any client
// library, per the repo's stdlib-only rule.
type Metrics struct {
	mu          sync.Mutex
	requests    map[string]*Counter   // "path\x00code" → count
	latency     map[string]*Histogram // path → latency histogram
	predictions map[uint64]*Counter   // model generation → vectors evaluated
	version     string                // build version for voltsense_build_info

	ActiveStreams Gauge   // streaming sessions currently open
	StreamsTotal  Counter // streaming sessions ever opened
	AlarmsRaised  Counter // cumulative raise events across all streams
	AlarmsCleared Counter // cumulative clear events across all streams
	Reloads       Counter // successful model hot-swaps

	FaultySensors    Gauge   // sensors currently diagnosed faulty
	ActiveFallback   Gauge   // sensors excluded by the serving fallback (0 = primary model)
	FallbackSwitches Counter // fault-tier state changes (diagnoses and switches)
	DegradedRequests Counter // requests refused or sessions ended in degraded mode

	ModelGeneration   Gauge      // generation of the predictor currently serving
	Promotions        Counter    // shadow models promoted to live
	Rollbacks         Counter    // operator rollbacks to the previous generation
	PromotionsBlocked Counter    // promotion attempts refused (degraded, faulty, stale)
	FeedbackSamples   Counter    // labeled samples accepted into the adaptation loop
	FeedbackSkipped   Counter    // labeled samples dropped (faulty sensors, bad values)
	DriftScore        FloatGauge // live-model residual sigmas above its baseline
	LiveTE            FloatGauge // live-model total error over the evaluation window
	ShadowTE          FloatGauge // shadow-model total error over the evaluation window
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:    make(map[string]*Counter),
		latency:     make(map[string]*Histogram),
		predictions: make(map[uint64]*Counter),
		version:     "dev",
	}
}

// SetVersion records the build version exposed by voltsense_build_info.
func (m *Metrics) SetVersion(v string) {
	m.mu.Lock()
	if v != "" {
		m.version = v
	}
	m.mu.Unlock()
}

// AddPredictions counts n evaluated sensor vectors against the given model
// generation, so promotions and reloads are visible in scrape deltas.
func (m *Metrics) AddPredictions(gen uint64, n uint64) {
	m.mu.Lock()
	c := m.predictions[gen]
	if c == nil {
		c = &Counter{}
		m.predictions[gen] = c
	}
	m.mu.Unlock()
	c.Add(n)
}

// PredictionsTotal sums evaluated vectors across all generations.
func (m *Metrics) PredictionsTotal() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t uint64
	for _, c := range m.predictions {
		t += c.Value()
	}
	return t
}

// ObserveRequest records one completed HTTP request.
func (m *Metrics) ObserveRequest(path string, code int, d time.Duration) {
	key := path + "\x00" + strconv.Itoa(code)
	m.mu.Lock()
	c := m.requests[key]
	if c == nil {
		c = &Counter{}
		m.requests[key] = c
	}
	h := m.latency[path]
	if h == nil {
		h = &Histogram{}
		m.latency[path] = h
	}
	m.mu.Unlock()
	c.Inc()
	h.Observe(d.Seconds())
}

// RequestCount returns the recorded count for one path+code pair (testing
// and health reporting).
func (m *Metrics) RequestCount(path string, code int) uint64 {
	m.mu.Lock()
	c := m.requests[path+"\x00"+strconv.Itoa(code)]
	m.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// WritePrometheus writes the registry in Prometheus text exposition format,
// with series in deterministic order. Every metric family — including
// multi-series families like the generation-labeled prediction counter —
// gets exactly one # HELP and one # TYPE line ahead of its samples.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	reqKeys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	latKeys := make([]string, 0, len(m.latency))
	for k := range m.latency {
		latKeys = append(latKeys, k)
	}
	reqs := make(map[string]*Counter, len(m.requests))
	for k, v := range m.requests {
		reqs[k] = v
	}
	lats := make(map[string]*Histogram, len(m.latency))
	for k, v := range m.latency {
		lats[k] = v
	}
	genKeys := make([]uint64, 0, len(m.predictions))
	for g := range m.predictions {
		genKeys = append(genKeys, g)
	}
	preds := make(map[uint64]*Counter, len(m.predictions))
	for g, c := range m.predictions {
		preds[g] = c
	}
	version := m.version
	m.mu.Unlock()
	sort.Strings(reqKeys)
	sort.Strings(latKeys)
	sort.Slice(genKeys, func(i, j int) bool { return genKeys[i] < genKeys[j] })

	fmt.Fprintln(w, "# HELP voltserved_requests_total HTTP requests served, by path and status code.")
	fmt.Fprintln(w, "# TYPE voltserved_requests_total counter")
	for _, k := range reqKeys {
		var path, code string
		for i := 0; i < len(k); i++ {
			if k[i] == 0 {
				path, code = k[:i], k[i+1:]
				break
			}
		}
		fmt.Fprintf(w, "voltserved_requests_total{path=%q,code=%q} %d\n", path, code, reqs[k].Value())
	}

	fmt.Fprintln(w, "# HELP voltserved_request_seconds Request latency, by path.")
	fmt.Fprintln(w, "# TYPE voltserved_request_seconds histogram")
	for _, path := range latKeys {
		counts, sum, count := lats[path].snapshot()
		for i, ub := range latencyBuckets {
			fmt.Fprintf(w, "voltserved_request_seconds_bucket{path=%q,le=%q} %d\n",
				path, strconv.FormatFloat(ub, 'g', -1, 64), counts[i])
		}
		fmt.Fprintf(w, "voltserved_request_seconds_bucket{path=%q,le=\"+Inf\"} %d\n", path, count)
		fmt.Fprintf(w, "voltserved_request_seconds_sum{path=%q} %g\n", path, sum)
		fmt.Fprintf(w, "voltserved_request_seconds_count{path=%q} %d\n", path, count)
	}

	writeGauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	writeCounter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintln(w, "# HELP voltserved_predictions_total Sensor vectors evaluated (batch and stream), by model generation.")
	fmt.Fprintln(w, "# TYPE voltserved_predictions_total counter")
	for _, g := range genKeys {
		fmt.Fprintf(w, "voltserved_predictions_total{model_generation=\"%d\"} %d\n", g, preds[g].Value())
	}

	writeGauge("voltserved_active_streams", "Streaming sessions currently open.", m.ActiveStreams.Value())
	writeCounter("voltserved_streams_total", "Streaming sessions ever opened.", m.StreamsTotal.Value())
	writeCounter("voltserved_alarms_raised_total", "Alarm raise events across all streams.", m.AlarmsRaised.Value())
	writeCounter("voltserved_alarms_cleared_total", "Alarm clear events across all streams.", m.AlarmsCleared.Value())
	writeCounter("voltserved_model_reloads_total", "Successful predictor hot-swaps.", m.Reloads.Value())
	writeGauge("voltserved_faulty_sensors", "Sensors currently diagnosed faulty (dropout, stuck, or drift).", m.FaultySensors.Value())
	writeGauge("voltserved_active_fallback", "Sensors excluded by the serving fallback model (0 = primary).", m.ActiveFallback.Value())
	writeCounter("voltserved_fallback_switches_total", "Fault-tier state changes: diagnoses and fallback switches.", m.FallbackSwitches.Value())
	writeCounter("voltserved_degraded_requests_total", "Requests refused (503) or streams ended because no fallback covers the failed sensors.", m.DegradedRequests.Value())

	writeGauge("voltserved_model_generation", "Generation of the predictor currently serving.", m.ModelGeneration.Value())
	writeCounter("voltserved_promotions_total", "Shadow models promoted to live by the adaptation loop.", m.Promotions.Value())
	writeCounter("voltserved_rollbacks_total", "Operator rollbacks to the previous model generation.", m.Rollbacks.Value())
	writeCounter("voltserved_promotions_blocked_total", "Promotion attempts refused (degraded serving tier, faulty sensors, or stale adapter).", m.PromotionsBlocked.Value())
	writeCounter("voltserved_feedback_samples_total", "Labeled samples accepted into the adaptation loop.", m.FeedbackSamples.Value())
	writeCounter("voltserved_feedback_skipped_total", "Labeled samples dropped before ingestion (faulty sensors or bad values).", m.FeedbackSkipped.Value())
	writeFloatGauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	writeFloatGauge("voltserved_drift_score", "Live-model residual sigmas above the drift baseline.", m.DriftScore.Value())
	writeFloatGauge("voltserved_live_te", "Live-model total error over the shadow evaluation window.", m.LiveTE.Value())
	writeFloatGauge("voltserved_shadow_te", "Shadow-model total error over the shadow evaluation window.", m.ShadowTE.Value())

	fmt.Fprintln(w, "# HELP voltsense_build_info Build metadata; the value is always 1.")
	fmt.Fprintln(w, "# TYPE voltsense_build_info gauge")
	fmt.Fprintf(w, "voltsense_build_info{version=%q,goversion=%q} 1\n", version, runtime.Version())
}
