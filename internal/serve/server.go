// Package serve turns the repository's offline reproduction into the shape
// the paper actually motivates: a runtime service. The paper trains sensor
// placement and the Eq. 17 model at design time, then evaluates Eq. 20 on
// live sensor readings "for dynamic noise management at runtime" — this
// package is that runtime half as a concurrent HTTP server.
//
// Endpoints:
//
//	POST /v1/predict  batched JSON inference: sensor-reading vectors in,
//	                  per-block voltage estimates out
//	POST /v1/stream   NDJSON streaming session: one line per cycle in,
//	                  monitor alarm events out; each connection owns its
//	                  own monitor state machine
//	GET  /healthz     liveness + loaded-model summary
//	GET  /metrics     Prometheus text exposition (dependency-free)
//	POST /v1/reload   atomic rescan of the model registry
//	POST /v1/calibrate  few-shot transfer calibration: labeled samples in,
//	                  a thin per-tenant delta over the shared golden-chip
//	                  prior persisted and hot-loaded (fleet mode + Prior)
//
// # Fleet serving
//
// The paper fits one predictor per chip instance; a fleet deployment hosts
// many chips behind one server. Every request routes to a tenant — the
// X-Voltsense-Tenant header, the `tenant` query parameter, or a `tenant`
// body field, defaulting to the configured default tenant — and each tenant
// owns a complete runtime (model generations, fault guard, online adapter,
// monitor pool), loaded on demand from an artifact directory through an
// LRU-bounded registry (internal/registry). Tenants are isolated by
// construction: a fault diagnosed on one chip, or a shadow model promoted
// on it, never touches another. Configured with a Loader instead of a
// StoreDir, the server runs exactly the pre-fleet single-tenant shape: one
// pinned default tenant, reloaded wholesale on /v1/reload.
//
// Each tenant's model lives behind an atomic.Pointer: /v1/reload (or SIGHUP
// in cmd/voltserved) rescans the store and swaps only tenants whose
// artifact changed, without dropping in-flight streams — a session keeps
// the runtime it started with until it ends.
//
// # Fault tolerance
//
// When an artifact carries a `fallbacks` section (core.FallbackSet), the
// tenant runs the internal/faults degradation tier: every reading vector
// feeds a chip-global fault detector, and on a diagnosis (dropout, stuck-at
// flatline, drift) prediction switches atomically to the narrowest
// precomputed leave-k-out fallback — in-flight streams keep their alarm
// hysteresis and never drop. Dropouts are reported in request JSON as null
// readings. When more sensors fail than the fallbacks cover, the tenant
// enters degraded mode: /v1/predict and new /v1/stream sessions get 503
// with Retry-After, and open streams end with an error line. Legacy
// artifacts without fallbacks serve exactly as before.
//
// # Overload control
//
// The same 503+Retry-After contract generalizes from "this chip cannot be
// served" to "the server cannot absorb this load": Config.Overload bounds
// admitted unary requests behind a slot semaphore with a bounded,
// deadline-capped queue, and caps concurrently open streams globally and
// per tenant. Work beyond the bounds is shed immediately with a
// machine-readable reason instead of queueing without limit.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"voltsense/internal/core"
	"voltsense/internal/faults"
	"voltsense/internal/monitor"
	"voltsense/internal/online"
	"voltsense/internal/registry"
	"voltsense/internal/traceio"
	"voltsense/internal/transfer"
)

// Config parameterizes a Server.
type Config struct {
	// Loader produces the default tenant's predictor; called at startup and
	// again on every reload. Typically a closure over core.LoadPredictor
	// and an artifact path. Exactly one of Loader and StoreDir is required;
	// Loader runs the server in single-tenant mode.
	Loader func() (*core.Predictor, error)
	// StoreDir, when non-empty, runs the server in fleet mode: a model
	// registry over the directory's <tenant-id>.json artifacts, loading
	// tenants on demand and routing requests by tenant id.
	StoreDir string
	// DefaultTenant is the tenant id used for requests that carry none, and
	// the id pinned against eviction. Default "default".
	DefaultTenant string
	// MaxTenants bounds resident tenant runtimes; past it the
	// least-recently-used unpinned tenant is retired (its counters fold
	// into the _retired metric aggregate). Default 64.
	MaxTenants int
	// Overload tunes admission control and stream caps; the zero value
	// means unlimited (pre-fleet behavior).
	Overload Overload
	// Monitor is the default alarm configuration for streaming sessions.
	// Vth is required; per-session query parameters can override.
	Monitor monitor.Config
	// MaxBatch caps the vectors accepted by one /v1/predict request.
	// Default 4096.
	MaxBatch int
	// MaxBodyBytes caps any single request body. Default 32 MiB.
	MaxBodyBytes int64
	// Detector tunes fault detection when a loaded artifact carries
	// fallbacks. The zero value uses the faults package defaults.
	Detector faults.DetectorConfig
	// InjectFaults, when non-empty, corrupts every incoming reading vector
	// per the spec (the voltserved --fault-spec flag) — a chaos harness for
	// drilling the degradation tier against a live server.
	InjectFaults []faults.Fault
	// RetryAfter is the Retry-After header value returned with degraded
	// 503s. Default 10 seconds.
	RetryAfter time.Duration
	// Adapt enables the online recalibration loop: POST /v1/feedback
	// ingests labeled samples into a shadow refit, and the shadow is
	// promoted to live when it beats the serving model (see
	// internal/online). POST /v1/rollback reverts the last promotion.
	Adapt bool
	// Adaptation tunes the recalibration loop. Zero values take the
	// online package defaults; a zero Vth additionally inherits
	// Monitor.Vth so scoring and alarming agree on what an emergency is.
	Adaptation online.Config
	// FeedbackLog, when non-nil, records every labeled sample accepted by
	// the default tenant's /v1/feedback as CSV rows (readings then truths)
	// via traceio.NewSampleWriter — an offline-replayable audit trail of
	// what the adaptation loop learned from.
	FeedbackLog io.Writer
	// Prior, when non-nil, pins the fleet's shared golden-chip prior
	// (internal/transfer): POST /v1/calibrate aligns a tenant's few labeled
	// samples against it and persists the result as a thin
	// voltsense-delta/v1 artifact, and the store loader resolves such delta
	// artifacts back into full predictors at load time. Requires StoreDir.
	Prior *transfer.SharedPrior
	// CalibrateShrinkage is the prior trust τ in /v1/calibrate MAP refits:
	// larger values hold the fit closer to the golden prior. 0 means the
	// transfer package default (1).
	CalibrateShrinkage float64
	// CalibrateMinSamples is the calibration evidence gate: below this many
	// labeled samples /v1/calibrate enrolls the tenant at the pure prior
	// mean instead of refitting. 0 means the transfer package default (4).
	CalibrateMinSamples int
	// CalibrateDeltaTol bounds the lossy sparsification of stored deltas
	// (see transfer.MakeDelta). 0 means the transfer package default (1e-4).
	CalibrateDeltaTol float64
	// Version is the build version exposed by the voltsense_build_info
	// metric. Empty means "dev".
	Version string
}

// Server is the voltage-map inference service.
type Server struct {
	cfg       Config
	metrics   *Metrics
	reg       *registry.Registry
	defaultID string
	gen       atomic.Uint64 // model generations, global across tenants
	start     time.Time
	mux       *http.ServeMux
	reloadMu  sync.Mutex // serializes registry rescans

	adm         *admission
	streamCount atomic.Int64 // open NDJSON sessions, all tenants

	// calibMu serializes /v1/calibrate refits: each calibration reads the
	// incumbent lineage, writes an artifact, and refreshes the registry —
	// interleaving two of those for one store is never useful.
	calibMu sync.Mutex

	// fbMu serializes the optional feedback CSV log; the writer is created
	// on the default tenant's first adapter build and dropped if a reload
	// changes the model's shape (a CSV stream has one fixed-width header).
	fbMu     sync.Mutex
	fbWriter *traceio.SampleWriter
	fbRow    []float64

	httpMu  sync.Mutex
	httpSrv *http.Server
}

// New builds a server and loads the default tenant through cfg.Loader (or,
// in fleet mode, from cfg.StoreDir if its artifact exists).
func New(cfg Config) (*Server, error) {
	if cfg.Loader == nil && cfg.StoreDir == "" {
		return nil, errors.New("serve: one of Config.Loader or Config.StoreDir is required")
	}
	if cfg.Loader != nil && cfg.StoreDir != "" {
		return nil, errors.New("serve: Config.Loader and Config.StoreDir are mutually exclusive")
	}
	if cfg.DefaultTenant == "" {
		cfg.DefaultTenant = "default"
	}
	if !registry.ValidID(cfg.DefaultTenant) {
		return nil, fmt.Errorf("serve: invalid default tenant id %q", cfg.DefaultTenant)
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 64
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 10 * time.Second
	}
	if cfg.Adaptation.Vth == 0 {
		cfg.Adaptation.Vth = cfg.Monitor.Vth
	}
	if cfg.Prior != nil && cfg.StoreDir == "" {
		return nil, errors.New("serve: Config.Prior requires Config.StoreDir (fleet mode)")
	}
	s := &Server{cfg: cfg, metrics: NewMetrics(), defaultID: cfg.DefaultTenant, start: time.Now()}
	s.metrics.SetVersion(cfg.Version)
	s.adm = newAdmission(cfg.Overload)
	s.metrics.SetTenantSnapshotFunc(s.tenantSnapshots)
	s.metrics.SetAdmissionStatsFunc(s.adm.stats)

	var src registry.Source
	if cfg.StoreDir != "" {
		src = s.dirSource(registry.Dir{Path: cfg.StoreDir})
	} else {
		src = s.loaderSource()
	}
	reg, err := registry.New(registry.Config{
		Source:   src,
		Pinned:   s.defaultID,
		Capacity: cfg.MaxTenants,
		OnRetire: s.onRetire,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.reg = reg

	// Eager-load the default tenant so a bad artifact fails startup, not
	// the first request. In fleet mode a missing default artifact is fine
	// — clients that name tenants never touch it.
	if _, err := s.reg.Get(s.defaultID); err != nil {
		if cfg.StoreDir == "" || !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("serve: initial load: %w", err)
		}
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/predict", s.instrument("/v1/predict", s.handlePredict))
	s.mux.HandleFunc("/v1/stream", s.instrument("/v1/stream", s.handleStream))
	s.mux.HandleFunc("/v1/reload", s.instrument("/v1/reload", s.handleReload))
	s.mux.HandleFunc("/v1/feedback", s.instrument("/v1/feedback", s.handleFeedback))
	s.mux.HandleFunc("/v1/calibrate", s.instrument("/v1/calibrate", s.handleCalibrate))
	s.mux.HandleFunc("/v1/rollback", s.instrument("/v1/rollback", s.handleRollback))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	return s, nil
}

// loaderSource adapts the single-tenant Loader to the registry: one id (the
// default tenant) whose fingerprint changes on every Stat, so each rescan
// re-runs the Loader — exactly the pre-fleet "/v1/reload always reloads"
// semantics.
func (s *Server) loaderSource() registry.Source {
	var statSeq atomic.Uint64
	fp := func() string { return strconv.FormatUint(statSeq.Add(1), 10) }
	return registry.Source{
		List: func() ([]string, error) { return []string{s.defaultID}, nil },
		Stat: func(id string) (string, error) {
			if id != s.defaultID {
				return "", fmt.Errorf("tenant %q: %w", id, fs.ErrNotExist)
			}
			return fp(), nil
		},
		Load: func(id string) (any, string, error) {
			if id != s.defaultID {
				return nil, "", fmt.Errorf("tenant %q: %w", id, fs.ErrNotExist)
			}
			pred, err := s.cfg.Loader()
			if err != nil {
				return nil, "", err
			}
			tn, err := s.newTenant(id, pred)
			if err != nil {
				return nil, "", err
			}
			return tn, fp(), nil
		},
	}
}

// dirSource serves tenants from the standard artifact directory layout.
func (s *Server) dirSource(dir registry.Dir) registry.Source {
	return registry.Source{
		List: dir.List,
		Stat: dir.Stat,
		Load: func(id string) (any, string, error) {
			// Fingerprint before reading: if a writer atomically replaces
			// the artifact mid-load, the next rescan sees a newer
			// fingerprint and reloads.
			fingerprint, err := dir.Stat(id)
			if err != nil {
				return nil, "", err
			}
			path, err := dir.File(id)
			if err != nil {
				return nil, "", err
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, "", err
			}
			pred, err := s.loadArtifact(data)
			if err != nil {
				return nil, "", err
			}
			tn, err := s.newTenant(id, pred)
			if err != nil {
				return nil, "", err
			}
			return tn, fingerprint, nil
		},
	}
}

// onRetire observes tenants leaving the registry. Replaced tenants (rescan
// swaps) keep their id resident, so their counters stay live under the same
// tenant label; evicted or removed tenants fold into the _retired aggregate
// to keep label cardinality bounded by the resident fleet.
func (s *Server) onRetire(id string, v any, replaced bool) {
	tn := v.(*Tenant)
	tn.retired.Store(true)
	if !replaced {
		s.metrics.RetireTenant(id)
		s.metrics.TenantEvictions.Inc()
	}
}

// Metrics exposes the registry (tests and embedders).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Registry exposes the tenant cache (tests and embedders).
func (s *Server) Registry() *registry.Registry { return s.reg }

// Handler returns the routing handler, for mounting under httptest or an
// outer mux.
func (s *Server) Handler() http.Handler { return s.mux }

// DefaultTenantID returns the id requests without a tenant route to.
func (s *Server) DefaultTenantID() string { return s.defaultID }

// defaultTenant returns the default tenant if resident (tests and health).
func (s *Server) defaultTenant() *Tenant {
	if v, ok := s.reg.Peek(s.defaultID); ok {
		return v.(*Tenant)
	}
	return nil
}

// Generation returns the default tenant's current model generation,
// starting at 1 (0 when no default artifact is loaded).
func (s *Server) Generation() uint64 {
	if tn := s.defaultTenant(); tn != nil {
		return tn.Generation()
	}
	return 0
}

// Reload rescans the model registry, atomically swapping only tenants whose
// artifact changed (in single-tenant mode: always the default tenant). On
// error the previous models keep serving. In-flight streaming sessions
// finish on the runtime they started with.
func (s *Server) Reload() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	res := s.reg.Rescan()
	if n := len(res.Reloaded); n > 0 {
		s.metrics.Reloads.Add(uint64(n))
	}
	s.refreshFaultMetrics()
	return res.Err()
}

// EvictIdleTenants retires tenants idle longer than maxIdle (never the
// default tenant), returning the retired ids. cmd/voltserved runs this on a
// timer when -tenant-idle is set.
func (s *Server) EvictIdleTenants(maxIdle time.Duration) []string {
	return s.reg.EvictIdle(maxIdle)
}

// initFeedbackLog lazily creates the CSV feedback recorder, or drops it when
// a reload changed the sample width (the stream has one fixed header row).
func (s *Server) initFeedbackLog(q, k int) {
	if s.cfg.FeedbackLog == nil {
		return
	}
	s.fbMu.Lock()
	defer s.fbMu.Unlock()
	if s.fbWriter != nil {
		if len(s.fbRow) != q+k {
			s.fbWriter = nil // width changed; stop recording rather than corrupt
		}
		return
	}
	names := make([]string, 0, q+k)
	for i := 0; i < q; i++ {
		names = append(names, fmt.Sprintf("s%d", i))
	}
	for i := 0; i < k; i++ {
		names = append(names, fmt.Sprintf("f%d", i))
	}
	sw, err := traceio.NewSampleWriter(s.cfg.FeedbackLog, names)
	if err != nil {
		return // recording is best-effort; serving must not fail on it
	}
	s.fbWriter = sw
	s.fbRow = make([]float64, q+k)
}

// degrade rejects a request in degraded mode: more of the tenant's sensors
// failed than the precomputed fallbacks cover, so every prediction would be
// garbage.
func (s *Server) degrade(w http.ResponseWriter, tn *Tenant, st faults.Status) {
	s.metrics.DegradedRequests.Inc()
	tn.tm.DegradedRequests.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds())))
	httpError(w, http.StatusServiceUnavailable,
		"degraded: %d sensors faulty (%v), no fallback covers them; replace sensors or reload a wider-budget model",
		len(st.Faulty), st.Faulty)
}

// ListenAndServe serves on addr until Shutdown or a listener error. A clean
// shutdown returns nil.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	err := srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown gracefully drains the server: new connections are refused,
// in-flight requests (including streams) get until ctx expires, then any
// still-open streaming connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv == nil {
		return nil
	}
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		return err
	}
	return nil
}

// statusRecorder captures the response code for metrics while passing
// Flush through so streaming handlers still reach the client incrementally.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		t0 := time.Now()
		h(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.metrics.ObserveRequest(path, rec.status, time.Since(t0))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		httpError(w, http.StatusMethodNotAllowed, "%s requires %s", r.URL.Path, method)
		return false
	}
	return true
}

// reading decodes a JSON number or null. null marks a sensor dropout (JSON
// cannot carry NaN) and decodes to NaN, which the fault tier treats as
// dropout evidence; without fault tolerance it is rejected like any other
// non-finite reading.
type reading float64

// UnmarshalJSON implements the null-to-NaN decoding.
func (r *reading) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*r = reading(math.NaN())
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*r = reading(f)
	return nil
}

// toFloats converts a decoded reading vector.
func toFloats(rs []reading) []float64 {
	out := make([]float64, len(rs))
	for i, v := range rs {
		out[i] = float64(v)
	}
	return out
}

// predictRequest is the /v1/predict input: one or more sensor-reading
// vectors, each of length Q (the tenant's model sensor count). Tenant is
// optional; it routes the request when no header or query parameter does.
type predictRequest struct {
	Tenant   string      `json:"tenant"`
	Readings [][]reading `json:"readings"`
}

// predictResponse carries per-block voltage estimates, one row per input
// vector, each of length K.
type predictResponse struct {
	Tenant          string      `json:"tenant"`
	ModelGeneration uint64      `json:"model_generation"`
	Blocks          int         `json:"blocks"`
	Voltages        [][]float64 `json:"voltages"`
}

// checkVector validates one reading vector. With the fault tier active
// (allowNaN), NaN readings — decoded from JSON null — are legitimate
// dropout markers; infinities are never accepted.
func checkVector(v []float64, q int, allowNaN bool) error {
	if len(v) != q {
		return fmt.Errorf("reading has %d values, model wants %d", len(v), q)
	}
	for _, x := range v {
		if math.IsNaN(x) && !allowNaN {
			return fmt.Errorf("reading contains null/NaN; the loaded model has no fallbacks to tolerate a dropout")
		}
		if math.IsInf(x, 0) {
			return fmt.Errorf("reading contains non-finite value %v", x)
		}
	}
	return nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	release, reason := s.adm.acquire()
	if reason != "" {
		s.shed(w, s.tenantForShed(r), reason)
		return
	}
	defer release()
	var req predictRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	if len(req.Readings) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch: provide at least one readings vector")
		return
	}
	if len(req.Readings) > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds limit %d", len(req.Readings), s.cfg.MaxBatch)
		return
	}
	tn, ok := s.resolveTenant(w, r, req.Tenant)
	if !ok {
		return
	}
	m := tn.cur.Load()
	batch := make([][]float64, len(req.Readings))
	for i, rv := range req.Readings {
		batch[i] = toFloats(rv)
		if err := checkVector(batch[i], m.q, m.guard != nil); err != nil {
			httpError(w, http.StatusBadRequest, "readings[%d]: %v", i, err)
			return
		}
	}
	if m.guard != nil && m.guard.Snapshot().Degraded {
		s.degrade(w, tn, m.guard.Snapshot())
		return
	}
	out := make([][]float64, len(batch))
	for i, v := range batch {
		if m.injector != nil {
			m.injector.Apply(int(tn.injectCycle.Add(1)-1), v)
		}
		if m.guard == nil {
			out[i] = m.pred.Predict(v)
			continue
		}
		f, st := m.guard.Process(v)
		if st.Changed {
			s.metrics.FallbackSwitches.Inc()
			s.refreshFaultMetrics()
		}
		if st.Degraded {
			s.degrade(w, tn, st)
			return
		}
		out[i] = f
	}
	tn.tm.AddPredictions(m.gen, uint64(len(batch)))
	writeJSON(w, http.StatusOK, predictResponse{
		Tenant:          tn.id,
		ModelGeneration: m.gen,
		Blocks:          m.k,
		Voltages:        out,
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	s.reloadMu.Lock()
	res := s.reg.Rescan()
	if n := len(res.Reloaded); n > 0 {
		s.metrics.Reloads.Add(uint64(n))
	}
	s.refreshFaultMetrics()
	s.reloadMu.Unlock()
	if err := res.Err(); err != nil {
		httpError(w, http.StatusInternalServerError, "reload failed, previous model still serving: %v", err)
		return
	}
	resp := map[string]any{
		"status":   "reloaded",
		"reloaded": res.Reloaded,
		"removed":  res.Removed,
	}
	if tn := s.defaultTenant(); tn != nil {
		m := tn.cur.Load()
		resp["model_generation"] = m.gen
		resp["sensors"] = m.q
		resp["blocks"] = m.k
	}
	writeJSON(w, http.StatusOK, resp)
}

// feedbackSample pairs one cycle's sensor readings with the ground-truth
// critical-node voltages measured for it (periodic on-die scan or offline
// replay). Feedback carries no nulls: a labeled sample with a dropped-out
// sensor teaches the fit garbage, so non-finite values are rejected.
type feedbackSample struct {
	Readings []reading `json:"readings"`
	Voltages []float64 `json:"voltages"`
}

// feedbackRequest is the /v1/feedback input. Tenant is optional routing,
// like predictRequest's.
type feedbackRequest struct {
	Tenant  string           `json:"tenant"`
	Samples []feedbackSample `json:"samples"`
}

// feedbackResponse reports what the batch did to the adaptation loop.
type feedbackResponse struct {
	Accepted        int     `json:"accepted"`
	Skipped         int     `json:"skipped"`
	Promoted        bool    `json:"promoted"`
	ModelGeneration uint64  `json:"model_generation"`
	ModelVersion    int     `json:"model_version"`
	ShadowSamples   int     `json:"shadow_samples"`
	DriftScore      float64 `json:"drift_score"`
	LiveTE          float64 `json:"live_te"`
	ShadowTE        float64 `json:"shadow_te"`
	Note            string  `json:"note,omitempty"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if !s.cfg.Adapt {
		httpError(w, http.StatusNotFound, "online adaptation is disabled; restart voltserved with -adapt")
		return
	}
	release, reason := s.adm.acquire()
	if reason != "" {
		s.shed(w, s.tenantForShed(r), reason)
		return
	}
	defer release()
	var req feedbackRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	if len(req.Samples) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch: provide at least one labeled sample")
		return
	}
	if len(req.Samples) > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds limit %d", len(req.Samples), s.cfg.MaxBatch)
		return
	}
	tn, ok := s.resolveTenant(w, r, req.Tenant)
	if !ok {
		return
	}
	ast := tn.adapter.Load()
	if ast == nil {
		httpError(w, http.StatusNotFound, "online adaptation is disabled; restart voltserved with -adapt")
		return
	}
	m := tn.cur.Load()
	if m.guard != nil {
		st := m.guard.Snapshot()
		if st.Degraded {
			s.degrade(w, tn, st)
			return
		}
		if len(st.Faulty) > 0 {
			// Readings from diagnosed sensors are corrupt; learning from
			// them would converge the shadow onto the fault, not the chip.
			s.metrics.FeedbackSkipped.Add(uint64(len(req.Samples)))
			stat := ast.ad.Status()
			writeJSON(w, http.StatusOK, feedbackResponse{
				Skipped:         len(req.Samples),
				ModelGeneration: m.gen,
				ModelVersion:    stat.Version,
				ShadowSamples:   stat.ShadowSamples,
				DriftScore:      stat.DriftScore,
				LiveTE:          stat.LiveTE,
				ShadowTE:        stat.ShadowTE,
				Note:            fmt.Sprintf("samples skipped: sensors %v are faulty", st.Faulty),
			})
			return
		}
	}
	// Validate the whole batch before ingesting any of it, so a bad sample
	// rejects the request without half-applying it.
	batch := make([][]float64, len(req.Samples))
	for i, smp := range req.Samples {
		batch[i] = toFloats(smp.Readings)
		if err := checkVector(batch[i], ast.q, false); err != nil {
			httpError(w, http.StatusBadRequest, "samples[%d].readings: %v", i, err)
			return
		}
		if len(smp.Voltages) != ast.k {
			httpError(w, http.StatusBadRequest, "samples[%d].voltages has %d values, model has %d blocks", i, len(smp.Voltages), ast.k)
			return
		}
		for j, v := range smp.Voltages {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				httpError(w, http.StatusBadRequest, "samples[%d].voltages[%d]: non-finite value %v", i, j, v)
				return
			}
		}
	}
	resp := feedbackResponse{}
	for i, x := range batch {
		res, err := ast.ad.Ingest(x, req.Samples[i].Voltages)
		if err != nil {
			// Unreachable after validation, but never half-report it.
			httpError(w, http.StatusBadRequest, "samples[%d]: %v", i, err)
			return
		}
		resp.Accepted++
		if tn.id == s.defaultID {
			s.logFeedback(x, req.Samples[i].Voltages)
		}
		if res.Promoted != nil {
			resp.Promoted = true
			s.metrics.Promotions.Inc()
		}
		if res.Blocked != nil {
			s.metrics.PromotionsBlocked.Inc()
			resp.Note = fmt.Sprintf("promotion blocked: %v", res.Blocked)
		}
	}
	s.metrics.FeedbackSamples.Add(uint64(resp.Accepted))
	stat := ast.ad.Status()
	s.metrics.DriftScore.Set(stat.DriftScore)
	s.metrics.LiveTE.Set(stat.LiveTE)
	s.metrics.ShadowTE.Set(stat.ShadowTE)
	resp.ModelGeneration = tn.cur.Load().gen
	resp.ModelVersion = stat.Version
	resp.ShadowSamples = stat.ShadowSamples
	resp.DriftScore = stat.DriftScore
	resp.LiveTE = stat.LiveTE
	resp.ShadowTE = stat.ShadowTE
	writeJSON(w, http.StatusOK, resp)
}

// logFeedback appends one accepted labeled sample to the CSV audit trail.
func (s *Server) logFeedback(x, f []float64) {
	s.fbMu.Lock()
	defer s.fbMu.Unlock()
	if s.fbWriter == nil || len(s.fbRow) != len(x)+len(f) {
		return
	}
	copy(s.fbRow, x)
	copy(s.fbRow[len(x):], f)
	s.fbWriter.AppendSamples(s.fbRow)
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if !s.cfg.Adapt {
		httpError(w, http.StatusNotFound, "online adaptation is disabled; restart voltserved with -adapt")
		return
	}
	// Rollback bodies are optional ({"tenant": ...} or nothing at all).
	var req struct {
		Tenant string `json:"tenant"`
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	tn, ok := s.resolveTenant(w, r, req.Tenant)
	if !ok {
		return
	}
	ast := tn.adapter.Load()
	if ast == nil {
		httpError(w, http.StatusNotFound, "online adaptation is disabled; restart voltserved with -adapt")
		return
	}
	target, err := ast.ad.Rollback()
	if err != nil {
		httpError(w, http.StatusConflict, "rollback failed: %v", err)
		return
	}
	s.metrics.Rollbacks.Inc()
	m := tn.cur.Load()
	resp := map[string]any{
		"status":           "rolled-back",
		"tenant":           tn.id,
		"model_generation": m.gen,
	}
	if target.Lineage != nil {
		resp["model_version"] = target.Lineage.Version
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	resp := map[string]any{
		"status":         "ok",
		"active_streams": s.metrics.ActiveStreams.Value(),
		"uptime_seconds": time.Since(s.start).Seconds(),
		"default_tenant": s.defaultID,
	}
	// The default tenant's model summary keeps the pre-fleet health shape.
	if tn := s.defaultTenant(); tn != nil {
		m := tn.cur.Load()
		resp["model_generation"] = m.gen
		resp["sensors"] = m.q
		resp["blocks"] = m.k
		resp["fault_tolerance"] = m.guard != nil
		if m.guard != nil {
			st := m.guard.Snapshot()
			resp["faulty_sensors"] = st.Faulty
			resp["active_fallback_excluded"] = st.ActiveExcluded
			resp["degraded"] = st.Degraded
			if st.Degraded {
				resp["status"] = "degraded"
			}
		}
		if ast := tn.adapter.Load(); ast != nil {
			stat := ast.ad.Status()
			resp["adaptation"] = map[string]any{
				"model_version":    stat.Version,
				"feedback_samples": stat.Ingested,
				"shadow_ready":     stat.ShadowReady,
				"shadow_samples":   stat.ShadowSamples,
				"drift_score":      stat.DriftScore,
				"live_te":          stat.LiveTE,
				"shadow_te":        stat.ShadowTE,
				"promotions":       stat.Promotions,
				"rollbacks":        stat.Rollbacks,
			}
		}
	}
	tenants := make([]map[string]any, 0, 8)
	for _, tn := range s.residentTenants() {
		m := tn.cur.Load()
		entry := map[string]any{
			"id":               tn.id,
			"model_generation": m.gen,
			"active_streams":   tn.streams.Load(),
		}
		if m.guard != nil {
			entry["degraded"] = m.guard.Snapshot().Degraded
		}
		tenants = append(tenants, entry)
	}
	resp["tenants"] = tenants
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

// sessionConfig resolves per-stream overrides of the default alarm config
// from query parameters (vth, clear_margin, clear_cycles). The bool reports
// whether anything was overridden — only default-config sessions use the
// monitor pool.
func (s *Server) sessionConfig(r *http.Request) (monitor.Config, bool, error) {
	cfg := s.cfg.Monitor
	overridden := false
	q := r.URL.Query()
	if v := q.Get("vth"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return cfg, false, fmt.Errorf("bad vth %q: %v", v, err)
		}
		cfg.Vth = f
		overridden = true
	}
	if v := q.Get("clear_margin"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return cfg, false, fmt.Errorf("bad clear_margin %q: %v", v, err)
		}
		cfg.ClearMargin = f
		overridden = true
	}
	if v := q.Get("clear_cycles"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return cfg, false, fmt.Errorf("bad clear_cycles %q: %v", v, err)
		}
		cfg.ClearCycles = n
		overridden = true
	}
	return cfg, overridden, nil
}

// streamIn is one NDJSON input line: a cycle's sensor readings (null = the
// sensor dropped out this cycle). Cycle is optional; omitted cycles number
// sequentially from the last seen value.
type streamIn struct {
	Cycle    *int      `json:"cycle"`
	Readings []reading `json:"readings"`
}

// streamEvent is one NDJSON output line: an alarm transition.
type streamEvent struct {
	Cycle   int     `json:"cycle"`
	Kind    string  `json:"kind"` // "raised" or "cleared"
	Block   int     `json:"block"`
	Voltage float64 `json:"voltage"`
}

// streamVoltages is emitted per cycle when ?emit_voltages=true: the
// full-chip per-block voltage estimate for that cycle.
type streamVoltages struct {
	Cycle    int       `json:"cycle"`
	Voltages []float64 `json:"voltages"`
}

// streamFault is emitted when the fault tier changes state mid-session:
// a sensor was diagnosed and prediction switched to a fallback (or the
// session is about to end degraded).
type streamFault struct {
	Cycle            int    `json:"cycle"`
	FaultySensors    []int  `json:"faulty_sensors"`
	FallbackExcluded []int  `json:"fallback_excluded"`
	Degraded         bool   `json:"degraded"`
	Note             string `json:"note,omitempty"`
}

// streamPromotion is emitted when the adaptation loop promotes a shadow
// model mid-session and the session adopts the new generation (alarm
// hysteresis carries over; only the coefficients change).
type streamPromotion struct {
	Cycle           int    `json:"cycle"`
	ModelGeneration uint64 `json:"model_generation"`
	ModelVersion    int    `json:"model_version,omitempty"`
	Source          string `json:"source,omitempty"`
}

// streamSummary closes a clean stream.
type streamSummary struct {
	Cycles          int     `json:"cycles"`
	Alarms          int     `json:"alarms"`
	EmergencyCycles int     `json:"emergency_cycles"`
	WorstVoltage    float64 `json:"worst_voltage"`
	WorstBlock      int     `json:"worst_block"`
	ActiveAlarms    []int   `json:"active_alarms"`
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	// Enable full-duplex before any possible rejection: without it, HTTP/1.x
	// delays an early response (shed, degraded, unknown tenant) until the
	// client finishes uploading its cycle stream, which under overload is
	// exactly when the client most needs the 503 promptly. Each session also
	// owns its connection outright — after interleaved chunked reads and
	// writes (or a rejection that never reads the body) the conn is not
	// safely reusable, so advertise the close up front.
	http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Connection", "close")
	cfg, overridden, err := s.sessionConfig(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	emitVoltages := r.URL.Query().Get("emit_voltages") == "true"
	// Streams route by header or query only: the NDJSON body is cycles.
	tn, ok := s.resolveTenant(w, r, "")
	if !ok {
		return
	}
	m := tn.cur.Load() // session keeps this runtime until it ends

	// A chip whose sensors already exceed fallback coverage cannot be
	// monitored; refuse the session up front rather than stream garbage.
	if m.guard != nil {
		if st := m.guard.Snapshot(); st.Degraded {
			s.degrade(w, tn, st)
			return
		}
	}

	releaseStream, reason := s.acquireStream(tn)
	if reason != "" {
		s.shed(w, tn, reason)
		return
	}
	defer releaseStream()

	var mon *monitor.Monitor
	var returnPool *sync.Pool // pool to return mon to; tracks adoptions
	if overridden {
		mon, err = monitor.New(m.pred, m.k, cfg, nil)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad session config: %v", err)
			return
		}
	} else {
		mon = m.pool.Get().(*monitor.Monitor)
		returnPool = m.pool
		defer func() {
			mon.Reset()
			returnPool.Put(mon)
		}()
	}

	s.metrics.StreamsTotal.Inc()
	tn.tm.StreamsTotal.Inc()
	s.metrics.ActiveStreams.Inc()
	defer s.metrics.ActiveStreams.Dec()

	// The session interleaves reads of the request body with writes of the
	// response: without full-duplex mode, net/http closes the request body
	// at the first write (HTTP/1.x).
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() { rc.Flush() }
	flush()

	dec := json.NewDecoder(r.Body)
	cycle := -1
	for {
		var in streamIn
		if err := dec.Decode(&in); err != nil {
			if errors.Is(err, io.EOF) {
				st := mon.Stats()
				active := mon.ActiveAlarms()
				if active == nil {
					active = []int{} // NDJSON consumers expect [], not null
				}
				enc.Encode(map[string]streamSummary{"summary": {
					Cycles:          st.Cycles,
					Alarms:          st.Alarms,
					EmergencyCycles: st.EmergencyCycles,
					WorstVoltage:    st.WorstVoltage,
					WorstBlock:      st.WorstBlock,
					ActiveAlarms:    active,
				}})
				flush()
				return
			}
			// Malformed line or mid-stream disconnect: report if the client
			// is still there, then end the session.
			enc.Encode(map[string]string{"error": fmt.Sprintf("bad input line: %v", err)})
			flush()
			return
		}
		if in.Cycle != nil {
			cycle = *in.Cycle
		} else {
			cycle++
		}
		// Adopt promoted generations mid-session: a promotion keeps the
		// sensor set and output shape, so the session's monitor (and its
		// alarm hysteresis) carries over via SetPredictor. Reloads are not
		// adopted — the session finishes on the generation it started with.
		if latest := tn.cur.Load(); latest != m && latest.adopt && latest.q == m.q && latest.k == m.k {
			mon.SetPredictor(latest.pred)
			if returnPool != nil {
				returnPool = latest.pool
			}
			m = latest
			ev := streamPromotion{Cycle: cycle, ModelGeneration: m.gen}
			if lin := m.pred.Lineage; lin != nil {
				ev.ModelVersion = lin.Version
				ev.Source = lin.Source
			}
			enc.Encode(map[string]streamPromotion{"promotion": ev})
			flush()
		}
		readings := toFloats(in.Readings)
		if err := checkVector(readings, m.q, m.guard != nil); err != nil {
			enc.Encode(map[string]string{"error": err.Error()})
			flush()
			return
		}
		if m.injector != nil {
			m.injector.Apply(cycle, readings)
		}
		var f []float64
		if m.guard == nil {
			f = m.pred.Predict(readings)
		} else {
			var st faults.Status
			f, st = m.guard.Process(readings)
			if st.Changed {
				s.metrics.FallbackSwitches.Inc()
				s.refreshFaultMetrics()
				enc.Encode(map[string]streamFault{"fault": {
					Cycle:            cycle,
					FaultySensors:    st.Faulty,
					FallbackExcluded: st.ActiveExcluded,
					Degraded:         st.Degraded,
				}})
				flush()
			}
			if st.Degraded {
				// More sensors failed than the fallbacks cover: every further
				// prediction would be garbage. End the session explicitly so
				// the client knows to stop trusting it.
				s.metrics.DegradedRequests.Inc()
				tn.tm.DegradedRequests.Inc()
				enc.Encode(map[string]string{"error": fmt.Sprintf(
					"degraded: %d sensors faulty (%v), no fallback covers them; session closed", len(st.Faulty), st.Faulty)})
				flush()
				return
			}
		}
		events := mon.ProcessPredicted(cycle, f)
		tn.tm.AddPredictions(m.gen, 1)
		if emitVoltages {
			enc.Encode(streamVoltages{Cycle: cycle, Voltages: f})
		}
		for _, e := range events {
			switch e.Kind {
			case monitor.AlarmRaised:
				s.metrics.AlarmsRaised.Inc()
			case monitor.AlarmCleared:
				s.metrics.AlarmsCleared.Inc()
			}
			enc.Encode(streamEvent{Cycle: e.Cycle, Kind: e.Kind.String(), Block: e.Block, Voltage: e.Voltage})
		}
		if emitVoltages || len(events) > 0 {
			flush()
		}
	}
}
