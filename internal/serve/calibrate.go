package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"

	"voltsense/internal/core"
	"voltsense/internal/mat"
	"voltsense/internal/registry"
	"voltsense/internal/transfer"
)

// loadArtifact decodes one store artifact. Full voltsense-predictor/v1
// artifacts load exactly as before; thin voltsense-delta/v1 artifacts
// (written by /v1/calibrate) resolve against the pinned shared prior into a
// full predictor at load time. A delta in a store with no configured prior
// is a deployment error, reported per tenant rather than crashing the fleet.
func (s *Server) loadArtifact(data []byte) (*core.Predictor, error) {
	var head struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, fmt.Errorf("serve: artifact: %w", err)
	}
	if head.Format != transfer.DeltaFormat {
		return core.LoadPredictor(bytes.NewReader(data))
	}
	if s.cfg.Prior == nil {
		return nil, errors.New("serve: artifact is a voltsense-delta/v1 thin delta but no shared prior is pinned; restart voltserved with -prior")
	}
	d, lin, err := transfer.LoadDelta(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	pred, err := d.Resolve(s.cfg.Prior, lin)
	if err != nil {
		return nil, err
	}
	s.metrics.TransferDeltaLoads.Inc()
	return pred, nil
}

// calibrateRequest is the /v1/calibrate input: labeled samples for one
// tenant, in the same shape as /v1/feedback. An empty samples list is legal
// and enrolls the tenant at the pure prior mean (zero-shot enrollment).
type calibrateRequest struct {
	Tenant  string           `json:"tenant"`
	Samples []feedbackSample `json:"samples"`
}

// calibrateResponse reports what the calibration produced.
type calibrateResponse struct {
	Tenant            string `json:"tenant"`
	Accepted          int    `json:"accepted"`
	PriorOnly         bool   `json:"prior_only"`
	ModelGeneration   uint64 `json:"model_generation"`
	ModelVersion      int    `json:"model_version"`
	DeltaCoefficients int    `json:"delta_coefficients"`
	PriorFingerprint  string `json:"prior_fingerprint"`
	Note              string `json:"note,omitempty"`
}

// handleCalibrate is the fleet enrollment/recalibration path: align the
// tenant's labeled samples against the shared golden-chip prior
// (transfer.AlignChip), persist the result as a thin voltsense-delta/v1
// artifact in the store, and force-refresh the tenant so the aligned model
// serves immediately. Unlike /v1/feedback it may name a tenant with no
// artifact yet — that is exactly how a new chip joins the fleet.
func (s *Server) handleCalibrate(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	if s.cfg.StoreDir == "" || s.cfg.Prior == nil {
		httpError(w, http.StatusNotFound, "fleet calibration is disabled; restart voltserved with -store and -prior")
		return
	}
	release, reason := s.adm.acquire()
	if reason != "" {
		s.shed(w, s.tenantForShed(r), reason)
		return
	}
	defer release()
	var req calibrateRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed JSON: %v", err)
		return
	}
	if len(req.Samples) > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds limit %d", len(req.Samples), s.cfg.MaxBatch)
		return
	}
	id := r.Header.Get(TenantHeader)
	if id == "" {
		id = r.URL.Query().Get("tenant")
	}
	if id == "" {
		id = req.Tenant
	}
	if id == "" {
		id = s.defaultID
	}
	if !registry.ValidID(id) {
		httpError(w, http.StatusBadRequest, "invalid tenant id %q", id)
		return
	}

	// Validate the whole batch against the prior's shape before fitting
	// any of it. Calibration samples never carry nulls: a labeled sample
	// with a dropped-out sensor teaches the alignment garbage.
	prior := s.cfg.Prior
	q, k := prior.Q(), prior.K()
	n := len(req.Samples)
	x := mat.Zeros(q, n)
	f := mat.Zeros(k, n)
	for i, smp := range req.Samples {
		readings := toFloats(smp.Readings)
		if err := checkVector(readings, q, false); err != nil {
			httpError(w, http.StatusBadRequest, "samples[%d].readings: %v", i, err)
			return
		}
		if len(smp.Voltages) != k {
			httpError(w, http.StatusBadRequest, "samples[%d].voltages has %d values, prior has %d nodes", i, len(smp.Voltages), k)
			return
		}
		for j, v := range smp.Voltages {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				httpError(w, http.StatusBadRequest, "samples[%d].voltages[%d]: non-finite value %v", i, j, v)
				return
			}
		}
		for j := 0; j < q; j++ {
			x.Set(j, i, readings[j])
		}
		for j := 0; j < k; j++ {
			f.Set(j, i, smp.Voltages[j])
		}
	}

	s.calibMu.Lock()
	defer s.calibMu.Unlock()

	// Chain the lineage off the incumbent, when one loads: a recalibration
	// is version parent+1. A missing artifact (new chip) or a broken one
	// (calibration is the repair path) starts the chain at version 1.
	acfg := transfer.AlignConfig{
		Shrinkage:  s.cfg.CalibrateShrinkage,
		MinSamples: s.cfg.CalibrateMinSamples,
		DeltaTol:   s.cfg.CalibrateDeltaTol,
	}
	if v, err := s.reg.Get(id); err == nil {
		if lin := v.(*Tenant).cur.Load().pred.Lineage; lin != nil && lin.Version > 0 {
			acfg.Parent = lin.Version
			acfg.Version = lin.Version + 1
		}
	}

	al, err := transfer.AlignChip(prior, x, f, acfg)
	if err != nil {
		httpError(w, http.StatusBadRequest, "alignment failed: %v", err)
		return
	}

	if err := s.writeDeltaArtifact(id, al.Delta, al.Predictor.Lineage); err != nil {
		httpError(w, http.StatusInternalServerError, "persisting calibration: %v", err)
		return
	}
	if err := s.reg.Refresh(id); err != nil {
		httpError(w, http.StatusInternalServerError, "calibration persisted but reload failed: %v", err)
		return
	}

	s.metrics.TransferCalibrations.Inc()
	s.metrics.TransferSamples.Add(uint64(al.Samples))
	if al.PriorOnly {
		s.metrics.TransferPriorOnly.Inc()
	}

	resp := calibrateResponse{
		Tenant:            id,
		Accepted:          al.Samples,
		PriorOnly:         al.PriorOnly,
		ModelVersion:      al.Predictor.Lineage.Version,
		DeltaCoefficients: al.Delta.NNZ(),
		PriorFingerprint:  prior.Fingerprint(),
	}
	if v, ok := s.reg.Peek(id); ok {
		resp.ModelGeneration = v.(*Tenant).cur.Load().gen
	}
	if al.PriorOnly {
		minSamples := s.cfg.CalibrateMinSamples
		if minSamples <= 0 {
			minSamples = 4
		}
		resp.Note = fmt.Sprintf("evidence gate: %d samples < %d required; tenant enrolled at the prior mean", al.Samples, minSamples)
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeDeltaArtifact atomically replaces the tenant's store artifact with a
// thin delta. The registry's change detection fingerprints size+mtime, so
// the write must be temp-file + rename — a reader never sees a torn file.
func (s *Server) writeDeltaArtifact(id string, d *transfer.Delta, lin *core.Lineage) error {
	tmp, err := os.CreateTemp(s.cfg.StoreDir, "."+id+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := transfer.SaveDelta(tmp, d, lin); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(s.cfg.StoreDir, id+".json"))
}
