package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"voltsense/internal/core"
	"voltsense/internal/mat"
	"voltsense/internal/monitor"
	"voltsense/internal/ols"
)

// testPredictor builds a 2-sensor, 3-block model with hand-picked
// coefficients: block0 = reading0, block1 = reading1, block2 = their mean.
func testPredictor() *core.Predictor {
	alpha := mat.Zeros(3, 2)
	alpha.Set(0, 0, 1)
	alpha.Set(1, 1, 1)
	alpha.Set(2, 0, 0.5)
	alpha.Set(2, 1, 0.5)
	return &core.Predictor{
		Selected: []int{3, 7},
		Model:    &ols.Model{Alpha: alpha, C: []float64{0, 0, 0}},
	}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Loader:  func() (*core.Predictor, error) { return testPredictor(), nil },
		Monitor: monitor.Config{Vth: 0.95, ClearMargin: 0.02, ClearCycles: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestPredictSingleAndBatch(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/predict", `{"readings":[[0.9,0.7],[1.0,0.5]]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp predictResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Blocks != 3 || resp.ModelGeneration != 1 {
		t.Fatalf("resp meta = %+v", resp)
	}
	want := [][]float64{{0.9, 0.7, 0.8}, {1.0, 0.5, 0.75}}
	if len(resp.Voltages) != len(want) {
		t.Fatalf("got %d rows", len(resp.Voltages))
	}
	for i := range want {
		for j := range want[i] {
			if math.Abs(resp.Voltages[i][j]-want[i][j]) > 1e-12 {
				t.Fatalf("voltages[%d][%d] = %v, want %v", i, j, resp.Voltages[i][j], want[i][j])
			}
		}
	}
}

func TestPredictRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t)
	cases := map[string]struct {
		body string
		want int
	}{
		"malformed json":   {`{"readings":[[0.9,`, http.StatusBadRequest},
		"not an object":    {`[1,2,3]`, http.StatusBadRequest},
		"empty batch":      {`{"readings":[]}`, http.StatusBadRequest},
		"missing field":    {`{}`, http.StatusBadRequest},
		"short vector":     {`{"readings":[[0.9]]}`, http.StatusBadRequest},
		"long vector":      {`{"readings":[[0.9,0.9,0.9]]}`, http.StatusBadRequest},
		"second row short": {`{"readings":[[0.9,0.9],[0.9]]}`, http.StatusBadRequest},
		"null reading":     {`{"readings":[null]}`, http.StatusBadRequest},
	}
	for name, tc := range cases {
		code, body := postJSON(t, ts.URL+"/v1/predict", tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", name, code, tc.want, body)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body missing: %s", name, body)
		}
	}
}

func TestPredictRejectsNonFinite(t *testing.T) {
	_, ts := newTestServer(t)
	// NaN is not valid JSON, so the attack arrives as huge-exponent numbers
	// or via decoder failure; both must 400.
	code, _ := postJSON(t, ts.URL+"/v1/predict", `{"readings":[[NaN,0.9]]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("NaN literal: status %d", code)
	}
}

func TestPredictBatchLimit(t *testing.T) {
	s, err := New(Config{
		Loader:   func() (*core.Predictor, error) { return testPredictor(), nil },
		Monitor:  monitor.Config{Vth: 0.95},
		MaxBatch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, _ := postJSON(t, ts.URL+"/v1/predict", `{"readings":[[0.9,0.9],[0.9,0.9],[0.9,0.9]]}`)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	for _, c := range []struct{ method, path string }{
		{http.MethodGet, "/v1/predict"},
		{http.MethodGet, "/v1/stream"},
		{http.MethodGet, "/v1/reload"},
		{http.MethodPost, "/healthz"},
		{http.MethodPost, "/metrics"},
	} {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["sensors"] != 2.0 || h["blocks"] != 3.0 || h["model_generation"] != 1.0 {
		t.Fatalf("healthz = %v", h)
	}
}

// streamCycles posts NDJSON cycles to /v1/stream and returns the raw
// response lines.
func streamCycles(t *testing.T, url string, lines []string) []string {
	t.Helper()
	body := strings.Join(lines, "\n") + "\n"
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	var out []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		out = append(out, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStreamRaiseClearAndSummary(t *testing.T) {
	s, ts := newTestServer(t)
	lines := []string{
		`{"readings":[0.99,0.99]}`, // quiet
		`{"readings":[0.90,0.99]}`, // block0 + block2 (mean 0.945) dip below 0.95
		`{"readings":[0.99,0.99]}`, // recovered 1
		`{"readings":[0.99,0.99]}`, // recovered 2 → clear
	}
	got := streamCycles(t, ts.URL+"/v1/stream", lines)
	var events []streamEvent
	var summary *streamSummary
	for _, ln := range got {
		if strings.Contains(ln, `"summary"`) {
			var wrap map[string]streamSummary
			if err := json.Unmarshal([]byte(ln), &wrap); err != nil {
				t.Fatal(err)
			}
			s := wrap["summary"]
			summary = &s
			continue
		}
		var e streamEvent
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatal(err)
		}
		events = append(events, e)
	}
	// Cycle 1 raises blocks 0 and 2; cycle 3 clears both.
	if len(events) != 4 {
		t.Fatalf("events = %v", events)
	}
	if events[0].Kind != "raised" || events[0].Cycle != 1 || events[0].Block != 0 {
		t.Fatalf("events[0] = %+v", events[0])
	}
	if events[1].Kind != "raised" || events[1].Block != 2 {
		t.Fatalf("events[1] = %+v", events[1])
	}
	if events[2].Kind != "cleared" || events[2].Cycle != 3 {
		t.Fatalf("events[2] = %+v", events[2])
	}
	if summary == nil {
		t.Fatal("no summary line")
	}
	if summary.Cycles != 4 || summary.Alarms != 2 || len(summary.ActiveAlarms) != 0 {
		t.Fatalf("summary = %+v", summary)
	}
	if summary.WorstVoltage != 0.90 || summary.WorstBlock != 0 {
		t.Fatalf("summary worst = %+v", summary)
	}
	if s.Metrics().AlarmsRaised.Value() != 2 || s.Metrics().AlarmsCleared.Value() != 2 {
		t.Fatalf("alarm metrics = %d/%d", s.Metrics().AlarmsRaised.Value(), s.Metrics().AlarmsCleared.Value())
	}
}

func TestStreamExplicitCyclesAndVoltageEcho(t *testing.T) {
	_, ts := newTestServer(t)
	lines := []string{
		`{"cycle":100,"readings":[0.99,0.99]}`,
		`{"readings":[0.99,0.97]}`, // implicit cycle 101
	}
	got := streamCycles(t, ts.URL+"/v1/stream?emit_voltages=true", lines)
	if len(got) != 3 { // two voltage lines + summary
		t.Fatalf("lines = %v", got)
	}
	var v streamVoltages
	if err := json.Unmarshal([]byte(got[1]), &v); err != nil {
		t.Fatal(err)
	}
	if v.Cycle != 101 || len(v.Voltages) != 3 || v.Voltages[2] != 0.98 {
		t.Fatalf("voltage echo = %+v", v)
	}
}

func TestStreamSessionConfigOverride(t *testing.T) {
	_, ts := newTestServer(t)
	// Default Vth 0.95 would alarm on 0.93; override to 0.90 keeps it quiet.
	got := streamCycles(t, ts.URL+"/v1/stream?vth=0.90", []string{`{"readings":[0.93,0.93]}`})
	if len(got) != 1 || !strings.Contains(got[0], `"summary"`) {
		t.Fatalf("lines = %v", got)
	}
	if !strings.Contains(got[0], `"active_alarms":[]`) {
		t.Fatalf("quiet summary should report [], not null: %s", got[0])
	}
	// Invalid overrides are rejected before the stream starts.
	for _, q := range []string{"vth=abc", "clear_margin=x", "clear_cycles=1.5", "vth=-1"} {
		code, _ := postJSON(t, ts.URL+"/v1/stream?"+q, "")
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, code)
		}
	}
}

func TestStreamBadInputLines(t *testing.T) {
	_, ts := newTestServer(t)
	cases := map[string][]string{
		"malformed json": {`{"readings":[0.99,0.99]}`, `{not json`},
		"wrong length":   {`{"readings":[0.99]}`},
		"non-finite":     {`{"readings":[0.99,1e999]}`},
	}
	for name, lines := range cases {
		got := streamCycles(t, ts.URL+"/v1/stream", lines)
		if len(got) == 0 || !strings.Contains(got[len(got)-1], `"error"`) {
			t.Errorf("%s: want trailing error line, got %v", name, got)
		}
	}
}

func TestStreamMidStreamDisconnect(t *testing.T) {
	s, ts := newTestServer(t)
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(pw, `{"readings":[0.99,0.99]}`)
	waitFor(t, "stream to open", func() bool { return s.Metrics().ActiveStreams.Value() == 1 })
	// Abort the upload mid-stream: the server must tear the session down
	// and release the pooled monitor.
	pw.CloseWithError(errors.New("client went away"))
	resp.Body.Close()
	waitFor(t, "stream teardown", func() bool { return s.Metrics().ActiveStreams.Value() == 0 })
	if s.Metrics().StreamsTotal.Value() != 1 {
		t.Fatalf("StreamsTotal = %d", s.Metrics().StreamsTotal.Value())
	}
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStreamPooledSessionsAreIsolated reuses one connection's monitor for a
// later session and checks no alarm state or statistics leak across.
func TestStreamPooledSessionsAreIsolated(t *testing.T) {
	_, ts := newTestServer(t)
	// Session 1 ends with an alarm still open.
	got := streamCycles(t, ts.URL+"/v1/stream", []string{`{"readings":[0.80,0.99]}`})
	last := got[len(got)-1]
	if !strings.Contains(last, `"active_alarms":[0,2]`) {
		t.Fatalf("session 1 summary = %s", last)
	}
	// Session 2 (same pooled monitor, freshly Reset) must start clean.
	got = streamCycles(t, ts.URL+"/v1/stream", []string{`{"readings":[0.99,0.99]}`})
	last = got[len(got)-1]
	var wrap map[string]streamSummary
	if err := json.Unmarshal([]byte(last), &wrap); err != nil {
		t.Fatal(err)
	}
	sum := wrap["summary"]
	if sum.Cycles != 1 || sum.Alarms != 0 || len(sum.ActiveAlarms) != 0 || sum.WorstVoltage != 0.99 {
		t.Fatalf("pooled session leaked state: %+v", sum)
	}
}

func TestReloadHotSwapsAtomically(t *testing.T) {
	var mu sync.Mutex
	scale := 1.0
	fail := false
	loader := func() (*core.Predictor, error) {
		mu.Lock()
		defer mu.Unlock()
		if fail {
			return nil, errors.New("artifact corrupt")
		}
		p := testPredictor()
		for i := 0; i < p.Model.Alpha.Rows(); i++ {
			row := p.Model.Alpha.Row(i)
			for j := range row {
				row[j] *= scale
			}
		}
		return p, nil
	}
	s, err := New(Config{Loader: loader, Monitor: monitor.Config{Vth: 0.95}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Open a stream on generation 1, then reload generation 2 under it.
	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", pr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Fprintln(pw, `{"readings":[0.99,0.99]}`)
	waitFor(t, "stream to open", func() bool { return s.Metrics().ActiveStreams.Value() == 1 })

	mu.Lock()
	scale = 2.0
	mu.Unlock()
	code, body := postJSON(t, ts.URL+"/v1/reload", "")
	if code != http.StatusOK {
		t.Fatalf("reload: %d %s", code, body)
	}
	if s.Generation() != 2 || s.Metrics().Reloads.Value() != 1 {
		t.Fatalf("generation %d, reloads %d", s.Generation(), s.Metrics().Reloads.Value())
	}

	// New predictions use the doubled model.
	code, pbody := postJSON(t, ts.URL+"/v1/predict", `{"readings":[[0.5,0.5]]}`)
	if code != http.StatusOK {
		t.Fatalf("predict: %d %s", code, pbody)
	}
	var presp predictResponse
	if err := json.Unmarshal(pbody, &presp); err != nil {
		t.Fatal(err)
	}
	if presp.ModelGeneration != 2 || presp.Voltages[0][0] != 1.0 {
		t.Fatalf("post-reload predict = %+v", presp)
	}

	// The in-flight stream still runs generation 1: 0.93 is below Vth for
	// the old identity model, and must alarm with the old voltage.
	fmt.Fprintln(pw, `{"readings":[0.93,0.99]}`)
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no event from in-flight stream")
	}
	var e streamEvent
	if err := json.Unmarshal([]byte(sc.Text()), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "raised" || e.Block != 0 || e.Voltage != 0.93 {
		t.Fatalf("in-flight stream saw new model: %+v", e)
	}
	pw.Close()

	// A failing reload keeps the current model serving.
	mu.Lock()
	fail = true
	mu.Unlock()
	code, body = postJSON(t, ts.URL+"/v1/reload", "")
	if code != http.StatusInternalServerError || !bytes.Contains(body, []byte("artifact corrupt")) {
		t.Fatalf("failed reload: %d %s", code, body)
	}
	if s.Generation() != 2 {
		t.Fatalf("generation moved to %d on failed reload", s.Generation())
	}
	code, _ = postJSON(t, ts.URL+"/v1/predict", `{"readings":[[0.5,0.5]]}`)
	if code != http.StatusOK {
		t.Fatal("old model stopped serving after failed reload")
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/predict", `{"readings":[[0.9,0.9]]}`)
	postJSON(t, ts.URL+"/v1/predict", `{"readings":[[bad`)
	streamCycles(t, ts.URL+"/v1/stream", []string{`{"readings":[0.80,0.99]}`})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	for _, want := range []string{
		`voltserved_requests_total{path="/v1/predict",code="200"} 1`,
		`voltserved_requests_total{path="/v1/predict",code="400"} 1`,
		`voltserved_requests_total{path="/v1/stream",code="200"} 1`,
		`voltserved_request_seconds_count{path="/v1/predict"} 2`,
		`voltserved_request_seconds_bucket{path="/v1/predict",le="+Inf"} 2`,
		"voltserved_active_streams 0",
		"voltserved_streams_total 1",
		`voltserved_predictions_total{tenant="default",model_generation="1"} 2`,
		"# TYPE voltserved_predictions_total counter",
		"voltserved_alarms_raised_total 2",
		"# TYPE voltserved_request_seconds histogram",
		"voltserved_model_generation 1",
		"# TYPE voltsense_build_info gauge",
		`goversion="` + runtime.Version() + `"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestConcurrentStreams drives 12 concurrent streaming sessions (plus
// predict traffic) against one server; run under -race this is the
// acceptance check that per-session monitor state never crosses sessions.
func TestConcurrentStreams(t *testing.T) {
	s, ts := newTestServer(t)
	const sessions = 12
	const cycles = 50
	var wg sync.WaitGroup
	errs := make(chan error, sessions+1)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Even sessions alarm every cycle pair; odd sessions stay quiet.
			dip := id%2 == 0
			var lines []string
			for c := 0; c < cycles; c++ {
				v := 0.99
				if dip && c%2 == 0 {
					v = 0.80
				}
				lines = append(lines, fmt.Sprintf(`{"readings":[%g,0.99]}`, v))
			}
			body := strings.Join(lines, "\n")
			resp, err := http.Post(ts.URL+"/v1/stream", "application/x-ndjson", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var summary streamSummary
			found := false
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if strings.Contains(sc.Text(), `"summary"`) {
					var wrap map[string]streamSummary
					if err := json.Unmarshal(sc.Bytes(), &wrap); err != nil {
						errs <- err
						return
					}
					summary = wrap["summary"]
					found = true
				}
			}
			if !found {
				errs <- fmt.Errorf("session %d: no summary", id)
				return
			}
			if summary.Cycles != cycles {
				errs <- fmt.Errorf("session %d: %d cycles, want %d", id, summary.Cycles, cycles)
				return
			}
			// A 0.80 dip drags block 0 and block 2 (the mean) below Vth at
			// cycle 0, and with ClearCycles 2 against a dip every other
			// cycle those alarms never clear: two raise events per dipper.
			wantAlarms := 0
			if dip {
				wantAlarms = 2
			}
			if summary.Alarms != wantAlarms {
				errs <- fmt.Errorf("session %d: %d alarms, want %d", id, summary.Alarms, wantAlarms)
			}
		}(i)
	}
	// Concurrent predict load against the same model.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			code, body := postJSON(t, ts.URL+"/v1/predict", `{"readings":[[0.9,0.9]]}`)
			if code != http.StatusOK {
				errs <- fmt.Errorf("predict under load: %d %s", code, body)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Metrics().StreamsTotal.Value(); got != sessions {
		t.Errorf("StreamsTotal = %d, want %d", got, sessions)
	}
	if got := s.Metrics().ActiveStreams.Value(); got != 0 {
		t.Errorf("ActiveStreams = %d after drain", got)
	}
	if got := s.Metrics().AlarmsRaised.Value(); got != sessions {
		t.Errorf("AlarmsRaised = %d, want %d (two raises per dipping session)", got, sessions)
	}
}

func TestShutdownDrainsCleanly(t *testing.T) {
	s, err := New(Config{
		Loader:  func() (*core.Predictor, error) { return testPredictor(), nil },
		Monitor: monitor.Config{Vth: 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shutdown with no listener is a no-op.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
