package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"sync"
	"sync/atomic"

	"voltsense/internal/core"
	"voltsense/internal/faults"
	"voltsense/internal/monitor"
	"voltsense/internal/online"
)

// TenantHeader is the HTTP header carrying the tenant (chip/floorplan) id.
// Resolution order: this header, the `tenant` query parameter, the request
// body's `tenant` field (where the body has one), then the configured
// default tenant.
const TenantHeader = "X-Voltsense-Tenant"

// model is one loaded predictor generation plus the session pool bound to
// it. Pooled monitors embed the generation's predictor, so swapping models
// swaps pools too and stale monitors simply age out with their generation.
// The guard (fault detector + fallback router) is likewise per-generation:
// a reload starts from an all-healthy diagnosis, since a new artifact may
// place different sensors.
type model struct {
	pred     *core.Predictor
	q, k     int
	gen      uint64
	pool     *sync.Pool       // of *monitor.Monitor with the server's default config
	guard    *faults.Guard    // nil when the artifact has no fallbacks
	injector *faults.Injector // nil without --fault-spec
	// adopt marks generations produced by an online promotion: in-flight
	// streams of the same shape switch to them mid-session (hysteresis
	// preserved via monitor.SetPredictor) instead of finishing on the old
	// coefficients. Reloaded artifacts keep adopt false — a reload may
	// place different sensors, so sessions finish on their generation.
	adopt bool
}

// adapterState binds one online.Adapter to the tenant generation lineage it
// was built from. Tenant rebuilds replace the whole state; a promotion
// attempt from a replaced (stale) adapter is refused by the ownership check
// in applySwap.
type adapterState struct {
	ad   *online.Adapter
	q, k int
}

// Tenant is one chip instance's complete runtime: its model generations,
// fault guard, online adapter, monitor pool, stream accounting, and
// metrics. Every piece of mutable serving state that was server-global in
// the single-chip design lives here, so tenants are isolated by
// construction — a fault diagnosed on one tenant, or a shadow model
// promoted on it, cannot touch any other.
//
// A Tenant is immutable in identity: registry rescans that find a changed
// artifact build a replacement Tenant rather than mutating this one, and
// in-flight streams finish on the runtime they started with.
type Tenant struct {
	id  string
	srv *Server

	cur atomic.Pointer[model]
	// swapMu serializes model swaps within the tenant (shadow promotions
	// and rollbacks).
	swapMu sync.Mutex

	// adapter is the tenant's recalibration loop (nil unless cfg.Adapt).
	adapter atomic.Pointer[adapterState]

	// injectCycle clocks --fault-spec injection for stateless /v1/predict
	// vectors; streams use their own session cycle numbers.
	injectCycle atomic.Int64

	// streams counts this tenant's open NDJSON sessions (cap + gauge).
	streams atomic.Int64

	// retired flips when a rescan replaced this tenant or the registry
	// evicted it; stale adapters then refuse to promote.
	retired atomic.Bool

	tm *TenantMetrics
}

// ID returns the tenant id.
func (tn *Tenant) ID() string { return tn.id }

// Generation returns the tenant's current model generation.
func (tn *Tenant) Generation() uint64 { return tn.cur.Load().gen }

// newTenant builds the full runtime for one tenant around pred: model,
// monitor pool, fault guard, chaos injector, and (with cfg.Adapt) the
// online adaptation loop.
func (s *Server) newTenant(id string, pred *core.Predictor) (*Tenant, error) {
	tn := &Tenant{id: id, srv: s}
	m, err := s.newModel(pred)
	if err != nil {
		return nil, fmt.Errorf("tenant %s: %w", id, err)
	}
	tn.cur.Store(m)
	if s.cfg.Adapt {
		st := &adapterState{q: m.q, k: m.k}
		ad, err := online.NewAdapter(pred, s.cfg.Adaptation, s.applySwap(tn, st))
		if err != nil {
			return nil, fmt.Errorf("tenant %s: adaptation: %w", id, err)
		}
		st.ad = ad
		tn.adapter.Store(st)
		if id == s.defaultID {
			s.initFeedbackLog(st.q, st.k)
		}
	}
	tn.tm = s.metrics.Tenant(id)
	s.metrics.TenantLoads.Inc()
	if id == s.defaultID {
		s.metrics.ModelGeneration.Set(int64(m.gen))
	}
	return tn, nil
}

func (s *Server) newModel(pred *core.Predictor) (*model, error) {
	if pred == nil || pred.Model == nil {
		return nil, errors.New("serve: loader returned nil predictor")
	}
	q, k := pred.Model.NumInputs(), pred.Model.NumOutputs()
	// Construct one monitor eagerly so a bad alarm config (or degenerate
	// model shape) fails the swap instead of the first stream.
	first, err := monitor.New(pred, k, s.cfg.Monitor, nil)
	if err != nil {
		return nil, err
	}
	m := &model{pred: pred, q: q, k: k, gen: s.gen.Add(1)}
	m.pool = &sync.Pool{New: func() any {
		mon, err := monitor.New(pred, k, s.cfg.Monitor, nil)
		if err != nil {
			// Unreachable: the identical construction above succeeded.
			panic(err)
		}
		return mon
	}}
	m.pool.Put(first)
	if fb := pred.Fallbacks; fb != nil {
		det, err := faults.NewDetector(fb.Stats, s.cfg.Detector)
		if err != nil {
			return nil, fmt.Errorf("serve: fault detector: %w", err)
		}
		primary := faults.Route{Predict: pred.Predict}
		lookup := func(faulty []int) (faults.Route, bool) {
			fm := fb.Lookup(faulty)
			if fm == nil {
				return faults.Route{}, false
			}
			return faults.Route{Predict: fm.PredictFull, Excluded: fm.Excluded}, true
		}
		m.guard, err = faults.NewGuard(det, primary, lookup)
		if err != nil {
			return nil, fmt.Errorf("serve: fault guard: %w", err)
		}
	}
	if len(s.cfg.InjectFaults) > 0 {
		inj, err := faults.NewInjector(s.cfg.InjectFaults, q)
		if err != nil {
			return nil, fmt.Errorf("serve: fault injection: %w", err)
		}
		m.injector = inj
	}
	return m, nil
}

// applySwap returns the promotion callback for one tenant's adapter
// generation: it installs a candidate predictor as the tenant's serving
// model, refusing stale adapters (a rescan rebuilt or the registry evicted
// the tenant), and — for shadow promotions, never operator rollbacks —
// refusing while the tenant's fault tier has diagnosed sensors or entered
// degraded mode, so a generation fit on corrupt readings can never be
// promoted.
func (s *Server) applySwap(tn *Tenant, owner *adapterState) online.ApplyFunc {
	return func(p *core.Predictor, rollback bool) error {
		tn.swapMu.Lock()
		defer tn.swapMu.Unlock()
		if tn.retired.Load() {
			return errors.New("serve: tenant reloaded since this adapter was built; promotion abandoned")
		}
		if tn.adapter.Load() != owner {
			return errors.New("serve: model reloaded since this adapter was built; promotion abandoned")
		}
		cur := tn.cur.Load()
		if !rollback && cur.guard != nil {
			st := cur.guard.Snapshot()
			if st.Degraded {
				return fmt.Errorf("serve: refusing promotion while degraded (%d sensors faulty)", len(st.Faulty))
			}
			if len(st.Faulty) > 0 {
				return fmt.Errorf("serve: refusing promotion while sensors %v are faulty", st.Faulty)
			}
		}
		m, err := s.newModel(p)
		if err != nil {
			return err
		}
		m.adopt = true
		tn.cur.Store(m)
		if tn.id == s.defaultID {
			s.metrics.ModelGeneration.Set(int64(m.gen))
		}
		return nil
	}
}

// resolveTenant routes a request to its tenant: the X-Voltsense-Tenant
// header, then the `tenant` query parameter, then bodyTenant (the decoded
// request body's field, where the endpoint has a body), then the default
// tenant. A cold tenant is loaded on first touch (single-flight); unknown
// ids 404 and broken artifacts 500 without disturbing any other tenant.
func (s *Server) resolveTenant(w http.ResponseWriter, r *http.Request, bodyTenant string) (*Tenant, bool) {
	id := r.Header.Get(TenantHeader)
	if id == "" {
		id = r.URL.Query().Get("tenant")
	}
	if id == "" {
		id = bodyTenant
	}
	if id == "" {
		id = s.defaultID
	}
	v, err := s.reg.Get(id)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			httpError(w, http.StatusNotFound, "unknown tenant %q: no artifact in the model registry", id)
		} else {
			httpError(w, http.StatusInternalServerError, "tenant %q failed to load: %v", id, err)
		}
		return nil, false
	}
	return v.(*Tenant), true
}

// tenantForShed finds the resident tenant a shed request was aimed at
// without loading anything: shed attribution must never create tenant
// labels (or trigger artifact loads) for arbitrary ids under overload.
func (s *Server) tenantForShed(r *http.Request) *Tenant {
	id := r.Header.Get(TenantHeader)
	if id == "" {
		id = r.URL.Query().Get("tenant")
	}
	if id == "" {
		id = s.defaultID
	}
	if v, ok := s.reg.Peek(id); ok {
		return v.(*Tenant)
	}
	return nil
}

// residentTenants snapshots the currently loaded tenants in id order.
func (s *Server) residentTenants() []*Tenant {
	ids := s.reg.Resident()
	out := make([]*Tenant, 0, len(ids))
	for _, id := range ids {
		if v, ok := s.reg.Peek(id); ok {
			out = append(out, v.(*Tenant))
		}
	}
	return out
}

// refreshFaultMetrics republishes the fleet-wide fault gauges (sums over
// resident tenants) after any tenant's guard changed state.
func (s *Server) refreshFaultMetrics() {
	var faulty, excluded int64
	for _, tn := range s.residentTenants() {
		if m := tn.cur.Load(); m.guard != nil {
			st := m.guard.Snapshot()
			faulty += int64(len(st.Faulty))
			excluded += int64(len(st.ActiveExcluded))
		}
	}
	s.metrics.FaultySensors.Set(faulty)
	s.metrics.ActiveFallback.Set(excluded)
}

// tenantSnapshots feeds the scrape-time per-tenant gauges: cardinality is
// exactly the resident tenant set, so evictions shrink the exposition
// instead of growing it without bound.
func (s *Server) tenantSnapshots() []TenantSnapshot {
	tenants := s.residentTenants()
	out := make([]TenantSnapshot, 0, len(tenants))
	for _, tn := range tenants {
		m := tn.cur.Load()
		snap := TenantSnapshot{
			ID:            tn.id,
			Generation:    m.gen,
			ActiveStreams: tn.streams.Load(),
		}
		if m.guard != nil {
			st := m.guard.Snapshot()
			snap.FaultySensors = len(st.Faulty)
			snap.Degraded = st.Degraded
		}
		out = append(out, snap)
	}
	return out
}
