package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"voltsense/internal/core"
	"voltsense/internal/mat"
	"voltsense/internal/monitor"
	"voltsense/internal/ols"
	"voltsense/internal/online"
	"voltsense/internal/traceio"
)

// adaptChip plants a deterministic voltage-like model: each block sums its
// q readings with weight ~0.6/q (a small per-block tilt keeps the blocks
// distinguishable) plus a 0.35 V intercept. At nominal readings (~0.9 V)
// blocks sit at 0.89-0.91 V; an output drift of -0.08 V pushes every block
// below the 0.85 V emergency threshold while the pre-drift fit keeps
// predicting healthy voltages — the separation the promotion logic needs.
func adaptChip(q, k int) (*mat.Matrix, []float64) {
	alpha := mat.Zeros(k, q)
	for i := 0; i < k; i++ {
		w := (0.6 + 0.02*float64(i)/float64(k)) / float64(q)
		row := alpha.Row(i)
		for j := range row {
			row[j] = w
		}
	}
	c := make([]float64, k)
	for i := range c {
		c[i] = 0.35
	}
	return alpha, c
}

// adaptSamples draws n labeled samples from the planted chip with an output
// shift (the drift) and light observation noise.
func adaptSamples(rng *rand.Rand, alpha *mat.Matrix, c []float64, n int, shift float64) (xs, fs [][]float64) {
	q, k := alpha.Cols(), alpha.Rows()
	xs = make([][]float64, n)
	fs = make([][]float64, n)
	for s := 0; s < n; s++ {
		x := make([]float64, q)
		for i := range x {
			x[i] = 0.9 + 0.02*rng.NormFloat64()
		}
		f := make([]float64, k)
		for i := 0; i < k; i++ {
			f[i] = c[i] + mat.Dot(alpha.Row(i), x) + shift + 0.002*rng.NormFloat64()
		}
		xs[s] = x
		fs[s] = f
	}
	return xs, fs
}

type adaptHarness struct {
	s     *Server
	ts    *httptest.Server
	alpha *mat.Matrix
	c     []float64
	rng   *rand.Rand
}

// newAdaptServer fits a live predictor on undrifted planted-chip data and
// serves it with the adaptation loop enabled. mod may adjust the config
// before the server is built.
func newAdaptServer(t *testing.T, mod func(*Config)) *adaptHarness {
	t.Helper()
	rng := rand.New(rand.NewSource(33))
	alpha, c := adaptChip(4, 6)
	xs, fs := adaptSamples(rng, alpha, c, 400, 0)
	x := mat.Zeros(4, len(xs))
	f := mat.Zeros(6, len(xs))
	for s := range xs {
		for i := range xs[s] {
			x.Set(i, s, xs[s][i])
		}
		for i := range fs[s] {
			f.Set(i, s, fs[s][i])
		}
	}
	m, err := ols.Fit(x, f)
	if err != nil {
		t.Fatal(err)
	}
	pred := &core.Predictor{Selected: []int{0, 1, 2, 3}, Model: m}
	cfg := Config{
		Loader:  func() (*core.Predictor, error) { return pred, nil },
		Monitor: monitor.Config{Vth: 0.85, ClearMargin: 0.01, ClearCycles: 2},
		Adapt:   true,
		Adaptation: online.Config{
			EvalWindow: 64, MinSamples: 64, Margin: 0.01,
			DriftWindow: 16, Forgetting: 0.999,
		},
	}
	if mod != nil {
		mod(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &adaptHarness{s: s, ts: ts, alpha: alpha, c: c, rng: rng}
}

// feedbackBody marshals n labeled samples from the planted chip, drifted
// down by drop, into a /v1/feedback request body.
func (h *adaptHarness) feedbackBody(n int, drop float64) string {
	xs, fs := adaptSamples(h.rng, h.alpha, h.c, n, -drop)
	req := feedbackRequest{Samples: make([]feedbackSample, n)}
	for i := range xs {
		rs := make([]reading, len(xs[i]))
		for j, v := range xs[i] {
			rs[j] = reading(v)
		}
		req.Samples[i] = feedbackSample{Readings: rs, Voltages: fs[i]}
	}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// driveToPromotion posts drifted feedback batches until a response reports a
// promotion, returning that response.
func (h *adaptHarness) driveToPromotion(t *testing.T) feedbackResponse {
	t.Helper()
	for i := 0; i < 50; i++ {
		code, body := postJSON(t, h.ts.URL+"/v1/feedback", h.feedbackBody(16, 0.08))
		if code != http.StatusOK {
			t.Fatalf("feedback status %d: %s", code, body)
		}
		var resp feedbackResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Promoted {
			return resp
		}
	}
	t.Fatal("no promotion after 800 drifted samples")
	return feedbackResponse{}
}

func TestFeedbackRequiresAdaptFlag(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/v1/feedback", "/v1/rollback"} {
		code, body := postJSON(t, ts.URL+path, `{"samples":[]}`)
		if code != http.StatusNotFound {
			t.Errorf("%s without -adapt: status %d, want 404 (%s)", path, code, body)
		}
		if !strings.Contains(string(body), "-adapt") {
			t.Errorf("%s error should tell the operator about -adapt: %s", path, body)
		}
	}
}

func TestFeedbackValidation(t *testing.T) {
	h := newAdaptServer(t, func(c *Config) { c.MaxBatch = 4 })
	cases := map[string]struct {
		body string
		want int
	}{
		"malformed json":     {`{"samples":[`, http.StatusBadRequest},
		"empty batch":        {`{"samples":[]}`, http.StatusBadRequest},
		"missing field":      {`{}`, http.StatusBadRequest},
		"short readings":     {`{"samples":[{"readings":[0.9,0.9],"voltages":[1,1,1,1,1,1]}]}`, http.StatusBadRequest},
		"null reading":       {`{"samples":[{"readings":[null,0.9,0.9,0.9],"voltages":[1,1,1,1,1,1]}]}`, http.StatusBadRequest},
		"short voltages":     {`{"samples":[{"readings":[0.9,0.9,0.9,0.9],"voltages":[1,1]}]}`, http.StatusBadRequest},
		"non-finite voltage": {`{"samples":[{"readings":[0.9,0.9,0.9,0.9],"voltages":[1e999,1,1,1,1,1]}]}`, http.StatusBadRequest},
		"over max batch": {h.feedbackBody(5, 0),
			http.StatusRequestEntityTooLarge},
	}
	for name, tc := range cases {
		code, body := postJSON(t, h.ts.URL+"/v1/feedback", tc.body)
		if code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", name, code, tc.want, body)
		}
	}
	resp, err := http.Get(h.ts.URL + "/v1/feedback")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/feedback: status %d, want 405", resp.StatusCode)
	}
	// A rejected batch must not have been half-ingested.
	if st := h.s.defaultTenant().adapter.Load().ad.Status(); st.Ingested != 0 {
		t.Errorf("rejected batches ingested %d samples", st.Ingested)
	}
}

func TestFeedbackAcceptsAndLogsSamples(t *testing.T) {
	var log bytes.Buffer
	h := newAdaptServer(t, func(c *Config) { c.FeedbackLog = &log })
	body := h.feedbackBody(8, 0)
	code, respBody := postJSON(t, h.ts.URL+"/v1/feedback", body)
	if code != http.StatusOK {
		t.Fatalf("feedback status %d: %s", code, respBody)
	}
	var resp feedbackResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 8 || resp.Skipped != 0 || resp.Promoted {
		t.Fatalf("response = %+v", resp)
	}
	if resp.ShadowSamples != 8 {
		t.Errorf("shadow_samples = %d, want 8", resp.ShadowSamples)
	}
	// The audit log must replay through the standard CSV loader with the
	// exact values the loop learned from.
	m, names, err := traceio.ReadMatrixCSV(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatalf("feedback log unreadable: %v", err)
	}
	if m.Rows() != 10 || m.Cols() != 8 {
		t.Fatalf("feedback log shape %dx%d, want 10x8", m.Rows(), m.Cols())
	}
	if names[0] != "s0" || names[3] != "s3" || names[4] != "f0" || names[9] != "f5" {
		t.Fatalf("feedback log header = %v", names)
	}
	var req feedbackRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	for i, smp := range req.Samples {
		for j := range smp.Readings {
			if m.At(j, i) != float64(smp.Readings[j]) {
				t.Fatalf("log sample %d reading %d = %v, want %v", i, j, m.At(j, i), smp.Readings[j])
			}
		}
		for j, v := range smp.Voltages {
			if m.At(4+j, i) != v {
				t.Fatalf("log sample %d voltage %d = %v, want %v", i, j, m.At(4+j, i), v)
			}
		}
	}
}

func TestFeedbackPromotesRecalibratedModel(t *testing.T) {
	h := newAdaptServer(t, nil)
	// Pre-drift, the live model predicts healthy voltages at nominal inputs.
	code, body := postJSON(t, h.ts.URL+"/v1/predict", `{"readings":[[0.9,0.9,0.9,0.9]]}`)
	if code != http.StatusOK {
		t.Fatalf("predict status %d: %s", code, body)
	}
	var before predictResponse
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}
	if before.Voltages[0][0] < 0.88 {
		t.Fatalf("pre-drift prediction %v unexpectedly low", before.Voltages[0][0])
	}

	resp := h.driveToPromotion(t)
	if resp.ModelGeneration != 2 {
		t.Errorf("promoted model_generation = %d, want 2", resp.ModelGeneration)
	}
	if resp.ModelVersion != 2 {
		t.Errorf("promoted model_version = %d, want 2", resp.ModelVersion)
	}
	if h.s.Generation() != 2 {
		t.Errorf("server generation = %d, want 2", h.s.Generation())
	}
	live := h.s.defaultTenant().adapter.Load().ad.Live()
	if live.Lineage == nil || live.Lineage.Source != core.LineageSourceOnline || live.Lineage.Version != 2 {
		t.Errorf("promoted lineage = %+v", live.Lineage)
	}

	// The serving model now tracks the drifted chip.
	code, body = postJSON(t, h.ts.URL+"/v1/predict", `{"readings":[[0.9,0.9,0.9,0.9]]}`)
	if code != http.StatusOK {
		t.Fatalf("predict status %d: %s", code, body)
	}
	var after predictResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.ModelGeneration != 2 {
		t.Errorf("post-promotion predict generation = %d", after.ModelGeneration)
	}
	if after.Voltages[0][0] > 0.84 {
		t.Errorf("post-promotion prediction %v did not follow the -0.08 V drift", after.Voltages[0][0])
	}

	// Metrics and health must agree on what happened.
	mres, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mres.Body)
	mres.Body.Close()
	exp := string(mb)
	for _, want := range []string{
		"voltserved_promotions_total 1",
		"voltserved_model_generation 2",
		`voltserved_predictions_total{tenant="default",model_generation="1"} 1`,
		`voltserved_predictions_total{tenant="default",model_generation="2"} 1`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	hres, err := http.Get(h.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(hres.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	ad, ok := hz["adaptation"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing adaptation section: %v", hz)
	}
	if ad["model_version"] != 2.0 || ad["promotions"] != 1.0 {
		t.Errorf("healthz adaptation = %v", ad)
	}
}

// TestStreamAdoptsPromotionMidSession drives an open streaming session
// across a promotion: the session must emit a promotion line, switch to the
// recalibrated coefficients (raising the alarms the stale model missed), and
// keep its cycle count and alarm hysteresis — one raise per block, no
// re-raises, one summary covering all six cycles.
func TestStreamAdoptsPromotionMidSession(t *testing.T) {
	h := newAdaptServer(t, nil)
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, h.ts.URL+"/v1/stream?emit_voltages=true", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	writeLine := func() {
		if _, err := io.WriteString(pw, `{"readings":[0.9,0.9,0.9,0.9]}`+"\n"); err != nil {
			t.Fatal(err)
		}
	}
	scanLine := func() []byte {
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		return sc.Bytes()
	}

	// Three cycles on the stale model: voltages echo back healthy, no alarms.
	for c := 0; c < 3; c++ {
		writeLine()
		var v streamVoltages
		if err := json.Unmarshal(scanLine(), &v); err != nil || len(v.Voltages) != 6 {
			t.Fatalf("cycle %d: expected voltages line, got error %v", c, err)
		}
		if v.Voltages[0] < 0.85 {
			t.Fatalf("cycle %d: stale model alarmed unexpectedly: %v", c, v.Voltages[0])
		}
	}

	h.driveToPromotion(t)

	// The next cycle adopts the promotion: first the promotion line, then
	// the (now drifted) voltages, then one raised alarm per block.
	writeLine()
	var promo map[string]streamPromotion
	if err := json.Unmarshal(scanLine(), &promo); err != nil {
		t.Fatal(err)
	}
	ev, ok := promo["promotion"]
	if !ok {
		t.Fatalf("expected promotion line, got %v", promo)
	}
	if ev.Cycle != 3 || ev.ModelGeneration != 2 || ev.ModelVersion != 2 || ev.Source != core.LineageSourceOnline {
		t.Fatalf("promotion line = %+v", ev)
	}
	var v streamVoltages
	if err := json.Unmarshal(scanLine(), &v); err != nil {
		t.Fatal(err)
	}
	if v.Voltages[0] > 0.85 {
		t.Fatalf("post-adoption voltages still on stale coefficients: %v", v.Voltages[0])
	}
	raised := map[int]int{}
	for i := 0; i < 6; i++ {
		var e streamEvent
		if err := json.Unmarshal(scanLine(), &e); err != nil {
			t.Fatal(err)
		}
		if e.Kind != "raised" {
			t.Fatalf("event %d kind = %q", i, e.Kind)
		}
		raised[e.Block]++
	}
	if len(raised) != 6 {
		t.Fatalf("raised blocks = %v, want all 6", raised)
	}

	// Two more cycles: alarms hold (hysteresis carried across the swap), so
	// only voltages lines arrive — no re-raises.
	for c := 4; c < 6; c++ {
		writeLine()
		line := scanLine()
		if err := json.Unmarshal(line, &v); err != nil || len(v.Voltages) != 6 {
			t.Fatalf("cycle %d: expected voltages-only line, got %s", c, line)
		}
	}
	pw.Close()
	var sum map[string]streamSummary
	if err := json.Unmarshal(scanLine(), &sum); err != nil {
		t.Fatal(err)
	}
	st := sum["summary"]
	if st.Cycles != 6 || st.Alarms != 6 || len(st.ActiveAlarms) != 6 {
		t.Fatalf("summary = %+v", st)
	}
}

func TestRollbackRestoresPriorModel(t *testing.T) {
	h := newAdaptServer(t, nil)
	// Nothing to roll back yet.
	code, body := postJSON(t, h.ts.URL+"/v1/rollback", "")
	if code != http.StatusConflict {
		t.Fatalf("rollback before promotion: status %d (%s)", code, body)
	}

	h.driveToPromotion(t)
	code, body = postJSON(t, h.ts.URL+"/v1/rollback", "")
	if code != http.StatusOK {
		t.Fatalf("rollback status %d: %s", code, body)
	}
	var rb map[string]any
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatal(err)
	}
	// Rollback installs the prior coefficients as a fresh generation.
	if rb["status"] != "rolled-back" || rb["model_generation"] != 3.0 {
		t.Fatalf("rollback response = %v", rb)
	}
	code, body = postJSON(t, h.ts.URL+"/v1/predict", `{"readings":[[0.9,0.9,0.9,0.9]]}`)
	if code != http.StatusOK {
		t.Fatalf("predict status %d: %s", code, body)
	}
	var resp predictResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ModelGeneration != 3 {
		t.Errorf("post-rollback generation = %d, want 3", resp.ModelGeneration)
	}
	if resp.Voltages[0][0] < 0.88 {
		t.Errorf("post-rollback prediction %v still on the promoted model", resp.Voltages[0][0])
	}
	// A second rollback has nothing left to restore.
	code, _ = postJSON(t, h.ts.URL+"/v1/rollback", "")
	if code != http.StatusConflict {
		t.Errorf("second rollback: status %d, want 409", code)
	}
	mres, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mres.Body)
	mres.Body.Close()
	if !strings.Contains(string(mb), "voltserved_rollbacks_total 1") {
		t.Error("exposition missing voltserved_rollbacks_total 1")
	}
}

// TestFeedbackSkippedWhileSensorsFaulty pins the learning-hygiene rule:
// samples arriving while the fault tier has diagnosed sensors are skipped
// wholesale (their readings are corrupt), and a degraded chip rejects
// feedback exactly like inference.
func TestFeedbackSkippedWhileSensorsFaulty(t *testing.T) {
	_, ts := newFaultServer(t, Config{Adapt: true})
	// Two consecutive nulls on sensor 0 trip the dropout diagnosis.
	code, body := postJSON(t, ts.URL+"/v1/predict",
		`{"readings":[[null,0.94,0.96],[null,0.94,0.96]]}`)
	if code != http.StatusOK {
		t.Fatalf("predict status %d: %s", code, body)
	}
	fb := `{"samples":[{"readings":[0.95,0.95,0.95],"voltages":[0.83]},{"readings":[0.95,0.95,0.95],"voltages":[0.83]}]}`
	code, body = postJSON(t, ts.URL+"/v1/feedback", fb)
	if code != http.StatusOK {
		t.Fatalf("feedback status %d: %s", code, body)
	}
	var resp feedbackResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 0 || resp.Skipped != 2 {
		t.Fatalf("faulty-sensor feedback = %+v", resp)
	}
	if !strings.Contains(resp.Note, "faulty") {
		t.Errorf("note should explain the skip: %q", resp.Note)
	}
	mres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mres.Body)
	mres.Body.Close()
	if !strings.Contains(string(mb), "voltserved_feedback_skipped_total 2") {
		t.Error("exposition missing voltserved_feedback_skipped_total 2")
	}
	// A second faulty sensor exceeds the leave-one-out fallbacks: degraded
	// mode rejects feedback with the same 503 contract as inference.
	code, _ = postJSON(t, ts.URL+"/v1/predict",
		`{"readings":[[null,null,0.96],[null,null,0.96]]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degrading predict status %d, want 503", code)
	}
	code, body = postJSON(t, ts.URL+"/v1/feedback", fb)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded feedback status %d: %s", code, body)
	}
}

// TestApplySwapGuards unit-tests the promotion callback's refusal gates:
// stale adapters (a reload replaced the loop) and fault-tier state block
// shadow promotions, while operator rollbacks bypass the fault gate.
func TestApplySwapGuards(t *testing.T) {
	s, ts := newFaultServer(t, Config{Adapt: true})
	cand := faultPredictor(t)
	tn := s.defaultTenant()
	ast := tn.adapter.Load()

	// A stale adapter generation must never install a model.
	err := s.applySwap(tn, &adapterState{q: 3, k: 1})(cand, false)
	if err == nil || !strings.Contains(err.Error(), "reloaded") {
		t.Fatalf("stale adapter promotion: err = %v", err)
	}

	// Diagnose sensor 0 faulty; promotions are now refused...
	code, body := postJSON(t, ts.URL+"/v1/predict",
		`{"readings":[[null,0.94,0.96],[null,0.94,0.96]]}`)
	if code != http.StatusOK {
		t.Fatalf("predict status %d: %s", code, body)
	}
	gen := s.Generation()
	err = s.applySwap(tn, ast)(cand, false)
	if err == nil || !strings.Contains(err.Error(), "faulty") {
		t.Fatalf("faulty-sensor promotion: err = %v", err)
	}
	if s.Generation() != gen {
		t.Fatal("refused promotion still bumped the generation")
	}
	// ...but an operator rollback is not: reverting to known-good
	// coefficients must work exactly when the chip is misbehaving.
	if err := s.applySwap(tn, ast)(cand, true); err != nil {
		t.Fatalf("rollback through fault gate: %v", err)
	}
	if s.Generation() != gen+1 {
		t.Fatalf("rollback did not install: generation %d", s.Generation())
	}
}

// TestPromotionRaceUnderFaults is the -race workhorse: concurrent
// /v1/predict traffic, a streaming session, drifted /v1/feedback batches
// driving shadow promotions, and a fault-injection goroutine that first
// diagnoses a sensor and then degrades the chip mid-run. The race detector
// checks for torn reads; the test body checks the invariants — alarm
// events alternate per block (hysteresis continuity across adoptions), no
// batch both skipped-for-faults and promoted, and the quiesced server's
// health, generation, and metrics agree.
func TestPromotionRaceUnderFaults(t *testing.T) {
	s, ts := newFaultServer(t, Config{
		Adapt: true,
		Adaptation: online.Config{
			EvalWindow: 32, MinSamples: 32, Margin: 0.001,
			DriftWindow: 8, Forgetting: 0.999,
		},
		Monitor: monitor.Config{Vth: 0.85, ClearMargin: 0.01, ClearCycles: 2},
	})
	post := func(path, body string) (int, []byte, error) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				body := fmt.Sprintf(`{"readings":[[%.4f,%.4f,%.4f]]}`,
					0.95+0.004*rng.NormFloat64(), 0.95+0.004*rng.NormFloat64(), 0.95+0.004*rng.NormFloat64())
				code, b, err := post("/v1/predict", body)
				if err != nil {
					t.Error(err)
					return
				}
				if code != http.StatusOK && code != http.StatusServiceUnavailable {
					t.Errorf("predict status %d: %s", code, b)
					return
				}
			}
		}(int64(g))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for batch := 0; batch < 80; batch++ {
			var sb strings.Builder
			sb.WriteString(`{"samples":[`)
			for i := 0; i < 12; i++ {
				if i > 0 {
					sb.WriteByte(',')
				}
				x := [3]float64{}
				mean := 0.0
				for j := range x {
					x[j] = 0.95 + 0.005*rng.NormFloat64()
					mean += x[j] / 3
				}
				truth := mean - 0.12 + 0.002*rng.NormFloat64()
				fmt.Fprintf(&sb, `{"readings":[%.6f,%.6f,%.6f],"voltages":[%.6f]}`, x[0], x[1], x[2], truth)
			}
			sb.WriteString(`]}`)
			code, b, err := post("/v1/feedback", sb.String())
			if err != nil {
				t.Error(err)
				return
			}
			switch code {
			case http.StatusOK:
				var resp feedbackResponse
				if err := json.Unmarshal(b, &resp); err != nil {
					t.Errorf("feedback response: %v (%s)", err, b)
					return
				}
				if resp.Promoted && resp.Skipped > 0 {
					t.Errorf("batch skipped for faulty sensors still promoted: %s", b)
				}
			case http.StatusServiceUnavailable:
				// Degraded mid-run; expected once the injector fires.
			default:
				t.Errorf("feedback status %d: %s", code, b)
				return
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(3 * time.Millisecond)
		// Sensor 0 drops out: fallback territory, promotions refused.
		if _, _, err := post("/v1/predict", `{"readings":[[null,0.95,0.95],[null,0.95,0.95]]}`); err != nil {
			t.Error(err)
			return
		}
		time.Sleep(3 * time.Millisecond)
		// Sensor 1 too: beyond the leave-one-out fallbacks — degraded.
		if _, _, err := post("/v1/predict", `{"readings":[[null,null,0.95],[null,null,0.95]]}`); err != nil {
			t.Error(err)
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		lines := make([]string, 150)
		for c := range lines {
			lines[c] = healthyLine(c)
		}
		resp, err := http.Post(ts.URL+"/v1/stream", "application/x-ndjson",
			strings.NewReader(strings.Join(lines, "\n")+"\n"))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			return // session refused: chip already degraded
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("stream status %d", resp.StatusCode)
			return
		}
		active := map[int]bool{}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var probe map[string]json.RawMessage
			if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
				t.Errorf("unparseable stream line %q: %v", sc.Text(), err)
				return
			}
			if _, ok := probe["kind"]; !ok {
				continue
			}
			var ev streamEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Error(err)
				return
			}
			switch ev.Kind {
			case "raised":
				if active[ev.Block] {
					t.Errorf("block %d raised twice without a clear (cycle %d)", ev.Block, ev.Cycle)
				}
				active[ev.Block] = true
			case "cleared":
				if !active[ev.Block] {
					t.Errorf("block %d cleared without an active alarm (cycle %d)", ev.Block, ev.Cycle)
				}
				active[ev.Block] = false
			}
		}
		if err := sc.Err(); err != nil {
			t.Error(err)
		}
	}()

	wg.Wait()

	// Quiesced: health, generation, and metrics must tell one story.
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(hres.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hz["model_generation"] != float64(s.Generation()) {
		t.Errorf("healthz generation %v != server %d", hz["model_generation"], s.Generation())
	}
	if _, ok := hz["adaptation"]; !ok {
		t.Error("healthz lost the adaptation section")
	}
	mres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mres.Body)
	mres.Body.Close()
	if !strings.Contains(string(mb), fmt.Sprintf("voltserved_model_generation %d", s.Generation())) {
		t.Error("metrics generation disagrees with server")
	}
}

// TestMetricsEveryFamilyHasTypeLine sweeps the exposition: every sample
// line's family must have been declared by a preceding # TYPE line.
func TestMetricsEveryFamilyHasTypeLine(t *testing.T) {
	h := newAdaptServer(t, nil)
	postJSON(t, h.ts.URL+"/v1/predict", `{"readings":[[0.9,0.9,0.9,0.9]]}`)
	postJSON(t, h.ts.URL+"/v1/feedback", h.feedbackBody(4, 0))
	streamCycles(t, h.ts.URL+"/v1/stream", []string{`{"readings":[0.9,0.9,0.9,0.9]}`})
	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	declared := map[string]bool{}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			declared[fields[2]] = true
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if declared[family] {
				break
			}
			family = strings.TrimSuffix(name, suf)
		}
		if !declared[name] && !declared[family] {
			t.Errorf("sample %q has no # TYPE declaration", name)
		}
	}
}
