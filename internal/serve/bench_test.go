package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"voltsense/internal/core"
	"voltsense/internal/mat"
	"voltsense/internal/monitor"
	"voltsense/internal/ols"
)

// benchPredictor builds a paper-scale model: 8 sensors predicting 32 blocks.
func benchPredictor(q, k int) *core.Predictor {
	alpha := mat.Zeros(k, q)
	sel := make([]int, q)
	c := make([]float64, k)
	for i := 0; i < k; i++ {
		c[i] = 0.05
		for j := 0; j < q; j++ {
			alpha.Set(i, j, 1/float64(q)+0.001*float64(i-j))
		}
	}
	for j := range sel {
		sel[j] = 2 * j
	}
	return &core.Predictor{Selected: sel, Model: &ols.Model{Alpha: alpha, C: c}}
}

func benchmarkPredict(b *testing.B, batch int) {
	const q, k = 8, 32
	s, err := New(Config{
		Loader:  func() (*core.Predictor, error) { return benchPredictor(q, k), nil },
		Monitor: monitor.Config{Vth: 0.95},
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	readings := make([][]reading, batch)
	for i := range readings {
		row := make([]reading, q)
		for j := range row {
			row[j] = reading(0.9 + 0.001*float64(i+j))
		}
		readings[i] = row
	}
	body, err := json.Marshal(predictRequest{Readings: readings})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	// Vectors per second is the serving throughput figure of merit.
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "vectors/s")
}

func BenchmarkPredictBatch1(b *testing.B)  { benchmarkPredict(b, 1) }
func BenchmarkPredictBatch64(b *testing.B) { benchmarkPredict(b, 64) }

// BenchmarkStreamCycle measures one monitored NDJSON cycle end to end.
func BenchmarkStreamCycle(b *testing.B) {
	const q, k = 8, 32
	s, err := New(Config{
		Loader:  func() (*core.Predictor, error) { return benchPredictor(q, k), nil },
		Monitor: monitor.Config{Vth: 0.95},
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	line := `{"readings":[0.99,0.99,0.99,0.99,0.99,0.99,0.99,0.99]}` + "\n"
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.WriteString(line)
	}
	b.ReportAllocs()
	b.ResetTimer()
	resp, err := http.Post(ts.URL+"/v1/stream", "application/x-ndjson", &buf)
	if err != nil {
		b.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	b.StopTimer()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(out, []byte(fmt.Sprintf(`"cycles":%d`, b.N))) {
		b.Fatalf("stream failed: %d %s", resp.StatusCode, out)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}
