package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"voltsense/internal/monitor"
	"voltsense/internal/online"
)

// legacyArtifact matches testPredictor's shape (2 sensors, 3 blocks) as a
// serialized voltsense-predictor/v1 file, for fleet stores on disk.
const legacyArtifact = `{
  "format": "voltsense-predictor/v1",
  "selected_sensors": [3, 7],
  "alpha": [[1, 0], [0, 1], [0.5, 0.5]],
  "c": [0, 0, 0]
}`

func writeArtifact(t testing.TB, dir, id, artifact string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, id+".json"), []byte(artifact), 0o644); err != nil {
		t.Fatal(err)
	}
}

// newFleetServer builds a fleet-mode server over a temp artifact store
// seeded with the given tenants.
func newFleetServer(t *testing.T, cfg Config, tenants map[string]string) (*Server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	for id, art := range tenants {
		writeArtifact(t, dir, id, art)
	}
	cfg.StoreDir = dir
	if cfg.Monitor.Vth == 0 {
		cfg.Monitor = monitor.Config{Vth: 0.90, ClearMargin: 0.02, ClearCycles: 2}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, dir
}

func predictAs(t *testing.T, ts *httptest.Server, tenantHeader, body string) (int, predictResponse, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenantHeader != "" {
		req.Header.Set(TenantHeader, tenantHeader)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	var pr predictResponse
	json.Unmarshal(b, &pr)
	return resp.StatusCode, pr, b
}

func TestFleetRoutingHeaderQueryBodyDefault(t *testing.T) {
	_, ts, _ := newFleetServer(t, Config{}, map[string]string{
		"default": legacyArtifact, // 2 sensors, 3 blocks
		"chipA":   faultArtifact,  // 3 sensors, 1 block
	})

	// No tenant anywhere: the default tenant serves, old clients unchanged.
	code, pr, body := predictAs(t, ts, "", `{"readings":[[0.9,0.7]]}`)
	if code != http.StatusOK || pr.Tenant != "default" || pr.Blocks != 3 {
		t.Fatalf("default route: code %d resp %+v body %s", code, pr, body)
	}

	// Header routing.
	code, pr, body = predictAs(t, ts, "chipA", `{"readings":[[0.95,0.95,0.95]]}`)
	if code != http.StatusOK || pr.Tenant != "chipA" || pr.Blocks != 1 {
		t.Fatalf("header route: code %d resp %+v body %s", code, pr, body)
	}

	// Query-parameter routing.
	code, b := postJSON(t, ts.URL+"/v1/predict?tenant=chipA", `{"readings":[[0.95,0.95,0.95]]}`)
	var qr predictResponse
	json.Unmarshal(b, &qr)
	if code != http.StatusOK || qr.Tenant != "chipA" {
		t.Fatalf("query route: code %d resp %+v", code, qr)
	}

	// Body-field routing.
	code, b = postJSON(t, ts.URL+"/v1/predict", `{"tenant":"chipA","readings":[[0.95,0.95,0.95]]}`)
	json.Unmarshal(b, &qr)
	if code != http.StatusOK || qr.Tenant != "chipA" {
		t.Fatalf("body route: code %d resp %+v", code, qr)
	}

	// Header beats body.
	code, pr, _ = predictAs(t, ts, "chipA", `{"tenant":"default","readings":[[0.95,0.95,0.95]]}`)
	if code != http.StatusOK || pr.Tenant != "chipA" {
		t.Fatalf("precedence: code %d resp %+v", code, pr)
	}

	// Unknown and invalid tenant ids 404 without disturbing anything.
	code, _, b = predictAs(t, ts, "nosuch", `{"readings":[[0.9,0.7]]}`)
	if code != http.StatusNotFound || !strings.Contains(string(b), "unknown tenant") {
		t.Fatalf("unknown tenant: code %d body %s", code, b)
	}
	code, _, _ = predictAs(t, ts, "../../etc/passwd", `{"readings":[[0.9,0.7]]}`)
	if code != http.StatusNotFound {
		t.Fatalf("invalid tenant id: code %d", code)
	}
}

// degradeTenant drives one tenant's fault tier into degraded mode by
// feeding nulls on two sensors (the fixture's fallbacks only cover one).
func degradeTenant(t *testing.T, ts *httptest.Server, tenant string) {
	t.Helper()
	for i := 0; i < 20; i++ {
		code, _, _ := predictAs(t, ts, tenant,
			`{"readings":[[null,null,0.95],[null,null,0.95],[null,null,0.95]]}`)
		if code == http.StatusServiceUnavailable {
			return
		}
	}
	t.Fatalf("tenant %s never degraded", tenant)
}

// TestFleetFaultIsolation is the cross-tenant acceptance check: a fault
// storm that degrades one tenant must leave every other tenant serving.
func TestFleetFaultIsolation(t *testing.T) {
	s, ts, _ := newFleetServer(t, Config{}, map[string]string{
		"default": faultArtifact,
		"chipA":   faultArtifact,
		"chipB":   faultArtifact,
	})
	// Warm chipB so it is resident before chipA's storm.
	if code, _, b := predictAs(t, ts, "chipB", healthyBatch()); code != http.StatusOK {
		t.Fatalf("chipB warmup: %d %s", code, b)
	}

	degradeTenant(t, ts, "chipA")

	// chipA is down hard: predict and new streams both refuse.
	code, _, b := predictAs(t, ts, "chipA", healthyBatch())
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded chipA predict: code %d body %s", code, b)
	}

	// Its neighbors never notice.
	for _, tenant := range []string{"", "chipB"} {
		code, _, b := predictAs(t, ts, tenant, healthyBatch())
		if code != http.StatusOK {
			t.Fatalf("tenant %q degraded by chipA's faults: code %d body %s", tenant, code, b)
		}
	}

	// The per-tenant gauges tell the two states apart; the default tenant's
	// health endpoint still reports ok.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exp := string(mb)
	for _, want := range []string{
		`voltserved_tenant_degraded{tenant="chipA"} 1`,
		`voltserved_tenant_degraded{tenant="chipB"} 0`,
		`voltserved_tenant_degraded{tenant="default"} 0`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	var hz map[string]any
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(hres.Body).Decode(&hz)
	hres.Body.Close()
	if hz["status"] != "ok" {
		t.Errorf("default tenant health = %v after chipA degraded", hz["status"])
	}
	_ = s
}

func healthyBatch() string {
	return `{"readings":[[0.95,0.95,0.95]]}`
}

// TestFleetReloadUnderTrafficPreservesUntouchedTenants rewrites one
// tenant's artifact and rescans while concurrent traffic hits two tenants:
// only the changed tenant swaps, and the untouched tenant keeps its runtime
// — same *Tenant, same generation, same accumulated adapter state. Run with
// -race this is the reload-under-traffic acceptance check.
func TestFleetReloadUnderTrafficPreservesUntouchedTenants(t *testing.T) {
	s, ts, dir := newFleetServer(t, Config{
		Adapt:      true,
		Adaptation: online.Config{EvalWindow: 64, MinSamples: 64},
	}, map[string]string{
		"default": faultArtifact,
		"a":       faultArtifact,
		"b":       faultArtifact,
	})
	// Warm both and feed b's adapter some state worth preserving.
	if code, _, b := predictAs(t, ts, "a", healthyBatch()); code != http.StatusOK {
		t.Fatalf("warm a: %d %s", code, b)
	}
	fb := `{"tenant":"b","samples":[{"readings":[0.95,0.95,0.95],"voltages":[0.95]}]}`
	if code, b := postJSON(t, ts.URL+"/v1/feedback", fb); code != http.StatusOK {
		t.Fatalf("feedback b: %d %s", code, b)
	}
	vb, ok := s.Registry().Peek("b")
	if !ok {
		t.Fatal("b not resident")
	}
	tnB := vb.(*Tenant)
	genB := tnB.Generation()
	ingestedB := tnB.adapter.Load().ad.Status().Ingested
	if ingestedB == 0 {
		t.Fatal("b's adapter ingested nothing")
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for _, tenant := range []string{"a", "b"} {
		tenant := tenant
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				code, _, body := predictAs(t, ts, tenant, healthyBatch())
				if code != http.StatusOK {
					t.Errorf("tenant %s mid-reload: code %d body %s", tenant, code, body)
					return
				}
			}
		}()
	}

	// Rewrite a's artifact (different byte length changes the fingerprint
	// even on coarse mtime clocks) and rescan under the traffic.
	writeArtifact(t, dir, "a", faultArtifact+"\n")
	code, body := postJSON(t, ts.URL+"/v1/reload", "")
	stop.Store(true)
	wg.Wait()
	if code != http.StatusOK {
		t.Fatalf("reload: %d %s", code, body)
	}
	var rr struct {
		Reloaded []string `json:"reloaded"`
		Removed  []string `json:"removed"`
	}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rr.Reloaded) != "[a]" || len(rr.Removed) != 0 {
		t.Fatalf("rescan touched the wrong tenants: %+v", rr)
	}

	// a was rebuilt on a new generation; b is bit-identical the same.
	va, _ := s.Registry().Peek("a")
	if va.(*Tenant).Generation() <= genB {
		t.Errorf("a's generation did not advance: %d", va.(*Tenant).Generation())
	}
	vb2, _ := s.Registry().Peek("b")
	if vb2.(*Tenant) != tnB {
		t.Error("untouched tenant b was rebuilt by the rescan")
	}
	if got := tnB.Generation(); got != genB {
		t.Errorf("b's generation changed: %d -> %d", genB, got)
	}
	if got := tnB.adapter.Load().ad.Status().Ingested; got != ingestedB {
		t.Errorf("b's adapter state reset: ingested %d -> %d", ingestedB, got)
	}
}

// TestFleetLRUEvictionBoundsMetricCardinality loads more tenants than the
// cache holds and checks the label-cardinality invariant: counter series
// only exist for resident tenants (plus one _retired aggregate), totals
// stay monotone through evictions, and the pinned default survives.
func TestFleetLRUEvictionBoundsMetricCardinality(t *testing.T) {
	store := map[string]string{"default": legacyArtifact}
	for i := 1; i <= 5; i++ {
		store[fmt.Sprintf("t%d", i)] = legacyArtifact
	}
	s, ts, _ := newFleetServer(t, Config{MaxTenants: 2}, store)

	for i := 1; i <= 5; i++ {
		code, _, b := predictAs(t, ts, fmt.Sprintf("t%d", i), `{"readings":[[0.9,0.7]]}`)
		if code != http.StatusOK {
			t.Fatalf("t%d: %d %s", i, code, b)
		}
	}
	total := s.Metrics().PredictionsTotal()
	if total != 5 {
		t.Fatalf("PredictionsTotal = %d, want 5 (monotone through evictions)", total)
	}
	if got := s.Registry().Len(); got > 2 {
		t.Fatalf("resident tenants = %d, want <= 2", got)
	}
	if got := s.Metrics().TenantLabelCount(); got > 2 {
		t.Fatalf("tenant label cardinality = %d, want <= resident 2", got)
	}
	if fmt.Sprint(s.Registry().Resident()) != "[default t5]" {
		t.Fatalf("resident = %v (pinned default must survive)", s.Registry().Resident())
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exp := string(b)
	for _, want := range []string{
		`voltserved_predictions_total{tenant="_retired",model_generation="all"} 4`,
		`voltserved_predictions_total{tenant="t5",`,
		"voltserved_tenant_evictions_total 4",
		"voltserved_tenants_resident 2",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for i := 1; i <= 4; i++ {
		if evicted := fmt.Sprintf(`{tenant="t%d"`, i); strings.Contains(exp, evicted) {
			t.Errorf("evicted tenant t%d still has labeled series", i)
		}
	}

	// Evicted tenants reload on demand; their counters restart under the
	// resident label while the retired aggregate keeps the history.
	if code, _, _ := predictAs(t, ts, "t1", `{"readings":[[0.9,0.7]]}`); code != http.StatusOK {
		t.Fatalf("re-load after eviction: %d", code)
	}
	if got := s.Metrics().PredictionsTotal(); got != 6 {
		t.Fatalf("PredictionsTotal after re-load = %d, want 6", got)
	}
}

// TestOverloadAdmissionSheds saturates a MaxInflight=1 server and checks
// the shed contract: 503, Retry-After, machine-readable reason, and the
// shed counters.
func TestOverloadAdmissionSheds(t *testing.T) {
	s, ts, _ := newFleetServer(t, Config{
		Overload: Overload{MaxInflight: 1, MaxQueue: 1, QueueTimeout: 30 * time.Millisecond, RetryAfter: 7 * time.Second},
	}, map[string]string{"default": legacyArtifact})

	// Hold the only slot: a predict whose body arrives byte by byte.
	pr, pw := io.Pipe()
	done := make(chan int, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", pr)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if inflight, _ := s.adm.stats(); inflight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot holder never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// Second request queues (MaxQueue 1) and times out: queue_timeout.
	code, body := postJSON(t, ts.URL+"/v1/predict", `{"readings":[[0.9,0.7]]}`)
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), shedQueueTimeout) {
		t.Fatalf("queued request: code %d body %s", code, body)
	}

	// With the queue occupied, a third arrival sheds instantly: queue_full.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, ts.URL+"/v1/predict", `{"readings":[[0.9,0.7]]}`)
	}()
	deadline = time.Now().Add(2 * time.Second)
	for {
		if _, queued := s.adm.stats(); queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no request ever queued")
		}
		time.Sleep(time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader(`{"readings":[[0.9,0.7]]}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	wg.Wait()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(b), shedQueueFull) {
		t.Fatalf("overflow request: code %d body %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want %q", got, "7")
	}
	var shedResp struct{ Reason string }
	if err := json.Unmarshal(b, &shedResp); err != nil || shedResp.Reason != shedQueueFull {
		t.Errorf("shed body reason = %q (%v)", shedResp.Reason, err)
	}

	// Release the slot; the held request completes normally.
	io.WriteString(pw, `{"readings":[[0.9,0.7]]}`)
	pw.Close()
	if got := <-done; got != http.StatusOK {
		t.Fatalf("held request finished %d", got)
	}
	if s.Metrics().Shed.Value() < 2 {
		t.Errorf("shed counter = %d, want >= 2", s.Metrics().Shed.Value())
	}
}

// openStream starts an NDJSON session and keeps it open until the returned
// close func runs; the response status is available immediately because the
// server writes headers up front.
func openStream(t *testing.T, ts *httptest.Server, tenant string) (status int, closeFn func()) {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, func() {
		pw.Close()
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func TestOverloadStreamCaps(t *testing.T) {
	s, ts, _ := newFleetServer(t, Config{
		Overload: Overload{MaxStreams: 3, MaxTenantStreams: 1},
	}, map[string]string{
		"default": legacyArtifact,
		"chipA":   legacyArtifact,
		"chipB":   legacyArtifact,
	})

	// One stream per tenant is fine; a second on the same tenant sheds with
	// tenant_stream_cap while other tenants stay unaffected.
	code, closeA := openStream(t, ts, "chipA")
	if code != http.StatusOK {
		t.Fatalf("first chipA stream: %d", code)
	}
	defer closeA()
	code, closeA2 := openStream(t, ts, "chipA")
	closeA2()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("second chipA stream: code %d, want 503", code)
	}
	code, closeB := openStream(t, ts, "chipB")
	if code != http.StatusOK {
		t.Fatalf("chipB stream blocked by chipA's cap: %d", code)
	}
	defer closeB()

	// The global cap bites across tenants: 3 open (chipA, chipB, default),
	// a 4th sheds with stream_cap regardless of tenant.
	code, closeD := openStream(t, ts, "")
	if code != http.StatusOK {
		t.Fatalf("default stream: %d", code)
	}
	defer closeD()
	code, closeX := openStream(t, ts, "chipB")
	closeX()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("4th stream: code %d, want 503", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exp := string(b)
	for _, want := range []string{
		`voltserved_tenant_shed_total{tenant="chipA",reason="tenant_stream_cap"} 1`,
		`voltserved_tenant_shed_total{tenant="chipB",reason="stream_cap"} 1`,
		"voltserved_shed_total 2",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Releasing a stream frees its tenant's slot.
	closeA()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, _ := s.Registry().Peek("chipA"); v != nil && v.(*Tenant).streams.Load() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("chipA stream slot never released")
		}
		time.Sleep(time.Millisecond)
	}
	code, closeA3 := openStream(t, ts, "chipA")
	closeA3()
	if code != http.StatusOK {
		t.Fatalf("stream after release: %d", code)
	}
}

// TestFleetMetricsEveryFamilyHasTypeLine re-runs the TYPE-line invariant
// sweep against a fleet exposition carrying tenant-labeled families,
// retired aggregates, and shed counters.
func TestFleetMetricsEveryFamilyHasTypeLine(t *testing.T) {
	_, ts, _ := newFleetServer(t, Config{MaxTenants: 2, Overload: Overload{MaxTenantStreams: 1}},
		map[string]string{
			"default": legacyArtifact,
			"t1":      legacyArtifact,
			"t2":      legacyArtifact,
			"t3":      legacyArtifact,
		})
	// Touch enough tenants to force an eviction (retired series), and shed
	// a stream (tenant shed series).
	for _, tenant := range []string{"t1", "t2", "t3"} {
		if code, _, b := predictAs(t, ts, tenant, `{"readings":[[0.9,0.7]]}`); code != http.StatusOK {
			t.Fatalf("%s: %d %s", tenant, code, b)
		}
	}
	_, close1 := openStream(t, ts, "t3")
	code, close2 := openStream(t, ts, "t3")
	close2()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("shed setup stream: %d", code)
	}
	close1()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	checkFamilyTypeLines(t, string(body))
	if !strings.Contains(string(body), `tenant="_retired"`) {
		t.Error("eviction left no retired aggregate in the exposition")
	}
}

// checkFamilyTypeLines asserts every sample line's family was declared by
// exactly one preceding # TYPE line.
func checkFamilyTypeLines(t *testing.T, body string) {
	t.Helper()
	declared := map[string]int{}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			declared[fields[2]]++
			continue
		}
	}
	for family, n := range declared {
		if n != 1 {
			t.Errorf("family %s declared by %d TYPE lines", family, n)
		}
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		ok := declared[name] > 0
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if declared[strings.TrimSuffix(name, suf)] > 0 {
				ok = true
			}
		}
		if !ok {
			t.Errorf("sample %q has no # TYPE declaration", name)
		}
	}
}

// TestFleetFeedbackAndRollbackRouting exercises the adapt endpoints with a
// tenant body field and header, ensuring adapters are per-tenant.
func TestFleetFeedbackAndRollbackRouting(t *testing.T) {
	s, ts, _ := newFleetServer(t, Config{
		Adapt:      true,
		Adaptation: online.Config{EvalWindow: 64, MinSamples: 64},
	}, map[string]string{
		"default": faultArtifact,
		"chipA":   faultArtifact,
	})
	fb := `{"tenant":"chipA","samples":[{"readings":[0.95,0.95,0.95],"voltages":[0.95]}]}`
	if code, b := postJSON(t, ts.URL+"/v1/feedback", fb); code != http.StatusOK {
		t.Fatalf("feedback: %d %s", code, b)
	}
	va, _ := s.Registry().Peek("chipA")
	if got := va.(*Tenant).adapter.Load().ad.Status().Ingested; got != 1 {
		t.Errorf("chipA ingested = %d, want 1", got)
	}
	if got := s.defaultTenant().adapter.Load().ad.Status().Ingested; got != 0 {
		t.Errorf("default ingested = %d, want 0 (cross-tenant leak)", got)
	}
	// Rollback routes too; with nothing promoted it reports a conflict for
	// the right tenant.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/rollback", nil)
	req.Header.Set(TenantHeader, "chipA")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rollback: %d %s", resp.StatusCode, b)
	}
}
