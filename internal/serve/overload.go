package serve

import (
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Overload tunes the admission-control layer: what the server does when
// offered more work than it can absorb. The degraded-mode 503 from the
// fault tier already taught clients to honor Retry-After; overload control
// generalizes the same contract to capacity, so saturation produces bounded
// queueing and explicit shedding instead of unbounded latency.
//
// Zero values mean unlimited, which preserves the pre-fleet behavior for
// existing single-tenant deployments and tests.
type Overload struct {
	// MaxInflight caps concurrently admitted unary requests (/v1/predict,
	// /v1/feedback). 0 = unlimited.
	MaxInflight int
	// MaxQueue caps requests waiting for an inflight slot. Arrivals beyond
	// it are shed immediately with reason "queue_full". 0 disables queueing:
	// when every slot is busy, arrivals shed at once.
	MaxQueue int
	// QueueTimeout bounds how long a queued request waits for a slot before
	// being shed with reason "queue_timeout". Default 250ms.
	QueueTimeout time.Duration
	// MaxStreams caps concurrently open NDJSON streaming sessions across
	// all tenants. 0 = unlimited.
	MaxStreams int
	// MaxTenantStreams caps concurrently open streams per tenant, so one
	// noisy tenant cannot starve the rest of the fleet. 0 = unlimited.
	MaxTenantStreams int
	// RetryAfter is the Retry-After header sent with shed 503s.
	// Default 1s.
	RetryAfter time.Duration
}

// shed reasons, the bounded label set for voltserved_shed_total.
const (
	shedQueueFull       = "queue_full"
	shedQueueTimeout    = "queue_timeout"
	shedStreamCap       = "stream_cap"
	shedTenantStreamCap = "tenant_stream_cap"
)

// shedReasons enumerates every reason in exposition order.
var shedReasons = []string{shedQueueFull, shedQueueTimeout, shedStreamCap, shedTenantStreamCap}

// admission is a bounded slot semaphore with a bounded, deadline-capped
// wait queue. nil means unlimited admission.
type admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
	timeout  time.Duration
}

func newAdmission(o Overload) *admission {
	if o.MaxInflight <= 0 {
		return nil
	}
	timeout := o.QueueTimeout
	if timeout <= 0 {
		timeout = 250 * time.Millisecond
	}
	return &admission{
		slots:    make(chan struct{}, o.MaxInflight),
		maxQueue: int64(o.MaxQueue),
		timeout:  timeout,
	}
}

// acquire admits the caller or reports a shed reason. On admission the
// returned release func MUST be called exactly once.
func (a *admission) acquire() (release func(), reason string) {
	if a == nil {
		return func() {}, ""
	}
	select {
	case a.slots <- struct{}{}:
		return a.release, ""
	default:
	}
	if a.maxQueue <= 0 || a.queued.Add(1) > a.maxQueue {
		if a.maxQueue > 0 {
			a.queued.Add(-1)
		}
		return nil, shedQueueFull
	}
	t := time.NewTimer(a.timeout)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		a.queued.Add(-1)
		return a.release, ""
	case <-t.C:
		a.queued.Add(-1)
		return nil, shedQueueTimeout
	}
}

func (a *admission) release() { <-a.slots }

// stats reports (admitted inflight, queued waiters) for the metrics scrape.
func (a *admission) stats() (inflight, queued int64) {
	if a == nil {
		return 0, 0
	}
	return int64(len(a.slots)), a.queued.Load()
}

// acquireStream claims a streaming slot under the global and per-tenant
// caps. The per-tenant count always runs (it feeds the
// voltserved_tenant_active_streams gauge); the caps only bite when set.
func (s *Server) acquireStream(tn *Tenant) (release func(), reason string) {
	if max := s.cfg.Overload.MaxStreams; max > 0 && s.streamCount.Add(1) > int64(max) {
		s.streamCount.Add(-1)
		return nil, shedStreamCap
	} else if max <= 0 {
		s.streamCount.Add(1)
	}
	if max := s.cfg.Overload.MaxTenantStreams; max > 0 && tn.streams.Add(1) > int64(max) {
		tn.streams.Add(-1)
		s.streamCount.Add(-1)
		return nil, shedTenantStreamCap
	} else if max <= 0 {
		tn.streams.Add(1)
	}
	return func() {
		tn.streams.Add(-1)
		s.streamCount.Add(-1)
	}, ""
}

// shed refuses a request at the overload layer: 503 with Retry-After, the
// same backoff contract degraded mode established, plus a machine-readable
// reason for the client and the tenant-labeled shed counter.
func (s *Server) shed(w http.ResponseWriter, tn *Tenant, reason string) {
	s.metrics.Shed.Inc()
	if tn != nil {
		tn.tm.Shed(reason).Inc()
	}
	retry := s.cfg.Overload.RetryAfter
	if retry <= 0 {
		retry = time.Second
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error":  "overloaded: " + reason + "; back off and retry",
		"reason": reason,
	})
}
