package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"voltsense/internal/core"
	"voltsense/internal/faults"
	"voltsense/internal/monitor"
)

// faultArtifact is a hand-written voltsense-predictor/v1 artifact with the
// fault-tolerance section: 3 sensors, 1 block, the primary model averaging
// all three readings and each leave-one-out fallback averaging the
// survivors. Going through the real loader keeps the fixture honest.
const faultArtifact = `{
  "format": "voltsense-predictor/v1",
  "selected_sensors": [1, 4, 9],
  "alpha": [[0.3333333333333333, 0.3333333333333333, 0.3333333333333333]],
  "c": [0],
  "fallbacks": {
    "sensor_stats": [
      {"mean": 0.95, "std": 0.01},
      {"mean": 0.95, "std": 0.01},
      {"mean": 0.95, "std": 0.01}
    ],
    "models": [
      {"excluded": [0], "alpha": [[0.5, 0.5]], "c": [0], "rel_error": 0.01},
      {"excluded": [1], "alpha": [[0.5, 0.5]], "c": [0], "rel_error": 0.01},
      {"excluded": [2], "alpha": [[0.5, 0.5]], "c": [0], "rel_error": 0.01}
    ]
  }
}`

func faultPredictor(t testing.TB) *core.Predictor {
	t.Helper()
	p, err := core.LoadPredictor(strings.NewReader(faultArtifact))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newFaultServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Loader == nil {
		cfg.Loader = func() (*core.Predictor, error) { return faultPredictor(t), nil }
	}
	if cfg.Monitor.Vth == 0 {
		cfg.Monitor = monitor.Config{Vth: 0.90, ClearMargin: 0.02, ClearCycles: 2}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// healthyLine varies every sensor around 0.95 V so no window ever flatlines.
func healthyLine(c int) string {
	w := 0.004 * math.Sin(float64(c))
	return fmt.Sprintf(`{"readings":[%.6f,%.6f,%.6f]}`, 0.95+w, 0.95-w, 0.952+w)
}

func TestStreamDropoutSwitchesToFallbackWithoutDroppingSession(t *testing.T) {
	s, ts := newFaultServer(t, Config{})
	var lines []string
	for c := 0; c < 5; c++ {
		lines = append(lines, healthyLine(c))
	}
	// Sensor 1 drops out: null readings from here on. DropoutCycles defaults
	// to 2, so the diagnosis lands on the second null line.
	for c := 5; c < 10; c++ {
		w := 0.004 * math.Sin(float64(c))
		lines = append(lines, fmt.Sprintf(`{"readings":[%.6f,null,%.6f]}`, 0.95+w, 0.952+w))
	}
	got := streamCycles(t, ts.URL+"/v1/stream?emit_voltages=true", lines)

	var faultLine *streamFault
	voltagesAfterFault := 0
	sawSummary := false
	for _, ln := range got {
		if strings.Contains(ln, `"fault"`) {
			var wrap map[string]streamFault
			if err := json.Unmarshal([]byte(ln), &wrap); err != nil {
				t.Fatal(err)
			}
			f := wrap["fault"]
			faultLine = &f
			continue
		}
		if strings.Contains(ln, `"summary"`) {
			sawSummary = true
			continue
		}
		if faultLine != nil && strings.Contains(ln, `"voltages"`) {
			var v streamVoltages
			if err := json.Unmarshal([]byte(ln), &v); err != nil {
				t.Fatal(err)
			}
			// The fallback averages sensors 0 and 2 and must not see the NaN.
			// Tolerance covers the %.6f rounding in the request lines.
			w := 0.004 * math.Sin(float64(v.Cycle))
			want := ((0.95 + w) + (0.952 + w)) / 2
			if math.Abs(v.Voltages[0]-want) > 1e-6 {
				t.Fatalf("cycle %d fallback voltage %.6f, want %.6f", v.Cycle, v.Voltages[0], want)
			}
			voltagesAfterFault++
		}
	}
	if faultLine == nil {
		t.Fatal("no fault notice emitted")
	}
	if got, want := fmt.Sprint(faultLine.FaultySensors), "[1]"; got != want {
		t.Fatalf("faulty sensors %v", faultLine.FaultySensors)
	}
	if got, want := fmt.Sprint(faultLine.FallbackExcluded), "[1]"; got != want {
		t.Fatalf("fallback excluded %v", faultLine.FallbackExcluded)
	}
	if faultLine.Degraded {
		t.Fatal("covered single failure reported degraded")
	}
	if voltagesAfterFault < 3 {
		t.Fatalf("only %d voltage lines after the switch — session dropped?", voltagesAfterFault)
	}
	if !sawSummary {
		t.Fatal("session did not end with a summary — it was dropped")
	}
	if s.Metrics().FaultySensors.Value() != 1 || s.Metrics().ActiveFallback.Value() != 1 {
		t.Fatalf("fault gauges = %d/%d, want 1/1",
			s.Metrics().FaultySensors.Value(), s.Metrics().ActiveFallback.Value())
	}
	if s.Metrics().FallbackSwitches.Value() == 0 {
		t.Fatal("fallback switch not counted")
	}
}

func TestStreamStuckSensorDetectedWithinWindow(t *testing.T) {
	_, ts := newFaultServer(t, Config{Detector: faults.DetectorConfig{Window: 8}})
	var lines []string
	for c := 0; c < 16; c++ {
		w := 0.004 * math.Sin(float64(c))
		// Sensor 2 flatlines at 0.93 V from the first cycle.
		lines = append(lines, fmt.Sprintf(`{"readings":[%.6f,%.6f,0.93]}`, 0.95+w, 0.95-w))
	}
	got := streamCycles(t, ts.URL+"/v1/stream", lines)
	var f *streamFault
	for _, ln := range got {
		if strings.Contains(ln, `"fault"`) {
			var wrap map[string]streamFault
			if err := json.Unmarshal([]byte(ln), &wrap); err != nil {
				t.Fatal(err)
			}
			v := wrap["fault"]
			f = &v
			break
		}
	}
	if f == nil {
		t.Fatal("stuck sensor never diagnosed")
	}
	if f.Cycle > 8 {
		t.Fatalf("diagnosis at cycle %d, want within the 8-cycle window", f.Cycle)
	}
	if fmt.Sprint(f.FaultySensors) != "[2]" || fmt.Sprint(f.FallbackExcluded) != "[2]" {
		t.Fatalf("fault line %+v, want sensor 2 excluded", f)
	}
}

func TestAlarmHysteresisSurvivesFallbackSwitch(t *testing.T) {
	// Vth 0.90: drive the block into emergency on the primary model, then
	// drop a sensor. The open alarm must survive the switch and clear only
	// after ClearCycles recovered cycles on the fallback.
	_, ts := newFaultServer(t, Config{Monitor: monitor.Config{Vth: 0.90, ClearMargin: 0.02, ClearCycles: 2}})
	lines := []string{
		`{"readings":[0.95,0.951,0.952]}`, // quiet
		`{"readings":[0.85,0.861,0.852]}`, // block dips → raise
		`{"readings":[0.85,null,0.852]}`,  // still down; first null (transient)
		`{"readings":[0.85,null,0.852]}`,  // second null → dropout, switch; still in alarm
		`{"readings":[0.95,null,0.952]}`,  // recovered 1 (fallback mean .951)
		`{"readings":[0.95,null,0.952]}`,  // recovered 2 → clear
	}
	got := streamCycles(t, ts.URL+"/v1/stream", lines)
	var events []streamEvent
	for _, ln := range got {
		if strings.Contains(ln, `"kind"`) {
			var e streamEvent
			if err := json.Unmarshal([]byte(ln), &e); err != nil {
				t.Fatal(err)
			}
			events = append(events, e)
		}
	}
	if len(events) != 2 {
		t.Fatalf("events = %+v, want raise then clear", events)
	}
	if events[0].Kind != "raised" || events[0].Cycle != 1 {
		t.Fatalf("raise = %+v", events[0])
	}
	// The clear lands at cycle 5: the switch at cycle 3 must NOT have reset
	// the alarm (which would re-raise) nor the recovered-cycle counter
	// (which would delay the clear).
	if events[1].Kind != "cleared" || events[1].Cycle != 5 {
		t.Fatalf("clear = %+v, want cleared at cycle 5", events[1])
	}
}

func TestDegradedModeRejectsWithRetryAfter(t *testing.T) {
	s, ts := newFaultServer(t, Config{})
	// Two sensors dead with only leave-one-out fallbacks → degraded. Two
	// consecutive null cycles trip DropoutCycles=2.
	lines := []string{
		`{"readings":[null,null,0.95]}`,
		`{"readings":[null,null,0.95]}`,
	}
	got := streamCycles(t, ts.URL+"/v1/stream", lines)
	last := got[len(got)-1]
	if !strings.Contains(last, "degraded") {
		t.Fatalf("stream did not end degraded: %v", got)
	}
	if s.Metrics().DegradedRequests.Value() == 0 {
		t.Fatal("degraded stream not counted")
	}

	// The server is now chip-globally degraded: predict gets 503+Retry-After.
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"readings":[[0.95,0.95,0.95]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
	// New stream sessions are refused up front.
	resp, err = http.Post(ts.URL+"/v1/stream", "application/x-ndjson",
		strings.NewReader(`{"readings":[0.95,0.95,0.95]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new stream status %d, want 503", resp.StatusCode)
	}
	// Health reports the condition.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(hr.Body).Decode(&health)
	hr.Body.Close()
	if health["status"] != "degraded" || health["degraded"] != true {
		t.Fatalf("healthz = %v", health)
	}

	// A reload (e.g. a wider-budget artifact, or sensors replaced) resets
	// the fault state.
	resp, err = http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	code, _ := postJSON(t, ts.URL+"/v1/predict", `{"readings":[[0.95,0.95,0.95]]}`)
	if code != http.StatusOK {
		t.Fatalf("predict after reload = %d, want 200", code)
	}
}

func TestPredictRoutesThroughFallback(t *testing.T) {
	_, ts := newFaultServer(t, Config{})
	// Two vectors with sensor 0 null: the second trips the dropout
	// diagnosis; remaining vectors get fallback predictions.
	code, body := postJSON(t, ts.URL+"/v1/predict",
		`{"readings":[[null,0.94,0.96],[null,0.94,0.96],[null,0.90,0.92]]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp predictResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	// Vector 2 is evaluated by the fallback excluding sensor 0.
	if got, want := resp.Voltages[2][0], (0.90+0.92)/2; math.Abs(got-want) > 1e-9 {
		t.Fatalf("fallback predict = %v, want %v", got, want)
	}
}

func TestFaultInjectionSpecDrivesDetection(t *testing.T) {
	// The --fault-spec chaos path: clients send clean readings, the server
	// corrupts sensor 0 into a flatline, and the detector catches it.
	injected, err := faults.ParseSpec([]byte(`{"faults":[{"sensor":0,"kind":"stuck","start":0,"value":0.93}]}`))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newFaultServer(t, Config{
		InjectFaults: injected,
		Detector:     faults.DetectorConfig{Window: 8},
	})
	var lines []string
	for c := 0; c < 16; c++ {
		lines = append(lines, healthyLine(c))
	}
	got := streamCycles(t, ts.URL+"/v1/stream", lines)
	found := false
	for _, ln := range got {
		if strings.Contains(ln, `"fault"`) && strings.Contains(ln, `"faulty_sensors":[0]`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("injected stuck sensor never diagnosed: %v", got)
	}
}

func TestLegacyArtifactServesUnchanged(t *testing.T) {
	// No fallbacks section: fault tolerance off, null readings rejected,
	// health reports fault_tolerance false.
	s, ts := newTestServer(t)
	if s.defaultTenant().cur.Load().guard != nil {
		t.Fatal("legacy artifact got a guard")
	}
	code, body := postJSON(t, ts.URL+"/v1/predict", `{"readings":[[null,0.9]]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("null reading on legacy model: status %d body %s", code, body)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(hr.Body).Decode(&health)
	hr.Body.Close()
	if health["fault_tolerance"] != false {
		t.Fatalf("healthz fault_tolerance = %v", health["fault_tolerance"])
	}
	if _, ok := health["faulty_sensors"]; ok {
		t.Fatal("legacy healthz should not report fault fields")
	}
}

func TestMetricsExposeFaultSeries(t *testing.T) {
	_, ts := newFaultServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, series := range []string{
		"voltserved_faulty_sensors",
		"voltserved_active_fallback",
		"voltserved_fallback_switches_total",
		"voltserved_degraded_requests_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %s", series)
		}
	}
}
