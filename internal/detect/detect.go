// Package detect defines voltage emergencies and scores detection schemes
// with the paper's three error rates:
//
//   - Miss error (ME): emergencies in the function area that the scheme does
//     not flag, as a fraction of emergency samples.
//   - Wrong alarm error (WAE): alarms raised when no emergency exists, as a
//     fraction of emergency-free samples.
//   - Total error (TE): samples whose reported state is wrong, over all
//     samples.
//
// An emergency in a sample (one full-chip voltage map) is any monitored
// critical node below the threshold voltage (0.85 V in the paper, with
// VDD = 1.0 V).
package detect

import (
	"fmt"

	"voltsense/internal/mat"
)

// DefaultVth is the paper's emergency threshold at VDD = 1.0 V.
const DefaultVth = 0.85

// Rates aggregates the three error rates plus the raw counts behind them.
type Rates struct {
	ME, WAE, TE float64
	Samples     int // total samples scored
	Emergencies int // samples with a true emergency
	Misses      int // emergencies not flagged
	WrongAlarms int // alarms without an emergency
}

// String formats the rates the way the paper's Table 2 prints them.
func (r Rates) String() string {
	return fmt.Sprintf("ME=%.4f WAE=%.4f TE=%.4f", r.ME, r.WAE, r.TE)
}

// TruthFromVoltages reports, per sample (column), whether any monitored node
// of truth (K-by-N voltages) is below vth.
func TruthFromVoltages(truth *mat.Matrix, vth float64) []bool {
	n := truth.Cols()
	out := make([]bool, n)
	for i := 0; i < truth.Rows(); i++ {
		row := truth.Row(i)
		for j, v := range row {
			if v < vth {
				out[j] = true
			}
		}
	}
	return out
}

// AlarmsFromPredictions flags sample j when any predicted critical-node
// voltage falls below vth — the proposed scheme's alarm rule.
func AlarmsFromPredictions(pred *mat.Matrix, vth float64) []bool {
	return TruthFromVoltages(pred, vth)
}

// AlarmsFromSensors flags sample j when any of the selected sensor rows of x
// reads below vth — Eagle-Eye's direct-thresholding alarm rule.
func AlarmsFromSensors(x *mat.Matrix, selected []int, vth float64) []bool {
	return TruthFromVoltages(x.SelectRows(selected), vth)
}

// Score compares per-sample alarms against per-sample truth.
//
// ME is conditioned on emergency samples and WAE on emergency-free samples
// (both 0 when their condition never occurs); TE is unconditional.
func Score(truth, alarms []bool) Rates {
	if len(truth) != len(alarms) {
		panic(fmt.Sprintf("detect: %d truth samples vs %d alarms", len(truth), len(alarms)))
	}
	var r Rates
	r.Samples = len(truth)
	for j, e := range truth {
		if e {
			r.Emergencies++
			if !alarms[j] {
				r.Misses++
			}
		} else if alarms[j] {
			r.WrongAlarms++
		}
	}
	if r.Emergencies > 0 {
		r.ME = float64(r.Misses) / float64(r.Emergencies)
	}
	if ok := r.Samples - r.Emergencies; ok > 0 {
		r.WAE = float64(r.WrongAlarms) / float64(ok)
	}
	if r.Samples > 0 {
		r.TE = float64(r.Misses+r.WrongAlarms) / float64(r.Samples)
	}
	return r
}

// ScorePerBlock scores detection at (sample, block) granularity: block k of
// sample j is in emergency when truth[k][j] < vth, and flagged when
// pred[k][j] < vth. This finer accounting is an extension beyond the
// paper's chip-level rates.
func ScorePerBlock(truth, pred *mat.Matrix, vth float64) Rates {
	if truth.Rows() != pred.Rows() || truth.Cols() != pred.Cols() {
		panic(fmt.Sprintf("detect: shape mismatch %dx%d vs %dx%d",
			truth.Rows(), truth.Cols(), pred.Rows(), pred.Cols()))
	}
	var r Rates
	for i := 0; i < truth.Rows(); i++ {
		tr, pr := truth.Row(i), pred.Row(i)
		for j := range tr {
			r.Samples++
			e := tr[j] < vth
			a := pr[j] < vth
			if e {
				r.Emergencies++
				if !a {
					r.Misses++
				}
			} else if a {
				r.WrongAlarms++
			}
		}
	}
	if r.Emergencies > 0 {
		r.ME = float64(r.Misses) / float64(r.Emergencies)
	}
	if ok := r.Samples - r.Emergencies; ok > 0 {
		r.WAE = float64(r.WrongAlarms) / float64(ok)
	}
	if r.Samples > 0 {
		r.TE = float64(r.Misses+r.WrongAlarms) / float64(r.Samples)
	}
	return r
}
