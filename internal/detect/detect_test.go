package detect

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"voltsense/internal/mat"
)

func TestTruthFromVoltages(t *testing.T) {
	v := mat.FromRows([][]float64{
		{0.9, 0.84, 0.9},
		{0.9, 0.9, 0.8},
	})
	got := TruthFromVoltages(v, 0.85)
	want := []bool{false, true, true}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("truth[%d] = %v, want %v", j, got[j], want[j])
		}
	}
}

func TestScoreKnownCase(t *testing.T) {
	truth := []bool{true, true, false, false, true, false}
	alarm := []bool{true, false, true, false, false, false}
	r := Score(truth, alarm)
	// 3 emergencies, 2 missed; 3 ok samples, 1 wrong alarm.
	if r.Emergencies != 3 || r.Misses != 2 || r.WrongAlarms != 1 {
		t.Fatalf("counts wrong: %+v", r)
	}
	if math.Abs(r.ME-2.0/3) > 1e-12 {
		t.Errorf("ME = %v", r.ME)
	}
	if math.Abs(r.WAE-1.0/3) > 1e-12 {
		t.Errorf("WAE = %v", r.WAE)
	}
	if math.Abs(r.TE-3.0/6) > 1e-12 {
		t.Errorf("TE = %v", r.TE)
	}
}

func TestScorePerfectDetector(t *testing.T) {
	truth := []bool{true, false, true}
	r := Score(truth, truth)
	if r.ME != 0 || r.WAE != 0 || r.TE != 0 {
		t.Fatalf("perfect detector rates: %+v", r)
	}
}

func TestScoreEdgeCases(t *testing.T) {
	// No emergencies at all: ME must be 0, not NaN.
	r := Score([]bool{false, false}, []bool{false, true})
	if r.ME != 0 || math.IsNaN(r.ME) {
		t.Errorf("ME with no emergencies = %v", r.ME)
	}
	if r.WAE != 0.5 {
		t.Errorf("WAE = %v", r.WAE)
	}
	// All emergencies: WAE must be 0.
	r = Score([]bool{true, true}, []bool{false, false})
	if r.WAE != 0 || r.ME != 1 {
		t.Errorf("all-emergency rates: %+v", r)
	}
	// Empty input.
	r = Score(nil, nil)
	if r.TE != 0 {
		t.Errorf("empty TE = %v", r.TE)
	}
}

func TestScoreMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Score([]bool{true}, []bool{true, false})
}

// Property: TE is a convex combination consistent with ME and WAE:
// TE = (ME*E + WAE*(S-E)) / S.
func TestRatesConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		truth := make([]bool, n)
		alarm := make([]bool, n)
		for i := range truth {
			truth[i] = rng.Float64() < 0.3
			alarm[i] = rng.Float64() < 0.3
		}
		r := Score(truth, alarm)
		e := float64(r.Emergencies)
		s := float64(r.Samples)
		want := (r.ME*e + r.WAE*(s-e)) / s
		return math.Abs(r.TE-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAlarmsFromSensors(t *testing.T) {
	x := mat.FromRows([][]float64{
		{0.9, 0.80, 0.9},
		{0.7, 0.90, 0.9},
		{0.9, 0.90, 0.9},
	})
	got := AlarmsFromSensors(x, []int{0, 2}, 0.85)
	want := []bool{false, true, false} // row 1's 0.7 excluded by selection
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("alarms = %v, want %v", got, want)
		}
	}
}

func TestScorePerBlock(t *testing.T) {
	truth := mat.FromRows([][]float64{
		{0.80, 0.90},
		{0.90, 0.84},
	})
	pred := mat.FromRows([][]float64{
		{0.86, 0.90}, // miss at (0,0)
		{0.80, 0.80}, // wrong alarm at (1,0), hit at (1,1)
	})
	r := ScorePerBlock(truth, pred, 0.85)
	if r.Samples != 4 || r.Emergencies != 2 || r.Misses != 1 || r.WrongAlarms != 1 {
		t.Fatalf("counts: %+v", r)
	}
	if r.ME != 0.5 || r.WAE != 0.5 || r.TE != 0.5 {
		t.Fatalf("rates: %+v", r)
	}
}

func TestScorePerBlockShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScorePerBlock(mat.Zeros(2, 2), mat.Zeros(2, 3), 0.85)
}

func TestRatesString(t *testing.T) {
	r := Rates{ME: 0.0976, WAE: 0.0003, TE: 0.033}
	if got := r.String(); got != "ME=0.0976 WAE=0.0003 TE=0.0330" {
		t.Fatalf("String = %q", got)
	}
}
