package transfer

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"voltsense/internal/core"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// synthChip is a synthetic ground-truth linear chip: f = A x + c (+ noise).
type synthChip struct {
	alpha *mat.Matrix // k×q
	c     []float64
}

func makeChip(rng *rand.Rand, q, k int) *synthChip {
	alpha := mat.Zeros(k, q)
	c := make([]float64, k)
	for i := 0; i < k; i++ {
		for j := 0; j < q; j++ {
			alpha.Set(i, j, 0.3+0.4*rng.Float64())
		}
		c[i] = 0.05 * rng.NormFloat64()
	}
	return &synthChip{alpha: alpha, c: c}
}

// perturb returns a drifted copy: every coefficient moved by sigma relative.
func (ch *synthChip) perturb(rng *rand.Rand, sigma float64) *synthChip {
	out := &synthChip{alpha: ch.alpha.Clone(), c: append([]float64(nil), ch.c...)}
	for i := 0; i < out.alpha.Rows(); i++ {
		row := out.alpha.Row(i)
		for j := range row {
			row[j] *= 1 + sigma*rng.NormFloat64()
		}
		out.c[i] += sigma * 0.05 * rng.NormFloat64()
	}
	return out
}

// sample draws n labeled samples with sensor readings around 1 V.
func (ch *synthChip) sample(rng *rand.Rand, n int, noise float64) (x, f *mat.Matrix) {
	q := ch.alpha.Cols()
	k := ch.alpha.Rows()
	x = mat.Zeros(q, n)
	f = mat.Zeros(k, n)
	for s := 0; s < n; s++ {
		for i := 0; i < q; i++ {
			x.Set(i, s, 1.0+0.05*rng.NormFloat64())
		}
		for i := 0; i < k; i++ {
			v := ch.c[i]
			row := ch.alpha.Row(i)
			for j := 0; j < q; j++ {
				v += row[j] * x.At(j, s)
			}
			f.Set(i, s, v+noise*rng.NormFloat64())
		}
	}
	return x, f
}

// predictor wraps the chip's exact coefficients, with optional lineage.
func (ch *synthChip) predictor(sel []int, lin *core.Lineage) *core.Predictor {
	return &core.Predictor{
		Selected: append([]int(nil), sel...),
		Model:    &ols.Model{Alpha: ch.alpha.Clone(), C: append([]float64(nil), ch.c...)},
		Lineage:  lin,
	}
}

// rmse evaluates a predictor's root-mean-square error over labeled samples.
func rmse(p *core.Predictor, x, f *mat.Matrix) float64 {
	n := x.Cols()
	k := f.Rows()
	q := x.Rows()
	xs := make([]float64, q)
	var sum float64
	for s := 0; s < n; s++ {
		for i := 0; i < q; i++ {
			xs[i] = x.At(i, s)
		}
		pred := p.Model.Predict(xs)
		for i := 0; i < k; i++ {
			d := pred[i] - f.At(i, s)
			sum += d * d
		}
	}
	return math.Sqrt(sum / float64(n*k))
}

func seq(q int) []int {
	s := make([]int, q)
	for i := range s {
		s[i] = i
	}
	return s
}

func TestFitPriorPoolsGoldens(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q, k := 3, 4
	sel := seq(q)
	g1 := makeChip(rng, q, k)
	g2 := g1.perturb(rng, 0.05)
	p, err := FitPrior([]*core.Predictor{
		g1.predictor(sel, &core.Lineage{Version: 1, Source: core.LineageSourceTrain, ResidMean: 0.004, ResidStd: 0.001}),
		g2.predictor(sel, nil),
	}, PriorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Goldens != 2 || p.Q() != q || p.K() != k {
		t.Fatalf("prior shape: goldens=%d q=%d k=%d", p.Goldens, p.Q(), p.K())
	}
	wantMean := (g1.alpha.At(1, 2) + g2.alpha.At(1, 2)) / 2
	if got := p.Mean.At(1, 2); math.Abs(got-wantMean) > 1e-12 {
		t.Fatalf("pooled mean %v, want %v", got, wantMean)
	}
	for j, v := range p.Prec {
		if !(v > 0) {
			t.Fatalf("precision[%d] = %v not positive", j, v)
		}
	}
	if !(p.NoiseVar > 0) {
		t.Fatalf("noise variance %v", p.NoiseVar)
	}

	// Mismatched selections must be rejected.
	other := g2.predictor([]int{0, 1, 5}, nil)
	if _, err := FitPrior([]*core.Predictor{g1.predictor(sel, nil), other}, PriorConfig{}); err == nil {
		t.Fatal("FitPrior accepted goldens with different sensor selections")
	}
}

func TestAlignChipConvergesToFieldedChip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q, k := 3, 4
	sel := seq(q)
	golden := makeChip(rng, q, k)
	fielded := golden.perturb(rng, 0.2)
	prior, err := FitPrior([]*core.Predictor{golden.predictor(sel, nil)}, PriorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	x, f := fielded.sample(rng, 400, 1e-4)
	tx, tf := fielded.sample(rng, 200, 0)

	al, err := AlignChip(prior, x, f, AlignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if al.PriorOnly || al.Samples != 400 {
		t.Fatalf("alignment: priorOnly=%v samples=%d", al.PriorOnly, al.Samples)
	}
	priorErr := rmse(prior.Predictor(), tx, tf)
	alignedErr := rmse(al.Predictor, tx, tf)
	if alignedErr > priorErr/5 {
		t.Fatalf("aligned rmse %v did not improve enough on prior-only %v", alignedErr, priorErr)
	}
	lin := al.Predictor.Lineage
	if lin == nil || lin.Source != core.LineageSourcePrior || lin.Samples != 400 || lin.Prior != prior.Fingerprint() {
		t.Fatalf("aligned lineage %+v", lin)
	}
}

func TestAlignChipEvidenceGate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q, k := 3, 4
	sel := seq(q)
	golden := makeChip(rng, q, k)
	prior, err := FitPrior([]*core.Predictor{golden.predictor(sel, nil)}, PriorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fielded := golden.perturb(rng, 0.3)
	x, f := fielded.sample(rng, 2, 1e-4)
	al, err := AlignChip(prior, x, f, AlignConfig{MinSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !al.PriorOnly {
		t.Fatal("2 samples below MinSamples=4 must hold the prior")
	}
	pp := prior.Predictor()
	if d := mat.MaxAbsDiff(al.Predictor.Model.Alpha, pp.Model.Alpha); d > 1e-9 {
		t.Fatalf("gated alignment moved alpha off the prior by %v", d)
	}
	if len(al.Delta.Rows) != 0 {
		t.Fatalf("gated alignment produced a non-empty delta (%d rows)", len(al.Delta.Rows))
	}

	// Zero samples (enrollment before any labels) is also valid.
	al0, err := AlignChip(prior, nil, nil, AlignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !al0.PriorOnly || al0.Samples != 0 {
		t.Fatalf("zero-sample alignment: priorOnly=%v samples=%d", al0.PriorOnly, al0.Samples)
	}
}

func TestAlignChipFewShotBeatsScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q, k := 6, 5
	sel := seq(q)
	golden := makeChip(rng, q, k)
	fielded := golden.perturb(rng, 0.1)
	prior, err := FitPrior([]*core.Predictor{golden.predictor(sel, nil)}, PriorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tx, tf := fielded.sample(rng, 300, 0)
	for _, n := range []int{4, 8, 16} {
		x, f := fielded.sample(rng, n, 2e-3)
		al, err := AlignChip(prior, x, f, AlignConfig{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		scratch, err := FitScratch(sel, x, f)
		if err != nil {
			t.Fatalf("n=%d scratch: %v", n, err)
		}
		ae := rmse(al.Predictor, tx, tf)
		se := rmse(scratch, tx, tf)
		if ae >= se {
			t.Fatalf("n=%d: aligned rmse %v not below scratch rmse %v", n, ae, se)
		}
	}
}

func TestDeltaRoundTripThroughArtifact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q, k := 4, 3
	sel := []int{2, 5, 7, 11}
	golden := makeChip(rng, q, k)
	fielded := golden.perturb(rng, 0.15)
	prior, err := FitPrior([]*core.Predictor{golden.predictor(sel, nil)}, PriorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	x, f := fielded.sample(rng, 32, 1e-3)
	cfg := AlignConfig{DeltaTol: 1e-6, Version: 3, Parent: 2}
	al, err := AlignChip(prior, x, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if al.Delta.NNZ() == 0 {
		t.Fatal("alignment off a drifted chip produced an empty delta")
	}

	var buf bytes.Buffer
	if err := SaveDelta(&buf, al.Delta, al.Predictor.Lineage); err != nil {
		t.Fatal(err)
	}
	d2, lin, err := LoadDelta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lin == nil || lin.Version != 3 || lin.Parent != 2 || lin.Source != core.LineageSourcePrior || lin.Samples != 32 {
		t.Fatalf("round-tripped lineage %+v", lin)
	}
	resolved, err := d2.Resolve(prior, lin)
	if err != nil {
		t.Fatal(err)
	}
	// The sparsification guarantee: every coefficient within tol·rowScale.
	for i := 0; i < k; i++ {
		mrow := prior.Mean.Row(i)
		scale := 0.0
		for _, v := range mrow {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for j := 0; j < q; j++ {
			d := math.Abs(resolved.Model.Alpha.At(i, j) - al.Predictor.Model.Alpha.At(i, j))
			if d > cfg.DeltaTol*scale+1e-15 {
				t.Fatalf("resolved alpha[%d][%d] off by %v (> %v)", i, j, d, cfg.DeltaTol*scale)
			}
		}
		if d := math.Abs(resolved.Model.C[i] - al.Predictor.Model.C[i]); d > cfg.DeltaTol*scale+1e-15 {
			t.Fatalf("resolved c[%d] off by %v", i, d)
		}
	}
	if len(resolved.Selected) != q || resolved.Selected[0] != 2 {
		t.Fatalf("resolved selection %v", resolved.Selected)
	}

	// A different prior must be refused.
	g2 := makeChip(rng, q, k)
	other, err := FitPrior([]*core.Predictor{g2.predictor(sel, nil)}, PriorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Resolve(other, lin); err == nil {
		t.Fatal("Resolve accepted a delta computed against a different prior")
	}
}

func TestPriorSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	golden := makeChip(rng, 3, 4)
	prior, err := FitPrior([]*core.Predictor{golden.predictor([]int{1, 4, 9}, nil)}, PriorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prior.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), PriorFormat) {
		t.Fatalf("saved prior does not carry format tag %q", PriorFormat)
	}
	p2, err := LoadPrior(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Fingerprint() != prior.Fingerprint() {
		t.Fatal("fingerprint changed across save/load")
	}
	if d := mat.MaxAbsDiff(p2.Mean, prior.Mean); d > 0 {
		t.Fatalf("prior mean changed across save/load by %v", d)
	}

	// Corruption must fail at load.
	for _, bad := range []string{
		`{"format":"voltsense-predictor/v1"}`,
		`{"format":"voltsense-prior/v1","selected_sensors":[3,1],"mean":[[1,2,3]],"precision":[1,1,1],"noise_var":1e-4,"goldens":1}`,
		`{"format":"voltsense-prior/v1","selected_sensors":[1,3],"mean":[[1,2,3]],"precision":[1,0,1],"noise_var":1e-4,"goldens":1}`,
		`{"format":"voltsense-prior/v1","selected_sensors":[1,3],"mean":[[1,2]],"precision":[1,1,1],"noise_var":1e-4,"goldens":1}`,
	} {
		if _, err := LoadPrior(strings.NewReader(bad)); err == nil {
			t.Fatalf("LoadPrior accepted corrupt artifact %s", bad)
		}
	}
}

func TestWarmStartContinuesAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q, k := 4, 3
	sel := seq(q)
	golden := makeChip(rng, q, k)
	fielded := golden.perturb(rng, 0.1)
	prior, err := FitPrior([]*core.Predictor{golden.predictor(sel, nil)}, PriorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	x1, f1 := fielded.sample(rng, 8, 1e-3)
	x2, f2 := fielded.sample(rng, 24, 1e-3)
	al, err := AlignChip(prior, x1, f1, AlignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rls, err := al.WarmStart(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !rls.Ready() || rls.Samples() != 8 {
		t.Fatalf("warm start: ready=%v samples=%d", rls.Ready(), rls.Samples())
	}
	xs := make([]float64, q)
	fs := make([]float64, k)
	for s := 0; s < x2.Cols(); s++ {
		for i := 0; i < q; i++ {
			xs[i] = x2.At(i, s)
		}
		for i := 0; i < k; i++ {
			fs[i] = f2.At(i, s)
		}
		if err := rls.Ingest(xs, fs); err != nil {
			t.Fatal(err)
		}
	}

	// Warm-started RLS over (8 + 24) samples must match a batch alignment
	// over all 32: the prior enters both as the same pseudo-observations.
	xAll := mat.Zeros(q, 32)
	fAll := mat.Zeros(k, 32)
	for s := 0; s < 8; s++ {
		for i := 0; i < q; i++ {
			xAll.Set(i, s, x1.At(i, s))
		}
		for i := 0; i < k; i++ {
			fAll.Set(i, s, f1.At(i, s))
		}
	}
	for s := 0; s < 24; s++ {
		for i := 0; i < q; i++ {
			xAll.Set(i, 8+s, x2.At(i, s))
		}
		for i := 0; i < k; i++ {
			fAll.Set(i, 8+s, f2.At(i, s))
		}
	}
	batch, err := AlignChip(prior, xAll, fAll, AlignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := rls.Model()
	if d := mat.MaxAbsDiff(m.Alpha, batch.Predictor.Model.Alpha); d > 1e-7 {
		t.Fatalf("warm-started coefficients diverge from batch alignment by %v", d)
	}
	for i := range m.C {
		if d := math.Abs(m.C[i] - batch.Predictor.Model.C[i]); d > 1e-7 {
			t.Fatalf("warm-started intercept %d diverges by %v", i, d)
		}
	}
}
