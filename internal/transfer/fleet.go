package transfer

import (
	"fmt"
	"math"

	"voltsense/internal/core"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// Delta is the sparse difference of one fielded chip's aligned coefficients
// over the shared prior mean. A fleet store persists deltas instead of full
// K×Q coefficient matrices: a chip whose alignment barely moved off the
// golden prior costs a few dozen floats, and a million-chip store stays
// proportional to how much the fleet actually deviates.
type Delta struct {
	// PriorFingerprint pins the exact prior the delta was computed
	// against; Resolve refuses a mismatched prior rather than silently
	// composing coefficients from two different goldens.
	PriorFingerprint string

	// Rows holds the per-node updates, strictly ascending by Node. Nodes
	// absent here serve the prior mean unchanged.
	Rows []DeltaRow
}

// DeltaRow is one node's sparse coefficient update.
type DeltaRow struct {
	// Node is the critical-node (output row) index, 0 ≤ Node < K.
	Node int
	// Cols holds the updated column positions, strictly ascending over
	// 0..Q where position Q is the intercept.
	Cols []int
	// Vals holds the additive updates, len(Vals) == len(Cols), finite.
	Vals []float64
}

// NNZ returns the number of stored coefficient updates.
func (d *Delta) NNZ() int {
	n := 0
	for i := range d.Rows {
		n += len(d.Rows[i].Cols)
	}
	return n
}

// MakeDelta sparsifies aligned − prior: per node, coefficients that moved by
// no more than tol times the node's prior coefficient scale are dropped.
// Resolve therefore reconstructs the aligned model to within tol·scale per
// coefficient — a bounded, documented loss, not an approximation drift.
func MakeDelta(prior *SharedPrior, aligned *core.Predictor, tol float64) *Delta {
	if tol <= 0 {
		tol = 1e-4
	}
	q, k := prior.Q(), prior.K()
	d := &Delta{PriorFingerprint: prior.Fingerprint()}
	for i := 0; i < k; i++ {
		mrow := prior.Mean.Row(i)
		scale := 0.0
		for _, v := range mrow {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if scale == 0 {
			scale = 1
		}
		thresh := tol * scale
		var row DeltaRow
		arow := aligned.Model.Alpha.Row(i)
		for j := 0; j <= q; j++ {
			v := aligned.Model.C[i]
			if j < q {
				v = arow[j]
			}
			dv := v - mrow[j]
			if math.Abs(dv) > thresh {
				row.Cols = append(row.Cols, j)
				row.Vals = append(row.Vals, dv)
			}
		}
		if len(row.Cols) > 0 {
			row.Node = i
			d.Rows = append(d.Rows, row)
		}
	}
	return d
}

// Resolve reconstructs a servable predictor by applying the delta to the
// prior mean. lin, when non-nil, becomes the predictor's lineage (the delta
// artifact carries it). The prior's fingerprint must match the one the delta
// was computed against.
func (d *Delta) Resolve(prior *SharedPrior, lin *core.Lineage) (*core.Predictor, error) {
	if err := prior.validate(); err != nil {
		return nil, err
	}
	if fp := prior.Fingerprint(); d.PriorFingerprint != fp {
		return nil, fmt.Errorf("transfer: delta was computed against prior %s, pinned prior is %s", d.PriorFingerprint, fp)
	}
	q, k := prior.Q(), prior.K()
	alpha := mat.Zeros(k, q)
	c := make([]float64, k)
	for i := 0; i < k; i++ {
		row := prior.Mean.Row(i)
		copy(alpha.Row(i), row[:q])
		c[i] = row[q]
	}
	prevNode := -1
	for ri := range d.Rows {
		row := &d.Rows[ri]
		if row.Node <= prevNode || row.Node >= k {
			return nil, fmt.Errorf("transfer: delta row %d has node %d (want ascending in 0..%d)", ri, row.Node, k-1)
		}
		prevNode = row.Node
		if len(row.Cols) != len(row.Vals) || len(row.Cols) == 0 {
			return nil, fmt.Errorf("transfer: delta row %d has %d columns but %d values", ri, len(row.Cols), len(row.Vals))
		}
		prevCol := -1
		for ci, col := range row.Cols {
			if col <= prevCol || col > q {
				return nil, fmt.Errorf("transfer: delta row %d column %d out of order or out of 0..%d", ri, col, q)
			}
			prevCol = col
			v := row.Vals[ci]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("transfer: non-finite delta value at node %d column %d", row.Node, col)
			}
			if col == q {
				c[row.Node] += v
			} else {
				alpha.Row(row.Node)[col] += v
			}
		}
	}
	return &core.Predictor{
		Selected: append([]int(nil), prior.Selected...),
		Model:    &ols.Model{Alpha: alpha, C: c},
		Lineage:  lin,
	}, nil
}
