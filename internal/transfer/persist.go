package transfer

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"voltsense/internal/core"
	"voltsense/internal/mat"
)

// Versioned artifact format tags.
const (
	// PriorFormat tags a serialized SharedPrior.
	PriorFormat = "voltsense-prior/v1"
	// DeltaFormat tags a thin per-chip artifact: a sparse delta resolved
	// against a pinned prior at load time instead of full coefficients.
	DeltaFormat = "voltsense-delta/v1"
)

// priorJSON is the stable serialized form of a SharedPrior.
type priorJSON struct {
	Format   string      `json:"format"` // "voltsense-prior/v1"
	Selected []int       `json:"selected_sensors"`
	Mean     [][]float64 `json:"mean"`      // K rows of Q+1: alpha..., intercept
	Prec     []float64   `json:"precision"` // Q+1 diagonal prior precision
	NoiseVar float64     `json:"noise_var"`
	Goldens  int         `json:"goldens"`
}

// Save writes the prior as JSON.
func (p *SharedPrior) Save(w io.Writer) error {
	if err := p.validate(); err != nil {
		return err
	}
	pj := priorJSON{
		Format:   PriorFormat,
		Selected: p.Selected,
		Prec:     p.Prec,
		NoiseVar: p.NoiseVar,
		Goldens:  p.Goldens,
	}
	for i := 0; i < p.Mean.Rows(); i++ {
		row := make([]float64, p.Mean.Cols())
		copy(row, p.Mean.Row(i))
		pj.Mean = append(pj.Mean, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pj); err != nil {
		return fmt.Errorf("transfer: saving prior: %w", err)
	}
	return nil
}

// LoadPrior reads a prior saved by Save, with the same load-time strictness
// as core.LoadPredictor: a corrupt prior must fail here rather than poison
// every alignment derived from it.
func LoadPrior(r io.Reader) (*SharedPrior, error) {
	var pj priorJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("transfer: loading prior: %w", err)
	}
	if pj.Format != PriorFormat {
		return nil, fmt.Errorf("transfer: unknown prior format %q", pj.Format)
	}
	k := len(pj.Mean)
	if k == 0 {
		return nil, fmt.Errorf("transfer: prior has no outputs")
	}
	d := len(pj.Selected) + 1
	mean := mat.Zeros(k, d)
	for i, row := range pj.Mean {
		if len(row) != d {
			return nil, fmt.Errorf("transfer: ragged prior mean row %d: %d values, want %d", i, len(row), d)
		}
		copy(mean.Row(i), row)
	}
	p := &SharedPrior{
		Selected: append([]int(nil), pj.Selected...),
		Mean:     mean,
		Prec:     append([]float64(nil), pj.Prec...),
		NoiseVar: pj.NoiseVar,
		Goldens:  pj.Goldens,
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Fingerprint returns a short content hash over the prior's selection,
// coefficients, precision and noise variance. Delta artifacts pin it so a
// delta can never be resolved against a different prior than the one it was
// aligned to.
func (p *SharedPrior) Fingerprint() string {
	h := fnv.New64a()
	var buf [8]byte
	wi := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wf := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	wi(len(p.Selected))
	for _, s := range p.Selected {
		wi(s)
	}
	wi(p.Mean.Rows())
	for _, v := range p.Mean.Data() {
		wf(v)
	}
	for _, v := range p.Prec {
		wf(v)
	}
	wf(p.NoiseVar)
	wi(p.Goldens)
	return fmt.Sprintf("%016x", h.Sum64())
}

// deltaJSON is the stable serialized form of a per-chip delta artifact.
type deltaJSON struct {
	Format           string            `json:"format"` // "voltsense-delta/v1"
	PriorFingerprint string            `json:"prior_fingerprint"`
	Rows             []deltaRowJSON    `json:"rows"`
	Lineage          *deltaLineageJSON `json:"lineage,omitempty"`
}

type deltaRowJSON struct {
	Node int       `json:"node"`
	Cols []int     `json:"cols"`
	Vals []float64 `json:"vals"`
}

// deltaLineageJSON mirrors the predictor artifact's lineage section.
type deltaLineageJSON struct {
	Version   int     `json:"version"`
	Parent    int     `json:"parent"`
	Source    string  `json:"source"`
	Samples   int     `json:"samples"`
	Prior     string  `json:"prior,omitempty"`
	LiveTE    float64 `json:"live_te,omitempty"`
	ShadowTE  float64 `json:"shadow_te,omitempty"`
	ResidMean float64 `json:"resid_mean,omitempty"`
	ResidStd  float64 `json:"resid_std,omitempty"`
}

// SaveDelta writes a per-chip delta artifact: the sparse coefficient update
// plus the aligned predictor's lineage.
func SaveDelta(w io.Writer, d *Delta, lin *core.Lineage) error {
	dj := deltaJSON{
		Format:           DeltaFormat,
		PriorFingerprint: d.PriorFingerprint,
	}
	for i := range d.Rows {
		r := &d.Rows[i]
		dj.Rows = append(dj.Rows, deltaRowJSON{Node: r.Node, Cols: r.Cols, Vals: r.Vals})
	}
	if lin != nil {
		dj.Lineage = &deltaLineageJSON{
			Version:   lin.Version,
			Parent:    lin.Parent,
			Source:    lin.Source,
			Samples:   lin.Samples,
			Prior:     lin.Prior,
			LiveTE:    lin.LiveTE,
			ShadowTE:  lin.ShadowTE,
			ResidMean: lin.ResidMean,
			ResidStd:  lin.ResidStd,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dj); err != nil {
		return fmt.Errorf("transfer: saving delta: %w", err)
	}
	return nil
}

// LoadDelta reads a delta artifact saved by SaveDelta. Structural validation
// happens here; bounds against the prior's shape (and the fingerprint match)
// happen in Delta.Resolve, which is where a prior first enters the picture.
func LoadDelta(r io.Reader) (*Delta, *core.Lineage, error) {
	var dj deltaJSON
	if err := json.NewDecoder(r).Decode(&dj); err != nil {
		return nil, nil, fmt.Errorf("transfer: loading delta: %w", err)
	}
	if dj.Format != DeltaFormat {
		return nil, nil, fmt.Errorf("transfer: unknown delta format %q", dj.Format)
	}
	if dj.PriorFingerprint == "" {
		return nil, nil, fmt.Errorf("transfer: delta artifact carries no prior fingerprint")
	}
	d := &Delta{PriorFingerprint: dj.PriorFingerprint}
	for i, r := range dj.Rows {
		if len(r.Cols) != len(r.Vals) || len(r.Cols) == 0 {
			return nil, nil, fmt.Errorf("transfer: delta row %d has %d columns but %d values", i, len(r.Cols), len(r.Vals))
		}
		d.Rows = append(d.Rows, DeltaRow{
			Node: r.Node,
			Cols: append([]int(nil), r.Cols...),
			Vals: append([]float64(nil), r.Vals...),
		})
	}
	var lin *core.Lineage
	if dj.Lineage != nil {
		lin = &core.Lineage{
			Version:   dj.Lineage.Version,
			Parent:    dj.Lineage.Parent,
			Source:    dj.Lineage.Source,
			Samples:   dj.Lineage.Samples,
			Prior:     dj.Lineage.Prior,
			LiveTE:    dj.Lineage.LiveTE,
			ShadowTE:  dj.Lineage.ShadowTE,
			ResidMean: dj.Lineage.ResidMean,
			ResidStd:  dj.Lineage.ResidStd,
		}
		if lin.Version < 1 || lin.Parent < 0 || lin.Parent >= lin.Version || lin.Samples < 0 {
			return nil, nil, fmt.Errorf("transfer: delta lineage version %d / parent %d / samples %d invalid",
				lin.Version, lin.Parent, lin.Samples)
		}
		if lin.Source != core.LineageSourcePrior {
			return nil, nil, fmt.Errorf("transfer: delta lineage source %q, want %q", lin.Source, core.LineageSourcePrior)
		}
	}
	return d, lin, nil
}
