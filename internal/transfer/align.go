package transfer

import (
	"fmt"
	"math"

	"voltsense/internal/core"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
	"voltsense/internal/online"
)

// AlignConfig tunes the few-shot MAP alignment. The zero value selects the
// documented defaults.
type AlignConfig struct {
	// Shrinkage scales the prior precision in the MAP objective (the τ in
	// the package math): larger values trust the golden chip more, smaller
	// values trust the few-shot samples more. Must be ≥ 0; 0 keeps only a
	// numerical-conditioning floor. Default 1.
	Shrinkage float64

	// MinSamples is the evidence gate: below this many labeled samples the
	// alignment refuses to move off the prior and returns the pure
	// prior-mean model (Alignment.PriorOnly true). Default 4.
	MinSamples int

	// DeltaTol bounds the lossy sparsification of the stored per-chip
	// delta: coefficients that moved less than DeltaTol times their row's
	// prior scale are dropped from the delta. Default 1e-4.
	DeltaTol float64

	// Version and Parent stamp the aligned predictor's lineage. Version
	// defaults to 1 (Parent 0) for a chip's first alignment; recalibrations
	// pass the incumbent's version as Parent and Version = Parent+1.
	Version int
	Parent  int
}

func (c *AlignConfig) defaults() {
	if c.Shrinkage < 0 {
		c.Shrinkage = 0
	} else if c.Shrinkage == 0 {
		c.Shrinkage = 1
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 4
	}
	if c.DeltaTol <= 0 {
		c.DeltaTol = 1e-4
	}
	if c.Version <= 0 {
		c.Version = 1
		c.Parent = 0
	}
}

// Alignment is the result of aligning one fielded chip against the shared
// prior: the servable predictor, the sparse delta that persists it, and the
// posterior normal equations that warm-start continued online adaptation.
type Alignment struct {
	// Predictor is the aligned Eq. 20 model, lineage source "prior".
	Predictor *core.Predictor

	// Delta is the sparse difference of the aligned coefficients over the
	// prior mean — what fleet storage persists instead of full
	// coefficients (see fleet.go).
	Delta *Delta

	// Samples is the number of labeled samples that entered the fit.
	Samples int

	// PriorOnly reports that the evidence gate held the model at the pure
	// prior mean (fewer than MinSamples labeled samples).
	PriorOnly bool

	a *mat.Matrix // (Q+1)×(Q+1) posterior normal matrix ZᵀZ + σ²τΛ
	b *mat.Matrix // (Q+1)×K posterior cross-moments Zᵀf + σ²τΛ·Meanᵀ
}

// AlignChip solves the per-chip MAP alignment in closed form. x is Q×N
// (readings of the prior's selected sensors, one column per labeled sample)
// and f is K×N (ground-truth critical-node voltages). Per node k it solves
//
//	min_θ ‖f_k − Zθ‖² + σ²τ (θ − θ̄_k)ᵀ Λ (θ − θ̄_k),  Z = [xᵀ 1]
//
// whose solution (ZᵀZ + σ²τΛ) θ = Zᵀf_k + σ²τΛ θ̄_k is one Cholesky solve
// shared across all K nodes. With zero samples — or fewer than the evidence
// gate allows — the result is the pure prior mean. The returned alignment's
// normal equations include the prior term, so WarmStart hands continued
// online adaptation a fit whose prior stays in effect as pseudo-observations.
func AlignChip(prior *SharedPrior, x, f *mat.Matrix, cfg AlignConfig) (*Alignment, error) {
	cfg.defaults()
	if err := prior.validate(); err != nil {
		return nil, err
	}
	q, k := prior.Q(), prior.K()
	n := 0
	if x != nil || f != nil {
		if x == nil || f == nil {
			return nil, fmt.Errorf("transfer: readings and voltages must both be present")
		}
		if x.Rows() != q {
			return nil, fmt.Errorf("transfer: %d reading rows for %d prior sensors", x.Rows(), q)
		}
		if f.Rows() != k {
			return nil, fmt.Errorf("transfer: %d voltage rows for %d prior nodes", f.Rows(), k)
		}
		if x.Cols() != f.Cols() {
			return nil, fmt.Errorf("transfer: %d reading columns vs %d voltage columns", x.Cols(), f.Cols())
		}
		n = x.Cols()
		for _, v := range x.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("transfer: non-finite sensor reading")
			}
		}
		for _, v := range f.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("transfer: non-finite ground-truth voltage")
			}
		}
	}

	d := q + 1
	// Prior pseudo-observations: σ²τΛ on the diagonal, σ²τΛ·θ̄ᵀ on the RHS.
	// A vanishing shrinkage keeps a tiny ridge so the solve stays posed for
	// n < d samples.
	tau := cfg.Shrinkage
	reg := prior.NoiseVar * tau
	const minReg = 1e-12
	a := mat.Zeros(d, d)
	b := mat.Zeros(d, k)
	for j := 0; j < d; j++ {
		r := reg * prior.Prec[j]
		if r < minReg {
			r = minReg
		}
		a.Set(j, j, r)
		brow := b.Row(j)
		for i := 0; i < k; i++ {
			brow[i] = r * prior.Mean.At(i, j)
		}
	}

	priorOnly := n < cfg.MinSamples
	if !priorOnly {
		// Accumulate ZᵀZ and Zᵀf column-sample by column-sample.
		z := make([]float64, d)
		for s := 0; s < n; s++ {
			for i := 0; i < q; i++ {
				z[i] = x.At(i, s)
			}
			z[q] = 1
			for i := 0; i < d; i++ {
				arow := a.Row(i)
				zi := z[i]
				for j := 0; j < d; j++ {
					arow[j] += zi * z[j]
				}
				brow := b.Row(i)
				for j := 0; j < k; j++ {
					brow[j] += zi * f.At(j, s)
				}
			}
		}
	}

	chol, err := mat.FactorCholesky(a)
	if err != nil {
		return nil, fmt.Errorf("transfer: posterior normal matrix not positive definite: %w", err)
	}
	theta := chol.SolveMatrix(b) // (Q+1)×K

	alpha := mat.Zeros(k, q)
	c := make([]float64, k)
	for kk := 0; kk < k; kk++ {
		arow := alpha.Row(kk)
		for j := 0; j < q; j++ {
			arow[j] = theta.At(j, kk)
		}
		c[kk] = theta.At(q, kk)
	}
	for _, v := range alpha.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("transfer: alignment produced non-finite coefficients")
		}
	}
	for _, v := range c {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("transfer: alignment produced non-finite intercepts")
		}
	}

	pred := &core.Predictor{
		Selected: append([]int(nil), prior.Selected...),
		Model:    &ols.Model{Alpha: alpha, C: c},
		Lineage: &core.Lineage{
			Version: cfg.Version,
			Parent:  cfg.Parent,
			Source:  core.LineageSourcePrior,
			Samples: n,
			Prior:   prior.Fingerprint(),
		},
	}
	al := &Alignment{
		Predictor: pred,
		Samples:   n,
		PriorOnly: priorOnly,
		a:         a,
		b:         b,
	}
	al.Delta = MakeDelta(prior, pred, cfg.DeltaTol)
	return al, nil
}

// WarmStart hands the alignment's posterior normal equations to a
// RecursiveOLS, so the aligned model keeps adapting from runtime labeled
// samples with the golden prior still acting as pseudo-observations. With
// forgetting < 1 the prior's influence decays with the same half-life as any
// other past sample.
func (al *Alignment) WarmStart(forgetting float64) (*online.RecursiveOLS, error) {
	q := al.a.Rows() - 1
	k := al.b.Cols()
	return online.NewRecursiveOLSFromNormal(q, k, forgetting, al.a, al.b, al.Samples)
}

// FitScratch fits the same labeled samples with no golden prior — a
// zero-mean, near-vanishing ridge sized only to keep the normal equations
// positive definite. This is the from-scratch baseline the transfer
// ablation compares against: for n < Q+2 samples plain OLS is singular, and
// even above that the fit sees nothing but the few-shot data.
func FitScratch(selected []int, x, f *mat.Matrix) (*core.Predictor, error) {
	q := len(selected)
	if x == nil || f == nil || x.Rows() != q || x.Cols() != f.Cols() || x.Cols() == 0 {
		return nil, fmt.Errorf("transfer: bad scratch-fit inputs")
	}
	k := f.Rows()
	d := q + 1
	// Ridge scaled to the data's Gram trace: small enough to be inert once
	// the problem is determined, large enough to keep Cholesky posed.
	a := mat.Zeros(d, d)
	b := mat.Zeros(d, k)
	z := make([]float64, d)
	n := x.Cols()
	for s := 0; s < n; s++ {
		for i := 0; i < q; i++ {
			z[i] = x.At(i, s)
		}
		z[q] = 1
		for i := 0; i < d; i++ {
			arow := a.Row(i)
			zi := z[i]
			for j := 0; j < d; j++ {
				arow[j] += zi * z[j]
			}
			brow := b.Row(i)
			for j := 0; j < k; j++ {
				brow[j] += zi * f.At(j, s)
			}
		}
	}
	trace := 0.0
	for j := 0; j < d; j++ {
		trace += a.At(j, j)
	}
	ridge := 1e-8 * trace / float64(d)
	if ridge <= 0 {
		ridge = 1e-12
	}
	for j := 0; j < d; j++ {
		a.Set(j, j, a.At(j, j)+ridge)
	}
	chol, err := mat.FactorCholesky(a)
	if err != nil {
		return nil, fmt.Errorf("transfer: scratch normal matrix not positive definite: %w", err)
	}
	theta := chol.SolveMatrix(b)
	alpha := mat.Zeros(k, q)
	c := make([]float64, k)
	for kk := 0; kk < k; kk++ {
		arow := alpha.Row(kk)
		for j := 0; j < q; j++ {
			arow[j] = theta.At(j, kk)
		}
		c[kk] = theta.At(q, kk)
	}
	return &core.Predictor{
		Selected: append([]int(nil), selected...),
		Model:    &ols.Model{Alpha: alpha, C: c},
		Lineage:  &core.Lineage{Version: 1, Source: core.LineageSourceTrain, Samples: n},
	}, nil
}
