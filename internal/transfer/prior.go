// Package transfer implements fleet-scale transfer calibration: one (or a
// few) well-characterized golden chips are distilled into a SharedPrior over
// the paper's Eq. 20 coefficients, and each fielded chip is aligned to its
// own silicon with a handful of labeled samples via a closed-form MAP refit
// that uses the prior as regularizer.
//
// The paper fits one linear sensor→critical-node map per chip from a full
// simulation campaign. That economics does not survive a fleet: a million
// chips cannot each run a characterization campaign. This package inverts
// the cost — the campaign runs once on the golden chip, and every fielded
// chip pays only a few labeled (readings, voltages) pairs. The aligned fit
// is warm-startable into online.RecursiveOLS so it keeps adapting from
// runtime feedback, and it is stored as a sparse delta over the prior so a
// million-chip artifact store stays small (see fleet.go).
package transfer

import (
	"fmt"
	"math"

	"voltsense/internal/core"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// SharedPrior is a Gaussian prior over the per-node augmented coefficient
// vector θ_k = [α_k; c_k] of the Eq. 20 predictor: θ_k ~ N(Mean_k, Λ⁻¹) with
// a diagonal precision Λ shared across nodes. It is fit from one or more
// golden-chip predictors that share the same sensor selection.
type SharedPrior struct {
	// Selected is the golden placement: candidate sensor indices, strictly
	// ascending. Every aligned chip reads exactly these sensors.
	Selected []int

	// Mean is K×(Q+1): row k holds the prior mean [α_k0 … α_k,Q-1, c_k].
	Mean *mat.Matrix

	// Prec is the diagonal prior precision Λ, length Q+1, strictly
	// positive. Column j pools the across-golden spread of coefficient j
	// (floored by PriorConfig.RelSpread and MinStd).
	Prec []float64

	// NoiseVar is the observation noise variance σ² used to scale the
	// likelihood against the prior, pooled from the goldens' training
	// residual statistics (Lineage.ResidMean/ResidStd) when available.
	NoiseVar float64

	// Goldens records how many golden predictors the prior pooled.
	Goldens int
}

// Q returns the number of sensors the prior's models read.
func (p *SharedPrior) Q() int { return len(p.Selected) }

// K returns the number of predicted critical nodes.
func (p *SharedPrior) K() int { return p.Mean.Rows() }

// PriorConfig tunes how FitPrior turns golden predictors into a prior.
// The zero value selects the documented defaults.
type PriorConfig struct {
	// RelSpread floors the prior standard deviation of each coefficient
	// column at RelSpread times the column's RMS magnitude across goldens
	// and nodes — the only spread information available with a single
	// golden chip. Default 0.25.
	RelSpread float64

	// MinStd floors the prior standard deviation absolutely, guarding
	// columns whose golden coefficients are all ~0. Default 1e-3.
	MinStd float64

	// NoiseStd overrides the observation noise standard deviation σ when
	// the goldens carry no residual statistics in their lineage.
	// Default 5e-3 (volts).
	NoiseStd float64
}

func (c *PriorConfig) defaults() {
	if c.RelSpread <= 0 {
		c.RelSpread = 0.25
	}
	if c.MinStd <= 0 {
		c.MinStd = 1e-3
	}
	if c.NoiseStd <= 0 {
		c.NoiseStd = 5e-3
	}
}

// FitPrior pools one or more golden-chip predictors into a SharedPrior.
// All goldens must share the same sensor selection and output count. With a
// single golden the coefficient spread falls back to the RelSpread/MinStd
// floors; with several, the across-golden variance of each coefficient
// column (averaged over nodes) adds on top, so better-determined columns get
// tighter priors. The noise variance pools each golden's training
// residual-RMS statistics when its lineage carries them.
func FitPrior(goldens []*core.Predictor, cfg PriorConfig) (*SharedPrior, error) {
	cfg.defaults()
	if len(goldens) == 0 {
		return nil, fmt.Errorf("transfer: no golden predictors")
	}
	g0 := goldens[0]
	if g0 == nil || g0.Model == nil {
		return nil, fmt.Errorf("transfer: nil golden predictor")
	}
	q := len(g0.Selected)
	k := g0.Model.Alpha.Rows()
	if q == 0 || k == 0 {
		return nil, fmt.Errorf("transfer: golden predictor has q=%d k=%d", q, k)
	}
	for gi, g := range goldens {
		if g == nil || g.Model == nil {
			return nil, fmt.Errorf("transfer: nil golden predictor %d", gi)
		}
		if len(g.Selected) != q || g.Model.Alpha.Rows() != k || g.Model.Alpha.Cols() != q {
			return nil, fmt.Errorf("transfer: golden %d shape mismatch (q=%d k=%d, want q=%d k=%d)",
				gi, len(g.Selected), g.Model.Alpha.Rows(), q, k)
		}
		for j, s := range g.Selected {
			if s != g0.Selected[j] {
				return nil, fmt.Errorf("transfer: golden %d sensor selection differs at position %d (%d vs %d)",
					gi, j, s, g0.Selected[j])
			}
		}
	}

	d := q + 1
	ng := float64(len(goldens))
	mean := mat.Zeros(k, d)
	for _, g := range goldens {
		for i := 0; i < k; i++ {
			row := mean.Row(i)
			arow := g.Model.Alpha.Row(i)
			for j := 0; j < q; j++ {
				row[j] += arow[j] / ng
			}
			row[q] += g.Model.C[i] / ng
		}
	}

	// Per-column RMS magnitude and across-golden variance, pooled over nodes.
	scale2 := make([]float64, d)
	spread := make([]float64, d)
	for _, g := range goldens {
		for i := 0; i < k; i++ {
			arow := g.Model.Alpha.Row(i)
			mrow := mean.Row(i)
			for j := 0; j < d; j++ {
				v := g.Model.C[i]
				if j < q {
					v = arow[j]
				}
				scale2[j] += v * v / (ng * float64(k))
				dv := v - mrow[j]
				spread[j] += dv * dv / (ng * float64(k))
			}
		}
	}
	prec := make([]float64, d)
	for j := 0; j < d; j++ {
		floor := cfg.RelSpread * math.Sqrt(scale2[j])
		if floor < cfg.MinStd {
			floor = cfg.MinStd
		}
		v := spread[j] + floor*floor
		if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
			return nil, fmt.Errorf("transfer: bad prior variance %v for column %d", v, j)
		}
		prec[j] = 1 / v
	}

	// Pool σ² from the goldens' fit residual statistics when recorded.
	var noiseVar float64
	var withStats int
	for _, g := range goldens {
		if g.Lineage != nil && g.Lineage.ResidMean > 0 {
			noiseVar += g.Lineage.ResidMean*g.Lineage.ResidMean + g.Lineage.ResidStd*g.Lineage.ResidStd
			withStats++
		}
	}
	if withStats > 0 {
		noiseVar /= float64(withStats)
	} else {
		noiseVar = cfg.NoiseStd * cfg.NoiseStd
	}

	sel := append([]int(nil), g0.Selected...)
	return &SharedPrior{Selected: sel, Mean: mean, Prec: prec, NoiseVar: noiseVar, Goldens: len(goldens)}, nil
}

// Predictor materializes the prior mean as a servable predictor — the
// zero-shot model a chip gets before any labeled samples arrive. The lineage
// marks it as prior-sourced with zero samples.
func (p *SharedPrior) Predictor() *core.Predictor {
	q, k := p.Q(), p.K()
	alpha := mat.Zeros(k, q)
	c := make([]float64, k)
	for i := 0; i < k; i++ {
		row := p.Mean.Row(i)
		copy(alpha.Row(i), row[:q])
		c[i] = row[q]
	}
	return &core.Predictor{
		Selected: append([]int(nil), p.Selected...),
		Model:    &ols.Model{Alpha: alpha, C: c},
		Lineage: &core.Lineage{
			Version: 1,
			Source:  core.LineageSourcePrior,
			Prior:   p.Fingerprint(),
		},
	}
}

// validate rejects priors a corrupt artifact could carry; shared by
// LoadPrior and the alignment entry points.
func (p *SharedPrior) validate() error {
	q := len(p.Selected)
	if q == 0 {
		return fmt.Errorf("transfer: prior has no sensors")
	}
	for i, s := range p.Selected {
		if s < 0 {
			return fmt.Errorf("transfer: negative sensor index %d", s)
		}
		if i > 0 && s <= p.Selected[i-1] {
			return fmt.Errorf("transfer: sensor indices not strictly ascending at position %d", i)
		}
	}
	if p.Mean == nil || p.Mean.Rows() == 0 || p.Mean.Cols() != q+1 {
		return fmt.Errorf("transfer: prior mean shape mismatch")
	}
	for _, v := range p.Mean.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("transfer: non-finite prior mean coefficient")
		}
	}
	if len(p.Prec) != q+1 {
		return fmt.Errorf("transfer: %d precision entries for %d columns", len(p.Prec), q+1)
	}
	for j, v := range p.Prec {
		if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
			return fmt.Errorf("transfer: prior precision[%d] = %v not positive and finite", j, v)
		}
	}
	if !(p.NoiseVar > 0) || math.IsInf(p.NoiseVar, 0) || math.IsNaN(p.NoiseVar) {
		return fmt.Errorf("transfer: prior noise variance %v not positive and finite", p.NoiseVar)
	}
	if p.Goldens < 1 {
		return fmt.Errorf("transfer: prior pooled from %d goldens", p.Goldens)
	}
	return nil
}
