package pdn

import (
	"math"
	"testing"

	"voltsense/internal/floorplan"
	"voltsense/internal/grid"
	"voltsense/internal/mat"
	"voltsense/internal/power"
	"voltsense/internal/workload"
)

// smallGrid builds a reduced mesh for fast tests.
func smallGrid() *grid.Grid {
	chip := floorplan.New(floorplan.DefaultConfig())
	cfg := grid.DefaultConfig()
	cfg.NX, cfg.NY = 26, 12

	return grid.Build(chip, cfg)
}

const testDT = 5e-10

func TestQuiescentStaysAtVDD(t *testing.T) {
	g := smallGrid()
	s, err := NewSimulator(g, testDT)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	for i := 0; i < 50; i++ {
		v := s.Step(loads)
		for nd, x := range v {
			if math.Abs(x-g.Cfg.VDD) > 1e-9 {
				t.Fatalf("node %d drifted to %v with zero load", nd, x)
			}
		}
	}
}

func TestConstantLoadSettlesToDC(t *testing.T) {
	g := smallGrid()
	s, err := NewSimulator(g, testDT)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	// Draw 2 A total spread over the nodes of block 10.
	nodes := g.BlockNodes[10]
	for _, nd := range nodes {
		loads[nd] = 2.0 / float64(len(nodes))
	}
	want, err := StaticSolve(g, loads)
	if err != nil {
		t.Fatal(err)
	}
	var v []float64
	for i := 0; i < 4000; i++ {
		v = s.Step(loads)
	}
	for nd := range v {
		if math.Abs(v[nd]-want[nd]) > 1e-4 {
			t.Fatalf("node %d settled at %v, DC says %v", nd, v[nd], want[nd])
		}
	}
}

func TestDroopUnderLoadAndRecovery(t *testing.T) {
	g := smallGrid()
	s, err := NewSimulator(g, testDT)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	nodes := g.BlockNodes[14] // an ALU block
	for _, nd := range nodes {
		loads[nd] = 3.0 / float64(len(nodes))
	}
	var minV float64 = math.Inf(1)
	for i := 0; i < 500; i++ {
		v := s.Step(loads)
		if v[nodes[0]] < minV {
			minV = v[nodes[0]]
		}
	}
	if minV >= g.Cfg.VDD {
		t.Fatal("no droop under 3 A load")
	}
	// Release the load: voltage must recover towards VDD (inductive kick
	// may overshoot, but must stay bounded).
	zero := make([]float64, g.NumNodes())
	var last []float64
	for i := 0; i < 4000; i++ {
		last = s.Step(zero)
	}
	if math.Abs(last[nodes[0]]-g.Cfg.VDD) > 1e-4 {
		t.Fatalf("voltage did not recover: %v", last[nodes[0]])
	}
}

func TestVoltagesBoundedDuringRealWorkload(t *testing.T) {
	chip := floorplan.New(floorplan.DefaultConfig())
	cfg := grid.DefaultConfig()
	cfg.NX, cfg.NY = 26, 12

	g := grid.Build(chip, cfg)
	s, err := NewSimulator(g, testDT)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Generate(chip, workload.Benchmarks()[0], 400, 0)
	ct := power.DefaultModel(chip).Currents(tr)
	cur := make([]float64, chip.NumBlocks())
	err = s.Run(400, func(step int) []float64 {
		for b := range cur {
			cur[b] = ct.Currents[b][step]
		}
		return cur
	}, func(step int, v []float64) {
		for nd, x := range v {
			if math.IsNaN(x) || x < 0 || x > 1.5*g.Cfg.VDD {
				t.Fatalf("node %d voltage %v unphysical at step %d", nd, x, step)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpatialCorrelationDecaysWithDistance(t *testing.T) {
	// The methodology's premise: nearby nodes are more correlated than
	// distant ones. Drive a workload and verify.
	chip := floorplan.New(floorplan.DefaultConfig())
	cfg := grid.DefaultConfig()
	cfg.NX, cfg.NY = 26, 12

	g := grid.Build(chip, cfg)
	s, err := NewSimulator(g, testDT)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Generate(chip, workload.Benchmarks()[1], 600, 0)
	ct := power.DefaultModel(chip).Currents(tr)

	ref := g.NodeID(4, 4)   // inside core 0
	near := g.NodeID(5, 4)  // adjacent
	far := g.NodeID(24, 10) // opposite corner of the chip

	var refV, nearV, farV []float64
	cur := make([]float64, chip.NumBlocks())
	err = s.Run(600, func(step int) []float64 {
		for b := range cur {
			cur[b] = ct.Currents[b][step]
		}
		return cur
	}, func(step int, v []float64) {
		if step < 50 { // skip warm-up transient
			return
		}
		refV = append(refV, v[ref])
		nearV = append(nearV, v[near])
		farV = append(farV, v[far])
	})
	if err != nil {
		t.Fatal(err)
	}
	cNear := mat.Correlation(refV, nearV)
	cFar := mat.Correlation(refV, farV)
	if cNear <= cFar {
		t.Fatalf("correlation near=%.3f <= far=%.3f; spatial locality broken", cNear, cFar)
	}
	if cNear < 0.9 {
		t.Errorf("adjacent-node correlation %.3f unexpectedly weak", cNear)
	}
}

func TestWorstDroopTracker(t *testing.T) {
	w := NewWorstDroop(3)
	w.Observe([]float64{1.0, 0.9, 0.95})
	w.Observe([]float64{0.98, 0.92, 0.90})
	if w.Min[0] != 0.98 || w.Min[1] != 0.9 || w.Min[2] != 0.90 {
		t.Fatalf("Min = %v", w.Min)
	}
	if got := w.CriticalNode([]int{0, 1, 2}); got != 1 {
		t.Fatalf("CriticalNode = %d, want 1", got)
	}
	if got := w.CriticalNode([]int{0, 2}); got != 2 {
		t.Fatalf("CriticalNode subset = %d, want 2", got)
	}
}

func TestCriticalNodeEmptyPanics(t *testing.T) {
	w := NewWorstDroop(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.CriticalNode(nil)
}

func TestResetRestoresQuiescence(t *testing.T) {
	g := smallGrid()
	s, err := NewSimulator(g, testDT)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	loads[g.BlockNodes[0][0]] = 1
	s.Step(loads)
	s.Reset()
	if s.StepCount() != 0 {
		t.Fatal("StepCount not reset")
	}
	v := s.Step(make([]float64, g.NumNodes()))
	for nd, x := range v {
		if math.Abs(x-g.Cfg.VDD) > 1e-9 {
			t.Fatalf("node %d at %v after Reset", nd, x)
		}
	}
}

func TestNewSimulatorRejectsBadDT(t *testing.T) {
	if _, err := NewSimulator(smallGrid(), 0); err == nil {
		t.Fatal("expected error for dt=0")
	}
}

func TestBlockLoaderConservesCurrent(t *testing.T) {
	g := smallGrid()
	l := NewBlockLoader(g)
	cur := make([]float64, len(g.BlockNodes))
	for b := range cur {
		cur[b] = float64(b%5) * 0.3
	}
	loads := l.Loads(cur)
	var totLoads, totCur float64
	for _, v := range loads {
		totLoads += v
	}
	for _, v := range cur {
		totCur += v
	}
	if math.Abs(totLoads-totCur) > 1e-9 {
		t.Fatalf("loader lost current: %v vs %v", totLoads, totCur)
	}
}
