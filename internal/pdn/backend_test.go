package pdn

import (
	"math"
	"math/rand"
	"testing"

	"voltsense/internal/floorplan"
	"voltsense/internal/grid"
)

// TestSparseMatchesBandedTransient is the golden equivalence test: on a
// bandwidth-friendly mesh where both backends run, the sparse IC-PCG path
// must track the banded Cholesky within 1e-9 at every node of every step.
func TestSparseMatchesBandedTransient(t *testing.T) {
	g := smallGrid()
	sb, err := NewSimulatorBackend(g, testDT, Banded)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSimulatorBackend(g, testDT, Sparse)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(42))
	loads := make([]float64, n)
	const steps = 200
	worst := 0.0
	for step := 0; step < steps; step++ {
		// Noisy block-style loading with a mid-run level shift, to move the
		// warm start around rather than settling into a fixed point.
		level := 0.05
		if step >= steps/2 {
			level = 0.25
		}
		for _, nodes := range g.BlockNodes {
			cur := level * rng.Float64()
			for _, nd := range nodes {
				loads[nd] = cur / float64(len(nodes))
			}
		}
		vb := sb.Step(loads)
		vs := sp.Step(loads)
		for i := range vb {
			if d := math.Abs(vb[i] - vs[i]); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-9 {
		t.Fatalf("sparse and banded transients diverge: max |Δv| = %g > 1e-9", worst)
	}
	t.Logf("max |Δv| over %d steps: %g", steps, worst)
}

// TestBackendAutoSelection pins the Auto rule: narrow meshes stay on the
// banded factor, wide ones switch to sparse.
func TestBackendAutoSelection(t *testing.T) {
	chip := floorplan.New(floorplan.DefaultConfig())

	narrow := grid.DefaultConfig() // NX=78 ≤ sparseBandwidthLimit
	s, err := NewSimulator(grid.Build(chip, narrow), testDT)
	if err != nil {
		t.Fatal(err)
	}
	if s.Backend() != Banded {
		t.Fatalf("78-wide mesh picked %v, want banded", s.Backend())
	}

	wide := grid.DefaultConfig()
	wide.NX, wide.NY = 300, 4 // bandwidth 300 > sparseBandwidthLimit
	s, err = NewSimulator(grid.Build(chip, wide), testDT)
	if err != nil {
		t.Fatal(err)
	}
	if s.Backend() != Sparse {
		t.Fatalf("300-wide mesh picked %v, want sparse", s.Backend())
	}
}

// TestSparseSettlesOntoStaticSolve mirrors the banded settling cross-check
// for the new backend: a constant-load sparse transient must converge onto
// the independent DC solution.
func TestSparseSettlesOntoStaticSolve(t *testing.T) {
	g := smallGrid()
	s, err := NewSimulatorBackend(g, testDT, Sparse)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	loads := make([]float64, n)
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.01
		}
	}
	want, err := StaticSolve(g, loads)
	if err != nil {
		t.Fatal(err)
	}
	var v []float64
	for step := 0; step < 4000; step++ {
		v = s.Step(loads)
	}
	worst := 0.0
	for i := range v {
		if d := math.Abs(v[i] - want[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Fatalf("sparse transient settled %g away from DC solution", worst)
	}
}

func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
	}{{"", Auto}, {"auto", Auto}, {"banded", Banded}, {"sparse", Sparse}} {
		got, err := ParseBackend(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBackend(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseBackend("gpu"); err == nil {
		t.Fatal("ParseBackend accepted unknown backend")
	}
}

func TestNewSimulatorBackendRejectsUnknown(t *testing.T) {
	if _, err := NewSimulatorBackend(smallGrid(), testDT, Backend(99)); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
