package pdn

import (
	"testing"

	"voltsense/internal/floorplan"
	"voltsense/internal/grid"
)

// fullGrid is the production mesh of the paper-scale experiments.
func fullGrid() *grid.Grid {
	chip := floorplan.New(floorplan.DefaultConfig())
	return grid.Build(chip, grid.DefaultConfig())
}

func BenchmarkNewSimulator(b *testing.B) {
	g := fullGrid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSimulator(g, 5e-10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStep(b *testing.B) {
	g := fullGrid()
	s, err := NewSimulator(g, 5e-10)
	if err != nil {
		b.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.2
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(loads)
	}
}

func BenchmarkStaticSolve(b *testing.B) {
	g := fullGrid()
	loads := make([]float64, g.NumNodes())
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.2
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := StaticSolve(g, loads); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStepZeroAllocs pins the transient hot loop: after construction, every
// Step must be a pair of in-place triangular solves plus state updates —
// no allocation, ever.
func TestStepZeroAllocs(t *testing.T) {
	g := fullGrid()
	s, err := NewSimulator(g, 5e-10)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.2
		}
	}
	s.Step(loads)
	if a := testing.AllocsPerRun(20, func() { s.Step(loads) }); a != 0 {
		t.Fatalf("Step allocates %v times per run, want 0", a)
	}
}

// TestStepZeroAllocsSparse mirrors the banded assertion for the sparse
// backend: the warm-started IC-PCG step must also run allocation-free.
func TestStepZeroAllocsSparse(t *testing.T) {
	g := fullGrid()
	s, err := NewSimulatorBackend(g, 5e-10, Sparse)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.2
		}
	}
	s.Step(loads)
	if a := testing.AllocsPerRun(20, func() { s.Step(loads) }); a != 0 {
		t.Fatalf("sparse Step allocates %v times per run, want 0", a)
	}
}

// scaledGrid builds the default chip meshed at nx×ny.
func scaledGrid(nx, ny int) *grid.Grid {
	chip := floorplan.New(floorplan.DefaultConfig())
	cfg := grid.DefaultConfig()
	cfg.NX, cfg.NY = nx, ny
	return grid.Build(chip, cfg)
}

func benchStepBackend(b *testing.B, g *grid.Grid, backend Backend) {
	s, err := NewSimulatorBackend(g, 5e-10, backend)
	if err != nil {
		b.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.2 / float64(len(nodes))
		}
	}
	if err := s.Settle(loads); err != nil { // steady-state stepping regime
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(loads)
	}
}

// BenchmarkStepBanded256 vs BenchmarkStepSparse256: the same 256×128 mesh
// (bandwidth 256, the crossover point of the Auto rule) stepped by both
// backends. In-band the banded triangular sweeps win per step — this pair
// documents why Auto keeps Banded below the bandwidth limit.
func BenchmarkStepBanded256(b *testing.B) { benchStepBackend(b, scaledGrid(256, 128), Banded) }

func BenchmarkStepSparse256(b *testing.B) { benchStepBackend(b, scaledGrid(256, 128), Sparse) }

func benchCtorBackend(b *testing.B, g *grid.Grid, backend Backend) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSimulatorBackend(g, 5e-10, backend); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewSimulator512Banded vs BenchmarkNewSimulator512Sparse: the
// banded-vs-sparse speedup pair in BENCH_PR7.json. At 512×256 the banded
// factor costs O(n·bw²) ≈ 1.7e10 flops and 538 MB; sparse assembly plus the
// MIC factor is O(nnz) — three orders of magnitude cheaper, which is what
// makes per-worker simulators at this scale viable at all.
func BenchmarkNewSimulator512Banded(b *testing.B) {
	benchCtorBackend(b, scaledGrid(512, 256), Banded)
}

func BenchmarkNewSimulator512Sparse(b *testing.B) {
	benchCtorBackend(b, scaledGrid(512, 256), Sparse)
}

// BenchmarkStepSparse1024 steps a 1024×1024 mesh (1M nodes). The banded
// factor at this size would need ~8.6 GB and ~5e11 flops (about ten
// minutes) to build, so the sparse path is the only one that runs — the
// scale-up the issue targets.
func BenchmarkStepSparse1024(b *testing.B) { benchStepBackend(b, scaledGrid(1024, 1024), Sparse) }
