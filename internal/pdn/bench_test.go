package pdn

import (
	"testing"

	"voltsense/internal/floorplan"
	"voltsense/internal/grid"
)

// fullGrid is the production mesh of the paper-scale experiments.
func fullGrid() *grid.Grid {
	chip := floorplan.New(floorplan.DefaultConfig())
	return grid.Build(chip, grid.DefaultConfig())
}

func BenchmarkNewSimulator(b *testing.B) {
	g := fullGrid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSimulator(g, 5e-10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStep(b *testing.B) {
	g := fullGrid()
	s, err := NewSimulator(g, 5e-10)
	if err != nil {
		b.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.2
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(loads)
	}
}

func BenchmarkStaticSolve(b *testing.B) {
	g := fullGrid()
	loads := make([]float64, g.NumNodes())
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.2
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := StaticSolve(g, loads); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStepZeroAllocs pins the transient hot loop: after construction, every
// Step must be a pair of in-place triangular solves plus state updates —
// no allocation, ever.
func TestStepZeroAllocs(t *testing.T) {
	g := fullGrid()
	s, err := NewSimulator(g, 5e-10)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.2
		}
	}
	s.Step(loads)
	if a := testing.AllocsPerRun(20, func() { s.Step(loads) }); a != 0 {
		t.Fatalf("Step allocates %v times per run, want 0", a)
	}
}
