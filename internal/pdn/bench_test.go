package pdn

import (
	"testing"

	"voltsense/internal/floorplan"
	"voltsense/internal/grid"
)

// fullGrid is the production mesh of the paper-scale experiments.
func fullGrid() *grid.Grid {
	chip := floorplan.New(floorplan.DefaultConfig())
	return grid.Build(chip, grid.DefaultConfig())
}

func BenchmarkNewSimulator(b *testing.B) {
	g := fullGrid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSimulator(g, 5e-10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStep(b *testing.B) {
	g := fullGrid()
	s, err := NewSimulator(g, 5e-10)
	if err != nil {
		b.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.2
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(loads)
	}
}

func BenchmarkStaticSolve(b *testing.B) {
	g := fullGrid()
	loads := make([]float64, g.NumNodes())
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.2
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := StaticSolve(g, loads); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStepZeroAllocs pins the transient hot loop: after construction, every
// Step must be a pair of in-place triangular solves plus state updates —
// no allocation, ever.
func TestStepZeroAllocs(t *testing.T) {
	g := fullGrid()
	s, err := NewSimulator(g, 5e-10)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.2
		}
	}
	s.Step(loads)
	if a := testing.AllocsPerRun(20, func() { s.Step(loads) }); a != 0 {
		t.Fatalf("Step allocates %v times per run, want 0", a)
	}
}

// TestStepZeroAllocsSparse mirrors the banded assertion for the sparse
// backend: the warm-started IC-PCG step must also run allocation-free.
func TestStepZeroAllocsSparse(t *testing.T) {
	g := fullGrid()
	s, err := NewSimulatorBackend(g, 5e-10, Sparse)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.2
		}
	}
	s.Step(loads)
	if a := testing.AllocsPerRun(20, func() { s.Step(loads) }); a != 0 {
		t.Fatalf("sparse Step allocates %v times per run, want 0", a)
	}
}

// scaledGrid builds the default chip meshed at nx×ny.
func scaledGrid(nx, ny int) *grid.Grid {
	chip := floorplan.New(floorplan.DefaultConfig())
	cfg := grid.DefaultConfig()
	cfg.NX, cfg.NY = nx, ny
	return grid.Build(chip, cfg)
}

func benchStepBackend(b *testing.B, g *grid.Grid, backend Backend) {
	s, err := NewSimulatorBackend(g, 5e-10, backend)
	if err != nil {
		b.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.2 / float64(len(nodes))
		}
	}
	if err := s.Settle(loads); err != nil { // steady-state stepping regime
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(loads)
	}
}

// BenchmarkStepBanded256 vs BenchmarkStepSparse256: the same 256×128 mesh
// (bandwidth 256, the crossover point of the Auto rule) stepped by both
// backends. In-band the banded triangular sweeps win per step — this pair
// documents why Auto keeps Banded below the bandwidth limit.
func BenchmarkStepBanded256(b *testing.B) { benchStepBackend(b, scaledGrid(256, 128), Banded) }

func BenchmarkStepSparse256(b *testing.B) { benchStepBackend(b, scaledGrid(256, 128), Sparse) }

func benchCtorBackend(b *testing.B, g *grid.Grid, backend Backend) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSimulatorBackend(g, 5e-10, backend); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewSimulator512Banded vs BenchmarkNewSimulator512Sparse: the
// banded-vs-sparse speedup pair in BENCH_PR7.json. At 512×256 the banded
// factor costs O(n·bw²) ≈ 1.7e10 flops and 538 MB; sparse assembly plus the
// MIC factor is O(nnz) — three orders of magnitude cheaper, which is what
// makes per-worker simulators at this scale viable at all.
func BenchmarkNewSimulator512Banded(b *testing.B) {
	benchCtorBackend(b, scaledGrid(512, 256), Banded)
}

func BenchmarkNewSimulator512Sparse(b *testing.B) {
	benchCtorBackend(b, scaledGrid(512, 256), Sparse)
}

// BenchmarkStepSparse1024 steps a 1024×1024 mesh (1M nodes). The banded
// factor at this size would need ~8.6 GB and ~5e11 flops (about ten
// minutes) to build, so the sparse path is the only one that runs — the
// scale-up the issue targets.
func BenchmarkStepSparse1024(b *testing.B) { benchStepBackend(b, scaledGrid(1024, 1024), Sparse) }

func benchStepSparseWorkers(b *testing.B, g *grid.Grid, workers int) {
	s, err := NewSimulatorOpts(g, 5e-10, SimOptions{Backend: Sparse, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	loads := make([]float64, g.NumNodes())
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			loads[nd] = 0.2 / float64(len(nodes))
		}
	}
	if err := s.Settle(loads); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(loads)
	}
}

// BenchmarkStepSparse1024Serial vs BenchmarkStepSparse1024Parallel: the
// serial-vs-parallel speedup pair at the 1M-node scale. Serial pins
// Workers=1 (every kernel inline); Parallel uses the pool default, so the
// reported ratio is the machine's actual core win — parity on one core,
// scaling with the row-partitioned kernels as cores are added. Outputs are
// bitwise identical either way.
func BenchmarkStepSparse1024Serial(b *testing.B) {
	benchStepSparseWorkers(b, scaledGrid(1024, 1024), 1)
}

func BenchmarkStepSparse1024Parallel(b *testing.B) {
	benchStepSparseWorkers(b, scaledGrid(1024, 1024), 0)
}

// stepBatchNRHS is the column count of the batched step pair — the size of
// the benchmark suite the experiments pipeline steps in lock step.
const stepBatchNRHS = 8

func batchBenchFixture(b *testing.B, g *grid.Grid) ([][]float64, [][]float64) {
	n := g.NumNodes()
	loadCols := make([][]float64, stepBatchNRHS)
	for c := range loadCols {
		loads := make([]float64, n)
		for _, nodes := range g.BlockNodes {
			for _, nd := range nodes {
				loads[nd] = 0.2 * float64(c+1) / float64(stepBatchNRHS) / float64(len(nodes))
			}
		}
		loadCols[c] = loads
	}
	return loadCols, nil
}

// BenchmarkStepBatch512 vs BenchmarkStepLooped512: the batched-vs-looped
// speedup pair. Both advance 8 independent transients one step on a 512×256
// mesh; the batch steps them through one matrix traversal per PCG
// iteration, the loop streams the matrix and factor once per transient.
func BenchmarkStepBatch512(b *testing.B) {
	g := scaledGrid(512, 256)
	loadCols, _ := batchBenchFixture(b, g)
	bs, err := NewBatchSimulator(g, 5e-10, stepBatchNRHS, SimOptions{Backend: Sparse})
	if err != nil {
		b.Fatal(err)
	}
	for c := 0; c < stepBatchNRHS; c++ {
		if err := bs.SettleColumn(c, loadCols[c]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.Step(loadCols)
	}
}

func BenchmarkStepLooped512(b *testing.B) {
	g := scaledGrid(512, 256)
	loadCols, _ := batchBenchFixture(b, g)
	sims := make([]*Simulator, stepBatchNRHS)
	for c := range sims {
		s, err := NewSimulatorBackend(g, 5e-10, Sparse)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Settle(loadCols[c]); err != nil {
			b.Fatal(err)
		}
		sims[c] = s
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c, s := range sims {
			s.Step(loadCols[c])
		}
	}
}

// TestStepBatchZeroAllocs extends the zero-alloc invariant to the batched
// sparse step.
func TestStepBatchZeroAllocs(t *testing.T) {
	g := smallGrid()
	bs, err := NewBatchSimulator(g, testDT, 4, SimOptions{Backend: Sparse})
	if err != nil {
		t.Fatal(err)
	}
	loadCols := make([][]float64, 4)
	for c := range loadCols {
		loads := make([]float64, g.NumNodes())
		for _, nodes := range g.BlockNodes {
			for _, nd := range nodes {
				loads[nd] = 0.1 * float64(c+1)
			}
		}
		loadCols[c] = loads
	}
	bs.Step(loadCols)
	if a := testing.AllocsPerRun(20, func() { bs.Step(loadCols) }); a != 0 {
		t.Fatalf("batch Step allocates %v times per run, want 0", a)
	}
}
