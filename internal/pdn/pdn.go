// Package pdn is the power-grid transient engine: it integrates the mesh
// built by package grid under time-varying block currents and produces the
// node-voltage waveforms every experiment samples.
//
// Discretization is backward Euler. With node capacitances C, mesh
// conductances G and pad branches (series R, L to the ideal VDD rail), each
// step solves
//
//	(G + C/h + G_pad) v[t+1] = (C/h) v[t] + pad history + VDD injection − i_load[t+1]
//
// The system matrix is constant, symmetric positive definite and banded
// (half-bandwidth = mesh NX), so it is factored once with the banded
// Cholesky and every step is a pair of triangular solves. Pad inductors use
// the standard backward-Euler companion model: an effective conductance
// 1/(R + L/h) plus a history current source tracking the previous branch
// current.
package pdn

import (
	"fmt"
	"math"

	"voltsense/internal/banded"
	"voltsense/internal/grid"
	"voltsense/internal/sparse"
)

// Simulator integrates one grid with a fixed time step.
type Simulator struct {
	g  *grid.Grid
	dt float64

	chol *banded.CholFactor

	cOverH  []float64 // C/h per node
	padGeff []float64 // effective pad conductance 1/(R + L/h)
	padLh   []float64 // L/h per pad

	v      []float64 // node voltages (state)
	padCur []float64 // pad branch currents (state)
	rhs    []float64 // scratch
	t      int
}

// NewSimulator assembles and factors the backward-Euler system for the grid
// at time step dt (seconds).
func NewSimulator(g *grid.Grid, dt float64) (*Simulator, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("pdn: non-positive time step %g", dt)
	}
	n := g.NumNodes()
	s := &Simulator{
		g:       g,
		dt:      dt,
		cOverH:  make([]float64, n),
		padGeff: make([]float64, len(g.Pads)),
		padLh:   make([]float64, len(g.Pads)),
		v:       make([]float64, n),
		padCur:  make([]float64, len(g.Pads)),
		rhs:     make([]float64, n),
	}
	a := banded.NewSymBanded(n, g.Cfg.NX)
	for i, c := range g.Caps {
		s.cOverH[i] = c / dt
		a.Add(i, i, s.cOverH[i])
	}
	for _, e := range g.Edges {
		a.Add(e.A, e.A, e.G)
		a.Add(e.B, e.B, e.G)
		a.Add(e.A, e.B, -e.G)
	}
	for p, pad := range g.Pads {
		lh := pad.L / dt
		geff := 1 / (pad.R + lh)
		s.padGeff[p] = geff
		s.padLh[p] = lh
		a.Add(pad.Node, pad.Node, geff)
	}
	chol, err := banded.Factor(a)
	if err != nil {
		return nil, fmt.Errorf("pdn: system matrix not SPD: %w", err)
	}
	s.chol = chol
	s.Reset()
	return s, nil
}

// DT returns the simulation time step in seconds.
func (s *Simulator) DT() float64 { return s.dt }

// StepCount returns the number of steps taken since the last Reset.
func (s *Simulator) StepCount() int { return s.t }

// Reset returns the simulator to the quiescent state: every node at VDD,
// no pad current flowing.
func (s *Simulator) Reset() {
	for i := range s.v {
		s.v[i] = s.g.Cfg.VDD
	}
	for i := range s.padCur {
		s.padCur[i] = 0
	}
	s.t = 0
}

// Step advances one time step with loads[i] amps drawn from node i, and
// returns the node voltages. The returned slice is the simulator's internal
// state: it is valid only until the next Step or Reset call, and must not be
// modified.
func (s *Simulator) Step(loads []float64) []float64 {
	n := len(s.v)
	if len(loads) != n {
		panic(fmt.Sprintf("pdn: loads length %d, want %d", len(loads), n))
	}
	vdd := s.g.Cfg.VDD
	for i := 0; i < n; i++ {
		s.rhs[i] = s.cOverH[i]*s.v[i] - loads[i]
	}
	for p, pad := range s.g.Pads {
		s.rhs[pad.Node] += s.padGeff[p] * (vdd + s.padLh[p]*s.padCur[p])
	}
	s.chol.SolveInto(s.v, s.rhs)
	for p, pad := range s.g.Pads {
		s.padCur[p] = s.padGeff[p] * (vdd - s.v[pad.Node] + s.padLh[p]*s.padCur[p])
	}
	s.t++
	return s.v
}

// BlockLoader spreads per-block currents onto mesh nodes: block b's draw
// divides equally among grid.BlockNodes[b].
type BlockLoader struct {
	g     *grid.Grid
	loads []float64
}

// NewBlockLoader returns a loader for g.
func NewBlockLoader(g *grid.Grid) *BlockLoader {
	return &BlockLoader{g: g, loads: make([]float64, g.NumNodes())}
}

// Loads converts block currents (amps, indexed by block ID) to node loads.
// The returned slice is reused across calls.
func (l *BlockLoader) Loads(blockCurrents []float64) []float64 {
	if len(blockCurrents) != len(l.g.BlockNodes) {
		panic(fmt.Sprintf("pdn: %d block currents, grid has %d blocks", len(blockCurrents), len(l.g.BlockNodes)))
	}
	for i := range l.loads {
		l.loads[i] = 0
	}
	for b, cur := range blockCurrents {
		nodes := l.g.BlockNodes[b]
		share := cur / float64(len(nodes))
		for _, nd := range nodes {
			l.loads[nd] += share
		}
	}
	return l.loads
}

// Settle initializes the simulator state to the DC operating point for the
// given node loads: node voltages from the resistive solve (inductors
// shorted) and pad currents carrying their steady-state share. Starting a
// transient from Settle avoids the unphysical inrush collapse of switching
// a fully loaded chip onto an unenergized package.
func (s *Simulator) Settle(loads []float64) error {
	v, err := StaticSolve(s.g, loads)
	if err != nil {
		return err
	}
	copy(s.v, v)
	for p, pad := range s.g.Pads {
		s.padCur[p] = (s.g.Cfg.VDD - v[pad.Node]) / pad.R
	}
	s.t = 0
	return nil
}

// Run integrates steps time steps, settling first at the DC operating point
// of the first step's currents. For each step it calls currentAt(t) to get
// per-block currents, then onStep(t, v) with the resulting node voltages
// (the slice obeys the same aliasing rule as Step). onStep may be nil when
// only final state matters.
func (s *Simulator) Run(steps int, currentAt func(t int) []float64, onStep func(t int, v []float64)) error {
	loader := NewBlockLoader(s.g)
	if steps > 0 {
		if err := s.Settle(loader.Loads(currentAt(0))); err != nil {
			return err
		}
	}
	for t := 0; t < steps; t++ {
		v := s.Step(loader.Loads(currentAt(t)))
		if onStep != nil {
			onStep(t, v)
		}
	}
	return nil
}

// StaticSolve computes the DC operating point for constant node loads
// (inductors shorted, capacitors open) using the independent conjugate-
// gradient path. It is the cross-check oracle for the transient engine: a
// constant-load transient must settle onto this solution.
func StaticSolve(g *grid.Grid, loads []float64) ([]float64, error) {
	n := g.NumNodes()
	if len(loads) != n {
		panic(fmt.Sprintf("pdn: loads length %d, want %d", len(loads), n))
	}
	tr := sparse.NewTriplet(n, n)
	for _, e := range g.Edges {
		tr.Add(e.A, e.A, e.G)
		tr.Add(e.B, e.B, e.G)
		tr.Add(e.A, e.B, -e.G)
		tr.Add(e.B, e.A, -e.G)
	}
	b := make([]float64, n)
	for i, ld := range loads {
		b[i] = -ld
	}
	for _, pad := range g.Pads {
		gdc := 1 / pad.R // inductor is a short at DC
		tr.Add(pad.Node, pad.Node, gdc)
		b[pad.Node] += gdc * g.Cfg.VDD
	}
	x, _, err := sparse.SolveCG(tr.ToCSR(), b, nil, sparse.CGOptions{Tol: 1e-12})
	if err != nil {
		return nil, fmt.Errorf("pdn: static solve: %w", err)
	}
	return x, nil
}

// WorstDroop tracks the minimum voltage seen at every node across a run;
// the paper uses it to pick each block's noise-critical node.
type WorstDroop struct {
	Min []float64
}

// NewWorstDroop returns a tracker for n nodes, initialized to +Inf.
func NewWorstDroop(n int) *WorstDroop {
	w := &WorstDroop{Min: make([]float64, n)}
	for i := range w.Min {
		w.Min[i] = math.Inf(1)
	}
	return w
}

// Observe folds one voltage snapshot into the tracker.
func (w *WorstDroop) Observe(v []float64) {
	for i, x := range v {
		if x < w.Min[i] {
			w.Min[i] = x
		}
	}
}

// CriticalNode returns the node among nodes with the lowest observed
// voltage — the block's noise-critical node.
func (w *WorstDroop) CriticalNode(nodes []int) int {
	best, bestV := -1, math.Inf(1)
	for _, nd := range nodes {
		if w.Min[nd] < bestV {
			best, bestV = nd, w.Min[nd]
		}
	}
	if best < 0 {
		panic("pdn: CriticalNode called with empty node list")
	}
	return best
}
