// Package pdn is the power-grid transient engine: it integrates the mesh
// built by package grid under time-varying block currents and produces the
// node-voltage waveforms every experiment samples.
//
// Discretization is backward Euler. With node capacitances C, mesh
// conductances G and pad branches (series R, L to the ideal VDD rail), each
// step solves
//
//	(G + C/h + G_pad) v[t+1] = (C/h) v[t] + pad history + VDD injection − i_load[t+1]
//
// The system matrix is constant, symmetric positive definite and banded
// (half-bandwidth = mesh NX). Two interchangeable step backends solve it:
// the banded Cholesky (factored once, every step a pair of triangular
// solves — the fast path for narrow meshes) and a preconditioned
// conjugate-gradient path over the RCM-reordered CSR matrix, warm-started
// from the previous step's voltages, which scales to 1024×1024+ meshes
// where the banded factor's O(n·bw²) time and O(n·bw) memory are
// prohibitive. The sparse path runs its kernels in parallel on the mat
// worker pool with bitwise-deterministic results at any worker count;
// SimOptions selects the preconditioner family (modified IC(0) with
// level-scheduled sweeps by default, Chebyshev or Jacobi for fully parallel
// applications) and bounds the workers. BatchSimulator steps many
// independent transients on the same grid through one matrix traversal per
// step. NewSimulator picks the backend automatically by bandwidth and
// storage; use NewSimulatorBackend or NewSimulatorOpts to force a choice.
// Pad inductors use the standard
// backward-Euler companion model: an effective conductance 1/(R + L/h)
// plus a history current source tracking the previous branch current.
package pdn

import (
	"fmt"
	"math"

	"voltsense/internal/banded"
	"voltsense/internal/grid"
	"voltsense/internal/sparse"
)

// Backend selects the linear-solver path behind Step.
type Backend int

const (
	// Auto picks Banded for narrow meshes and Sparse when the bandwidth or
	// the factor's storage would make the banded path impractical.
	Auto Backend = iota
	// Banded is the dense banded Cholesky: one factorization, then two
	// triangular sweeps per step.
	Banded
	// Sparse is IC(0)-preconditioned conjugate gradient on the CSR matrix,
	// warm-started from the previous step's voltages.
	Sparse
)

// String names the backend for logs and flags.
func (b Backend) String() string {
	switch b {
	case Auto:
		return "auto"
	case Banded:
		return "banded"
	case Sparse:
		return "sparse"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend maps a flag value ("auto", "banded", "sparse") to a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return Auto, nil
	case "banded":
		return Banded, nil
	case "sparse":
		return Sparse, nil
	}
	return Auto, fmt.Errorf("pdn: unknown backend %q (want auto, banded or sparse)", s)
}

// SimOptions configures simulator construction beyond the time step.
type SimOptions struct {
	// Backend forces a solver path; Auto resolves by bandwidth and storage.
	Backend Backend
	// Precond selects the sparse backend's preconditioner family
	// (sparse.ParsePrecond names). Auto uses modified IC(0) with a plain
	// IC(0) fallback — the strongest option. Ignored by the banded backend.
	Precond sparse.Precond
	// Workers bounds the sparse backend's parallel kernel shares; 0 tracks
	// the mat pool default. Results are bitwise identical for any setting.
	Workers int
}

// stepSolver solves the constant backward-Euler system A·dst = rhs. dst
// holds the previous step's voltages on entry, which iterative backends use
// as the warm start. Implementations must not allocate.
type stepSolver interface {
	solveInto(dst, rhs []float64)
}

type bandedSolver struct{ chol *banded.CholFactor }

func (b bandedSolver) solveInto(dst, rhs []float64) { b.chol.SolveInto(dst, rhs) }

// sparseSystem is the RCM-permuted CSR step system shared by the single and
// batch sparse solvers: the matrix P·A·Pᵀ, the permutation that built it,
// and the preconditioner factored for the permuted matrix. Reordering is
// transparent — callers stay in original node order and the solvers map
// through perm at the boundary.
type sparseSystem struct {
	a    *sparse.CSR
	perm []int // perm[newI] = oldI
	pre  sparse.Preconditioner
}

// newSparseSystem assembles the step matrix, applies reverse Cuthill–McKee
// (tight bands mean cache-local SpMV gathers and short IC level schedules,
// whatever order the mesh was numbered in), and builds the preconditioner.
func newSparseSystem(g *grid.Grid, diag []float64, precond sparse.Precond) (*sparseSystem, error) {
	a := assembleSystemCSR(g, diag)
	perm := sparse.RCM(a)
	pa := sparse.PermuteSym(a, perm)
	pre, err := buildPrecond(pa, precond)
	if err != nil {
		return nil, err
	}
	return &sparseSystem{a: pa, perm: perm, pre: pre}, nil
}

// buildPrecond constructs the selected preconditioner family for the
// (already permuted) SPD step matrix.
func buildPrecond(a *sparse.CSR, p sparse.Precond) (sparse.Preconditioner, error) {
	switch p {
	case sparse.PrecondAuto, sparse.PrecondIC:
		// Modified IC keeps the preconditioned condition number O(h⁻¹) on
		// refined meshes; fall back to plain IC(0) on the rare breakdown.
		ic, err := sparse.NewICModified(a, micOmega)
		if err != nil {
			if ic, err = sparse.NewIC(a); err != nil {
				return nil, fmt.Errorf("pdn: system matrix not SPD: %w", err)
			}
		}
		return ic, nil
	case sparse.PrecondJacobi:
		j, err := sparse.NewJacobi(a)
		if err != nil {
			return nil, fmt.Errorf("pdn: system matrix not SPD: %w", err)
		}
		return j, nil
	case sparse.PrecondCheby:
		c, err := sparse.NewCheby(a, 0)
		if err != nil {
			return nil, fmt.Errorf("pdn: system matrix not SPD: %w", err)
		}
		return c, nil
	}
	return nil, fmt.Errorf("pdn: unknown preconditioner %v", p)
}

// sparseSolver runs warm-started PCG on the RCM-permuted system: the warm
// start and rhs are permuted in, the solution permuted back out, so callers
// never see the reordering.
type sparseSolver struct {
	cg     *sparse.CGSolver
	perm   []int
	xp, bp []float64
}

func newSparseSolver(sys *sparseSystem, opts SimOptions) (*sparseSolver, error) {
	cg, err := sparse.NewCGSolver(sys.a, sparse.CGOptions{
		Tol: stepCGTol, Precond: sys.pre, Workers: opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("pdn: sparse solver: %w", err)
	}
	n := sys.a.Rows()
	return &sparseSolver{
		cg: cg, perm: sys.perm,
		xp: make([]float64, n), bp: make([]float64, n),
	}, nil
}

func (s *sparseSolver) solveInto(dst, rhs []float64) {
	for newI, oldI := range s.perm {
		s.xp[newI] = dst[oldI]
		s.bp[newI] = rhs[oldI]
	}
	if _, err := s.cg.Solve(s.xp, s.bp); err != nil {
		// The system matrix is constant and SPD with a preconditioner built
		// for it; failure here means the simulator was mis-assembled, which
		// is a programming error like the shape panics elsewhere in this
		// package.
		panic(fmt.Sprintf("pdn: sparse step solve failed: %v", err))
	}
	for newI, oldI := range s.perm {
		dst[oldI] = s.xp[newI]
	}
}

// stepCGTol is the relative residual target of the sparse step solver,
// chosen so that iterative error stays below the 1e-9 golden-equivalence
// budget against the banded factor even after thousands of steps.
const stepCGTol = 1e-13

// micOmega is the relaxation of the modified-IC preconditioner: 1 would
// preserve row sums exactly but risks breakdown, 0.95 is the standard
// safe margin.
const micOmega = 1.0

// sparseBandwidthLimit and sparseStorageLimit are the Auto thresholds:
// beyond either, the banded factor's O(n·bw²) time or O(n·bw) bytes lose
// to IC(0)-PCG (a 1024×1024 mesh would need an 8.6 GB factor and ~10¹²
// flops to factor it; the CSR holds ~5 nonzeros per node).
const (
	sparseBandwidthLimit = 256
	sparseStorageLimit   = 256 << 20 // bytes of banded factor
)

func chooseBackend(g *grid.Grid) Backend {
	bw := g.Cfg.NX
	n := g.NumNodes()
	if bw > sparseBandwidthLimit || int64(n)*int64(bw+1)*8 > sparseStorageLimit {
		return Sparse
	}
	return Banded
}

// ResolveBackend reports the concrete backend a simulator built with b on g
// would use: b itself, or the automatic bandwidth/storage choice when b is
// Auto. Callers (batched trace collection) use it to decide strategy before
// paying for construction.
func ResolveBackend(g *grid.Grid, b Backend) Backend {
	if b == Auto {
		return chooseBackend(g)
	}
	return b
}

// Simulator integrates one grid with a fixed time step.
type Simulator struct {
	g  *grid.Grid
	dt float64

	solver  stepSolver
	backend Backend

	cOverH  []float64 // C/h per node
	padGeff []float64 // effective pad conductance 1/(R + L/h)
	padLh   []float64 // L/h per pad

	v      []float64 // node voltages (state)
	padCur []float64 // pad branch currents (state)
	rhs    []float64 // scratch
	t      int
}

// NewSimulator assembles and factors the backward-Euler system for the grid
// at time step dt (seconds), picking the solver backend automatically.
func NewSimulator(g *grid.Grid, dt float64) (*Simulator, error) {
	return NewSimulatorBackend(g, dt, Auto)
}

// NewSimulatorBackend is NewSimulator with an explicit solver backend.
func NewSimulatorBackend(g *grid.Grid, dt float64, backend Backend) (*Simulator, error) {
	return NewSimulatorOpts(g, dt, SimOptions{Backend: backend})
}

// NewSimulatorOpts is NewSimulator with full backend, preconditioner and
// worker control.
func NewSimulatorOpts(g *grid.Grid, dt float64, opts SimOptions) (*Simulator, error) {
	backend := opts.Backend
	if dt <= 0 {
		return nil, fmt.Errorf("pdn: non-positive time step %g", dt)
	}
	n := g.NumNodes()
	s := &Simulator{
		g:       g,
		dt:      dt,
		cOverH:  make([]float64, n),
		padGeff: make([]float64, len(g.Pads)),
		padLh:   make([]float64, len(g.Pads)),
		v:       make([]float64, n),
		padCur:  make([]float64, len(g.Pads)),
		rhs:     make([]float64, n),
	}
	for i, c := range g.Caps {
		s.cOverH[i] = c / dt
	}
	for p, pad := range g.Pads {
		lh := pad.L / dt
		s.padLh[p] = lh
		s.padGeff[p] = 1 / (pad.R + lh)
	}
	if backend == Auto {
		backend = chooseBackend(g)
	}
	s.backend = backend
	switch backend {
	case Banded:
		a := banded.NewSymBanded(n, g.Cfg.NX)
		for i := range s.cOverH {
			a.Add(i, i, s.cOverH[i])
		}
		for _, e := range g.Edges {
			a.Add(e.A, e.A, e.G)
			a.Add(e.B, e.B, e.G)
			a.Add(e.A, e.B, -e.G)
		}
		for p, pad := range g.Pads {
			a.Add(pad.Node, pad.Node, s.padGeff[p])
		}
		chol, err := banded.Factor(a)
		if err != nil {
			return nil, fmt.Errorf("pdn: system matrix not SPD: %w", err)
		}
		s.solver = bandedSolver{chol: chol}
	case Sparse:
		sys, err := newSparseSystem(g, s.stepDiag(), opts.Precond)
		if err != nil {
			return nil, err
		}
		solver, err := newSparseSolver(sys, opts)
		if err != nil {
			return nil, err
		}
		s.solver = solver
	default:
		return nil, fmt.Errorf("pdn: unknown backend %v", backend)
	}
	s.Reset()
	return s, nil
}

// Backend reports which solver path Step uses (never Auto: the automatic
// choice is resolved at construction).
func (s *Simulator) Backend() Backend { return s.backend }

// stepDiag accumulates the fully summed diagonal of the backward-Euler
// system matrix: C/h + mesh conductance degree + effective pad conductance.
func (s *Simulator) stepDiag() []float64 {
	diag := make([]float64, len(s.cOverH))
	copy(diag, s.cOverH)
	for _, e := range s.g.Edges {
		diag[e.A] += e.G
		diag[e.B] += e.G
	}
	for p, pad := range s.g.Pads {
		diag[pad.Node] += s.padGeff[p]
	}
	return diag
}

// assembleSystemCSR builds the symmetric system matrix directly in CSR
// form: diag supplies the fully accumulated diagonal and every edge
// contributes −G at (A,B) and (B,A). Direct assembly sidesteps the
// map-based Triplet accumulator, which is far too slow for million-node
// meshes.
func assembleSystemCSR(g *grid.Grid, diag []float64) *sparse.CSR {
	n := g.NumNodes()
	rowPtr := make([]int, n+1)
	for i := range diag {
		rowPtr[i+1] = 1 // diagonal
	}
	for _, e := range g.Edges {
		rowPtr[e.A+1]++
		rowPtr[e.B+1]++
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	nnz := rowPtr[n]
	colIdx := make([]int, nnz)
	val := make([]float64, nnz)
	next := make([]int, n)
	copy(next, rowPtr[:n])
	put := func(i, j int, v float64) {
		colIdx[next[i]] = j
		val[next[i]] = v
		next[i]++
	}
	for i, d := range diag {
		put(i, i, d)
	}
	for _, e := range g.Edges {
		put(e.A, e.B, -e.G)
		put(e.B, e.A, -e.G)
	}
	// Each row holds at most a diagonal plus four mesh neighbors; insertion
	// sort restores the ascending column order NewCSR requires.
	for i := 0; i < n; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		for a := lo + 1; a < hi; a++ {
			c, v := colIdx[a], val[a]
			b := a
			for b > lo && colIdx[b-1] > c {
				colIdx[b], val[b] = colIdx[b-1], val[b-1]
				b--
			}
			colIdx[b], val[b] = c, v
		}
	}
	return sparse.NewCSR(n, n, rowPtr, colIdx, val)
}

// DT returns the simulation time step in seconds.
func (s *Simulator) DT() float64 { return s.dt }

// StepCount returns the number of steps taken since the last Reset.
func (s *Simulator) StepCount() int { return s.t }

// Reset returns the simulator to the quiescent state: every node at VDD,
// no pad current flowing.
func (s *Simulator) Reset() {
	for i := range s.v {
		s.v[i] = s.g.Cfg.VDD
	}
	for i := range s.padCur {
		s.padCur[i] = 0
	}
	s.t = 0
}

// Step advances one time step with loads[i] amps drawn from node i, and
// returns the node voltages. The returned slice is the simulator's internal
// state: it is valid only until the next Step or Reset call, and must not be
// modified.
func (s *Simulator) Step(loads []float64) []float64 {
	n := len(s.v)
	if len(loads) != n {
		panic(fmt.Sprintf("pdn: loads length %d, want %d", len(loads), n))
	}
	vdd := s.g.Cfg.VDD
	for i := 0; i < n; i++ {
		s.rhs[i] = s.cOverH[i]*s.v[i] - loads[i]
	}
	for p, pad := range s.g.Pads {
		s.rhs[pad.Node] += s.padGeff[p] * (vdd + s.padLh[p]*s.padCur[p])
	}
	s.solver.solveInto(s.v, s.rhs)
	for p, pad := range s.g.Pads {
		s.padCur[p] = s.padGeff[p] * (vdd - s.v[pad.Node] + s.padLh[p]*s.padCur[p])
	}
	s.t++
	return s.v
}

// BlockLoader spreads per-block currents onto mesh nodes: block b's draw
// divides equally among grid.BlockNodes[b].
type BlockLoader struct {
	g     *grid.Grid
	loads []float64
}

// NewBlockLoader returns a loader for g.
func NewBlockLoader(g *grid.Grid) *BlockLoader {
	return &BlockLoader{g: g, loads: make([]float64, g.NumNodes())}
}

// Loads converts block currents (amps, indexed by block ID) to node loads.
// The returned slice is reused across calls.
func (l *BlockLoader) Loads(blockCurrents []float64) []float64 {
	if len(blockCurrents) != len(l.g.BlockNodes) {
		panic(fmt.Sprintf("pdn: %d block currents, grid has %d blocks", len(blockCurrents), len(l.g.BlockNodes)))
	}
	for i := range l.loads {
		l.loads[i] = 0
	}
	for b, cur := range blockCurrents {
		nodes := l.g.BlockNodes[b]
		share := cur / float64(len(nodes))
		for _, nd := range nodes {
			l.loads[nd] += share
		}
	}
	return l.loads
}

// Settle initializes the simulator state to the DC operating point for the
// given node loads: node voltages from the resistive solve (inductors
// shorted) and pad currents carrying their steady-state share. Starting a
// transient from Settle avoids the unphysical inrush collapse of switching
// a fully loaded chip onto an unenergized package.
func (s *Simulator) Settle(loads []float64) error {
	v, err := StaticSolve(s.g, loads)
	if err != nil {
		return err
	}
	copy(s.v, v)
	for p, pad := range s.g.Pads {
		s.padCur[p] = (s.g.Cfg.VDD - v[pad.Node]) / pad.R
	}
	s.t = 0
	return nil
}

// Run integrates steps time steps, settling first at the DC operating point
// of the first step's currents. For each step it calls currentAt(t) to get
// per-block currents, then onStep(t, v) with the resulting node voltages
// (the slice obeys the same aliasing rule as Step). onStep may be nil when
// only final state matters.
func (s *Simulator) Run(steps int, currentAt func(t int) []float64, onStep func(t int, v []float64)) error {
	loader := NewBlockLoader(s.g)
	if steps > 0 {
		if err := s.Settle(loader.Loads(currentAt(0))); err != nil {
			return err
		}
	}
	for t := 0; t < steps; t++ {
		v := s.Step(loader.Loads(currentAt(t)))
		if onStep != nil {
			onStep(t, v)
		}
	}
	return nil
}

// StaticSolve computes the DC operating point for constant node loads
// (inductors shorted, capacitors open) using the independent conjugate-
// gradient path. It is the cross-check oracle for the transient engine: a
// constant-load transient must settle onto this solution.
func StaticSolve(g *grid.Grid, loads []float64) ([]float64, error) {
	n := g.NumNodes()
	if len(loads) != n {
		panic(fmt.Sprintf("pdn: loads length %d, want %d", len(loads), n))
	}
	diag := make([]float64, n)
	for _, e := range g.Edges {
		diag[e.A] += e.G
		diag[e.B] += e.G
	}
	b := make([]float64, n)
	for i, ld := range loads {
		b[i] = -ld
	}
	for _, pad := range g.Pads {
		gdc := 1 / pad.R // inductor is a short at DC
		diag[pad.Node] += gdc
		b[pad.Node] += gdc * g.Cfg.VDD
	}
	a := assembleSystemCSR(g, diag)
	opt := sparse.CGOptions{Tol: 1e-12}
	if ic, err := sparse.NewIC(a); err == nil {
		opt.Precond = ic // IC(0) always exists for this M-matrix; Jacobi fallback just in case
	}
	x, _, err := sparse.SolveCG(a, b, nil, opt)
	if err != nil {
		return nil, fmt.Errorf("pdn: static solve: %w", err)
	}
	return x, nil
}

// WorstDroop tracks the minimum voltage seen at every node across a run;
// the paper uses it to pick each block's noise-critical node.
type WorstDroop struct {
	Min []float64
}

// NewWorstDroop returns a tracker for n nodes, initialized to +Inf.
func NewWorstDroop(n int) *WorstDroop {
	w := &WorstDroop{Min: make([]float64, n)}
	for i := range w.Min {
		w.Min[i] = math.Inf(1)
	}
	return w
}

// Observe folds one voltage snapshot into the tracker.
func (w *WorstDroop) Observe(v []float64) {
	for i, x := range v {
		if x < w.Min[i] {
			w.Min[i] = x
		}
	}
}

// CriticalNode returns the node among nodes with the lowest observed
// voltage — the block's noise-critical node.
func (w *WorstDroop) CriticalNode(nodes []int) int {
	best, bestV := -1, math.Inf(1)
	for _, nd := range nodes {
		if w.Min[nd] < bestV {
			best, bestV = nd, w.Min[nd]
		}
	}
	if best < 0 {
		panic("pdn: CriticalNode called with empty node list")
	}
	return best
}
