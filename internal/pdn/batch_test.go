package pdn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"voltsense/internal/sparse"
)

// benchLoads synthesizes m distinct load sequences over steps time steps
// for an n-node grid, deterministic per column.
func benchLoads(n, m, steps int, seed int64) [][][]float64 {
	out := make([][][]float64, m)
	for c := 0; c < m; c++ {
		rng := rand.New(rand.NewSource(seed + int64(c)))
		cols := make([][]float64, steps)
		for t := 0; t < steps; t++ {
			ld := make([]float64, n)
			for i := 0; i < n; i += 7 {
				ld[i] = 0.02 * rng.Float64() * float64(c+1)
			}
			cols[t] = ld
		}
		out[c] = cols
	}
	return out
}

// TestBatchMatchesLoopedSimulators: the core batch contract — a
// BatchSimulator's columns are bitwise identical to independent Simulators
// stepped with the same loads, on both backends.
func TestBatchMatchesLoopedSimulators(t *testing.T) {
	g := smallGrid()
	n := g.NumNodes()
	const m, steps = 3, 40
	loads := benchLoads(n, m, steps, 7)
	for _, backend := range []Backend{Banded, Sparse} {
		opts := SimOptions{Backend: backend}
		bs, err := NewBatchSimulator(g, testDT, m, opts)
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		sims := make([]*Simulator, m)
		for c := range sims {
			if sims[c], err = NewSimulatorOpts(g, testDT, opts); err != nil {
				t.Fatalf("%v: %v", backend, err)
			}
		}
		stepLoads := make([][]float64, m)
		for step := 0; step < steps; step++ {
			for c := 0; c < m; c++ {
				stepLoads[c] = loads[c][step]
			}
			vs := bs.Step(stepLoads)
			for c := 0; c < m; c++ {
				want := sims[c].Step(stepLoads[c])
				for i := range want {
					if vs[c][i] != want[i] {
						t.Fatalf("%v step %d col %d node %d: batch %v, single %v (not bitwise identical)",
							backend, step, c, i, vs[c][i], want[i])
					}
				}
			}
		}
	}
}

// TestBatchSettleMatchesSimulator: SettleColumn reproduces Simulator.Settle
// bitwise.
func TestBatchSettleMatchesSimulator(t *testing.T) {
	g := smallGrid()
	n := g.NumNodes()
	loads := make([]float64, n)
	for i := 0; i < n; i += 5 {
		loads[i] = 0.01
	}
	bs, err := NewBatchSimulator(g, testDT, 2, SimOptions{Backend: Sparse})
	if err != nil {
		t.Fatal(err)
	}
	if err := bs.SettleColumn(1, loads); err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulatorBackend(g, testDT, Sparse)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(loads); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if bs.vCols[1][i] != s.v[i] {
			t.Fatalf("node %d: batch settle %v, simulator %v", i, bs.vCols[1][i], s.v[i])
		}
	}
	for p := range g.Pads {
		if bs.padCurCols[1][p] != s.padCur[p] {
			t.Fatalf("pad %d: batch current %v, simulator %v", p, bs.padCurCols[1][p], s.padCur[p])
		}
	}
}

// TestStepInvariantUnderSparseWorkers: transient voltages from the sparse
// backend are bitwise identical across worker bounds.
func TestStepInvariantUnderSparseWorkers(t *testing.T) {
	g := smallGrid()
	n := g.NumNodes()
	const steps = 30
	loads := benchLoads(n, 1, steps, 13)[0]
	var ref [][]float64
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		s, err := NewSimulatorOpts(g, testDT, SimOptions{Backend: Sparse, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		got := make([][]float64, steps)
		for step := 0; step < steps; step++ {
			got[step] = append([]float64(nil), s.Step(loads[step])...)
		}
		if ref == nil {
			ref = got
			continue
		}
		for step := range ref {
			for i := range ref[step] {
				if got[step][i] != ref[step][i] {
					t.Fatalf("workers=%d step %d node %d: %v, want %v (not bitwise identical)",
						w, step, i, got[step][i], ref[step][i])
				}
			}
		}
	}
}

// TestPrecondsMatchBandedTransient: every sparse preconditioner family
// tracks the banded oracle within the 1e-9 golden budget on a transient
// with a load shift.
func TestPrecondsMatchBandedTransient(t *testing.T) {
	g := smallGrid()
	n := g.NumNodes()
	const steps = 120
	loads := benchLoads(n, 1, steps, 29)[0]
	ref := make([][]float64, steps)
	sb, err := NewSimulatorBackend(g, testDT, Banded)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < steps; step++ {
		ref[step] = append([]float64(nil), sb.Step(loads[step])...)
	}
	for _, pc := range []sparse.Precond{sparse.PrecondIC, sparse.PrecondJacobi, sparse.PrecondCheby} {
		s, err := NewSimulatorOpts(g, testDT, SimOptions{Backend: Sparse, Precond: pc})
		if err != nil {
			t.Fatalf("%v: %v", pc, err)
		}
		worst := 0.0
		for step := 0; step < steps; step++ {
			v := s.Step(loads[step])
			for i := range v {
				if d := math.Abs(v[i] - ref[step][i]); d > worst {
					worst = d
				}
			}
		}
		if worst > 1e-9 {
			t.Fatalf("%v: diverges from banded by %g > 1e-9", pc, worst)
		}
		t.Logf("%v: max |Δv| = %g", pc, worst)
	}
}

// TestBatchRunAllMatchesRun: RunAll (settle + step + callbacks) reproduces
// per-column Simulator.Run bitwise.
func TestBatchRunAllMatchesRun(t *testing.T) {
	g := smallGrid()
	nb := len(g.BlockNodes)
	const m, steps = 2, 25
	currents := make([][][]float64, m)
	for c := 0; c < m; c++ {
		rng := rand.New(rand.NewSource(100 + int64(c)))
		currents[c] = make([][]float64, steps)
		for t := 0; t < steps; t++ {
			cur := make([]float64, nb)
			for b := range cur {
				cur[b] = 0.05 * rng.Float64()
			}
			currents[c][t] = cur
		}
	}
	opts := SimOptions{Backend: Sparse}
	bs, err := NewBatchSimulator(g, testDT, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotV := make([][][]float64, m)
	for c := range gotV {
		gotV[c] = make([][]float64, steps)
	}
	err = bs.RunAll(steps,
		func(c, t int) []float64 { return currents[c][t] },
		func(c, t int, v []float64) { gotV[c][t] = append([]float64(nil), v...) })
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < m; c++ {
		s, err := NewSimulatorOpts(g, testDT, opts)
		if err != nil {
			t.Fatal(err)
		}
		step := 0
		err = s.Run(steps,
			func(t int) []float64 { return currents[c][t] },
			func(t int, v []float64) {
				for i := range v {
					if gotV[c][t][i] != v[i] {
						panic("mismatch")
					}
				}
				step++
			})
		if err != nil {
			t.Fatal(err)
		}
		if step != steps {
			t.Fatalf("col %d: compared %d steps, want %d", c, step, steps)
		}
	}
}

// TestBatchSimulatorRejectsBadArgs covers the constructor's validation.
func TestBatchSimulatorRejectsBadArgs(t *testing.T) {
	g := smallGrid()
	if _, err := NewBatchSimulator(g, 0, 2, SimOptions{}); err == nil {
		t.Fatal("zero dt accepted")
	}
	if _, err := NewBatchSimulator(g, testDT, 0, SimOptions{}); err == nil {
		t.Fatal("zero nrhs accepted")
	}
	if _, err := NewBatchSimulator(g, testDT, 2, SimOptions{Backend: Backend(99)}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestResolveBackend pins the exported resolution rule.
func TestResolveBackend(t *testing.T) {
	g := smallGrid()
	if got := ResolveBackend(g, Auto); got != Banded {
		t.Fatalf("narrow mesh resolved to %v, want banded", got)
	}
	if got := ResolveBackend(g, Sparse); got != Sparse {
		t.Fatalf("explicit sparse resolved to %v", got)
	}
}
