package pdn

import (
	"fmt"

	"voltsense/internal/banded"
	"voltsense/internal/grid"
	"voltsense/internal/sparse"
)

// BatchSimulator integrates many independent transients — same grid, same
// time step, different load sequences — in lock step. On the sparse backend
// every time step solves all columns with one blocked multi-RHS PCG
// (sparse.BatchCGSolver), so the matrix and IC factor stream through memory
// once per iteration instead of once per transient: that amortization is
// the dominant win at mesh sizes past cache. On the banded backend columns
// share the one Cholesky factorization and loop its triangular solves.
//
// Column results are bitwise identical to running len-many independent
// Simulators with the same options: the batch PCG freezes converged
// columns exactly where the single-RHS solve would return, and the rhs and
// pad-state updates are per-column scalar code either way.
type BatchSimulator struct {
	g       *grid.Grid
	dt      float64
	m       int
	backend Backend

	cOverH  []float64
	padGeff []float64
	padLh   []float64

	vCols      [][]float64 // node voltages per column (state)
	padCurCols [][]float64 // pad branch currents per column (state)
	rhsCols    [][]float64 // scratch
	t          int

	// sparse path: interleaved permuted buffers for the batch solver
	batch  *sparse.BatchCGSolver
	perm   []int
	xI, bI []float64

	// banded path
	chol *banded.CholFactor
}

// NewBatchSimulator assembles one shared backward-Euler system for nrhs
// lock-stepped transients on g. Options have the same meaning as
// NewSimulatorOpts.
func NewBatchSimulator(g *grid.Grid, dt float64, nrhs int, opts SimOptions) (*BatchSimulator, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("pdn: non-positive time step %g", dt)
	}
	if nrhs < 1 {
		return nil, fmt.Errorf("pdn: batch simulator needs nrhs >= 1, got %d", nrhs)
	}
	n := g.NumNodes()
	s := &BatchSimulator{
		g: g, dt: dt, m: nrhs,
		cOverH:  make([]float64, n),
		padGeff: make([]float64, len(g.Pads)),
		padLh:   make([]float64, len(g.Pads)),
	}
	for i, c := range g.Caps {
		s.cOverH[i] = c / dt
	}
	for p, pad := range g.Pads {
		lh := pad.L / dt
		s.padLh[p] = lh
		s.padGeff[p] = 1 / (pad.R + lh)
	}
	s.vCols = make([][]float64, nrhs)
	s.padCurCols = make([][]float64, nrhs)
	s.rhsCols = make([][]float64, nrhs)
	for c := 0; c < nrhs; c++ {
		s.vCols[c] = make([]float64, n)
		s.padCurCols[c] = make([]float64, len(g.Pads))
		s.rhsCols[c] = make([]float64, n)
	}
	backend := opts.Backend
	if backend == Auto {
		backend = chooseBackend(g)
	}
	s.backend = backend
	diag := make([]float64, n)
	copy(diag, s.cOverH)
	for _, e := range g.Edges {
		diag[e.A] += e.G
		diag[e.B] += e.G
	}
	for p, pad := range g.Pads {
		diag[pad.Node] += s.padGeff[p]
	}
	switch backend {
	case Banded:
		a := banded.NewSymBanded(n, g.Cfg.NX)
		for i, d := range diag {
			a.Add(i, i, d)
		}
		for _, e := range g.Edges {
			a.Add(e.A, e.B, -e.G)
		}
		chol, err := banded.Factor(a)
		if err != nil {
			return nil, fmt.Errorf("pdn: system matrix not SPD: %w", err)
		}
		s.chol = chol
	case Sparse:
		sys, err := newSparseSystem(g, diag, opts.Precond)
		if err != nil {
			return nil, err
		}
		batch, err := sparse.NewBatchCGSolver(sys.a, nrhs, sparse.CGOptions{
			Tol: stepCGTol, Precond: sys.pre, Workers: opts.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("pdn: sparse batch solver: %w", err)
		}
		s.batch = batch
		s.perm = sys.perm
		s.xI = make([]float64, n*nrhs)
		s.bI = make([]float64, n*nrhs)
	default:
		return nil, fmt.Errorf("pdn: unknown backend %v", backend)
	}
	s.Reset()
	return s, nil
}

// NRHS returns the number of lock-stepped transients.
func (s *BatchSimulator) NRHS() int { return s.m }

// Backend reports the resolved solver path.
func (s *BatchSimulator) Backend() Backend { return s.backend }

// DT returns the simulation time step in seconds.
func (s *BatchSimulator) DT() float64 { return s.dt }

// StepCount returns the number of steps taken since the last Reset.
func (s *BatchSimulator) StepCount() int { return s.t }

// Reset returns every column to the quiescent state.
func (s *BatchSimulator) Reset() {
	for c := 0; c < s.m; c++ {
		for i := range s.vCols[c] {
			s.vCols[c][i] = s.g.Cfg.VDD
		}
		for i := range s.padCurCols[c] {
			s.padCurCols[c][i] = 0
		}
	}
	s.t = 0
}

// SettleColumn initializes column c at the DC operating point of the given
// node loads, exactly like Simulator.Settle.
func (s *BatchSimulator) SettleColumn(c int, loads []float64) error {
	v, err := StaticSolve(s.g, loads)
	if err != nil {
		return err
	}
	copy(s.vCols[c], v)
	for p, pad := range s.g.Pads {
		s.padCurCols[c][p] = (s.g.Cfg.VDD - v[pad.Node]) / pad.R
	}
	return nil
}

// Step advances every column one time step; loads[c] holds the node loads
// of column c. It returns the per-column node voltages; the slices are the
// simulator's internal state, valid until the next Step or Reset.
func (s *BatchSimulator) Step(loads [][]float64) [][]float64 {
	if len(loads) != s.m {
		panic(fmt.Sprintf("pdn: %d load columns, want %d", len(loads), s.m))
	}
	n := s.g.NumNodes()
	vdd := s.g.Cfg.VDD
	for c := 0; c < s.m; c++ {
		if len(loads[c]) != n {
			panic(fmt.Sprintf("pdn: column %d loads length %d, want %d", c, len(loads[c]), n))
		}
		v, rhs, ld := s.vCols[c], s.rhsCols[c], loads[c]
		for i := 0; i < n; i++ {
			rhs[i] = s.cOverH[i]*v[i] - ld[i]
		}
		for p, pad := range s.g.Pads {
			rhs[pad.Node] += s.padGeff[p] * (vdd + s.padLh[p]*s.padCurCols[c][p])
		}
	}
	if s.chol != nil {
		for c := 0; c < s.m; c++ {
			s.chol.SolveInto(s.vCols[c], s.rhsCols[c])
		}
	} else {
		m := s.m
		for newI, oldI := range s.perm {
			for c := 0; c < m; c++ {
				s.xI[newI*m+c] = s.vCols[c][oldI]
				s.bI[newI*m+c] = s.rhsCols[c][oldI]
			}
		}
		if _, err := s.batch.SolveBatch(s.xI, s.bI); err != nil {
			panic(fmt.Sprintf("pdn: sparse batch step solve failed: %v", err))
		}
		for newI, oldI := range s.perm {
			for c := 0; c < m; c++ {
				s.vCols[c][oldI] = s.xI[newI*m+c]
			}
		}
	}
	for c := 0; c < s.m; c++ {
		for p, pad := range s.g.Pads {
			s.padCurCols[c][p] = s.padGeff[p] * (vdd - s.vCols[c][pad.Node] + s.padLh[p]*s.padCurCols[c][p])
		}
	}
	s.t++
	return s.vCols
}

// RunAll integrates steps time steps for every column, settling each column
// first at the DC point of its first step's currents. currentAt(c, t) must
// return column c's per-block currents at step t; onStep(c, t, v) receives
// each column's node voltages after every step (same aliasing rule as
// Step). onStep may be nil.
func (s *BatchSimulator) RunAll(steps int, currentAt func(c, t int) []float64, onStep func(c, t int, v []float64)) error {
	loaders := make([]*BlockLoader, s.m)
	loads := make([][]float64, s.m)
	for c := range loaders {
		loaders[c] = NewBlockLoader(s.g)
	}
	if steps > 0 {
		for c := 0; c < s.m; c++ {
			if err := s.SettleColumn(c, loaders[c].Loads(currentAt(c, 0))); err != nil {
				return err
			}
		}
		s.t = 0
	}
	for t := 0; t < steps; t++ {
		for c := 0; c < s.m; c++ {
			loads[c] = loaders[c].Loads(currentAt(c, t))
		}
		vs := s.Step(loads)
		if onStep != nil {
			for c := 0; c < s.m; c++ {
				onStep(c, t, vs[c])
			}
		}
	}
	return nil
}
