package socp

import (
	"math"
	"math/rand"
	"testing"

	"voltsense/internal/lasso"
	"voltsense/internal/mat"
)

func randn(rng *rand.Rand, r, c int) *mat.Matrix {
	m := mat.Zeros(r, c)
	d := m.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return m
}

func budget(norms []float64) float64 {
	s := 0.0
	for _, n := range norms {
		s += n
	}
	return s
}

func TestSolveRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := randn(rng, 6, 120)
	g := randn(rng, 3, 120)
	for _, lambda := range []float64{0.5, 1.5, 4} {
		r, err := SolveGroupLasso(z, g, lambda, Options{})
		if err != nil {
			t.Fatalf("lambda=%v: %v", lambda, err)
		}
		if b := budget(r.GroupNorms); b > lambda*(1+1e-6) {
			t.Fatalf("lambda=%v: budget %v violates constraint", lambda, b)
		}
	}
}

// TestAgreesWithFISTA is the point of the package: the interior-point SOCP
// path and the projected-gradient path must land on the same optimum.
func TestAgreesWithFISTA(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 5+rng.Intn(4), 2+rng.Intn(3), 150
		z := randn(rng, m, n)
		truth := mat.Zeros(k, m)
		for _, j := range []int{0, 2} {
			for i := 0; i < k; i++ {
				truth.Set(i, j, 1+rng.Float64())
			}
		}
		g := mat.Add(mat.Mul(truth, z), mat.Scale(0.05, randn(rng, k, n)))
		lambda := 1.5

		ip, err := SolveGroupLasso(z, g, lambda, Options{})
		if err != nil {
			t.Fatalf("seed %d: socp: %v", seed, err)
		}
		fo, err := lasso.SolveConstrained(z, g, lambda, lasso.Options{MaxIter: 20000, Tol: 1e-10})
		if err != nil {
			t.Fatalf("seed %d: fista: %v", seed, err)
		}
		// Same objective value (residual), allowing interior-point slack.
		rFO := math.Sqrt(2 * fo.Objective)
		if math.Abs(ip.Residual-rFO) > 1e-3*(1+rFO) {
			t.Errorf("seed %d: residual %v (socp) vs %v (fista)", seed, ip.Residual, rFO)
		}
		// Same coefficients.
		if !mat.Equalish(ip.Beta, fo.Beta, 5e-3) {
			t.Errorf("seed %d: solutions differ beyond tolerance", seed)
		}
	}
}

func TestLooseBudgetReachesOLS(t *testing.T) {
	// With a budget far above the unconstrained optimum the SOCP solution
	// must match plain least squares.
	rng := rand.New(rand.NewSource(9))
	m, k, n := 4, 2, 200
	z := randn(rng, m, n)
	truth := randn(rng, k, m)
	g := mat.Mul(truth, z)
	r, err := SolveGroupLasso(z, g, 1000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equalish(r.Beta, truth, 1e-2) {
		t.Error("loose-budget SOCP did not recover the exact model")
	}
	if r.Residual > 1e-2 {
		t.Errorf("residual %v on noiseless data", r.Residual)
	}
}

func TestSelectionMatchesPaperExample(t *testing.T) {
	// The Section 2.3 example through the interior-point path: g1=g2=z1,
	// λ=1 → only candidate 1 active, coefficients biased to ≈ 1/√2.
	rng := rand.New(rand.NewSource(3))
	n := 300
	z := mat.Zeros(2, n)
	g := mat.Zeros(2, n)
	for j := 0; j < n; j++ {
		z1 := rng.NormFloat64()
		z.Set(0, j, z1)
		z.Set(1, j, rng.NormFloat64())
		g.Set(0, j, z1)
		g.Set(1, j, z1)
	}
	r, err := SolveGroupLasso(z, g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.GroupNorms[0] < 0.9 || r.GroupNorms[1] > 1e-2 {
		t.Fatalf("norms = %v, want candidate 0 ≈ 1 and candidate 1 ≈ 0", r.GroupNorms)
	}
	want := 1 / math.Sqrt2
	if math.Abs(r.Beta.At(0, 0)-want) > 0.05 || math.Abs(r.Beta.At(1, 0)-want) > 0.05 {
		t.Errorf("β column 0 = [%v %v], want ≈ %v each", r.Beta.At(0, 0), r.Beta.At(1, 0), want)
	}
}

// TestInteriorPointDustExplainsFigure1 verifies the claim EXPERIMENTS.md
// makes about the paper's Figure 1: an interior-point solver leaves the
// rejected groups at small-but-nonzero norms (the 1e-5..1e-10 cloud in the
// paper's log plot), unlike the exactly-sparse first-order iterates. The
// selection threshold T = 1e-3 separates the two populations regardless.
func TestInteriorPointDustExplainsFigure1(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, k, n := 8, 3, 200
	z := randn(rng, m, n)
	truth := mat.Zeros(k, m)
	for _, j := range []int{1, 5} {
		for i := 0; i < k; i++ {
			truth.Set(i, j, 1+rng.Float64())
		}
	}
	g := mat.Add(mat.Mul(truth, z), mat.Scale(0.02, randn(rng, k, n)))
	r, err := SolveGroupLasso(z, g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const threshold = 1e-3
	selected, dust := 0, 0
	for j, nv := range r.GroupNorms {
		planted := j == 1 || j == 5
		if planted {
			if nv < 10*threshold {
				t.Errorf("planted group %d has norm %v, not clearly selected", j, nv)
			}
			selected++
			continue
		}
		if nv == 0 {
			t.Errorf("rejected group %d is exactly zero; interior points stay strictly inside the cone", j)
		}
		if nv > threshold {
			t.Errorf("rejected group %d has norm %v above T", j, nv)
		}
		dust++
	}
	if selected != 2 || dust != m-2 {
		t.Fatalf("populations: %d selected, %d dust", selected, dust)
	}
}

func TestIterationCountReported(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	z := randn(rng, 3, 80)
	g := randn(rng, 2, 80)
	r, err := SolveGroupLasso(z, g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Iters <= 0 {
		t.Fatal("no Newton iterations recorded")
	}
}

func TestPanicsOnBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z := randn(rng, 3, 10)
	g := randn(rng, 2, 10)
	for _, fn := range []func(){
		func() { SolveGroupLasso(z, randn(rng, 2, 11), 1, Options{}) },
		func() { SolveGroupLasso(z, g, 0, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
