// Package socp implements the solver the paper actually names: Eq. 12
// "can be re-formulated as a second-order cone programming problem, and then
// efficiently solved by interior point method [18]" (Lobo et al. 1998).
//
// The reformulation introduces an epigraph variable t for the residual norm
// and per-group bounds s_m:
//
//	minimize    t
//	subject to  ‖vec(G − βZ)‖₂ ≤ t
//	            ‖β_m‖₂ ≤ s_m          m = 1..M
//	            Σ_m s_m ≤ λ
//
// and this package solves it with a primal log-barrier interior-point
// method: for decreasing barrier weights, Newton steps minimize
//
//	t/µ − log(t² − ‖r‖²) − Σ_m log(s_m² − ‖β_m‖²) − log(λ − Σ s_m)
//
// The Hessian is dense in the KM+M+1 variables, so this solver is meant for
// moderate instances; the first-order solvers in package lasso are the
// production path, and the test suite uses this one as an independent
// oracle to validate them — exactly the role an interior-point reference
// implementation plays in a solver stack.
package socp

import (
	"errors"
	"fmt"
	"math"

	"voltsense/internal/mat"
)

// ErrNumerical is returned when the barrier method cannot make progress
// (line search fails inside the cone).
var ErrNumerical = errors.New("socp: numerical failure in interior-point iteration")

// Options tunes the barrier method. Zero values select defaults.
type Options struct {
	OuterIter  int     // barrier continuation steps; default 40
	NewtonIter int     // Newton steps per barrier weight; default 50
	Tol        float64 // duality-measure target; default 1e-8
	MuFactor   float64 // barrier weight growth per outer step; default 4
}

func (o Options) withDefaults() Options {
	if o.OuterIter <= 0 {
		o.OuterIter = 40
	}
	if o.NewtonIter <= 0 {
		o.NewtonIter = 50
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MuFactor <= 1 {
		o.MuFactor = 4
	}
	return o
}

// Result is a solved instance.
type Result struct {
	Beta       *mat.Matrix // K-by-M coefficients
	GroupNorms []float64
	Residual   float64 // ‖G − βZ‖_F at the solution
	Iters      int     // total Newton iterations
}

// problem carries the instance and the flattened variable layout:
// x = [vec(β) (K*M, row-major), s (M), t].
//
// The workspace fields at the bottom are preallocated once per solve and
// reused by every Newton step and line-search trial: the barrier Hessian
// alone is (KM+M+1)² and used to be reallocated on every iteration.
type problem struct {
	z, g   *mat.Matrix
	zzt    *mat.Matrix
	gzt    *mat.Matrix
	trGG   float64
	k, m   int
	lambda float64
	n      int     // total variables
	curMu  float64 // barrier weight of the current Newton phase

	bzz   *mat.Matrix // β·ZZᵀ scratch (K-by-M)
	rgrad []float64   // ∇½‖r‖² scratch (K*M)
	grad  []float64   // barrier gradient scratch (n)
	hess  *mat.Matrix // barrier Hessian scratch (n-by-n)
	dv    []float64   // ∇d scratch for the residual cone (n)
	trial []float64   // line-search trial point (n)
}

// newProblem assembles the Gram statistics and the reusable solver
// workspaces for one instance.
func newProblem(z, g *mat.Matrix, lambda float64) *problem {
	k, m := g.Rows(), z.Rows()
	fro := g.FrobeniusNorm()
	n := k*m + m + 1
	return &problem{
		z: z, g: g,
		zzt: mat.MulT(z, z), gzt: mat.MulT(g, z), trGG: fro * fro,
		k: k, m: m, lambda: lambda, n: n,
		bzz:   mat.Zeros(k, m),
		rgrad: make([]float64, k*m),
		grad:  make([]float64, n),
		hess:  mat.Zeros(n, n),
		dv:    make([]float64, n),
		trial: make([]float64, n),
	}
}

func (p *problem) betaOf(x []float64) *mat.Matrix {
	d := make([]float64, p.k*p.m)
	copy(d, x[:p.k*p.m])
	return mat.New(p.k, p.m, d)
}

// resSq returns ‖G − βZ‖_F² and the gradient of ½ of it w.r.t. vec(β)
// (row-major K×M), all from Gram statistics. The returned slice is the
// shared p.rgrad workspace: it is valid until the next resSq call.
func (p *problem) resSq(x []float64) (float64, []float64) {
	km := p.k * p.m
	beta := mat.New(p.k, p.m, x[:km:km])
	mat.MulInto(p.bzz, beta, p.zzt)
	grad := p.rgrad
	cross, quad := 0.0, 0.0
	bd := beta.Data()
	gd := p.gzt.Data()
	qd := p.bzz.Data()
	for i := range bd {
		cross += bd[i] * gd[i]
		quad += bd[i] * qd[i]
		grad[i] = qd[i] - gd[i] // ∇½‖r‖² = βZZᵀ − GZᵀ
	}
	rs := p.trGG - 2*cross + quad
	if rs < 0 {
		rs = 0
	}
	return rs, grad
}

// SolveGroupLasso solves the constrained group lasso via the SOCP barrier
// method. Z is M-by-N, G is K-by-N, lambda > 0 the group-norm budget. The
// Hessian is dense in K*M+M+1 variables: intended for small/medium
// instances (a few thousand variables at most).
func SolveGroupLasso(z, g *mat.Matrix, lambda float64, opt Options) (*Result, error) {
	if z.Cols() != g.Cols() {
		panic(fmt.Sprintf("socp: Z has %d samples, G has %d", z.Cols(), g.Cols()))
	}
	if lambda <= 0 {
		panic(fmt.Sprintf("socp: lambda %v must be positive", lambda))
	}
	opt = opt.withDefaults()
	p := newProblem(z, g, lambda)
	k, m := p.k, p.m
	fro := math.Sqrt(p.trGG)

	// Strictly feasible start: β = 0, s_m = λ/(2M), t = ‖G‖_F + 1.
	x := make([]float64, p.n)
	for j := 0; j < m; j++ {
		x[k*m+j] = lambda / (2 * float64(m))
	}
	x[p.n-1] = fro + 1

	// The barrier has 2 + M cone constraints; the duality gap of the
	// central point at weight µ is (M+2)/µ.
	mu := 1.0
	totalNewton := 0
	for outer := 0; outer < opt.OuterIter; outer++ {
		for it := 0; it < opt.NewtonIter; it++ {
			totalNewton++
			grad, hess, err := p.derivatives(x, mu)
			if err != nil {
				return nil, err
			}
			chol, err := mat.FactorCholesky(hess)
			if err != nil {
				// Regularize and retry once: barrier Hessians go
				// ill-conditioned near cone boundaries.
				for i := 0; i < p.n; i++ {
					hess.Set(i, i, hess.At(i, i)+1e-9*(1+hess.At(i, i)))
				}
				chol, err = mat.FactorCholesky(hess)
				if err != nil {
					return nil, fmt.Errorf("socp: %w", ErrNumerical)
				}
			}
			step := chol.Solve(grad)
			// Newton decrement: converged at this barrier weight when tiny,
			// checked before the line search (at the central point no
			// strict decrease exists).
			dec := 0.0
			for i := range step {
				dec += step[i] * grad[i]
			}
			if dec/2 < 1e-10 {
				break
			}
			alpha := p.lineSearch(x, step)
			if alpha == 0 {
				// Cannot progress: accept the current central-path point
				// for this weight unless we are far from centrality.
				if dec/2 > 1e-4 {
					return nil, ErrNumerical
				}
				break
			}
			for i := range x {
				x[i] -= alpha * step[i]
			}
		}
		if float64(m+2)/mu < opt.Tol {
			break
		}
		mu *= opt.MuFactor
	}

	beta := p.betaOf(x)
	norms := make([]float64, m)
	for j := 0; j < m; j++ {
		s := 0.0
		for i := 0; i < k; i++ {
			v := beta.At(i, j)
			s += v * v
		}
		norms[j] = math.Sqrt(s)
	}
	rs, _ := p.resSq(x)
	return &Result{Beta: beta, GroupNorms: norms, Residual: math.Sqrt(rs), Iters: totalNewton}, nil
}

// feasible reports whether x is strictly inside every cone.
func (p *problem) feasible(x []float64) bool {
	km := p.k * p.m
	t := x[p.n-1]
	rs, _ := p.resSq(x)
	if t <= 0 || t*t-rs <= 0 {
		return false
	}
	sum := 0.0
	for j := 0; j < p.m; j++ {
		s := x[km+j]
		sum += s
		bn := 0.0
		for i := 0; i < p.k; i++ {
			v := x[i*p.m+j]
			bn += v * v
		}
		if s <= 0 || s*s-bn <= 0 {
			return false
		}
	}
	return sum < p.lambda
}

// value evaluates the barrier objective t/µ' + φ(x) where µ' = 1/mu (we use
// the "t*mu − log ..." scaling below for conditioning).
func (p *problem) value(x []float64, mu float64) float64 {
	km := p.k * p.m
	t := x[p.n-1]
	rs, _ := p.resSq(x)
	v := mu*t - math.Log(t*t-rs)
	sum := 0.0
	for j := 0; j < p.m; j++ {
		s := x[km+j]
		sum += s
		bn := 0.0
		for i := 0; i < p.k; i++ {
			w := x[i*p.m+j]
			bn += w * w
		}
		v -= math.Log(s*s - bn)
	}
	v -= math.Log(p.lambda - sum)
	return v
}

// lineSearch backtracks along -step until strictly feasible and decreasing.
func (p *problem) lineSearch(x, step []float64) float64 {
	f0 := p.value(x, p.curMu)
	alpha := 1.0
	trial := p.trial
	for iter := 0; iter < 60; iter++ {
		for i := range x {
			trial[i] = x[i] - alpha*step[i]
		}
		if p.feasible(trial) && p.value(trial, p.curMu) < f0 {
			return alpha
		}
		alpha /= 2
	}
	return 0
}

// derivatives evaluates the gradient and Hessian of the barrier objective
// at x with weight mu, caching mu for the line search. The returned slices
// are the shared p.grad/p.hess workspaces, valid until the next call.
func (p *problem) derivatives(x []float64, mu float64) ([]float64, *mat.Matrix, error) {
	p.curMu = mu
	if !p.feasible(x) {
		return nil, nil, fmt.Errorf("socp: infeasible iterate: %w", ErrNumerical)
	}
	km := p.k * p.m
	n := p.n
	grad := p.grad
	hess := p.hess
	clear(grad)
	clear(hess.Data())

	// --- Residual cone: −log(t² − ‖r‖²).
	t := x[n-1]
	rs, rGrad := p.resSq(x) // rGrad = ∇½‖r‖² w.r.t. vec(β)
	d := t*t - rs
	// ∂/∂β: (2·∇½‖r‖²·... careful: ∇‖r‖² = 2·rGrad.
	// −log d: grad_β = (2·rGrad)/d ; grad_t = −2t/d.
	for i := 0; i < km; i++ {
		grad[i] += 2 * rGrad[i] / d
	}
	grad[n-1] += mu - 2*t/d

	// Hessian of −log(t²−‖r‖²):
	//   H_ββ = (2·H_{‖r‖²/2}·2)/d ... precisely:
	//   ∇²(−log d) = (∇d ∇dᵀ)/d² − (∇²d)/d, with d = t² − ‖r‖².
	// ∇d over β = −2 rGrad, over t = 2t. ∇²d over β = −2·(ZZᵀ ⊗ I_K) block
	// structure (row-major vec(β)), over t = 2.
	// ∇d ∇dᵀ / d² term:
	dv := p.dv
	clear(dv)
	for i := 0; i < km; i++ {
		dv[i] = -2 * rGrad[i]
	}
	dv[n-1] = 2 * t
	for i := 0; i < n; i++ {
		if dv[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if dv[j] != 0 {
				hess.Set(i, j, hess.At(i, j)+dv[i]*dv[j]/(d*d))
			}
		}
	}
	// −∇²d/d term: for β-block, −(−2·(I_K ⊗ ZZᵀ))/d = +2/d · blockdiag;
	// vec(β) row-major means index (i*m + a): Hessian entry between
	// (i, a) and (i, b) is 2·ZZᵀ[a][b]/d for the same output row i.
	for i := 0; i < p.k; i++ {
		for a := 0; a < p.m; a++ {
			ra := i*p.m + a
			row := p.zzt.Row(a)
			for b := 0; b < p.m; b++ {
				hess.Set(ra, i*p.m+b, hess.At(ra, i*p.m+b)+2*row[b]/d)
			}
		}
	}
	hess.Set(n-1, n-1, hess.At(n-1, n-1)-2/d)

	// --- Group cones: −log(s_m² − ‖β_m‖²).
	for j := 0; j < p.m; j++ {
		s := x[km+j]
		bn := 0.0
		for i := 0; i < p.k; i++ {
			v := x[i*p.m+j]
			bn += v * v
		}
		dj := s*s - bn
		// grads.
		for i := 0; i < p.k; i++ {
			grad[i*p.m+j] += 2 * x[i*p.m+j] / dj
		}
		grad[km+j] += -2 * s / dj
		// ∇dj: β entries −2β, s entry 2s.
		// (∇dj ∇djᵀ)/dj²:
		for i1 := 0; i1 < p.k; i1++ {
			v1 := -2 * x[i1*p.m+j]
			r1 := i1*p.m + j
			for i2 := 0; i2 < p.k; i2++ {
				v2 := -2 * x[i2*p.m+j]
				hess.Set(r1, i2*p.m+j, hess.At(r1, i2*p.m+j)+v1*v2/(dj*dj))
			}
			hess.Set(r1, km+j, hess.At(r1, km+j)+v1*2*s/(dj*dj))
			hess.Set(km+j, r1, hess.At(km+j, r1)+v1*2*s/(dj*dj))
		}
		hess.Set(km+j, km+j, hess.At(km+j, km+j)+4*s*s/(dj*dj))
		// −∇²dj/dj: β diagonal −(−2)/dj = +2/dj; s diagonal −2/dj.
		for i := 0; i < p.k; i++ {
			r := i*p.m + j
			hess.Set(r, r, hess.At(r, r)+2/dj)
		}
		hess.Set(km+j, km+j, hess.At(km+j, km+j)-2/dj)
	}

	// --- Budget: −log(λ − Σ s).
	sum := 0.0
	for j := 0; j < p.m; j++ {
		sum += x[km+j]
	}
	db := p.lambda - sum
	for j := 0; j < p.m; j++ {
		grad[km+j] += 1 / db
		for j2 := 0; j2 < p.m; j2++ {
			hess.Set(km+j, km+j2, hess.At(km+j, km+j2)+1/(db*db))
		}
	}
	return grad, hess, nil
}
