package socp

import (
	"math"
	"math/rand"
	"testing"
)

func TestFiniteDifferenceGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := randn(rng, 3, 40)
	g := randn(rng, 2, 40)
	fro := g.FrobeniusNorm()
	p := newProblem(z, g, 2)
	x := make([]float64, p.n)
	for j := 0; j < 3; j++ {
		x[6+j] = 2.0 / 6
	}
	x[p.n-1] = fro + 1
	// small random beta inside cones
	for i := 0; i < 6; i++ {
		x[i] = 0.01 * rng.NormFloat64()
	}
	mu := 3.0
	// derivatives returns shared workspace slices: copy before the next call.
	gradWS, hessWS, err := p.derivatives(x, mu)
	if err != nil {
		t.Fatal(err)
	}
	grad := append([]float64(nil), gradWS...)
	hess := hessWS.Clone()
	h := 1e-6
	for i := 0; i < p.n; i++ {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[i] += h
		xm[i] -= h
		fd := (p.value(xp, mu) - p.value(xm, mu)) / (2 * h)
		if math.Abs(fd-grad[i]) > 1e-3*(1+math.Abs(fd)) {
			t.Errorf("grad[%d] = %v, fd = %v", i, grad[i], fd)
		}
	}
	// Hessian FD on a few entries
	for i := 0; i < p.n; i++ {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[i] += h
		xm[i] -= h
		gpWS, _, _ := p.derivatives(xp, mu)
		gp := append([]float64(nil), gpWS...)
		gm, _, _ := p.derivatives(xm, mu)
		for j := 0; j < p.n; j++ {
			fd := (gp[j] - gm[j]) / (2 * h)
			if math.Abs(fd-hess.At(i, j)) > 1e-2*(1+math.Abs(fd)) {
				t.Errorf("hess[%d][%d] = %v, fd = %v", i, j, hess.At(i, j), fd)
			}
		}
	}
}
