package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	e, err := FactorSymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, v := range want {
		if math.Abs(e.Values[i]-v) > 1e-12 {
			t.Fatalf("Values = %v, want %v", e.Values, want)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	e, err := FactorSymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-3) > 1e-12 || math.Abs(e.Values[1]-1) > 1e-12 {
		t.Fatalf("Values = %v", e.Values)
	}
	// Eigenvector of 3 is (1,1)/√2 up to sign.
	v0 := e.Vectors.Col(0)
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 1e-10 || v0[0]*v0[1] < 0 {
		t.Fatalf("first eigenvector = %v", v0)
	}
}

// Property: reconstruction A = V Λ Vᵀ and orthonormality VᵀV = I.
func TestSymEigenReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randMatrix(rng, n, n)
		sym := Scale(0.5, Add(a, a.T()))
		e, err := FactorSymEigen(sym)
		if err != nil {
			return false
		}
		lam := Zeros(n, n)
		for i, v := range e.Values {
			lam.Set(i, i, v)
		}
		recon := Mul(Mul(e.Vectors, lam), e.Vectors.T())
		if !Equalish(recon, sym, 1e-8) {
			return false
		}
		return Equalish(Mul(e.Vectors.T(), e.Vectors), Eye(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: eigenvalues sorted descending, and their sum equals the trace.
func TestSymEigenTraceAndOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randMatrix(rng, n, n)
		sym := Scale(0.5, Add(a, a.T()))
		e, err := FactorSymEigen(sym)
		if err != nil {
			return false
		}
		tr := 0.0
		for i := 0; i < n; i++ {
			tr += sym.At(i, i)
		}
		sum := 0.0
		for i, v := range e.Values {
			sum += v
			if i > 0 && v > e.Values[i-1]+1e-12 {
				return false
			}
		}
		return math.Abs(sum-tr) < 1e-9*(1+math.Abs(tr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSymEigenSPDMatchesCholesky(t *testing.T) {
	// All eigenvalues of an SPD matrix are positive.
	rng := rand.New(rand.NewSource(5))
	a := spdMatrix(rng, 8)
	e, err := FactorSymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range e.Values {
		if v <= 0 {
			t.Fatalf("SPD matrix has non-positive eigenvalue %v", v)
		}
	}
}

func TestSymEigenZeroMatrix(t *testing.T) {
	e, err := FactorSymEigen(Zeros(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range e.Values {
		if v != 0 {
			t.Fatalf("Values = %v", e.Values)
		}
	}
}

func TestSymEigenPanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FactorSymEigen(Zeros(2, 3))
}
