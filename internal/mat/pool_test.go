package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSubmitRunsOrReportsFalse: every accepted job runs exactly once, and a
// false return means the caller keeps ownership — running it inline must
// complete the work either way.
func TestSubmitRunsOrReportsFalse(t *testing.T) {
	const jobs = 64
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		job := func() {
			done.Add(1)
			wg.Done()
		}
		if !Submit(job) {
			job() // inline fallback, same rule the kernels use
		}
	}
	wg.Wait()
	if got := done.Load(); got != jobs {
		t.Fatalf("ran %d jobs, want %d", got, jobs)
	}
}

// TestSubmitSingleProc: with GOMAXPROCS=1 the pool is absent or saturated
// almost always; Submit must never block, whatever it returns.
func TestSubmitSingleProc(t *testing.T) {
	if runtime.GOMAXPROCS(0) > 1 {
		t.Skip("pool has workers; covered by TestSubmitRunsOrReportsFalse")
	}
	for i := 0; i < 100; i++ {
		ran := false
		if !Submit(func() { ran = true }) {
			if ran {
				t.Fatal("job ran despite false return")
			}
		}
	}
}

// TestSubmitConcurrent hammers Submit from many goroutines under -race:
// the channel handoff must stay race-free and every job must run once.
func TestSubmitConcurrent(t *testing.T) {
	const clients, perClient = 8, 200
	var done atomic.Int64
	var outer sync.WaitGroup
	for c := 0; c < clients; c++ {
		outer.Add(1)
		go func() {
			defer outer.Done()
			var wg sync.WaitGroup
			for i := 0; i < perClient; i++ {
				wg.Add(1)
				job := func() {
					done.Add(1)
					wg.Done()
				}
				if !Submit(job) {
					job()
				}
			}
			wg.Wait()
		}()
	}
	outer.Wait()
	if got := done.Load(); got != clients*perClient {
		t.Fatalf("ran %d jobs, want %d", got, clients*perClient)
	}
}
