package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDotKnown(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
}

// Property: Cauchy–Schwarz |x·y| <= ||x|| ||y||.
func TestCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Norm2.
func TestTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		sum := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
			sum[i] = x[i] + y[i]
		}
		return Norm2(sum) <= Norm2(x)+Norm2(y)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := StdDev(x); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice Mean/StdDev should be 0")
	}
}

func TestCorrelationBounds(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Correlation(x, x); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self correlation = %v, want 1", got)
	}
	neg := []float64{4, 3, 2, 1}
	if got := Correlation(x, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("anti correlation = %v, want -1", got)
	}
	if got := Correlation(x, []float64{2, 2, 2, 2}); got != 0 {
		t.Fatalf("constant correlation = %v, want 0", got)
	}
}

// Property: correlation is invariant under positive affine transforms.
func TestCorrelationAffineInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		a := 0.5 + r.Float64()*5 // positive scale
		b := r.NormFloat64() * 10
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = a*x[i] + b
		}
		c1 := Correlation(x, y)
		c2 := Correlation(xs, y)
		return math.Abs(c1-c2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAxpyScaleSub(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	dst := make([]float64, 2)
	AxpyTo(dst, 3, x, y)
	if dst[0] != 13 || dst[1] != 26 {
		t.Errorf("AxpyTo = %v, want [13 26]", dst)
	}
	if got := ScaleVec(2, x); got[0] != 2 || got[1] != 4 {
		t.Errorf("ScaleVec = %v", got)
	}
	if got := SubVec(y, x); got[0] != 9 || got[1] != 18 {
		t.Errorf("SubVec = %v", got)
	}
}

func TestStandardizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randMatrix(rng, 5, 40)
	// Give rows distinct scales/offsets.
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = row[j]*float64(i+1) + float64(10*i)
		}
	}
	z, s := Standardize(m)
	for i := 0; i < z.Rows(); i++ {
		row := z.Row(i)
		if mu := Mean(row); math.Abs(mu) > 1e-10 {
			t.Errorf("row %d mean = %v, want 0", i, mu)
		}
		if sd := StdDev(row); math.Abs(sd-1) > 1e-10 {
			t.Errorf("row %d std = %v, want 1", i, sd)
		}
	}
	// Apply followed by Invert is identity on a raw column.
	x := m.Col(3)
	back := s.Invert(s.Apply(x))
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-10 {
			t.Fatalf("Invert(Apply(x))[%d] = %v, want %v", i, back[i], x[i])
		}
	}
}

func TestStandardizeConstantRow(t *testing.T) {
	m := FromRows([][]float64{{5, 5, 5}})
	z, s := Standardize(m)
	for _, v := range z.Row(0) {
		if v != 0 {
			t.Fatalf("constant row should normalize to 0, got %v", v)
		}
	}
	if s.Std[0] != 1 {
		t.Fatalf("constant row Std = %v, want 1", s.Std[0])
	}
}

func TestStandardizationSubset(t *testing.T) {
	s := &Standardization{Mean: []float64{1, 2, 3}, Std: []float64{4, 5, 6}}
	sub := s.Subset([]int{2, 0})
	if sub.Mean[0] != 3 || sub.Std[0] != 6 || sub.Mean[1] != 1 || sub.Std[1] != 4 {
		t.Fatalf("Subset wrong: %+v", sub)
	}
}

func TestRowMeansStds(t *testing.T) {
	m := FromRows([][]float64{{1, 3}, {2, 2}})
	mu := RowMeans(m)
	if mu[0] != 2 || mu[1] != 2 {
		t.Errorf("RowMeans = %v", mu)
	}
	sd := RowStdDevs(m)
	if math.Abs(sd[0]-1) > 1e-12 || sd[1] != 0 {
		t.Errorf("RowStdDevs = %v", sd)
	}
}
