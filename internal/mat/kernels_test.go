package mat

import (
	"math"
	"math/rand"
	"testing"
)

// mulNaive is the pre-kernel reference implementation (plain ikj triple
// loop): the golden oracle the blocked parallel kernels are tested against.
func mulNaive(a, b *Matrix) *Matrix {
	out := Zeros(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out
}

// mulTNaive is the reference a·bᵀ: explicit transpose followed by the naive
// multiply.
func mulTNaive(a, b *Matrix) *Matrix {
	return mulNaive(a, b.T())
}

// kernelShapes exercises the tile boundaries: vectors, degenerate dims, odd
// primes straddling the 4-wide unroll, and sizes crossing the kc/jc tiles.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{7, 1, 5},
	{1, 64, 9},
	{9, 64, 1},
	{3, 4, 5},
	{5, 5, 5},
	{17, 33, 29},
	{31, 257, 63},
	{2, 300, 2049}, // crosses both the k-tile (256) and the j-tile (2048)
	{64, 64, 64},
}

func maxRelDiff(a, b *Matrix) float64 {
	worst := 0.0
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		d := math.Abs(ad[i] - bd[i])
		scale := math.Max(1, math.Max(math.Abs(ad[i]), math.Abs(bd[i])))
		if r := d / scale; r > worst {
			worst = r
		}
	}
	return worst
}

func TestMulMatchesNaiveAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range kernelShapes {
		a := randMatrix(rng, s.m, s.k)
		b := randMatrix(rng, s.k, s.n)
		want := mulNaive(a, b)
		got := Mul(a, b)
		if d := maxRelDiff(got, want); d > 1e-12 {
			t.Errorf("Mul %dx%d*%dx%d: max rel diff %g vs naive", s.m, s.k, s.k, s.n, d)
		}
	}
}

func TestMulTMatchesNaiveAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, s := range kernelShapes {
		a := randMatrix(rng, s.m, s.k)
		b := randMatrix(rng, s.n, s.k) // MulT contracts over columns
		want := mulTNaive(a, b)
		got := MulT(a, b)
		if d := maxRelDiff(got, want); d > 1e-12 {
			t.Errorf("MulT %dx%d*(%dx%d)ᵀ: max rel diff %g vs naive", s.m, s.k, s.n, s.k, d)
		}
	}
}

func TestMulBitwiseInvariantUnderParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMatrix(rng, 67, 131)
	b := randMatrix(rng, 131, 43)
	defer SetParallelism(SetParallelism(1))
	serial := Mul(a, b)
	serialT := MulT(a, b.T())
	for _, workers := range []int{2, 3, 8} {
		SetParallelism(workers)
		par := Mul(a, b)
		parT := MulT(a, b.T())
		for i, v := range serial.Data() {
			if par.Data()[i] != v {
				t.Fatalf("workers=%d: Mul element %d differs bitwise: %v vs %v", workers, i, par.Data()[i], v)
			}
		}
		for i, v := range serialT.Data() {
			if parT.Data()[i] != v {
				t.Fatalf("workers=%d: MulT element %d differs bitwise: %v vs %v", workers, i, parT.Data()[i], v)
			}
		}
	}
}

func TestStandardizeBitwiseInvariantUnderParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := randMatrix(rng, 37, 211)
	defer SetParallelism(SetParallelism(1))
	wantZ, wantS := Standardize(m)
	SetParallelism(4)
	gotZ, gotS := Standardize(m)
	for i, v := range wantZ.Data() {
		if gotZ.Data()[i] != v {
			t.Fatalf("Standardize element %d differs across worker counts", i)
		}
	}
	for i := range wantS.Mean {
		if gotS.Mean[i] != wantS.Mean[i] || gotS.Std[i] != wantS.Std[i] {
			t.Fatalf("Standardization row %d transform differs across worker counts", i)
		}
	}
}

func TestMulIntoWritesDirtyDestination(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMatrix(rng, 13, 21)
	b := randMatrix(rng, 21, 17)
	dst := randMatrix(rng, 13, 17) // garbage that must be fully overwritten
	MulInto(dst, a, b)
	if d := maxRelDiff(dst, mulNaive(a, b)); d > 1e-12 {
		t.Errorf("MulInto into dirty dst: max rel diff %g", d)
	}
	dstT := randMatrix(rng, 13, 19)
	bT := randMatrix(rng, 19, 21)
	MulTInto(dstT, a, bT)
	if d := maxRelDiff(dstT, mulTNaive(a, bT)); d > 1e-12 {
		t.Errorf("MulTInto into dirty dst: max rel diff %g", d)
	}
}

func TestMulIntoRejectsAliasedDestination(t *testing.T) {
	a := Eye(4)
	defer func() {
		if recover() == nil {
			t.Fatal("MulInto(a, a, a) should panic: dst aliases an operand")
		}
	}()
	MulInto(a, a, a)
}

func TestElementwiseIntoKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMatrix(rng, 9, 14)
	b := randMatrix(rng, 9, 14)

	if d := maxRelDiff(SubInto(Zeros(9, 14), a, b), Sub(a, b)); d != 0 {
		t.Errorf("SubInto differs from Sub by %g", d)
	}
	if d := maxRelDiff(AddInto(Zeros(9, 14), a, b), Add(a, b)); d != 0 {
		t.Errorf("AddInto differs from Add by %g", d)
	}
	if d := maxRelDiff(ScaleInto(Zeros(9, 14), -2.5, a), Scale(-2.5, a)); d != 0 {
		t.Errorf("ScaleInto differs from Scale by %g", d)
	}
	want := Add(a, Scale(0.75, b))
	if d := maxRelDiff(AddScaledInto(Zeros(9, 14), a, 0.75, b), want); d != 0 {
		t.Errorf("AddScaledInto differs from Add+Scale by %g", d)
	}

	// The elementwise kernels allow aliasing: dst == a must equal the
	// out-of-place result.
	aliased := a.Clone()
	SubInto(aliased, aliased, b)
	if d := maxRelDiff(aliased, Sub(a, b)); d != 0 {
		t.Errorf("aliased SubInto differs by %g", d)
	}
}

func TestMulVecIntoMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMatrix(rng, 11, 23)
	x := make([]float64, 23)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := MulVec(a, x)
	got := MulVecInto(make([]float64, 11), a, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecInto element %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestFrobeniusDistanceAndMaxAbsDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randMatrix(rng, 8, 31)
	b := randMatrix(rng, 8, 31)
	d := Sub(a, b)
	if got, want := FrobeniusDistance(a, b), d.FrobeniusNorm(); math.Abs(got-want) > 1e-12*(1+want) {
		t.Errorf("FrobeniusDistance = %v, want %v", got, want)
	}
	if got, want := MaxAbsDiff(a, b), d.MaxAbs(); got != want {
		t.Errorf("MaxAbsDiff = %v, want %v", got, want)
	}
}

func TestSetParallelismRestores(t *testing.T) {
	orig := Parallelism()
	prev := SetParallelism(3)
	if prev != orig {
		t.Errorf("SetParallelism returned %d, want previous %d", prev, orig)
	}
	if Parallelism() != 3 {
		t.Errorf("Parallelism = %d after SetParallelism(3)", Parallelism())
	}
	SetParallelism(0) // restore default
	if Parallelism() < 1 {
		t.Errorf("default Parallelism = %d, want >= 1", Parallelism())
	}
}
