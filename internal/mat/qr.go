package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a matrix
// that is singular (or numerically indistinguishable from singular).
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// QR holds a Householder QR factorization of an m-by-n matrix with m >= n:
// A = Q * R with Q orthogonal (m-by-m, stored implicitly as reflectors) and R
// upper triangular (n-by-n).
type QR struct {
	qr  *Matrix   // packed reflectors below the diagonal, R on and above
	tau []float64 // reflector scales
}

// FactorQR computes the Householder QR factorization of a. It requires
// a.Rows() >= a.Cols(). a is not modified.
func FactorQR(a *Matrix) *QR {
	m, n := a.rows, a.cols
	if m < n {
		panic(fmt.Sprintf("mat: FactorQR needs rows >= cols, got %dx%d", m, n))
	}
	qr := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Build the Householder reflector annihilating column k below the
		// diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			v := qr.data[i*n+k]
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			tau[k] = 0
			continue
		}
		// Choose the reflector sign so the head 1 + a_kk/norm cannot cancel.
		if qr.data[k*n+k] < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.data[i*n+k] /= norm
		}
		qr.data[k*n+k] += 1
		tau[k] = qr.data[k*n+k]

		// Apply the reflector to the trailing columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.data[i*n+k] * qr.data[i*n+j]
			}
			s = -s / qr.data[k*n+k]
			for i := k; i < m; i++ {
				qr.data[i*n+j] += s * qr.data[i*n+k]
			}
		}
		// Store the diagonal of R (the negated norm) in place of the
		// reflector head; the reflector itself stays in the strictly-lower
		// part plus tau.
		qr.data[k*n+k] = -norm
	}
	return &QR{qr: qr, tau: tau}
}

// applyQT overwrites b (length m) with Qᵀ b.
func (f *QR) applyQT(b []float64) {
	m, n := f.qr.rows, f.qr.cols
	for k := 0; k < n; k++ {
		if f.tau[k] == 0 {
			continue
		}
		// Reconstruct v_k: head tau[k] at row k, tail stored below diagonal.
		s := f.tau[k] * b[k]
		for i := k + 1; i < m; i++ {
			s += f.qr.data[i*n+k] * b[i]
		}
		s = -s / f.tau[k]
		b[k] += s * f.tau[k]
		for i := k + 1; i < m; i++ {
			b[i] += s * f.qr.data[i*n+k]
		}
	}
}

// Solve returns the least-squares solution x of A x = b, minimizing
// ||A x - b||_2. b must have length A.Rows(). It returns ErrSingular when R
// has a (numerically) zero diagonal entry.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.rows, f.qr.cols
	if len(b) != m {
		panic(fmt.Sprintf("mat: QR.Solve rhs length %d, want %d", len(b), m))
	}
	w := make([]float64, m)
	copy(w, b)
	f.applyQT(w)
	x := make([]float64, n)
	// Singularity is judged relative to the largest R diagonal: a column
	// that is (numerically) a combination of the others leaves a diagonal
	// entry at roundoff level.
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		if a := math.Abs(f.qr.data[i*n+i]); a > maxDiag {
			maxDiag = a
		}
	}
	// Back-substitute R x = w[:n].
	for i := n - 1; i >= 0; i-- {
		rii := f.qr.data[i*n+i]
		if math.Abs(rii) <= 1e-12*maxDiag {
			return nil, ErrSingular
		}
		s := w[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.data[i*n+j] * x[j]
		}
		x[i] = s / rii
	}
	return x, nil
}

// SolveMatrix solves the least-squares problem for every column of B,
// returning the n-by-k solution matrix for an m-by-k right-hand side. All
// columns share one pass over the Householder reflectors, which is much
// faster than k separate Solve calls for the wide right-hand sides the OLS
// refit produces.
func (f *QR) SolveMatrix(b *Matrix) (*Matrix, error) {
	m, n := f.qr.rows, f.qr.cols
	if b.rows != m {
		panic(fmt.Sprintf("mat: QR.SolveMatrix rhs rows %d, want %d", b.rows, m))
	}
	k := b.cols
	w := b.Clone()
	sums := make([]float64, k)
	// Apply Qᵀ to every column at once.
	for r := 0; r < n; r++ {
		tau := f.tau[r]
		if tau == 0 {
			continue
		}
		wr := w.data[r*k : (r+1)*k]
		for j := range sums {
			sums[j] = tau * wr[j]
		}
		for i := r + 1; i < m; i++ {
			vi := f.qr.data[i*n+r]
			if vi == 0 {
				continue
			}
			row := w.data[i*k : (i+1)*k]
			for j, x := range row {
				sums[j] += vi * x
			}
		}
		for j := range sums {
			sums[j] = -sums[j] / tau
		}
		for j := range wr {
			wr[j] += sums[j] * tau
		}
		for i := r + 1; i < m; i++ {
			vi := f.qr.data[i*n+r]
			if vi == 0 {
				continue
			}
			row := w.data[i*k : (i+1)*k]
			for j := range row {
				row[j] += sums[j] * vi
			}
		}
	}
	// Backsolve R X = w[:n][:] for all columns, with the same relative
	// singularity test as Solve.
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		if a := math.Abs(f.qr.data[i*n+i]); a > maxDiag {
			maxDiag = a
		}
	}
	out := Zeros(n, k)
	for i := n - 1; i >= 0; i-- {
		rii := f.qr.data[i*n+i]
		if math.Abs(rii) <= 1e-12*maxDiag {
			return nil, ErrSingular
		}
		oi := out.data[i*k : (i+1)*k]
		copy(oi, w.data[i*k:(i+1)*k])
		for c := i + 1; c < n; c++ {
			ric := f.qr.data[i*n+c]
			if ric == 0 {
				continue
			}
			oc := out.data[c*k : (c+1)*k]
			for j := range oi {
				oi[j] -= ric * oc[j]
			}
		}
		for j := range oi {
			oi[j] /= rii
		}
	}
	return out, nil
}

// RCond returns a cheap condition estimate of R: |r_min| / |r_max| over the
// diagonal. Values near zero indicate ill-conditioning.
func (f *QR) RCond() float64 {
	n := f.qr.cols
	if n == 0 {
		return 1
	}
	mn, mx := math.Inf(1), 0.0
	for i := 0; i < n; i++ {
		a := math.Abs(f.qr.data[i*n+i])
		if a < mn {
			mn = a
		}
		if a > mx {
			mx = a
		}
	}
	if mx == 0 {
		return 0
	}
	return mn / mx
}
