package mat

import (
	"fmt"
	"math"
)

// LU holds an LU factorization with partial pivoting: P A = L U.
type LU struct {
	lu   *Matrix // L (unit diagonal, below) and U (on and above) packed
	piv  []int   // row permutation
	sign float64 // +1 or -1 from permutation parity
}

// FactorLU computes the LU factorization of the square matrix a with partial
// pivoting. It returns ErrSingular if a pivot is exactly zero.
func FactorLU(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: FactorLU needs square input, got %dx%d", a.rows, a.cols))
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Find the pivot row.
		p, pv := k, math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.data[i*n+k]); a > pv {
				p, pv = i, a
			}
		}
		if pv == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.data[k*n : (k+1)*n]
			rp := lu.data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		ukk := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			lik := lu.data[i*n+k] / ukk
			lu.data[i*n+k] = lik
			if lik == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= lik * lu.data[k*n+j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve returns x such that A x = b.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: LU.Solve rhs length %d, want %d", len(b), n))
	}
	x := make([]float64, n)
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward: L y = Pb (unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= f.lu.data[i*n+k] * x[k]
		}
		x[i] = s
	}
	// Backward: U x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.lu.data[i*n+k] * x[k]
		}
		x[i] = s / f.lu.data[i*n+i]
	}
	return x
}

// Det returns the determinant of A.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := f.sign
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// Inverse returns A⁻¹, computed column by column. Prefer Solve when only a
// product with the inverse is needed.
func (f *LU) Inverse() *Matrix {
	n := f.lu.rows
	inv := Zeros(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		inv.SetCol(j, f.Solve(e))
		e[j] = 0
	}
	return inv
}
