package mat

import (
	"fmt"
	"math"
)

// Blocked-kernel tile sizes. The multiply kernels walk the k (inner) and j
// (column) dimensions in tiles so the B panel a row-chunk is streaming stays
// resident in cache while every row of the chunk reuses it, and unroll the
// k loop four-wide so each inner-loop trip carries four independent
// multiply-add chains instead of one.
const (
	mulKC = 256  // rows of B live per k-tile: 4 streams × 2 KiB fits L1
	mulJC = 2048 // dst/B column-tile width: 16 KiB per stream

	// parMinFlops is the minimum amount of multiply-add work a chunk must
	// carry before a kernel splits it across the pool; below it, goroutine
	// handoff costs more than it saves.
	parMinFlops = 1 << 16
)

// minRowsPerChunk converts a per-row flop count into the smallest row-chunk
// worth shipping to a worker.
func minRowsPerChunk(flopsPerRow int) int {
	if flopsPerRow <= 0 {
		return 1 << 30 // degenerate shapes: never parallelize
	}
	r := parMinFlops / flopsPerRow
	if r < 1 {
		r = 1
	}
	return r
}

// runSerial reports whether n rows of flopsPerRow work each should skip the
// pool entirely. The check lives at the kernel call sites (not inside
// parallelFor) so the serial path never builds the escaping closure the
// dispatcher needs — keeping allocation-free hot loops truly allocation-free.
func runSerial(n, flopsPerRow int) bool {
	return Parallelism() <= 1 || n < 2*minRowsPerChunk(flopsPerRow)
}

// noAlias panics when dst shares a backing array with src: the multiply
// kernels read their operands while writing dst, so in-place multiplication
// is never legal (unlike the elementwise *Into kernels).
func noAlias(op string, dst, src *Matrix) {
	if len(dst.data) > 0 && len(src.data) > 0 && &dst.data[0] == &src.data[0] {
		panic(fmt.Sprintf("mat: %s destination aliases an operand", op))
	}
}

// MulInto computes dst = a * b without allocating, overwriting dst, which
// must be a.Rows()-by-b.Cols() and must not alias a or b. It returns dst.
// Large products are tiled and split row-wise across the worker pool; see
// SetParallelism. The result is bitwise identical for every worker count.
func MulInto(dst, a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MulInto shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: MulInto dst is %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	noAlias("MulInto", dst, a)
	noAlias("MulInto", dst, b)
	flopsPerRow := 2 * a.cols * b.cols
	if runSerial(a.rows, flopsPerRow) {
		mulPanel(dst, a, b, 0, a.rows)
		return dst
	}
	parallelFor(a.rows, minRowsPerChunk(flopsPerRow), func(lo, hi int) {
		mulPanel(dst, a, b, lo, hi)
	})
	return dst
}

// mulPanel computes rows [lo, hi) of dst = a * b with k- and j-tiling and a
// four-wide unrolled saxpy inner kernel. Per-element accumulation order
// depends only on the operand shapes, never on the panel bounds.
func mulPanel(dst, a, b *Matrix, lo, hi int) {
	n, kk := b.cols, a.cols
	if n == 0 {
		return
	}
	for i := lo; i < hi; i++ {
		row := dst.data[i*n : (i+1)*n]
		for j := range row {
			row[j] = 0
		}
	}
	for jb := 0; jb < n; jb += mulJC {
		je := jb + mulJC
		if je > n {
			je = n
		}
		for kb := 0; kb < kk; kb += mulKC {
			ke := kb + mulKC
			if ke > kk {
				ke = kk
			}
			for i := lo; i < hi; i++ {
				arow := a.data[i*kk+kb : i*kk+ke]
				orow := dst.data[i*n+jb : i*n+je]
				k := 0
				for ; k+4 <= len(arow); k += 4 {
					a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
					if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
						continue
					}
					r := (kb + k) * n
					b0 := b.data[r+jb : r+je]
					b1 := b.data[r+n+jb : r+n+je]
					b2 := b.data[r+2*n+jb : r+2*n+je]
					b3 := b.data[r+3*n+jb : r+3*n+je]
					_ = b1[len(b0)-1]
					_ = b2[len(b0)-1]
					_ = b3[len(b0)-1]
					_ = orow[len(b0)-1]
					for j, v0 := range b0 {
						orow[j] += a0*v0 + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; k < len(arow); k++ {
					aik := arow[k]
					if aik == 0 {
						continue
					}
					r := (kb + k) * n
					brow := b.data[r+jb : r+je]
					for j, v := range brow {
						orow[j] += aik * v
					}
				}
			}
		}
	}
}

// MulT returns a * bᵀ without materializing the transpose: both operands are
// walked along their contiguous rows, which is exactly the layout of the Gram
// products Z·Zᵀ and G·Zᵀ at the heart of the group-lasso solvers.
func MulT(a, b *Matrix) *Matrix {
	out := Zeros(a.rows, b.rows)
	return MulTInto(out, a, b)
}

// MulTInto computes dst = a * bᵀ without allocating. dst must be
// a.Rows()-by-b.Rows() and must not alias a or b. It returns dst.
func MulTInto(dst, a, b *Matrix) *Matrix {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MulTInto shape mismatch %dx%d * (%dx%d)ᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.rows {
		panic(fmt.Sprintf("mat: MulTInto dst is %dx%d, want %dx%d", dst.rows, dst.cols, a.rows, b.rows))
	}
	noAlias("MulTInto", dst, a)
	noAlias("MulTInto", dst, b)
	flopsPerRow := 2 * a.cols * b.rows
	if runSerial(a.rows, flopsPerRow) {
		mulTPanel(dst, a, b, 0, a.rows)
		return dst
	}
	parallelFor(a.rows, minRowsPerChunk(flopsPerRow), func(lo, hi int) {
		mulTPanel(dst, a, b, lo, hi)
	})
	return dst
}

// mulTPanel computes rows [lo, hi) of dst = a * bᵀ as row-row dot products,
// four columns at a time so each pass over a's row feeds four accumulators.
func mulTPanel(dst, a, b *Matrix, lo, hi int) {
	kk, m := a.cols, b.rows
	for i := lo; i < hi; i++ {
		arow := a.data[i*kk : (i+1)*kk]
		orow := dst.data[i*m : (i+1)*m]
		j := 0
		for ; j+4 <= m; j += 4 {
			b0 := b.data[j*kk : (j+1)*kk]
			b1 := b.data[(j+1)*kk : (j+2)*kk]
			b2 := b.data[(j+2)*kk : (j+3)*kk]
			b3 := b.data[(j+3)*kk : (j+4)*kk]
			var s0, s1, s2, s3 float64
			for k, av := range arow {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < m; j++ {
			brow := b.data[j*kk : (j+1)*kk]
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// MulVecInto computes dst = a * x without allocating; dst must have length
// a.Rows() and must not alias x. It returns dst.
func MulVecInto(dst []float64, a *Matrix, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVecInto shape mismatch %dx%d * %d", a.rows, a.cols, len(x)))
	}
	if len(dst) != a.rows {
		panic(fmt.Sprintf("mat: MulVecInto dst length %d, want %d", len(dst), a.rows))
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// AddInto computes dst = a + b elementwise; dst may alias a or b.
func AddInto(dst, a, b *Matrix) *Matrix {
	sameShape(a, b, "AddInto")
	sameShape(dst, a, "AddInto")
	bd := b.data
	for i, v := range a.data {
		dst.data[i] = v + bd[i]
	}
	return dst
}

// SubInto computes dst = a - b elementwise; dst may alias a or b.
func SubInto(dst, a, b *Matrix) *Matrix {
	sameShape(a, b, "SubInto")
	sameShape(dst, a, "SubInto")
	bd := b.data
	for i, v := range a.data {
		dst.data[i] = v - bd[i]
	}
	return dst
}

// ScaleInto computes dst = s * a elementwise; dst may alias a.
func ScaleInto(dst *Matrix, s float64, a *Matrix) *Matrix {
	sameShape(dst, a, "ScaleInto")
	for i, v := range a.data {
		dst.data[i] = s * v
	}
	return dst
}

// AddScaledInto computes dst = a + s*b elementwise (the matrix axpy of the
// gradient and momentum updates); dst may alias a or b.
func AddScaledInto(dst, a *Matrix, s float64, b *Matrix) *Matrix {
	sameShape(a, b, "AddScaledInto")
	sameShape(dst, a, "AddScaledInto")
	bd := b.data
	for i, v := range a.data {
		dst.data[i] = v + s*bd[i]
	}
	return dst
}

// FrobeniusDistance returns ‖a − b‖_F without materializing the difference.
func FrobeniusDistance(a, b *Matrix) float64 {
	sameShape(a, b, "FrobeniusDistance")
	s := 0.0
	for i, v := range a.data {
		d := v - b.data[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max_ij |a_ij − b_ij| without materializing the
// difference, or 0 for empty matrices.
func MaxAbsDiff(a, b *Matrix) float64 {
	sameShape(a, b, "MaxAbsDiff")
	mx := 0.0
	for i, v := range a.data {
		d := v - b.data[i]
		if d < 0 {
			d = -d
		}
		if d > mx {
			mx = d
		}
	}
	return mx
}
