package mat

import "fmt"

// RowMeans returns the mean of every row of m: in this codebase rows index
// variables (sensor sites / circuit blocks) and columns index the N samples,
// matching the paper's X (M-by-N) and F (K-by-N) layout.
func RowMeans(m *Matrix) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Mean(m.Row(i))
	}
	return out
}

// RowStdDevs returns the population standard deviation of every row of m.
func RowStdDevs(m *Matrix) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = StdDev(m.Row(i))
	}
	return out
}

// Standardization records the per-row affine transform used to bring a data
// matrix to zero mean and unit variance, so predictions can be mapped back.
type Standardization struct {
	Mean []float64
	Std  []float64 // rows with zero variance get Std == 1 (identity scale)
}

// Standardize returns a normalized copy of m (each row zero-mean,
// unit-variance) plus the transform that produced it. Constant rows are
// centered but left unscaled. Rows are independent, so the work is split
// across the package worker pool (see SetParallelism); results are identical
// to the serial computation for any worker count.
func Standardize(m *Matrix) (*Matrix, *Standardization) {
	s := &Standardization{
		Mean: make([]float64, m.rows),
		Std:  make([]float64, m.rows),
	}
	out := Zeros(m.rows, m.cols)
	parallelFor(m.rows, minRowsPerChunk(4*m.cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			src, dst := m.Row(i), out.Row(i)
			mu := Mean(src)
			sd := StdDev(src)
			if sd == 0 {
				sd = 1
			}
			s.Mean[i], s.Std[i] = mu, sd
			for j, v := range src {
				dst[j] = (v - mu) / sd
			}
		}
	})
	return out, s
}

// Apply normalizes a raw column vector x (one value per row of the original
// matrix) using the stored transform.
func (s *Standardization) Apply(x []float64) []float64 {
	if len(x) != len(s.Mean) {
		panic(fmt.Sprintf("mat: Standardization.Apply length %d, want %d", len(x), len(s.Mean)))
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = (v - s.Mean[i]) / s.Std[i]
	}
	return out
}

// Invert maps a normalized column vector back to raw units.
func (s *Standardization) Invert(z []float64) []float64 {
	if len(z) != len(s.Mean) {
		panic(fmt.Sprintf("mat: Standardization.Invert length %d, want %d", len(z), len(s.Mean)))
	}
	out := make([]float64, len(z))
	for i, v := range z {
		out[i] = v*s.Std[i] + s.Mean[i]
	}
	return out
}

// Subset returns the transform restricted to the rows named by idx, for use
// after sensor selection has discarded the other rows.
func (s *Standardization) Subset(idx []int) *Standardization {
	out := &Standardization{Mean: make([]float64, len(idx)), Std: make([]float64, len(idx))}
	for k, i := range idx {
		out.Mean[k] = s.Mean[i]
		out.Std[k] = s.Std[i]
	}
	return out
}
