package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the max-abs norm of x, or 0 for an empty slice.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// AxpyTo computes dst = a*x + y elementwise. dst may alias x or y.
func AxpyTo(dst []float64, a float64, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d/%d/%d", len(dst), len(x), len(y)))
	}
	for i := range dst {
		dst[i] = a*x[i] + y[i]
	}
}

// ScaleVec returns a new slice holding s*x.
func ScaleVec(s float64, x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = s * v
	}
	return out
}

// SubVec returns a new slice holding x - y.
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: SubVec length mismatch %d vs %d", len(x), len(y)))
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - y[i]
	}
	return out
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x (dividing by n, to
// match the zero-mean/unit-variance normalization in the paper), or 0 for
// fewer than one element.
func StdDev(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	mu := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// Correlation returns the Pearson correlation coefficient of x and y, or 0
// when either input is constant.
func Correlation(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Correlation length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
