package mat

import (
	"fmt"
	"math"
	"sort"
)

// SymEigen holds the eigendecomposition of a symmetric matrix A = V Λ Vᵀ,
// with eigenvalues sorted descending and eigenvectors as the columns of V.
type SymEigen struct {
	Values  []float64
	Vectors *Matrix // column j is the eigenvector of Values[j]
}

// FactorSymEigen computes the eigendecomposition of the symmetric matrix a
// by the cyclic Jacobi method. Only the lower triangle is read. The method
// is unconditionally convergent for symmetric input and accurate to machine
// precision for the moderate sizes used here (covariance matrices of
// candidate pools).
func FactorSymEigen(a *Matrix) (*SymEigen, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: FactorSymEigen needs square input, got %dx%d", a.rows, a.cols))
	}
	n := a.rows
	// Work on a symmetrized copy.
	w := Zeros(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := a.data[i*n+j]
			w.data[i*n+j] = v
			w.data[j*n+i] = v
		}
	}
	v := Eye(n)

	offNorm := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				s += w.data[i*n+j] * w.data[i*n+j]
			}
		}
		return math.Sqrt(2 * s)
	}
	scale := w.FrobeniusNorm()
	if scale == 0 {
		scale = 1
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offNorm() <= 1e-14*scale {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.data[p*n+q]
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := w.data[p*n+p]
				aqq := w.data[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation G(p,q,θ) on both sides of w and
				// accumulate into v.
				for k := 0; k < n; k++ {
					wkp := w.data[k*n+p]
					wkq := w.data[k*n+q]
					w.data[k*n+p] = c*wkp - s*wkq
					w.data[k*n+q] = s*wkp + c*wkq
				}
				for k := 0; k < n; k++ {
					wpk := w.data[p*n+k]
					wqk := w.data[q*n+k]
					w.data[p*n+k] = c*wpk - s*wqk
					w.data[q*n+k] = s*wpk + c*wqk
				}
				for k := 0; k < n; k++ {
					vkp := v.data[k*n+p]
					vkq := v.data[k*n+q]
					v.data[k*n+p] = c*vkp - s*vkq
					v.data[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	if offNorm() > 1e-8*scale {
		return nil, fmt.Errorf("mat: Jacobi eigensolver did not converge (off-norm %g)", offNorm())
	}

	// Extract and sort descending.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{val: w.data[i*n+i], idx: i}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].val > pairs[b].val })
	e := &SymEigen{Values: make([]float64, n), Vectors: Zeros(n, n)}
	for j, pr := range pairs {
		e.Values[j] = pr.val
		for i := 0; i < n; i++ {
			e.Vectors.data[i*n+j] = v.data[i*n+pr.idx]
		}
	}
	return e, nil
}
