package mat

import (
	"math"
	"math/rand"
	"testing"
)

// reconstructSVD forms U diag(S) Vᵀ.
func reconstructSVD(d *SVD) *Matrix {
	r := len(d.S)
	us := d.U.Clone()
	for i := 0; i < us.Rows(); i++ {
		row := us.Row(i)
		for j := 0; j < r; j++ {
			row[j] *= d.S[j]
		}
	}
	return Mul(us, d.V.T())
}

func assertOrthonormalCols(t *testing.T, m *Matrix, tol float64) {
	t.Helper()
	g := MulT(m.T(), m.T()) // MᵀM
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > tol {
				t.Fatalf("columns not orthonormal: gram[%d][%d] = %g", i, j, g.At(i, j))
			}
		}
	}
}

func TestThinSVDReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][2]int{{8, 20}, {20, 8}, {13, 13}, {1, 9}, {9, 1}} {
		a := randMatrix(rng, shape[0], shape[1])
		d, err := ThinSVD(a)
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		rec := reconstructSVD(d)
		scale := a.FrobeniusNorm()
		if dist := FrobeniusDistance(rec, a); dist > 1e-8*scale {
			t.Fatalf("%v: reconstruction error %g (scale %g)", shape, dist, scale)
		}
		assertOrthonormalCols(t, d.U, 1e-8)
		assertOrthonormalCols(t, d.V, 1e-8)
		for i := 1; i < len(d.S); i++ {
			if d.S[i] > d.S[i-1] {
				t.Fatalf("%v: singular values not descending: %v", shape, d.S)
			}
		}
	}
}

// TestThinSVDLowRank checks that rank-deficient input yields exactly the
// numerical rank, with the dropped null space not polluting the factors.
func TestThinSVDLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// A = B·C with inner dimension 3: rank 3 regardless of outer shape.
	b := randMatrix(rng, 12, 3)
	c := randMatrix(rng, 3, 30)
	a := Mul(b, c)
	d, err := ThinSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.S) != 3 {
		t.Fatalf("rank-3 matrix decomposed with %d singular values: %v", len(d.S), d.S)
	}
	rec := reconstructSVD(d)
	if dist := FrobeniusDistance(rec, a); dist > 1e-7*a.FrobeniusNorm() {
		t.Fatalf("low-rank reconstruction error %g", dist)
	}
}

// TestThinSVDEnergy checks Σσ² == ‖A‖_F² — the identity POD rank selection
// relies on.
func TestThinSVDEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMatrix(rng, 10, 40)
	d, err := ThinSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range d.S {
		sum += s * s
	}
	f := a.FrobeniusNorm()
	if math.Abs(sum-f*f) > 1e-8*f*f {
		t.Fatalf("Σσ² = %g, ‖A‖_F² = %g", sum, f*f)
	}
}

func TestThinSVDEmpty(t *testing.T) {
	d, err := ThinSVD(Zeros(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.S) != 0 || d.U.Rows() != 0 || d.V.Rows() != 5 || d.V.Cols() != 0 {
		t.Fatalf("unexpected empty-input decomposition %+v", d)
	}
}

// decayingMatrix builds an m×n matrix with a geometrically decaying
// spectrum — the shape of a POD training matrix — so the truncated solver
// has real structure to find.
func decayingMatrix(rng *rand.Rand, m, n, modes int, ratio float64) *Matrix {
	out := Zeros(m, n)
	sigma := 1.0
	for k := 0; k < modes; k++ {
		u := make([]float64, m)
		v := make([]float64, n)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		for i := 0; i < m; i++ {
			row := out.Row(i)
			for j := 0; j < n; j++ {
				row[j] += sigma * u[i] * v[j]
			}
		}
		sigma *= ratio
	}
	return out
}

// TestTruncatedSVDMatchesExact: on a decaying-spectrum matrix the leading
// truncated singular values must match the exact ThinSVD values tightly,
// and the truncated basis must span the same subspace (checked through the
// projector, which is sign- and rotation-invariant).
func TestTruncatedSVDMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := decayingMatrix(rng, 120, 150, 40, 0.7)
	exact, err := ThinSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	k := 12
	tr, err := TruncatedSVD(a, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.S) != k {
		t.Fatalf("got %d singular values, want %d", len(tr.S), k)
	}
	assertOrthonormalCols(t, tr.U, 1e-10)
	for i := 0; i < k; i++ {
		if rel := math.Abs(tr.S[i]-exact.S[i]) / exact.S[i]; rel > 1e-6 {
			t.Fatalf("σ[%d]: truncated %g vs exact %g (rel %g)", i, tr.S[i], exact.S[i], rel)
		}
	}
	// Subspace agreement: ‖U_exactᵀ·U_trunc‖_F² = k when the spans match.
	cross := Mul(firstCols(exact.U, k).T(), tr.U)
	got := 0.0
	for _, v := range cross.Data() {
		got += v * v
	}
	if math.Abs(got-float64(k)) > 1e-6 {
		t.Fatalf("subspace overlap %g, want %d", got, k)
	}
}

// TestTruncatedSVDLowRank: when the matrix rank is below the request, the
// whole spectrum comes back and reconstructs the matrix exactly.
func TestTruncatedSVDLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := decayingMatrix(rng, 90, 110, 5, 1.0)
	tr, err := TruncatedSVD(a, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.S) != 5 {
		t.Fatalf("rank-5 matrix produced %d singular values", len(tr.S))
	}
	if d := MaxAbsDiff(reconstructSVD(tr), a); d > 1e-8 {
		t.Fatalf("rank-5 reconstruction off by %g", d)
	}
}

// TestTruncatedSVDSmallFallsBack: requests that leave no room for
// oversampling must agree with ThinSVD exactly (same code path).
func TestTruncatedSVDSmallFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := decayingMatrix(rng, 10, 14, 10, 0.9)
	exact, err := ThinSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TruncatedSVD(a, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.S) != 8 {
		t.Fatalf("got %d values, want 8", len(tr.S))
	}
	for i := range tr.S {
		if tr.S[i] != exact.S[i] {
			t.Fatalf("σ[%d] differs from exact fallback: %g vs %g", i, tr.S[i], exact.S[i])
		}
	}
	if _, err := TruncatedSVD(a, 0); err == nil {
		t.Fatal("rank 0 accepted")
	}
}
