package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by FactorCholesky when the input matrix
// is not symmetric positive definite to working precision.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L Lᵀ.
type Cholesky struct {
	l *Matrix // lower triangular, n-by-n
}

// FactorCholesky computes the Cholesky factorization of the symmetric
// positive definite matrix a. Only the lower triangle of a is read.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: FactorCholesky needs square input, got %dx%d", a.rows, a.cols))
	}
	n := a.rows
	l := Zeros(n, n)
	for j := 0; j < n; j++ {
		d := a.data[j*n+j]
		for k := 0; k < j; k++ {
			ljk := l.data[j*n+k]
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l.data[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			s := a.data[i*n+j]
			for k := 0; k < j; k++ {
				s -= l.data[i*n+k] * l.data[j*n+k]
			}
			l.data[i*n+j] = s / ljj
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns the lower-triangular factor (aliased).
func (c *Cholesky) L() *Matrix { return c.l }

// Solve returns x such that A x = b.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.l.rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: Cholesky.Solve rhs length %d, want %d", len(b), n))
	}
	y := make([]float64, n)
	// Forward: L y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.l.data[i*n : i*n+i]
		for k, v := range row {
			s -= v * y[k]
		}
		y[i] = s / c.l.data[i*n+i]
	}
	// Backward: Lᵀ x = y.
	x := y
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.data[k*n+i] * x[k]
		}
		x[i] = s / c.l.data[i*n+i]
	}
	return x
}

// SolveMatrix solves A X = B column by column.
func (c *Cholesky) SolveMatrix(b *Matrix) *Matrix {
	if b.rows != c.l.rows {
		panic(fmt.Sprintf("mat: Cholesky.SolveMatrix rhs rows %d, want %d", b.rows, c.l.rows))
	}
	out := Zeros(c.l.rows, b.cols)
	for j := 0; j < b.cols; j++ {
		out.SetCol(j, c.Solve(b.Col(j)))
	}
	return out
}

// LogDet returns the natural log of det(A) = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	n := c.l.rows
	s := 0.0
	for i := 0; i < n; i++ {
		s += math.Log(c.l.data[i*n+i])
	}
	return 2 * s
}
