package mat

import (
	"fmt"
	"math"
)

// SVD holds a thin singular value decomposition A = U diag(S) Vᵀ with
// singular values sorted descending. For an m-by-n input of numerical rank r,
// U is m-by-r with orthonormal columns, S has length r, and V is n-by-r with
// orthonormal columns. Directions whose singular value falls below
// SVDRankTol·S[0] are dropped.
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// SVDRankTol is the relative singular-value cutoff of ThinSVD: directions
// with σ_i ≤ SVDRankTol·σ_0 are treated as numerical null space. The Gram
// route squares the condition number — the Jacobi sweep resolves eigenvalues
// to ~1e-14 of the Gram norm, i.e. singular values to ~1e-7 of σ_0 — so a
// looser cut than a full Golub–Kahan would use is the honest one. A dropped
// direction carries under SVDRankTol² ≈ 1e-12 of the total energy.
const SVDRankTol = 1e-6

// ThinSVD computes the thin SVD of a by eigendecomposition of the smaller
// Gram matrix (A·Aᵀ when m ≤ n, Aᵀ·A otherwise) with the existing symmetric
// Jacobi solver, then recovers the other factor by one matrix product. This
// trades the last ~8 digits of the small singular values for a dependency-
// free O(min(m,n)³) factorization — exactly the right trade for POD bases,
// where only the dominant, energy-carrying directions matter.
func ThinSVD(a *Matrix) (*SVD, error) {
	m, n := a.rows, a.cols
	if m == 0 || n == 0 {
		return &SVD{U: Zeros(m, 0), S: nil, V: Zeros(n, 0)}, nil
	}
	if m <= n {
		eig, err := FactorSymEigen(MulT(a, a)) // A Aᵀ, m-by-m
		if err != nil {
			return nil, fmt.Errorf("mat: ThinSVD: %w", err)
		}
		s, rank := singularValues(eig.Values)
		u := firstCols(eig.Vectors, rank)
		// V = Aᵀ U Σ⁻¹, column by column without forming Aᵀ.
		v := Zeros(n, rank)
		for j := 0; j < rank; j++ {
			col := MulTVec(a, u.Col(j))
			inv := 1 / s[j]
			for i := 0; i < n; i++ {
				v.data[i*rank+j] = col[i] * inv
			}
		}
		return &SVD{U: u, S: s, V: v}, nil
	}
	at := a.T()
	eig, err := FactorSymEigen(MulT(at, at)) // Aᵀ A, n-by-n
	if err != nil {
		return nil, fmt.Errorf("mat: ThinSVD: %w", err)
	}
	s, rank := singularValues(eig.Values)
	v := firstCols(eig.Vectors, rank)
	u := Zeros(m, rank)
	for j := 0; j < rank; j++ {
		col := MulVec(a, v.Col(j))
		inv := 1 / s[j]
		for i := 0; i < m; i++ {
			u.data[i*rank+j] = col[i] * inv
		}
	}
	return &SVD{U: u, S: s, V: v}, nil
}

// truncSVDIters is the number of power iterations TruncatedSVD applies to
// the start block. Each application of A·Aᵀ sharpens the subspace by the
// square of the singular-value ratios; three passes with the doubled
// oversampling below hold the leading Ritz values to ~1e-6 relative even
// on flat Marchenko–Pastur-like spectra, and are overkill for the
// fast-decaying POD spectra this routine targets.
const truncSVDIters = 3

// TruncatedSVD computes the leading k singular triplets of a by blocked
// subspace iteration with Rayleigh–Ritz extraction: a deterministic start
// block of evenly spaced columns of A is orthonormalized, powered through
// A·Aᵀ, and the small projected problem Qᵀ·A is solved exactly with
// ThinSVD. Cost is O(m·n·k) per iteration instead of ThinSVD's O(min(m,n)³)
// Gram eigendecomposition, which is the difference between milliseconds and
// seconds when k ≪ min(m, n).
//
// Fewer than k triplets are returned when the numerical rank of a is below
// k — in that case the returned spectrum is the whole of it. The requested
// k must leave room for the internal oversampling; callers should fall back
// to ThinSVD when k is no longer small against min(m, n) (Fit in package
// basis does exactly that).
func TruncatedSVD(a *Matrix, k int) (*SVD, error) {
	m, n := a.rows, a.cols
	if k <= 0 {
		return nil, fmt.Errorf("mat: TruncatedSVD: rank %d not positive", k)
	}
	minDim := m
	if n < minDim {
		minDim = n
	}
	block := 2*k + 8 // heavy oversampling stabilizes the trailing Ritz values
	if block >= minDim {
		svd, err := ThinSVD(a)
		if err != nil {
			return nil, err
		}
		return truncateSVD(svd, k), nil
	}
	// Deterministic start: evenly spaced columns of A span a generic slice
	// of its range (training columns are sample-ordered, so the stride
	// spreads the block across the whole collection).
	y := Zeros(m, block)
	stride := n / block
	for j := 0; j < block; j++ {
		src := j * stride
		for i := 0; i < m; i++ {
			y.data[i*block+j] = a.data[i*n+src]
		}
	}
	q := orthonormalizeCols(y)
	at := a.T()
	for it := 0; it < truncSVDIters; it++ {
		z := Mul(at, q) // Aᵀ·Q, n-by-cols(q)
		q = orthonormalizeCols(Mul(a, z))
	}
	b := Mul(q.T(), a) // cols(q)-by-n projected problem
	small, err := ThinSVD(b)
	if err != nil {
		return nil, fmt.Errorf("mat: TruncatedSVD: projected problem: %w", err)
	}
	return truncateSVD(&SVD{U: Mul(q, small.U), S: small.S, V: small.V}, k), nil
}

// truncateSVD keeps the leading k triplets (no-op when fewer exist).
func truncateSVD(svd *SVD, k int) *SVD {
	if len(svd.S) <= k {
		return svd
	}
	return &SVD{U: firstCols(svd.U, k), S: svd.S[:k], V: firstCols(svd.V, k)}
}

// orthonormalizeCols runs modified Gram–Schmidt with one re-orthogonalization
// pass on the columns of y, dropping columns that become numerically
// dependent. The result has orthonormal columns spanning range(y).
func orthonormalizeCols(y *Matrix) *Matrix {
	m, l := y.rows, y.cols
	cols := make([][]float64, 0, l)
	for j := 0; j < l; j++ {
		c := make([]float64, m)
		for i := 0; i < m; i++ {
			c[i] = y.data[i*l+j]
		}
		orig := vecNorm(c)
		for pass := 0; pass < 2; pass++ {
			for _, qc := range cols {
				dot := 0.0
				for i := range c {
					dot += qc[i] * c[i]
				}
				for i := range c {
					c[i] -= dot * qc[i]
				}
			}
		}
		nrm := vecNorm(c)
		if nrm <= 1e-10*orig || nrm == 0 {
			continue // dependent on the columns already kept
		}
		inv := 1 / nrm
		for i := range c {
			c[i] *= inv
		}
		cols = append(cols, c)
	}
	out := Zeros(m, len(cols))
	for j, c := range cols {
		for i := 0; i < m; i++ {
			out.data[i*len(cols)+j] = c[i]
		}
	}
	return out
}

func vecNorm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// singularValues converts descending Gram eigenvalues to singular values and
// returns the numerical rank under SVDRankTol. Small negative eigenvalues
// (Jacobi roundoff on rank-deficient input) clamp to zero.
func singularValues(eigvals []float64) ([]float64, int) {
	s := make([]float64, len(eigvals))
	for i, v := range eigvals {
		if v > 0 {
			s[i] = math.Sqrt(v)
		}
	}
	cut := SVDRankTol * s[0]
	rank := 0
	for _, v := range s {
		if v > cut && v > 0 {
			rank++
		}
	}
	return s[:rank], rank
}

// firstCols copies the leading k columns of m into a new matrix.
func firstCols(m *Matrix, k int) *Matrix {
	out := Zeros(m.rows, k)
	for i := 0; i < m.rows; i++ {
		copy(out.Row(i), m.Row(i)[:k])
	}
	return out
}
