package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The kernels in this package split work across a small persistent pool of
// goroutines. The pool is sized to GOMAXPROCS-1 (the caller always executes
// one share itself) and started lazily on first use; work is handed off over
// an unbuffered channel with an inline fallback, so a saturated pool — or a
// nested parallel section — degrades to serial execution instead of queueing
// or deadlocking.
//
// Determinism: work is partitioned by index range and every output element is
// written by exactly one goroutine, with the same per-element operation order
// regardless of the worker count. Results are therefore bitwise identical
// whether a kernel runs serial or fully parallel.

// parDegree holds the configured parallel degree; 0 means "track GOMAXPROCS".
var parDegree atomic.Int64

var (
	poolOnce sync.Once
	poolJobs chan func() // nil when GOMAXPROCS == 1 at pool start
)

func startPool() {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 1 {
		return // single-proc: poolJobs stays nil, everything runs inline
	}
	poolJobs = make(chan func())
	for i := 0; i < n; i++ {
		go func() {
			for f := range poolJobs {
				f()
			}
		}()
	}
}

// Parallelism returns the maximum number of concurrent shares a kernel call
// may split into. The default tracks runtime.GOMAXPROCS.
func Parallelism() int {
	if d := parDegree.Load(); d > 0 {
		return int(d)
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism bounds the number of concurrent shares used by the blocked
// kernels and returns the previous bound. n <= 0 restores the default
// (GOMAXPROCS). SetParallelism(1) forces fully serial execution; results are
// identical either way, so the knob exists for benchmarking serial baselines
// and for embedding in already-parallel callers.
func SetParallelism(n int) int {
	prev := int(parDegree.Load())
	if prev == 0 {
		prev = runtime.GOMAXPROCS(0)
	}
	if n <= 0 {
		parDegree.Store(0)
	} else {
		parDegree.Store(int64(n))
	}
	return prev
}

// parallelFor partitions [0, n) into contiguous chunks of at least minChunk
// indices and runs fn on each, using the worker pool for all but the first
// chunk. It returns after every chunk has completed. fn must not depend on
// chunk execution order; chunks never overlap.
func parallelFor(n, minChunk int, fn func(lo, hi int)) {
	parallelForShares(n, minChunk, 0, fn)
}

// ParallelFor runs fn over contiguous, non-overlapping chunks of [0, n) on
// the package worker pool, returning after every chunk completes. minChunk
// bounds the smallest chunk; maxShares additionally caps the number of
// concurrent shares (<= 0 means the kernel default, SetParallelism /
// GOMAXPROCS). Chunk boundaries depend only on n and the effective share
// count, never on scheduling, so callers that partition output by index —
// the pattern every kernel here uses — stay bitwise deterministic. Nested
// calls (fn itself invoking kernels or ParallelFor) are safe: a saturated
// pool degrades to inline execution instead of queueing or deadlocking.
func ParallelFor(n, minChunk, maxShares int, fn func(lo, hi int)) {
	parallelForShares(n, minChunk, maxShares, fn)
}

// Submit hands f to the package worker pool without blocking and reports
// whether a worker accepted it. When it returns false — a single-proc
// machine, a saturated pool, or a nested parallel section — the caller must
// run f itself; that inline fallback is the same degradation rule the
// kernels use, so submission never queues or deadlocks. Unlike ParallelFor,
// Submit takes a caller-owned func value, which lets hot loops dispatch
// preallocated jobs with zero allocations per call (the pattern the sparse
// solver's step kernels rely on).
func Submit(f func()) bool {
	poolOnce.Do(startPool)
	if poolJobs == nil {
		return false
	}
	select {
	case poolJobs <- f:
		return true
	default:
		return false
	}
}

func parallelForShares(n, minChunk, maxShares int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	p := Parallelism()
	if maxShares > 0 && p > maxShares {
		p = maxShares
	}
	if max := n / minChunk; p > max {
		p = max
	}
	if p <= 1 {
		fn(0, n)
		return
	}
	poolOnce.Do(startPool)
	if poolJobs == nil {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for c := 1; c < p; c++ {
		lo, hi := c*n/p, (c+1)*n/p
		if lo == hi {
			continue
		}
		wg.Add(1)
		job := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		select {
		case poolJobs <- job:
		default:
			job() // pool busy (or nested call): run this share inline
		}
	}
	fn(0, n/p)
	wg.Wait()
}
