package mat

import (
	"math/rand"
	"testing"
)

func benchMatrix(n, m int) *Matrix {
	rng := rand.New(rand.NewSource(1))
	return randMatrix(rng, n, m)
}

func BenchmarkMul128(b *testing.B) {
	x := benchMatrix(128, 128)
	y := benchMatrix(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

// BenchmarkMulSerial128 is the pre-kernel naive triple loop at the same
// shape: the serial baseline the blocked kernel's speedup is measured
// against (cmd/benchreport pairs the two).
func BenchmarkMulSerial128(b *testing.B) {
	x := benchMatrix(128, 128)
	y := benchMatrix(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mulNaive(x, y)
	}
}

func BenchmarkMul256(b *testing.B) {
	x := benchMatrix(256, 256)
	y := benchMatrix(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMulSerial256(b *testing.B) {
	x := benchMatrix(256, 256)
	y := benchMatrix(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mulNaive(x, y)
	}
}

func BenchmarkMul512(b *testing.B) {
	x := benchMatrix(512, 512)
	y := benchMatrix(512, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMulSerial512(b *testing.B) {
	x := benchMatrix(512, 512)
	y := benchMatrix(512, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mulNaive(x, y)
	}
}

func BenchmarkMulInto128(b *testing.B) {
	x := benchMatrix(128, 128)
	y := benchMatrix(128, 128)
	dst := Zeros(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}

func BenchmarkMulTall(b *testing.B) {
	// The K-by-N times N-by-M shape of the group-lasso Gram build.
	x := benchMatrix(30, 2000)
	y := benchMatrix(2000, 90)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

// BenchmarkMulTGram is the Gram product Z·Zᵀ exactly as the group-lasso
// solvers now compute it: contraction along contiguous rows, no transpose.
func BenchmarkMulTGram(b *testing.B) {
	z := benchMatrix(90, 2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulT(z, z)
	}
}

// BenchmarkMulTGramSerial is the same product through the pre-kernel path:
// materialize Zᵀ, then naive multiply.
func BenchmarkMulTGramSerial(b *testing.B) {
	z := benchMatrix(90, 2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mulNaive(z, z.T())
	}
}

func BenchmarkFactorQR(b *testing.B) {
	// The OLS refit shape: N samples by Q selected sensors.
	a := benchMatrix(2000, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FactorQR(a)
	}
}

func BenchmarkQRSolveMatrix(b *testing.B) {
	a := benchMatrix(2000, 32)
	rhs := benchMatrix(2000, 240)
	f := FactorQR(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.SolveMatrix(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholesky(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := spdMatrix(rng, 240) // thermal-network size
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FactorCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEigen(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := spdMatrix(rng, 90) // per-core candidate covariance size
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FactorSymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStandardize(b *testing.B) {
	m := benchMatrix(240, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Standardize(m)
	}
}
