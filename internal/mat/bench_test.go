package mat

import (
	"math/rand"
	"testing"
)

func benchMatrix(n, m int) *Matrix {
	rng := rand.New(rand.NewSource(1))
	return randMatrix(rng, n, m)
}

func BenchmarkMul128(b *testing.B) {
	x := benchMatrix(128, 128)
	y := benchMatrix(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMulTall(b *testing.B) {
	// The K-by-N times N-by-M shape of the group-lasso Gram build.
	x := benchMatrix(30, 2000)
	y := benchMatrix(2000, 90)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkFactorQR(b *testing.B) {
	// The OLS refit shape: N samples by Q selected sensors.
	a := benchMatrix(2000, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FactorQR(a)
	}
}

func BenchmarkQRSolveMatrix(b *testing.B) {
	a := benchMatrix(2000, 32)
	rhs := benchMatrix(2000, 240)
	f := FactorQR(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.SolveMatrix(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholesky(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := spdMatrix(rng, 240) // thermal-network size
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FactorCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEigen(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := spdMatrix(rng, 90) // per-core candidate covariance size
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FactorSymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStandardize(b *testing.B) {
	m := benchMatrix(240, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Standardize(m)
	}
}
