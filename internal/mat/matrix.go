// Package mat implements the dense linear-algebra kernels used throughout
// voltsense: matrices, vectors, factorizations (QR, Cholesky, LU) and the
// statistical helpers (means, standard deviations, correlation) needed by the
// group-lasso and least-squares fitting code.
//
// The package is deliberately small and self-contained: the reproduction
// targets a stdlib-only build, so everything from matrix multiply to
// Householder QR is written here. Matrices are dense, row-major, and sized
// at construction; all operations check dimensions and panic on mismatch,
// which in this codebase always indicates a programming error rather than a
// data error.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix.
//
// The zero value is an empty 0x0 matrix. Use New, Zeros, Eye or FromRows to
// build useful instances.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// New returns an r-by-c matrix backed by data, which must have length r*c.
// The matrix aliases data; mutations through either are visible to both.
func New(r, c int, data []float64) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Matrix{rows: r, cols: c, data: data}
}

// Zeros returns a new r-by-c matrix of zeros.
func Zeros(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// Eye returns the n-by-n identity matrix.
func Eye(n int) *Matrix {
	m := Zeros(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows, copying the
// data.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return Zeros(0, 0)
	}
	c := len(rows[0])
	m := Zeros(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d entries, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetCol assigns column j from v, which must have length Rows().
func (m *Matrix) SetCol(j int, v []float64) {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: SetCol length %d, want %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Matrix{rows: m.rows, cols: m.cols, data: d}
}

// Data returns the underlying row-major storage (aliased, not copied).
func (m *Matrix) Data() []float64 { return m.data }

// T returns a new matrix that is the transpose of m.
func (m *Matrix) T() *Matrix {
	t := Zeros(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range ri {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	sameShape(a, b, "Add")
	return AddInto(Zeros(a.rows, a.cols), a, b)
}

// Sub returns a - b.
func Sub(a, b *Matrix) *Matrix {
	sameShape(a, b, "Sub")
	return SubInto(Zeros(a.rows, a.cols), a, b)
}

// Scale returns s * a.
func Scale(s float64, a *Matrix) *Matrix {
	return ScaleInto(Zeros(a.rows, a.cols), s, a)
}

func sameShape(a, b *Matrix, op string) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product a * b, computed by the tiled parallel
// kernel in kernels.go (see MulInto for the allocation-free variant).
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	return MulInto(Zeros(a.rows, b.cols), a, b)
}

// MulVec returns the matrix-vector product a * x.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d * %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MulTVec returns the product aᵀ * x without forming the transpose.
func MulTVec(a *Matrix, x []float64) []float64 {
	if a.rows != len(x) {
		panic(fmt.Sprintf("mat: MulTVec shape mismatch %dx%d ᵀ * %d", a.rows, a.cols, len(x)))
	}
	out := make([]float64, a.cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm sqrt(sum a_ij^2).
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry, or 0 for an empty matrix.
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equalish reports whether a and b have the same shape and agree entrywise
// within tol.
func Equalish(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// SelectRows returns a new matrix holding the rows of m named by idx, in
// order. Indices may repeat.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := Zeros(len(idx), m.cols)
	for k, i := range idx {
		if i < 0 || i >= m.rows {
			panic(fmt.Sprintf("mat: SelectRows index %d out of range %d", i, m.rows))
		}
		copy(out.Row(k), m.Row(i))
	}
	return out
}

// SelectCols returns a new matrix holding the columns of m named by idx, in
// order. Indices may repeat.
func (m *Matrix) SelectCols(idx []int) *Matrix {
	out := Zeros(m.rows, len(idx))
	for k, j := range idx {
		if j < 0 || j >= m.cols {
			panic(fmt.Sprintf("mat: SelectCols index %d out of range %d", j, m.cols))
		}
		for i := 0; i < m.rows; i++ {
			out.data[i*out.cols+k] = m.data[i*m.cols+j]
		}
	}
	return out
}
