package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// spdMatrix builds a random symmetric positive definite matrix AᵀA + I.
func spdMatrix(rng *rand.Rand, n int) *Matrix {
	a := randMatrix(rng, n, n)
	s := Mul(a.T(), a)
	for i := 0; i < n; i++ {
		s.Set(i, i, s.At(i, i)+1)
	}
	return s
}

func TestQRSolveExact(t *testing.T) {
	// Square well-conditioned system: the least-squares solution is exact.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := []float64{5, 10}
	f := FactorQR(a)
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

// Property: for a random overdetermined consistent system A x* = b, QR
// recovers x*.
func TestQRRecoversConsistentSolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		m := n + r.Intn(10)
		a := randMatrix(r, m, n)
		xStar := make([]float64, n)
		for i := range xStar {
			xStar[i] = r.NormFloat64()
		}
		b := MulVec(a, xStar)
		x, err := FactorQR(a).Solve(b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-xStar[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: QR least-squares residual is orthogonal to the column space:
// Aᵀ(Ax − b) = 0.
func TestQRNormalEquationsResidual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		m := n + 2 + r.Intn(10)
		a := randMatrix(r, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := FactorQR(a).Solve(b)
		if err != nil {
			return false
		}
		res := SubVec(MulVec(a, x), b)
		grad := MulTVec(a, res)
		return NormInf(grad) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQRSolveMatrixMultiRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMatrix(rng, 10, 4)
	xStar := randMatrix(rng, 4, 3)
	b := Mul(a, xStar)
	x, err := FactorQR(a).SolveMatrix(b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equalish(x, xStar, 1e-8) {
		t.Error("SolveMatrix did not recover the planted solution")
	}
}

func TestQRSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}}) // rank 1
	_, err := FactorQR(a).Solve([]float64{1, 2, 3})
	if err == nil {
		t.Fatal("expected ErrSingular for rank-deficient matrix")
	}
}

func TestQRRCond(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	good := FactorQR(Add(randMatrix(rng, 5, 5), Scale(10, Eye(5))))
	if good.RCond() < 1e-4 {
		t.Errorf("well-conditioned RCond = %v, suspiciously small", good.RCond())
	}
	bad := FactorQR(FromRows([][]float64{{1, 0}, {0, 1e-14}}))
	if bad.RCond() > 1e-10 {
		t.Errorf("ill-conditioned RCond = %v, suspiciously large", bad.RCond())
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := spdMatrix(r, n)
		c, err := FactorCholesky(a)
		if err != nil {
			return false
		}
		return Equalish(Mul(c.L(), c.L().T()), a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCholeskySolve(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := spdMatrix(r, n)
		xStar := make([]float64, n)
		for i := range xStar {
			xStar[i] = r.NormFloat64()
		}
		b := MulVec(a, xStar)
		c, err := FactorCholesky(a)
		if err != nil {
			return false
		}
		x := c.Solve(b)
		for i := range x {
			if math.Abs(x[i]-xStar[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := FactorCholesky(a); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.LogDet(), math.Log(36); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogDet = %v, want %v", got, want)
	}
}

func TestLUSolveAndDet(t *testing.T) {
	a := FromRows([][]float64{{0, 2}, {1, 1}}) // needs pivoting
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f.Det(), -2.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Det = %v, want %v", got, want)
	}
	x := f.Solve([]float64{4, 3})
	// 2y = 4 → y = 2; x + y = 3 → x = 1.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v, want [1 2]", x)
	}
}

// Property: LU solve inverts multiplication for random nonsingular systems.
func TestLURoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := Add(randMatrix(r, n, n), Scale(5, Eye(n)))
		xStar := make([]float64, n)
		for i := range xStar {
			xStar[i] = r.NormFloat64()
		}
		lu, err := FactorLU(a)
		if err != nil {
			return false
		}
		x := lu.Solve(MulVec(a, xStar))
		for i := range x {
			if math.Abs(x[i]-xStar[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := Add(randMatrix(rng, 6, 6), Scale(4, Eye(6)))
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := Mul(a, f.Inverse()); !Equalish(got, Eye(6), 1e-9) {
		t.Error("A * A⁻¹ != I")
	}
}

func TestQRvsCholeskyOnNormalEquations(t *testing.T) {
	// The two solvers must agree on the same least-squares problem.
	rng := rand.New(rand.NewSource(10))
	a := randMatrix(rng, 30, 5)
	b := make([]float64, 30)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xQR, err := FactorQR(a).Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	ata := Mul(a.T(), a)
	atb := MulTVec(a, b)
	c, err := FactorCholesky(ata)
	if err != nil {
		t.Fatal(err)
	}
	xChol := c.Solve(atb)
	for i := range xQR {
		if math.Abs(xQR[i]-xChol[i]) > 1e-8 {
			t.Fatalf("QR and Cholesky disagree at %d: %v vs %v", i, xQR[i], xChol[i])
		}
	}
}
