package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := Zeros(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	New(2, 3, make([]float64, 5))
}

func TestAtSetRoundTrip(t *testing.T) {
	m := Zeros(3, 4)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(2, 1); got != 0 {
		t.Fatalf("At(2,1) = %v, want 0", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := Zeros(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	m.At(2, 0)
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestEyeMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 5, 7)
	if got := Mul(Eye(5), a); !Equalish(got, a, 1e-14) {
		t.Error("I*A != A")
	}
	if got := Mul(a, Eye(7)); !Equalish(got, a, 1e-14) {
		t.Error("A*I != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := Mul(a, b); !Equalish(got, want, 0) {
		t.Fatalf("Mul = %v, want %v", got.data, want.data)
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for incompatible shapes")
		}
	}()
	Mul(Zeros(2, 3), Zeros(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 4, 6)
	if !Equalish(a.T().T(), a, 0) {
		t.Error("(Aᵀ)ᵀ != A")
	}
}

// Property: matrix multiplication distributes over addition.
func TestMulDistributesOverAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		m := 1 + r.Intn(8)
		k := 1 + r.Intn(8)
		a := randMatrix(r, n, m)
		b := randMatrix(r, m, k)
		c := randMatrix(r, m, k)
		lhs := Mul(a, Add(b, c))
		rhs := Add(Mul(a, b), Mul(a, c))
		return Equalish(lhs, rhs, 1e-10)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestMulTransposeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		m := 1 + r.Intn(8)
		k := 1 + r.Intn(8)
		a := randMatrix(r, n, m)
		b := randMatrix(r, m, k)
		return Equalish(Mul(a, b).T(), Mul(b.T(), a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMatrix(rng, 6, 4)
	x := make([]float64, 4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	xm := Zeros(4, 1)
	xm.SetCol(0, x)
	want := Mul(a, xm).Col(0)
	got := MulVec(a, x)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMulTVecMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(rng, 6, 4)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := MulVec(a.T(), x)
	got := MulTVec(a, x)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-12 {
			t.Fatalf("MulTVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSelectRowsCols(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	r := m.SelectRows([]int{2, 0})
	if r.At(0, 0) != 7 || r.At(1, 2) != 3 {
		t.Errorf("SelectRows wrong: %v", r.data)
	}
	c := m.SelectCols([]int{1, 1})
	if c.At(0, 0) != 2 || c.At(2, 1) != 8 {
		t.Errorf("SelectCols wrong: %v", c.data)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromRows([][]float64{{3, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestScaleSub(t *testing.T) {
	a := FromRows([][]float64{{2, -4}})
	if got := Scale(0.5, a); got.At(0, 0) != 1 || got.At(0, 1) != -2 {
		t.Errorf("Scale wrong: %v", got.data)
	}
	if got := Sub(a, a); got.FrobeniusNorm() != 0 {
		t.Errorf("A-A != 0: %v", got.data)
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{-7, 2}, {3, 1}})
	if got := m.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
	if got := Zeros(0, 0).MaxAbs(); got != 0 {
		t.Fatalf("empty MaxAbs = %v, want 0", got)
	}
}
