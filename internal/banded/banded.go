// Package banded implements symmetric banded matrices and a banded Cholesky
// factorization.
//
// The power-delivery mesh in voltsense is a regular 2-D grid, so the system
// matrix (G + C/h) of the backward-Euler transient solve is symmetric
// positive definite with bandwidth equal to the grid width. Factoring it once
// in banded form and reusing the factor for every time step is the fast path
// of the transient engine; the iterative solver in package sparse is kept as
// an independent cross-check.
package banded

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite mirrors mat.ErrNotPositiveDefinite for the banded
// factorization.
var ErrNotPositiveDefinite = errors.New("banded: matrix is not positive definite")

// SymBanded is a symmetric n-by-n matrix with half-bandwidth bw, storing the
// diagonal and the bw sub-diagonals. Element (i, j) with i >= j and
// i-j <= bw lives at data[i*(bw+1) + (i-j)].
type SymBanded struct {
	n, bw int
	data  []float64
}

// NewSymBanded returns a zero symmetric banded matrix of order n with
// half-bandwidth bw.
func NewSymBanded(n, bw int) *SymBanded {
	if n < 0 || bw < 0 {
		panic(fmt.Sprintf("banded: invalid size n=%d bw=%d", n, bw))
	}
	if bw >= n && n > 0 {
		bw = n - 1
	}
	return &SymBanded{n: n, bw: bw, data: make([]float64, n*(bw+1))}
}

// Order returns n.
func (s *SymBanded) Order() int { return s.n }

// Bandwidth returns the half-bandwidth.
func (s *SymBanded) Bandwidth() int { return s.bw }

// At returns element (i, j). Entries outside the band are zero.
func (s *SymBanded) At(i, j int) float64 {
	s.check(i, j)
	if i < j {
		i, j = j, i
	}
	if i-j > s.bw {
		return 0
	}
	return s.data[i*(s.bw+1)+(i-j)]
}

// Set assigns element (i, j) (and by symmetry (j, i)). Setting outside the
// band panics.
func (s *SymBanded) Set(i, j int, v float64) {
	s.check(i, j)
	if i < j {
		i, j = j, i
	}
	if i-j > s.bw {
		panic(fmt.Sprintf("banded: Set(%d,%d) outside bandwidth %d", i, j, s.bw))
	}
	s.data[i*(s.bw+1)+(i-j)] = v
}

// Add accumulates v into element (i, j) (and (j, i)).
func (s *SymBanded) Add(i, j int, v float64) {
	s.Set(i, j, s.At(i, j)+v)
}

func (s *SymBanded) check(i, j int) {
	if i < 0 || i >= s.n || j < 0 || j >= s.n {
		panic(fmt.Sprintf("banded: index (%d,%d) out of range %d", i, j, s.n))
	}
}

// Clone returns a deep copy.
func (s *SymBanded) Clone() *SymBanded {
	d := make([]float64, len(s.data))
	copy(d, s.data)
	return &SymBanded{n: s.n, bw: s.bw, data: d}
}

// MulVec returns s * x using the symmetric band structure.
func (s *SymBanded) MulVec(x []float64) []float64 {
	if len(x) != s.n {
		panic(fmt.Sprintf("banded: MulVec length %d, want %d", len(x), s.n))
	}
	y := make([]float64, s.n)
	w := s.bw + 1
	for i := 0; i < s.n; i++ {
		// Diagonal.
		y[i] += s.data[i*w] * x[i]
		// Sub-diagonal entries (i, i-d) contribute to rows i and i-d.
		lo := i - s.bw
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			v := s.data[i*w+(i-j)]
			if v == 0 {
				continue
			}
			y[i] += v * x[j]
			y[j] += v * x[i]
		}
	}
	return y
}

// CholFactor is the banded Cholesky factor L (same band structure) of a
// symmetric positive definite banded matrix: A = L Lᵀ.
type CholFactor struct {
	n, bw int
	data  []float64 // same layout as SymBanded
}

// Factor computes the banded Cholesky factorization of s. s is not modified.
func Factor(s *SymBanded) (*CholFactor, error) {
	n, bw := s.n, s.bw
	w := bw + 1
	l := make([]float64, len(s.data))
	copy(l, s.data)
	for j := 0; j < n; j++ {
		d := l[j*w]
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		l[j*w] = d
		hi := j + bw
		if hi >= n {
			hi = n - 1
		}
		for i := j + 1; i <= hi; i++ {
			l[i*w+(i-j)] /= d
		}
		// Rank-1 update of the trailing band: A[i][k] -= L[i][j]*L[k][j].
		for k := j + 1; k <= hi; k++ {
			lkj := l[k*w+(k-j)]
			if lkj == 0 {
				continue
			}
			for i := k; i <= hi; i++ {
				l[i*w+(i-k)] -= l[i*w+(i-j)] * lkj
			}
		}
	}
	return &CholFactor{n: n, bw: bw, data: l}, nil
}

// Solve returns x with A x = b, overwriting nothing; b is not modified.
func (c *CholFactor) Solve(b []float64) []float64 {
	if len(b) != c.n {
		panic(fmt.Sprintf("banded: Solve length %d, want %d", len(b), c.n))
	}
	x := make([]float64, c.n)
	copy(x, b)
	c.SolveInPlace(x)
	return x
}

// SolveInto writes the solution of A x = b into dst without touching b.
// dst and b must have length n and must not alias. Like SolveInPlace it
// allocates nothing; it exists so a caller with separate state and
// right-hand-side buffers (the transient engine's step) avoids the extra
// copy a Solve call would force.
func (c *CholFactor) SolveInto(dst, b []float64) {
	if len(b) != c.n || len(dst) != c.n {
		panic(fmt.Sprintf("banded: SolveInto lengths %d, %d, want %d", len(dst), len(b), c.n))
	}
	copy(dst, b)
	c.SolveInPlace(dst)
}

// SolveInPlace overwrites b with the solution of A x = b. It allocates
// nothing, which matters in the per-time-step inner loop of the transient
// engine.
func (c *CholFactor) SolveInPlace(b []float64) {
	n, bw, w := c.n, c.bw, c.bw+1
	// Forward: L y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			s -= c.data[i*w+(i-j)] * b[j]
		}
		b[i] = s / c.data[i*w]
	}
	// Backward: Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		hi := i + bw
		if hi >= n {
			hi = n - 1
		}
		for k := i + 1; k <= hi; k++ {
			s -= c.data[k*w+(k-i)] * b[k]
		}
		b[i] = s / c.data[i*w]
	}
}
