package banded

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"voltsense/internal/mat"
)

// randSPDBanded builds a random diagonally dominant symmetric banded matrix,
// which is guaranteed positive definite.
func randSPDBanded(rng *rand.Rand, n, bw int) *SymBanded {
	s := NewSymBanded(n, bw)
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		rowSum := 0.0
		for j := lo; j < i; j++ {
			v := rng.NormFloat64()
			s.Set(i, j, v)
			rowSum += math.Abs(v)
		}
		s.Set(i, i, rowSum+1+rng.Float64()*float64(bw+1))
	}
	// Fix diagonals so full rows (including upper entries) are dominant.
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				sum += math.Abs(s.At(i, j))
			}
		}
		s.Set(i, i, sum+1)
	}
	return s
}

func toDense(s *SymBanded) *mat.Matrix {
	n := s.Order()
	d := mat.Zeros(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d.Set(i, j, s.At(i, j))
		}
	}
	return d
}

func TestAtSetSymmetry(t *testing.T) {
	s := NewSymBanded(5, 2)
	s.Set(3, 1, 7)
	if s.At(1, 3) != 7 {
		t.Fatalf("At(1,3) = %v, want 7 (symmetry)", s.At(1, 3))
	}
	if s.At(0, 4) != 0 {
		t.Fatalf("outside band should read 0, got %v", s.At(0, 4))
	}
}

func TestSetOutsideBandPanics(t *testing.T) {
	s := NewSymBanded(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Set(0, 4, 1)
}

func TestBandwidthClamped(t *testing.T) {
	s := NewSymBanded(3, 10)
	if s.Bandwidth() != 2 {
		t.Fatalf("Bandwidth = %d, want clamped 2", s.Bandwidth())
	}
}

func TestAddAccumulates(t *testing.T) {
	s := NewSymBanded(4, 1)
	s.Add(2, 1, 1.5)
	s.Add(1, 2, 2.5) // symmetric access
	if got := s.At(2, 1); got != 4 {
		t.Fatalf("At(2,1) = %v, want 4", got)
	}
}

// Property: banded MulVec matches the dense product.
func TestMulVecMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		bw := rng.Intn(n)
		s := randSPDBanded(rng, n, bw)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := mat.MulVec(toDense(s), x)
		got := s.MulVec(x)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Factor+Solve inverts MulVec.
func TestFactorSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		bw := rng.Intn(n)
		s := randSPDBanded(rng, n, bw)
		xStar := make([]float64, n)
		for i := range xStar {
			xStar[i] = rng.NormFloat64()
		}
		b := s.MulVec(xStar)
		c, err := Factor(s)
		if err != nil {
			return false
		}
		x := c.Solve(b)
		for i := range x {
			if math.Abs(x[i]-xStar[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFactorMatchesDenseCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := randSPDBanded(rng, 12, 3)
	c, err := Factor(s)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := mat.FactorCholesky(toDense(s))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		for j := 0; j <= i; j++ {
			var got float64
			if i-j <= c.bw {
				got = c.data[i*(c.bw+1)+(i-j)]
			}
			want := dense.L().At(i, j)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("L(%d,%d) = %v, dense says %v", i, j, got, want)
			}
		}
	}
}

func TestFactorRejectsIndefinite(t *testing.T) {
	s := NewSymBanded(2, 1)
	s.Set(0, 0, 1)
	s.Set(1, 1, 1)
	s.Set(1, 0, 2) // eigenvalues 3, -1
	if _, err := Factor(s); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
}

func TestSolveInPlaceMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := randSPDBanded(rng, 25, 5)
	c, err := Factor(s)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 25)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := c.Solve(b)
	c.SolveInPlace(b)
	for i := range b {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("SolveInPlace[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := NewSymBanded(3, 1)
	s.Set(1, 1, 2)
	c := s.Clone()
	c.Set(1, 1, 9)
	if s.At(1, 1) != 2 {
		t.Fatal("Clone shares storage")
	}
}

func BenchmarkFactorGrid64(b *testing.B) {
	// A 64x64 grid Laplacian-like matrix: the shape the PDN solver uses.
	n, bw := 64*64, 64
	s := NewSymBanded(n, bw)
	for i := 0; i < n; i++ {
		s.Set(i, i, 4.5)
		if i%64 != 0 {
			s.Set(i, i-1, -1)
		}
		if i >= 64 {
			s.Set(i, i-64, -1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveGrid64(b *testing.B) {
	n, bw := 64*64, 64
	s := NewSymBanded(n, bw)
	for i := 0; i < n; i++ {
		s.Set(i, i, 4.5)
		if i%64 != 0 {
			s.Set(i, i-1, -1)
		}
		if i >= 64 {
			s.Set(i, i-64, -1)
		}
	}
	c, err := Factor(s)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i % 7)
	}
	buf := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, rhs)
		c.SolveInPlace(buf)
	}
}

func TestSolveIntoMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := randSPDBanded(rng, 40, 5)
	f, err := Factor(s)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 40)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	orig := append([]float64(nil), b...)
	dst := make([]float64, 40)
	f.SolveInto(dst, b)
	want := f.Solve(b)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("SolveInto[%d] = %g, Solve = %g", i, dst[i], want[i])
		}
		if b[i] != orig[i] {
			t.Fatalf("SolveInto modified its right-hand side at %d", i)
		}
	}
}

func TestSolveIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	s := randSPDBanded(rng, 64, 6)
	f, err := Factor(s)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 64)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	dst := make([]float64, 64)
	if a := testing.AllocsPerRun(50, func() { f.SolveInto(dst, b) }); a != 0 {
		t.Fatalf("SolveInto allocates %v times per run, want 0", a)
	}
}

// BenchmarkSolveInto tracks the no-copy solve the transient engine steps on;
// allocs/op must report 0.
func BenchmarkSolveInto(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	s := randSPDBanded(rng, 2048, 26)
	f, err := Factor(s)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, 2048)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	dst := make([]float64, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SolveInto(dst, rhs)
	}
}
