package workload

import (
	"math"
	"testing"

	"voltsense/internal/floorplan"
	"voltsense/internal/mat"
)

func testChip() *floorplan.Chip { return floorplan.New(floorplan.DefaultConfig()) }

func TestBenchmarksCount(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 19 {
		t.Fatalf("benchmarks = %d, want 19 (as in the paper)", len(bs))
	}
	seen := map[string]bool{}
	seeds := map[int64]bool{}
	for _, b := range bs {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if seeds[b.Seed] {
			t.Errorf("duplicate seed %d", b.Seed)
		}
		seeds[b.Seed] = true
	}
}

func TestGenerateShapeAndBounds(t *testing.T) {
	chip := testChip()
	tr := Generate(chip, Benchmarks()[0], 200, 0)
	if len(tr.Activity) != chip.NumBlocks() {
		t.Fatalf("activity rows = %d, want %d", len(tr.Activity), chip.NumBlocks())
	}
	for b, row := range tr.Activity {
		if len(row) != 200 {
			t.Fatalf("block %d trace length %d, want 200", b, len(row))
		}
		for tstep, v := range row {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("activity[%d][%d] = %v out of [0,1]", b, tstep, v)
			}
			if tr.Gated[b][tstep] && v != 0 {
				t.Fatalf("gated block %d has activity %v at step %d", b, v, tstep)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	chip := testChip()
	b := Benchmarks()[3]
	a := Generate(chip, b, 150, 7)
	c := Generate(chip, b, 150, 7)
	for i := range a.Activity {
		for j := range a.Activity[i] {
			if a.Activity[i][j] != c.Activity[i][j] {
				t.Fatalf("trace not deterministic at [%d][%d]", i, j)
			}
		}
	}
}

func TestDistinctRunsDiffer(t *testing.T) {
	chip := testChip()
	b := Benchmarks()[0]
	a := Generate(chip, b, 150, 0)
	c := Generate(chip, b, 150, 1)
	diff := 0
	for i := range a.Activity {
		for j := range a.Activity[i] {
			if a.Activity[i][j] != c.Activity[i][j] {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("different runs produced identical traces")
	}
}

func TestDistinctBenchmarksDiffer(t *testing.T) {
	chip := testChip()
	bs := Benchmarks()
	a := Generate(chip, bs[0], 100, 0)
	c := Generate(chip, bs[2], 100, 0)
	same := 0
	total := 0
	for i := range a.Activity {
		for j := range a.Activity[i] {
			total++
			if a.Activity[i][j] == c.Activity[i][j] {
				same++
			}
		}
	}
	if same == total {
		t.Fatal("different benchmarks produced identical traces")
	}
}

func TestFPBenchmarkExercisesFPU(t *testing.T) {
	chip := testChip()
	bs := Benchmarks()
	var fpBench, memBench Benchmark
	for _, b := range bs {
		if b.Name == "swaptions" {
			fpBench = b
		}
		if b.Name == "canneal" {
			memBench = b
		}
	}
	steps := 2000
	fpTrace := Generate(chip, fpBench, steps, 0)
	memTrace := Generate(chip, memBench, steps, 0)

	fpuMean := func(tr *Trace) float64 {
		var s float64
		var n int
		for _, b := range chip.Blocks {
			if b.Name == "fpu0" || b.Name == "fpu1" {
				s += mat.Mean(tr.Activity[b.ID])
				n++
			}
		}
		return s / float64(n)
	}
	if fp, mem := fpuMean(fpTrace), fpuMean(memTrace); fp <= mem {
		t.Errorf("FPU activity: swaptions %.3f <= canneal %.3f; FP benchmark should drive FPUs harder", fp, mem)
	}

	l2Mean := func(tr *Trace) float64 {
		var s float64
		var n int
		for _, b := range chip.Blocks {
			if b.Unit == floorplan.Cache {
				s += mat.Mean(tr.Activity[b.ID])
				n++
			}
		}
		return s / float64(n)
	}
	if mem, fp := l2Mean(memTrace), l2Mean(fpTrace); mem <= fp {
		t.Errorf("cache activity: canneal %.3f <= swaptions %.3f; memory benchmark should drive caches harder", mem, fp)
	}
}

func TestGatingEventsOccur(t *testing.T) {
	chip := testChip()
	tr := Generate(chip, Benchmarks()[2], 3000, 0) // canneal: high GateAggr, low FP
	transitions := 0
	for _, row := range tr.Gated {
		for j := 1; j < len(row); j++ {
			if row[j] != row[j-1] {
				transitions++
			}
		}
	}
	if transitions == 0 {
		t.Fatal("no power-gating transitions in 3000 steps; current swings need gating events")
	}
}

func TestCachesNeverPowerGated(t *testing.T) {
	chip := testChip()
	tr := Generate(chip, Benchmarks()[10], 2000, 0) // swaptions gates hard
	for _, b := range chip.Blocks {
		if b.Name == "l1d_0" || b.Name == "l2_0" || b.Name == "l1i" {
			for tstep, g := range tr.Gated[b.ID] {
				if g {
					t.Fatalf("cache block %s power-gated at step %d", b.Name, tstep)
				}
			}
		}
	}
}

func TestActivityTemporalCorrelation(t *testing.T) {
	// Supply-noise prediction relies on temporally correlated activity;
	// verify lag-1 autocorrelation is clearly positive for active blocks.
	chip := testChip()
	tr := Generate(chip, Benchmarks()[0], 2000, 0)
	row := tr.Activity[chip.Cores[0].Blocks[14].ID] // alu0
	var x, y []float64
	for j := 1; j < len(row); j++ {
		x = append(x, row[j-1])
		y = append(y, row[j])
	}
	if c := mat.Correlation(x, y); c < 0.5 {
		t.Errorf("lag-1 autocorrelation = %.3f, want > 0.5", c)
	}
}

func TestSerialPhasesAppear(t *testing.T) {
	chip := testChip()
	var fluid Benchmark
	for _, b := range Benchmarks() {
		if b.Name == "fluidanimate" { // SerialFrac 0.20
			fluid = b
		}
	}
	tr := Generate(chip, fluid, 5000, 0)
	serial := 0
	for _, phases := range tr.Phases {
		for _, p := range phases {
			if p == PhaseSerial {
				serial++
			}
		}
	}
	if serial == 0 {
		t.Fatal("no serial phases in fluidanimate; Amdahl sections drive whole-core gating")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseCompute.String() != "compute" || PhaseSerial.String() != "serial" {
		t.Error("Phase.String wrong")
	}
	if Phase(42).String() == "" {
		t.Error("unknown phase should stringify")
	}
}
