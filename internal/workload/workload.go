// Package workload is the reproduction's stand-in for GEM5 running the
// PARSEC 2.1 suite: it synthesizes per-block activity traces with the
// temporal structure that drives supply noise.
//
// The paper's pipeline only consumes runtime statistics per function block
// (later turned into power by McPAT), so the substitution preserves exactly
// the properties the methodology depends on:
//
//   - program phases (compute-bound, memory-bound, mixed, serial sections)
//     with benchmark-specific dwell times, generating low-frequency power
//     variation;
//   - short AR(1)-correlated activity noise, generating mid-frequency
//     variation;
//   - power-gating and clock-gating events when a unit goes idle, generating
//     the large abrupt current swings that cause voltage emergencies.
//
// Every benchmark is deterministic given its seed, so the 19 synthetic
// benchmarks behave like a fixed input set across training and evaluation.
package workload

import (
	"fmt"
	"math/rand"

	"voltsense/internal/floorplan"
)

// Phase is the coarse program phase a core is executing.
type Phase int

// Program phases.
const (
	PhaseCompute Phase = iota // high IPC, execution-unit dominated
	PhaseMemory               // stalls on memory, LSU/cache dominated
	PhaseMixed                // balanced
	PhaseSerial               // this core idles while one core runs the serial section
	numPhases
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseCompute:
		return "compute"
	case PhaseMemory:
		return "memory"
	case PhaseMixed:
		return "mixed"
	case PhaseSerial:
		return "serial"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Profile captures how a benchmark exercises the machine. Weights are
// relative unit utilizations in its dominant phase.
type Profile struct {
	FPWeight   float64 // floating-point intensity, 0..1
	MemWeight  float64 // memory intensity, 0..1
	Burstiness float64 // amplitude of short-term activity noise, 0..1
	PhaseLen   int     // mean phase dwell time in steps
	SerialFrac float64 // fraction of time in serial sections (Amdahl tail)
	GateAggr   float64 // how aggressively idle units power-gate, 0..1
}

// Benchmark names one synthetic workload and its machine profile.
type Benchmark struct {
	Name    string
	Seed    int64 // base seed; per-core streams derive from it
	Profile Profile
}

// Benchmarks returns the 19 synthetic workloads standing in for the paper's
// 19 PARSEC 2.1 runs: the 13 PARSEC applications plus 6 large-input
// variants. Profiles follow the published characterization of the suite
// (e.g. canneal/streamcluster memory-bound, blackscholes/swaptions
// FP-compute-bound, dedup pipeline-parallel and bursty).
func Benchmarks() []Benchmark {
	return []Benchmark{
		{"blackscholes", 101, Profile{FPWeight: 0.9, MemWeight: 0.2, Burstiness: 0.2, PhaseLen: 300, SerialFrac: 0.05, GateAggr: 0.8}},
		{"bodytrack", 102, Profile{FPWeight: 0.7, MemWeight: 0.4, Burstiness: 0.5, PhaseLen: 150, SerialFrac: 0.15, GateAggr: 0.6}},
		{"canneal", 103, Profile{FPWeight: 0.1, MemWeight: 0.9, Burstiness: 0.4, PhaseLen: 200, SerialFrac: 0.05, GateAggr: 0.9}},
		{"dedup", 104, Profile{FPWeight: 0.1, MemWeight: 0.6, Burstiness: 0.8, PhaseLen: 80, SerialFrac: 0.10, GateAggr: 0.7}},
		{"facesim", 105, Profile{FPWeight: 0.8, MemWeight: 0.5, Burstiness: 0.3, PhaseLen: 250, SerialFrac: 0.10, GateAggr: 0.5}},
		{"ferret", 106, Profile{FPWeight: 0.5, MemWeight: 0.5, Burstiness: 0.6, PhaseLen: 120, SerialFrac: 0.10, GateAggr: 0.6}},
		{"fluidanimate", 107, Profile{FPWeight: 0.8, MemWeight: 0.4, Burstiness: 0.4, PhaseLen: 180, SerialFrac: 0.20, GateAggr: 0.6}},
		{"freqmine", 108, Profile{FPWeight: 0.2, MemWeight: 0.7, Burstiness: 0.3, PhaseLen: 220, SerialFrac: 0.10, GateAggr: 0.7}},
		{"raytrace", 109, Profile{FPWeight: 0.85, MemWeight: 0.3, Burstiness: 0.3, PhaseLen: 260, SerialFrac: 0.05, GateAggr: 0.7}},
		{"streamcluster", 110, Profile{FPWeight: 0.4, MemWeight: 0.9, Burstiness: 0.5, PhaseLen: 140, SerialFrac: 0.15, GateAggr: 0.8}},
		{"swaptions", 111, Profile{FPWeight: 0.95, MemWeight: 0.15, Burstiness: 0.25, PhaseLen: 320, SerialFrac: 0.02, GateAggr: 0.85}},
		{"vips", 112, Profile{FPWeight: 0.4, MemWeight: 0.5, Burstiness: 0.7, PhaseLen: 100, SerialFrac: 0.10, GateAggr: 0.5}},
		{"x264", 113, Profile{FPWeight: 0.3, MemWeight: 0.5, Burstiness: 0.9, PhaseLen: 60, SerialFrac: 0.15, GateAggr: 0.6}},
		// Large-input variants: longer phases, deeper memory pressure.
		{"blackscholes-L", 114, Profile{FPWeight: 0.9, MemWeight: 0.3, Burstiness: 0.2, PhaseLen: 500, SerialFrac: 0.03, GateAggr: 0.8}},
		{"canneal-L", 115, Profile{FPWeight: 0.1, MemWeight: 0.95, Burstiness: 0.5, PhaseLen: 350, SerialFrac: 0.05, GateAggr: 0.9}},
		{"dedup-L", 116, Profile{FPWeight: 0.1, MemWeight: 0.7, Burstiness: 0.85, PhaseLen: 120, SerialFrac: 0.08, GateAggr: 0.7}},
		{"streamcluster-L", 117, Profile{FPWeight: 0.4, MemWeight: 0.9, Burstiness: 0.5, PhaseLen: 240, SerialFrac: 0.12, GateAggr: 0.8}},
		{"x264-L", 118, Profile{FPWeight: 0.3, MemWeight: 0.6, Burstiness: 0.95, PhaseLen: 90, SerialFrac: 0.12, GateAggr: 0.6}},
		{"fluidanimate-L", 119, Profile{FPWeight: 0.8, MemWeight: 0.5, Burstiness: 0.45, PhaseLen: 280, SerialFrac: 0.18, GateAggr: 0.6}},
	}
}

// Trace holds per-block activity over time for one benchmark run on a chip.
//
// Activity[b][t] in [0, 1] is the switching activity of block b at step t;
// Gated[b][t] reports whether block b is power-gated at step t (gated blocks
// have zero activity and near-zero leakage).
type Trace struct {
	Benchmark string
	Steps     int
	Activity  [][]float64 // [numBlocks][steps]
	Gated     [][]bool    // [numBlocks][steps]
	Phases    [][]Phase   // [numCores][steps], for diagnostics
}

// unitBase is the target utilization of each unit in each phase, before
// benchmark weighting.
func unitBase(ph Phase, p Profile) [4]float64 {
	// Index by floorplan.Unit: Frontend, Execution, Memory, Cache.
	switch ph {
	case PhaseCompute:
		return [4]float64{0.7, 0.55 + 0.4*p.FPWeight*0.5, 0.25 + 0.3*p.MemWeight, 0.25}
	case PhaseMemory:
		return [4]float64{0.35, 0.2, 0.6 + 0.35*p.MemWeight, 0.55 + 0.3*p.MemWeight}
	case PhaseMixed:
		return [4]float64{0.55, 0.45, 0.45, 0.4}
	case PhaseSerial:
		return [4]float64{0.05, 0.02, 0.05, 0.1}
	default:
		panic(fmt.Sprintf("workload: unknown phase %v", ph))
	}
}

// blockSalience scales unit-level activity down to individual blocks; e.g.
// in an integer benchmark the FP pipes see very little of the execution
// unit's activity.
func blockSalience(b *floorplan.Block, p Profile) float64 {
	switch b.Name {
	case "fpu0", "fpu1", "fp_regfile", "fp_issueq":
		return 0.15 + 0.85*p.FPWeight
	case "muldiv":
		return 0.3 + 0.4*p.FPWeight
	case "alu0", "alu1":
		return 0.9
	case "alu2":
		return 0.6
	case "lsu", "l1d_0", "l1d_1", "loadq", "storeq", "dtlb":
		return 0.4 + 0.6*p.MemWeight
	case "l2_0", "l2_1", "l2_2", "l2_3", "mshr", "prefetch":
		return 0.3 + 0.7*p.MemWeight
	default: // frontend and everything else
		return 0.8
	}
}

// gateThreshold is the activity below which a gateable block becomes a
// candidate for power gating.
const gateThreshold = 0.08

// gateable reports whether a block may be power-gated at all; caches keep
// state and are only clock-gated (modeled as activity→0 but leakage stays).
func gateable(b *floorplan.Block) bool {
	switch b.Name {
	case "l1i", "l1d_0", "l1d_1", "l2_0", "l2_1", "l2_2", "l2_3":
		return false
	default:
		return true
	}
}

// Generate synthesizes a trace of the given length for bench running on
// chip. The same (chip, bench, steps, run) arguments always produce the same
// trace; distinct run values give independent executions of the same
// benchmark (used to separate training from evaluation data).
func Generate(chip *floorplan.Chip, bench Benchmark, steps, run int) *Trace {
	nb := chip.NumBlocks()
	nc := len(chip.Cores)
	tr := &Trace{
		Benchmark: bench.Name,
		Steps:     steps,
		Activity:  make([][]float64, nb),
		Gated:     make([][]bool, nb),
		Phases:    make([][]Phase, nc),
	}
	for i := range tr.Activity {
		tr.Activity[i] = make([]float64, steps)
		tr.Gated[i] = make([]bool, steps)
	}
	for c := range tr.Phases {
		tr.Phases[c] = make([]Phase, steps)
	}

	p := bench.Profile
	const rho = 0.9 // AR(1) pole for short-term activity noise

	for _, core := range chip.Cores {
		rng := rand.New(rand.NewSource(bench.Seed*1_000_003 + int64(core.Index)*7919 + int64(run)*104729))
		phase := PhaseMixed
		dwell := 1 + rng.Intn(p.PhaseLen)
		act := make([]float64, len(core.Blocks))   // smoothed activity state
		gated := make([]bool, len(core.Blocks))    // current gate state
		idleFor := make([]int, len(core.Blocks))   // consecutive low-activity steps
		activeFor := make([]int, len(core.Blocks)) // consecutive high-demand steps while gated
		for i := range act {
			act[i] = 0.3
		}

		for t := 0; t < steps; t++ {
			if dwell--; dwell <= 0 {
				phase = nextPhase(rng, phase, p)
				dwell = 1 + rng.Intn(2*p.PhaseLen)
			}
			tr.Phases[core.Index][t] = phase
			base := unitBase(phase, p)
			for li, b := range core.Blocks {
				target := base[b.Unit] * blockSalience(b, p)
				// Short bursts: occasionally spike a block hard (tight loop
				// entry, DMA burst) scaled by benchmark burstiness.
				if rng.Float64() < 0.02*p.Burstiness {
					target = 0.95
				}
				noise := rng.NormFloat64() * 0.08 * (0.5 + p.Burstiness)
				act[li] = rho*act[li] + (1-rho)*target + noise*(1-rho)
				if act[li] < 0 {
					act[li] = 0
				}
				if act[li] > 1 {
					act[li] = 1
				}

				// Power-gating state machine: gate after a sustained idle
				// period (probabilistically, scaled by aggressiveness);
				// wake after sustained demand. Wake is fast (a few steps),
				// gating is slower — matching real gating controllers.
				demand := target
				if gated[li] {
					if demand > gateThreshold*2 {
						activeFor[li]++
						if activeFor[li] >= 2 {
							gated[li] = false
							activeFor[li] = 0
							idleFor[li] = 0
						}
					} else {
						activeFor[li] = 0
					}
				} else if gateable(b) && p.GateAggr > 0 {
					if act[li] < gateThreshold && demand < gateThreshold {
						idleFor[li]++
						if idleFor[li] >= 8 && rng.Float64() < 0.3*p.GateAggr {
							gated[li] = true
							idleFor[li] = 0
						}
					} else {
						idleFor[li] = 0
					}
				}

				a := act[li]
				if gated[li] {
					a = 0
				}
				tr.Activity[b.ID][t] = a
				tr.Gated[b.ID][t] = gated[li]
			}
		}
	}
	return tr
}

// nextPhase advances the per-core phase Markov chain.
func nextPhase(rng *rand.Rand, cur Phase, p Profile) Phase {
	r := rng.Float64()
	// Serial sections occur with probability SerialFrac regardless of the
	// current phase; otherwise pick by benchmark balance.
	if cur != PhaseSerial && r < p.SerialFrac {
		return PhaseSerial
	}
	r = rng.Float64()
	memP := 0.15 + 0.55*p.MemWeight
	compP := 0.15 + 0.55*(1-p.MemWeight)
	switch {
	case r < memP:
		return PhaseMemory
	case r < memP+compP:
		return PhaseCompute
	default:
		return PhaseMixed
	}
}
