// Package faults is the degradation tier the paper leaves implicit: Eq. 20
// assumes all Q placed sensors report forever, but on silicon sensors go
// stuck-at, drift out of calibration, or drop out entirely, and a runtime
// that keeps evaluating the full-Q model on garbage readings serves garbage
// voltage maps. This package provides the three pieces a fault-tolerant
// runtime needs:
//
//   - an injection model (Fault, Injector, ParseSpec) that corrupts reading
//     streams deterministically, for tests and for chaos drills via the
//     voltserved --fault-spec flag;
//   - a Detector that classifies each sensor from per-sensor rolling
//     statistics — dropout (non-finite readings), flatline/stuck-at (window
//     variance collapses against the training variance), and drift (the
//     rolling mean walks away from the training mean);
//   - a Guard that, on detection, atomically routes predictions to a
//     pre-fitted leave-k-out fallback model (core.FallbackSet) and reports
//     degraded state when no fallback covers the failed set.
//
// The fallback models themselves are ordinary Eq. 17 OLS refits on the
// surviving sensor subset, fitted at placement time (see
// core.FitFallbacks); this package only detects and routes.
package faults

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Kind classifies a sensor fault, both for injection and as the detector's
// diagnosis.
type Kind int

// Fault kinds.
const (
	// None marks a healthy sensor in detector reports.
	None Kind = iota
	// Stuck freezes the sensor at a constant value (injection) or marks a
	// flatlined window (detection).
	Stuck
	// Dropout makes the sensor report non-finite values (NaN), the way a
	// dead ADC or a severed scan chain presents.
	Dropout
	// Drift adds a linear ramp to the reading, modeling a sensor walking
	// out of calibration.
	Drift
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Stuck:
		return "stuck"
	case Dropout:
		return "dropout"
	case Drift:
		return "drift"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// parseKind inverts String for spec parsing.
func parseKind(s string) (Kind, error) {
	switch s {
	case "stuck":
		return Stuck, nil
	case "dropout":
		return Dropout, nil
	case "drift":
		return Drift, nil
	default:
		return None, fmt.Errorf("faults: unknown fault kind %q (want stuck, dropout, or drift)", s)
	}
}

// Fault is one injected sensor fault. Sensor indexes the reading vector
// (position 0..Q-1 in the served model's sensor order), not the global
// candidate index.
type Fault struct {
	Sensor int     // position in the reading vector
	Kind   Kind    // stuck | dropout | drift
	Start  int     // first cycle the fault is active
	Value  float64 // Stuck: the frozen reading; ignored otherwise
	Rate   float64 // Drift: volts added per cycle since Start; ignored otherwise
}

// faultJSON is the --fault-spec wire form of one fault.
type faultJSON struct {
	Sensor int     `json:"sensor"`
	Kind   string  `json:"kind"`
	Start  int     `json:"start"`
	Value  float64 `json:"value,omitempty"`
	Rate   float64 `json:"rate,omitempty"`
}

type specJSON struct {
	Faults []faultJSON `json:"faults"`
}

// ParseSpec decodes a fault-injection spec:
//
//	{"faults": [
//	  {"sensor": 2, "kind": "stuck",   "start": 100, "value": 0.93},
//	  {"sensor": 0, "kind": "dropout", "start": 250},
//	  {"sensor": 1, "kind": "drift",   "start": 50,  "rate": -0.0002}
//	]}
//
// Sensor positions are validated against the reading vector length by
// NewInjector, not here, because the spec can outlive a model reload.
func ParseSpec(data []byte) ([]Fault, error) {
	var spec specJSON
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("faults: malformed fault spec: %w", err)
	}
	if len(spec.Faults) == 0 {
		return nil, fmt.Errorf("faults: spec has no faults")
	}
	out := make([]Fault, 0, len(spec.Faults))
	for i, fj := range spec.Faults {
		k, err := parseKind(fj.Kind)
		if err != nil {
			return nil, fmt.Errorf("faults: spec entry %d: %w", i, err)
		}
		if fj.Sensor < 0 {
			return nil, fmt.Errorf("faults: spec entry %d: negative sensor %d", i, fj.Sensor)
		}
		if fj.Start < 0 {
			return nil, fmt.Errorf("faults: spec entry %d: negative start cycle %d", i, fj.Start)
		}
		if k == Stuck && (math.IsNaN(fj.Value) || math.IsInf(fj.Value, 0)) {
			return nil, fmt.Errorf("faults: spec entry %d: non-finite stuck value", i)
		}
		out = append(out, Fault{Sensor: fj.Sensor, Kind: k, Start: fj.Start, Value: fj.Value, Rate: fj.Rate})
	}
	return out, nil
}

// Injector corrupts reading vectors according to a fault list. Apply is a
// pure function of (cycle, readings), so one Injector may be shared by
// concurrent sessions without locking.
type Injector struct {
	faults []Fault
}

// NewInjector validates the fault list against the reading vector length q.
func NewInjector(faults []Fault, q int) (*Injector, error) {
	for i, f := range faults {
		if f.Sensor < 0 || f.Sensor >= q {
			return nil, fmt.Errorf("faults: fault %d targets sensor %d, model has %d", i, f.Sensor, q)
		}
		if f.Kind == None {
			return nil, fmt.Errorf("faults: fault %d has no kind", i)
		}
	}
	fs := make([]Fault, len(faults))
	copy(fs, faults)
	return &Injector{faults: fs}, nil
}

// NumFaults returns the number of configured faults.
func (in *Injector) NumFaults() int { return len(in.faults) }

// Apply overwrites the faulted sensors of readings in place for the given
// cycle. Faults whose Start is in the future leave the vector untouched.
func (in *Injector) Apply(cycle int, readings []float64) {
	for _, f := range in.faults {
		if cycle < f.Start || f.Sensor >= len(readings) {
			continue
		}
		switch f.Kind {
		case Stuck:
			readings[f.Sensor] = f.Value
		case Dropout:
			readings[f.Sensor] = math.NaN()
		case Drift:
			readings[f.Sensor] += f.Rate * float64(cycle-f.Start+1)
		}
	}
}

// sortedCopy returns a sorted copy of xs (helper shared with the guard).
func sortedCopy(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	sort.Ints(out)
	return out
}
