package faults

import (
	"fmt"
	"math"
)

// SensorStats is the training-time reference distribution of one sensor's
// raw readings — the per-row mean and standard deviation of Xˢ, computed
// when the Eq. 17 model is fitted and serialized beside the fallbacks. The
// detector judges runtime windows against these references.
type SensorStats struct {
	Mean float64
	Std  float64
}

// DetectorConfig tunes fault detection.
type DetectorConfig struct {
	// Window is the rolling-statistics window in cycles. Flatline and drift
	// need a full window before they can fire. Default 32.
	Window int
	// FlatlineFrac flags a sensor stuck when its window standard deviation
	// falls below FlatlineFrac times its training standard deviation. Real
	// supply nodes always carry noise; a flat window means the sensor froze.
	// Default 0.01.
	FlatlineFrac float64
	// DriftSigma flags a sensor drifting when its window mean deviates from
	// the training mean by more than DriftSigma training standard
	// deviations. Legitimate droops move individual readings several σ but
	// recover; a sustained window-mean excursion this large means the
	// sensor, not the rail, moved. Default 8.
	DriftSigma float64
	// DropoutCycles flags a sensor dropped out after this many consecutive
	// non-finite readings. Default 2, so a single transient glitch (which
	// the guard papers over with the last good value) is forgiven.
	DropoutCycles int
}

func (c DetectorConfig) withDefaults() (DetectorConfig, error) {
	if c.Window == 0 {
		c.Window = 32
	}
	if c.Window < 2 {
		return c, fmt.Errorf("faults: detector window %d must be at least 2", c.Window)
	}
	if c.FlatlineFrac == 0 {
		c.FlatlineFrac = 0.01
	}
	if c.FlatlineFrac < 0 {
		return c, fmt.Errorf("faults: negative FlatlineFrac %v", c.FlatlineFrac)
	}
	if c.DriftSigma == 0 {
		c.DriftSigma = 8
	}
	if c.DriftSigma < 0 {
		return c, fmt.Errorf("faults: negative DriftSigma %v", c.DriftSigma)
	}
	if c.DropoutCycles == 0 {
		c.DropoutCycles = 2
	}
	if c.DropoutCycles < 0 {
		return c, fmt.Errorf("faults: negative DropoutCycles %d", c.DropoutCycles)
	}
	return c, nil
}

// sensorState is the per-sensor rolling window plus diagnosis. The window
// holds only finite readings; non-finite readings advance the dropout
// counter instead.
type sensorState struct {
	ring     []float64
	head     int
	fill     int
	sum      float64 // running Σ over the ring
	sumSq    float64 // running Σx² over the ring
	nanRun   int     // consecutive non-finite readings
	lastGood float64 // most recent finite reading (train mean before any)
	fault    Kind    // None while healthy; sticky once set
}

// Detector classifies sensors from streaming readings. It is not
// goroutine-safe; the Guard serializes access.
//
// Faults are sticky: a sensor, once diagnosed, stays faulty until Reset.
// A silicon sensor that flatlined does not heal itself, and un-flagging one
// would flap the runtime between fallback models.
type Detector struct {
	cfg     DetectorConfig
	stats   []SensorStats
	sensors []sensorState
	faulty  []int // cached ascending positions, rebuilt on change
}

// NewDetector builds a detector for len(stats) sensors. Each sensor's
// training mean/std comes from the model artifact (core.FallbackSet.Stats).
func NewDetector(stats []SensorStats, cfg DetectorConfig) (*Detector, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(stats) == 0 {
		return nil, fmt.Errorf("faults: detector needs at least one sensor")
	}
	for i, s := range stats {
		if math.IsNaN(s.Mean) || math.IsInf(s.Mean, 0) || math.IsNaN(s.Std) || math.IsInf(s.Std, 0) || s.Std < 0 {
			return nil, fmt.Errorf("faults: bad training stats for sensor %d: mean=%v std=%v", i, s.Mean, s.Std)
		}
	}
	d := &Detector{
		cfg:     c,
		stats:   append([]SensorStats(nil), stats...),
		sensors: make([]sensorState, len(stats)),
	}
	for i := range d.sensors {
		d.sensors[i].ring = make([]float64, c.Window)
		d.sensors[i].lastGood = stats[i].Mean
	}
	return d, nil
}

// NumSensors returns the number of tracked sensors.
func (d *Detector) NumSensors() int { return len(d.sensors) }

// Observe consumes one cycle's readings (length NumSensors; non-finite
// values allowed — they are dropout evidence) and reports whether the
// faulty set changed this cycle.
func (d *Detector) Observe(readings []float64) bool {
	if len(readings) != len(d.sensors) {
		panic(fmt.Sprintf("faults: %d readings for %d sensors", len(readings), len(d.sensors)))
	}
	changed := false
	for i := range d.sensors {
		if d.observeSensor(i, readings[i]) {
			changed = true
		}
	}
	if changed {
		d.faulty = d.faulty[:0]
		for i := range d.sensors {
			if d.sensors[i].fault != None {
				d.faulty = append(d.faulty, i)
			}
		}
	}
	return changed
}

// observeSensor folds one reading into sensor i's window and reports
// whether its diagnosis changed.
func (d *Detector) observeSensor(i int, v float64) bool {
	st := &d.sensors[i]
	if st.fault != None {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			st.lastGood = v
		}
		return false
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		st.nanRun++
		if st.nanRun >= d.cfg.DropoutCycles {
			st.fault = Dropout
			return true
		}
		return false
	}
	st.nanRun = 0
	st.lastGood = v
	// Slide the ring, maintaining running first and second moments.
	if st.fill == len(st.ring) {
		old := st.ring[st.head]
		st.sum -= old
		st.sumSq -= old * old
	} else {
		st.fill++
	}
	st.ring[st.head] = v
	st.sum += v
	st.sumSq += v * v
	st.head = (st.head + 1) % len(st.ring)
	if st.fill < len(st.ring) {
		return false
	}
	n := float64(st.fill)
	mean := st.sum / n
	variance := st.sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // numeric cancellation on a truly constant window
	}
	refStd := math.Max(d.stats[i].Std, 1e-9)
	if math.Sqrt(variance) < d.cfg.FlatlineFrac*refStd {
		st.fault = Stuck
		return true
	}
	if math.Abs(mean-d.stats[i].Mean) > d.cfg.DriftSigma*refStd {
		st.fault = Drift
		return true
	}
	return false
}

// Faulty returns the faulty sensor positions, ascending. The slice is
// owned by the detector; callers must not retain it across Observe.
func (d *Detector) Faulty() []int { return d.faulty }

// Diagnosis returns sensor i's current classification (None if healthy).
func (d *Detector) Diagnosis(i int) Kind { return d.sensors[i].fault }

// LastGood returns sensor i's most recent finite reading, or its training
// mean if none has been seen — the substitute value the guard uses while a
// transient glitch has not yet been diagnosed.
func (d *Detector) LastGood(i int) float64 { return d.sensors[i].lastGood }

// Reset clears all windows and diagnoses (used after a model reload).
func (d *Detector) Reset() {
	for i := range d.sensors {
		st := &d.sensors[i]
		st.head, st.fill, st.nanRun = 0, 0, 0
		st.sum, st.sumSq = 0, 0
		st.lastGood = d.stats[i].Mean
		st.fault = None
	}
	d.faulty = d.faulty[:0]
}
