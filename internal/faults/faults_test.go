package faults

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestParseSpec(t *testing.T) {
	spec := []byte(`{"faults":[
		{"sensor":2,"kind":"stuck","start":100,"value":0.93},
		{"sensor":0,"kind":"dropout","start":250},
		{"sensor":1,"kind":"drift","start":50,"rate":-0.0002}
	]}`)
	fs, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Sensor: 2, Kind: Stuck, Start: 100, Value: 0.93},
		{Sensor: 0, Kind: Dropout, Start: 250},
		{Sensor: 1, Kind: Drift, Start: 50, Rate: -0.0002},
	}
	if !reflect.DeepEqual(fs, want) {
		t.Fatalf("parsed %+v, want %+v", fs, want)
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, bad := range []string{
		`not json`,
		`{}`,
		`{"faults":[]}`,
		`{"faults":[{"sensor":0,"kind":"gremlin","start":0}]}`,
		`{"faults":[{"sensor":-1,"kind":"stuck","start":0,"value":1}]}`,
		`{"faults":[{"sensor":0,"kind":"dropout","start":-5}]}`,
	} {
		if _, err := ParseSpec([]byte(bad)); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestInjectorApply(t *testing.T) {
	inj, err := NewInjector([]Fault{
		{Sensor: 0, Kind: Stuck, Start: 5, Value: 0.5},
		{Sensor: 1, Kind: Dropout, Start: 3},
		{Sensor: 2, Kind: Drift, Start: 2, Rate: 0.01},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := []float64{1, 1, 1}
	inj.Apply(0, r)
	if !reflect.DeepEqual(r, []float64{1, 1, 1}) {
		t.Fatalf("cycle 0 should be untouched, got %v", r)
	}
	r = []float64{1, 1, 1}
	inj.Apply(4, r)
	if r[0] != 1 {
		t.Errorf("stuck fault fired early: %v", r[0])
	}
	if !math.IsNaN(r[1]) {
		t.Errorf("dropout not injected: %v", r[1])
	}
	if math.Abs(r[2]-1.03) > 1e-12 { // 3 cycles past start at 0.01/cycle
		t.Errorf("drift at cycle 4 = %v, want 1.03", r[2])
	}
	r = []float64{1, 1, 1}
	inj.Apply(5, r)
	if r[0] != 0.5 {
		t.Errorf("stuck value = %v, want 0.5", r[0])
	}
}

func TestInjectorValidates(t *testing.T) {
	if _, err := NewInjector([]Fault{{Sensor: 3, Kind: Stuck}}, 3); err == nil {
		t.Error("out-of-range sensor accepted")
	}
	if _, err := NewInjector([]Fault{{Sensor: 0}}, 3); err == nil {
		t.Error("kindless fault accepted")
	}
}

// testStats is a plausible supply-noise distribution: mean 0.97 V, 10 mV σ.
func testStats(q int) []SensorStats {
	st := make([]SensorStats, q)
	for i := range st {
		st[i] = SensorStats{Mean: 0.97, Std: 0.01}
	}
	return st
}

// feedHealthy drives n cycles of in-distribution noisy readings.
func feedHealthy(t *testing.T, d *Detector, rng *rand.Rand, n int) {
	t.Helper()
	r := make([]float64, d.NumSensors())
	for c := 0; c < n; c++ {
		for i := range r {
			r[i] = 0.97 + 0.01*rng.NormFloat64()
		}
		if d.Observe(r) {
			t.Fatalf("healthy readings diagnosed faulty at cycle %d: %v", c, d.Faulty())
		}
	}
}

func TestDetectorHealthySensorsStayHealthy(t *testing.T) {
	d, err := NewDetector(testStats(4), DetectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	feedHealthy(t, d, rand.New(rand.NewSource(1)), 500)
	if len(d.Faulty()) != 0 {
		t.Fatalf("faulty = %v, want none", d.Faulty())
	}
}

func TestDetectorDropout(t *testing.T) {
	d, err := NewDetector(testStats(2), DetectorConfig{DropoutCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := []float64{0.97, math.NaN()}
	if d.Observe(r) {
		t.Fatal("single NaN should not diagnose yet (DropoutCycles=2)")
	}
	if !d.Observe(r) {
		t.Fatal("second consecutive NaN should diagnose dropout")
	}
	if got := d.Faulty(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("faulty = %v, want [1]", got)
	}
	if d.Diagnosis(1) != Dropout {
		t.Fatalf("diagnosis = %v, want dropout", d.Diagnosis(1))
	}
	if d.Diagnosis(0) != None {
		t.Fatalf("healthy sensor diagnosed %v", d.Diagnosis(0))
	}
}

func TestDetectorTransientGlitchForgiven(t *testing.T) {
	d, err := NewDetector(testStats(1), DetectorConfig{DropoutCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for c := 0; c < 100; c++ {
		v := 0.97 + 0.01*rng.NormFloat64()
		if c%10 == 5 {
			v = math.NaN() // isolated glitches, never two in a row
		}
		if d.Observe([]float64{v}) {
			t.Fatalf("isolated glitch diagnosed at cycle %d", c)
		}
	}
}

func TestDetectorFlatline(t *testing.T) {
	d, err := NewDetector(testStats(2), DetectorConfig{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	r := make([]float64, 2)
	diagnosed := -1
	for c := 0; c < 40 && diagnosed < 0; c++ {
		r[0] = 0.97 + 0.01*rng.NormFloat64()
		r[1] = 0.93 // frozen from the first cycle
		if d.Observe(r) {
			diagnosed = c
		}
	}
	if diagnosed < 0 {
		t.Fatal("flatlined sensor never diagnosed")
	}
	if diagnosed >= 16+1 {
		t.Fatalf("flatline took %d cycles, want within one window", diagnosed)
	}
	if d.Diagnosis(1) != Stuck {
		t.Fatalf("diagnosis = %v, want stuck", d.Diagnosis(1))
	}
}

func TestDetectorDrift(t *testing.T) {
	d, err := NewDetector(testStats(2), DetectorConfig{Window: 16, DriftSigma: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	r := make([]float64, 2)
	diagnosed := -1
	for c := 0; c < 400 && diagnosed < 0; c++ {
		r[0] = 0.97 + 0.01*rng.NormFloat64()
		// 1 mV/cycle walk keeps window variance alive while the mean leaves.
		r[1] = 0.97 + 0.01*rng.NormFloat64() + 0.001*float64(c)
		if d.Observe(r) {
			diagnosed = c
		}
	}
	if diagnosed < 0 {
		t.Fatal("drifting sensor never diagnosed")
	}
	if d.Diagnosis(1) != Drift {
		t.Fatalf("diagnosis = %v, want drift", d.Diagnosis(1))
	}
}

func TestDetectorFaultsAreSticky(t *testing.T) {
	d, err := NewDetector(testStats(1), DetectorConfig{DropoutCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Observe([]float64{math.NaN()}) {
		t.Fatal("dropout not diagnosed")
	}
	rng := rand.New(rand.NewSource(5))
	for c := 0; c < 100; c++ {
		if d.Observe([]float64{0.97 + 0.01*rng.NormFloat64()}) {
			t.Fatal("sticky fault changed state on recovery")
		}
	}
	if d.Diagnosis(0) != Dropout {
		t.Fatalf("fault healed itself: %v", d.Diagnosis(0))
	}
	d.Reset()
	if len(d.Faulty()) != 0 || d.Diagnosis(0) != None {
		t.Fatal("Reset did not clear the diagnosis")
	}
}

// guardFixture builds a guard whose primary route sums the readings and
// whose fallbacks cover exactly the singleton sets.
func guardFixture(t *testing.T, q int) *Guard {
	t.Helper()
	det, err := NewDetector(testStats(q), DetectorConfig{Window: 8, DropoutCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	primary := Route{Predict: func(r []float64) []float64 {
		s := 0.0
		for _, v := range r {
			s += v
		}
		return []float64{s}
	}}
	lookup := func(faulty []int) (Route, bool) {
		if len(faulty) != 1 {
			return Route{}, false
		}
		ex := faulty[0]
		return Route{
			Excluded: []int{ex},
			Predict: func(r []float64) []float64 {
				s := 0.0
				for i, v := range r {
					if i != ex {
						s += v
					}
				}
				return []float64{s}
			},
		}, true
	}
	g, err := NewGuard(det, primary, lookup)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGuardSwitchesToFallback(t *testing.T) {
	g := guardFixture(t, 3)
	f, st := g.Process([]float64{1, 1, 1})
	if st.Changed || st.Degraded || len(st.Faulty) != 0 {
		t.Fatalf("healthy cycle produced %+v", st)
	}
	if f[0] != 3 {
		t.Fatalf("primary predicted %v, want 3", f[0])
	}
	f, st = g.Process([]float64{1, math.NaN(), 1})
	if !st.Changed {
		t.Fatal("dropout cycle did not report a change")
	}
	if !reflect.DeepEqual(st.Faulty, []int{1}) || !reflect.DeepEqual(st.ActiveExcluded, []int{1}) {
		t.Fatalf("status %+v, want sensor 1 excluded", st)
	}
	if st.Degraded {
		t.Fatal("covered fault reported degraded")
	}
	if f[0] != 2 {
		t.Fatalf("fallback predicted %v, want 2 (sensor 1 ignored)", f[0])
	}
	// Subsequent cycles stay on the fallback without re-reporting a change.
	f, st = g.Process([]float64{1, math.NaN(), 1})
	if st.Changed {
		t.Fatal("steady fallback cycle reported a change")
	}
	if f[0] != 2 {
		t.Fatalf("fallback predicted %v on steady cycle", f[0])
	}
}

func TestGuardDegradedWhenUncovered(t *testing.T) {
	g := guardFixture(t, 3)
	f, st := g.Process([]float64{math.NaN(), math.NaN(), 1})
	if !st.Degraded {
		t.Fatalf("two faults with singleton-only coverage should degrade, got %+v", st)
	}
	if f != nil {
		t.Fatalf("degraded cycle still predicted %v", f)
	}
	if !reflect.DeepEqual(st.Faulty, []int{0, 1}) {
		t.Fatalf("faulty = %v", st.Faulty)
	}
	if !g.Snapshot().Degraded {
		t.Fatal("snapshot lost the degraded state")
	}
	g.Reset()
	if g.Snapshot().Degraded {
		t.Fatal("Reset did not clear degraded state")
	}
}

func TestGuardRepairsTransientGlitch(t *testing.T) {
	g := guardFixture(t, 2)
	det := g.det
	_ = det
	// DropoutCycles is 1 in the fixture; rebuild with 2 so one NaN is transient.
	d2, err := NewDetector(testStats(2), DetectorConfig{Window: 8, DropoutCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	g.det = d2
	g.Process([]float64{0.97, 0.5}) // seeds lastGood[1] = 0.5
	f, st := g.Process([]float64{0.97, math.NaN()})
	if st.Changed || st.Degraded {
		t.Fatalf("transient glitch changed state: %+v", st)
	}
	if math.Abs(f[0]-(0.97+0.5)) > 1e-12 {
		t.Fatalf("glitch not repaired with last good value: %v", f[0])
	}
	if g.RepairedReadings() != 1 {
		t.Fatalf("repaired count = %d, want 1", g.RepairedReadings())
	}
}

func TestGuardConcurrent(t *testing.T) {
	g := guardFixture(t, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			r := make([]float64, 4)
			for c := 0; c < 200; c++ {
				for i := range r {
					r[i] = 0.97 + 0.01*rng.NormFloat64()
				}
				if c > 100 {
					r[2] = math.NaN()
				}
				g.Process(r)
			}
		}(int64(w))
	}
	wg.Wait()
	st := g.Snapshot()
	if st.Degraded {
		t.Fatalf("single covered fault degraded: %+v", st)
	}
	if !reflect.DeepEqual(st.Faulty, []int{2}) {
		t.Fatalf("faulty = %v, want [2]", st.Faulty)
	}
}
