package faults

import (
	"fmt"
	"math"
	"sync"
)

// Route is one way to turn a full-Q reading vector into K block voltages:
// the primary Eq. 20 model, or a fallback submodel that ignores the
// Excluded positions. Predict must be safe for concurrent use (the OLS
// models are read-only at runtime).
type Route struct {
	// Predict maps a full-length reading vector to K block voltages. A
	// fallback route must not read the Excluded positions.
	Predict func(readings []float64) []float64
	// Excluded lists the reading-vector positions this route ignores,
	// ascending; empty for the primary model.
	Excluded []int
}

// Status reports the guard's state after one Process call.
type Status struct {
	// Faulty is the diagnosed faulty sensor positions, ascending.
	Faulty []int
	// ActiveExcluded is the Excluded set of the route now serving.
	ActiveExcluded []int
	// Degraded is true when more sensors failed than any fallback covers;
	// Voltages is nil in that case.
	Degraded bool
	// Changed is true on the cycle a diagnosis or route switch happened —
	// the moment to emit events and update metrics.
	Changed bool
}

// Guard is the runtime switch: it feeds every reading vector through the
// detector and routes prediction to the primary model or, atomically on
// detection, to the narrowest fallback covering the failed set. All methods
// are safe for concurrent use by many serving sessions; a single mutex
// serializes the detector, which is cheap next to the Eq. 20 evaluation.
type Guard struct {
	mu       sync.Mutex
	det      *Detector
	primary  Route
	lookup   func(faulty []int) (Route, bool)
	active   Route
	degraded bool
	repaired int // cycles where a transient non-finite reading was substituted
}

// NewGuard wires a detector to a primary route and a fallback lookup.
// lookup receives the ascending faulty set and returns the best fallback
// route, or ok=false when the set is uncovered (core.FallbackSet.Lookup
// wrapped by the serving layer).
func NewGuard(det *Detector, primary Route, lookup func(faulty []int) (Route, bool)) (*Guard, error) {
	if det == nil {
		return nil, fmt.Errorf("faults: guard needs a detector")
	}
	if primary.Predict == nil {
		return nil, fmt.Errorf("faults: guard needs a primary route")
	}
	if lookup == nil {
		return nil, fmt.Errorf("faults: guard needs a fallback lookup")
	}
	return &Guard{det: det, primary: primary, lookup: lookup, active: primary}, nil
}

// Process consumes one reading vector: detection, repair, routing,
// prediction. On degraded state it returns nil voltages and
// Status.Degraded. The returned Faulty/ActiveExcluded slices are copies the
// caller may retain.
func (g *Guard) Process(readings []float64) ([]float64, Status) {
	g.mu.Lock()
	changed := g.det.Observe(readings)
	if changed && !g.degraded {
		faulty := g.det.Faulty()
		if route, ok := g.lookup(sortedCopy(faulty)); ok {
			g.active = route
		} else {
			g.degraded = true
		}
	}
	st := Status{
		Faulty:         sortedCopy(g.det.Faulty()),
		ActiveExcluded: sortedCopy(g.active.Excluded),
		Degraded:       g.degraded,
		Changed:        changed,
	}
	if g.degraded {
		g.mu.Unlock()
		return nil, st
	}
	route := g.active
	repaired := g.repair(readings, route.Excluded)
	g.mu.Unlock()
	// Predict outside the lock: the route's model is immutable and the
	// repaired vector is this call's copy.
	return route.Predict(repaired), st
}

// repair returns a prediction-safe copy of readings: positions the route
// excludes are zeroed (the route never reads them), and any remaining
// non-finite value — a transient glitch not yet diagnosed as dropout — is
// replaced by the sensor's last good reading. Called with g.mu held.
func (g *Guard) repair(readings []float64, excluded []int) []float64 {
	out := make([]float64, len(readings))
	copy(out, readings)
	for _, p := range excluded {
		if p < len(out) {
			out[p] = 0
		}
	}
	ex := 0
	for i, v := range out {
		for ex < len(excluded) && excluded[ex] < i {
			ex++
		}
		if ex < len(excluded) && excluded[ex] == i {
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			out[i] = g.det.LastGood(i)
			g.repaired++
		}
	}
	return out
}

// Snapshot returns the current status without consuming a reading (health
// endpoints, pre-flight degraded checks).
func (g *Guard) Snapshot() Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Status{
		Faulty:         sortedCopy(g.det.Faulty()),
		ActiveExcluded: sortedCopy(g.active.Excluded),
		Degraded:       g.degraded,
	}
}

// RepairedReadings reports how many transient non-finite readings were
// substituted with last-good values.
func (g *Guard) RepairedReadings() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.repaired
}

// Reset returns the guard (and its detector) to the all-healthy state.
func (g *Guard) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.det.Reset()
	g.active = g.primary
	g.degraded = false
	g.repaired = 0
}
