package thermal

import (
	"math"
	"testing"

	"voltsense/internal/floorplan"
	"voltsense/internal/power"
	"voltsense/internal/workload"
)

func testModel(t *testing.T) (*floorplan.Chip, *Model) {
	t.Helper()
	chip := floorplan.New(floorplan.DefaultConfig())
	m, err := New(chip, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return chip, m
}

func TestZeroPowerIsAmbient(t *testing.T) {
	_, m := testModel(t)
	temps := m.SteadyState(make([]float64, len(m.temps)))
	for b, tp := range temps {
		if math.Abs(tp-m.Cfg.Ambient) > 1e-9 {
			t.Fatalf("block %d at %v °C with zero power", b, tp)
		}
	}
}

func TestHotBlockIsHottest(t *testing.T) {
	chip, m := testModel(t)
	p := make([]float64, chip.NumBlocks())
	hot := 100 // some block in core 3
	p[hot] = 2.0
	temps := m.SteadyState(p)
	for b, tp := range temps {
		if b != hot && tp > temps[hot] {
			t.Fatalf("block %d (%.2f °C) hotter than the powered block (%.2f °C)", b, tp, temps[hot])
		}
		if tp < m.Cfg.Ambient-1e-9 {
			t.Fatalf("block %d below ambient", b)
		}
	}
	if temps[hot] < m.Cfg.Ambient+5 {
		t.Fatalf("2 W block only reached %.2f °C", temps[hot])
	}
}

func TestHeatSpreadsToNeighbors(t *testing.T) {
	chip, m := testModel(t)
	p := make([]float64, chip.NumBlocks())
	// Heat alu0 of core 0 (local index 14).
	hot := chip.Cores[0].Blocks[14]
	p[hot.ID] = 1.5
	temps := m.SteadyState(p)
	neighbor := chip.Cores[0].Blocks[15] // alu1, adjacent cell
	farAway := chip.Cores[7].Blocks[14]  // same block in the far corner core
	if temps[neighbor.ID] <= temps[farAway.ID] {
		t.Fatalf("adjacent block (%.3f °C) not hotter than far block (%.3f °C)",
			temps[neighbor.ID], temps[farAway.ID])
	}
	if temps[neighbor.ID] <= m.Cfg.Ambient {
		t.Fatal("no lateral heat spreading")
	}
}

func TestRealisticPowersGiveRealisticTemps(t *testing.T) {
	chip, m := testModel(t)
	pm := power.DefaultModel(chip)
	tr := workload.Generate(chip, workload.Benchmarks()[0], 400, 0)
	ct := pm.Currents(tr)
	avg := make([]float64, chip.NumBlocks())
	for b := range avg {
		s := 0.0
		for _, i := range ct.Currents[b] {
			s += i * pm.VDD
		}
		avg[b] = s / float64(len(ct.Currents[b]))
	}
	temps := m.SteadyState(avg)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, tp := range temps {
		lo = math.Min(lo, tp)
		hi = math.Max(hi, tp)
	}
	t.Logf("block temperatures: %.1f..%.1f °C", lo, hi)
	if hi > 115 || hi < 50 {
		t.Errorf("hottest block %.1f °C outside the plausible 50-115 °C band", hi)
	}
	if lo < m.Cfg.Ambient {
		t.Errorf("coolest block %.1f °C below ambient", lo)
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	chip, m := testModel(t)
	p := make([]float64, chip.NumBlocks())
	for i := range p {
		p[i] = 0.3
	}
	want := m.SteadyState(p)
	var got []float64
	for i := 0; i < 1500; i++ {
		got = m.Step(p, 2e-3)
	}
	for b := range want {
		if math.Abs(got[b]-want[b]) > 0.05 {
			t.Fatalf("block %d transient %.3f vs steady %.3f", b, got[b], want[b])
		}
	}
}

func TestTransientTimeConstantIsSlow(t *testing.T) {
	chip, m := testModel(t)
	p := make([]float64, chip.NumBlocks())
	p[0] = 1
	after := m.Step(p, 1e-6) // one microsecond
	want := m.SteadyState(p)
	rise := after[0] - m.Cfg.Ambient
	full := want[0] - m.Cfg.Ambient
	if rise > 0.2*full {
		t.Fatalf("1 µs step covered %.0f%% of the thermal rise; time constants should be ≫ µs",
			100*rise/full)
	}
}

func TestLeakageScale(t *testing.T) {
	if got := LeakageScale(70, 70); math.Abs(got-1) > 1e-12 {
		t.Fatalf("scale at reference = %v", got)
	}
	if got := LeakageScale(90, 70); math.Abs(got-2) > 1e-9 {
		t.Fatalf("scale(+20°C) = %v, want 2 (doubling)", got)
	}
	if got := LeakageScale(50, 70); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("scale(-20°C) = %v, want 0.5", got)
	}
}

func TestCoupleConverges(t *testing.T) {
	chip, m := testModel(t)
	dyn := make([]float64, chip.NumBlocks())
	leak := make([]float64, chip.NumBlocks())
	for i := range dyn {
		dyn[i] = 0.4
		leak[i] = 0.08
	}
	temps, scale, resid := m.Couple(dyn, leak, 70, 60)
	if resid > 1e-4 {
		t.Fatalf("fixed point residual %v", resid)
	}
	for b := range temps {
		if scale[b] <= 0 {
			t.Fatalf("block %d scale %v", b, scale[b])
		}
	}
	// Hotter-than-reference blocks leak more; the loop must not run away.
	for b := range temps {
		if scale[b] > 4+1e-9 {
			t.Fatalf("block %d leakage scale %v escaped the throttle clamp", b, scale[b])
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	chip := floorplan.New(floorplan.DefaultConfig())
	cfg := DefaultConfig()
	cfg.VerticalRth = 0
	if _, err := New(chip, cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestSharedEdge(t *testing.T) {
	a := floorplan.Rect{X0: 0, Y0: 0, X1: 1, Y1: 1}
	b := floorplan.Rect{X0: 1.1, Y0: 0.2, X1: 2, Y1: 0.8} // 0.1 gap, 0.6 overlap
	if got := sharedEdge(a, b, 0.2); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("sharedEdge = %v, want 0.6", got)
	}
	if got := sharedEdge(a, b, 0.05); got != 0 {
		t.Fatalf("gap beyond tol should give 0, got %v", got)
	}
	c := floorplan.Rect{X0: 0.2, Y0: 1.05, X1: 0.7, Y1: 2}
	if got := sharedEdge(a, c, 0.1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("vertical sharedEdge = %v, want 0.5", got)
	}
	far := floorplan.Rect{X0: 5, Y0: 5, X1: 6, Y1: 6}
	if got := sharedEdge(a, far, 0.2); got != 0 {
		t.Fatalf("distant blocks coupled: %v", got)
	}
}
