// Package thermal models on-die temperature at function-block granularity
// and its feedback into leakage power.
//
// Electrical transients in this repository span microseconds while thermal
// time constants are milliseconds, so the coupling follows the standard
// architectural practice (HotSpot steady-state mode): per-run average block
// power produces a steady-state temperature map through a lateral/vertical
// thermal resistance network, and block leakage scales exponentially with
// its temperature. A transient Step is also provided (and tested against
// the steady state) for completeness.
//
// The network has one node per function block: lateral conductances couple
// blocks whose rectangles touch or nearly touch (heat spreading through
// silicon), and every block has a vertical conductance to the heat sink
// proportional to its area.
package thermal

import (
	"fmt"
	"math"

	"voltsense/internal/floorplan"
	"voltsense/internal/mat"
)

// Config holds the thermal network parameters.
type Config struct {
	Ambient      float64 // heat-sink temperature, °C
	VerticalRth  float64 // vertical resistance for 1 mm² of block area, °C·mm²/W
	LateralRth   float64 // lateral resistance between adjacent blocks per mm of shared edge, °C·mm/W
	CouplingGap  float64 // blocks closer than this (mm) are laterally coupled
	HeatCapacity float64 // areal heat capacity, J/(°C·mm²) — transient only
}

// DefaultConfig returns 22 nm-plausible packaging values: a high-end heat
// sink and silicon lateral spreading.
func DefaultConfig() Config {
	return Config{
		Ambient:      45,   // °C at the heat spreader under load
		VerticalRth:  30,   // °C·mm²/W → a 1 mm² block at 1 W rises 30 °C; real blocks are larger
		LateralRth:   8,    // °C·mm/W of shared edge
		CouplingGap:  0.70, // routing channels and core gaps still conduct through silicon
		HeatCapacity: 1.6e-3,
	}
}

// Model is an assembled thermal network for one chip.
type Model struct {
	Cfg  Config
	chip *floorplan.Chip

	g    *mat.Matrix   // block-level thermal conductance matrix, W/°C
	chol *mat.Cholesky // factored once
	caps []float64     // thermal capacitance per block, J/°C

	temps []float64 // transient state, °C

	stepDT   float64       // dt of the cached transient factorization
	stepChol *mat.Cholesky // cached (G + C/dt) factorization
}

// New assembles and factors the thermal network.
func New(chip *floorplan.Chip, cfg Config) (*Model, error) {
	if cfg.VerticalRth <= 0 || cfg.LateralRth <= 0 || cfg.HeatCapacity <= 0 {
		return nil, fmt.Errorf("thermal: non-positive parameter in %+v", cfg)
	}
	n := chip.NumBlocks()
	g := mat.Zeros(n, n)
	caps := make([]float64, n)
	for _, b := range chip.Blocks {
		area := b.Bounds.Area()
		gv := area / cfg.VerticalRth
		g.Set(b.ID, b.ID, g.At(b.ID, b.ID)+gv)
		caps[b.ID] = cfg.HeatCapacity * area
	}
	// Lateral coupling for blocks with overlapping projections within the
	// gap.
	for i, a := range chip.Blocks {
		for _, b := range chip.Blocks[i+1:] {
			shared := sharedEdge(a.Bounds, b.Bounds, cfg.CouplingGap)
			if shared <= 0 {
				continue
			}
			gl := shared / cfg.LateralRth
			g.Set(a.ID, a.ID, g.At(a.ID, a.ID)+gl)
			g.Set(b.ID, b.ID, g.At(b.ID, b.ID)+gl)
			g.Set(a.ID, b.ID, g.At(a.ID, b.ID)-gl)
			g.Set(b.ID, a.ID, g.At(b.ID, a.ID)-gl)
		}
	}
	chol, err := mat.FactorCholesky(g)
	if err != nil {
		return nil, fmt.Errorf("thermal: network not SPD: %w", err)
	}
	m := &Model{Cfg: cfg, chip: chip, g: g, chol: chol, caps: caps, temps: make([]float64, n)}
	m.Reset()
	return m, nil
}

// sharedEdge returns the length (mm) of the shared boundary between two
// rectangles whose gap is at most tol, or 0 if they are not adjacent.
func sharedEdge(a, b floorplan.Rect, tol float64) float64 {
	// Horizontal adjacency: vertical edges within tol.
	overlapY := math.Min(a.Y1, b.Y1) - math.Max(a.Y0, b.Y0)
	overlapX := math.Min(a.X1, b.X1) - math.Max(a.X0, b.X0)
	gapX := math.Max(a.X0, b.X0) - math.Min(a.X1, b.X1)
	gapY := math.Max(a.Y0, b.Y0) - math.Min(a.Y1, b.Y1)
	if gapX >= 0 && gapX <= tol && overlapY > 0 {
		return overlapY
	}
	if gapY >= 0 && gapY <= tol && overlapX > 0 {
		return overlapX
	}
	return 0
}

// Reset returns every block to ambient.
func (m *Model) Reset() {
	for i := range m.temps {
		m.temps[i] = m.Cfg.Ambient
	}
}

// SteadyState returns the equilibrium block temperatures (°C) for the given
// block powers (W): T = ambient + G⁻¹ P.
func (m *Model) SteadyState(power []float64) []float64 {
	if len(power) != len(m.temps) {
		panic(fmt.Sprintf("thermal: %d powers for %d blocks", len(power), len(m.temps)))
	}
	rise := m.chol.Solve(power)
	out := make([]float64, len(rise))
	for i, r := range rise {
		out[i] = m.Cfg.Ambient + r
	}
	return out
}

// Step advances the transient model by dt seconds under the given powers
// (backward Euler on the block network) and returns the temperatures. The
// returned slice aliases internal state.
func (m *Model) Step(power []float64, dt float64) []float64 {
	if len(power) != len(m.temps) {
		panic(fmt.Sprintf("thermal: %d powers for %d blocks", len(power), len(m.temps)))
	}
	if dt <= 0 {
		panic(fmt.Sprintf("thermal: non-positive dt %v", dt))
	}
	n := len(m.temps)
	// (G + C/dt)(T' − ambient) = P + (C/dt)(T − ambient). The factorization
	// depends only on dt and is cached across steps.
	if m.stepChol == nil || m.stepDT != dt {
		a := m.g.Clone()
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+m.caps[i]/dt)
		}
		chol, err := mat.FactorCholesky(a)
		if err != nil {
			panic(fmt.Sprintf("thermal: transient matrix not SPD: %v", err))
		}
		m.stepChol, m.stepDT = chol, dt
	}
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		rhs[i] = power[i] + m.caps[i]/dt*(m.temps[i]-m.Cfg.Ambient)
	}
	rise := m.stepChol.Solve(rhs)
	for i := range m.temps {
		m.temps[i] = m.Cfg.Ambient + rise[i]
	}
	return m.temps
}

// LeakageScale returns the multiplicative leakage factor at temperature t
// relative to the reference temperature ref, with subthreshold leakage
// roughly doubling every 20 °C (factor exp(0.0347·ΔT)).
func LeakageScale(t, ref float64) float64 {
	const k = math.Ln2 / 20
	return math.Exp(k * (t - ref))
}

// Couple iterates the power↔temperature fixed point: given base block
// powers split into dynamic and reference leakage parts, it returns the
// converged temperatures and leakage scale factors. The loop contracts
// quickly (leakage is a modest fraction of block power); iterations are
// capped and the final residual returned.
func (m *Model) Couple(dynamic, leakRef []float64, refTemp float64, maxIter int) (temps, scale []float64, resid float64) {
	if len(dynamic) != len(leakRef) || len(dynamic) != len(m.temps) {
		panic("thermal: Couple length mismatch")
	}
	if maxIter <= 0 {
		maxIter = 10
	}
	n := len(dynamic)
	scale = make([]float64, n)
	for i := range scale {
		scale[i] = 1
	}
	power := make([]float64, n)
	for it := 0; it < maxIter; it++ {
		for i := range power {
			power[i] = dynamic[i] + leakRef[i]*scale[i]
		}
		temps = m.SteadyState(power)
		resid = 0
		for i := range scale {
			// Damped update (geometric mean of old and target) keeps the
			// iteration contractive even when the undamped loop gain nears
			// 1; the clamp models thermal throttling — silicon that would
			// leak 4x its nominal power trips the thermal limiter long
			// before reaching equilibrium.
			target := LeakageScale(temps[i], refTemp)
			if target > maxLeakScale {
				target = maxLeakScale
			}
			if target < minLeakScale {
				target = minLeakScale
			}
			s := math.Sqrt(scale[i] * target)
			if d := math.Abs(s - scale[i]); d > resid {
				resid = d
			}
			scale[i] = s
		}
		if resid < 1e-9 {
			break
		}
	}
	return temps, scale, resid
}

// Leakage-scale clamps used by Couple: below 0.25x the model is outside its
// calibration; above 6x a real chip has already throttled.
const (
	minLeakScale = 0.25
	maxLeakScale = 4.0
)
