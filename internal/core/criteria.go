package core

import (
	"fmt"

	"voltsense/internal/basis"
	"voltsense/internal/detect"
	"voltsense/internal/lasso"
	"voltsense/internal/place"
)

// CriterionConfig parameterizes criterion-driven placement (see
// internal/place): the candidate-basis knob shared by every basis-driven
// criterion, the emergency threshold the Eagle-Eye adapter covers against,
// and the solver options the group-lasso adapter runs with.
type CriterionConfig struct {
	Basis     basis.Config  // candidate POD basis; place.DefaultEnergy when empty
	Vth       float64       // emergency threshold in volts; detect.DefaultVth when 0
	Threshold float64       // group-norm selection threshold; DefaultThreshold when 0
	Solver    lasso.Options // group-lasso adapter options
}

// NewPlacementProblem builds the shared place.Problem for a dataset: one
// standardization + candidate POD fit reused across however many criteria
// the caller wants to run (that reuse is what makes a shootout cheap).
func NewPlacementProblem(ds *Dataset, cc CriterionConfig) (*place.Problem, error) {
	if err := ds.Check(); err != nil {
		return nil, err
	}
	vth := cc.Vth
	if vth == 0 {
		vth = detect.DefaultVth
	}
	p, err := place.NewProblem(ds.X, ds.F, cc.Basis, vth)
	if err != nil {
		return nil, err
	}
	p.Threshold = cc.Threshold
	if p.Threshold == 0 {
		p.Threshold = DefaultThreshold
	}
	p.Solver = cc.Solver
	return p, nil
}

// CriterionPlacement is the result of PlaceWith: which criterion ran, the q
// sensors it picked (ascending), and the problem it ran on — kept so the
// caller can refit with BuildGLSPredictor or run further criteria without
// re-standardizing.
type CriterionPlacement struct {
	Criterion string
	Selected  []int
	Problem   *place.Problem
}

// PlaceWith selects q sensors with an arbitrary placement criterion —
// the pluggable counterpart of PlaceSensors. The refit is the caller's
// choice: BuildPredictor for the paper's dense OLS, BuildReducedPredictor
// for the POD-space refit, or BuildGLSPredictor for the basis refit with
// per-sensor noise weighting.
func PlaceWith(ds *Dataset, crit place.Criterion, q int, cc CriterionConfig) (*CriterionPlacement, error) {
	p, err := NewPlacementProblem(ds, cc)
	if err != nil {
		return nil, err
	}
	sel, err := crit.Select(p, q)
	if err != nil {
		return nil, fmt.Errorf("core: criterion %s: %w", crit.Name(), err)
	}
	return &CriterionPlacement{Criterion: crit.Name(), Selected: sel, Problem: p}, nil
}

// PlaceMixedSensors runs budget-constrained heterogeneous placement
// (place.PlaceMixed) on a dataset: reference and low-cost sensor classes
// priced by spec, greedily instrumented until the budget runs out. The
// returned problem feeds BuildGLSPredictor with the placement's
// NoiseVariances for the precision-weighted refit.
func PlaceMixedSensors(ds *Dataset, spec place.ClassSpec, budget float64, cc CriterionConfig) (*place.MixedPlacement, *place.Problem, error) {
	p, err := NewPlacementProblem(ds, cc)
	if err != nil {
		return nil, nil, err
	}
	mp, err := place.PlaceMixed(p, spec, budget)
	if err != nil {
		return nil, nil, err
	}
	return mp, p, nil
}

// BuildGLSPredictor wraps the heterogeneous-network refit (place.GLSModel)
// into a standard runtime Predictor: raw selected-sensor readings in, K
// critical-node voltages out, with each sensor weighted by its precision.
// noiseVar is aligned with selected (a MixedPlacement's NoiseVariances), or
// nil for the homogeneous basis refit. Downstream serving and detection see
// an ordinary Predictor.
func BuildGLSPredictor(p *place.Problem, selected []int, noiseVar []float64) (*Predictor, error) {
	m, err := place.GLSModel(p, selected, noiseVar)
	if err != nil {
		return nil, err
	}
	sel := make([]int, len(selected))
	copy(sel, selected)
	return &Predictor{Selected: sel, Model: m}, nil
}
