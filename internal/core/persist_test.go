package core

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := syntheticDataset(rng, 10, 4, 300, []int{2, 7}, 0.002)
	pl, err := PlaceSensors(ds, Config{Lambda: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := BuildPredictor(ds, pl.Selected)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Selected) != len(pred.Selected) {
		t.Fatalf("selected %v, want %v", got.Selected, pred.Selected)
	}
	// Predictions must be bit-identical... JSON float round-trips exactly
	// for the default encoder? It prints shortest repr which parses back
	// exactly, so yes.
	x := make([]float64, len(pred.Selected))
	for i := range x {
		x[i] = 0.9 + 0.01*float64(i)
	}
	a, b := pred.Predict(x), got.Predict(x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-15 {
			t.Fatalf("prediction drifted after round-trip: %v vs %v", a[i], b[i])
		}
	}
}

func TestLoadPredictorRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":     "hello",
		"wrong format": `{"format":"other/v9","selected_sensors":[0],"alpha":[[1]],"c":[0]}`,
		"no outputs":   `{"format":"voltsense-predictor/v1","selected_sensors":[],"alpha":[],"c":[]}`,
		"shape":        `{"format":"voltsense-predictor/v1","selected_sensors":[0,1],"alpha":[[1]],"c":[0]}`,
		"ragged":       `{"format":"voltsense-predictor/v1","selected_sensors":[0,1],"alpha":[[1,2],[3]],"c":[0,0]}`,
		"intercepts":   `{"format":"voltsense-predictor/v1","selected_sensors":[0],"alpha":[[1]],"c":[0,1]}`,

		// Corrupt numerics must fail at load time, not poison predictions.
		"nan alpha":      `{"format":"voltsense-predictor/v1","selected_sensors":[0],"alpha":[[NaN]],"c":[0]}`,
		"inf alpha":      `{"format":"voltsense-predictor/v1","selected_sensors":[0],"alpha":[[1e999]],"c":[0]}`,
		"inf intercept":  `{"format":"voltsense-predictor/v1","selected_sensors":[0],"alpha":[[1]],"c":[-1e999]}`,
		"nan intercept":  `{"format":"voltsense-predictor/v1","selected_sensors":[0],"alpha":[[1]],"c":[NaN]}`,
		"negative index": `{"format":"voltsense-predictor/v1","selected_sensors":[-1,3],"alpha":[[1,1]],"c":[0]}`,
		"unsorted index": `{"format":"voltsense-predictor/v1","selected_sensors":[3,1],"alpha":[[1,1]],"c":[0]}`,
		"repeated index": `{"format":"voltsense-predictor/v1","selected_sensors":[3,3],"alpha":[[1,1]],"c":[0]}`,
	}
	for name, in := range cases {
		if _, err := LoadPredictor(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSavedFormIsVersioned(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := syntheticDataset(rng, 6, 2, 200, []int{1}, 0.002)
	pred, err := BuildPredictor(ds, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"voltsense-predictor/v1"`) {
		t.Fatal("saved predictor missing format tag")
	}
}

func TestLineageSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := syntheticDataset(rng, 6, 2, 200, []int{1, 4}, 0.002)
	pred, err := BuildPredictor(ds, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	mean, std := pred.FitResidualStats(ds)
	pred.Lineage = &Lineage{
		Version: 3, Parent: 2, Source: LineageSourceOnline, Samples: 512,
		LiveTE: 0.4, ShadowTE: 0.01, ResidMean: mean, ResidStd: std,
	}
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lineage == nil {
		t.Fatal("lineage section lost in round-trip")
	}
	if *got.Lineage != *pred.Lineage {
		t.Fatalf("lineage = %+v, want %+v", *got.Lineage, *pred.Lineage)
	}
}

func TestLineageOmittedForLegacyArtifacts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := syntheticDataset(rng, 6, 2, 200, []int{1}, 0.002)
	pred, err := BuildPredictor(ds, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"lineage"`) {
		t.Fatal("lineage-free predictor serialized a lineage section")
	}
	got, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lineage != nil {
		t.Fatalf("legacy artifact grew a lineage: %+v", got.Lineage)
	}
}

func TestLoadPredictorRejectsBadLineage(t *testing.T) {
	base := `{"format":"voltsense-predictor/v1","selected_sensors":[0],"alpha":[[1]],"c":[0],"lineage":%s}`
	cases := map[string]string{
		"zero version":     `{"version":0,"source":"train"}`,
		"parent ahead":     `{"version":2,"parent":2,"source":"online"}`,
		"unknown source":   `{"version":1,"source":"wizard"}`,
		"negative samples": `{"version":1,"source":"train","samples":-4}`,
		"negative te":      `{"version":1,"source":"online","live_te":-0.1}`,
		"inf resid":        `{"version":1,"source":"online","resid_mean":1e999}`,
	}
	for name, lin := range cases {
		in := strings.NewReader(strings.Replace(base, "%s", lin, 1))
		if _, err := LoadPredictor(in); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
