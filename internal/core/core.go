// Package core implements the paper's methodology end to end: the
// group-lasso sensor-placement step (Section 2.2), the unbiased OLS
// prediction-model refit (Section 2.3), and the λ-sweep workflow that ties
// them together (Section 2.4, Steps 0-8).
//
// Data follows the paper's conventions: X is the M-by-N matrix of raw
// candidate-sensor voltages (one row per blank-area candidate site, one
// column per sampled voltage map), F is the K-by-N matrix of raw
// noise-critical-node voltages (one row per function block).
package core

import (
	"errors"
	"fmt"

	"voltsense/internal/lasso"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// DefaultThreshold is the paper's T = 1e-3 cut on ‖β_m‖₂ separating selected
// from rejected candidates (Step 5).
const DefaultThreshold = 1e-3

// Dataset pairs candidate-sensor samples with critical-node samples.
type Dataset struct {
	X *mat.Matrix // M-by-N raw candidate voltages
	F *mat.Matrix // K-by-N raw critical-node voltages
}

// Check validates the shape invariants.
func (d *Dataset) Check() error {
	if d.X == nil || d.F == nil {
		return errors.New("core: dataset missing X or F")
	}
	if d.X.Cols() != d.F.Cols() {
		return fmt.Errorf("core: X has %d samples, F has %d", d.X.Cols(), d.F.Cols())
	}
	if d.X.Cols() == 0 {
		return errors.New("core: dataset is empty")
	}
	return nil
}

// Subset returns a view-free copy of the dataset restricted to the given
// sample (column) indices, used for train/test splits.
func (d *Dataset) Subset(cols []int) *Dataset {
	return &Dataset{X: d.X.SelectCols(cols), F: d.F.SelectCols(cols)}
}

// Config parameterizes sensor placement.
type Config struct {
	Lambda    float64       // the paper's group-norm budget λ
	Threshold float64       // T; DefaultThreshold when zero
	Solver    lasso.Options // group-lasso solver options
}

// Placement is the result of Steps 2-5: the selected sensor set and the
// group norms used to pick it (the data behind the paper's Figure 1).
type Placement struct {
	Lambda     float64
	Threshold  float64
	Selected   []int     // indices into the candidate rows of X, ascending
	GroupNorms []float64 // ‖β_m‖₂ per candidate
	GL         *lasso.Result
	XStd       *mat.Standardization // normalization of X used by GL
	FStd       *mat.Standardization // normalization of F used by GL
}

// PlaceSensors runs the group-lasso selection: normalize X and F to zero
// mean and unit variance (Step 3), solve the constrained problem Eq. 12
// (Step 4), and threshold the group norms (Step 5).
func PlaceSensors(ds *Dataset, cfg Config) (*Placement, error) {
	if err := ds.Check(); err != nil {
		return nil, err
	}
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("core: negative lambda %v", cfg.Lambda)
	}
	thr := cfg.Threshold
	if thr == 0 {
		thr = DefaultThreshold
	}
	z, xStd := mat.Standardize(ds.X)
	g, fStd := mat.Standardize(ds.F)
	res, err := lasso.SolveConstrained(z, g, cfg.Lambda, cfg.Solver)
	if err != nil && !errors.Is(err, lasso.ErrDidNotConverge) {
		return nil, fmt.Errorf("core: group lasso: %w", err)
	}
	return &Placement{
		Lambda:     cfg.Lambda,
		Threshold:  thr,
		Selected:   res.Select(thr),
		GroupNorms: res.GroupNorms,
		GL:         res,
		XStd:       xStd,
		FStd:       fStd,
	}, nil
}

// PlaceSensorsPath runs the Step 2-5 selection at every budget in lambdas
// with one shared Gram and warm starts carried between points (descending λ
// internally; results in input order). Each returned Placement is equivalent
// to an independent PlaceSensors call at that λ — the path layer's screening
// is KKT-verified — at a fraction of the cost, which is what the Table 1 /
// Figure 1 sweeps and the λ-grid CLI workflows want. cfg.Lambda is ignored.
func PlaceSensorsPath(ds *Dataset, lambdas []float64, cfg Config) ([]*Placement, error) {
	if err := ds.Check(); err != nil {
		return nil, err
	}
	for _, l := range lambdas {
		if l < 0 {
			return nil, fmt.Errorf("core: negative lambda %v", l)
		}
	}
	thr := cfg.Threshold
	if thr == 0 {
		thr = DefaultThreshold
	}
	z, xStd := mat.Standardize(ds.X)
	g, fStd := mat.Standardize(ds.F)
	points, err := lasso.SolvePath(z, g, lambdas, cfg.Solver)
	if err != nil && !errors.Is(err, lasso.ErrDidNotConverge) {
		return nil, fmt.Errorf("core: group lasso path: %w", err)
	}
	out := make([]*Placement, len(points))
	for i, pt := range points {
		out[i] = &Placement{
			Lambda:     pt.Lambda,
			Threshold:  thr,
			Selected:   pt.Result.Select(thr),
			GroupNorms: pt.Result.GroupNorms,
			GL:         pt.Result,
			XStd:       xStd,
			FStd:       fStd,
		}
	}
	return out, nil
}

// Predictor is the runtime model of Eq. 20: f* = αˢ·xˢ + c evaluated on the
// raw voltages of the selected sensors. Fallbacks, when present, carries the
// fault-tolerance tier: leave-k-out submodels and the per-sensor training
// statistics the runtime fault detector needs (see FitFallbacks).
type Predictor struct {
	Selected  []int // candidate indices feeding the model, ascending
	Model     *ols.Model
	Fallbacks *FallbackSet // optional; nil for legacy artifacts
	Lineage   *Lineage     // optional provenance; nil for legacy artifacts
}

// BuildPredictor runs Steps 6-8: restrict X to the selected sensors and
// refit an unbiased OLS model with intercept on the raw data. The selection
// must be strictly ascending: a duplicated index would feed the same
// reading into two coefficients and silently double-count it.
func BuildPredictor(ds *Dataset, selected []int) (*Predictor, error) {
	if err := ds.Check(); err != nil {
		return nil, err
	}
	if len(selected) == 0 {
		return nil, errors.New("core: no sensors selected; increase lambda")
	}
	for i, s := range selected {
		if s < 0 || s >= ds.X.Rows() {
			return nil, fmt.Errorf("core: selected sensor %d out of range 0..%d", s, ds.X.Rows()-1)
		}
		if i > 0 && s == selected[i-1] {
			return nil, fmt.Errorf("core: duplicate selected sensor %d", s)
		}
		if i > 0 && s < selected[i-1] {
			return nil, fmt.Errorf("core: selected sensors not ascending at position %d", i)
		}
	}
	xs := ds.X.SelectRows(selected)
	m, err := ols.Fit(xs, ds.F)
	if err != nil {
		return nil, fmt.Errorf("core: OLS refit: %w", err)
	}
	sel := make([]int, len(selected))
	copy(sel, selected)
	return &Predictor{Selected: sel, Model: m}, nil
}

// Predict maps the raw voltages of the selected sensors (length Q, ordered
// as Selected) to the K predicted critical-node voltages.
func (p *Predictor) Predict(sensorV []float64) []float64 {
	return p.Model.Predict(sensorV)
}

// PredictFromCandidates picks the selected sensors out of a full
// candidate-voltage vector (length M) and predicts.
func (p *Predictor) PredictFromCandidates(allV []float64) []float64 {
	x := make([]float64, len(p.Selected))
	for i, s := range p.Selected {
		x[i] = allV[s]
	}
	return p.Model.Predict(x)
}

// PredictDataset evaluates the predictor over every sample of ds, returning
// the K-by-N prediction matrix.
func (p *Predictor) PredictDataset(ds *Dataset) *mat.Matrix {
	return p.Model.PredictMatrix(ds.X.SelectRows(p.Selected))
}

// GLDirectPredictor evaluates the biased Eq. 14 model — the group-lasso
// coefficients used directly, without the OLS refit. It exists to quantify
// the bias the paper's Section 2.3 warns about (an ablation, not the
// production path).
type GLDirectPredictor struct {
	Selected []int
	beta     *mat.Matrix // K-by-Q columns of the GL solution
	xStd     *mat.Standardization
	fStd     *mat.Standardization
}

// BuildGLDirect builds the Eq. 14 predictor from a placement.
func BuildGLDirect(pl *Placement) (*GLDirectPredictor, error) {
	if len(pl.Selected) == 0 {
		return nil, errors.New("core: placement selected no sensors")
	}
	return &GLDirectPredictor{
		Selected: pl.Selected,
		beta:     pl.GL.Beta.SelectCols(pl.Selected),
		xStd:     pl.XStd.Subset(pl.Selected),
		fStd:     pl.FStd,
	}, nil
}

// Predict normalizes the selected-sensor voltages, applies the GL
// coefficients, and de-normalizes the outputs.
func (p *GLDirectPredictor) Predict(sensorV []float64) []float64 {
	z := p.xStd.Apply(sensorV)
	g := mat.MulVec(p.beta, z)
	return p.fStd.Invert(g)
}

// PredictDataset evaluates Eq. 14 over every sample of ds.
func (p *GLDirectPredictor) PredictDataset(ds *Dataset) *mat.Matrix {
	xs := ds.X.SelectRows(p.Selected)
	out := mat.Zeros(ds.F.Rows(), ds.X.Cols())
	for j := 0; j < xs.Cols(); j++ {
		out.SetCol(j, p.Predict(xs.Col(j)))
	}
	return out
}

// SweepPoint is one λ value of the Section 2.4 sweep: its placement, its
// refit predictor, and the aggregated relative prediction error on held-out
// data (the paper's Table 1 row contents).
type SweepPoint struct {
	Lambda     int // kept as the sweep's nominal integer λ for reporting
	LambdaF    float64
	NumSensors int
	RelError   float64
	Placement  *Placement
	Predictor  *Predictor
}

// SweepLambda runs Steps 4-8 for every λ, fitting on train and scoring the
// aggregated relative error on test. λ values producing an empty selection
// yield a point with NumSensors 0 and RelError NaN-free +Inf semantics
// avoided: such points carry a nil Predictor and RelError 1 (predicting
// nothing is a total miss); callers typically start sweeps high enough to
// select at least one sensor.
func SweepLambda(train, test *Dataset, lambdas []float64, cfg Config) ([]SweepPoint, error) {
	if err := train.Check(); err != nil {
		return nil, err
	}
	if err := test.Check(); err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, len(lambdas))
	for _, l := range lambdas {
		c := cfg
		c.Lambda = l
		pl, err := PlaceSensors(train, c)
		if err != nil {
			return nil, fmt.Errorf("core: sweep λ=%v: %w", l, err)
		}
		pt := SweepPoint{Lambda: int(l), LambdaF: l, NumSensors: len(pl.Selected), Placement: pl, RelError: 1}
		if len(pl.Selected) > 0 {
			pred, err := BuildPredictor(train, pl.Selected)
			if err != nil {
				return nil, fmt.Errorf("core: sweep λ=%v: %w", l, err)
			}
			pt.Predictor = pred
			pt.RelError = ols.RelativeError(pred.PredictDataset(test), test.F)
		}
		out = append(out, pt)
	}
	return out, nil
}
