package core

import (
	"math/rand"
	"testing"

	"voltsense/internal/basis"
	"voltsense/internal/ols"
)

// TestReducedFullRankMatchesDense is the golden equivalence satellite: at
// r = K the POD basis is a square orthogonal rotation of the targets, FISTA
// commutes with it, and the reduced path must reproduce the dense sensor
// selections exactly — same dataset, same λ values, same solver options.
func TestReducedFullRankMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	trueIdx := []int{3, 11, 19}
	ds := syntheticDataset(rng, 24, 6, 600, trueIdx, 0.001)
	lambdas := []float64{4, 3, 2}

	dense, err := PlaceSensorsPath(ds, lambdas, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := PlaceSensorsPathReduced(ds, lambdas, Config{}, basis.Config{Rank: ds.F.Rows()})
	if err != nil {
		t.Fatal(err)
	}
	if len(dense) != len(reduced) {
		t.Fatalf("%d dense points vs %d reduced", len(dense), len(reduced))
	}
	for i := range dense {
		d, r := dense[i].Selected, reduced[i].Selected
		if len(d) != len(r) {
			t.Fatalf("λ=%v: dense selected %v, reduced %v", dense[i].Lambda, d, r)
		}
		for j := range d {
			if d[j] != r[j] {
				t.Fatalf("λ=%v: dense selected %v, reduced %v", dense[i].Lambda, d, r)
			}
		}
		if reduced[i].Basis.Rank() != ds.F.Rows() {
			t.Fatalf("basis rank %d, want full %d", reduced[i].Basis.Rank(), ds.F.Rows())
		}
	}

	// Single-λ entry point agrees too.
	dp, err := PlaceSensors(ds, Config{Lambda: 3})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := PlaceSensorsReduced(ds, Config{Lambda: 3}, basis.Config{Rank: ds.F.Rows()})
	if err != nil {
		t.Fatal(err)
	}
	if len(dp.Selected) != len(rp.Selected) {
		t.Fatalf("single λ: dense %v, reduced %v", dp.Selected, rp.Selected)
	}
	for j := range dp.Selected {
		if dp.Selected[j] != rp.Selected[j] {
			t.Fatalf("single λ: dense %v, reduced %v", dp.Selected, rp.Selected)
		}
	}
}

// TestReducedLowRankStillFindsDrivers: with targets driven by a few true
// sensors, even an aggressively truncated basis keeps the driver structure
// and the reduced placement recovers the planted indices.
func TestReducedLowRankStillFindsDrivers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	trueIdx := []int{5, 17}
	ds := syntheticDataset(rng, 28, 8, 800, trueIdx, 0.001)
	rp, err := PlaceSensorsReduced(ds, Config{Lambda: 3}, basis.Config{Energy: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Basis.Rank() >= ds.F.Rows() {
		t.Fatalf("0.99-energy basis did not compress: rank %d of %d", rp.Basis.Rank(), ds.F.Rows())
	}
	found := map[int]bool{}
	for _, s := range rp.Selected {
		found[s] = true
	}
	for _, want := range trueIdx {
		if !found[want] {
			t.Fatalf("reduced placement %v missed planted driver %d", rp.Selected, want)
		}
	}
}

// TestBuildReducedPredictorFullRankMatchesOLS: at full rank the lifted
// reduced refit equals the dense OLS refit up to roundoff.
func TestBuildReducedPredictorFullRankMatchesOLS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train, test := splitDataset(rng, 20, 5, 600, 100, []int{2, 9, 15}, 0.002)
	selected := []int{2, 9, 15}

	densePred, err := BuildPredictor(train, selected)
	if err != nil {
		t.Fatal(err)
	}
	redPred, b, err := BuildReducedPredictor(train, selected, basis.Config{Rank: train.F.Rows()})
	if err != nil {
		t.Fatal(err)
	}
	if b.Rank() != train.F.Rows() {
		t.Fatalf("refit basis rank %d, want %d", b.Rank(), train.F.Rows())
	}
	de := ols.RelativeError(densePred.PredictDataset(test), test.F)
	re := ols.RelativeError(redPred.PredictDataset(test), test.F)
	if diff := re - de; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("full-rank reduced refit error %g vs dense %g", re, de)
	}
}

// TestBuildReducedPredictorTruncationDegradesGracefully: the rank knob
// trades accuracy monotonically-ish — a 99%-energy model stays close to
// dense while a rank-1 model is clearly worse, confirming the trade-off is
// real and measurable.
func TestBuildReducedPredictorTruncationDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train, test := splitDataset(rng, 24, 10, 700, 150, []int{4, 12, 20}, 0.01)
	selected := []int{4, 12, 20}

	densePred, err := BuildPredictor(train, selected)
	if err != nil {
		t.Fatal(err)
	}
	de := ols.RelativeError(densePred.PredictDataset(test), test.F)

	highPred, b, err := BuildReducedPredictor(train, selected, basis.Config{Energy: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	he := ols.RelativeError(highPred.PredictDataset(test), test.F)
	if he > de*1.5+0.05 {
		t.Fatalf("99.9%%-energy refit error %g far above dense %g (rank %d)", he, de, b.Rank())
	}

	onePred, _, err := BuildReducedPredictor(train, selected, basis.Config{Rank: 1})
	if err != nil {
		t.Fatal(err)
	}
	oe := ols.RelativeError(onePred.PredictDataset(test), test.F)
	if oe < he {
		t.Fatalf("rank-1 refit error %g beats %g of the 99.9%%-energy model; truncation has no cost?", oe, he)
	}
}

func TestReducedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := syntheticDataset(rng, 10, 4, 200, []int{1}, 0.01)
	if _, err := PlaceSensorsReduced(ds, Config{Lambda: -1}, basis.Config{}); err == nil {
		t.Fatal("negative lambda accepted")
	}
	if _, err := PlaceSensorsReduced(ds, Config{Lambda: 2}, basis.Config{Energy: 2}); err == nil {
		t.Fatal("bad energy accepted")
	}
	if _, _, err := BuildReducedPredictor(ds, nil, basis.Config{}); err == nil {
		t.Fatal("empty selection accepted")
	}
	if _, _, err := BuildReducedPredictor(ds, []int{3, 3}, basis.Config{}); err == nil {
		t.Fatal("duplicate selection accepted")
	}
	if _, _, err := BuildReducedPredictor(ds, []int{50}, basis.Config{}); err == nil {
		t.Fatal("out-of-range selection accepted")
	}
}
