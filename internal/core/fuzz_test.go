package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// FuzzLoadPredictor hammers the voltsense-predictor/v1 loader with mutated
// artifacts — legacy (no fallbacks), fallback-carrying, and malformed — and
// checks the loader's contract: it never panics, and anything it accepts is
// internally consistent enough to predict and to round-trip through Save.
func FuzzLoadPredictor(f *testing.F) {
	// Seed 1: a real legacy artifact (no fallbacks section).
	rng := rand.New(rand.NewSource(11))
	ds := syntheticDataset(rng, 10, 3, 300, []int{2, 5, 7}, 0.002)
	legacy, err := BuildPredictor(ds, []int{2, 5, 7})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := legacy.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	// Seed 2: a fallback-carrying artifact.
	withFB, err := BuildPredictorWithFallbacks(ds, []int{2, 5, 7}, 2)
	if err != nil {
		f.Fatal(err)
	}
	buf.Reset()
	if err := withFB.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	// Malformed seeds steering the fuzzer at validation edges.
	for _, s := range []string{
		``,
		`{}`,
		`{"format":"voltsense-predictor/v1"}`,
		`{"format":"voltsense-predictor/v1","selected_sensors":[0,0],"alpha":[[1,1]],"c":[0]}`,
		`{"format":"voltsense-predictor/v1","selected_sensors":[0,1],"alpha":[[1,2]],"c":[0],
		  "fallbacks":{"sensor_stats":[{"mean":1,"std":0.01}],"models":[]}}`,
		`{"format":"voltsense-predictor/v1","selected_sensors":[0,1],"alpha":[[1,2]],"c":[0],
		  "fallbacks":{"sensor_stats":[{"mean":1,"std":0.01},{"mean":1,"std":0.01}],
		  "models":[{"excluded":[0,1],"alpha":[[]],"c":[0],"rel_error":0.1}]}}`,
		`{"format":"voltsense-predictor/v1","selected_sensors":[0,1],"alpha":[[1,2]],"c":[0],
		  "fallbacks":{"sensor_stats":[{"mean":1,"std":0.01},{"mean":1,"std":-3}],
		  "models":[{"excluded":[1],"alpha":[[1]],"c":[0],"rel_error":0.1}]}}`,
		`{"format":"voltsense-predictor/v1","selected_sensors":[0,1],"alpha":[[1,2]],"c":[0],
		  "fallbacks":{"sensor_stats":[{"mean":1,"std":0.01},{"mean":1,"std":0.01}],
		  "models":[{"excluded":[1],"alpha":[[1],[1]],"c":[0,0],"rel_error":0.1}]}}`,
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := LoadPredictor(bytes.NewReader(data))
		if err != nil {
			return // rejection is always acceptable; panics are not
		}
		// Accepted artifacts must satisfy the loader's documented invariants.
		q := p.Model.NumInputs()
		k := p.Model.NumOutputs()
		if q == 0 || k == 0 || len(p.Selected) != q {
			t.Fatalf("accepted inconsistent shape: q=%d k=%d selected=%d", q, k, len(p.Selected))
		}
		for i := 1; i < len(p.Selected); i++ {
			if p.Selected[i] <= p.Selected[i-1] {
				t.Fatalf("accepted non-ascending selection %v", p.Selected)
			}
		}
		x := make([]float64, q)
		out := p.Predict(x)
		if len(out) != k {
			t.Fatalf("predict returned %d outputs, want %d", len(out), k)
		}
		if p.Fallbacks != nil {
			if len(p.Fallbacks.Stats) != q {
				t.Fatalf("accepted %d sensor stats for %d sensors", len(p.Fallbacks.Stats), q)
			}
			for i := range p.Fallbacks.Models {
				fm := &p.Fallbacks.Models[i]
				if len(fm.Excluded) == 0 || len(fm.Excluded) >= q {
					t.Fatalf("accepted fallback excluding %v of %d sensors", fm.Excluded, q)
				}
				if got := fm.Model.NumInputs() + len(fm.Excluded); got != q {
					t.Fatalf("fallback %d inputs+excluded = %d, want %d", i, got, q)
				}
				if fb := p.Fallbacks.Lookup(fm.Excluded); fb == nil {
					t.Fatalf("fallback %d not reachable via Lookup(%v)", i, fm.Excluded)
				}
				if out := fm.PredictFull(x); len(out) != k {
					t.Fatalf("fallback %d predicted %d outputs, want %d", i, len(out), k)
				}
			}
		}
		// Anything the loader accepts must survive a Save→Load round-trip.
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatalf("accepted artifact failed to re-save: %v", err)
		}
		if _, err := LoadPredictor(strings.NewReader(buf.String())); err != nil {
			t.Fatalf("re-saved artifact rejected: %v", err)
		}
	})
}
