package core

import (
	"errors"
	"fmt"

	"voltsense/internal/basis"
	"voltsense/internal/lasso"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// ReducedPlacement is a group-lasso placement solved against a rank-r POD
// compression of the critical-node targets instead of all K of them. The
// embedded Placement is fully populated, but GL.Beta lives in the r-dim
// coefficient space (r-by-M rather than K-by-M). Because the basis has
// orthonormal columns, group norms in coefficient space equal the full-space
// norms up to the discarded (1−energy) tail; at r = K the rotation is
// exact and the selection provably matches the dense solve.
type ReducedPlacement struct {
	*Placement
	Basis *basis.Basis // POD basis of the standardized critical targets
}

// fitTargetBasis standardizes the dataset and projects the critical targets
// onto a POD basis — the shared front half of the reduced placement entry
// points.
func fitTargetBasis(ds *Dataset, bc basis.Config) (z, w *mat.Matrix, xStd, fStd *mat.Standardization, b *basis.Basis, err error) {
	if err = ds.Check(); err != nil {
		return
	}
	z, xStd = mat.Standardize(ds.X)
	g, fStd := mat.Standardize(ds.F)
	b, err = basis.Fit(g, bc)
	if err != nil {
		err = fmt.Errorf("core: target basis: %w", err)
		return
	}
	w, err = b.Project(g)
	if err != nil {
		err = fmt.Errorf("core: target projection: %w", err)
	}
	return z, w, xStd, fStd, b, err
}

// PlaceSensorsReduced is PlaceSensors with the Step 4 solve run in the
// r-dimensional POD coefficient space of the standardized critical targets:
// every FISTA iteration costs O(r·M²) instead of O(K·M²). bc picks the rank
// (exact Rank or an Energy fraction); cfg is interpreted as in PlaceSensors.
func PlaceSensorsReduced(ds *Dataset, cfg Config, bc basis.Config) (*ReducedPlacement, error) {
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("core: negative lambda %v", cfg.Lambda)
	}
	thr := cfg.Threshold
	if thr == 0 {
		thr = DefaultThreshold
	}
	z, w, xStd, fStd, b, err := fitTargetBasis(ds, bc)
	if err != nil {
		return nil, err
	}
	res, err := lasso.SolveConstrained(z, w, cfg.Lambda, cfg.Solver)
	if err != nil && !errors.Is(err, lasso.ErrDidNotConverge) {
		return nil, fmt.Errorf("core: reduced group lasso: %w", err)
	}
	return &ReducedPlacement{
		Placement: &Placement{
			Lambda:     cfg.Lambda,
			Threshold:  thr,
			Selected:   res.Select(thr),
			GroupNorms: res.GroupNorms,
			GL:         res,
			XStd:       xStd,
			FStd:       fStd,
		},
		Basis: b,
	}, nil
}

// PlaceSensorsPathReduced is PlaceSensorsPath in the POD coefficient space:
// one shared Gram, warm starts and screening across the λ sweep, with every
// per-target cost scaled by r/K. cfg.Lambda is ignored.
func PlaceSensorsPathReduced(ds *Dataset, lambdas []float64, cfg Config, bc basis.Config) ([]*ReducedPlacement, error) {
	for _, l := range lambdas {
		if l < 0 {
			return nil, fmt.Errorf("core: negative lambda %v", l)
		}
	}
	thr := cfg.Threshold
	if thr == 0 {
		thr = DefaultThreshold
	}
	z, w, xStd, fStd, b, err := fitTargetBasis(ds, bc)
	if err != nil {
		return nil, err
	}
	points, err := lasso.SolvePath(z, w, lambdas, cfg.Solver)
	if err != nil && !errors.Is(err, lasso.ErrDidNotConverge) {
		return nil, fmt.Errorf("core: reduced group lasso path: %w", err)
	}
	out := make([]*ReducedPlacement, len(points))
	for i, pt := range points {
		out[i] = &ReducedPlacement{
			Placement: &Placement{
				Lambda:     pt.Lambda,
				Threshold:  thr,
				Selected:   pt.Result.Select(thr),
				GroupNorms: pt.Result.GroupNorms,
				GL:         pt.Result,
				XStd:       xStd,
				FStd:       fStd,
			},
			Basis: b,
		}
	}
	return out, nil
}

// BuildReducedPredictor runs the Step 6-8 refit in POD coefficient space:
// fit a fresh rank-r basis on the raw critical targets, regress the r
// coefficient traces on the selected raw sensor voltages (O(r·Q²) instead
// of O(K·Q²) after the shared QR), then lift the model back to full size.
// The returned Predictor is a standard K-output model — downstream serving,
// detection and fault tolerance see no difference — whose accuracy differs
// from BuildPredictor only by the basis truncation. The basis used for the
// refit is returned for rank/energy reporting.
func BuildReducedPredictor(ds *Dataset, selected []int, bc basis.Config) (*Predictor, *basis.Basis, error) {
	if err := ds.Check(); err != nil {
		return nil, nil, err
	}
	if len(selected) == 0 {
		return nil, nil, errors.New("core: no sensors selected; increase lambda")
	}
	for i, s := range selected {
		if s < 0 || s >= ds.X.Rows() {
			return nil, nil, fmt.Errorf("core: selected sensor %d out of range 0..%d", s, ds.X.Rows()-1)
		}
		if i > 0 && s <= selected[i-1] {
			return nil, nil, fmt.Errorf("core: selected sensors not strictly ascending at position %d", i)
		}
	}
	b, err := basis.Fit(ds.F, bc)
	if err != nil {
		return nil, nil, fmt.Errorf("core: refit basis: %w", err)
	}
	w, err := b.Project(ds.F)
	if err != nil {
		return nil, nil, fmt.Errorf("core: refit projection: %w", err)
	}
	xs := ds.X.SelectRows(selected)
	mr, err := ols.Fit(xs, w)
	if err != nil {
		return nil, nil, fmt.Errorf("core: reduced OLS refit: %w", err)
	}
	// Lift α_r (r×Q) and c_r (r) back to the K-dim node space.
	u := b.Components()
	alpha := mat.Mul(u, mr.Alpha)
	c, err := b.LiftVec(mr.C)
	if err != nil {
		return nil, nil, fmt.Errorf("core: lifting intercept: %w", err)
	}
	sel := make([]int, len(selected))
	copy(sel, selected)
	return &Predictor{Selected: sel, Model: &ols.Model{Alpha: alpha, C: c}}, b, nil
}
