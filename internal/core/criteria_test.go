package core

import (
	"math/rand"
	"testing"

	"voltsense/internal/basis"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
	"voltsense/internal/place"
)

// lowRankDataset builds a dataset whose candidates and targets share a
// latent low-rank driver, so criterion placements have real structure to
// find.
func lowRankDataset(seed int64, m, k, n, rank int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	randM := func(r, c int) *mat.Matrix {
		out := mat.Zeros(r, c)
		d := out.Data()
		for i := range d {
			d[i] = 0.9 + 0.02*rng.NormFloat64()
		}
		return out
	}
	h := mat.Zeros(rank, n)
	hd := h.Data()
	for i := range hd {
		hd[i] = rng.NormFloat64()
	}
	a := mat.Zeros(m, rank)
	ad := a.Data()
	for i := range ad {
		ad[i] = rng.NormFloat64() / float64(rank)
	}
	b := mat.Zeros(k, rank)
	bd := b.Data()
	for i := range bd {
		bd[i] = rng.NormFloat64() / float64(rank)
	}
	x := mat.Mul(a, h)
	f := mat.Mul(b, h)
	// Shift into a plausible voltage range around 0.9 V; the candidates get
	// a whiff of measurement noise so dense refits of more than rank sensors
	// stay full-rank (as any real trace set would be).
	off := randM(1, 1).At(0, 0)
	xd := x.Data()
	for i := range xd {
		xd[i] = off + 0.05*xd[i] + 1e-5*rng.NormFloat64()
	}
	fd := f.Data()
	for i := range fd {
		fd[i] = off + 0.05*fd[i]
	}
	return &Dataset{X: x, F: f}
}

func TestPlaceWithEveryCriterionRefitsCleanly(t *testing.T) {
	ds := lowRankDataset(21, 16, 4, 150, 4)
	cc := CriterionConfig{Basis: basis.Config{Rank: 4}}
	const q = 6
	for _, name := range place.Names() {
		crit, err := place.ParseCriterion(name)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := PlaceWith(ds, crit, q, cc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cp.Criterion != name || len(cp.Selected) != q {
			t.Fatalf("%s: placement %+v malformed", name, cp)
		}
		// Every selection must feed all three refit paths.
		if _, err := BuildPredictor(ds, cp.Selected); err != nil {
			t.Errorf("%s: dense refit: %v", name, err)
		}
		if _, _, err := BuildReducedPredictor(ds, cp.Selected, basis.Config{Rank: 3}); err != nil {
			t.Errorf("%s: reduced refit: %v", name, err)
		}
		pred, err := BuildGLSPredictor(cp.Problem, cp.Selected, nil)
		if err != nil {
			t.Errorf("%s: GLS refit: %v", name, err)
			continue
		}
		rel := ols.RelativeError(pred.PredictDataset(ds), ds.F)
		if rel > 0.02 {
			t.Errorf("%s: GLS training error %.4f on noiseless low-rank data", name, rel)
		}
	}
}

func TestPlaceMixedSensorsEndToEnd(t *testing.T) {
	ds := lowRankDataset(22, 18, 4, 150, 4)
	cc := CriterionConfig{Basis: basis.Config{Rank: 4}}
	mp, p, err := PlaceMixedSensors(ds, place.DefaultClassSpec, 14, cc)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Cost > 14 {
		t.Errorf("cost %g exceeds budget", mp.Cost)
	}
	if len(mp.Selected) < p.Rank() {
		t.Fatalf("budget 14 bought only %d sensors for rank %d", len(mp.Selected), p.Rank())
	}
	pred, err := BuildGLSPredictor(p, mp.Selected, mp.NoiseVariances(place.DefaultClassSpec))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pred.Selected); got != len(mp.Selected) {
		t.Errorf("predictor kept %d sensors, want %d", got, len(mp.Selected))
	}
	rel := ols.RelativeError(pred.PredictDataset(ds), ds.F)
	if rel > 0.02 {
		t.Errorf("mixed GLS training error %.4f", rel)
	}
}

func TestNewPlacementProblemDefaults(t *testing.T) {
	ds := lowRankDataset(23, 10, 3, 80, 3)
	p, err := NewPlacementProblem(ds, CriterionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Vth == 0 || p.Threshold != DefaultThreshold {
		t.Errorf("defaults not applied: Vth %v Threshold %v", p.Vth, p.Threshold)
	}
	if _, err := NewPlacementProblem(&Dataset{}, CriterionConfig{}); err == nil {
		t.Error("invalid dataset accepted")
	}
}
