package core

import (
	"fmt"
	"math"
)

// Lineage sources.
const (
	// LineageSourceTrain marks a predictor fit offline from training
	// simulation (sensorplace, experiments).
	LineageSourceTrain = "train"
	// LineageSourceOnline marks a predictor promoted by the online
	// recalibration loop (internal/online).
	LineageSourceOnline = "online"
	// LineageSourcePrior marks a predictor aligned from a shared
	// golden-chip prior with few-shot labeled samples (internal/transfer).
	LineageSourcePrior = "prior"
)

// Lineage is the versioned provenance of a predictor's coefficients: which
// generation it is, what it was derived from, and — for online promotions —
// the evidence that justified the swap. Artifacts without a lineage section
// load with Lineage nil and serve unchanged.
type Lineage struct {
	Version int    // monotonically increasing generation, ≥ 1
	Parent  int    // version this generation was derived from; 0 for roots
	Source  string // LineageSourceTrain, LineageSourceOnline or LineageSourcePrior
	Samples int    // labeled samples behind the fit

	// Prior is the content fingerprint of the shared golden-chip prior
	// this generation was aligned against. Set for Source "prior"; empty
	// otherwise.
	Prior string

	// LiveTE/ShadowTE record the paper's total-error rates of the
	// incumbent and this model over the promotion evaluation window.
	// Meaningful for Source "online"; zero otherwise.
	LiveTE   float64
	ShadowTE float64

	// ResidMean/ResidStd are the per-sample residual-RMS statistics of
	// this model on its fit data. The online drift detector anchors its
	// score here instead of assuming runtime feedback starts healthy.
	// Zero means unknown.
	ResidMean float64
	ResidStd  float64
}

// validate rejects lineage sections a corrupt artifact could carry.
func (l *Lineage) validate() error {
	if l.Version < 1 {
		return fmt.Errorf("core: lineage version %d < 1", l.Version)
	}
	if l.Parent < 0 || l.Parent >= l.Version {
		return fmt.Errorf("core: lineage parent %d not below version %d", l.Parent, l.Version)
	}
	if l.Source != LineageSourceTrain && l.Source != LineageSourceOnline && l.Source != LineageSourcePrior {
		return fmt.Errorf("core: unknown lineage source %q", l.Source)
	}
	if l.Samples < 0 {
		return fmt.Errorf("core: negative lineage sample count %d", l.Samples)
	}
	for _, v := range [...]struct {
		name string
		val  float64
	}{
		{"live_te", l.LiveTE}, {"shadow_te", l.ShadowTE},
		{"resid_mean", l.ResidMean}, {"resid_std", l.ResidStd},
	} {
		if math.IsNaN(v.val) || math.IsInf(v.val, 0) || v.val < 0 {
			return fmt.Errorf("core: bad lineage %s %v", v.name, v.val)
		}
	}
	return nil
}

// FitResidualStats computes the per-sample residual-RMS mean and standard
// deviation of the predictor over a dataset — the drift-detection baseline
// recorded in Lineage at fit time.
func (p *Predictor) FitResidualStats(ds *Dataset) (mean, std float64) {
	pred := p.PredictDataset(ds)
	truth := ds.F
	n := pred.Cols()
	k := pred.Rows()
	if n == 0 || k == 0 {
		return 0, 0
	}
	var sum, sum2 float64
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < k; i++ {
			d := pred.At(i, j) - truth.At(i, j)
			s += d * d
		}
		r := math.Sqrt(s / float64(k))
		sum += r
		sum2 += r * r
	}
	mean = sum / float64(n)
	varr := sum2/float64(n) - mean*mean
	if varr < 0 {
		varr = 0
	}
	return mean, math.Sqrt(varr)
}
