package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"voltsense/internal/faults"
	"voltsense/internal/ols"
)

// FallbackModel is one leave-k-out Eq. 17 refit: the same unbiased OLS
// model, fitted at placement time on the selected sensors minus Excluded,
// so the runtime can keep predicting when those sensors fail. Excluded
// holds positions into Predictor.Selected (0..Q-1), ascending — the
// positions of a reading vector, not global candidate indices.
type FallbackModel struct {
	Excluded []int
	Model    *ols.Model
	RelError float64 // training relative error of this submodel

	keep []int // complement of Excluded in 0..Q-1, precomputed
}

// buildKeep computes the kept reading-vector positions for q sensors.
func (fm *FallbackModel) buildKeep(q int) {
	fm.keep = fm.keep[:0]
	ex := 0
	for i := 0; i < q; i++ {
		if ex < len(fm.Excluded) && fm.Excluded[ex] == i {
			ex++
			continue
		}
		fm.keep = append(fm.keep, i)
	}
}

// PredictFull evaluates the submodel on a full-length reading vector
// (length Q, ordered as Predictor.Selected), reading only the kept
// positions. Values at excluded positions are never touched, so they may be
// NaN, stale, or garbage.
func (fm *FallbackModel) PredictFull(readings []float64) []float64 {
	x := make([]float64, len(fm.keep))
	for i, p := range fm.keep {
		x[i] = readings[p]
	}
	return fm.Model.Predict(x)
}

// FallbackSet is the optional fault-tolerance payload of a predictor: the
// per-sensor training statistics the runtime detector judges against, and
// the precomputed leave-k-out submodels. Models holds every leave-one-out
// singleton first, then the greedy nested chain for deeper failures
// (Excluded sets of size 2..budget, each extending the previous by the
// least-damaging additional sensor).
type FallbackSet struct {
	Stats  []faults.SensorStats
	Models []FallbackModel
}

// MaxExcluded returns the largest Excluded set size — the failure depth the
// set can cover at all.
func (fs *FallbackSet) MaxExcluded() int {
	max := 0
	for i := range fs.Models {
		if n := len(fs.Models[i].Excluded); n > max {
			max = n
		}
	}
	return max
}

// Lookup returns the narrowest fallback whose Excluded set covers every
// faulty position (faulty ascending), or nil when the failure set is
// uncovered. A superset match is valid — a model that additionally ignores
// a healthy sensor still reads only healthy sensors — so single failures
// hit their exact leave-one-out model and deeper failures fall through to
// the greedy chain.
func (fs *FallbackSet) Lookup(faulty []int) *FallbackModel {
	if len(faulty) == 0 {
		return nil
	}
	var best *FallbackModel
	for i := range fs.Models {
		fm := &fs.Models[i]
		if !containsAll(fm.Excluded, faulty) {
			continue
		}
		if best == nil || len(fm.Excluded) < len(best.Excluded) {
			best = fm
		}
	}
	return best
}

// containsAll reports whether sorted superset contains every element of
// sorted subset.
func containsAll(superset, subset []int) bool {
	i := 0
	for _, want := range subset {
		for i < len(superset) && superset[i] < want {
			i++
		}
		if i >= len(superset) || superset[i] != want {
			return false
		}
		i++
	}
	return true
}

// SensorTrainingStats computes each selected sensor's raw-reading mean and
// standard deviation over the training samples — the reference distribution
// the runtime fault detector needs.
func SensorTrainingStats(ds *Dataset, selected []int) []faults.SensorStats {
	out := make([]faults.SensorStats, len(selected))
	n := float64(ds.X.Cols())
	for i, s := range selected {
		row := ds.X.Row(s)
		sum, sumSq := 0.0, 0.0
		for _, v := range row {
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		out[i] = faults.SensorStats{Mean: mean, Std: math.Sqrt(variance)}
	}
	return out
}

// FitFallbacks fits the leave-k-out submodels for a placement: every
// leave-one-out model (any single sensor may fail), then a greedy nested
// chain up to budget simultaneous failures — at each depth the chain drops
// the additional sensor whose exclusion costs the least training error.
// The chain trades coverage for artifact size: deeper failures are served
// only along the chain, and anything else trips the runtime's degraded
// mode. budget must be in 1..Q-1 (at least one sensor must survive).
func FitFallbacks(ds *Dataset, selected []int, budget int) (*FallbackSet, error) {
	if err := ds.Check(); err != nil {
		return nil, err
	}
	q := len(selected)
	if q < 2 {
		return nil, errors.New("core: fallbacks need at least 2 selected sensors")
	}
	if budget < 1 || budget > q-1 {
		return nil, fmt.Errorf("core: fallback budget %d out of 1..%d", budget, q-1)
	}
	fs := &FallbackSet{Stats: SensorTrainingStats(ds, selected)}

	// Depth 1: exact leave-one-out for every sensor.
	bestSingle, bestErr := -1, math.Inf(1)
	for i := 0; i < q; i++ {
		fm, err := fitExcluding(ds, selected, []int{i})
		if err != nil {
			return nil, fmt.Errorf("core: leave-one-out fallback excluding sensor %d: %w", i, err)
		}
		fs.Models = append(fs.Models, *fm)
		if fm.RelError < bestErr {
			bestSingle, bestErr = i, fm.RelError
		}
	}

	// Depths 2..budget: grow the greedy chain from the cheapest singleton.
	chain := []int{bestSingle}
	for depth := 2; depth <= budget; depth++ {
		var bestModel *FallbackModel
		bestNext := -1
		for j := 0; j < q; j++ {
			if contains(chain, j) {
				continue
			}
			ex := append(append([]int(nil), chain...), j)
			sort.Ints(ex)
			fm, err := fitExcluding(ds, selected, ex)
			if err != nil {
				// This subset is unfittable (rank-deficient or too few
				// samples); other extensions may still work.
				continue
			}
			if bestModel == nil || fm.RelError < bestModel.RelError {
				bestModel, bestNext = fm, j
			}
		}
		if bestModel == nil {
			return nil, fmt.Errorf("core: no fittable leave-%d-out fallback extends the chain %v", depth, chain)
		}
		fs.Models = append(fs.Models, *bestModel)
		chain = append(chain, bestNext)
	}
	return fs, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// fitExcluding refits Eq. 17 on the selected sensors minus the excluded
// positions and scores it on the training set.
func fitExcluding(ds *Dataset, selected []int, excluded []int) (*FallbackModel, error) {
	kept := make([]int, 0, len(selected)-len(excluded))
	ex := 0
	for i, s := range selected {
		if ex < len(excluded) && excluded[ex] == i {
			ex++
			continue
		}
		kept = append(kept, s)
	}
	if len(kept) == 0 {
		return nil, errors.New("core: fallback would exclude every sensor")
	}
	xs := ds.X.SelectRows(kept)
	m, err := ols.Fit(xs, ds.F)
	if err != nil {
		return nil, err
	}
	fm := &FallbackModel{
		Excluded: append([]int(nil), excluded...),
		Model:    m,
		RelError: ols.RelativeError(m.PredictMatrix(xs), ds.F),
	}
	fm.buildKeep(len(selected))
	return fm, nil
}

// BuildPredictorWithFallbacks runs Steps 6-8 plus the fault-tolerance tier:
// the primary Eq. 17 refit and a FallbackSet at the given failure budget,
// ready to serialize into the artifact's `fallbacks` section.
func BuildPredictorWithFallbacks(ds *Dataset, selected []int, budget int) (*Predictor, error) {
	p, err := BuildPredictor(ds, selected)
	if err != nil {
		return nil, err
	}
	fb, err := FitFallbacks(ds, selected, budget)
	if err != nil {
		return nil, err
	}
	p.Fallbacks = fb
	return p, nil
}
