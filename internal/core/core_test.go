package core

import (
	"math"
	"math/rand"
	"testing"

	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// syntheticDataset builds a dataset where the K outputs are driven by the
// candidate sites in trueIdx plus noise, mimicking the correlated-grid
// setting: the informative sites carry independent latent drivers, every
// other candidate is an uninformative noise site.
func syntheticDataset(rng *rand.Rand, m, k, n int, trueIdx []int, noise float64) *Dataset {
	x := mat.Zeros(m, n)
	latent := mat.Zeros(len(trueIdx), n)
	for i := 0; i < len(trueIdx); i++ {
		for j := 0; j < n; j++ {
			latent.Set(i, j, rng.NormFloat64())
		}
	}
	isTrue := map[int]int{}
	for i, t := range trueIdx {
		isTrue[t] = i
	}
	for r := 0; r < m; r++ {
		if li, ok := isTrue[r]; ok {
			for j := 0; j < n; j++ {
				x.Set(r, j, 1.0+0.05*latent.At(li, j)+0.001*rng.NormFloat64())
			}
			continue
		}
		for j := 0; j < n; j++ {
			x.Set(r, j, 1.0+0.03*rng.NormFloat64())
		}
	}
	f := mat.Zeros(k, n)
	wOut := mat.Zeros(k, len(trueIdx))
	for i := 0; i < k; i++ {
		for l := 0; l < len(trueIdx); l++ {
			wOut.Set(i, l, 0.5+rng.Float64())
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < len(trueIdx); l++ {
				s += wOut.At(i, l) * latent.At(l, j)
			}
			f.Set(i, j, 0.9+0.04*s+noise*rng.NormFloat64())
		}
	}
	return &Dataset{X: x, F: f}
}

// splitDataset generates one dataset from a single planted model and splits
// it into train/test halves, so both splits share the generating process.
func splitDataset(rng *rand.Rand, m, k, nTrain, nTest int, trueIdx []int, noise float64) (*Dataset, *Dataset) {
	full := syntheticDataset(rng, m, k, nTrain+nTest, trueIdx, noise)
	trainCols := make([]int, nTrain)
	for i := range trainCols {
		trainCols[i] = i
	}
	testCols := make([]int, nTest)
	for i := range testCols {
		testCols[i] = nTrain + i
	}
	return full.Subset(trainCols), full.Subset(testCols)
}

func TestDatasetCheck(t *testing.T) {
	if err := (&Dataset{}).Check(); err == nil {
		t.Error("nil matrices should fail Check")
	}
	d := &Dataset{X: mat.Zeros(2, 3), F: mat.Zeros(1, 4)}
	if err := d.Check(); err == nil {
		t.Error("sample mismatch should fail Check")
	}
	d = &Dataset{X: mat.Zeros(2, 0), F: mat.Zeros(1, 0)}
	if err := d.Check(); err == nil {
		t.Error("empty dataset should fail Check")
	}
	d = &Dataset{X: mat.Zeros(2, 3), F: mat.Zeros(1, 3)}
	if err := d.Check(); err != nil {
		t.Errorf("valid dataset failed Check: %v", err)
	}
}

func TestDatasetSubset(t *testing.T) {
	d := &Dataset{
		X: mat.FromRows([][]float64{{1, 2, 3}}),
		F: mat.FromRows([][]float64{{4, 5, 6}}),
	}
	s := d.Subset([]int{2, 0})
	if s.X.At(0, 0) != 3 || s.F.At(0, 1) != 4 {
		t.Fatalf("Subset wrong: X=%v F=%v", s.X.Data(), s.F.Data())
	}
}

func TestPlaceSensorsFindsDrivers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	trueIdx := []int{3, 11, 17}
	ds := syntheticDataset(rng, 24, 6, 800, trueIdx, 0.001)
	pl, err := PlaceSensors(ds, Config{Lambda: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Selected) == 0 {
		t.Fatal("no sensors selected")
	}
	// Each true driver should be selected (possibly with a few extras).
	sel := map[int]bool{}
	for _, s := range pl.Selected {
		sel[s] = true
	}
	for _, ti := range trueIdx {
		if !sel[ti] {
			t.Errorf("true driver %d not selected; got %v", ti, pl.Selected)
		}
	}
}

func TestGroupNormsBimodal(t *testing.T) {
	// The paper's Figure 1: selected norms far above T, rejected far below.
	rng := rand.New(rand.NewSource(2))
	ds := syntheticDataset(rng, 30, 5, 800, []int{5, 20}, 0.001)
	pl, err := PlaceSensors(ds, Config{Lambda: 2})
	if err != nil {
		t.Fatal(err)
	}
	for m, n := range pl.GroupNorms {
		selected := false
		for _, s := range pl.Selected {
			if s == m {
				selected = true
			}
		}
		if selected && n < 10*pl.Threshold {
			t.Errorf("selected candidate %d has norm %v, barely above T", m, n)
		}
	}
}

func TestPredictorBeatsGLDirect(t *testing.T) {
	// The reason Section 2.3 exists: the OLS refit must beat the biased
	// Eq. 14 model on held-out data.
	rng := rand.New(rand.NewSource(3))
	trueIdx := []int{4, 9}
	train, test := splitDataset(rng, 16, 4, 700, 300, trueIdx, 0.002)

	pl, err := PlaceSensors(train, Config{Lambda: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Selected) == 0 {
		t.Fatal("no sensors selected")
	}
	pred, err := BuildPredictor(train, pl.Selected)
	if err != nil {
		t.Fatal(err)
	}
	glp, err := BuildGLDirect(pl)
	if err != nil {
		t.Fatal(err)
	}
	errOLS := ols.RelativeError(pred.PredictDataset(test), test.F)
	errGL := ols.RelativeError(glp.PredictDataset(test), test.F)
	if errOLS >= errGL {
		t.Fatalf("OLS refit error %v not better than GL-direct %v", errOLS, errGL)
	}
	if errOLS > 0.02 {
		t.Errorf("refit error %v unexpectedly large", errOLS)
	}
}

func TestPredictConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := syntheticDataset(rng, 12, 3, 500, []int{2, 7}, 0.002)
	pl, err := PlaceSensors(ds, Config{Lambda: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := BuildPredictor(ds, pl.Selected)
	if err != nil {
		t.Fatal(err)
	}
	all := ds.X.Col(10)
	fromAll := pred.PredictFromCandidates(all)
	sub := make([]float64, len(pl.Selected))
	for i, s := range pl.Selected {
		sub[i] = all[s]
	}
	direct := pred.Predict(sub)
	matPred := pred.PredictDataset(ds)
	for i := range fromAll {
		if math.Abs(fromAll[i]-direct[i]) > 1e-12 {
			t.Fatal("PredictFromCandidates disagrees with Predict")
		}
		if math.Abs(matPred.At(i, 10)-direct[i]) > 1e-12 {
			t.Fatal("PredictDataset disagrees with Predict")
		}
	}
}

func TestBuildPredictorRejectsEmptySelection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := syntheticDataset(rng, 8, 2, 100, []int{1}, 0.01)
	if _, err := BuildPredictor(ds, nil); err == nil {
		t.Fatal("expected error for empty selection")
	}
}

func TestPlaceSensorsNegativeLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := syntheticDataset(rng, 8, 2, 100, []int{1}, 0.01)
	if _, err := PlaceSensors(ds, Config{Lambda: -1}); err == nil {
		t.Fatal("expected error for negative lambda")
	}
}

func TestSweepLambdaMonotoneSensors(t *testing.T) {
	// Paper Table 1: sensor count grows with λ, error shrinks.
	rng := rand.New(rand.NewSource(7))
	trueIdx := []int{2, 6, 10, 14, 18}
	train, test := splitDataset(rng, 22, 5, 900, 400, trueIdx, 0.002)
	pts, err := SweepLambda(train, test, []float64{0.05, 0.2, 1, 4}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].NumSensors < pts[i-1].NumSensors {
			t.Errorf("sensor count dropped: λ=%v→%d after λ=%v→%d",
				pts[i].LambdaF, pts[i].NumSensors, pts[i-1].LambdaF, pts[i-1].NumSensors)
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.NumSensors <= first.NumSensors {
		t.Errorf("sweep did not grow the sensor set: %d → %d", first.NumSensors, last.NumSensors)
	}
	if last.RelError >= first.RelError {
		t.Errorf("error did not improve across sweep: %v → %v", first.RelError, last.RelError)
	}
}

func TestBuildGLDirectRejectsEmpty(t *testing.T) {
	pl := &Placement{}
	if _, err := BuildGLDirect(pl); err == nil {
		t.Fatal("expected error")
	}
}
