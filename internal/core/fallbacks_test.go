package core

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"voltsense/internal/ols"
)

func fallbackFixture(t *testing.T, budget int) (*Dataset, *Predictor) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	ds := syntheticDataset(rng, 12, 4, 400, []int{1, 4, 8, 10}, 0.002)
	pred, err := BuildPredictorWithFallbacks(ds, []int{1, 4, 8, 10}, budget)
	if err != nil {
		t.Fatal(err)
	}
	return ds, pred
}

func TestFitFallbacksShape(t *testing.T) {
	_, pred := fallbackFixture(t, 2)
	fb := pred.Fallbacks
	if fb == nil {
		t.Fatal("no fallbacks fitted")
	}
	if len(fb.Stats) != 4 {
		t.Fatalf("stats for %d sensors, want 4", len(fb.Stats))
	}
	for i, s := range fb.Stats {
		if s.Std <= 0 || math.Abs(s.Mean-1.0) > 0.2 {
			t.Fatalf("implausible training stats for sensor %d: %+v", i, s)
		}
	}
	// 4 leave-one-out singletons plus one depth-2 chain entry.
	if len(fb.Models) != 5 {
		t.Fatalf("%d fallback models, want 5", len(fb.Models))
	}
	if fb.MaxExcluded() != 2 {
		t.Fatalf("MaxExcluded = %d, want 2", fb.MaxExcluded())
	}
	seen := map[int]bool{}
	for _, fm := range fb.Models[:4] {
		if len(fm.Excluded) != 1 {
			t.Fatalf("singleton model excludes %v", fm.Excluded)
		}
		seen[fm.Excluded[0]] = true
		if fm.Model.NumInputs() != 3 {
			t.Fatalf("leave-one-out model has %d inputs", fm.Model.NumInputs())
		}
		if fm.RelError <= 0 || fm.RelError > 0.5 {
			t.Fatalf("implausible training error %v for excluded %v", fm.RelError, fm.Excluded)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("singletons cover %d sensors, want all 4", len(seen))
	}
	chain := fb.Models[4]
	if len(chain.Excluded) != 2 || chain.Model.NumInputs() != 2 {
		t.Fatalf("chain model: excluded %v, inputs %d", chain.Excluded, chain.Model.NumInputs())
	}
}

func TestFallbackLookup(t *testing.T) {
	_, pred := fallbackFixture(t, 2)
	fb := pred.Fallbacks
	if fb.Lookup(nil) != nil {
		t.Fatal("empty faulty set should route to the primary, not a fallback")
	}
	for i := 0; i < 4; i++ {
		fm := fb.Lookup([]int{i})
		if fm == nil {
			t.Fatalf("no fallback for single failure of sensor %d", i)
		}
		if !reflect.DeepEqual(fm.Excluded, []int{i}) {
			t.Fatalf("single failure %d routed to excluded %v (want the exact leave-one-out)", i, fm.Excluded)
		}
	}
	chain := fb.Models[4].Excluded
	if fm := fb.Lookup(chain); fm == nil || len(fm.Excluded) != 2 {
		t.Fatalf("chain pair %v not covered", chain)
	}
	// A pair off the chain is uncovered at budget 2.
	var offChain []int
	for a := 0; a < 4 && offChain == nil; a++ {
		for b := a + 1; b < 4; b++ {
			if !(contains(chain, a) && contains(chain, b)) {
				offChain = []int{a, b}
				break
			}
		}
	}
	if fm := fb.Lookup(offChain); fm != nil {
		t.Fatalf("off-chain pair %v claims coverage by %v", offChain, fm.Excluded)
	}
}

func TestFallbackPredictFullIgnoresExcluded(t *testing.T) {
	_, pred := fallbackFixture(t, 1)
	fm := pred.Fallbacks.Lookup([]int{2})
	x := []float64{1.01, 0.99, 1.02, 0.98}
	want := fm.PredictFull(x)
	x[2] = math.NaN() // the failed sensor's reading must never be read
	got := fm.PredictFull(x)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("excluded reading leaked into prediction: %v vs %v", want, got)
		}
	}
}

func TestFallbackAccuracyDegradesGracefully(t *testing.T) {
	ds, pred := fallbackFixture(t, 1)
	xs := ds.X.SelectRows(pred.Selected)
	primaryErr := ols.RelativeError(pred.Model.PredictMatrix(xs), ds.F)
	for _, fm := range pred.Fallbacks.Models {
		if fm.RelError < primaryErr {
			t.Fatalf("fallback excluding %v beats the full model (%v < %v)", fm.Excluded, fm.RelError, primaryErr)
		}
		if fm.RelError > 20*primaryErr+0.05 {
			t.Fatalf("fallback excluding %v collapsed: %v vs primary %v", fm.Excluded, fm.RelError, primaryErr)
		}
	}
}

func TestSaveLoadRoundTripWithFallbacks(t *testing.T) {
	_, pred := fallbackFixture(t, 2)
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fallbacks == nil {
		t.Fatal("fallbacks lost in round-trip")
	}
	if len(got.Fallbacks.Models) != len(pred.Fallbacks.Models) {
		t.Fatalf("%d models after round-trip, want %d", len(got.Fallbacks.Models), len(pred.Fallbacks.Models))
	}
	x := []float64{1.01, 0.99, 1.02, 0.98}
	for i := range pred.Fallbacks.Models {
		a := pred.Fallbacks.Models[i].PredictFull(x)
		b := got.Fallbacks.Models[i].PredictFull(x)
		for j := range a {
			if math.Abs(a[j]-b[j]) > 1e-15 {
				t.Fatalf("fallback %d prediction drifted after round-trip", i)
			}
		}
	}
	if !reflect.DeepEqual(got.Fallbacks.Stats, pred.Fallbacks.Stats) {
		t.Fatal("sensor stats drifted after round-trip")
	}
}

func TestFitFallbacksValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := syntheticDataset(rng, 6, 2, 200, []int{1, 3}, 0.002)
	if _, err := FitFallbacks(ds, []int{1}, 1); err == nil {
		t.Error("single-sensor selection accepted")
	}
	if _, err := FitFallbacks(ds, []int{1, 3}, 2); err == nil {
		t.Error("budget leaving zero sensors accepted")
	}
	if _, err := FitFallbacks(ds, []int{1, 3}, 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestBuildPredictorRejectsBadSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := syntheticDataset(rng, 6, 2, 200, []int{1, 3}, 0.002)
	if _, err := BuildPredictor(ds, []int{1, 1}); err == nil {
		t.Error("duplicate selected sensor accepted")
	}
	if _, err := BuildPredictor(ds, []int{3, 1}); err == nil {
		t.Error("descending selection accepted")
	}
	if _, err := BuildPredictor(ds, []int{1, 6}); err == nil {
		t.Error("out-of-range selection accepted")
	}
}
