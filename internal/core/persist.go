package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// predictorJSON is the stable serialized form of a Predictor: everything the
// runtime needs to evaluate Eq. 20 on hardware sensor readings.
type predictorJSON struct {
	Format   string      `json:"format"` // "voltsense-predictor/v1"
	Selected []int       `json:"selected_sensors"`
	Alpha    [][]float64 `json:"alpha"` // K rows of Q coefficients
	C        []float64   `json:"c"`     // K intercepts
}

const predictorFormat = "voltsense-predictor/v1"

// Save writes the predictor as JSON.
func (p *Predictor) Save(w io.Writer) error {
	k := p.Model.Alpha.Rows()
	pj := predictorJSON{
		Format:   predictorFormat,
		Selected: p.Selected,
		Alpha:    make([][]float64, k),
		C:        p.Model.C,
	}
	for i := 0; i < k; i++ {
		row := make([]float64, p.Model.Alpha.Cols())
		copy(row, p.Model.Alpha.Row(i))
		pj.Alpha[i] = row
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pj); err != nil {
		return fmt.Errorf("core: saving predictor: %w", err)
	}
	return nil
}

// LoadPredictor reads a predictor saved by Save, validating its shape and
// rejecting non-finite coefficients: a corrupt artifact must fail here, at
// load time, rather than poison every runtime prediction with NaN/Inf.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var pj predictorJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("core: loading predictor: %w", err)
	}
	if pj.Format != predictorFormat {
		return nil, fmt.Errorf("core: unknown predictor format %q", pj.Format)
	}
	k := len(pj.Alpha)
	if k == 0 {
		return nil, fmt.Errorf("core: predictor has no outputs")
	}
	q := len(pj.Alpha[0])
	if q == 0 || q != len(pj.Selected) {
		return nil, fmt.Errorf("core: predictor has %d coefficients per row but %d sensors", q, len(pj.Selected))
	}
	if len(pj.C) != k {
		return nil, fmt.Errorf("core: %d intercepts for %d outputs", len(pj.C), k)
	}
	for i, s := range pj.Selected {
		if s < 0 {
			return nil, fmt.Errorf("core: negative sensor index %d", s)
		}
		if i > 0 && s <= pj.Selected[i-1] {
			return nil, fmt.Errorf("core: sensor indices not strictly ascending at position %d", i)
		}
	}
	alpha := mat.Zeros(k, q)
	for i, row := range pj.Alpha {
		if len(row) != q {
			return nil, fmt.Errorf("core: ragged alpha row %d", i)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("core: non-finite coefficient alpha[%d][%d] = %v", i, j, v)
			}
		}
		copy(alpha.Row(i), row)
	}
	for i, v := range pj.C {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("core: non-finite intercept c[%d] = %v", i, v)
		}
	}
	sel := make([]int, len(pj.Selected))
	copy(sel, pj.Selected)
	return &Predictor{Selected: sel, Model: &ols.Model{Alpha: alpha, C: pj.C}}, nil
}
