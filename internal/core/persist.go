package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"voltsense/internal/faults"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// predictorJSON is the stable serialized form of a Predictor: everything the
// runtime needs to evaluate Eq. 20 on hardware sensor readings, plus the
// optional fault-tolerance payload. Artifacts written before the fallbacks
// section existed decode with Fallbacks nil and serve unchanged.
type predictorJSON struct {
	Format    string         `json:"format"` // "voltsense-predictor/v1"
	Selected  []int          `json:"selected_sensors"`
	Alpha     [][]float64    `json:"alpha"` // K rows of Q coefficients
	C         []float64      `json:"c"`     // K intercepts
	Fallbacks *fallbacksJSON `json:"fallbacks,omitempty"`
	Lineage   *lineageJSON   `json:"lineage,omitempty"`
}

// lineageJSON is the artifact's optional provenance section.
type lineageJSON struct {
	Version   int     `json:"version"`
	Parent    int     `json:"parent"`
	Source    string  `json:"source"`
	Samples   int     `json:"samples"`
	Prior     string  `json:"prior,omitempty"`
	LiveTE    float64 `json:"live_te,omitempty"`
	ShadowTE  float64 `json:"shadow_te,omitempty"`
	ResidMean float64 `json:"resid_mean,omitempty"`
	ResidStd  float64 `json:"resid_std,omitempty"`
}

// fallbacksJSON is the artifact's optional fault-tolerance section.
type fallbacksJSON struct {
	SensorStats []sensorStatsJSON   `json:"sensor_stats"` // length Q, reading-vector order
	Models      []fallbackModelJSON `json:"models"`
}

type sensorStatsJSON struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

// fallbackModelJSON is one leave-k-out submodel. Excluded holds positions
// into selected_sensors (0..Q-1), strictly ascending; alpha has K rows of
// Q-len(excluded) coefficients, ordered as the surviving positions.
type fallbackModelJSON struct {
	Excluded []int       `json:"excluded"`
	Alpha    [][]float64 `json:"alpha"`
	C        []float64   `json:"c"`
	RelError float64     `json:"rel_error"`
}

// PredictorFormat is the versioned format tag of full predictor artifacts.
// Thin per-chip delta artifacts and golden-chip priors carry their own tags
// (see internal/transfer).
const PredictorFormat = "voltsense-predictor/v1"

// marshalAlpha copies a coefficient matrix into row slices.
func marshalAlpha(a *mat.Matrix) [][]float64 {
	out := make([][]float64, a.Rows())
	for i := 0; i < a.Rows(); i++ {
		row := make([]float64, a.Cols())
		copy(row, a.Row(i))
		out[i] = row
	}
	return out
}

// Save writes the predictor as JSON, including the fallbacks section when
// the predictor carries one.
func (p *Predictor) Save(w io.Writer) error {
	pj := predictorJSON{
		Format:   PredictorFormat,
		Selected: p.Selected,
		Alpha:    marshalAlpha(p.Model.Alpha),
		C:        p.Model.C,
	}
	if p.Fallbacks != nil {
		fj := &fallbacksJSON{}
		for _, s := range p.Fallbacks.Stats {
			fj.SensorStats = append(fj.SensorStats, sensorStatsJSON{Mean: s.Mean, Std: s.Std})
		}
		for i := range p.Fallbacks.Models {
			fm := &p.Fallbacks.Models[i]
			fj.Models = append(fj.Models, fallbackModelJSON{
				Excluded: fm.Excluded,
				Alpha:    marshalAlpha(fm.Model.Alpha),
				C:        fm.Model.C,
				RelError: fm.RelError,
			})
		}
		pj.Fallbacks = fj
	}
	if p.Lineage != nil {
		pj.Lineage = &lineageJSON{
			Version:   p.Lineage.Version,
			Parent:    p.Lineage.Parent,
			Source:    p.Lineage.Source,
			Samples:   p.Lineage.Samples,
			Prior:     p.Lineage.Prior,
			LiveTE:    p.Lineage.LiveTE,
			ShadowTE:  p.Lineage.ShadowTE,
			ResidMean: p.Lineage.ResidMean,
			ResidStd:  p.Lineage.ResidStd,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(pj); err != nil {
		return fmt.Errorf("core: saving predictor: %w", err)
	}
	return nil
}

// unmarshalAlpha validates and copies a serialized coefficient matrix of
// the expected shape, rejecting ragged rows and non-finite values.
func unmarshalAlpha(rows [][]float64, k, q int, what string) (*mat.Matrix, error) {
	if len(rows) != k {
		return nil, fmt.Errorf("core: %s has %d rows for %d outputs", what, len(rows), k)
	}
	alpha := mat.Zeros(k, q)
	for i, row := range rows {
		if len(row) != q {
			return nil, fmt.Errorf("core: ragged %s row %d: %d values, want %d", what, i, len(row), q)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("core: non-finite coefficient %s[%d][%d] = %v", what, i, j, v)
			}
		}
		copy(alpha.Row(i), row)
	}
	return alpha, nil
}

// checkFinite rejects non-finite intercepts.
func checkFinite(c []float64, k int, what string) error {
	if len(c) != k {
		return fmt.Errorf("core: %d %s intercepts for %d outputs", len(c), what, k)
	}
	for i, v := range c {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: non-finite %s intercept c[%d] = %v", what, i, v)
		}
	}
	return nil
}

// LoadPredictor reads a predictor saved by Save, validating its shape and
// rejecting duplicate or out-of-order sensor indices and any non-finite
// coefficient: a corrupt artifact must fail here, at load time, rather than
// double-count a reading or poison every runtime prediction with NaN/Inf.
// The optional fallbacks section, when present, is validated just as
// strictly; artifacts without one load with Fallbacks nil.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var pj predictorJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("core: loading predictor: %w", err)
	}
	if pj.Format != PredictorFormat {
		return nil, fmt.Errorf("core: unknown predictor format %q", pj.Format)
	}
	k := len(pj.Alpha)
	if k == 0 {
		return nil, fmt.Errorf("core: predictor has no outputs")
	}
	q := len(pj.Alpha[0])
	if q == 0 || q != len(pj.Selected) {
		return nil, fmt.Errorf("core: predictor has %d coefficients per row but %d sensors", q, len(pj.Selected))
	}
	for i, s := range pj.Selected {
		if s < 0 {
			return nil, fmt.Errorf("core: negative sensor index %d", s)
		}
		if i > 0 && s == pj.Selected[i-1] {
			return nil, fmt.Errorf("core: duplicate sensor index %d", s)
		}
		if i > 0 && s < pj.Selected[i-1] {
			return nil, fmt.Errorf("core: sensor indices not ascending at position %d", i)
		}
	}
	alpha, err := unmarshalAlpha(pj.Alpha, k, q, "alpha")
	if err != nil {
		return nil, err
	}
	if err := checkFinite(pj.C, k, "model"); err != nil {
		return nil, err
	}
	sel := make([]int, len(pj.Selected))
	copy(sel, pj.Selected)
	p := &Predictor{Selected: sel, Model: &ols.Model{Alpha: alpha, C: pj.C}}
	if pj.Fallbacks != nil {
		fb, err := loadFallbacks(pj.Fallbacks, k, q)
		if err != nil {
			return nil, err
		}
		p.Fallbacks = fb
	}
	if pj.Lineage != nil {
		lin := &Lineage{
			Version:   pj.Lineage.Version,
			Parent:    pj.Lineage.Parent,
			Source:    pj.Lineage.Source,
			Samples:   pj.Lineage.Samples,
			Prior:     pj.Lineage.Prior,
			LiveTE:    pj.Lineage.LiveTE,
			ShadowTE:  pj.Lineage.ShadowTE,
			ResidMean: pj.Lineage.ResidMean,
			ResidStd:  pj.Lineage.ResidStd,
		}
		if err := lin.validate(); err != nil {
			return nil, err
		}
		p.Lineage = lin
	}
	return p, nil
}

// loadFallbacks validates the artifact's fallbacks section against the
// primary model's K outputs and Q sensors.
func loadFallbacks(fj *fallbacksJSON, k, q int) (*FallbackSet, error) {
	if len(fj.SensorStats) != q {
		return nil, fmt.Errorf("core: fallbacks carry stats for %d sensors, model has %d", len(fj.SensorStats), q)
	}
	fs := &FallbackSet{Stats: make([]faults.SensorStats, q)}
	for i, s := range fj.SensorStats {
		if math.IsNaN(s.Mean) || math.IsInf(s.Mean, 0) || math.IsNaN(s.Std) || math.IsInf(s.Std, 0) || s.Std < 0 {
			return nil, fmt.Errorf("core: bad sensor_stats[%d]: mean=%v std=%v", i, s.Mean, s.Std)
		}
		fs.Stats[i] = faults.SensorStats{Mean: s.Mean, Std: s.Std}
	}
	if len(fj.Models) == 0 {
		return nil, fmt.Errorf("core: fallbacks section has no models")
	}
	for mi, mj := range fj.Models {
		if len(mj.Excluded) == 0 || len(mj.Excluded) >= q {
			return nil, fmt.Errorf("core: fallback %d excludes %d of %d sensors", mi, len(mj.Excluded), q)
		}
		for i, e := range mj.Excluded {
			if e < 0 || e >= q {
				return nil, fmt.Errorf("core: fallback %d excluded position %d out of 0..%d", mi, e, q-1)
			}
			if i > 0 && e <= mj.Excluded[i-1] {
				return nil, fmt.Errorf("core: fallback %d excluded positions not strictly ascending", mi)
			}
		}
		kept := q - len(mj.Excluded)
		alpha, err := unmarshalAlpha(mj.Alpha, k, kept, fmt.Sprintf("fallback %d alpha", mi))
		if err != nil {
			return nil, err
		}
		if err := checkFinite(mj.C, k, fmt.Sprintf("fallback %d", mi)); err != nil {
			return nil, err
		}
		if math.IsNaN(mj.RelError) || math.IsInf(mj.RelError, 0) || mj.RelError < 0 {
			return nil, fmt.Errorf("core: fallback %d has bad rel_error %v", mi, mj.RelError)
		}
		fm := FallbackModel{
			Excluded: append([]int(nil), mj.Excluded...),
			Model:    &ols.Model{Alpha: alpha, C: mj.C},
			RelError: mj.RelError,
		}
		fm.buildKeep(q)
		fs.Models = append(fs.Models, fm)
	}
	return fs, nil
}
