// Package grid builds the power-delivery-network model of a chip: a regular
// 2-D resistive mesh with on-die decoupling capacitance at every node and
// C4-bump-like pads connecting the mesh to the ideal VDD rail through a
// package R/L.
//
// The grid is the electrical substrate whose transient behaviour (package
// pdn) produces the voltage maps that both the group-lasso placement and the
// Eagle-Eye baseline consume. Node indexing is row-major (id = iy*NX + ix),
// which makes the conductance matrix banded with half-bandwidth NX — the
// property the banded Cholesky fast path exploits.
package grid

import (
	"fmt"
	"math"
	"math/rand"

	"voltsense/internal/floorplan"
)

// Config holds the electrical and geometric parameters of the mesh.
// Distributed quantities are specified per unit length/area so that meshes
// of different resolutions model the same physical chip: Build derives the
// per-segment resistance and per-node capacitance from the mesh pitch.
type Config struct {
	NX, NY     int     // mesh nodes in x and y
	SegRPerMM  float64 // effective grid resistance per mm of die, ohms/mm
	PadPitchMM float64 // spacing of the C4 pad array in mm (both directions)
	PadR       float64 // series resistance of one pad + package path, ohms
	PadL       float64 // series inductance of one pad + package path, henries
	CapPerMM2  float64 // on-die decap per mm² of die, farads/mm²
	VDD        float64 // ideal supply, volts

	// Process variation (zero = nominal die): each segment's resistance is
	// multiplied by exp(N(0, SegRSigma)) and each pad's by
	// exp(N(0, PadRSigma)), drawn deterministically from VariationSeed.
	// Used by the deployment-robustness study: a model trained on the
	// nominal die monitors a die that came back different.
	SegRSigma     float64
	PadRSigma     float64
	VariationSeed int64
}

// DefaultConfig returns the mesh used by the experiments: ~0.3 mm pitch over
// the default chip, a 22 nm-plausible coarse-grained grid resistivity, and a
// pad array with enough loop inductance to produce mid-frequency resonant
// droops. The values are tuned so a Xeon-class workload produces typical
// droops near 5-10% of VDD with occasional excursions past the 0.85 V
// emergency threshold — the regime the paper's detection experiments need.
func DefaultConfig() Config {
	return Config{
		NX:         78,
		NY:         34,
		SegRPerMM:  0.16,    // Ω per mm of die span
		PadPitchMM: 2.25,    // C4 bump-array pitch
		PadR:       0.030,   // 30 mΩ per pad path
		PadL:       2.5e-10, // 0.25 nH per pad path
		CapPerMM2:  1.5e-10, // 150 pF/mm² (~36 nF chip total)
		VDD:        1.0,
	}
}

// Edge is one mesh resistor between nodes A and B with conductance G.
type Edge struct {
	A, B int
	G    float64
}

// Pad is one connection from mesh node Node through series R and L to VDD.
type Pad struct {
	Node int
	R, L float64
}

// Grid is the assembled PDN model plus its mapping onto the floorplan.
type Grid struct {
	Cfg  Config
	Chip *floorplan.Chip

	Edges []Edge
	Pads  []Pad
	Caps  []float64 // per-node decap

	// BlockNodes[b] lists the mesh nodes inside block b's rectangle; block
	// current divides equally among them.
	BlockNodes [][]int

	// Candidates lists the sensor-candidate nodes: every mesh node in the
	// blank area (the paper assumes all BA nodes are candidates).
	Candidates []int

	// CandidateCore[i] is the core whose bounding box contains candidate i,
	// or -1 for nodes in the chip margin / inter-core channels.
	CandidateCore []int

	xs, ys []float64 // node coordinate lookup per axis index
}

// Build constructs the mesh over chip with the given config.
func Build(chip *floorplan.Chip, cfg Config) *Grid {
	if cfg.NX < 2 || cfg.NY < 2 {
		panic(fmt.Sprintf("grid: mesh %dx%d too small", cfg.NX, cfg.NY))
	}
	if cfg.SegRPerMM <= 0 || cfg.PadR <= 0 || cfg.CapPerMM2 <= 0 || cfg.VDD <= 0 {
		panic(fmt.Sprintf("grid: non-positive electrical parameter in %+v", cfg))
	}
	if cfg.PadPitchMM <= 0 {
		panic("grid: PadPitchMM must be positive")
	}
	g := &Grid{Cfg: cfg, Chip: chip}

	// Node coordinates: cell centers of an NX-by-NY tiling of the die.
	px := chip.Width / float64(cfg.NX)
	py := chip.Height / float64(cfg.NY)
	g.xs = make([]float64, cfg.NX)
	for i := range g.xs {
		g.xs[i] = (float64(i) + 0.5) * px
	}
	g.ys = make([]float64, cfg.NY)
	for i := range g.ys {
		g.ys[i] = (float64(i) + 0.5) * py
	}

	n := cfg.NX * cfg.NY
	segGX := 1 / (cfg.SegRPerMM * px) // horizontal segment conductance
	segGY := 1 / (cfg.SegRPerMM * py) // vertical segment conductance
	vary := newVariation(cfg)
	for iy := 0; iy < cfg.NY; iy++ {
		for ix := 0; ix < cfg.NX; ix++ {
			id := g.NodeID(ix, iy)
			if ix+1 < cfg.NX {
				g.Edges = append(g.Edges, Edge{A: id, B: g.NodeID(ix+1, iy), G: segGX * vary.seg()})
			}
			if iy+1 < cfg.NY {
				g.Edges = append(g.Edges, Edge{A: id, B: g.NodeID(ix, iy+1), G: segGY * vary.seg()})
			}
		}
	}

	// Pad array on a regular sub-lattice whose spacing approximates the
	// physical bump pitch at this mesh resolution, offset to avoid the die
	// edge. Deriving the node stride from millimetres keeps the pad count
	// per mm² — and therefore the droop depth — independent of mesh
	// resolution.
	padEveryX := nearestStride(cfg.PadPitchMM, px)
	padEveryY := nearestStride(cfg.PadPitchMM, py)
	for iy := padEveryY / 2; iy < cfg.NY; iy += padEveryY {
		for ix := padEveryX / 2; ix < cfg.NX; ix += padEveryX {
			g.Pads = append(g.Pads, Pad{Node: g.NodeID(ix, iy), R: cfg.PadR * vary.pad(), L: cfg.PadL})
		}
	}

	g.Caps = make([]float64, n)
	nodeCap := cfg.CapPerMM2 * px * py
	for i := range g.Caps {
		g.Caps[i] = nodeCap
	}

	// Map blocks to their covered nodes, and classify BA nodes as sensor
	// candidates.
	g.BlockNodes = make([][]int, chip.NumBlocks())
	for iy := 0; iy < cfg.NY; iy++ {
		for ix := 0; ix < cfg.NX; ix++ {
			id := g.NodeID(ix, iy)
			x, y := g.xs[ix], g.ys[iy]
			if b := chip.BlockAt(x, y); b != nil {
				g.BlockNodes[b.ID] = append(g.BlockNodes[b.ID], id)
				continue
			}
			g.Candidates = append(g.Candidates, id)
			core := chip.CoreAt(x, y)
			if core != nil {
				g.CandidateCore = append(g.CandidateCore, core.Index)
			} else {
				g.CandidateCore = append(g.CandidateCore, -1)
			}
		}
	}
	// A block too small for the mesh pitch gets its nearest node so its
	// current is never dropped.
	for b, nodes := range g.BlockNodes {
		if len(nodes) == 0 {
			cx, cy := chip.Blocks[b].Bounds.Center()
			g.BlockNodes[b] = []int{g.NearestNode(cx, cy)}
		}
	}
	return g
}

// NumNodes returns the mesh node count.
func (g *Grid) NumNodes() int { return g.Cfg.NX * g.Cfg.NY }

// NodeID maps mesh coordinates to the node index.
func (g *Grid) NodeID(ix, iy int) int {
	if ix < 0 || ix >= g.Cfg.NX || iy < 0 || iy >= g.Cfg.NY {
		panic(fmt.Sprintf("grid: node (%d,%d) out of %dx%d", ix, iy, g.Cfg.NX, g.Cfg.NY))
	}
	return iy*g.Cfg.NX + ix
}

// NodePos returns the die coordinates (mm) of node id.
func (g *Grid) NodePos(id int) (x, y float64) {
	if id < 0 || id >= g.NumNodes() {
		panic(fmt.Sprintf("grid: node %d out of range %d", id, g.NumNodes()))
	}
	return g.xs[id%g.Cfg.NX], g.ys[id/g.Cfg.NX]
}

// NearestNode returns the mesh node closest to die position (x, y).
func (g *Grid) NearestNode(x, y float64) int {
	px := g.Chip.Width / float64(g.Cfg.NX)
	py := g.Chip.Height / float64(g.Cfg.NY)
	ix := clamp(int(math.Floor(x/px)), 0, g.Cfg.NX-1)
	iy := clamp(int(math.Floor(y/py)), 0, g.Cfg.NY-1)
	return g.NodeID(ix, iy)
}

// CandidatesInCore returns the indices (into g.Candidates) of the sensor
// candidates whose node lies inside core c's bounding box — the per-core
// candidate pool the paper's Figure 1 sweeps over.
func (g *Grid) CandidatesInCore(c int) []int {
	var out []int
	for i, core := range g.CandidateCore {
		if core == c {
			out = append(out, i)
		}
	}
	return out
}

// variation draws the lognormal process-variation multipliers. The zero
// config yields the nominal die (all multipliers exactly 1, no RNG draws,
// so nominal grids are bit-identical to pre-variation builds).
type variation struct {
	rng            *rand.Rand
	segSig, padSig float64
}

func newVariation(cfg Config) *variation {
	v := &variation{segSig: cfg.SegRSigma, padSig: cfg.PadRSigma}
	if v.segSig < 0 || v.padSig < 0 {
		panic(fmt.Sprintf("grid: negative variation sigma in %+v", cfg))
	}
	if v.segSig > 0 || v.padSig > 0 {
		v.rng = rand.New(rand.NewSource(cfg.VariationSeed))
	}
	return v
}

func (v *variation) seg() float64 {
	if v.segSig == 0 {
		return 1
	}
	return math.Exp(v.rng.NormFloat64() * v.segSig)
}

func (v *variation) pad() float64 {
	if v.padSig == 0 {
		return 1
	}
	return math.Exp(v.rng.NormFloat64() * v.padSig)
}

// nearestStride converts a physical pitch to a node stride, at least 1.
func nearestStride(pitchMM, nodePitchMM float64) int {
	s := int(math.Round(pitchMM / nodePitchMM))
	if s < 1 {
		s = 1
	}
	return s
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
