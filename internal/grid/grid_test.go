package grid

import (
	"testing"

	"voltsense/internal/floorplan"
)

func defaultGrid() *Grid {
	return Build(floorplan.New(floorplan.DefaultConfig()), DefaultConfig())
}

func TestBuildNodeCount(t *testing.T) {
	g := defaultGrid()
	if g.NumNodes() != 78*34 {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), 78*34)
	}
}

func TestNodeIDPosRoundTrip(t *testing.T) {
	g := defaultGrid()
	for _, pair := range [][2]int{{0, 0}, {77, 33}, {13, 7}} {
		id := g.NodeID(pair[0], pair[1])
		x, y := g.NodePos(id)
		if got := g.NearestNode(x, y); got != id {
			t.Fatalf("NearestNode(NodePos(%d)) = %d", id, got)
		}
	}
}

func TestNodeIDPanicsOutOfRange(t *testing.T) {
	g := defaultGrid()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.NodeID(78, 0)
}

func TestEdgesFormMesh(t *testing.T) {
	g := defaultGrid()
	nx, ny := g.Cfg.NX, g.Cfg.NY
	want := nx*(ny-1) + ny*(nx-1)
	if len(g.Edges) != want {
		t.Fatalf("edges = %d, want %d", len(g.Edges), want)
	}
	for _, e := range g.Edges {
		ax, ay := g.NodePos(e.A)
		bx, by := g.NodePos(e.B)
		dx, dy := bx-ax, by-ay
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if (dx > 1e-9 && dy > 1e-9) || (dx < 1e-9 && dy < 1e-9) {
			t.Fatalf("edge %d-%d is not axis-aligned to a neighbor", e.A, e.B)
		}
		if e.G <= 0 {
			t.Fatalf("edge %d-%d has conductance %v", e.A, e.B, e.G)
		}
	}
}

func TestPadsPlaced(t *testing.T) {
	g := defaultGrid()
	if len(g.Pads) == 0 {
		t.Fatal("no pads")
	}
	seen := map[int]bool{}
	for _, p := range g.Pads {
		if p.Node < 0 || p.Node >= g.NumNodes() {
			t.Fatalf("pad node %d out of range", p.Node)
		}
		if seen[p.Node] {
			t.Fatalf("duplicate pad at node %d", p.Node)
		}
		seen[p.Node] = true
		if p.R <= 0 || p.L < 0 {
			t.Fatalf("pad electricals R=%v L=%v", p.R, p.L)
		}
	}
}

func TestEveryBlockHasNodes(t *testing.T) {
	g := defaultGrid()
	for b, nodes := range g.BlockNodes {
		if len(nodes) == 0 {
			t.Fatalf("block %d has no mesh nodes", b)
		}
	}
}

func TestBlockNodesInsideBlock(t *testing.T) {
	g := defaultGrid()
	for b, nodes := range g.BlockNodes {
		blk := g.Chip.Blocks[b]
		for _, nd := range nodes {
			x, y := g.NodePos(nd)
			if !blk.Bounds.Contains(x, y) && len(nodes) > 1 {
				t.Fatalf("node %d assigned to block %s but lies outside it", nd, blk.Name)
			}
		}
	}
}

func TestCandidatesAreBlankArea(t *testing.T) {
	g := defaultGrid()
	if len(g.Candidates) == 0 {
		t.Fatal("no sensor candidates")
	}
	if len(g.Candidates) != len(g.CandidateCore) {
		t.Fatal("CandidateCore length mismatch")
	}
	for _, nd := range g.Candidates {
		x, y := g.NodePos(nd)
		if g.Chip.InFA(x, y) {
			t.Fatalf("candidate node %d is inside the function area", nd)
		}
	}
}

func TestCandidateAndBlockNodesPartition(t *testing.T) {
	g := defaultGrid()
	owned := make(map[int]bool)
	for _, nodes := range g.BlockNodes {
		for _, nd := range nodes {
			owned[nd] = true
		}
	}
	for _, nd := range g.Candidates {
		if owned[nd] {
			// A candidate may coincide with a fallback nearest-node for a
			// sub-pitch block; the default mesh must not need fallbacks.
			t.Fatalf("node %d is both candidate and block node", nd)
		}
	}
	if len(owned)+len(g.Candidates) != g.NumNodes() {
		t.Fatalf("partition: %d owned + %d candidates != %d nodes",
			len(owned), len(g.Candidates), g.NumNodes())
	}
}

func TestCandidatesInCore(t *testing.T) {
	g := defaultGrid()
	total := 0
	for c := range g.Chip.Cores {
		in := g.CandidatesInCore(c)
		if len(in) < 20 {
			t.Fatalf("core %d has only %d candidates; Figure 1 needs a meaningful pool", c, len(in))
		}
		total += len(in)
		core := g.Chip.Cores[c]
		for _, i := range in {
			x, y := g.NodePos(g.Candidates[i])
			if !core.Bounds.Contains(x, y) {
				t.Fatalf("candidate %d claimed by core %d but outside it", i, c)
			}
		}
	}
	if total >= len(g.Candidates) {
		t.Error("some candidates must lie in inter-core channels or margin")
	}
}

func TestBuildPanicsOnBadConfig(t *testing.T) {
	chip := floorplan.New(floorplan.DefaultConfig())
	cfg := DefaultConfig()
	cfg.SegRPerMM = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(chip, cfg)
}

func TestNearestNodeClamps(t *testing.T) {
	g := defaultGrid()
	if got := g.NearestNode(-5, -5); got != g.NodeID(0, 0) {
		t.Fatalf("NearestNode(-5,-5) = %d", got)
	}
	if got := g.NearestNode(1e6, 1e6); got != g.NodeID(77, 33) {
		t.Fatalf("NearestNode(big) = %d", got)
	}
}
