// Package place is the pluggable sensor-placement criterion subsystem: one
// interface over every selection strategy the repository knows, from the
// paper's group lasso and the Eagle-Eye coverage baseline to the
// basis-driven optimality criteria of the wider placement literature
// (QR-pivot greedy à la PySensors/SSPOR, D- and E-optimal greedy, Ranieri et
// al.'s FrameSense frame-potential minimization, and worst-case-scenario
// coverage), plus heterogeneous sensor classes — reference vs low-cost
// devices with per-class noise variance, budget-constrained mixed placement,
// and a GLS refit that weighs each sensor by its precision.
//
// The common formulation is the one PySensors 2.0 and the Ranieri line of
// work share: fit a rank-r POD basis U of the standardized candidate traces
// (r ≪ M), give every candidate site m its basis row ψ_m = U[m,:] ∈ ℝʳ, and
// judge a sensor set S by how well the rows {ψ_s : s ∈ S} condition the
// linear inverse problem of recovering the r field coefficients — and hence
// anything linearly predictable from the field, including the critical-node
// voltages. Each criterion scores that conditioning differently (volume,
// worst direction, coherence, worst location); the adapters for group lasso
// and Eagle-Eye ignore ψ and run the original algorithms, so every method is
// selectable through the single Criterion interface and comparable on equal
// terms (see experiments.CriteriaShootout and DESIGN.md §13).
package place

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"voltsense/internal/basis"
	"voltsense/internal/lasso"
	"voltsense/internal/mat"
)

// DefaultEnergy is the POD energy fraction Problem construction captures in
// the candidate basis when the caller does not pin a rank.
const DefaultEnergy = 0.999

// Problem carries everything any criterion may need: the raw matrices (for
// the Eagle-Eye adapter), the standardized traces (for the group-lasso
// adapter), and the rank-r candidate basis (for every basis-driven
// criterion). Build it once with NewProblem and reuse it across criteria —
// that is what makes a shootout cheap.
type Problem struct {
	X *mat.Matrix // M×N raw candidate voltages
	F *mat.Matrix // K×N raw critical-node voltages

	Z *mat.Matrix // M×N standardized candidates
	G *mat.Matrix // K×N standardized targets

	// Psi is the M×r candidate POD basis: row m holds candidate m's
	// loadings on the r dominant modes of Z, each column scaled by its
	// mode's relative singular value σ_j/σ_1. The energy weighting makes
	// every criterion see modes in proportion to how much of the field they
	// actually carry — without it, coverage-style criteria (frame potential,
	// worst-case variance) spend sensors conditioning low-energy tail modes
	// that contribute nothing to reconstruction. Basis-driven criteria place
	// sensors so the selected rows condition coefficient recovery well.
	Psi *mat.Matrix
	// Coef is the r×N matrix of training coefficients in the scaled basis
	// (diag(σ_1/σ_j)·UᵀZ, so that Psi·Coef ≈ Z row-wise), the regression
	// inputs for the GLS refit.
	Coef *mat.Matrix
	// TargetLoad is the K×r regression of the standardized targets on the
	// training coefficients (G ≈ TargetLoad·Coef): row k says how critical
	// node k loads on each basis mode. The worst-case criterion minimizes
	// the largest posterior variance over these rows — the locations the
	// sensors exist to reconstruct.
	TargetLoad *mat.Matrix
	// CandBasis is the fitted basis behind Psi and Coef.
	CandBasis *basis.Basis

	XStd *mat.Standardization // transform that produced Z
	FStd *mat.Standardization // transform that produced G

	Vth       float64       // emergency threshold for coverage criteria
	Threshold float64       // group-norm selection threshold for the lasso adapter
	Solver    lasso.Options // solver options for the lasso adapter
}

// NewProblem standardizes the data, fits the candidate POD basis (bc.Rank
// pins the rank; otherwise the smallest rank reaching bc.Energy, default
// DefaultEnergy) and projects the training coefficients. vth parameterizes
// the Eagle-Eye adapter; pass detect.DefaultVth-like thresholds in volts.
func NewProblem(x, f *mat.Matrix, bc basis.Config, vth float64) (*Problem, error) {
	if x == nil || f == nil {
		return nil, errors.New("place: missing candidate or target matrix")
	}
	if x.Cols() != f.Cols() {
		return nil, fmt.Errorf("place: X has %d samples, F has %d", x.Cols(), f.Cols())
	}
	if x.Cols() == 0 {
		return nil, errors.New("place: empty dataset")
	}
	if bc.Rank == 0 && bc.Energy == 0 {
		bc.Energy = DefaultEnergy
	}
	z, xStd := mat.Standardize(x)
	g, fStd := mat.Standardize(f)
	b, err := basis.Fit(z, bc)
	if err != nil {
		return nil, fmt.Errorf("place: candidate basis: %w", err)
	}
	coef, err := b.Project(z)
	if err != nil {
		return nil, fmt.Errorf("place: candidate projection: %w", err)
	}
	psi := b.Components()
	scaleBasis(psi, coef, b.SingularValues())
	// Target loadings: least-squares of Gᵀ on Coefᵀ, one QR for all K nodes.
	lt, err := mat.FactorQR(coef.T()).SolveMatrix(g.T())
	if err != nil {
		return nil, fmt.Errorf("place: target loadings: %w", err)
	}
	return &Problem{
		X: x, F: f,
		Z: z, G: g,
		Psi:        psi,
		Coef:       coef,
		TargetLoad: lt.T(),
		CandBasis:  b,
		XStd:       xStd, FStd: fStd,
		Vth: vth,
	}, nil
}

// Candidates returns M, the number of candidate sites.
func (p *Problem) Candidates() int { return p.X.Rows() }

// Rank returns r, the retained candidate-basis rank.
func (p *Problem) Rank() int { return p.Psi.Cols() }

// checkBudget validates a requested sensor count against the pool.
func (p *Problem) checkBudget(q int) error {
	if q < 1 {
		return fmt.Errorf("place: sensor count %d must be positive", q)
	}
	if q > p.Candidates() {
		return fmt.Errorf("place: cannot place %d sensors among %d candidates", q, p.Candidates())
	}
	return nil
}

// Criterion selects sensor sets. Select returns exactly q candidate indices
// in ascending order (ready for the OLS refit); implementations are
// deterministic and never mutate the Problem, so concurrent Select calls may
// share one Problem (the shootout runs every criterion in parallel on it).
type Criterion interface {
	// Name returns the canonical flag value (e.g. "dopt") the criterion
	// parses from.
	Name() string
	// Select picks q sensors for the problem.
	Select(p *Problem, q int) ([]int, error)
}

// Names returns every criterion name ParseCriterion accepts, sorted — the
// CLI help text and the shootout default list.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// registry maps canonical names to constructors. Criteria are stateless
// between Select calls, so a shared instance per name is safe.
var registry = map[string]func() Criterion{
	"grouplasso": func() Criterion { return GroupLasso{} },
	"eagleeye":   func() Criterion { return EagleEye{} },
	"qrpivot":    func() Criterion { return QRPivot{} },
	"dopt":       func() Criterion { return DOpt{} },
	"eopt":       func() Criterion { return EOpt{} },
	"framesense": func() Criterion { return FrameSense{} },
	"worstcase":  func() Criterion { return WorstCase{} },
}

// ParseCriterion resolves a criterion by its canonical name (as listed by
// Names; matching is case-insensitive). It is the single source of truth for
// the sensorplace -criterion flag and the docscheck flag-value audit.
func ParseCriterion(name string) (Criterion, error) {
	ctor, ok := registry[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return nil, fmt.Errorf("place: unknown criterion %q (want one of %s)", name, strings.Join(Names(), ", "))
	}
	return ctor(), nil
}

// scaleBasis applies the energy weighting in place: column j of psi is
// multiplied by s_j = max(σ_j, 1e-12·σ_1)/σ_1 and row j of coef divided by
// it, preserving psi·coef ≈ Z while letting criteria see each mode at its
// true share of the field energy. The floor keeps an exactly-degenerate
// trailing mode from blowing up the coefficients.
func scaleBasis(psi, coef *mat.Matrix, sv []float64) {
	if len(sv) == 0 || sv[0] <= 0 {
		return
	}
	r := psi.Cols()
	for j := 0; j < r && j < len(sv); j++ {
		s := sv[j] / sv[0]
		if s < 1e-12 {
			s = 1e-12
		}
		for i := 0; i < psi.Rows(); i++ {
			psi.Set(i, j, psi.At(i, j)*s)
		}
		row := coef.Row(j)
		for k := range row {
			row[k] /= s
		}
	}
}

// ascending sorts a selection in place and returns it, the contract every
// criterion's Select shares.
func ascending(sel []int) []int {
	sort.Ints(sel)
	return sel
}
