package place

import (
	"math"
	"math/rand"
	"testing"

	"voltsense/internal/basis"
	"voltsense/internal/mat"
)

// benchProblem mirrors testProblem at benchmark scale.
func benchProblem(b *testing.B, m, k, n, rank int) *Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(99))
	h := randMat(rng, rank, n)
	x := mat.Mul(randMat(rng, m, rank), h)
	f := mat.Mul(randMat(rng, k, rank), h)
	p, err := NewProblem(x, f, basis.Config{Rank: rank}, 0.85)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkDOptSherman measures the production D-optimal greedy, which
// scores every candidate in O(r²) through the maintained Sherman–Morrison
// inverse.
func BenchmarkDOptSherman(b *testing.B) {
	p := benchProblem(b, 200, 8, 400, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (DOpt{}).Select(p, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDOptNaive is the baseline the rank-1 bookkeeping replaces: the
// same greedy recomputing the exact log-det objective from scratch (an r×r
// eigendecomposition per candidate per step). The speedup pair
// (BenchmarkDOptNaive, BenchmarkDOptSherman) is tracked in the PR-8 bench
// report.
func BenchmarkDOptNaive(b *testing.B) {
	p := benchProblem(b, 200, 8, 400, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sel []int
		chosen := make([]bool, p.Candidates())
		for len(sel) < 20 {
			best, bestLD := -1, math.Inf(-1)
			for c := 0; c < p.Candidates(); c++ {
				if chosen[c] {
					continue
				}
				ld, err := LogDetInfo(p.Psi, append(sel, c))
				if err != nil {
					b.Fatal(err)
				}
				if ld > bestLD {
					best, bestLD = c, ld
				}
			}
			chosen[best] = true
			sel = append(sel, best)
		}
	}
}

// BenchmarkQRPivot tracks the pivoted Gram–Schmidt sweep.
func BenchmarkQRPivot(b *testing.B) {
	p := benchProblem(b, 200, 8, 400, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (QRPivot{}).Select(p, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameSense tracks the worst-out frame-potential elimination.
func BenchmarkFrameSense(b *testing.B) {
	p := benchProblem(b, 200, 8, 400, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (FrameSense{}).Select(p, 20); err != nil {
			b.Fatal(err)
		}
	}
}
