package place

import (
	"math"

	"voltsense/internal/mat"
)

// QRPivot is the SSPOR-style greedy of PySensors 2.0: column-pivoted QR of
// Ψᵀ. Each step takes the candidate whose basis row has the largest norm
// after orthogonalizing against the rows already chosen — the pivot order of
// a Householder/Businger–Golub factorization — so the selected rows form a
// maximally well-conditioned square (or tall) system for coefficient
// recovery. The selection depends only on inner products between basis
// rows, which makes it invariant under any orthogonal rotation of the basis
// (TestQRPivotRotationInvariant pins this); complexity is O(M·r·q).
type QRPivot struct{}

// Name returns "qrpivot".
func (QRPivot) Name() string { return "qrpivot" }

// Select runs the pivoted Gram–Schmidt sweep. When q exceeds the basis rank
// the residuals vanish after r pivots; the remaining slots are filled with
// the unchosen candidates of largest original row norm (the highest-energy
// sites), keeping the method total like its PySensors counterpart.
func (QRPivot) Select(p *Problem, q int) ([]int, error) {
	if err := p.checkBudget(q); err != nil {
		return nil, err
	}
	m, r := p.Psi.Rows(), p.Psi.Cols()
	// Residual copies of the basis rows, deflated as pivots are chosen.
	res := p.Psi.Clone()
	norm2 := make([]float64, m)
	orig2 := make([]float64, m)
	for i := 0; i < m; i++ {
		n2 := mat.Dot(res.Row(i), res.Row(i))
		norm2[i] = n2
		orig2[i] = n2
	}
	chosen := make([]bool, m)
	var sel []int
	scale := maxFloat(norm2)
	if scale == 0 {
		scale = 1
	}
	for len(sel) < q && len(sel) < r {
		best, bestN := -1, 0.0
		for i := 0; i < m; i++ {
			if !chosen[i] && norm2[i] > bestN {
				best, bestN = i, norm2[i]
			}
		}
		// Once every residual is at roundoff the pivots no longer carry
		// information; stop and fall through to the norm fill.
		if best < 0 || bestN <= 1e-24*scale {
			break
		}
		chosen[best] = true
		sel = append(sel, best)
		// Deflate: remove the chosen direction from every remaining row.
		pv := res.Row(best)
		inv := 1 / math.Sqrt(bestN)
		for j := range pv {
			pv[j] *= inv
		}
		for i := 0; i < m; i++ {
			if chosen[i] {
				continue
			}
			row := res.Row(i)
			d := mat.Dot(row, pv)
			for j := range row {
				row[j] -= d * pv[j]
			}
			norm2[i] = mat.Dot(row, row)
		}
	}
	fillByScore(&sel, chosen, orig2, q)
	return ascending(sel), nil
}

// FrameSense is Ranieri et al.'s near-optimal greedy for linear inverse
// problems: minimize the frame potential FP(S) = Σ_{i,j∈S} ⟨ψ_i, ψ_j⟩² by
// worst-out elimination. Starting from all M candidates, each step removes
// the row whose deletion decreases FP the most (the row most coherent with
// the survivors), until q remain. FP is within a constant of the MSE of the
// best linear estimator, which is what earns the greedy its (1−1/e)-style
// guarantee; maintaining the pairwise Gram makes the whole elimination
// O(M²·r + M²) — the Gram dominates.
type FrameSense struct{}

// Name returns "framesense".
func (FrameSense) Name() string { return "framesense" }

// Select eliminates M−q candidates from the full pool.
func (FrameSense) Select(p *Problem, q int) ([]int, error) {
	if err := p.checkBudget(q); err != nil {
		return nil, err
	}
	m := p.Psi.Rows()
	g := mat.Mul(p.Psi, p.Psi.T()) // M×M row Gram
	alive := make([]bool, m)
	// contrib[i] = 2 Σ_{j alive, j≠i} G_ij² + G_ii², the exact FP drop if
	// row i is eliminated.
	contrib := make([]float64, m)
	for i := 0; i < m; i++ {
		alive[i] = true
	}
	for i := 0; i < m; i++ {
		gi := g.Row(i)
		var s float64
		for j, v := range gi {
			if j != i {
				s += v * v
			}
		}
		contrib[i] = 2*s + gi[i]*gi[i]
	}
	for remaining := m; remaining > q; remaining-- {
		worst, worstC := -1, -1.0
		for i := 0; i < m; i++ {
			if alive[i] && contrib[i] > worstC {
				worst, worstC = i, contrib[i]
			}
		}
		alive[worst] = false
		gw := g.Row(worst)
		for i := 0; i < m; i++ {
			if alive[i] && i != worst {
				contrib[i] -= 2 * gw[i] * gw[i]
			}
		}
	}
	sel := make([]int, 0, q)
	for i := 0; i < m; i++ {
		if alive[i] {
			sel = append(sel, i)
		}
	}
	return sel, nil // elimination preserves index order
}

// FramePotential evaluates FP(S) = Σ_{i,j∈S} ⟨ψ_i, ψ_j⟩² for a selection —
// the quantity FrameSense minimizes, exported for tests and reporting.
func FramePotential(psi *mat.Matrix, sel []int) float64 {
	var fp float64
	for _, i := range sel {
		ri := psi.Row(i)
		for _, j := range sel {
			d := mat.Dot(ri, psi.Row(j))
			fp += d * d
		}
	}
	return fp
}

// fillByScore appends unchosen indices in descending score order until the
// selection reaches q — the shared tail rule for criteria whose primary
// objective saturates before the budget is spent.
func fillByScore(sel *[]int, chosen []bool, score []float64, q int) {
	if len(*sel) >= q {
		return
	}
	var rest []int
	for i, c := range chosen {
		if !c {
			rest = append(rest, i)
		}
	}
	// Deterministic: score descending, index ascending on ties.
	for len(*sel) < q && len(rest) > 0 {
		best := 0
		for i := 1; i < len(rest); i++ {
			if score[rest[i]] > score[rest[best]] {
				best = i
			}
		}
		*sel = append(*sel, rest[best])
		chosen[rest[best]] = true
		rest = append(rest[:best], rest[best+1:]...)
	}
}

func maxFloat(xs []float64) float64 {
	mx := math.Inf(-1)
	for _, v := range xs {
		if v > mx {
			mx = v
		}
	}
	return mx
}
