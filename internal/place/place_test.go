package place

import (
	"math"
	"math/rand"
	"testing"

	"voltsense/internal/basis"
	"voltsense/internal/mat"
)

func randMat(rng *rand.Rand, r, c int) *mat.Matrix {
	m := mat.Zeros(r, c)
	d := m.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return m
}

// testProblem builds a synthetic low-rank placement problem: M candidate
// traces and K target traces driven by the same rank-dimensional latent
// process, so a rank-r basis of the candidates genuinely determines the
// targets.
func testProblem(t *testing.T, seed int64, m, k, n, rank int) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h := randMat(rng, rank, n)
	x := mat.Mul(randMat(rng, m, rank), h)
	f := mat.Mul(randMat(rng, k, rank), h)
	p, err := NewProblem(x, f, basis.Config{Rank: rank}, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rank() != rank {
		t.Fatalf("candidate basis rank %d, want %d", p.Rank(), rank)
	}
	return p
}

func TestParseCriterionRoundTripsNames(t *testing.T) {
	names := Names()
	if len(names) != 7 {
		t.Fatalf("expected 7 registered criteria, got %v", names)
	}
	for _, name := range names {
		c, err := ParseCriterion(name)
		if err != nil {
			t.Fatalf("ParseCriterion(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("ParseCriterion(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := ParseCriterion("  QRPivot "); err != nil {
		t.Errorf("case/space-insensitive parse failed: %v", err)
	}
	if _, err := ParseCriterion("bogus"); err == nil {
		t.Error("unknown criterion accepted")
	}
}

func TestEveryCriterionReturnsAscendingUniqueSelection(t *testing.T) {
	p := testProblem(t, 1, 14, 3, 160, 4)
	const q = 5
	for _, name := range Names() {
		c, err := ParseCriterion(name)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := c.Select(p, q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(sel) != q {
			t.Fatalf("%s: got %d sensors, want %d", name, len(sel), q)
		}
		for i, s := range sel {
			if s < 0 || s >= p.Candidates() {
				t.Errorf("%s: index %d out of range", name, s)
			}
			if i > 0 && sel[i-1] >= s {
				t.Errorf("%s: selection %v not strictly ascending", name, sel)
			}
		}
		// Determinism: a second run on the same problem must agree.
		again, err := c.Select(p, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sel {
			if sel[i] != again[i] {
				t.Errorf("%s: selection not deterministic: %v vs %v", name, sel, again)
			}
		}
	}
}

func TestCriterionBudgetValidation(t *testing.T) {
	p := testProblem(t, 2, 8, 2, 60, 3)
	for _, q := range []int{0, -1, 9} {
		if _, err := (DOpt{}).Select(p, q); err == nil {
			t.Errorf("budget %d accepted", q)
		}
	}
}

// TestDOptGreedyMatchesBruteForce pins the Sherman–Morrison incremental
// arithmetic against a naive greedy that recomputes the exact log-det
// objective for every candidate at every step.
func TestDOptGreedyMatchesBruteForce(t *testing.T) {
	p := testProblem(t, 3, 12, 3, 90, 4)
	const q = 6
	fast, err := (DOpt{}).Select(p, q)
	if err != nil {
		t.Fatal(err)
	}
	var naive []int
	chosen := make([]bool, p.Candidates())
	for len(naive) < q {
		best, bestLD := -1, math.Inf(-1)
		for i := 0; i < p.Candidates(); i++ {
			if chosen[i] {
				continue
			}
			ld, err := LogDetInfo(p.Psi, append(naive, i))
			if err != nil {
				t.Fatal(err)
			}
			// Same lowest-index-wins tie margin as the production greedy:
			// first-step gains are exactly tied on standardized data.
			if best < 0 || ld > bestLD+1e-9*math.Abs(bestLD) {
				best, bestLD = i, ld
			}
		}
		chosen[best] = true
		naive = append(naive, best)
	}
	naive = ascending(naive)
	for i := range fast {
		if fast[i] != naive[i] {
			t.Fatalf("greedy selections diverge: fast %v vs brute force %v", fast, naive)
		}
	}
	ldFast, err := LogDetInfo(p.Psi, fast)
	if err != nil {
		t.Fatal(err)
	}
	ldNaive, err := LogDetInfo(p.Psi, naive)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(ldFast-ldNaive) / math.Abs(ldNaive); d > 1e-9 {
		t.Errorf("objectives diverge by relative %g", d)
	}
}

// TestQRPivotRotationInvariant: the pivot order depends only on inner
// products between basis rows, so any orthogonal rotation of the basis must
// leave the selection unchanged. The latent dimension deliberately exceeds
// the fitted rank — a fully-covering basis would equalize every row norm
// (ties), making the first pivot ill-defined and the test meaningless.
func TestQRPivotRotationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	h := randMat(rng, 9, 120)
	x := mat.Mul(randMat(rng, 16, 9), h)
	f := mat.Mul(randMat(rng, 3, 9), h)
	p, err := NewProblem(x, f, basis.Config{Rank: 5}, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	const q = 5
	base, err := (QRPivot{}).Select(p, q)
	if err != nil {
		t.Fatal(err)
	}
	rng = rand.New(rand.NewSource(41))
	for trial := 0; trial < 3; trial++ {
		// An orthogonal r×r matrix: eigenvectors of a random symmetric matrix.
		a := randMat(rng, p.Rank(), p.Rank())
		sym := mat.Mul(a, a.T())
		e, err := mat.FactorSymEigen(sym)
		if err != nil {
			t.Fatal(err)
		}
		rotated := *p
		rotated.Psi = mat.Mul(p.Psi, e.Vectors)
		got, err := (QRPivot{}).Select(&rotated, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if base[i] != got[i] {
				t.Fatalf("trial %d: rotation changed selection: %v vs %v", trial, base, got)
			}
		}
	}
}

func TestFrameSenseBeatsRandomSubsets(t *testing.T) {
	p := testProblem(t, 5, 18, 3, 140, 4)
	const q = 6
	sel, err := (FrameSense{}).Select(p, q)
	if err != nil {
		t.Fatal(err)
	}
	fp := FramePotential(p.Psi, sel)
	rng := rand.New(rand.NewSource(51))
	var worse int
	const trials = 40
	for i := 0; i < trials; i++ {
		if FramePotential(p.Psi, rng.Perm(p.Candidates())[:q]) >= fp {
			worse++
		}
	}
	if worse < trials*3/4 {
		t.Errorf("frame potential %g beaten by %d/%d random subsets", fp, trials-worse, trials)
	}
}

func TestEOptAndWorstCaseBeatRandomOnAverage(t *testing.T) {
	p := testProblem(t, 6, 18, 3, 140, 4)
	const q = 6
	eSel, err := (EOpt{}).Select(p, q)
	if err != nil {
		t.Fatal(err)
	}
	wSel, err := (WorstCase{}).Select(p, q)
	if err != nil {
		t.Fatal(err)
	}
	eObj, err := MinEigenInfo(p.Psi, eSel)
	if err != nil {
		t.Fatal(err)
	}
	wObj := MaxPosteriorVariance(p.Psi, p.TargetLoad, wSel)
	rng := rand.New(rand.NewSource(61))
	var eRand, wRand float64
	const trials = 40
	for i := 0; i < trials; i++ {
		sub := rng.Perm(p.Candidates())[:q]
		ev, err := MinEigenInfo(p.Psi, sub)
		if err != nil {
			t.Fatal(err)
		}
		eRand += ev
		wRand += MaxPosteriorVariance(p.Psi, p.TargetLoad, sub)
	}
	eRand /= trials
	wRand /= trials
	if eObj < eRand {
		t.Errorf("E-opt λ_min %g below random average %g", eObj, eRand)
	}
	if wObj > wRand {
		t.Errorf("worst-case posterior variance %g above random average %g", wObj, wRand)
	}
}

// TestGLSModelEqualVariancesMatchesUnweighted: when every sensor carries the
// same noise variance the GLS weighting cancels, so the refit must agree
// with the unweighted basis refit to machine precision.
func TestGLSModelEqualVariancesMatchesUnweighted(t *testing.T) {
	p := testProblem(t, 7, 15, 4, 130, 4)
	sel, err := (DOpt{}).Select(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := GLSModel(p, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1, 0.21, 7.5} {
		vars := make([]float64, len(sel))
		for i := range vars {
			vars[i] = v
		}
		wm, err := GLSModel(p, sel, vars)
		if err != nil {
			t.Fatalf("variance %v: %v", v, err)
		}
		if !mat.Equalish(plain.Alpha, wm.Alpha, 1e-9) {
			t.Errorf("variance %v: alpha diverges by %g", v, mat.MaxAbsDiff(plain.Alpha, wm.Alpha))
		}
		for i := range plain.C {
			if math.Abs(plain.C[i]-wm.C[i]) > 1e-9 {
				t.Errorf("variance %v: intercept %d: %g vs %g", v, i, plain.C[i], wm.C[i])
			}
		}
	}
}

// TestGLSModelPredictsLowRankTargets: on noiseless low-rank data the basis
// refit must reproduce the targets nearly exactly from raw readings.
func TestGLSModelPredictsLowRankTargets(t *testing.T) {
	p := testProblem(t, 8, 15, 4, 130, 4)
	sel, err := (QRPivot{}).Select(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := GLSModel(p, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	xs := p.X.SelectRows(sel)
	var worst float64
	for j := 0; j < p.X.Cols(); j++ {
		got := m.Predict(xs.Col(j))
		for i, v := range got {
			if d := math.Abs(v - p.F.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-6 {
		t.Errorf("max reconstruction error %g on noiseless low-rank data", worst)
	}
}

func TestGLSModelValidation(t *testing.T) {
	p := testProblem(t, 9, 10, 2, 80, 4)
	if _, err := GLSModel(p, nil, nil); err == nil {
		t.Error("empty selection accepted")
	}
	if _, err := GLSModel(p, []int{0, 1, 2}, nil); err == nil {
		t.Error("selection below basis rank accepted")
	}
	if _, err := GLSModel(p, []int{0, 2, 1, 3}, nil); err == nil {
		t.Error("non-ascending selection accepted")
	}
	if _, err := GLSModel(p, []int{0, 1, 2, 11}, nil); err == nil {
		t.Error("out-of-range selection accepted")
	}
	if _, err := GLSModel(p, []int{0, 1, 2, 3}, []float64{1, 1}); err == nil {
		t.Error("mismatched variance vector accepted")
	}
}

func TestPlaceMixedRespectsBudgetAndClasses(t *testing.T) {
	p := testProblem(t, 10, 20, 3, 150, 4)
	spec := DefaultClassSpec
	mp, err := PlaceMixed(p, spec, 12)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Cost > 12 {
		t.Errorf("cost %g exceeds budget", mp.Cost)
	}
	if len(mp.Selected) != len(mp.Classes) {
		t.Fatalf("selected/classes misaligned: %d vs %d", len(mp.Selected), len(mp.Classes))
	}
	for i, s := range mp.Selected {
		if i > 0 && mp.Selected[i-1] >= s {
			t.Fatalf("selection %v not strictly ascending", mp.Selected)
		}
	}
	vars := mp.NoiseVariances(spec)
	for i, c := range mp.Classes {
		want := spec.LowCostVar
		if c == ClassReference {
			want = spec.RefVar
		}
		if vars[i] != want {
			t.Errorf("variance %d: %g, want %g", i, vars[i], want)
		}
	}
	// A larger budget must buy at least as many sensors.
	mpBig, err := PlaceMixed(p, spec, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(mpBig.Selected) < len(mp.Selected) {
		t.Errorf("budget 40 bought %d sensors, budget 12 bought %d", len(mpBig.Selected), len(mp.Selected))
	}
	// The mixed refit must go through once enough sensors cover the rank.
	if len(mpBig.Selected) >= p.Rank() {
		if _, err := GLSModel(p, mpBig.Selected, mpBig.NoiseVariances(spec)); err != nil {
			t.Errorf("mixed GLS refit: %v", err)
		}
	}
}

func TestPlaceMixedEqualCostsPrefersReference(t *testing.T) {
	p := testProblem(t, 11, 12, 2, 90, 3)
	spec := ClassSpec{RefVar: 0.01, LowCostVar: 0.1, RefCost: 1, LowCostCost: 1}
	mp, err := PlaceMixed(p, spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	ref, low := mp.CountByClass()
	if low != 0 {
		t.Errorf("equal costs picked %d low-cost sensors (%d reference); reference strictly dominates", low, ref)
	}
}

func TestPlaceMixedValidation(t *testing.T) {
	p := testProblem(t, 12, 8, 2, 60, 3)
	if _, err := PlaceMixed(p, DefaultClassSpec, 0.5); err == nil {
		t.Error("unaffordable budget accepted")
	}
	bad := DefaultClassSpec
	bad.RefVar = -1
	if _, err := PlaceMixed(p, bad, 10); err == nil {
		t.Error("negative variance accepted")
	}
}

func TestNewProblemValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randMat(rng, 4, 30)
	f := randMat(rng, 2, 20)
	if _, err := NewProblem(x, f, basis.Config{Rank: 2}, 0.85); err == nil {
		t.Error("sample-count mismatch accepted")
	}
	if _, err := NewProblem(nil, f, basis.Config{Rank: 2}, 0.85); err == nil {
		t.Error("nil candidates accepted")
	}
}
