package place

import (
	"errors"
	"fmt"
	"sort"

	"voltsense/internal/eagleeye"
	"voltsense/internal/lasso"
)

// GroupLasso adapts the paper's own placement — the group-lasso path solver
// with warm starts and safe screening — to the Criterion interface. It
// ignores the candidate basis and works on the standardized traces directly,
// bisecting the penalized multiplier μ until the active set lands on q
// sensors (trimming to the strongest group norms when the path jumps over
// the exact count). This is the reference method every other criterion is
// benchmarked against in the shootout.
type GroupLasso struct{}

// Name returns "grouplasso".
func (GroupLasso) Name() string { return "grouplasso" }

// Select bisects μ over one warm-started path solver.
func (GroupLasso) Select(p *Problem, q int) ([]int, error) {
	if err := p.checkBudget(q); err != nil {
		return nil, err
	}
	threshold := p.Threshold
	if threshold <= 0 {
		threshold = 1e-3
	}
	opt := p.Solver
	if opt.MaxIter == 0 {
		opt.MaxIter = 3000
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-7
	}
	ps := lasso.NewPathSolver(p.Z, p.G, opt)
	lo, hi := 0.0, ps.MuMax()
	var best *lasso.Result
	bestCount := -1
	for it := 0; it < 40; it++ {
		mu := (lo + hi) / 2
		r, _, err := ps.SolvePenalized(mu)
		if err != nil && !errors.Is(err, lasso.ErrDidNotConverge) {
			return nil, err
		}
		n := len(r.Select(threshold))
		if n >= q && (bestCount < 0 || n < bestCount) {
			best, bestCount = r, n
		}
		if n == q {
			break
		}
		if n > q {
			lo = mu
		} else {
			hi = mu
		}
	}
	if best == nil {
		return nil, fmt.Errorf("place: group lasso could not reach %d sensors", q)
	}
	sel := best.Select(threshold)
	if len(sel) > q {
		sort.Slice(sel, func(a, b int) bool { return best.GroupNorms[sel[a]] > best.GroupNorms[sel[b]] })
		sel = sel[:q]
	}
	return ascending(sel), nil
}

// EagleEye adapts the Eagle-Eye coverage baseline (greedy emergency-coverage
// maximization followed by worst-noise fill) to the Criterion interface. It
// reads the raw traces and the problem's voltage threshold and ignores the
// candidate basis entirely.
type EagleEye struct{}

// Name returns "eagleeye".
func (EagleEye) Name() string { return "eagleeye" }

// Select runs the coverage greedy at the problem's Vth.
func (EagleEye) Select(p *Problem, q int) ([]int, error) {
	if err := p.checkBudget(q); err != nil {
		return nil, err
	}
	pl := eagleeye.Place(p.X, p.F, p.Vth, q)
	sel := append([]int(nil), pl.Selected...)
	if len(sel) != q {
		return nil, fmt.Errorf("place: eagle-eye returned %d sensors for budget %d", len(sel), q)
	}
	return ascending(sel), nil
}
