package place

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// SensorClass distinguishes the two device classes of a heterogeneous
// monitoring network.
type SensorClass int

const (
	// ClassReference is a high-precision, high-cost device (e.g. a full
	// analog noise sensor with a calibrated front end).
	ClassReference SensorClass = iota
	// ClassLowCost is a cheap, noisier device (e.g. a digital droop
	// detector reused as a coarse voltage sampler).
	ClassLowCost
)

// String returns "reference" or "lowcost".
func (c SensorClass) String() string {
	if c == ClassReference {
		return "reference"
	}
	return "lowcost"
}

// ClassSpec prices the two sensor classes: each class has a measurement
// noise variance (volts², relative to the standardized basis formulation)
// and a deployment cost in arbitrary budget units. A sensible spec has
// RefVar < LowCostVar and RefCost > LowCostCost — otherwise one class
// dominates and the mixed placement degenerates to a single class.
type ClassSpec struct {
	RefVar      float64 // reference-sensor noise variance, > 0
	LowCostVar  float64 // low-cost-sensor noise variance, > 0
	RefCost     float64 // reference-sensor deployment cost, > 0
	LowCostCost float64 // low-cost-sensor deployment cost, > 0
}

// DefaultClassSpec is the shootout's mixed-network pricing: a reference
// sensor is 16× quieter (4× in σ) and 4× the cost of a low-cost sensor.
var DefaultClassSpec = ClassSpec{RefVar: 0.0025, LowCostVar: 0.04, RefCost: 4, LowCostCost: 1}

func (s ClassSpec) check() error {
	for _, v := range []struct {
		name string
		v    float64
	}{
		{"RefVar", s.RefVar}, {"LowCostVar", s.LowCostVar},
		{"RefCost", s.RefCost}, {"LowCostCost", s.LowCostCost},
	} {
		if v.v <= 0 || math.IsNaN(v.v) || math.IsInf(v.v, 0) {
			return fmt.Errorf("place: class spec %s = %v outside (0, ∞)", v.name, v.v)
		}
	}
	return nil
}

// MixedPlacement is a budget-constrained heterogeneous selection: Selected
// holds candidate indices ascending, Classes[i] the device class installed
// at Selected[i], Cost the total budget spent.
type MixedPlacement struct {
	Selected []int
	Classes  []SensorClass
	Cost     float64
}

// NoiseVariances returns the per-sensor noise variance vector aligned with
// Selected — the weights for the GLS refit (see GLSModel).
func (mp *MixedPlacement) NoiseVariances(spec ClassSpec) []float64 {
	out := make([]float64, len(mp.Classes))
	for i, c := range mp.Classes {
		if c == ClassReference {
			out[i] = spec.RefVar
		} else {
			out[i] = spec.LowCostVar
		}
	}
	return out
}

// CountByClass returns (#reference, #lowcost).
func (mp *MixedPlacement) CountByClass() (ref, low int) {
	for _, c := range mp.Classes {
		if c == ClassReference {
			ref++
		} else {
			low++
		}
	}
	return ref, low
}

// PlaceMixed runs budget-constrained heterogeneous placement: a greedy
// weighted-D-optimal design where installing class c at site m adds
// (1/σ²_c)·ψ_m ψ_mᵀ to the information matrix at price cost_c, and each step
// takes the (site, class) pair with the best log-det gain per unit cost that
// still fits the remaining budget. This is the classic cost-benefit greedy
// for submodular maximization under a knapsack constraint; the precision
// weighting is exactly what makes a quiet reference sensor worth a premium
// over several noisy low-cost ones in ill-conditioned directions.
//
// The search stops when the budget cannot afford either class or every site
// is instrumented. At least one sensor must be affordable.
func PlaceMixed(p *Problem, spec ClassSpec, budget float64) (*MixedPlacement, error) {
	if err := spec.check(); err != nil {
		return nil, err
	}
	minCost := math.Min(spec.RefCost, spec.LowCostCost)
	if budget < minCost {
		return nil, fmt.Errorf("place: budget %g cannot afford any sensor (cheapest class costs %g)", budget, minCost)
	}
	if p.Candidates() == 0 {
		return nil, errors.New("place: no candidate sites")
	}
	st := newInfoState(p.Psi)
	chosen := make([]bool, p.Candidates())
	classes := map[SensorClass]struct {
		w, cost float64
	}{
		ClassReference: {1 / spec.RefVar, spec.RefCost},
		ClassLowCost:   {1 / spec.LowCostVar, spec.LowCostCost},
	}
	mp := &MixedPlacement{}
	remaining := budget
	for {
		bestSite, bestClass, bestRatio := -1, ClassReference, 0.0
		for m := 0; m < p.Candidates(); m++ {
			if chosen[m] {
				continue
			}
			row := p.Psi.Row(m)
			raw := st.gain(row, 1) // ψᵀM⁻¹ψ, class-independent
			for c, cc := range classes {
				if cc.cost > remaining {
					continue
				}
				ratio := math.Log1p(cc.w*raw) / cc.cost
				if ratio > bestRatio {
					bestSite, bestClass, bestRatio = m, c, ratio
				}
			}
		}
		if bestSite < 0 {
			break
		}
		cc := classes[bestClass]
		chosen[bestSite] = true
		st.add(p.Psi.Row(bestSite), cc.w)
		mp.Selected = append(mp.Selected, bestSite)
		mp.Classes = append(mp.Classes, bestClass)
		mp.Cost += cc.cost
		remaining -= cc.cost
	}
	if len(mp.Selected) == 0 {
		return nil, errors.New("place: mixed placement selected no sensors")
	}
	sortMixed(mp)
	return mp, nil
}

// sortMixed orders Selected ascending, keeping Classes aligned.
func sortMixed(mp *MixedPlacement) {
	idx := make([]int, len(mp.Selected))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return mp.Selected[idx[a]] < mp.Selected[idx[b]] })
	sel := make([]int, len(idx))
	cls := make([]SensorClass, len(idx))
	for i, j := range idx {
		sel[i] = mp.Selected[j]
		cls[i] = mp.Classes[j]
	}
	mp.Selected, mp.Classes = sel, cls
}
