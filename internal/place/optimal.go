package place

import (
	"fmt"
	"math"

	"voltsense/internal/mat"
)

// infoEps scales the Tikhonov seed of the information matrix: greedy
// optimality criteria start from M₀ = ε·I so the first picks are defined
// even while the information matrix is rank-deficient. ε is relative to the
// mean squared basis-row norm, keeping the criteria scale-free.
const infoEps = 1e-6

// infoState tracks the inverse of the regularized information matrix
// M = ε·I + Σ_{s∈S} w_s ψ_s ψ_sᵀ under rank-1 updates (Sherman–Morrison),
// the shared engine behind DOpt, EOpt, WorstCase and the mixed-class greedy.
type infoState struct {
	r    int
	eps  float64
	inv  *mat.Matrix // M⁻¹, r×r
	info *mat.Matrix // M itself, kept for exact eigenvalue queries
}

func newInfoState(psi *mat.Matrix) *infoState {
	return newInfoStateEps(psi, infoEps)
}

// newInfoStateEps seeds M₀ = (scale·mean‖ψ‖²)·I: the optimality criteria use
// the tiny infoEps (pure regularization), while WorstCase wants a substantive
// prior — see its doc comment.
func newInfoStateEps(psi *mat.Matrix, scale float64) *infoState {
	m, r := psi.Rows(), psi.Cols()
	var meanN2 float64
	for i := 0; i < m; i++ {
		row := psi.Row(i)
		meanN2 += mat.Dot(row, row)
	}
	if m > 0 {
		meanN2 /= float64(m)
	}
	eps := scale * meanN2
	if eps <= 0 {
		eps = scale
	}
	inv := mat.Eye(r)
	info := mat.Eye(r)
	for i := 0; i < r; i++ {
		inv.Set(i, i, 1/eps)
		info.Set(i, i, eps)
	}
	return &infoState{r: r, eps: eps, inv: inv, info: info}
}

// gain returns ψᵀ M⁻¹ ψ · w, the D-optimal log-det increment argument for
// adding ψ with information weight w: log det(M + wψψᵀ) = log det M +
// log(1 + w·ψᵀM⁻¹ψ).
func (st *infoState) gain(psi []float64, w float64) float64 {
	u := mat.MulVec(st.inv, psi)
	return w * mat.Dot(psi, u)
}

// add rank-1 updates both M and M⁻¹ with w·ψψᵀ.
func (st *infoState) add(psi []float64, w float64) {
	u := mat.MulVec(st.inv, psi) // M⁻¹ψ
	denom := 1 + w*mat.Dot(psi, u)
	for i := 0; i < st.r; i++ {
		row := st.inv.Row(i)
		ui := u[i]
		for j := 0; j < st.r; j++ {
			row[j] -= w * ui * u[j] / denom
		}
	}
	for i := 0; i < st.r; i++ {
		row := st.info.Row(i)
		pi := psi[i]
		for j := 0; j < st.r; j++ {
			row[j] += w * pi * psi[j]
		}
	}
}

// DOpt is greedy D-optimal design: each step adds the candidate maximizing
// det(M + ψψᵀ), i.e. the volume of the information ellipsoid, evaluated in
// O(r²) per candidate through the rank-1 determinant lemma on the maintained
// M⁻¹. Log-det of the information matrix is monotone submodular, so the
// greedy enjoys the usual (1−1/e) near-optimality; complexity is O(M·q·r²).
// TestDOptGreedyMatchesBruteForce pins the incremental arithmetic against
// naive log-det recomputation.
type DOpt struct{}

// Name returns "dopt".
func (DOpt) Name() string { return "dopt" }

// Select runs the greedy volume maximization.
func (DOpt) Select(p *Problem, q int) ([]int, error) {
	if err := p.checkBudget(q); err != nil {
		return nil, err
	}
	m := p.Psi.Rows()
	st := newInfoState(p.Psi)
	chosen := make([]bool, m)
	sel := make([]int, 0, q)
	for len(sel) < q {
		best, bestGain := -1, 0.0
		for i := 0; i < m; i++ {
			if chosen[i] {
				continue
			}
			// Lowest index wins ties within a relative margin: on standardized
			// data every candidate's first-step gain is mathematically equal
			// (row norms are equalized), and without the margin fp noise would
			// pick the winner.
			if g := st.gain(p.Psi.Row(i), 1); best < 0 || g > bestGain*(1+1e-9) {
				best, bestGain = i, g
			}
		}
		chosen[best] = true
		sel = append(sel, best)
		st.add(p.Psi.Row(best), 1)
	}
	return ascending(sel), nil
}

// LogDetInfo computes log det(ε·I + Σ_{s∈sel} ψ_s ψ_sᵀ) by eigendecomposition
// — the exact D-optimality objective, exported so tests can cross-check the
// greedy's Sherman–Morrison bookkeeping against first principles.
func LogDetInfo(psi *mat.Matrix, sel []int) (float64, error) {
	st := newInfoState(psi)
	for _, s := range sel {
		st.add(psi.Row(s), 1)
	}
	e, err := mat.FactorSymEigen(st.info)
	if err != nil {
		return 0, err
	}
	var ld float64
	for _, v := range e.Values {
		if v <= 0 {
			return 0, fmt.Errorf("place: non-positive information eigenvalue %g", v)
		}
		ld += math.Log(v)
	}
	return ld, nil
}

// EOpt is greedy E-optimal design: maximize the smallest eigenvalue of the
// information matrix, guarding the worst-conditioned direction of the
// inverse problem. Because λ_min stays pinned at the ε seed until the
// selection reaches full rank, candidates are compared by the whole
// ascending eigenvalue spectrum lexicographically — maximize λ₁, break ties
// on λ₂, and so on — which reduces to plain λ_min maximization once the
// matrix is full-rank. Each evaluation is an exact r×r Jacobi
// eigendecomposition, so the cost is O(M·q·r³); r is small by construction.
type EOpt struct{}

// Name returns "eopt".
func (EOpt) Name() string { return "eopt" }

// Select runs the greedy spectrum maximization.
func (EOpt) Select(p *Problem, q int) ([]int, error) {
	if err := p.checkBudget(q); err != nil {
		return nil, err
	}
	m, r := p.Psi.Rows(), p.Psi.Cols()
	st := newInfoState(p.Psi)
	chosen := make([]bool, m)
	sel := make([]int, 0, q)
	trial := mat.Zeros(r, r)
	for len(sel) < q {
		best := -1
		var bestSpec []float64
		for i := 0; i < m; i++ {
			if chosen[i] {
				continue
			}
			spec, err := trialSpectrum(st, p.Psi.Row(i), 1, trial)
			if err != nil {
				return nil, err
			}
			if best < 0 || lexLess(bestSpec, spec) {
				best, bestSpec = i, spec
			}
		}
		chosen[best] = true
		sel = append(sel, best)
		st.add(p.Psi.Row(best), 1)
	}
	return ascending(sel), nil
}

// trialSpectrum returns the ascending eigenvalues of M + w·ψψᵀ without
// mutating the state; trial is a caller-owned r×r scratch matrix.
func trialSpectrum(st *infoState, psi []float64, w float64, trial *mat.Matrix) ([]float64, error) {
	r := st.r
	for i := 0; i < r; i++ {
		src, dst := st.info.Row(i), trial.Row(i)
		pi := psi[i]
		for j := 0; j < r; j++ {
			dst[j] = src[j] + w*pi*psi[j]
		}
	}
	e, err := mat.FactorSymEigen(trial)
	if err != nil {
		return nil, err
	}
	// FactorSymEigen sorts descending; reverse into ascending order so the
	// lexicographic comparison leads with λ_min.
	spec := make([]float64, len(e.Values))
	for i, v := range e.Values {
		spec[len(spec)-1-i] = v
	}
	return spec, nil
}

// lexLess reports whether spectrum a is lexicographically below b. The tie
// tolerance is relative to the spectrum's overall scale (its largest
// eigenvalue), NOT per entry: the ε-seed eigenvalues carry Jacobi roundoff
// that is huge relative to ε itself, and a per-entry tolerance would let
// that noise decide picks before the comparison reaches the informative
// entries.
func lexLess(a, b []float64) bool {
	tol := 1e-10 * (math.Max(math.Abs(a[len(a)-1]), math.Abs(b[len(b)-1])) + 1e-300)
	for i := range a {
		if b[i]-a[i] > tol {
			return true
		}
		if a[i]-b[i] > tol {
			return false
		}
	}
	return false
}

// MinEigenInfo returns λ_min(ε·I + Σ_{s∈sel} ψ_s ψ_sᵀ), the E-optimality
// objective, for tests and reporting.
func MinEigenInfo(psi *mat.Matrix, sel []int) (float64, error) {
	st := newInfoState(psi)
	for _, s := range sel {
		st.add(psi.Row(s), 1)
	}
	e, err := mat.FactorSymEigen(st.info)
	if err != nil {
		return 0, err
	}
	return e.Values[len(e.Values)-1], nil
}

// WorstCase is the worst-case-scenario criterion of the heterogeneous-network
// placement literature: minimize the largest posterior variance over the
// reconstruction points — here the critical nodes, max_k φ_kᵀ M⁻¹ φ_k with
// φ_k the node's target loading (Problem.TargetLoad) — not just the average.
// Each step evaluates every candidate's effect on that max through the
// Sherman–Morrison identity (diag drop (φ_kᵀM⁻¹ψ_s)²/(1+ψ_sᵀM⁻¹ψ_s) per node
// k), picking the sensor that lowers the worst node the most. Complexity
// O(M·K·r) per step.
//
// Unlike the optimality criteria, WorstCase seeds its information matrix with
// a substantive prior (wcsPrior, not the near-zero infoEps): with a tiny seed
// every not-yet-observed direction carries variance ~1/ε, the max is
// astronomical no matter what one sensor does, and the greedy chases
// meaningless differences between astronomical numbers — in practice it
// clusters sensors around whichever node happens to lead. The prior bounds
// unexplored directions so covering a new direction competes fairly with
// polishing an observed one.
type WorstCase struct{}

// wcsPrior scales the WorstCase information seed relative to the mean squared
// basis-row norm (a unit-ball coefficient prior in row-norm units).
const wcsPrior = 1e-2

// wcsMaxSweeps caps the swap-polish passes; convergence is typically 2–3.
const wcsMaxSweeps = 8

// Name returns "worstcase".
func (WorstCase) Name() string { return "worstcase" }

// Select runs the greedy min-max variance reduction.
func (WorstCase) Select(p *Problem, q int) ([]int, error) {
	if err := p.checkBudget(q); err != nil {
		return nil, err
	}
	m, k := p.Psi.Rows(), p.TargetLoad.Rows()
	st := newInfoStateEps(p.Psi, wcsPrior)
	chosen := make([]bool, m)
	sel := make([]int, 0, q)
	// diag[k] = φ_kᵀ M⁻¹ φ_k, the current posterior variance proxy at node k.
	diag := make([]float64, k)
	refreshDiag := func() {
		for i := 0; i < k; i++ {
			row := p.TargetLoad.Row(i)
			diag[i] = mat.Dot(row, mat.MulVec(st.inv, row))
		}
	}
	refreshDiag()
	proj := make([]float64, k)
	// bestAdd scans the unchosen candidates for the one whose addition
	// minimizes the resulting max node variance; ties within a relative
	// margin fall back to total variance (A-optimality over the nodes), so
	// the pick stays meaningful when no candidate can move the worst node.
	bestAdd := func() int {
		best := -1
		bestMax, bestSum := math.Inf(1), math.Inf(1)
		for s := 0; s < m; s++ {
			if chosen[s] {
				continue
			}
			ps := p.Psi.Row(s)
			u := mat.MulVec(st.inv, ps)
			denom := 1 + mat.Dot(ps, u)
			// proj[k] = φ_kᵀ M⁻¹ ψ_s for every node k in one pass.
			copy(proj, mat.MulVec(p.TargetLoad, u))
			worst, sum := 0.0, 0.0
			for i := 0; i < k; i++ {
				v := diag[i] - proj[i]*proj[i]/denom
				sum += v
				if v > worst {
					worst = v
				}
			}
			if best < 0 || worst < bestMax*(1-1e-9) ||
				(worst <= bestMax*(1+1e-9) && sum < bestSum) {
				best, bestMax, bestSum = s, worst, sum
			}
		}
		return best
	}
	for len(sel) < q {
		best := bestAdd()
		chosen[best] = true
		sel = append(sel, best)
		st.add(p.Psi.Row(best), 1)
		refreshDiag()
	}
	// Swap polish: greedy min-max is myopic (the objective is not
	// submodular), so sweep the selection, pull each sensor out and reinsert
	// the best available one, until a full sweep changes nothing.
	for sweep := 0; sweep < wcsMaxSweeps; sweep++ {
		improved := false
		for si, s := range sel {
			st.add(p.Psi.Row(s), -1) // Sherman–Morrison downdate
			chosen[s] = false
			refreshDiag()
			best := bestAdd()
			chosen[best] = true
			sel[si] = best
			st.add(p.Psi.Row(best), 1)
			refreshDiag()
			if best != s {
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return ascending(sel), nil
}

// MaxPosteriorVariance returns max_k φ_kᵀ(ε·I + Σ_{s∈sel} ψ_sψ_sᵀ)⁻¹φ_k over
// the rows of phi — the WorstCase objective (including its wcsPrior seed)
// when phi is the target-loading matrix — for tests and reporting. sel
// indexes rows of psi.
func MaxPosteriorVariance(psi, phi *mat.Matrix, sel []int) float64 {
	st := newInfoStateEps(psi, wcsPrior)
	for _, s := range sel {
		st.add(psi.Row(s), 1)
	}
	worst := 0.0
	for i := 0; i < phi.Rows(); i++ {
		row := phi.Row(i)
		if v := mat.Dot(row, mat.MulVec(st.inv, row)); v > worst {
			worst = v
		}
	}
	return worst
}
