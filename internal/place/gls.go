package place

import (
	"fmt"

	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// GLSModel builds the heterogeneous-network refit for a selection: a linear
// model from raw sensor readings to raw critical-node voltages that weighs
// each sensor by its measurement precision. The estimate factors through the
// rank-r candidate basis in two stages, both closed-form:
//
//  1. Coefficient recovery. With D = Ψ_S (the selected basis rows) and
//     W = diag(1/σ²_i), the basis coefficients are â = P·z_S where
//     P = (DᵀWD)⁻¹DᵀW is the GLS gain (ols.GLSGain) and z_S the
//     standardized readings — the best linear unbiased estimate under
//     per-sensor noise.
//  2. Target regression. The coefficient→target map (B, c) is ordinary
//     least squares of the raw targets on the training coefficients
//     (ols.Fit on Problem.Coef), fitted once per problem.
//
// The two stages compose into a single K×q model on raw readings, folding
// the candidate standardization into the weights, so the result is a drop-in
// ols.Model for core.Predictor. noiseVar holds one variance per selected
// sensor, aligned with selected ascending (a MixedPlacement's
// NoiseVariances, or nil for unit variances — the homogeneous OLS refit in
// basis space; TestGLSModelEqualVariancesMatchesUnweighted pins that the
// common factor cancels).
//
// GLSModel needs len(selected) ≥ Problem.Rank() — fewer sensors than basis
// modes cannot determine the coefficients.
func GLSModel(p *Problem, selected []int, noiseVar []float64) (*ols.Model, error) {
	q := len(selected)
	if q == 0 {
		return nil, fmt.Errorf("place: empty selection")
	}
	if q < p.Rank() {
		return nil, fmt.Errorf("place: %d sensors cannot determine %d basis coefficients; lower the basis rank or add sensors", q, p.Rank())
	}
	for i, s := range selected {
		if s < 0 || s >= p.Candidates() {
			return nil, fmt.Errorf("place: selected index %d out of range 0..%d", s, p.Candidates()-1)
		}
		if i > 0 && selected[i-1] >= s {
			return nil, fmt.Errorf("place: selection must be strictly ascending")
		}
	}
	if noiseVar == nil {
		noiseVar = make([]float64, q)
		for i := range noiseVar {
			noiseVar[i] = 1
		}
	}
	if len(noiseVar) != q {
		return nil, fmt.Errorf("place: %d noise variances for %d selected sensors", len(noiseVar), q)
	}

	d := p.Psi.SelectRows(selected)
	gain, err := ols.GLSGain(d, noiseVar) // r×q on standardized readings
	if err != nil {
		return nil, err
	}
	// Coefficient→target regression on the training coefficients.
	bm, err := ols.Fit(p.Coef, p.F)
	if err != nil {
		return nil, fmt.Errorf("place: coefficient regression: %w", err)
	}
	// Compose: f̂ = B·(P·z_S) + c with z_S,i = (x_i − μ_i)/s_i. Fold the
	// standardization into the raw-reading model.
	alphaStd := mat.Mul(bm.Alpha, gain) // K×q on standardized readings
	std := p.XStd.Subset(selected)
	k := alphaStd.Rows()
	c := make([]float64, k)
	for i := 0; i < k; i++ {
		row := alphaStd.Row(i)
		ci := bm.C[i]
		for j := 0; j < q; j++ {
			row[j] /= std.Std[j]
			ci -= row[j] * std.Mean[j]
		}
		c[i] = ci
	}
	return &ols.Model{Alpha: alphaStd, C: c}, nil
}
