package traceio

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"voltsense/internal/mat"
)

func TestMatrixRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := rng.Intn(20)
		m := mat.Zeros(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		var buf bytes.Buffer
		if err := WriteMatrixCSV(&buf, m, nil); err != nil {
			return false
		}
		got, names, err := ReadMatrixCSV(&buf)
		if err != nil {
			return false
		}
		if len(names) != r {
			return false
		}
		return mat.Equalish(got, m, 0) // 17 significant digits round-trips exactly
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWriteMatrixCustomNames(t *testing.T) {
	m := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	var buf bytes.Buffer
	if err := WriteMatrixCSV(&buf, m, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,b\n") {
		t.Fatalf("header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	_, names, err := ReadMatrixCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestWriteMatrixBadNames(t *testing.T) {
	m := mat.Zeros(2, 1)
	if err := WriteMatrixCSV(&bytes.Buffer{}, m, []string{"only-one"}); err == nil {
		t.Fatal("expected error for name count mismatch")
	}
}

func TestReadMatrixErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"ragged":      "a,b\n1,2\n3\n",
		"non-numeric": "a\nx\n",
	}
	for name, in := range cases {
		if _, _, err := ReadMatrixCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := mat.Zeros(3, 10)
	f := mat.Zeros(2, 10)
	for j := 0; j < 10; j++ {
		for i := 0; i < 3; i++ {
			x.Set(i, j, rng.Float64())
		}
		for i := 0; i < 2; i++ {
			f.Set(i, j, rng.Float64())
		}
	}
	var xb, fb bytes.Buffer
	if err := WriteDataset(&xb, &fb, &Dataset{X: x, F: f}, nil, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&xb, &fb)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equalish(got.X, x, 0) || !mat.Equalish(got.F, f, 0) {
		t.Fatal("dataset did not round-trip")
	}
}

func TestDatasetSampleMismatch(t *testing.T) {
	ds := &Dataset{X: mat.Zeros(1, 3), F: mat.Zeros(1, 4)}
	if err := WriteDataset(&bytes.Buffer{}, &bytes.Buffer{}, ds, nil, nil); err == nil {
		t.Fatal("expected error")
	}
	var xb, fb bytes.Buffer
	if err := WriteMatrixCSV(&xb, mat.Zeros(1, 3), nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteMatrixCSV(&fb, mat.Zeros(1, 4), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDataset(&xb, &fb); err == nil {
		t.Fatal("expected error on read")
	}
}

func TestSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, []string{"real", "pred"},
		[]float64{1, 2, 3}, []float64{1.5, 2.5, 3.5})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "step,real,pred" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != "1,2,2.5" {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestSeriesCSVErrors(t *testing.T) {
	if err := WriteSeriesCSV(&bytes.Buffer{}, []string{"a"}, []float64{1}, []float64{2}); err == nil {
		t.Error("expected name-count error")
	}
	if err := WriteSeriesCSV(&bytes.Buffer{}, nil); err == nil {
		t.Error("expected no-series error")
	}
	if err := WriteSeriesCSV(&bytes.Buffer{}, []string{"a", "b"}, []float64{1}, []float64{2, 3}); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestRoundTripPreservesSpecialValues(t *testing.T) {
	m := mat.FromRows([][]float64{{0, -0.0, 1e-300, 1e300, math.Pi}})
	var buf bytes.Buffer
	if err := WriteMatrixCSV(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadMatrixCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m.Cols(); j++ {
		if got.At(0, j) != m.At(0, j) {
			t.Fatalf("col %d: %v != %v", j, got.At(0, j), m.At(0, j))
		}
	}
}

func TestReadMatrixRejectsNonFinite(t *testing.T) {
	cases := []struct{ in, wantPos string }{
		{"a,b\ninf,1\n", `sample 0 field "a"`},
		{"a,b\n1,-Inf\n", `sample 0 field "b"`},
		{"a,b\n1,2\nnan,3\n", `sample 1 field "a"`},
		{"a,b\n1,NaN\n", `sample 0 field "b"`},
	}
	for _, c := range cases {
		_, _, err := ReadMatrixCSV(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("input %q: non-finite value accepted", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.wantPos) || !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("input %q: error %q lacks position %q", c.in, err, c.wantPos)
		}
	}
}

func TestSampleWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewSampleWriter(&buf, []string{"s0", "s1", "f0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AppendSamples([]float64{0.9, 0.91, 0.88}); err != nil {
		t.Fatal(err)
	}
	// Every append flushes: the stream must be loadable mid-recording.
	m, names, err := ReadMatrixCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("mid-stream read: %v", err)
	}
	if m.Cols() != 1 || len(names) != 3 {
		t.Fatalf("mid-stream shape %dx%d names %v", m.Rows(), m.Cols(), names)
	}
	if err := sw.AppendSamples([]float64{0.8, 0.81, 0.79}, []float64{0.95, 0.94, 0.96}); err != nil {
		t.Fatal(err)
	}
	if sw.Written() != 3 {
		t.Fatalf("Written() = %d, want 3", sw.Written())
	}
	m, _, err = ReadMatrixCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 3 {
		t.Fatalf("final shape %dx%d, want 3x3", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 0.79 {
		t.Fatalf("value (2,1) = %v", m.At(2, 1))
	}
}

func TestSampleWriterErrors(t *testing.T) {
	if _, err := NewSampleWriter(&bytes.Buffer{}, nil); err == nil {
		t.Error("empty header accepted")
	}
	var buf bytes.Buffer
	sw, err := NewSampleWriter(&buf, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.AppendSamples([]float64{1}); err == nil {
		t.Error("short row accepted")
	}
	if err := sw.AppendSamples([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
	if err := sw.AppendSamples([]float64{1, math.Inf(-1)}); err == nil {
		t.Error("-Inf accepted")
	}
	if sw.Written() != 0 {
		t.Errorf("rejected rows counted: %d", sw.Written())
	}
	if got := buf.String(); got != "a,b\n" {
		t.Errorf("rejected rows leaked into the stream: %q", got)
	}
}
