// Package traceio persists and loads the data matrices the methodology
// consumes, so voltage samples can cross process (and tool) boundaries:
// export training sets for offline analysis, or import measurements taken
// by an external grid simulator or silicon instrumentation.
//
// The format is deliberately plain CSV: one header row naming the series,
// then one row per sample (i.e. the transpose of the in-memory layout,
// because row-per-sample is what spreadsheet and dataframe tools expect).
// Matrices follow the paper's in-memory convention everywhere else: rows
// are variables, columns are samples.
package traceio

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"voltsense/internal/mat"
)

// WriteMatrixCSV writes m (rows = variables, cols = samples) as CSV with
// one row per sample. names labels the variables; nil generates v0, v1, ...
func WriteMatrixCSV(w io.Writer, m *mat.Matrix, names []string) error {
	if names == nil {
		names = make([]string, m.Rows())
		for i := range names {
			names[i] = fmt.Sprintf("v%d", i)
		}
	}
	if len(names) != m.Rows() {
		return fmt.Errorf("traceio: %d names for %d variables", len(names), m.Rows())
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(names); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	row := make([]string, m.Rows())
	for j := 0; j < m.Cols(); j++ {
		for i := 0; i < m.Rows(); i++ {
			row[i] = strconv.FormatFloat(m.At(i, j), 'g', 17, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	return nil
}

// ReadMatrixCSV reads a CSV written by WriteMatrixCSV (or any header + one
// row per sample layout), returning the matrix in rows-are-variables form
// plus the header names. Non-finite values (NaN, ±Inf) are rejected with a
// positioned error, mirroring core.LoadPredictor's hardening: a corrupt
// measurement must fail at import time, not poison a fit downstream.
func ReadMatrixCSV(r io.Reader) (*mat.Matrix, []string, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("traceio: %w", err)
	}
	if len(records) < 1 {
		return nil, nil, fmt.Errorf("traceio: empty input")
	}
	names := records[0]
	nVars := len(names)
	nSamples := len(records) - 1
	if nVars == 0 {
		return nil, nil, fmt.Errorf("traceio: header has no columns")
	}
	m := mat.Zeros(nVars, nSamples)
	for j := 0; j < nSamples; j++ {
		rec := records[j+1]
		if len(rec) != nVars {
			return nil, nil, fmt.Errorf("traceio: sample %d has %d fields, want %d", j, len(rec), nVars)
		}
		for i, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("traceio: sample %d field %q: %w", j, names[i], err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nil, fmt.Errorf("traceio: sample %d field %q: non-finite value %q", j, names[i], field)
			}
			m.Set(i, j, v)
		}
	}
	return m, names, nil
}

// SampleWriter appends samples row by row to a CSV stream in the
// WriteMatrixCSV layout — the streaming counterpart used by paths that
// record samples as they arrive (e.g. the serving tier's feedback log)
// instead of materializing a matrix first. Every appended row is flushed,
// so a crashed process loses at most the row being written.
type SampleWriter struct {
	cw      *csv.Writer
	nFields int
	row     []string
	written int
}

// NewSampleWriter writes the header row and returns the writer. names must
// be non-empty; each subsequent row carries exactly len(names) values.
func NewSampleWriter(w io.Writer, names []string) (*SampleWriter, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("traceio: sample writer needs at least one column")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(names); err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	return &SampleWriter{cw: cw, nFields: len(names), row: make([]string, len(names))}, nil
}

// AppendSamples writes one CSV row per sample and flushes. A width mismatch
// or non-finite value fails before anything of the offending row is written,
// keeping the stream loadable by ReadMatrixCSV.
func (sw *SampleWriter) AppendSamples(samples ...[]float64) error {
	for _, s := range samples {
		if len(s) != sw.nFields {
			return fmt.Errorf("traceio: sample %d has %d values, want %d", sw.written, len(s), sw.nFields)
		}
		for i, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("traceio: sample %d field %d: non-finite value %v", sw.written, i, v)
			}
			sw.row[i] = strconv.FormatFloat(v, 'g', 17, 64)
		}
		if err := sw.cw.Write(sw.row); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
		sw.written++
	}
	sw.cw.Flush()
	if err := sw.cw.Error(); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	return nil
}

// Written returns the number of sample rows appended so far.
func (sw *SampleWriter) Written() int { return sw.written }

// Dataset bundles the two matrices of a placement problem for persistence.
type Dataset struct {
	X *mat.Matrix // candidate voltages, M-by-N
	F *mat.Matrix // monitored voltages, K-by-N
}

// WriteDataset writes X and F as two CSV streams. The sample counts must
// agree.
func WriteDataset(xw, fw io.Writer, ds *Dataset, xNames, fNames []string) error {
	if ds.X.Cols() != ds.F.Cols() {
		return fmt.Errorf("traceio: X has %d samples, F has %d", ds.X.Cols(), ds.F.Cols())
	}
	if err := WriteMatrixCSV(xw, ds.X, xNames); err != nil {
		return err
	}
	return WriteMatrixCSV(fw, ds.F, fNames)
}

// ReadDataset reads the two CSV streams of WriteDataset and validates that
// they describe the same samples.
func ReadDataset(xr, fr io.Reader) (*Dataset, error) {
	x, _, err := ReadMatrixCSV(xr)
	if err != nil {
		return nil, fmt.Errorf("traceio: reading X: %w", err)
	}
	f, _, err := ReadMatrixCSV(fr)
	if err != nil {
		return nil, fmt.Errorf("traceio: reading F: %w", err)
	}
	if x.Cols() != f.Cols() {
		return nil, fmt.Errorf("traceio: X has %d samples, F has %d", x.Cols(), f.Cols())
	}
	return &Dataset{X: x, F: f}, nil
}

// WriteSeriesCSV writes aligned named time series (equal lengths), one row
// per time step — the Figure 2 trace format.
func WriteSeriesCSV(w io.Writer, names []string, series ...[]float64) error {
	if len(names) != len(series) {
		return fmt.Errorf("traceio: %d names for %d series", len(names), len(series))
	}
	if len(series) == 0 {
		return fmt.Errorf("traceio: no series")
	}
	n := len(series[0])
	for i, s := range series {
		if len(s) != n {
			return fmt.Errorf("traceio: series %q has %d points, want %d", names[i], len(s), n)
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"step"}, names...)); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	row := make([]string, len(series)+1)
	for t := 0; t < n; t++ {
		row[0] = strconv.Itoa(t)
		for i, s := range series {
			row[i+1] = strconv.FormatFloat(s[t], 'g', 17, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("traceio: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("traceio: %w", err)
	}
	return nil
}
