package traceio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixCSV feeds arbitrary byte streams to the CSV reader: it must
// either return a well-formed matrix or an error — never panic — and any
// successfully parsed matrix must round-trip through the writer.
func FuzzReadMatrixCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n")
	f.Add("v0\n1.5e-3\n")
	f.Add("")
	f.Add("x,y\nnot,numbers\n")
	f.Add("h\n1\n2\n3\n")
	f.Add("a,b\ninf,1\n")
	f.Add("a,b\n1,-inf\n")
	f.Add("a,b\nnan,2\n")
	f.Add("a,b\nNaN,+Inf\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, names, err := ReadMatrixCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		if m.Rows() != len(names) {
			t.Fatalf("rows %d != names %d", m.Rows(), len(names))
		}
		var buf bytes.Buffer
		// Some fuzzer-found headers contain characters CSV must quote;
		// writing and re-reading must preserve the numbers regardless.
		if err := WriteMatrixCSV(&buf, m, nil); err != nil {
			t.Fatalf("re-writing parsed matrix: %v", err)
		}
		back, _, err := ReadMatrixCSV(&buf)
		if err != nil {
			t.Fatalf("re-reading written matrix: %v", err)
		}
		if back.Rows() != m.Rows() || back.Cols() != m.Cols() {
			t.Fatalf("round-trip changed shape %dx%d -> %dx%d",
				m.Rows(), m.Cols(), back.Rows(), back.Cols())
		}
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				a, b := m.At(i, j), back.At(i, j)
				if a != b && !(a != a && b != b) { // NaN-tolerant equality
					t.Fatalf("round-trip changed (%d,%d): %v -> %v", i, j, a, b)
				}
			}
		}
	})
}
