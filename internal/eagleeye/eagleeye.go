// Package eagleeye implements the comparison baseline: the Eagle-Eye
// statistical noise-sensor-placement framework of Wang et al. (ICCAD 2013),
// as characterized in the paper under reproduction.
//
// Eagle-Eye places sensors to minimize miss error only: a sensor alarms when
// its own voltage crosses the emergency threshold, so placement greedily
// maximizes the number of training emergencies covered by at least one
// sensor. Because emergency coverage is a monotone submodular objective, the
// greedy algorithm is the standard near-optimal (1 − 1/e) strategy — which
// matches the published description of Eagle-Eye as "near-optimal" and
// explains the behaviour the paper highlights: it gravitates to the
// candidate sites with the worst voltage noise.
package eagleeye

import (
	"fmt"
	"sort"

	"voltsense/internal/mat"
)

// Placement is a fitted Eagle-Eye sensor set.
type Placement struct {
	Selected []int   // candidate indices, in selection order
	Vth      float64 // alarm threshold the sensors use
	Coverage float64 // fraction of training emergencies covered
}

// Place selects q sensors from the M candidates of x (M-by-N training
// voltages) to cover the emergencies defined by f (K-by-N critical-node
// voltages) and threshold vth.
//
// Greedy max-coverage runs first; once no remaining candidate covers any new
// emergency, the remaining slots are filled by worst-noise ranking (lowest
// observed minimum voltage), Eagle-Eye's secondary criterion.
func Place(x, f *mat.Matrix, vth float64, q int) *Placement {
	if x.Cols() != f.Cols() {
		panic(fmt.Sprintf("eagleeye: x has %d samples, f has %d", x.Cols(), f.Cols()))
	}
	if q < 0 {
		panic(fmt.Sprintf("eagleeye: negative sensor budget %d", q))
	}
	m, n := x.Rows(), x.Cols()
	if q > m {
		q = m
	}

	// Emergency samples.
	emergency := make([]bool, n)
	total := 0
	for i := 0; i < f.Rows(); i++ {
		row := f.Row(i)
		for j, v := range row {
			if v < vth && !emergency[j] {
				emergency[j] = true
				total++
			}
		}
	}

	// Per-candidate alarm sets restricted to emergency samples.
	alarm := make([][]bool, m)
	for c := 0; c < m; c++ {
		row := x.Row(c)
		a := make([]bool, n)
		for j, v := range row {
			if emergency[j] && v < vth {
				a[j] = true
			}
		}
		alarm[c] = a
	}

	covered := make([]bool, n)
	used := make([]bool, m)
	var selected []int
	coveredCount := 0

	for len(selected) < q {
		best, bestGain := -1, 0
		for c := 0; c < m; c++ {
			if used[c] {
				continue
			}
			gain := 0
			for j, a := range alarm[c] {
				if a && !covered[j] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = c, gain
			}
		}
		if best < 0 {
			break // no marginal coverage left
		}
		used[best] = true
		selected = append(selected, best)
		for j, a := range alarm[best] {
			if a && !covered[j] {
				covered[j] = true
				coveredCount++
			}
		}
	}

	// Fill remaining slots with the noisiest unused candidates.
	if len(selected) < q {
		type cand struct {
			idx  int
			minV float64
		}
		var rest []cand
		for c := 0; c < m; c++ {
			if used[c] {
				continue
			}
			row := x.Row(c)
			mn := row[0]
			for _, v := range row {
				if v < mn {
					mn = v
				}
			}
			rest = append(rest, cand{idx: c, minV: mn})
		}
		sort.Slice(rest, func(a, b int) bool { return rest[a].minV < rest[b].minV })
		for _, r := range rest {
			if len(selected) >= q {
				break
			}
			selected = append(selected, r.idx)
		}
	}

	cov := 0.0
	if total > 0 {
		cov = float64(coveredCount) / float64(total)
	}
	return &Placement{Selected: selected, Vth: vth, Coverage: cov}
}

// Alarms evaluates the placed sensors on new candidate samples (M-by-N):
// sample j alarms when any selected sensor reads below Vth.
func (p *Placement) Alarms(x *mat.Matrix) []bool {
	n := x.Cols()
	out := make([]bool, n)
	for _, s := range p.Selected {
		row := x.Row(s)
		for j, v := range row {
			if v < p.Vth {
				out[j] = true
			}
		}
	}
	return out
}

// WorstNoiseRank returns candidate indices sorted by ascending observed
// minimum voltage (noisiest first) — the pure worst-noise placement used in
// ablations.
func WorstNoiseRank(x *mat.Matrix) []int {
	m := x.Rows()
	idx := make([]int, m)
	mins := make([]float64, m)
	for c := 0; c < m; c++ {
		idx[c] = c
		row := x.Row(c)
		mn := row[0]
		for _, v := range row {
			if v < mn {
				mn = v
			}
		}
		mins[c] = mn
	}
	sort.Slice(idx, func(a, b int) bool { return mins[idx[a]] < mins[idx[b]] })
	return idx
}
