package eagleeye

import (
	"math/rand"
	"testing"

	"voltsense/internal/mat"
)

// buildScenario creates training data where candidate sensors have known
// alarm behaviour. Candidates: 0 covers emergencies {0,1}, 1 covers {2},
// 2 covers {0} (subset of 0), 3 covers nothing.
func buildScenario() (x, f *mat.Matrix) {
	// 5 samples; samples 0,1,2 are emergencies (block voltage below 0.85).
	f = mat.FromRows([][]float64{
		{0.80, 0.82, 0.84, 0.95, 0.96},
	})
	x = mat.FromRows([][]float64{
		{0.80, 0.83, 0.90, 0.95, 0.95}, // candidate 0: alarms on samples 0,1
		{0.90, 0.90, 0.82, 0.95, 0.95}, // candidate 1: alarms on sample 2
		{0.84, 0.90, 0.90, 0.95, 0.95}, // candidate 2: alarms on sample 0
		{0.95, 0.95, 0.95, 0.95, 0.95}, // candidate 3: never alarms
	})
	return x, f
}

func TestPlaceGreedyCoverage(t *testing.T) {
	x, f := buildScenario()
	p := Place(x, f, 0.85, 2)
	if len(p.Selected) != 2 {
		t.Fatalf("selected %v, want 2 sensors", p.Selected)
	}
	if p.Selected[0] != 0 {
		t.Fatalf("first pick = %d, want candidate 0 (covers 2 emergencies)", p.Selected[0])
	}
	if p.Selected[1] != 1 {
		t.Fatalf("second pick = %d, want candidate 1 (only new coverage)", p.Selected[1])
	}
	if p.Coverage != 1.0 {
		t.Fatalf("coverage = %v, want 1.0", p.Coverage)
	}
}

func TestPlaceFillsWithWorstNoise(t *testing.T) {
	x, f := buildScenario()
	p := Place(x, f, 0.85, 4)
	if len(p.Selected) != 4 {
		t.Fatalf("selected %d sensors, want 4", len(p.Selected))
	}
	// After coverage is exhausted (0, 1), candidate 2 (min 0.84) is noisier
	// than candidate 3 (min 0.95).
	if p.Selected[2] != 2 || p.Selected[3] != 3 {
		t.Fatalf("fill order = %v, want [... 2 3]", p.Selected)
	}
}

func TestPlaceBudgetClamped(t *testing.T) {
	x, f := buildScenario()
	p := Place(x, f, 0.85, 99)
	if len(p.Selected) != x.Rows() {
		t.Fatalf("selected %d, want clamped to %d", len(p.Selected), x.Rows())
	}
}

func TestPlaceZeroBudget(t *testing.T) {
	x, f := buildScenario()
	p := Place(x, f, 0.85, 0)
	if len(p.Selected) != 0 {
		t.Fatalf("selected %v with zero budget", p.Selected)
	}
}

func TestAlarms(t *testing.T) {
	x, f := buildScenario()
	p := Place(x, f, 0.85, 1) // selects candidate 0
	alarms := p.Alarms(x)
	want := []bool{true, true, false, false, false}
	for j := range want {
		if alarms[j] != want[j] {
			t.Fatalf("alarms = %v, want %v", alarms, want)
		}
	}
}

func TestNoEmergenciesFallsBackToNoise(t *testing.T) {
	f := mat.FromRows([][]float64{{0.95, 0.96, 0.97}})
	x := mat.FromRows([][]float64{
		{0.95, 0.95, 0.95},
		{0.90, 0.95, 0.95}, // noisiest
		{0.93, 0.95, 0.95},
	})
	p := Place(x, f, 0.85, 2)
	if len(p.Selected) != 2 || p.Selected[0] != 1 || p.Selected[1] != 2 {
		t.Fatalf("selected %v, want noisiest-first [1 2]", p.Selected)
	}
	if p.Coverage != 0 {
		t.Fatalf("coverage = %v with no emergencies", p.Coverage)
	}
}

func TestWorstNoiseRank(t *testing.T) {
	x := mat.FromRows([][]float64{
		{0.95, 0.92},
		{0.80, 0.99},
		{0.90, 0.85},
	})
	rank := WorstNoiseRank(x)
	if rank[0] != 1 || rank[1] != 2 || rank[2] != 0 {
		t.Fatalf("rank = %v, want [1 2 0]", rank)
	}
}

func TestPlaceGravitatesTowardWorstNoise(t *testing.T) {
	// Statistical behaviour the paper reports: with correlated noise,
	// Eagle-Eye's picks concentrate on deep-droop candidates.
	rng := rand.New(rand.NewSource(1))
	m, n := 30, 2000
	x := mat.Zeros(m, n)
	f := mat.Zeros(1, n)
	for j := 0; j < n; j++ {
		base := 0.93 + 0.04*rng.NormFloat64()
		f.Set(0, j, base-0.03)
		for c := 0; c < m; c++ {
			depth := 0.01 * float64(c%5) // candidates 4,9,... droop deepest
			x.Set(c, j, base-depth+0.01*rng.NormFloat64())
		}
	}
	p := Place(x, f, 0.85, 5)
	deep := 0
	for _, s := range p.Selected {
		if s%5 >= 3 {
			deep++
		}
	}
	if deep < 4 {
		t.Errorf("only %d of 5 picks are deep-droop candidates: %v", deep, p.Selected)
	}
}

func TestPlacePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Place(mat.Zeros(2, 3), mat.Zeros(1, 4), 0.85, 1)
}
