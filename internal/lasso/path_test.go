package lasso

import (
	"math"
	"math/rand"
	"testing"

	"voltsense/internal/mat"
)

// pathProblem builds a random instance whose optimum is meaningfully sparse:
// G is generated from a handful of true candidate rows plus noise, so small
// budgets zero most groups and the screening layer has something to drop.
func pathProblem(seed int64, k, m, n int) (*mat.Matrix, *mat.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	z := randn(rng, m, n)
	g := mat.Zeros(k, n)
	for i := 0; i < k; i++ {
		src := rng.Intn(m)
		w := 1 + rng.Float64()
		for j := 0; j < n; j++ {
			g.Set(i, j, w*z.At(src, j)+0.1*rng.NormFloat64())
		}
	}
	return z, g
}

// selections thresholds group norms the way core.PlaceSensors does: active
// means above a small fraction of the largest group norm.
func selections(norms []float64) []bool {
	max := 0.0
	for _, v := range norms {
		if v > max {
			max = v
		}
	}
	sel := make([]bool, len(norms))
	for i, v := range norms {
		sel[i] = v > 1e-3*max && v > 0
	}
	return sel
}

func sameSelections(a, b []float64) bool {
	sa, sb := selections(a), selections(b)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

// tightOpt drives both the cold reference and the path solver close enough to
// the shared optimum that 1e-9 agreement is meaningful.
var tightOpt = Options{MaxIter: 20000, Tol: 1e-11}

func TestSolvePathMatchesColdConstrained(t *testing.T) {
	z, g := pathProblem(11, 6, 40, 240)
	// Deliberately unsorted input: the solver must reorder internally and
	// return points in this order.
	lambdas := []float64{3, 8, 2, 6, 4, 5}
	points, err := SolvePath(z, g, lambdas, tightOpt)
	if err != nil {
		t.Fatalf("SolvePath: %v", err)
	}
	screened := 0
	for i, p := range points {
		if p.Lambda != lambdas[i] {
			t.Fatalf("point %d has lambda %g, want %g", i, p.Lambda, lambdas[i])
		}
		cold, err := SolveConstrained(z, g, p.Lambda, tightOpt)
		if err != nil {
			t.Fatalf("cold solve λ=%g: %v", p.Lambda, err)
		}
		if d := mat.MaxAbsDiff(p.Result.Beta, cold.Beta); d > 1e-9 {
			t.Errorf("λ=%g: path vs cold max |Δβ| = %g", p.Lambda, d)
		}
		if !sameSelections(p.Result.GroupNorms, cold.GroupNorms) {
			t.Errorf("λ=%g: path and cold solves select different groups", p.Lambda)
		}
		screened += p.Stats.Screened
	}
	if screened == 0 {
		t.Error("screening never dropped a group across the whole path; test exercises nothing")
	}
}

func TestSolvePenalizedPathMatchesCold(t *testing.T) {
	z, g := pathProblem(12, 6, 40, 240)
	muMax := NewPathSolver(z, g, tightOpt).MuMax()
	mus := []float64{0.3 * muMax, 0.7 * muMax, 0.05 * muMax, 0.15 * muMax, 0.5 * muMax}
	points, err := SolvePenalizedPath(z, g, mus, tightOpt)
	if err != nil {
		t.Fatalf("SolvePenalizedPath: %v", err)
	}
	screened := 0
	for i, p := range points {
		cold, err := SolvePenalized(z, g, mus[i], tightOpt)
		if err != nil {
			t.Fatalf("cold solve μ=%g: %v", mus[i], err)
		}
		if d := mat.MaxAbsDiff(p.Result.Beta, cold.Beta); d > 1e-9 {
			t.Errorf("μ=%g: path vs cold max |Δβ| = %g", mus[i], d)
		}
		if !sameSelections(p.Result.GroupNorms, cold.GroupNorms) {
			t.Errorf("μ=%g: path and cold solves select different groups", mus[i])
		}
		screened += p.Stats.Screened
	}
	if screened == 0 {
		t.Error("gap-safe screening never fired; test exercises nothing")
	}
}

// TestPathSolverPenalizedBisectionOrder drives SolvePenalized in the
// non-monotone order a bisection produces; every point must still match an
// independent cold solve (warm starts and screening may never change the
// answer, whatever the visiting order).
func TestPathSolverPenalizedBisectionOrder(t *testing.T) {
	z, g := pathProblem(13, 5, 32, 200)
	ps := NewPathSolver(z, g, tightOpt)
	lo, hi := 0.0, ps.MuMax()
	for step := 0; step < 12; step++ {
		mu := 0.5 * (lo + hi)
		res, _, err := ps.SolvePenalized(mu)
		if err != nil {
			t.Fatalf("step %d μ=%g: %v", step, mu, err)
		}
		cold, err := SolvePenalized(z, g, mu, tightOpt)
		if err != nil {
			t.Fatalf("cold μ=%g: %v", mu, err)
		}
		if d := mat.MaxAbsDiff(res.Beta, cold.Beta); d > 1e-9 {
			t.Fatalf("step %d μ=%g: warm bisection vs cold max |Δβ| = %g", step, mu, d)
		}
		nz := 0
		for _, n := range res.GroupNorms {
			if n > 0 {
				nz++
			}
		}
		if nz > 6 {
			hi = mu
		} else {
			lo = mu
		}
	}
}

func TestPathSolverEdgeCases(t *testing.T) {
	z, g := pathProblem(14, 4, 20, 120)
	ps := NewPathSolver(z, g, tightOpt)

	res, stats, err := ps.SolvePenalized(2 * ps.MuMax())
	if err != nil {
		t.Fatalf("μ>μmax: %v", err)
	}
	if !betaIsZero(res.Beta) || stats.Screened != 20 {
		t.Fatalf("μ>μmax must zero everything (screened=%d)", stats.Screened)
	}

	res, _, err = ps.SolveConstrained(0)
	if err != nil {
		t.Fatalf("λ=0: %v", err)
	}
	if !betaIsZero(res.Beta) {
		t.Fatal("λ=0 must produce the zero solution")
	}
	if want := 0.5 * sumSquares(g); math.Abs(res.Objective-want) > 1e-9*want {
		t.Fatalf("zero-solution objective = %g, want %g", res.Objective, want)
	}

	// A single-point path equals the one-shot solver exactly in structure.
	points, err := SolvePath(z, g, []float64{4}, tightOpt)
	if err != nil {
		t.Fatalf("single-point path: %v", err)
	}
	cold, err := SolveConstrained(z, g, 4, tightOpt)
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.MaxAbsDiff(points[0].Result.Beta, cold.Beta); d > 1e-9 {
		t.Fatalf("single-point path vs cold max |Δβ| = %g", d)
	}
}

func sumSquares(m *mat.Matrix) float64 {
	s := 0.0
	for _, v := range m.Data() {
		s += v * v
	}
	return s
}

// TestSolvePathInputOrderInvariance shuffles the budget list: the returned
// points must be identical (bitwise) to the sorted run's, point by point.
func TestSolvePathInputOrderInvariance(t *testing.T) {
	z, g := pathProblem(15, 5, 30, 180)
	sorted := []float64{8, 6, 5, 4, 3, 2}
	shuffled := []float64{4, 2, 8, 5, 3, 6}
	a, err := SolvePath(z, g, sorted, tightOpt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolvePath(z, g, shuffled, tightOpt)
	if err != nil {
		t.Fatal(err)
	}
	byLambda := map[float64]*Result{}
	for _, p := range a {
		byLambda[p.Lambda] = p.Result
	}
	for _, p := range b {
		ref := byLambda[p.Lambda]
		if d := mat.MaxAbsDiff(p.Result.Beta, ref.Beta); d != 0 {
			t.Fatalf("λ=%g: shuffled path differs from sorted by %g", p.Lambda, d)
		}
	}
}
