package lasso

import (
	"math"
	"math/rand"
	"testing"

	"voltsense/internal/mat"
)

// referenceSolveConstrained is the straightforward pre-workspace FISTA
// implementation — allocate-per-iteration mat.Sub/Mul/Scale chains and the
// public projection — kept as the golden oracle for the reworked solver.
func referenceSolveConstrained(z, g *mat.Matrix, lambda float64, opt Options) *Result {
	opt = opt.withDefaults()
	k, m := g.Rows(), z.Rows()
	zt := z.T()
	gr := &gram{zzt: mat.Mul(z, zt), gzt: mat.Mul(g, zt)}
	f := g.FrobeniusNorm()
	gr.trGG = f * f
	step := 1 / gr.lipschitz()

	beta := mat.Zeros(k, m)
	y := mat.Zeros(k, m)
	tk := 1.0
	for it := 1; it <= opt.MaxIter; it++ {
		grad := mat.Sub(mat.Mul(y, gr.zzt), gr.gzt)
		next := mat.Sub(y, mat.Scale(step, grad))
		ProjectGroupBall(next, lambda)
		tNext := (1 + math.Sqrt(1+4*tk*tk)) / 2
		mom := (tk - 1) / tNext
		yd, nd, bd := y.Data(), next.Data(), beta.Data()
		for i := range yd {
			yd[i] = nd[i] + mom*(nd[i]-bd[i])
		}
		prev := beta
		beta = next
		tk = tNext
		diff := mat.Sub(beta, prev).FrobeniusNorm()
		base := beta.FrobeniusNorm()
		if base == 0 {
			base = 1
		}
		if diff/base < opt.Tol {
			break
		}
	}
	return &Result{Beta: beta, GroupNorms: groupNorms(beta), Objective: gr.objective(beta)}
}

// TestWorkspaceSolverMatchesReference pins the zero-allocation FISTA rewrite
// to the naive implementation: same selected support, coefficients within
// 1e-9, objective within 1e-9, across several shapes and budgets.
func TestWorkspaceSolverMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		k, m, n int
		lambda  float64
	}{
		{1, 5, 40, 1.5},
		{3, 17, 60, 4},
		{4, 30, 90, 8},
		{2, 9, 25, 0.5},
	}
	opt := Options{MaxIter: 800, Tol: 1e-9}
	for _, c := range cases {
		z := randn(rng, c.m, c.n)
		g := randn(rng, c.k, c.n)
		want := referenceSolveConstrained(z, g, c.lambda, opt)
		got, err := SolveConstrained(z, g, c.lambda, opt)
		if err != nil {
			t.Fatalf("k=%d m=%d: %v", c.k, c.m, err)
		}
		if d := mat.MaxAbsDiff(got.Beta, want.Beta); d > 1e-9 {
			t.Errorf("k=%d m=%d λ=%v: coefficients differ from reference by %g", c.k, c.m, c.lambda, d)
		}
		if d := math.Abs(got.Objective - want.Objective); d > 1e-9*(1+want.Objective) {
			t.Errorf("k=%d m=%d λ=%v: objective %v vs reference %v", c.k, c.m, c.lambda, got.Objective, want.Objective)
		}
		gotSel, wantSel := got.Select(1e-3), want.Select(1e-3)
		if len(gotSel) != len(wantSel) {
			t.Fatalf("k=%d m=%d λ=%v: selected %v, reference %v", c.k, c.m, c.lambda, gotSel, wantSel)
		}
		for i := range gotSel {
			if gotSel[i] != wantSel[i] {
				t.Fatalf("k=%d m=%d λ=%v: selected %v, reference %v", c.k, c.m, c.lambda, gotSel, wantSel)
			}
		}
	}
}

// TestSolveConstrainedInvariantUnderParallelism asserts the production
// solver returns bitwise-identical coefficients — and therefore identical
// sensor selections — for any mat worker count.
func TestSolveConstrainedInvariantUnderParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	z := randn(rng, 40, 120)
	g := randn(rng, 6, 120)
	opt := Options{MaxIter: 400, Tol: 1e-8}

	defer mat.SetParallelism(mat.SetParallelism(1))
	serial, err := SolveConstrained(z, g, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		mat.SetParallelism(workers)
		par, err := SolveConstrained(z, g, 6, opt)
		if err != nil {
			t.Fatal(err)
		}
		sd, pd := serial.Beta.Data(), par.Beta.Data()
		for i := range sd {
			if sd[i] != pd[i] {
				t.Fatalf("workers=%d: coefficient %d differs bitwise: %v vs %v", workers, i, pd[i], sd[i])
			}
		}
	}
}

// TestFistaSteadyStateZeroAllocs is the acceptance guard for the workspace
// rewrite: once the solver state exists, an iteration must not touch the
// heap. The serial kernel path is forced because the parallel dispatcher
// hands closures to the worker pool (a handful of bytes per call, but not
// zero).
func TestFistaSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	z := randn(rng, 30, 80)
	g := randn(rng, 5, 80)
	defer mat.SetParallelism(mat.SetParallelism(1))

	gr := newGram(z, g)
	st := newFistaState(gr, g.Rows(), z.Rows(), 4)
	st.iterate() // warm up: first projection may take the inside-ball path

	allocs := testing.AllocsPerRun(200, func() {
		st.iterate()
	})
	if allocs != 0 {
		t.Fatalf("FISTA steady-state iteration allocates %v objects/op, want 0", allocs)
	}
}

// TestPenalizedSteadyStateAllocs pins the BCD solver's inner sweep: after
// the first full pass, subsequent sweeps reuse the same buffers.
func TestPenalizedSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	z := randn(rng, 20, 60)
	g := randn(rng, 4, 60)
	defer mat.SetParallelism(mat.SetParallelism(1))

	// One converged solve warms every code path; a second solve's
	// allocations are then dominated by the fixed setup (Gram, buffers),
	// bounded well below one allocation per iteration.
	r, err := SolvePenalized(z, g, 0.5, Options{MaxIter: 500, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if r.Iters < 3 {
		t.Skipf("BCD converged in %d iterations; too few to measure steady state", r.Iters)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := SolvePenalized(z, g, 0.5, Options{MaxIter: 500, Tol: 1e-10}); err != nil {
			t.Fatal(err)
		}
	})
	perIter := allocs / float64(r.Iters)
	if perIter >= 1 {
		t.Fatalf("SolvePenalized allocates %.1f objects per solve (%.2f/iteration); the sweep loop should not allocate", allocs, perIter)
	}
}
