package lasso

import (
	"math"
	"testing"
)

// FuzzProjectL1 checks the ℓ₁-ball projection invariants on arbitrary
// non-negative inputs: in-ball output, idempotence, and order preservation.
func FuzzProjectL1(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 1.5)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(10.0, 0.1, 5.0, 2.0)
	f.Fuzz(func(t *testing.T, a, b, c, radius float64) {
		sanitize := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Abs(math.Mod(x, 1e6))
		}
		v := []float64{sanitize(a), sanitize(b), sanitize(c)}
		r := sanitize(radius)
		p := ProjectL1(v, r)
		sum := 0.0
		for i, x := range p {
			if x < 0 {
				t.Fatalf("negative projection %v", p)
			}
			if x > v[i]+1e-9 {
				t.Fatalf("projection grew a coordinate: %v -> %v", v[i], x)
			}
			sum += x
		}
		if sum > r+1e-6*(1+r) {
			t.Fatalf("projection sum %v exceeds radius %v", sum, r)
		}
		// Idempotence.
		q := ProjectL1(p, r)
		for i := range p {
			if math.Abs(q[i]-p[i]) > 1e-9 {
				t.Fatalf("projection not idempotent: %v vs %v", p, q)
			}
		}
		// Order preservation: v_i >= v_j implies p_i >= p_j.
		for i := range v {
			for j := range v {
				if v[i] >= v[j] && p[i] < p[j]-1e-9 {
					t.Fatalf("order violated: v=%v p=%v", v, p)
				}
			}
		}
	})
}
