package lasso

// This file implements the regularization-path layer over the two solvers of
// lasso.go: one Gram computation shared across every path point, warm starts
// carried between points, and group-level safe screening that drops candidate
// columns whose optimal group norm is provably zero before the solver runs.
//
// Screening follows the gap-safe sphere test (El Ghaoui et al., "Safe Feature
// Elimination"; Ndiaye et al., "Gap Safe Screening Rules"). For the penalized
// problem min ½‖G−βZ‖_F² + μ Σ‖β_m‖₂ the Fenchel dual is
//
//	max_Θ ½‖G‖_F² − ½‖G − μΘ‖_F²   s.t.  ‖Θ z_mᵀ‖₂ ≤ 1 ∀m,
//
// with the optimum at Θ* = R*/μ (R = G − βZ the residual). Any primal β and
// feasible dual Θ give a duality gap bounding ‖Θ* − Θ‖_F ≤ √(2·gap)/μ, so
//
//	‖Θ z_mᵀ‖₂ + √(2·gap)/μ · ‖z_m‖₂ < 1  ⟹  β*_m = 0.
//
// Every quantity is computable from the Gram statistics alone: the dual point
// is the scaled residual Θ = R/max(μ, max_m ‖R z_mᵀ‖), the correlations
// R Zᵀ = GZᵀ − β·ZZᵀ come from one matrix multiply, and ‖R‖_F² expands over
// ZZᵀ and GZᵀ. The constrained form has no fixed μ, so its screen is the
// sequential heuristic (groups inactive at a larger budget stay inactive as
// the budget shrinks); both forms finish with an exact KKT verification of
// every screened-out group against the solved reduced problem, un-screening
// violators and re-solving, so the returned solution provably satisfies the
// full problem's optimality conditions regardless of what the screen dropped.

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"voltsense/internal/mat"
)

// PathStats reports what the screening layer did at one path point.
type PathStats struct {
	Screened int // candidate groups dropped before the solve
	Kept     int // groups handed to the solver
	Resolves int // KKT-safeguard re-solves (screened group re-admitted)
}

// PathPoint is one solved point of a regularization path.
type PathPoint struct {
	Lambda float64 // the budget λ (constrained) or multiplier μ (penalized)
	Result *Result
	Stats  PathStats
}

// screenMargin is the fraction of the warm-start multiplier below which the
// sequential constrained-path heuristic drops an inactive group. It only
// trades solve time (a dropped group that comes back costs a safeguard
// re-solve); correctness is enforced by the KKT verification either way.
const screenMargin = 0.9

// PathSolver solves a sequence of group-lasso instances on one dataset,
// sharing the Gram statistics across every solve and warm-starting each point
// from the previous solution. It is not safe for concurrent use.
type PathSolver struct {
	gr   *gram
	k, m int
	opt  Options
	lip  float64 // σ_max(ZZᵀ) of the full problem; valid step for any subset

	warm       *mat.Matrix // last converged solution, nil before the first solve
	warmNorms  []float64   // group norms of warm
	prevLambda float64     // last constrained budget solved (screening direction)
	hasPrev    bool

	znorms []float64   // ‖z_m‖₂ = √(ZZᵀ)_mm
	muMax  float64     // max_m ‖(GZᵀ)_m‖₂: the smallest μ zeroing every group
	bz     *mat.Matrix // scratch: β·ZZᵀ
	corr   *mat.Matrix // scratch: GZᵀ − β·ZZᵀ
	cnorms []float64   // per-group correlation norms ‖(R Zᵀ)_m‖₂
}

// NewPathSolver prepares a path solver for the instance (Z, G): Z is M-by-N
// (normalized candidates), G is K-by-N (normalized outputs). The Gram
// products and Lipschitz estimate are computed once, here.
func NewPathSolver(z, g *mat.Matrix, opt Options) *PathSolver {
	checkShapes(z, g)
	k, m := g.Rows(), z.Rows()
	gr := newGram(z, g)
	ps := &PathSolver{
		gr:     gr,
		k:      k,
		m:      m,
		opt:    opt.withDefaults(),
		lip:    gr.lipschitz(),
		znorms: make([]float64, m),
		bz:     mat.Zeros(k, m),
		corr:   mat.Zeros(k, m),
		cnorms: make([]float64, m),
	}
	for j := 0; j < m; j++ {
		ps.znorms[j] = math.Sqrt(gr.zzt.At(j, j))
	}
	groupNormsInto(ps.cnorms, gr.gzt)
	for _, n := range ps.cnorms {
		if n > ps.muMax {
			ps.muMax = n
		}
	}
	return ps
}

// MuMax returns max_m ‖(GZᵀ)_m‖₂ — the smallest penalized multiplier μ at
// which every group is zero, the natural upper bisection bound.
func (ps *PathSolver) MuMax() float64 { return ps.muMax }

// correlationsAt fills ps.corr with GZᵀ − β·ZZᵀ and ps.cnorms with its
// per-group column norms. beta may be nil for the cold (zero) point.
func (ps *PathSolver) correlationsAt(beta *mat.Matrix) {
	if beta == nil || betaIsZero(beta) {
		copy(ps.corr.Data(), ps.gr.gzt.Data())
	} else {
		mat.MulInto(ps.bz, beta, ps.gr.zzt)
		mat.SubInto(ps.corr, ps.gr.gzt, ps.bz)
	}
	groupNormsInto(ps.cnorms, ps.corr)
}

// residualStats returns ‖R‖_F² and ⟨G, R⟩ for R = G − βZ, from the Gram
// statistics. It requires ps.bz to already hold β·ZZᵀ (as left behind by
// correlationsAt); for a zero β both reduce to ‖G‖_F².
func (ps *PathSolver) residualStats(beta *mat.Matrix) (rr, gdotr float64) {
	if beta == nil || betaIsZero(beta) {
		return ps.gr.trGG, ps.gr.trGG
	}
	var cross, quad float64
	bd, gd, qd := beta.Data(), ps.gr.gzt.Data(), ps.bz.Data()
	for i, v := range bd {
		cross += v * gd[i]
		quad += v * qd[i]
	}
	rr = ps.gr.trGG - 2*cross + quad
	if rr < 0 {
		rr = 0
	}
	return rr, ps.gr.trGG - cross
}

// setWarm records the converged full-size solution as the next warm start.
func (ps *PathSolver) setWarm(beta *mat.Matrix) {
	ps.warm = beta.Clone()
	if ps.warmNorms == nil {
		ps.warmNorms = make([]float64, ps.m)
	}
	groupNormsInto(ps.warmNorms, ps.warm)
}

// zeroResult is the trivial solution (λ = 0 or μ ≥ μ_max).
func (ps *PathSolver) zeroResult() *Result {
	beta := mat.Zeros(ps.k, ps.m)
	return &Result{
		Beta:       beta,
		GroupNorms: make([]float64, ps.m),
		Iters:      0,
		Objective:  0.5 * ps.gr.trGG,
	}
}

// screenPenalized runs the gap-safe sphere test at multiplier mu against the
// current warm point and returns the kept group indices (ascending).
func (ps *PathSolver) screenPenalized(mu float64) []int {
	keep := make([]int, 0, ps.m)
	if mu <= 0 {
		for j := 0; j < ps.m; j++ {
			keep = append(keep, j)
		}
		return keep
	}
	ps.correlationsAt(ps.warm)
	rr, gdotr := ps.residualStats(ps.warm)
	budget := 0.0
	if ps.warm != nil {
		for _, n := range ps.warmNorms {
			budget += n
		}
	}
	c := mu
	for _, n := range ps.cnorms {
		if n > c {
			c = n
		}
	}
	// Primal at the warm point, dual at the scaled residual Θ = R/c.
	primal := 0.5*rr + mu*budget
	s := mu / c
	dual := s*gdotr - 0.5*s*s*rr
	gap := primal - dual
	if gap < 0 {
		gap = 0
	}
	r := math.Sqrt(2*gap) / mu
	for j := 0; j < ps.m; j++ {
		if ps.cnorms[j]/c+r*ps.znorms[j] < 1 {
			continue // provably zero at this μ
		}
		keep = append(keep, j)
	}
	return keep
}

// screenConstrained applies the sequential heuristic for a descending budget
// path: groups that were inactive at the previous (larger) budget and whose
// correlation sits a margin below the warm point's active-set multiplier are
// presumed to stay inactive. Unsafe in isolation — the caller's KKT
// verification re-admits anything dropped wrongly.
func (ps *PathSolver) screenConstrained(lambda float64) []int {
	keep := make([]int, 0, ps.m)
	if ps.warm == nil || !ps.hasPrev || lambda > ps.prevLambda {
		for j := 0; j < ps.m; j++ {
			keep = append(keep, j)
		}
		return keep
	}
	ps.correlationsAt(ps.warm)
	muHat := 0.0
	for _, n := range ps.cnorms {
		if n > muHat {
			muHat = n
		}
	}
	for j := 0; j < ps.m; j++ {
		if ps.warmNorms[j] == 0 && ps.cnorms[j] < screenMargin*muHat {
			continue
		}
		keep = append(keep, j)
	}
	return keep
}

// scatter expands a reduced K-by-len(keep) solution onto the full candidate
// set, zero everywhere outside keep.
func (ps *PathSolver) scatter(reduced *mat.Matrix, keep []int) *mat.Matrix {
	full := mat.Zeros(ps.k, ps.m)
	for i := 0; i < ps.k; i++ {
		dst, src := full.Row(i), reduced.Row(i)
		for jj, j := range keep {
			dst[j] = src[jj]
		}
	}
	return full
}

// warmReduced restricts the warm start to the kept groups (zeros when cold).
func (ps *PathSolver) warmReduced(keep []int) *mat.Matrix {
	if ps.warm == nil {
		return mat.Zeros(ps.k, len(keep))
	}
	return ps.warm.SelectCols(keep)
}

// subGram restricts the Gram statistics to the kept groups, reusing the full
// set unchanged when nothing was screened.
func (ps *PathSolver) subGram(keep []int) *gram {
	if len(keep) == ps.m {
		return ps.gr
	}
	return &gram{
		zzt:  ps.gr.zzt.SelectRows(keep).SelectCols(keep),
		gzt:  ps.gr.gzt.SelectCols(keep),
		trGG: ps.gr.trGG,
	}
}

// mergeViolations appends the violating screened groups to keep, ascending.
func mergeViolations(keep, viol []int) []int {
	merged := append(append([]int(nil), keep...), viol...)
	sort.Ints(merged)
	return merged
}

// SolveConstrained solves the paper's Eq. 12 at budget lambda, warm-started
// from the previous solve and screened when the path is descending. The
// returned result is equivalent to a cold SolveConstrained call at the same
// options: screened groups are verified against the KKT conditions of the
// full problem and re-admitted (with a re-solve) on any violation.
func (ps *PathSolver) SolveConstrained(lambda float64) (*Result, PathStats, error) {
	if lambda < 0 {
		panic(fmt.Sprintf("lasso: negative lambda %v", lambda))
	}
	var stats PathStats
	if lambda == 0 {
		res := ps.zeroResult()
		ps.setWarm(res.Beta)
		ps.prevLambda, ps.hasPrev = 0, true
		return res, stats, nil
	}
	keep := ps.screenConstrained(lambda)
	var full *mat.Matrix
	var iters int
	var solveErr error
	for {
		stats.Screened = ps.m - len(keep)
		stats.Kept = len(keep)
		red, it, err := ps.fistaReduced(keep, lambda)
		iters = it
		if err != nil {
			solveErr = err
		}
		full = ps.scatter(red, keep)
		viol := ps.kktConstrainedViolations(full, keep)
		if len(viol) == 0 {
			break
		}
		keep = mergeViolations(keep, viol)
		stats.Resolves++
	}
	res := &Result{Beta: full, GroupNorms: groupNorms(full), Iters: iters,
		Objective: ps.gr.objective(full)}
	ps.setWarm(full)
	ps.prevLambda, ps.hasPrev = lambda, true
	return res, stats, solveErr
}

// SolvePenalized solves the Lagrangian form at multiplier mu, warm-started
// and gap-safe screened. Safe for arbitrary μ orderings (bisection included):
// the screen is recomputed from the current warm point at each call.
func (ps *PathSolver) SolvePenalized(mu float64) (*Result, PathStats, error) {
	if mu < 0 {
		panic(fmt.Sprintf("lasso: negative mu %v", mu))
	}
	var stats PathStats
	if mu >= ps.muMax {
		stats.Screened = ps.m
		res := ps.zeroResult()
		ps.setWarm(res.Beta)
		return res, stats, nil
	}
	keep := ps.screenPenalized(mu)
	var full *mat.Matrix
	var iters int
	var solveErr error
	for {
		stats.Screened = ps.m - len(keep)
		stats.Kept = len(keep)
		var red *mat.Matrix
		var it int
		if len(keep) == 0 {
			red, it = mat.Zeros(ps.k, 0), 0
		} else {
			r, err := solvePenalizedGram(ps.subGram(keep), mu, ps.opt, ps.warmReduced(keep))
			if err != nil && !errors.Is(err, ErrDidNotConverge) {
				return nil, stats, err
			}
			if err != nil {
				solveErr = err
			}
			red, it = r.Beta, r.Iters
		}
		iters = it
		full = ps.scatter(red, keep)
		viol := ps.kktPenalizedViolations(full, keep, mu)
		if len(viol) == 0 {
			break
		}
		keep = mergeViolations(keep, viol)
		stats.Resolves++
	}
	res := &Result{Beta: full, GroupNorms: groupNorms(full), Iters: iters,
		Objective: ps.gr.objective(full)}
	ps.setWarm(full)
	return res, stats, solveErr
}

// fistaReduced runs the constrained FISTA on the kept groups, warm-started,
// reusing the full problem's Lipschitz bound (σ_max of a principal submatrix
// never exceeds the full matrix's, so the step stays valid).
func (ps *PathSolver) fistaReduced(keep []int, lambda float64) (*mat.Matrix, int, error) {
	mk := len(keep)
	beta := ps.warmReduced(keep)
	st := &fistaState{
		gr:     ps.subGram(keep),
		lambda: lambda,
		step:   1 / ps.lip,
		tk:     1,
		beta:   beta,
		next:   mat.Zeros(ps.k, mk),
		y:      beta.Clone(),
		grad:   mat.Zeros(ps.k, mk),
		proj:   newProjWS(mk),
	}
	// A warm start may sit outside the shrunken ball; the first projection
	// pulls it back, so feasibility holds from iteration one onward.
	st.proj.projectGroupBall(st.beta, lambda)
	copy(st.y.Data(), st.beta.Data())
	var iters int
	for iters = 1; iters <= ps.opt.MaxIter; iters++ {
		if st.iterate() < ps.opt.Tol {
			break
		}
	}
	if iters > ps.opt.MaxIter {
		return st.beta, ps.opt.MaxIter, ErrDidNotConverge
	}
	return st.beta, iters, nil
}

// kktConstrainedViolations checks every screened-out group of a solved
// reduced problem against the full problem's stationarity conditions: at the
// optimum the active-set multiplier μ̂ = max_m ‖(R Zᵀ)_m‖₂ over kept groups
// bounds the correlation of every zero group. Screened groups exceeding μ̂
// (beyond solver-tolerance slack) are returned for re-admission.
func (ps *PathSolver) kktConstrainedViolations(full *mat.Matrix, keep []int) []int {
	if len(keep) == ps.m {
		return nil
	}
	ps.correlationsAt(full)
	kept := make([]bool, ps.m)
	muHat := 0.0
	for _, j := range keep {
		kept[j] = true
		if ps.cnorms[j] > muHat {
			muHat = ps.cnorms[j]
		}
	}
	slack := 1e-7 * (muHat + ps.muMax)
	var viol []int
	for j := 0; j < ps.m; j++ {
		if !kept[j] && ps.cnorms[j] > muHat+slack {
			viol = append(viol, j)
		}
	}
	return viol
}

// kktPenalizedViolations verifies the screened-out groups of a penalized
// solve: a zero group is optimal iff ‖(R Zᵀ)_m‖₂ ≤ μ. The gap-safe test makes
// violations impossible in exact arithmetic; this guards finite precision.
func (ps *PathSolver) kktPenalizedViolations(full *mat.Matrix, keep []int, mu float64) []int {
	if len(keep) == ps.m {
		return nil
	}
	ps.correlationsAt(full)
	kept := make([]bool, ps.m)
	for _, j := range keep {
		kept[j] = true
	}
	slack := 1e-9 * (mu + ps.muMax)
	var viol []int
	for j := 0; j < ps.m; j++ {
		if !kept[j] && ps.cnorms[j] > mu+slack {
			viol = append(viol, j)
		}
	}
	return viol
}

// descendingOrder returns the index permutation visiting values from largest
// to smallest (ties in input order), so paths warm-start dense → sparse.
func descendingOrder(vals []float64) []int {
	order := make([]int, len(vals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return vals[order[a]] > vals[order[b]]
	})
	return order
}

// SolvePath solves the constrained problem (Eq. 12) at every budget in
// lambdas with one shared Gram, visiting budgets in descending order and
// carrying warm starts between points. Points come back in the order of the
// input slice. Each point is equivalent to an independent SolveConstrained
// call (the screening layer is KKT-verified); a point that exhausts the
// iteration budget contributes ErrDidNotConverge, with every point still
// populated.
func SolvePath(z, g *mat.Matrix, lambdas []float64, opt Options) ([]PathPoint, error) {
	ps := NewPathSolver(z, g, opt)
	points := make([]PathPoint, len(lambdas))
	var pathErr error
	for _, idx := range descendingOrder(lambdas) {
		res, stats, err := ps.SolveConstrained(lambdas[idx])
		if err != nil && !errors.Is(err, ErrDidNotConverge) {
			return nil, err
		}
		if err != nil {
			pathErr = err
		}
		points[idx] = PathPoint{Lambda: lambdas[idx], Result: res, Stats: stats}
	}
	return points, pathErr
}

// SolvePenalizedPath solves the Lagrangian form at every multiplier in mus,
// descending, with shared Gram, warm starts, and gap-safe screening. Points
// come back in input order; each is equivalent to a cold SolvePenalized call.
func SolvePenalizedPath(z, g *mat.Matrix, mus []float64, opt Options) ([]PathPoint, error) {
	ps := NewPathSolver(z, g, opt)
	points := make([]PathPoint, len(mus))
	var pathErr error
	for _, idx := range descendingOrder(mus) {
		res, stats, err := ps.SolvePenalized(mus[idx])
		if err != nil && !errors.Is(err, ErrDidNotConverge) {
			return nil, err
		}
		if err != nil {
			pathErr = err
		}
		points[idx] = PathPoint{Lambda: mus[idx], Result: res, Stats: stats}
	}
	return points, pathErr
}
