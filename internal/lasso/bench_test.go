package lasso

import (
	"math/rand"
	"testing"

	"voltsense/internal/mat"
)

func benchProblem(k, m, n int) (*mat.Matrix, *mat.Matrix) {
	rng := rand.New(rand.NewSource(6))
	return randn(rng, m, n), randn(rng, k, n)
}

// BenchmarkSolveConstrained covers the full solve — Gram build, FISTA
// iterations, group norms. allocs/op is the guard: it must stay proportional
// to the fixed workspace setup, not to the iteration count.
func BenchmarkSolveConstrained(b *testing.B) {
	z, g := benchProblem(8, 60, 600)
	opt := Options{MaxIter: 300, Tol: 1e-8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveConstrained(z, g, 6, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFistaIterate isolates the steady-state hot loop; with the serial
// kernel path pinned it must report exactly 0 allocs/op.
func BenchmarkFistaIterate(b *testing.B) {
	z, g := benchProblem(8, 60, 600)
	defer mat.SetParallelism(mat.SetParallelism(1))
	gr := newGram(z, g)
	st := newFistaState(gr, g.Rows(), z.Rows(), 6)
	st.iterate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.iterate()
	}
}

func BenchmarkSolvePenalized(b *testing.B) {
	z, g := benchProblem(8, 60, 600)
	opt := Options{MaxIter: 300, Tol: 1e-8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolvePenalized(z, g, 0.5, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLambdas is the Table 1 budget grid the placement pipeline sweeps.
var benchLambdas = []float64{8, 6, 5, 4, 3, 2}

// BenchmarkSolvePathCold is the pre-path baseline: one independent
// SolveConstrained per budget, each rebuilding the Gram and starting FISTA
// from zero — exactly what PlaceCore did per λ before the path solver.
func BenchmarkSolvePathCold(b *testing.B) {
	z, g := benchProblem(8, 60, 600)
	opt := Options{MaxIter: 2000, Tol: 1e-8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range benchLambdas {
			if _, err := SolveConstrained(z, g, l, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSolvePathWarm sweeps the same budgets through SolvePath: one Gram,
// warm starts between points, screening ahead of each solve. benchreport
// pairs this against BenchmarkSolvePathCold.
func BenchmarkSolvePathWarm(b *testing.B) {
	z, g := benchProblem(8, 60, 600)
	opt := Options{MaxIter: 2000, Tol: 1e-8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolvePath(z, g, benchLambdas, opt); err != nil {
			b.Fatal(err)
		}
	}
}
