package lasso

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"voltsense/internal/mat"
)

func randn(rng *rand.Rand, r, c int) *mat.Matrix {
	m := mat.Zeros(r, c)
	d := m.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return m
}

func sumSlice(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

func TestProjectL1InsideBallIsIdentity(t *testing.T) {
	v := []float64{0.1, 0.2, 0.3}
	got := ProjectL1(v, 1)
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("projection changed a point inside the ball: %v", got)
		}
	}
}

func TestProjectL1Known(t *testing.T) {
	// Project (2, 1) onto Σx ≤ 1, x ≥ 0: θ solves (2−θ)+(1−θ)=1 → θ=1,
	// giving (1, 0).
	got := ProjectL1([]float64{2, 1}, 1)
	if math.Abs(got[0]-1) > 1e-12 || math.Abs(got[1]) > 1e-12 {
		t.Fatalf("ProjectL1 = %v, want [1 0]", got)
	}
}

func TestProjectL1ZeroRadius(t *testing.T) {
	got := ProjectL1([]float64{3, 4}, 0)
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("zero-radius projection = %v", got)
	}
}

// Property: the projection lands in the ball, and satisfies the KKT
// structure: active coordinates share a common gap θ, inactive coordinates
// have v_i ≤ θ.
func TestProjectL1KKT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() * 3
		}
		radius := rng.Float64() * 2
		p := ProjectL1(v, radius)
		if sumSlice(p) > radius+1e-9 {
			return false
		}
		if sumSlice(v) <= radius {
			return true // identity case already checked in-ball
		}
		// Common θ across active coordinates.
		theta := math.NaN()
		for i := range p {
			if p[i] > 1e-12 {
				gap := v[i] - p[i]
				if math.IsNaN(theta) {
					theta = gap
				} else if math.Abs(gap-theta) > 1e-9 {
					return false
				}
			}
		}
		if math.IsNaN(theta) {
			return true // everything clipped to zero
		}
		for i := range p {
			if p[i] <= 1e-12 && v[i] > theta+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: projection is the nearest point — no random in-ball point is
// closer to v than the projection.
func TestProjectL1IsNearest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.Float64() * 3
		}
		radius := 0.1 + rng.Float64()
		p := ProjectL1(v, radius)
		dp := mat.Norm2(mat.SubVec(v, p))
		for trial := 0; trial < 20; trial++ {
			q := make([]float64, n)
			var s float64
			for i := range q {
				q[i] = rng.Float64()
				s += q[i]
			}
			if s > 0 {
				scale := radius * rng.Float64() / s
				for i := range q {
					q[i] *= scale
				}
			}
			if mat.Norm2(mat.SubVec(v, q)) < dp-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestProjectGroupBallBudgetAndDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	beta := randn(rng, 4, 6)
	orig := beta.Clone()
	ProjectGroupBall(beta, 1.5)
	norms := groupNorms(beta)
	if s := sumSlice(norms); s > 1.5+1e-9 {
		t.Fatalf("budget after projection = %v > 1.5", s)
	}
	// Surviving columns keep their direction.
	for j := 0; j < 6; j++ {
		if norms[j] < 1e-12 {
			continue
		}
		on := mat.Norm2(orig.Col(j))
		c := mat.Dot(orig.Col(j), beta.Col(j)) / (on * norms[j])
		if math.Abs(c-1) > 1e-9 {
			t.Fatalf("column %d direction changed: cos = %v", j, c)
		}
	}
}

func TestSolveConstrainedRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := randn(rng, 10, 200)
	g := randn(rng, 4, 200)
	for _, lambda := range []float64{0.1, 1, 5} {
		r, err := SolveConstrained(z, g, lambda, Options{})
		if err != nil {
			t.Fatalf("lambda=%v: %v", lambda, err)
		}
		if b := BudgetOf(r); b > lambda*(1+1e-6) {
			t.Fatalf("lambda=%v: budget %v exceeds constraint", lambda, b)
		}
	}
}

func TestSolveConstrainedRecoversSupport(t *testing.T) {
	// Plant a model using features {1, 4, 7} and check the group norms
	// separate planted from unplanted columns.
	rng := rand.New(rand.NewSource(3))
	m, k, n := 12, 5, 400
	z := randn(rng, m, n)
	truth := mat.Zeros(k, m)
	for _, j := range []int{1, 4, 7} {
		for i := 0; i < k; i++ {
			truth.Set(i, j, 1+rng.Float64())
		}
	}
	g := mat.Mul(truth, z)
	r, err := SolveConstrained(z, g, 4, Options{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	minPlanted, maxOther := math.Inf(1), 0.0
	for j, nv := range r.GroupNorms {
		planted := j == 1 || j == 4 || j == 7
		if planted && nv < minPlanted {
			minPlanted = nv
		}
		if !planted && nv > maxOther {
			maxOther = nv
		}
	}
	if minPlanted < 10*maxOther {
		t.Fatalf("weak separation: planted min %v vs other max %v", minPlanted, maxOther)
	}
}

// TestPaperSection23Example reproduces the paper's worked example: two
// candidates with g1 = g2 = z1 and λ = 1. Group lasso must select only
// candidate 1, and its coefficients must be biased to ≈ 1/√2 each by the
// budget constraint (Eq. 16) — the very bias the OLS refit step exists to
// remove.
func TestPaperSection23Example(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 500
	z := mat.Zeros(2, n)
	g := mat.Zeros(2, n)
	for j := 0; j < n; j++ {
		z1 := rng.NormFloat64()
		z.Set(0, j, z1)
		z.Set(1, j, rng.NormFloat64()) // independent noise candidate
		g.Set(0, j, z1)
		g.Set(1, j, z1)
	}
	r, err := SolveConstrained(z, g, 1, Options{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	sel := r.Select(1e-3)
	if len(sel) != 1 || sel[0] != 0 {
		t.Fatalf("selected %v, want [0]", sel)
	}
	if n1 := r.GroupNorms[0]; n1 > 1+1e-6 {
		t.Fatalf("‖β₁‖ = %v violates Eq. 16", n1)
	}
	want := 1 / math.Sqrt2
	if b := r.Beta.At(0, 0); math.Abs(b-want) > 0.05 {
		t.Errorf("β₁,₁ = %v, want ≈ %v (biased by the constraint)", b, want)
	}
	if b := r.Beta.At(1, 0); math.Abs(b-want) > 0.05 {
		t.Errorf("β₂,₁ = %v, want ≈ %v", b, want)
	}
}

func TestSolvePenalizedZeroMuIsOLS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, k, n := 6, 3, 300
	z := randn(rng, m, n)
	truth := randn(rng, k, m)
	g := mat.Mul(truth, z)
	r, err := SolvePenalized(z, g, 0, Options{MaxIter: 20000, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equalish(r.Beta, truth, 1e-6) {
		t.Fatal("μ=0 penalized solution should equal the exact model")
	}
}

func TestSolvePenalizedLargeMuKillsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	z := randn(rng, 5, 100)
	g := randn(rng, 3, 100)
	r, err := SolvePenalized(z, g, 1e9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if BudgetOf(r) != 0 {
		t.Fatalf("huge μ left nonzero coefficients: %v", r.GroupNorms)
	}
}

func TestSolversAgreeThroughDuality(t *testing.T) {
	// Constrained(λ) and Penalized(μ*) with μ* from the budget bisection
	// must find the same support and nearby coefficients.
	rng := rand.New(rand.NewSource(7))
	m, k, n := 10, 4, 300
	z := randn(rng, m, n)
	truth := mat.Zeros(k, m)
	for _, j := range []int{0, 3, 6} {
		for i := 0; i < k; i++ {
			truth.Set(i, j, 1+rng.Float64())
		}
	}
	g := mat.Mul(truth, z)
	noise := randn(rng, k, n)
	g = mat.Add(g, mat.Scale(0.05, noise))

	lambda := 3.0
	rc, err := SolveConstrained(z, g, lambda, Options{MaxIter: 8000, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	rp, _, err := SolvePenalizedForBudget(z, g, lambda, 1e-4, Options{MaxIter: 20000, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	selC := r2set(rc.Select(1e-3))
	selP := r2set(rp.Select(1e-3))
	if len(selC) != len(selP) {
		t.Fatalf("supports differ: constrained %v, penalized %v", rc.Select(1e-3), rp.Select(1e-3))
	}
	for j := range selC {
		if !selP[j] {
			t.Fatalf("supports differ: constrained %v, penalized %v", rc.Select(1e-3), rp.Select(1e-3))
		}
	}
	if !mat.Equalish(rc.Beta, rp.Beta, 0.02) {
		t.Error("dual solutions differ beyond tolerance")
	}
}

func r2set(idx []int) map[int]bool {
	s := make(map[int]bool, len(idx))
	for _, i := range idx {
		s[i] = true
	}
	return s
}

func TestMoreBudgetNeverHurtsObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	z := randn(rng, 8, 200)
	g := randn(rng, 3, 200)
	prev := math.Inf(1)
	for _, lambda := range []float64{0.2, 0.5, 1, 2, 4, 8} {
		r, err := SolveConstrained(z, g, lambda, Options{MaxIter: 4000})
		if err != nil {
			t.Fatalf("lambda=%v: %v", lambda, err)
		}
		if r.Objective > prev*(1+1e-6) {
			t.Fatalf("objective increased with larger budget: %v then %v", prev, r.Objective)
		}
		prev = r.Objective
	}
}

func TestSelectThreshold(t *testing.T) {
	r := &Result{GroupNorms: []float64{1e-9, 0.5, 1e-4, 2}}
	got := r.Select(1e-3)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Select = %v, want [1 3]", got)
	}
}

func TestSolveConstrainedZeroLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	z := randn(rng, 4, 50)
	g := randn(rng, 2, 50)
	r, err := SolveConstrained(z, g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if BudgetOf(r) != 0 {
		t.Fatal("λ=0 must zero every coefficient")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SolveConstrained(mat.Zeros(2, 10), mat.Zeros(2, 11), 1, Options{})
}
