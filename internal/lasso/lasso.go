// Package lasso implements the group-lasso solvers behind the paper's
// sensor-selection step (Eq. 12):
//
//	min_β ‖G − β·Z‖_F   s.t.   Σ_m ‖β_m‖₂ ≤ λ
//
// with Z the M-by-N normalized sensor-candidate samples, G the K-by-N
// normalized block-voltage samples, and β_m the m-th column of the K-by-M
// coefficient matrix — the group tying candidate m to every output.
//
// Two independent solvers are provided:
//
//   - SolveConstrained: accelerated projected gradient (FISTA) on the
//     constrained problem itself, using the exact Euclidean projection onto
//     the group-norm ball (an ℓ₁-ball projection on the vector of group
//     norms, Duchi et al. 2008). This is the production path: its λ is
//     exactly the paper's λ.
//   - SolvePenalized: block coordinate descent on the Lagrangian form
//     ½‖G−βZ‖_F² + μ Σ‖β_m‖₂ with closed-form group soft-threshold updates.
//     By convex duality the two formulations trace the same solution path;
//     the test suite exercises that equivalence, and the penalized form
//     doubles as a plain per-output lasso when K = 1.
//
// The paper reformulates Eq. 12 as an SOCP for an interior-point solver;
// first-order methods reach the same KKT points and need no cone machinery,
// which matters for a dependency-free build.
package lasso

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"voltsense/internal/mat"
)

// ErrDidNotConverge is returned when a solver exhausts its iteration budget
// before reaching the requested tolerance.
var ErrDidNotConverge = errors.New("lasso: solver did not converge")

// Options tunes the iterative solvers. The zero value selects defaults.
type Options struct {
	MaxIter int     // default 2000
	Tol     float64 // relative coefficient-change tolerance, default 1e-7
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	return o
}

// Result is a solved group-lasso instance.
type Result struct {
	Beta       *mat.Matrix // K-by-M coefficients
	GroupNorms []float64   // ‖β_m‖₂ per candidate column
	Iters      int
	Objective  float64 // ½‖G − βZ‖_F²
}

// Select returns the candidate indices whose group norm exceeds the
// threshold T, in ascending order — the paper's Step 5.
func (r *Result) Select(t float64) []int {
	var idx []int
	for m, n := range r.GroupNorms {
		if n > t {
			idx = append(idx, m)
		}
	}
	return idx
}

func checkShapes(z, g *mat.Matrix) {
	if z.Cols() != g.Cols() {
		panic(fmt.Sprintf("lasso: Z has %d samples, G has %d", z.Cols(), g.Cols()))
	}
}

// groupNorms computes ‖β_m‖₂ for every column of beta.
func groupNorms(beta *mat.Matrix) []float64 {
	out := make([]float64, beta.Cols())
	groupNormsInto(out, beta)
	return out
}

// groupNormsInto fills dst (length beta.Cols()) with ‖β_m‖₂ per column.
func groupNormsInto(dst []float64, beta *mat.Matrix) {
	k, m := beta.Rows(), beta.Cols()
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < k; i++ {
		row := beta.Row(i)
		for j := 0; j < m; j++ {
			dst[j] += row[j] * row[j]
		}
	}
	for j := range dst {
		dst[j] = math.Sqrt(dst[j])
	}
}

// ProjectL1 projects the non-negative vector v onto {x ≥ 0 : Σx ≤ radius}
// in Euclidean norm (Duchi et al., "Efficient projections onto the
// ℓ₁-ball"). v is not modified.
func ProjectL1(v []float64, radius float64) []float64 {
	for _, x := range v {
		if x < 0 {
			panic("lasso: ProjectL1 requires non-negative input")
		}
	}
	out := make([]float64, len(v))
	projectL1Into(out, make([]float64, len(v)), v, radius)
	return out
}

// projectL1Into is the allocation-free core of ProjectL1: it fills out with
// the projection of the non-negative vector v, using scratch (same length)
// as sort workspace. out may alias v.
func projectL1Into(out, scratch, v []float64, radius float64) {
	if radius < 0 {
		panic(fmt.Sprintf("lasso: negative radius %v", radius))
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum <= radius {
		copy(out, v)
		return
	}
	// Find θ with Σ max(v_i − θ, 0) = radius via the sorted prefix rule,
	// walking the ascending sort from the back for descending order.
	copy(scratch, v)
	slices.Sort(scratch)
	var cum, theta float64
	rho := -1
	for i := len(scratch) - 1; i >= 0; i-- {
		x := scratch[i]
		cnt := len(scratch) - i
		cum += x
		if x-(cum-radius)/float64(cnt) <= 0 {
			break // the active set is a prefix of the descending order
		}
		rho = cnt - 1
		theta = (cum - radius) / float64(cnt)
	}
	if rho < 0 {
		for i := range out {
			out[i] = 0 // radius == 0
		}
		return
	}
	for i, x := range v {
		if d := x - theta; d > 0 {
			out[i] = d
		} else {
			out[i] = 0
		}
	}
}

// projWS holds the scratch vectors of the group-ball projection so the FISTA
// loop can project every iterate without allocating.
type projWS struct {
	norms, proj, scratch []float64
}

func newProjWS(m int) *projWS {
	return &projWS{
		norms:   make([]float64, m),
		proj:    make([]float64, m),
		scratch: make([]float64, m),
	}
}

// projectGroupBall projects beta in place onto {β : Σ_m ‖β_m‖₂ ≤ radius}
// using the workspace buffers.
func (w *projWS) projectGroupBall(beta *mat.Matrix, radius float64) {
	groupNormsInto(w.norms, beta)
	sum := 0.0
	for _, n := range w.norms {
		sum += n
	}
	if sum <= radius {
		return // already inside the ball: projection is the identity
	}
	projectL1Into(w.proj, w.scratch, w.norms, radius)
	k, m := beta.Rows(), beta.Cols()
	scale := w.proj
	for j := range scale {
		if w.norms[j] == 0 {
			scale[j] = 0
		} else {
			scale[j] /= w.norms[j]
		}
	}
	for i := 0; i < k; i++ {
		row := beta.Row(i)
		for j := 0; j < m; j++ {
			row[j] *= scale[j]
		}
	}
}

// ProjectGroupBall projects beta in place onto {β : Σ_m ‖β_m‖₂ ≤ radius}:
// each column is rescaled to the ℓ₁-projected value of its norm.
func ProjectGroupBall(beta *mat.Matrix, radius float64) {
	if radius < 0 {
		panic(fmt.Sprintf("lasso: negative radius %v", radius))
	}
	newProjWS(beta.Cols()).projectGroupBall(beta, radius)
}

// gram holds the sufficient statistics of a group-lasso instance: both
// solvers work entirely from ZZᵀ (M-by-M) and GZᵀ (K-by-M) — the
// "covariance trick" — so per-iteration cost is independent of the sample
// count N.
type gram struct {
	zzt  *mat.Matrix // Z Zᵀ
	gzt  *mat.Matrix // G Zᵀ
	trGG float64     // ‖G‖_F²
}

func newGram(z, g *mat.Matrix) *gram {
	f := g.FrobeniusNorm()
	// MulT walks both operands along contiguous rows — no transpose is ever
	// materialized, and the products parallelize across the mat worker pool.
	return &gram{zzt: mat.MulT(z, z), gzt: mat.MulT(g, z), trGG: f * f}
}

// objective returns ½‖G − βZ‖_F² from the Gram statistics:
// ½(trGG − 2·⟨β, GZᵀ⟩ + ⟨β, β·ZZᵀ⟩).
func (gr *gram) objective(beta *mat.Matrix) float64 {
	bz := mat.Mul(beta, gr.zzt)
	cross, quad := 0.0, 0.0
	bd, gd, qd := beta.Data(), gr.gzt.Data(), bz.Data()
	for i, v := range bd {
		cross += v * gd[i]
		quad += v * qd[i]
	}
	obj := 0.5 * (gr.trGG - 2*cross + quad)
	if obj < 0 {
		obj = 0 // guard against roundoff on near-exact fits
	}
	return obj
}

// lipschitz estimates σ_max(ZZᵀ) by power iteration on the Gram matrix.
func (gr *gram) lipschitz() float64 {
	m := gr.zzt.Rows()
	v := make([]float64, m)
	u := make([]float64, m)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(m))
	}
	est := 0.0
	for it := 0; it < 60; it++ {
		mat.MulVecInto(u, gr.zzt, v)
		nrm := mat.Norm2(u)
		if nrm == 0 {
			return 1 // Z is all zeros; any positive constant works
		}
		prev := est
		est = nrm
		for i := range v {
			v[i] = u[i] / nrm
		}
		if it > 4 && math.Abs(est-prev) < 1e-9*est {
			break
		}
	}
	return est
}

// fistaState is the preallocated workspace of one constrained solve: the
// iterate, momentum and gradient buffers are created once and reused every
// iteration, so the steady-state loop performs zero heap allocations.
type fistaState struct {
	gr     *gram
	lambda float64
	step   float64
	tk     float64

	beta *mat.Matrix // current iterate β_k
	next *mat.Matrix // scratch for β_{k+1}; swapped with beta each step
	y    *mat.Matrix // momentum point
	grad *mat.Matrix // y·ZZᵀ scratch
	proj *projWS
}

func newFistaState(gr *gram, k, m int, lambda float64) *fistaState {
	return &fistaState{
		gr:     gr,
		lambda: lambda,
		step:   1 / gr.lipschitz(),
		tk:     1,
		beta:   mat.Zeros(k, m),
		next:   mat.Zeros(k, m),
		y:      mat.Zeros(k, m),
		grad:   mat.Zeros(k, m),
		proj:   newProjWS(m),
	}
}

// iterate performs one accelerated projected-gradient step and returns the
// relative change ‖β_{k+1} − β_k‖_F / ‖β_{k+1}‖_F of the iterate. It does
// not allocate: every buffer lives in the workspace.
func (f *fistaState) iterate() float64 {
	// Gradient step at y: next = y − step·(y·ZZᵀ − GZᵀ), fused elementwise.
	mat.MulInto(f.grad, f.y, f.gr.zzt)
	gd, gzd := f.grad.Data(), f.gr.gzt.Data()
	yd, nd, bd := f.y.Data(), f.next.Data(), f.beta.Data()
	for i, gv := range gd {
		nd[i] = yd[i] - f.step*(gv-gzd[i])
	}
	f.proj.projectGroupBall(f.next, f.lambda)

	tNext := (1 + math.Sqrt(1+4*f.tk*f.tk)) / 2
	mom := (f.tk - 1) / tNext
	// y = next + mom*(next − beta), fused with the convergence statistics
	// ‖next − beta‖_F and ‖next‖_F.
	var diffSq, baseSq float64
	for i, nv := range nd {
		d := nv - bd[i]
		yd[i] = nv + mom*d
		diffSq += d * d
		baseSq += nv * nv
	}
	f.beta, f.next = f.next, f.beta
	f.tk = tNext

	base := math.Sqrt(baseSq)
	if base == 0 {
		base = 1
	}
	return math.Sqrt(diffSq) / base
}

// SolveConstrained solves the paper's Eq. 12 with accelerated projected
// gradient. Z is M-by-N (normalized candidates), G is K-by-N (normalized
// outputs), lambda is the group-norm budget. All per-iteration buffers are
// preallocated in a workspace, so the iteration loop itself does not touch
// the heap; the Gram products and the gradient multiply run on the parallel
// blocked kernels of package mat.
func SolveConstrained(z, g *mat.Matrix, lambda float64, opt Options) (*Result, error) {
	checkShapes(z, g)
	if lambda < 0 {
		panic(fmt.Sprintf("lasso: negative lambda %v", lambda))
	}
	opt = opt.withDefaults()
	k, m := g.Rows(), z.Rows()

	gr := newGram(z, g)
	st := newFistaState(gr, k, m, lambda)

	var iters int
	for iters = 1; iters <= opt.MaxIter; iters++ {
		if st.iterate() < opt.Tol {
			break
		}
	}
	beta := st.beta
	res := &Result{Beta: beta, GroupNorms: groupNorms(beta), Iters: iters,
		Objective: gr.objective(beta)}
	if iters > opt.MaxIter {
		res.Iters = opt.MaxIter
		// Fall through with the best iterate; callers treat the tolerance
		// as advisory for the selection use-case, but we still signal it.
		return res, ErrDidNotConverge
	}
	return res, nil
}

// SolvePenalized solves the Lagrangian form
//
//	min_β ½‖G − βZ‖_F² + μ Σ_m ‖β_m‖₂
//
// by block coordinate descent with exact per-group updates. With K = 1 this
// is the classic lasso via coordinate descent.
func SolvePenalized(z, g *mat.Matrix, mu float64, opt Options) (*Result, error) {
	checkShapes(z, g)
	if mu < 0 {
		panic(fmt.Sprintf("lasso: negative mu %v", mu))
	}
	return solvePenalizedGram(newGram(z, g), mu, opt, mat.Zeros(g.Rows(), z.Rows()))
}

// solvePenalizedGram is the Gram-space core of SolvePenalized: it starts the
// block coordinate descent from beta (the warm start, taken over and returned
// inside the Result) and works entirely from the sufficient statistics, so a
// regularization path can reuse one Gram across every μ.
func solvePenalizedGram(gr *gram, mu float64, opt Options, beta *mat.Matrix) (*Result, error) {
	opt = opt.withDefaults()
	k, m := beta.Rows(), beta.Cols()

	// s = β·ZZᵀ, maintained incrementally as groups change; the group-j
	// statistic is then u_i = (GZᵀ)[i][j] − s[i][j] + β[i][j]·(ZZᵀ)[j][j].
	s := mat.Zeros(k, m)
	if !betaIsZero(beta) {
		mat.MulInto(s, beta, gr.zzt)
	}

	zsq := make([]float64, m)
	for j := 0; j < m; j++ {
		zsq[j] = gr.zzt.At(j, j)
	}

	u := make([]float64, k)
	var iters int
	for iters = 1; iters <= opt.MaxIter; iters++ {
		maxChange, maxCoef := 0.0, 0.0
		for j := 0; j < m; j++ {
			if zsq[j] == 0 {
				continue // constant-zero feature can never be active
			}
			for i := 0; i < k; i++ {
				u[i] = gr.gzt.At(i, j) - s.At(i, j) + beta.At(i, j)*zsq[j]
			}
			un := mat.Norm2(u)
			var scale float64
			if un > mu {
				scale = (1 - mu/un) / zsq[j]
			}
			zztRow := gr.zzt.Row(j)
			for i := 0; i < k; i++ {
				old := beta.At(i, j)
				nv := scale * u[i]
				if nv != old {
					d := nv - old
					// s[i][:] += d * (ZZᵀ)[j][:]
					si := s.Row(i)
					for c, zc := range zztRow {
						si[c] += d * zc
					}
					beta.Set(i, j, nv)
					if ad := math.Abs(d); ad > maxChange {
						maxChange = ad
					}
				}
				if av := math.Abs(nv); av > maxCoef {
					maxCoef = av
				}
			}
		}
		if maxCoef == 0 {
			maxCoef = 1
		}
		if maxChange/maxCoef < opt.Tol {
			break
		}
	}
	r := &Result{Beta: beta, GroupNorms: groupNorms(beta), Iters: iters,
		Objective: gr.objective(beta)}
	if iters > opt.MaxIter {
		r.Iters = opt.MaxIter
		return r, ErrDidNotConverge
	}
	return r, nil
}

// betaIsZero reports whether every coefficient is exactly zero (the cold
// start), letting warm-started solves skip the initial β·ZZᵀ product.
func betaIsZero(beta *mat.Matrix) bool {
	for _, v := range beta.Data() {
		if v != 0 {
			return false
		}
	}
	return true
}

// BudgetOf returns Σ_m ‖β_m‖₂ of a solution — the quantity the paper's λ
// constrains.
func BudgetOf(r *Result) float64 {
	s := 0.0
	for _, n := range r.GroupNorms {
		s += n
	}
	return s
}

// SolvePenalizedForBudget finds, by bisection on μ, a penalized solution
// whose group-norm budget Σ‖β_m‖₂ matches the constrained radius lambda to
// within rel tolerance. It is the duality bridge used to cross-check the two
// solvers and to warm-start regularization paths.
func SolvePenalizedForBudget(z, g *mat.Matrix, lambda, rel float64, opt Options) (*Result, float64, error) {
	if rel <= 0 {
		rel = 1e-3
	}
	// μ = 0 gives the (unpenalized) maximal budget; μ ≥ μ_max gives zero.
	// μ_max = max_m ‖G z_mᵀ‖₂.
	k := g.Rows()
	muMax := 0.0
	u := make([]float64, k)
	for j := 0; j < z.Rows(); j++ {
		zj := z.Row(j)
		for i := 0; i < k; i++ {
			u[i] = mat.Dot(g.Row(i), zj)
		}
		if n := mat.Norm2(u); n > muMax {
			muMax = n
		}
	}
	if muMax == 0 {
		r, err := SolvePenalized(z, g, 0, opt)
		return r, 0, err
	}
	lo, hi := 0.0, muMax // budget(lo) max, budget(hi) = 0
	var best *Result
	var bestMu float64
	for it := 0; it < 60; it++ {
		mu := (lo + hi) / 2
		r, err := SolvePenalized(z, g, mu, opt)
		if err != nil && !errors.Is(err, ErrDidNotConverge) {
			return nil, mu, err
		}
		b := BudgetOf(r)
		best, bestMu = r, mu
		if math.Abs(b-lambda) <= rel*lambda {
			return r, mu, nil
		}
		if b > lambda {
			lo = mu // too much budget → penalize harder
		} else {
			hi = mu
		}
	}
	return best, bestMu, nil
}
