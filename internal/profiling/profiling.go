// Package profiling wires the standard runtime/pprof file profiles into the
// CLI tools: a CPU profile covering the whole run and a heap profile
// captured at exit. It exists so voltmap and sensorplace share one tested
// implementation instead of duplicating the start/stop choreography.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile at cpuPath and schedules a heap profile at
// memPath; either may be empty to skip that profile. The returned stop
// function ends the CPU profile and writes the heap profile (after a GC, so
// the numbers reflect live objects); call it exactly once, typically via
// defer. Start never returns a nil stop.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return func() error { return nil }, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return func() error { return nil }, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			memFile, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer memFile.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(memFile); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
