// Package online implements streaming recalibration of the paper's Eq. 17
// prediction model from runtime labeled samples: a recursive least-squares
// refit with exponential forgetting (rank-1 Sherman–Morrison updates on the
// inverse normal equations, zero steady-state allocations), rolling residual
// drift detection, shadow-vs-live scoring with the paper's ME/WAE/TE rates,
// and guarded promotion of the shadow model into the serving path.
//
// The deployed model is fit once from training simulation, but silicon
// drifts away from its training distribution — aging, temperature and
// process variation shift the sensor→critical-node mapping. This package is
// the continuous-calibration tier that closes the loop: occasionally
// available ground-truth critical-node voltages (periodic on-die scan, or
// offline replay through internal/traceio) stream in as (x, f) pairs and
// keep a shadow refit converging toward the current silicon.
package online

import (
	"fmt"
	"math"

	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// RecursiveOLS maintains the multi-output least-squares fit
//
//	min_{θ} Σ_i λ^{n-1-i} ‖f_i − θᵀ z_i‖²,  z_i = [x_i − x₀; 1]
//
// incrementally. The intercept is folded into an augmented regressor; the
// fixed shift x₀/f₀ (the first ingested sample) only improves conditioning —
// the recovered Model is identical to fitting the raw data.
//
// Warmup buffers samples until the weighted Gram matrix A = Σ w_i z_i z_iᵀ is
// invertible (earliest at n = q+2), then initializes P = A⁻¹ and B = Σ w_i
// z_i f_iᵀ directly from the buffer — so with forgetting 1 the recursion is
// algebraically exact against a from-scratch batch solve, not an approximation
// seeded from δ·I. After warmup each sample costs one rank-1 Sherman–Morrison
// update
//
//	P ← (P − P z zᵀ P / (λ + zᵀ P z)) / λ,   B ← λ B + z f̃ᵀ
//
// which is O((q+1)² + (q+1)K) with zero allocations; the coefficient matrix
// θ = P·B is refreshed lazily on first use after an update.
//
// RecursiveOLS is not safe for concurrent use; Adapter serializes access.
type RecursiveOLS struct {
	q, k       int
	forgetting float64

	// Shift of the regression variables: x0 (len q) and f0 (len k) are the
	// first ingested sample. Fixed for the lifetime of the estimator.
	x0, f0 []float64

	// Warmup buffers (row per sample), released once ready.
	bufX, bufF [][]float64

	ready bool
	n     int // total samples ingested

	p     *mat.Matrix // (q+1)×(q+1) inverse weighted Gram
	b     *mat.Matrix // (q+1)×k weighted cross-moments
	theta *mat.Matrix // (q+1)×k coefficients P·B, valid when !dirty
	dirty bool

	z, pz, fd []float64 // steady-state scratch: augmented regressor, P·z, shifted target
}

// NewRecursiveOLS returns an estimator for q sensor inputs and k outputs with
// the given forgetting factor λ ∈ (0, 1]; λ = 1 is ordinary least squares,
// smaller values discount old samples with half-life ln 2 / (1 − λ) samples.
func NewRecursiveOLS(q, k int, forgetting float64) *RecursiveOLS {
	if q <= 0 || k <= 0 {
		panic(fmt.Sprintf("online: invalid shape q=%d k=%d", q, k))
	}
	if !(forgetting > 0 && forgetting <= 1) {
		panic(fmt.Sprintf("online: forgetting factor %v outside (0, 1]", forgetting))
	}
	d := q + 1
	return &RecursiveOLS{
		q: q, k: k, forgetting: forgetting,
		p:     mat.Zeros(d, d),
		b:     mat.Zeros(d, k),
		theta: mat.Zeros(d, k),
		z:     make([]float64, d),
		pz:    make([]float64, d),
		fd:    make([]float64, k),
	}
}

// NewRecursiveOLSFromNormal returns a warm-started estimator seeded from
// externally assembled normal equations over the unshifted augmented
// regressor z = [x; 1]: a = Σ w_i z_i z_iᵀ (plus any prior pseudo-observation
// terms, e.g. the MAP regularizer of internal/transfer) and b = Σ w_i z_i f_iᵀ.
// a must be (q+1)×(q+1) and invertible, b (q+1)×k. The estimator starts Ready
// — no warmup buffering — with samples recorded as the ingested count, and
// keeps folding new labeled samples into the seeded equations, so a few-shot
// aligned fit continues adapting online with its prior still in effect.
func NewRecursiveOLSFromNormal(q, k int, forgetting float64, a, b *mat.Matrix, samples int) (*RecursiveOLS, error) {
	r := NewRecursiveOLS(q, k, forgetting)
	d := q + 1
	if a.Rows() != d || a.Cols() != d {
		return nil, fmt.Errorf("online: normal matrix is %dx%d, want %dx%d", a.Rows(), a.Cols(), d, d)
	}
	if b.Rows() != d || b.Cols() != k {
		return nil, fmt.Errorf("online: cross-moment matrix is %dx%d, want %dx%d", b.Rows(), b.Cols(), d, k)
	}
	if samples < 0 {
		return nil, fmt.Errorf("online: negative warm-start sample count %d", samples)
	}
	lu, err := mat.FactorLU(a)
	if err != nil {
		return nil, fmt.Errorf("online: warm-start normal matrix not invertible: %w", err)
	}
	r.x0 = make([]float64, q)
	r.f0 = make([]float64, k)
	r.p = lu.Inverse()
	r.b = b.Clone()
	r.n = samples
	r.ready = true
	r.dirty = true
	return r, nil
}

// NumInputs returns q.
func (r *RecursiveOLS) NumInputs() int { return r.q }

// NumOutputs returns k.
func (r *RecursiveOLS) NumOutputs() int { return r.k }

// Samples returns the number of samples ingested so far.
func (r *RecursiveOLS) Samples() int { return r.n }

// Ready reports whether enough samples have arrived to determine the
// coefficients (the warmup Gram matrix has become invertible).
func (r *RecursiveOLS) Ready() bool { return r.ready }

// Forgetting returns the configured forgetting factor.
func (r *RecursiveOLS) Forgetting() float64 { return r.forgetting }

// Ingest folds one labeled sample (sensor readings x, ground-truth voltages
// f) into the fit. It panics on a length mismatch and returns an error on
// non-finite values, leaving the estimator untouched. After warmup the call
// performs no heap allocations.
func (r *RecursiveOLS) Ingest(x, f []float64) error {
	if len(x) != r.q || len(f) != r.k {
		panic(fmt.Sprintf("online: Ingest got len(x)=%d len(f)=%d, want %d and %d",
			len(x), len(f), r.q, r.k))
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("online: sensor reading %d is non-finite (%v)", i, v)
		}
	}
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("online: ground-truth voltage %d is non-finite (%v)", i, v)
		}
	}
	if !r.ready {
		r.warmup(x, f)
		return nil
	}
	r.update(x, f)
	return nil
}

// warmup buffers the sample and attempts the direct batch initialization
// once enough rows are present.
func (r *RecursiveOLS) warmup(x, f []float64) {
	if r.n == 0 {
		r.x0 = append([]float64(nil), x...)
		r.f0 = append([]float64(nil), f...)
	}
	r.bufX = append(r.bufX, append([]float64(nil), x...))
	r.bufF = append(r.bufF, append([]float64(nil), f...))
	r.n++
	if r.n < r.q+2 {
		return
	}
	d := r.q + 1
	a := mat.Zeros(d, d)
	b := mat.Zeros(d, r.k)
	w := 1.0 // weight of the newest sample; older rows get λ^(age)
	for s := len(r.bufX) - 1; s >= 0; s-- {
		for i := 0; i < r.q; i++ {
			r.z[i] = r.bufX[s][i] - r.x0[i]
		}
		r.z[r.q] = 1
		for i := 0; i < d; i++ {
			wz := w * r.z[i]
			arow := a.Row(i)
			for j := 0; j < d; j++ {
				arow[j] += wz * r.z[j]
			}
			brow := b.Row(i)
			for j := 0; j < r.k; j++ {
				brow[j] += wz * (r.bufF[s][j] - r.f0[j])
			}
		}
		w *= r.forgetting
	}
	lu, err := mat.FactorLU(a)
	if err != nil {
		return // still rank-deficient; keep buffering
	}
	r.p = lu.Inverse()
	r.b = b
	r.bufX, r.bufF = nil, nil
	r.ready = true
	r.dirty = true
}

// update applies the Sherman–Morrison rank-1 recursion in place.
func (r *RecursiveOLS) update(x, f []float64) {
	d := r.q + 1
	for i := 0; i < r.q; i++ {
		r.z[i] = x[i] - r.x0[i]
	}
	r.z[r.q] = 1
	for i := 0; i < r.k; i++ {
		r.fd[i] = f[i] - r.f0[i]
	}
	// pz = P z (P is symmetric, so row-major rows are the needed columns).
	for i := 0; i < d; i++ {
		r.pz[i] = mat.Dot(r.p.Row(i), r.z)
	}
	denom := r.forgetting + mat.Dot(r.z, r.pz)
	invL := 1 / r.forgetting
	for i := 0; i < d; i++ {
		prow := r.p.Row(i)
		s := r.pz[i] / denom
		for j := 0; j < d; j++ {
			prow[j] = (prow[j] - s*r.pz[j]) * invL
		}
	}
	for i := 0; i < d; i++ {
		brow := r.b.Row(i)
		zi := r.z[i]
		for j := 0; j < r.k; j++ {
			brow[j] = r.forgetting*brow[j] + zi*r.fd[j]
		}
	}
	r.n++
	r.dirty = true
}

// refresh recomputes θ = P·B into the preallocated buffer.
func (r *RecursiveOLS) refresh() {
	if !r.dirty {
		return
	}
	mat.MulInto(r.theta, r.p, r.b)
	r.dirty = false
}

// PredictInto evaluates the current fit on one sensor reading vector into
// dst (length k) without allocating, and returns dst. It panics when called
// before Ready or on a length mismatch.
func (r *RecursiveOLS) PredictInto(dst, x []float64) []float64 {
	if !r.ready {
		panic("online: PredictInto before warmup completed")
	}
	if len(dst) != r.k || len(x) != r.q {
		panic(fmt.Sprintf("online: PredictInto got len(dst)=%d len(x)=%d, want %d and %d",
			len(dst), len(x), r.k, r.q))
	}
	r.refresh()
	for j := 0; j < r.k; j++ {
		dst[j] = r.f0[j] + r.theta.At(r.q, j)
	}
	for i := 0; i < r.q; i++ {
		xi := x[i] - r.x0[i]
		if xi == 0 {
			continue
		}
		trow := r.theta.Row(i)
		for j := 0; j < r.k; j++ {
			dst[j] += trow[j] * xi
		}
	}
	return dst
}

// Finite reports whether every current coefficient is finite — a promotion
// guard against a fit blown up by near-singular windows.
func (r *RecursiveOLS) Finite() bool {
	if !r.ready {
		return false
	}
	r.refresh()
	for _, v := range r.theta.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Model materializes the current fit as an ols.Model (undoing the internal
// shift), suitable for core.Predictor promotion. It allocates; call it at
// promotion time, not per sample. Model panics when called before Ready.
func (r *RecursiveOLS) Model() *ols.Model {
	if !r.ready {
		panic("online: Model before warmup completed")
	}
	r.refresh()
	alpha := mat.Zeros(r.k, r.q)
	c := make([]float64, r.k)
	for kk := 0; kk < r.k; kk++ {
		arow := alpha.Row(kk)
		dot := 0.0
		for i := 0; i < r.q; i++ {
			arow[i] = r.theta.At(i, kk)
			dot += arow[i] * r.x0[i]
		}
		c[kk] = r.f0[kk] + r.theta.At(r.q, kk) - dot
	}
	return &ols.Model{Alpha: alpha, C: c}
}
