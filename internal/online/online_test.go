package online

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"voltsense/internal/core"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// synthModel plants a voltage-like linear model: coefficient rows summing to
// ~0.6 and intercepts near 0.35, so outputs on x ≈ 0.9 sit near 0.89 V —
// comfortably above the 0.85 V emergency threshold.
func synthModel(rng *rand.Rand, q, k int) (alpha *mat.Matrix, c []float64) {
	alpha = mat.Zeros(k, q)
	for i := 0; i < k; i++ {
		row := alpha.Row(i)
		for j := range row {
			row[j] = (0.6 + 0.2*rng.NormFloat64()) / float64(q)
		}
	}
	c = make([]float64, k)
	for i := range c {
		c[i] = 0.35 + 0.005*rng.NormFloat64()
	}
	return alpha, c
}

// synthSamples draws n samples x ~ 0.9 ± 0.03 from the planted model with an
// optional uniform output shift (drift) and observation noise.
func synthSamples(rng *rand.Rand, alpha *mat.Matrix, c []float64, n int, shift, noise float64) (xs, fs [][]float64) {
	q, k := alpha.Cols(), alpha.Rows()
	xs = make([][]float64, n)
	fs = make([][]float64, n)
	for s := 0; s < n; s++ {
		x := make([]float64, q)
		for i := range x {
			x[i] = 0.9 + 0.03*rng.NormFloat64()
		}
		f := make([]float64, k)
		for i := 0; i < k; i++ {
			f[i] = c[i] + mat.Dot(alpha.Row(i), x) + shift + noise*rng.NormFloat64()
		}
		xs[s] = x
		fs[s] = f
	}
	return xs, fs
}

// toMatrices lays samples out as the Q-by-N / K-by-N matrices ols.Fit wants.
func toMatrices(xs, fs [][]float64) (x, f *mat.Matrix) {
	n := len(xs)
	q, k := len(xs[0]), len(fs[0])
	x = mat.Zeros(q, n)
	f = mat.Zeros(k, n)
	for s := 0; s < n; s++ {
		for i := 0; i < q; i++ {
			x.Set(i, s, xs[s][i])
		}
		for i := 0; i < k; i++ {
			f.Set(i, s, fs[s][i])
		}
	}
	return x, f
}

// TestRecursiveMatchesBatch is the tentpole equivalence criterion: with
// forgetting 1, the incremental fit over a window must match a from-scratch
// internal/ols batch refit on the same window to ≤ 1e-9 — coefficients,
// intercepts, and predictions.
func TestRecursiveMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const q, k, n = 8, 16, 300
	alpha, c := synthModel(rng, q, k)
	xs, fs := synthSamples(rng, alpha, c, n, 0, 0.005)

	r := NewRecursiveOLS(q, k, 1)
	for s := range xs {
		if err := r.Ingest(xs[s], fs[s]); err != nil {
			t.Fatalf("ingest %d: %v", s, err)
		}
	}
	if !r.Ready() {
		t.Fatal("estimator not ready after full window")
	}
	got := r.Model()

	x, f := toMatrices(xs, fs)
	want, err := ols.Fit(x, f)
	if err != nil {
		t.Fatalf("batch fit: %v", err)
	}
	if d := mat.MaxAbsDiff(got.Alpha, want.Alpha); d > 1e-9 {
		t.Errorf("alpha differs from batch fit by %g > 1e-9", d)
	}
	for i := range got.C {
		if d := math.Abs(got.C[i] - want.C[i]); d > 1e-9 {
			t.Errorf("intercept %d differs by %g > 1e-9", i, d)
		}
	}
	// Predictions must agree too, both through Model and PredictInto.
	dst := make([]float64, k)
	for s := 0; s < n; s += 37 {
		pr := want.Predict(xs[s])
		r.PredictInto(dst, xs[s])
		for i := range pr {
			if d := math.Abs(pr[i] - dst[i]); d > 1e-9 {
				t.Fatalf("sample %d output %d: recursive %v vs batch %v", s, i, dst[i], pr[i])
			}
		}
	}
}

// TestRecursiveForgettingMatchesWeightedBatch checks the λ < 1 recursion
// against a direct weighted normal-equations solve with weights λ^(age).
func TestRecursiveForgettingMatchesWeightedBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const q, k, n = 5, 3, 120
	const lambda = 0.97
	pa, pc := synthModel(rng, q, k)
	xs, fs := synthSamples(rng, pa, pc, n, 0, 0.01)

	r := NewRecursiveOLS(q, k, lambda)
	for s := range xs {
		if err := r.Ingest(xs[s], fs[s]); err != nil {
			t.Fatalf("ingest %d: %v", s, err)
		}
	}
	got := r.Model()

	// Weighted batch solve on augmented regressors [x; 1].
	d := q + 1
	a := mat.Zeros(d, d)
	b := mat.Zeros(d, k)
	for s := 0; s < n; s++ {
		w := math.Pow(lambda, float64(n-1-s))
		z := append(append([]float64(nil), xs[s]...), 1)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a.Set(i, j, a.At(i, j)+w*z[i]*z[j])
			}
			for j := 0; j < k; j++ {
				b.Set(i, j, b.At(i, j)+w*z[i]*fs[s][j])
			}
		}
	}
	lu, err := mat.FactorLU(a)
	if err != nil {
		t.Fatalf("weighted gram singular: %v", err)
	}
	theta := mat.Mul(lu.Inverse(), b)
	for kk := 0; kk < k; kk++ {
		for i := 0; i < q; i++ {
			if diff := math.Abs(got.Alpha.At(kk, i) - theta.At(i, kk)); diff > 1e-8 {
				t.Errorf("alpha[%d][%d] differs from weighted batch by %g", kk, i, diff)
			}
		}
		if diff := math.Abs(got.C[kk] - theta.At(q, kk)); diff > 1e-8 {
			t.Errorf("c[%d] differs from weighted batch by %g", kk, diff)
		}
	}
}

// TestRecursiveTracksDrift verifies that with forgetting < 1 the fit
// converges to a changed ground-truth model after a drift event, while a
// frozen batch fit of the pre-drift window stays wrong.
func TestRecursiveTracksDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const q, k = 4, 6
	alpha1, c1 := synthModel(rng, q, k)
	alpha2, c2 := synthModel(rng, q, k)
	xs1, fs1 := synthSamples(rng, alpha1, c1, 400, 0, 0.002)
	xs2, fs2 := synthSamples(rng, alpha2, c2, 1200, 0, 0.002)

	r := NewRecursiveOLS(q, k, 0.99)
	for s := range xs1 {
		if err := r.Ingest(xs1[s], fs1[s]); err != nil {
			t.Fatal(err)
		}
	}
	for s := range xs2 {
		if err := r.Ingest(xs2[s], fs2[s]); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Model()
	if d := mat.MaxAbsDiff(got.Alpha, alpha2); d > 0.05 {
		t.Errorf("post-drift alpha off by %g; forgetting did not track the new regime", d)
	}
	for i := range c2 {
		if d := math.Abs(got.C[i] - c2[i]); d > 0.05 {
			t.Errorf("post-drift intercept %d off by %g", i, d)
		}
	}
}

func TestIngestRejectsNonFinite(t *testing.T) {
	r := NewRecursiveOLS(2, 2, 1)
	if err := r.Ingest([]float64{math.NaN(), 1}, []float64{1, 1}); err == nil {
		t.Error("NaN sensor reading accepted")
	}
	if err := r.Ingest([]float64{1, 1}, []float64{math.Inf(1), 1}); err == nil {
		t.Error("Inf ground truth accepted")
	}
	if r.Samples() != 0 {
		t.Errorf("rejected samples counted: n=%d", r.Samples())
	}
}

func TestRecursiveZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const q, k = 8, 16
	alpha, c := synthModel(rng, q, k)
	xs, fs := synthSamples(rng, alpha, c, 64, 0, 0.005)
	r := NewRecursiveOLS(q, k, 0.995)
	for s := 0; s < 32; s++ {
		if err := r.Ingest(xs[s], fs[s]); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Ready() {
		t.Fatal("not ready after 32 samples")
	}
	dst := make([]float64, k)
	i := 32
	allocs := testing.AllocsPerRun(200, func() {
		s := i % len(xs)
		if err := r.Ingest(xs[s], fs[s]); err != nil {
			t.Fatal(err)
		}
		r.PredictInto(dst, xs[s])
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state Ingest+PredictInto allocates %v objects/op, want 0", allocs)
	}
}

// adapterFixture fits a live predictor on undrifted planted-model data and
// wraps an adapter around it. The planted model is returned so feeds can
// generate drifted regimes of the same chip.
func adapterFixture(t *testing.T, cfg Config, apply ApplyFunc) (*Adapter, *mat.Matrix, []float64, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	alpha, c := synthModel(rng, 4, 6)
	xs, fs := synthSamples(rng, alpha, c, 400, 0, 0.002)
	x, f := toMatrices(xs, fs)
	m, err := ols.Fit(x, f)
	if err != nil {
		t.Fatal(err)
	}
	live := &core.Predictor{Selected: []int{0, 1, 2, 3}, Model: m}
	a, err := NewAdapter(live, cfg, apply)
	if err != nil {
		t.Fatal(err)
	}
	return a, alpha, c, rng
}

// driftedFeed streams n labeled samples from the planted model shifted down
// by drop: ground truth dips into emergency territory (~0.81 V against a
// 0.85 V threshold) while the live model, fit pre-drift, keeps predicting
// ~0.89 V and misses every emergency.
func driftedFeed(rng *rand.Rand, a *Adapter, alpha *mat.Matrix, c []float64, drop float64, n int) (promoted *core.Predictor, blocked int, err error) {
	xs, fs := synthSamples(rng, alpha, c, n, -drop, 0.002)
	for s := range xs {
		res, e := a.Ingest(xs[s], fs[s])
		if e != nil {
			return promoted, blocked, e
		}
		if res.Promoted != nil {
			promoted = res.Promoted
		}
		if res.Blocked != nil {
			blocked++
		}
	}
	return promoted, blocked, nil
}

func TestAdapterPromotesUnderDrift(t *testing.T) {
	cfg := Config{EvalWindow: 64, MinSamples: 64, Margin: 0.01, Vth: 0.85, DriftWindow: 16, Forgetting: 0.999}
	var applied []*core.Predictor
	a, alpha, c, rng := adapterFixture(t, cfg, func(p *core.Predictor, rollback bool) error {
		applied = append(applied, p)
		return nil
	})
	promoted, _, err := driftedFeed(rng, a, alpha, c, 0.08, 600)
	if err != nil {
		t.Fatal(err)
	}
	if promoted == nil {
		t.Fatal("no promotion under sustained drift")
	}
	if len(applied) == 0 || applied[len(applied)-1] != a.Live() {
		t.Error("apply callback not consistent with Live()")
	}
	lin := promoted.Lineage
	if lin == nil {
		t.Fatal("promoted predictor has no lineage")
	}
	if lin.Source != core.LineageSourceOnline || lin.Version < 2 || lin.Parent != lin.Version-1 {
		t.Errorf("lineage = %+v, want online v≥2 derived from its predecessor", lin)
	}
	if !(lin.ShadowTE < lin.LiveTE) {
		t.Errorf("promotion without TE improvement: shadow %v vs live %v", lin.ShadowTE, lin.LiveTE)
	}
	st := a.Status()
	if st.Promotions < 1 || st.Version != a.Live().Lineage.Version {
		t.Errorf("status %+v inconsistent after promotion", st)
	}
	if st.DriftScore != 0 && math.IsNaN(st.DriftScore) {
		t.Errorf("drift score NaN")
	}
}

func TestAdapterBlockedPromotionKeepsLive(t *testing.T) {
	cfg := Config{EvalWindow: 64, MinSamples: 64, Margin: 0.01, Vth: 0.85, DriftWindow: 16}
	refuse := errors.New("degraded")
	a, alpha, c, rng := adapterFixture(t, cfg, func(p *core.Predictor, rollback bool) error {
		return refuse
	})
	orig := a.Live()
	promoted, blocked, err := driftedFeed(rng, a, alpha, c, 0.08, 400)
	if err != nil {
		t.Fatal(err)
	}
	if promoted != nil {
		t.Fatal("promotion installed despite refusing apply callback")
	}
	if blocked == 0 {
		t.Fatal("no blocked attempts recorded")
	}
	if a.Live() != orig {
		t.Error("live model changed after refused promotions")
	}
	if st := a.Status(); st.Blocked != blocked || st.Promotions != 0 {
		t.Errorf("status %+v, want blocked=%d promotions=0", st, blocked)
	}
}

func TestAdapterRollback(t *testing.T) {
	cfg := Config{EvalWindow: 64, MinSamples: 64, Margin: 0.01, Vth: 0.85, DriftWindow: 16}
	a, alpha, c, rng := adapterFixture(t, cfg, nil)
	orig := a.Live()
	if _, err := a.Rollback(); err == nil {
		t.Fatal("rollback with no history succeeded")
	}
	promoted, _, err := driftedFeed(rng, a, alpha, c, 0.08, 600)
	if err != nil {
		t.Fatal(err)
	}
	if promoted == nil {
		t.Fatal("no promotion")
	}
	back, err := a.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if back != orig || a.Live() != orig {
		t.Error("rollback did not restore the original predictor")
	}
	if st := a.Status(); st.Rollbacks != 1 || st.ShadowSamples != 0 {
		t.Errorf("status %+v after rollback, want rollbacks=1 and a fresh shadow", st)
	}
}

func TestAdapterDriftScoreRises(t *testing.T) {
	cfg := Config{EvalWindow: 128, MinSamples: 128, Margin: 0.5, // margin high: never promote
		Vth: 0.85, DriftWindow: 16,
		BaselineResidMean: 0.002, BaselineResidStd: 0.0005}
	a, alpha, c, rng := adapterFixture(t, cfg, nil)
	if _, _, err := driftedFeed(rng, a, alpha, c, 0.08, 64); err != nil {
		t.Fatal(err)
	}
	if st := a.Status(); st.DriftScore < 4 {
		t.Errorf("drift score %v under an 80 mV regime shift, want ≥ 4σ", st.DriftScore)
	}
}

func TestAdapterIngestShapeAndFiniteErrors(t *testing.T) {
	a, _, _, _ := adapterFixture(t, Config{}, nil)
	if _, err := a.Ingest([]float64{1}, make([]float64, 6)); err == nil {
		t.Error("short reading vector accepted")
	}
	bad := []float64{0.9, 0.9, math.NaN(), 0.9}
	if _, err := a.Ingest(bad, make([]float64, 6)); err == nil {
		t.Error("non-finite reading accepted")
	}
	if st := a.Status(); st.Ingested != 0 {
		t.Errorf("rejected samples counted: %+v", st)
	}
}
