package online

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"voltsense/internal/core"
	"voltsense/internal/detect"
	"voltsense/internal/mat"
)

// Config tunes the adaptation loop. The zero value of every field selects a
// sensible default (see the constants below).
type Config struct {
	// Forgetting is the RLS forgetting factor λ ∈ (0, 1]; 1 never forgets.
	Forgetting float64
	// EvalWindow is the sliding window (in labeled samples) over which the
	// shadow and live models are scored against ground truth.
	EvalWindow int
	// MinSamples is the minimum number of scored samples in the window
	// before a promotion may be attempted.
	MinSamples int
	// Margin is the TE improvement the shadow must show over the live
	// model (liveTE − shadowTE ≥ Margin) to be promoted.
	Margin float64
	// Vth is the emergency threshold used for ME/WAE/TE scoring.
	Vth float64
	// DriftWindow is the rolling window (in samples) for live-model
	// residual statistics feeding the drift score.
	DriftWindow int
	// BaselineResidMean/Std anchor the drift score at the live model's
	// training-time residual statistics. When Std is 0 the baseline is
	// frozen from the first full DriftWindow of runtime residuals instead
	// (which assumes feedback starts while the model is still healthy).
	BaselineResidMean float64
	BaselineResidStd  float64
}

// Defaults for Config zero values.
const (
	DefaultForgetting  = 0.995
	DefaultEvalWindow  = 256
	DefaultMinSamples  = 256
	DefaultMargin      = 0.002
	DefaultDriftWindow = 64
)

func (c Config) withDefaults() Config {
	if c.Forgetting == 0 {
		c.Forgetting = DefaultForgetting
	}
	if c.EvalWindow == 0 {
		c.EvalWindow = DefaultEvalWindow
	}
	if c.MinSamples == 0 {
		c.MinSamples = DefaultMinSamples
	}
	if c.Margin == 0 {
		c.Margin = DefaultMargin
	}
	if c.Vth == 0 {
		c.Vth = detect.DefaultVth
	}
	if c.DriftWindow == 0 {
		c.DriftWindow = DefaultDriftWindow
	}
	return c
}

func (c Config) validate() error {
	if !(c.Forgetting > 0 && c.Forgetting <= 1) {
		return fmt.Errorf("online: forgetting factor %v outside (0, 1]", c.Forgetting)
	}
	if c.EvalWindow < 2 {
		return fmt.Errorf("online: eval window %d too small", c.EvalWindow)
	}
	if c.MinSamples > c.EvalWindow {
		return fmt.Errorf("online: min samples %d exceeds eval window %d", c.MinSamples, c.EvalWindow)
	}
	if c.Margin < 0 {
		return fmt.Errorf("online: negative promotion margin %v", c.Margin)
	}
	if c.DriftWindow < 2 {
		return fmt.Errorf("online: drift window %d too small", c.DriftWindow)
	}
	return nil
}

// Result reports what one ingested sample did to the adaptation state.
type Result struct {
	// Promoted is the new live predictor when this sample triggered a
	// successful promotion, nil otherwise.
	Promoted *core.Predictor
	// Blocked is non-nil when a promotion was attempted and refused by the
	// apply callback (e.g. the serving tier is degraded).
	Blocked error
	// Drift is the current drift score (residual sigmas above baseline).
	Drift float64
}

// Status is a point-in-time snapshot of the adaptation loop for metrics and
// operator endpoints.
type Status struct {
	Version       int     // lineage version of the live predictor
	Ingested      int     // labeled samples accepted
	Scored        int     // samples currently in the evaluation window
	ShadowReady   bool    // shadow fit has left warmup
	ShadowSamples int     // samples ingested by the shadow fit
	LiveTE        float64 // live-model total error over the window
	ShadowTE      float64 // shadow-model total error over the window
	DriftScore    float64 // residual sigmas above baseline
	Promotions    int
	Rollbacks     int
	Blocked       int // promotion attempts refused by the apply callback
}

// ApplyFunc installs a candidate predictor into the serving path. rollback
// distinguishes operator-forced rollbacks (which should bypass promotion
// gating such as degraded-mode refusal) from shadow promotions. Returning an
// error refuses the swap and leaves the adapter's live model unchanged.
type ApplyFunc func(p *core.Predictor, rollback bool) error

// Adapter runs the full online-recalibration loop around a live predictor:
// every labeled sample updates the shadow RLS fit, the rolling residual
// statistics of the live model (drift detection), and a sliding
// truth/live-alarm/shadow-alarm scoring window. When the shadow has seen
// enough samples and beats the live model on TE by the configured margin,
// the adapter builds a candidate Predictor (new coefficients, same sensors
// and fallbacks, versioned lineage) and offers it to the apply callback;
// acceptance makes it the new live model. Adapter is safe for concurrent
// use.
type Adapter struct {
	mu   sync.Mutex
	cfg  Config
	q, k int

	live    *core.Predictor
	prev    *core.Predictor // promotion predecessor, for rollback
	version int

	shadow *RecursiveOLS

	// Sliding scoring window (ring buffers, cap EvalWindow).
	truth, liveAlarm, shadowAlarm []bool
	ringN, ringHead               int

	// Rolling residual RMS of the live model (ring with running moments,
	// the internal/faults detector idiom).
	resid               []float64
	residN, residHead   int
	residSum, residSum2 float64
	baseMean, baseStd   float64
	baseSet             bool
	driftScore          float64

	ingested, promotions, rollbacks, blocked int

	apply ApplyFunc

	// Steady-state scratch.
	livePred, shadowPred []float64
}

// NewAdapter builds an adaptation loop around the given live predictor.
// apply may be nil, in which case promotions install unconditionally.
func NewAdapter(live *core.Predictor, cfg Config, apply ApplyFunc) (*Adapter, error) {
	if live == nil || live.Model == nil {
		return nil, errors.New("online: nil live predictor")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	q, k := live.Model.NumInputs(), live.Model.NumOutputs()
	version := 1
	if live.Lineage != nil {
		version = live.Lineage.Version
		if cfg.BaselineResidStd == 0 && live.Lineage.ResidStd > 0 {
			cfg.BaselineResidMean = live.Lineage.ResidMean
			cfg.BaselineResidStd = live.Lineage.ResidStd
		}
	}
	a := &Adapter{
		cfg:         cfg,
		q:           q,
		k:           k,
		live:        live,
		version:     version,
		shadow:      NewRecursiveOLS(q, k, cfg.Forgetting),
		truth:       make([]bool, cfg.EvalWindow),
		liveAlarm:   make([]bool, cfg.EvalWindow),
		shadowAlarm: make([]bool, cfg.EvalWindow),
		resid:       make([]float64, cfg.DriftWindow),
		apply:       apply,
		livePred:    make([]float64, k),
		shadowPred:  make([]float64, k),
	}
	if cfg.BaselineResidStd > 0 {
		a.baseMean, a.baseStd, a.baseSet = cfg.BaselineResidMean, cfg.BaselineResidStd, true
	}
	return a, nil
}

// Live returns the adapter's current live predictor.
func (a *Adapter) Live() *core.Predictor {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.live
}

// Ingest folds one labeled sample into the loop: x is the length-Q vector of
// selected-sensor readings (ordered as the predictor's Selected), f the
// length-K ground-truth critical-node voltages. It returns an error on shape
// or non-finite problems without touching state.
func (a *Adapter) Ingest(x, f []float64) (Result, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(x) != a.q || len(f) != a.k {
		return Result{}, fmt.Errorf("online: sample has %d readings and %d truths, want %d and %d",
			len(x), len(f), a.q, a.k)
	}
	if err := a.shadow.Ingest(x, f); err != nil {
		return Result{}, err
	}
	a.ingested++

	// Live-model residual and alarms; shadow alarms once it is ready.
	livePred := a.livePredict(x)
	truthE := anyBelow(f, a.cfg.Vth)
	liveA := anyBelow(livePred, a.cfg.Vth)
	shadowA := liveA // before warmup the shadow mirrors the live model
	if a.shadow.Ready() {
		a.shadow.PredictInto(a.shadowPred, x)
		shadowA = anyBelow(a.shadowPred, a.cfg.Vth)
	}
	a.pushScore(truthE, liveA, shadowA)
	a.pushResid(residRMS(livePred, f))

	res := Result{Drift: a.driftScore}
	if cand := a.promotionCandidate(); cand != nil {
		if a.apply != nil {
			if err := a.apply(cand, false); err != nil {
				a.blocked++
				res.Blocked = err
				return res, nil
			}
		}
		a.install(cand)
		res.Promoted = cand
	}
	return res, nil
}

// Rollback reverts to the promotion predecessor of the current live model.
// It fails when there is nothing to roll back to or when the apply callback
// refuses the swap.
func (a *Adapter) Rollback() (*core.Predictor, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.prev == nil {
		return nil, errors.New("online: no previous model generation to roll back to")
	}
	target := a.prev
	if a.apply != nil {
		if err := a.apply(target, true); err != nil {
			return nil, err
		}
	}
	a.live, a.prev = target, nil
	if target.Lineage != nil {
		a.version = target.Lineage.Version
	}
	a.rollbacks++
	// The shadow fit that produced the rolled-back model is discarded: it
	// converged to a regime the operator just rejected.
	a.shadow = NewRecursiveOLS(a.q, a.k, a.cfg.Forgetting)
	a.resetWindows()
	return target, nil
}

// Status snapshots the loop.
func (a *Adapter) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	liveTE, shadowTE := a.windowTE()
	return Status{
		Version:       a.version,
		Ingested:      a.ingested,
		Scored:        a.ringN,
		ShadowReady:   a.shadow.Ready(),
		ShadowSamples: a.shadow.Samples(),
		LiveTE:        liveTE,
		ShadowTE:      shadowTE,
		DriftScore:    a.driftScore,
		Promotions:    a.promotions,
		Rollbacks:     a.rollbacks,
		Blocked:       a.blocked,
	}
}

// promotionCandidate decides whether the shadow has earned promotion and, if
// so, materializes the candidate predictor. Caller holds a.mu.
func (a *Adapter) promotionCandidate() *core.Predictor {
	if !a.shadow.Ready() || a.ringN < a.cfg.MinSamples {
		return nil
	}
	liveTE, shadowTE := a.windowTE()
	if !(liveTE-shadowTE >= a.cfg.Margin) {
		return nil
	}
	if !a.shadow.Finite() {
		return nil
	}
	lin := &core.Lineage{
		Version:  a.version + 1,
		Parent:   a.version,
		Source:   core.LineageSourceOnline,
		Samples:  a.shadow.Samples(),
		LiveTE:   liveTE,
		ShadowTE: shadowTE,
	}
	return &core.Predictor{
		Selected:  a.live.Selected,
		Model:     a.shadow.Model(),
		Fallbacks: a.live.Fallbacks,
		Lineage:   lin,
	}
}

// install makes cand the live model after a successful apply. Caller holds
// a.mu.
func (a *Adapter) install(cand *core.Predictor) {
	a.prev = a.live
	a.live = cand
	a.version = cand.Lineage.Version
	a.promotions++
	a.resetWindows()
}

// resetWindows clears the scoring window and the runtime drift baseline so
// the next generation is judged on fresh evidence. A training-time baseline
// from Config survives; a runtime-frozen one refreezes on the next full
// window. Caller holds a.mu.
func (a *Adapter) resetWindows() {
	a.ringN, a.ringHead = 0, 0
	a.residN, a.residHead = 0, 0
	a.residSum, a.residSum2 = 0, 0
	a.driftScore = 0
	if a.cfg.BaselineResidStd == 0 {
		a.baseSet = false
	}
}

// pushScore appends one (truth, live, shadow) triple to the sliding scoring
// window. Caller holds a.mu.
func (a *Adapter) pushScore(t, l, s bool) {
	a.truth[a.ringHead] = t
	a.liveAlarm[a.ringHead] = l
	a.shadowAlarm[a.ringHead] = s
	a.ringHead = (a.ringHead + 1) % len(a.truth)
	if a.ringN < len(a.truth) {
		a.ringN++
	}
}

// windowTE scores live and shadow alarms against truth over the current
// window with the paper's TE rate. detect.Score is order-insensitive, so the
// rings are passed unrotated. Caller holds a.mu.
func (a *Adapter) windowTE() (liveTE, shadowTE float64) {
	if a.ringN == 0 {
		return 0, 0
	}
	t := a.truth[:a.ringN]
	if a.ringN == len(a.truth) {
		t = a.truth
	}
	return detect.Score(t, a.liveAlarm[:len(t)]).TE, detect.Score(t, a.shadowAlarm[:len(t)]).TE
}

// pushResid appends one live-model residual RMS to the drift ring and
// refreshes the drift score. Caller holds a.mu.
func (a *Adapter) pushResid(r float64) {
	w := len(a.resid)
	if a.residN == w {
		old := a.resid[a.residHead]
		a.residSum -= old
		a.residSum2 -= old * old
	} else {
		a.residN++
	}
	a.resid[a.residHead] = r
	a.residSum += r
	a.residSum2 += r * r
	a.residHead = (a.residHead + 1) % w
	if a.residN < w {
		return
	}
	mean := a.residSum / float64(w)
	if !a.baseSet {
		varr := a.residSum2/float64(w) - mean*mean
		if varr < 0 {
			varr = 0
		}
		a.baseMean = mean
		a.baseStd = math.Sqrt(varr)
		a.baseSet = true
		return
	}
	if a.baseStd > 0 {
		a.driftScore = (mean - a.baseMean) / a.baseStd
	}
}

// livePredict evaluates the live model into the preallocated buffer without
// allocating (ols.Model.Predict allocates its result). Caller holds a.mu.
func (a *Adapter) livePredict(x []float64) []float64 {
	m := a.live.Model
	for j := 0; j < a.k; j++ {
		a.livePred[j] = m.C[j] + mat.Dot(m.Alpha.Row(j), x)
	}
	return a.livePred
}

// anyBelow reports whether any element is below vth — the chip-level alarm
// rule.
func anyBelow(v []float64, vth float64) bool {
	for _, x := range v {
		if x < vth {
			return true
		}
	}
	return false
}

// residRMS is the root-mean-square residual of one prediction.
func residRMS(pred, truth []float64) float64 {
	s := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}
