package online

import (
	"math"
	"math/rand"
	"testing"

	"voltsense/internal/mat"
)

// TestWarmStartMatchesColdIngest seeds an estimator from batch normal
// equations and checks it is algebraically identical to a cold estimator
// that ingested the same samples, both immediately and after further
// updates.
func TestWarmStartMatchesColdIngest(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q, k := 3, 2
	d := q + 1
	n := 9
	xs := make([][]float64, n)
	fs := make([][]float64, n)
	for s := range xs {
		x := make([]float64, q)
		f := make([]float64, k)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range f {
			f[i] = rng.NormFloat64()
		}
		xs[s], fs[s] = x, f
	}

	cold := NewRecursiveOLS(q, k, 1.0)
	for s := range xs {
		if err := cold.Ingest(xs[s], fs[s]); err != nil {
			t.Fatal(err)
		}
	}

	// Assemble the unshifted normal equations directly.
	a := mat.Zeros(d, d)
	b := mat.Zeros(d, k)
	z := make([]float64, d)
	for s := range xs {
		copy(z, xs[s])
		z[q] = 1
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a.Set(i, j, a.At(i, j)+z[i]*z[j])
			}
			for j := 0; j < k; j++ {
				b.Set(i, j, b.At(i, j)+z[i]*fs[s][j])
			}
		}
	}
	warm, err := NewRecursiveOLSFromNormal(q, k, 1.0, a, b, n)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Ready() || warm.Samples() != n {
		t.Fatalf("warm: ready=%v samples=%d", warm.Ready(), warm.Samples())
	}

	compare := func(stage string) {
		mw, mc := warm.Model(), cold.Model()
		if diff := mat.MaxAbsDiff(mw.Alpha, mc.Alpha); diff > 1e-8 {
			t.Fatalf("%s: warm alpha diverges from cold by %v", stage, diff)
		}
		for i := range mw.C {
			if diff := math.Abs(mw.C[i] - mc.C[i]); diff > 1e-8 {
				t.Fatalf("%s: warm intercept %d diverges by %v", stage, i, diff)
			}
		}
	}
	compare("after seed")

	for s := 0; s < 20; s++ {
		x := make([]float64, q)
		f := make([]float64, k)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range f {
			f[i] = rng.NormFloat64()
		}
		if err := warm.Ingest(x, f); err != nil {
			t.Fatal(err)
		}
		if err := cold.Ingest(x, f); err != nil {
			t.Fatal(err)
		}
	}
	compare("after further ingest")

	// Shape and rank errors must be rejected.
	if _, err := NewRecursiveOLSFromNormal(q, k, 1.0, mat.Zeros(d, d), b, n); err == nil {
		t.Fatal("singular normal matrix accepted")
	}
	if _, err := NewRecursiveOLSFromNormal(q, k, 1.0, mat.Zeros(d+1, d+1), b, n); err == nil {
		t.Fatal("wrong-shape normal matrix accepted")
	}
}
