package online

import (
	"math/rand"
	"testing"

	"voltsense/internal/core"
	"voltsense/internal/ols"
)

// BenchmarkOnlineUpdate measures the steady-state rank-1 Sherman–Morrison
// update plus lazy prediction refresh at the paper's serving shape (K=16
// critical nodes, Q=8 sensors). The hot loop must allocate nothing.
func BenchmarkOnlineUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const q, k = 8, 16
	alpha, c := synthModel(rng, q, k)
	xs, fs := synthSamples(rng, alpha, c, 256, 0, 0.005)
	r := NewRecursiveOLS(q, k, 0.995)
	for s := 0; s < 64; s++ {
		if err := r.Ingest(xs[s], fs[s]); err != nil {
			b.Fatal(err)
		}
	}
	dst := make([]float64, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := i % len(xs)
		if err := r.Ingest(xs[s], fs[s]); err != nil {
			b.Fatal(err)
		}
		r.PredictInto(dst, xs[s])
	}
}

// BenchmarkShadowScore measures the full Adapter.Ingest path — shadow RLS
// update, live/shadow prediction, alarm scoring, residual drift tracking —
// at the K=16, Q=8 serving shape.
func BenchmarkShadowScore(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const q, k = 8, 16
	alpha, c := synthModel(rng, q, k)
	xs, fs := synthSamples(rng, alpha, c, 512, 0, 0.005)
	x, f := toMatrices(xs, fs)
	m, err := ols.Fit(x, f)
	if err != nil {
		b.Fatal(err)
	}
	live := &core.Predictor{Selected: []int{0, 1, 2, 3, 4, 5, 6, 7}, Model: m}
	a, err := NewAdapter(live, Config{Margin: 1}, nil) // margin 1: never promote
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < 64; s++ {
		if _, err := a.Ingest(xs[s], fs[s]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := i % len(xs)
		if _, err := a.Ingest(xs[s], fs[s]); err != nil {
			b.Fatal(err)
		}
	}
}
