package uarch

import (
	"math"
	"testing"

	"voltsense/internal/floorplan"
	"voltsense/internal/mat"
	"voltsense/internal/workload"
)

func testChip() *floorplan.Chip { return floorplan.New(floorplan.DefaultConfig()) }

func benchByName(t *testing.T, name string) workload.Benchmark {
	t.Helper()
	for _, b := range workload.Benchmarks() {
		if b.Name == name {
			return b
		}
	}
	t.Fatalf("no benchmark %q", name)
	return workload.Benchmark{}
}

func TestCharacterizeMixesAreDistributions(t *testing.T) {
	for _, b := range workload.Benchmarks() {
		bm := Characterize(b)
		if err := bm.MixCompute.Validate(); err != nil {
			t.Errorf("%s compute mix: %v", b.Name, err)
		}
		if err := bm.MixMemory.Validate(); err != nil {
			t.Errorf("%s memory mix: %v", b.Name, err)
		}
		if bm.ILP <= 0 || bm.ILP > float64(DefaultCore().IssueWidth) {
			t.Errorf("%s ILP %v out of range", b.Name, bm.ILP)
		}
	}
}

func TestEvalWindowPhysicalBounds(t *testing.T) {
	core := DefaultCore()
	for _, b := range workload.Benchmarks() {
		bm := Characterize(b)
		st := evalWindow(core, bm.MixCompute, bm.ILP, bm.WSComputeKB, bm.MPKI)
		if st.IPC <= 0 || st.IPC > float64(core.IssueWidth) {
			t.Errorf("%s IPC %v out of (0, %d]", b.Name, st.IPC, core.IssueWidth)
		}
		if st.L1MissRate < 0 || st.L1MissRate > 1 || st.L2MissRate < 0 || st.L2MissRate > 1 {
			t.Errorf("%s miss rates out of range: %+v", b.Name, st)
		}
		if st.MemStallFr < 0 || st.MemStallFr > 1 {
			t.Errorf("%s stall fraction %v", b.Name, st.MemStallFr)
		}
	}
}

func TestMemoryBoundBenchmarkHasLowerIPC(t *testing.T) {
	core := DefaultCore()
	comp := Characterize(benchByName(t, "swaptions")) // compute-bound
	memb := Characterize(benchByName(t, "canneal"))   // memory-bound
	ipcComp := evalWindow(core, comp.MixCompute, comp.ILP, comp.WSComputeKB, comp.MPKI).IPC
	ipcMem := evalWindow(core, memb.MixMemory, memb.ILP*0.8, memb.WSMemoryKB, memb.MPKI).IPC
	if ipcMem >= ipcComp {
		t.Fatalf("canneal memory-phase IPC %v >= swaptions compute-phase IPC %v", ipcMem, ipcComp)
	}
	if ipcMem > 1.5 {
		t.Errorf("memory-bound IPC %v implausibly high", ipcMem)
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	chip := testChip()
	b := workload.Benchmarks()[0]
	tr1 := Generate(chip, b, 150, 3)
	tr2 := Generate(chip, b, 150, 3)
	if len(tr1.Activity) != chip.NumBlocks() {
		t.Fatalf("activity rows %d", len(tr1.Activity))
	}
	for i := range tr1.Activity {
		for j := range tr1.Activity[i] {
			a := tr1.Activity[i][j]
			if a < 0 || a > 1 || math.IsNaN(a) {
				t.Fatalf("activity[%d][%d] = %v", i, j, a)
			}
			if a != tr2.Activity[i][j] {
				t.Fatal("trace not deterministic")
			}
		}
	}
	for c := range tr1.IPC {
		if len(tr1.IPC[c]) != 150 {
			t.Fatalf("IPC row %d length %d", c, len(tr1.IPC[c]))
		}
		for _, v := range tr1.IPC[c] {
			if v < 0 || v > float64(DefaultCore().IssueWidth) {
				t.Fatalf("IPC %v out of range", v)
			}
		}
	}
}

func TestGatedBlocksHaveZeroActivity(t *testing.T) {
	chip := testChip()
	tr := Generate(chip, benchByName(t, "canneal"), 500, 0)
	for i := range tr.Activity {
		for j := range tr.Activity[i] {
			if tr.Gated[i][j] && tr.Activity[i][j] != 0 {
				t.Fatalf("gated block %d active at %d", i, j)
			}
		}
	}
}

func TestCachesNeverGated(t *testing.T) {
	chip := testChip()
	tr := Generate(chip, benchByName(t, "swaptions"), 800, 0)
	for _, b := range chip.Blocks {
		switch b.Name {
		case "l1i", "l1d_0", "l1d_1", "l2_0", "l2_1", "l2_2", "l2_3":
			for j, g := range tr.Gated[b.ID] {
				if g {
					t.Fatalf("cache %s gated at step %d", b.Name, j)
				}
			}
		}
	}
}

func TestFPvsMemoryActivityContrast(t *testing.T) {
	chip := testChip()
	steps := 1500
	fpTr := Generate(chip, benchByName(t, "swaptions"), steps, 0)
	memTr := Generate(chip, benchByName(t, "canneal"), steps, 0)

	meanOf := func(tr *Trace, name string) float64 {
		var s float64
		var n int
		for _, b := range chip.Blocks {
			if b.Name == name {
				s += mat.Mean(tr.Activity[b.ID])
				n++
			}
		}
		return s / float64(n)
	}
	if fp, mem := meanOf(fpTr, "fpu0"), meanOf(memTr, "fpu0"); fp <= mem {
		t.Errorf("FPU activity: swaptions %.3f <= canneal %.3f", fp, mem)
	}
	if mem, fp := meanOf(memTr, "l2_0"), meanOf(fpTr, "l2_0"); mem <= fp {
		t.Errorf("L2 activity: canneal %.3f <= swaptions %.3f", mem, fp)
	}
}

func TestMixValidateCatchesErrors(t *testing.T) {
	bad := Mix{Int: 0.5, FP: 0.2}
	if err := bad.Validate(); err == nil {
		t.Error("expected sum error")
	}
	neg := Mix{Int: -0.1, FP: 0.5, Load: 0.3, Store: 0.2, Branch: 0.1}
	if err := neg.Validate(); err == nil {
		t.Error("expected negativity error")
	}
}

func TestMissRateMonotone(t *testing.T) {
	// Larger working sets miss more; larger caches miss less.
	if missRate(64, 32) <= missRate(32, 32) {
		t.Error("miss rate not increasing in working set")
	}
	if missRate(64, 256) >= missRate(64, 32) {
		t.Error("miss rate not decreasing in capacity")
	}
	if missRate(0, 32) != 0 {
		t.Error("zero working set should never miss")
	}
}

func TestBlendMixNormalized(t *testing.T) {
	a := Mix{Int: 0.5, FP: 0.2, Load: 0.1, Store: 0.1, Branch: 0.1}
	b := Mix{Int: 0.1, FP: 0.1, Load: 0.4, Store: 0.3, Branch: 0.1}
	m := blendMix(a, b, 0.3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
