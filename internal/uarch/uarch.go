// Package uarch is the deeper GEM5 substitute: a trace-driven
// microarchitectural performance model that derives per-block activity from
// first principles — instruction mix, issue-width and dependence limits,
// cache miss rates from working-set sizes, branch mispredictions and memory
// stalls — instead of the phase-shaped stochastic activity of package
// workload.
//
// Each simulation step models a fixed window of core cycles. The model
// computes the window's achievable IPC from the benchmark's instruction mix
// and memory behaviour, then translates utilization into the activity of
// each of the 30 floorplan blocks (ALUs see integer issue, the LSU sees
// loads/stores, the L2 sees L1 misses, and so on). The result is a
// workload.Trace, so the rest of the pipeline — power model, grid transient,
// placement — is source-agnostic; experiments.Config selects the source.
package uarch

import (
	"fmt"
	"math"
	"math/rand"

	"voltsense/internal/floorplan"
	"voltsense/internal/workload"
)

// Mix is an instruction-class breakdown; fractions must sum to 1.
type Mix struct {
	Int    float64 // integer ALU ops
	FP     float64 // floating-point ops
	Load   float64
	Store  float64
	Branch float64
}

// Sum returns the total fraction (1.0 for a valid mix).
func (m Mix) Sum() float64 { return m.Int + m.FP + m.Load + m.Store + m.Branch }

// Validate checks the mix is a distribution.
func (m Mix) Validate() error {
	for _, v := range []float64{m.Int, m.FP, m.Load, m.Store, m.Branch} {
		if v < 0 {
			return fmt.Errorf("uarch: negative mix component in %+v", m)
		}
	}
	if s := m.Sum(); math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("uarch: mix sums to %v, want 1", s)
	}
	return nil
}

// CoreParams describes the modeled core (Xeon-E5-class out-of-order).
type CoreParams struct {
	IssueWidth     int     // max instructions issued per cycle
	IntUnits       int     // ALU count (alu0..2)
	FPUnits        int     // FPU count
	LoadStoreUnits int     // LSU ports
	L1SizeKB       float64 // L1D capacity
	L2SizeKB       float64 // per-core L2 slice capacity
	L1Latency      float64 // cycles (hidden by OoO, kept for completeness)
	L2Latency      float64 // cycles exposed on L1 miss (partially hidden)
	MemLatency     float64 // cycles exposed on L2 miss
	MispredictCost float64 // flush penalty, cycles
	WindowCycles   int     // core cycles per simulation step
}

// DefaultCore returns the 2.5 GHz Xeon-E5-like core of the experiments.
func DefaultCore() CoreParams {
	return CoreParams{
		IssueWidth:     4,
		IntUnits:       3,
		FPUnits:        2,
		LoadStoreUnits: 2,
		L1SizeKB:       32,
		L2SizeKB:       256,
		L1Latency:      4,
		L2Latency:      12,
		MemLatency:     180,
		MispredictCost: 15,
		WindowCycles:   1000,
	}
}

// BenchModel is the microarchitectural characterization of one benchmark:
// its instruction mix, parallelism, memory footprint and control behaviour
// per program phase.
type BenchModel struct {
	Name string
	Seed int64

	MixCompute  Mix     // mix during compute phases
	MixMemory   Mix     // mix during memory phases
	ILP         float64 // achievable instructions per cycle ignoring memory, <= IssueWidth
	WSComputeKB float64 // working set during compute phases
	WSMemoryKB  float64 // working set during memory phases
	MPKI        float64 // branch mispredictions per kilo-instruction
	PhaseLen    int     // mean phase dwell in steps
	SerialFrac  float64
}

// Characterize derives a BenchModel from the coarse workload profile, so
// the 19 synthetic benchmarks exist consistently in both trace sources.
func Characterize(b workload.Benchmark) BenchModel {
	p := b.Profile
	fpShare := 0.45 * p.FPWeight
	memShare := 0.15 + 0.25*p.MemWeight
	intShare := 1 - fpShare - memShare - 0.12 // branches fixed at 12%
	loads := memShare * 0.7
	stores := memShare * 0.3
	return BenchModel{
		Name: b.Name,
		Seed: b.Seed,
		MixCompute: Mix{
			Int: intShare, FP: fpShare,
			Load: loads, Store: stores, Branch: 0.12,
		},
		MixMemory: Mix{
			Int: intShare * 0.7, FP: fpShare * 0.5,
			Load: loads + 0.15*intShare + 0.3*fpShare, Store: stores + 0.15*intShare + 0.2*fpShare,
			Branch: 0.12,
		},
		ILP:         1.5 + 2.0*(1-p.MemWeight),
		WSComputeKB: 16 + 48*p.MemWeight,
		WSMemoryKB:  256 + 8192*p.MemWeight,
		MPKI:        2 + 10*p.Burstiness,
		PhaseLen:    p.PhaseLen,
		SerialFrac:  p.SerialFrac,
	}
}

// missRate estimates a cache miss rate from working set vs capacity with
// the standard exponential capacity model.
func missRate(wsKB, capKB float64) float64 {
	if wsKB <= 0 {
		return 0
	}
	return math.Exp(-3 * capKB / wsKB)
}

// WindowStats is the performance summary of one simulated window.
type WindowStats struct {
	IPC        float64
	L1MissRate float64
	L2MissRate float64
	MemStallFr float64 // fraction of window cycles stalled on memory
}

// evalWindow computes achievable IPC and activity drivers for one window.
func evalWindow(core CoreParams, mix Mix, ilp, wsKB, mpki float64) WindowStats {
	// Structural limits per instruction class.
	memFrac := mix.Load + mix.Store
	limits := []float64{
		float64(core.IssueWidth),
		ilp,
	}
	if mix.Int > 0 {
		limits = append(limits, float64(core.IntUnits)/mix.Int)
	}
	if mix.FP > 0 {
		limits = append(limits, float64(core.FPUnits)/mix.FP)
	}
	if memFrac > 0 {
		limits = append(limits, float64(core.LoadStoreUnits)/memFrac)
	}
	ipcCore := limits[0]
	for _, l := range limits[1:] {
		if l < ipcCore {
			ipcCore = l
		}
	}

	l1Miss := missRate(wsKB, core.L1SizeKB)
	l2Miss := missRate(wsKB, core.L2SizeKB)
	// Average memory stall per instruction: L1 misses pay a partially
	// hidden L2 latency; L2 misses pay a mostly exposed memory latency.
	stallPerInst := memFrac * l1Miss * (0.3*core.L2Latency + l2Miss*0.7*core.MemLatency)
	// Branch flush cost per instruction.
	stallPerInst += mpki / 1000 * core.MispredictCost

	// cycles per instruction = core CPI + stalls.
	cpi := 1/ipcCore + stallPerInst
	ipc := 1 / cpi

	memStall := stallPerInst / cpi
	return WindowStats{IPC: ipc, L1MissRate: l1Miss, L2MissRate: l2Miss, MemStallFr: memStall}
}

// Generate produces a workload.Trace for bench on chip using the
// performance model. The same arguments always produce the same trace;
// distinct run values give independent executions.
func Generate(chip *floorplan.Chip, bench workload.Benchmark, steps, run int) *Trace {
	core := DefaultCore()
	bm := Characterize(bench)
	nb := chip.NumBlocks()
	tr := &Trace{Trace: workload.Trace{
		Benchmark: bench.Name,
		Steps:     steps,
		Activity:  make([][]float64, nb),
		Gated:     make([][]bool, nb),
		Phases:    make([][]workload.Phase, len(chip.Cores)),
	}}
	for i := range tr.Activity {
		tr.Activity[i] = make([]float64, steps)
		tr.Gated[i] = make([]bool, steps)
	}
	for c := range tr.Phases {
		tr.Phases[c] = make([]workload.Phase, steps)
	}
	tr.IPC = make([][]float64, len(chip.Cores))

	for _, c := range chip.Cores {
		rng := rand.New(rand.NewSource(bm.Seed*2_000_003 + int64(c.Index)*7907 + int64(run)*104659))
		ipcRow := make([]float64, steps)
		phase := workload.PhaseMixed
		dwell := 1 + rng.Intn(bm.PhaseLen)
		gated := make([]bool, len(c.Blocks))
		idleFor := make([]int, len(c.Blocks))

		for t := 0; t < steps; t++ {
			if dwell--; dwell <= 0 {
				phase = nextPhase(rng, bm)
				dwell = 1 + rng.Intn(2*bm.PhaseLen)
			}
			tr.Phases[c.Index][t] = phase

			var st WindowStats
			var mix Mix
			serial := phase == workload.PhaseSerial
			switch phase {
			case workload.PhaseCompute:
				mix = bm.MixCompute
				st = evalWindow(core, mix, bm.ILP, bm.WSComputeKB, bm.MPKI)
			case workload.PhaseMemory:
				mix = bm.MixMemory
				st = evalWindow(core, mix, bm.ILP*0.8, bm.WSMemoryKB, bm.MPKI)
			case workload.PhaseMixed:
				mix = blendMix(bm.MixCompute, bm.MixMemory, 0.5)
				st = evalWindow(core, mix, bm.ILP*0.9, (bm.WSComputeKB+bm.WSMemoryKB)/2, bm.MPKI)
			default: // serial: this core spins at near-zero issue
				mix = bm.MixCompute
				st = WindowStats{IPC: 0.05}
			}
			// Window-to-window jitter: realized IPC varies with input data.
			ipc := st.IPC * (1 + 0.08*rng.NormFloat64())
			if ipc < 0 {
				ipc = 0
			}
			maxIPC := float64(core.IssueWidth)
			if ipc > maxIPC {
				ipc = maxIPC
			}
			ipcRow[t] = ipc
			util := ipc / maxIPC

			tr.fillBlocks(c, t, util, mix, st, serial, gated, idleFor, rng)
		}
		tr.IPC[c.Index] = ipcRow
	}
	return tr
}

// Trace extends workload.Trace with the performance numbers the model
// computed, for analysis and tests.
type Trace struct {
	workload.Trace
	IPC [][]float64 // [core][step] achieved instructions per cycle
}

// fillBlocks maps window utilization onto the 30 per-core blocks.
func (tr *Trace) fillBlocks(c *floorplan.Core, t int, util float64, mix Mix, st WindowStats,
	serial bool, gated []bool, idleFor []int, rng *rand.Rand) {
	memFrac := mix.Load + mix.Store
	for li, b := range c.Blocks {
		var a float64
		switch b.Name {
		case "fetch", "decode", "rename", "itlb", "l1i":
			a = util
		case "branchpred":
			a = util * (0.6 + 4*mix.Branch)
		case "int_issueq", "int_regfile":
			a = util * (mix.Int + mix.Load + mix.Store) * 1.5
		case "alu0", "alu1", "alu2":
			a = util * mix.Int * 3.2
		case "muldiv":
			a = util * mix.Int * 0.8
		case "fp_issueq", "fp_regfile":
			a = util * mix.FP * 2.2
		case "fpu0", "fpu1":
			a = util * mix.FP * 2.5
		case "agu0":
			a = util * memFrac * 2.0
		case "rob":
			a = util * 1.1
		case "lsu", "loadq", "storeq", "dtlb":
			a = util * memFrac * 2.4
		case "l1d_0", "l1d_1":
			a = util * memFrac * 2.0
		case "l2_0", "l2_1", "l2_2", "l2_3":
			a = util*memFrac*st.L1MissRate*12 + 0.05
		case "prefetch", "mshr":
			a = util*memFrac*st.L1MissRate*8 + 0.02
		default:
			a = util
		}
		if a > 1 {
			a = 1
		}
		if a < 0 {
			a = 0
		}

		// Power gating: identical policy to package workload — sustained
		// idle demand gates a gateable block, demand wakes it.
		demand := a
		if gated[li] {
			if demand > 0.16 {
				gated[li] = false
				idleFor[li] = 0
			}
		} else if gateableName(b.Name) {
			if demand < 0.08 {
				idleFor[li]++
				if idleFor[li] >= 8 && rng.Float64() < 0.25 {
					gated[li] = true
					idleFor[li] = 0
				}
			} else {
				idleFor[li] = 0
			}
		}
		if serial {
			// Serial sections gate aggressively.
			if gateableName(b.Name) && rng.Float64() < 0.5 {
				gated[li] = true
			}
		}
		if gated[li] {
			a = 0
		}
		tr.Activity[b.ID][t] = a
		tr.Gated[b.ID][t] = gated[li]
	}
}

func gateableName(name string) bool {
	switch name {
	case "l1i", "l1d_0", "l1d_1", "l2_0", "l2_1", "l2_2", "l2_3":
		return false
	default:
		return true
	}
}

func blendMix(a, b Mix, w float64) Mix {
	m := Mix{
		Int:    a.Int*(1-w) + b.Int*w,
		FP:     a.FP*(1-w) + b.FP*w,
		Load:   a.Load*(1-w) + b.Load*w,
		Store:  a.Store*(1-w) + b.Store*w,
		Branch: a.Branch*(1-w) + b.Branch*w,
	}
	// Renormalize roundoff.
	s := m.Sum()
	m.Int /= s
	m.FP /= s
	m.Load /= s
	m.Store /= s
	m.Branch /= s
	return m
}

func nextPhase(rng *rand.Rand, bm BenchModel) workload.Phase {
	if rng.Float64() < bm.SerialFrac {
		return workload.PhaseSerial
	}
	r := rng.Float64()
	memP := 0.2 + 0.4*missRate(bm.WSMemoryKB, 512)
	switch {
	case r < memP:
		return workload.PhaseMemory
	case r < memP+0.45:
		return workload.PhaseCompute
	default:
		return workload.PhaseMixed
	}
}
