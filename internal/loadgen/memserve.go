package loadgen

import (
	"context"
	"net"
	"net/http"
	"sync"
)

// memListener is a net.Listener whose connections are in-process pipes.
// Driving a server through it exercises the full net/http stack — chunked
// encoding, full-duplex streams, connection teardown — without consuming
// sockets or file descriptors, so a single-machine bench can hold thousands
// of concurrent NDJSON sessions.
type memListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newMemListener() *memListener {
	return &memListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr{} }

// dial hands the server half of a fresh pipe to Accept and returns the
// client half.
func (l *memListener) dial(ctx context.Context) (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "in-process" }

// Target is an HTTP endpoint under load: the base URL plus the client used
// to reach it.
type Target struct {
	BaseURL string
	Client  *http.Client
}

// ServeInProcess serves h over an in-memory listener and returns a Target
// whose client dials it without touching the network, plus a shutdown func
// that stops the server and severs outstanding connections.
func ServeInProcess(h http.Handler) (Target, func()) {
	l := newMemListener()
	srv := &http.Server{Handler: h}
	go srv.Serve(l)
	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			return l.dial(ctx)
		},
		// Streams mark their responses Connection: close, so pooling only
		// ever helps the unary endpoints; the default pool size is fine.
	}}
	shutdown := func() {
		srv.Close()
		l.Close()
	}
	return Target{BaseURL: "http://voltbench.mem", Client: client}, shutdown
}
