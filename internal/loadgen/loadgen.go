// Package loadgen drives a voltsense inference server with a configurable
// mix of predict, feedback, calibrate, and NDJSON streaming load across many
// tenants, and reports latency quantiles, throughput, and shed rates.
//
// It is the engine behind cmd/voltbench. The generator speaks the public
// HTTP API only — it can point at a live voltserved over TCP or at an
// in-process server via ServeInProcess, which multiplexes thousands of
// concurrent streams over pipe connections without exhausting sockets.
package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TenantHeader routes a request to a tenant, mirroring serve.TenantHeader.
// Duplicated here so the generator depends only on the wire protocol.
const TenantHeader = "X-Voltsense-Tenant"

// Options shapes the offered load.
type Options struct {
	// Tenants are the tenant ids requests round-robin across. Required.
	Tenants []string
	// Sensors is the width Q of each reading vector. Default 2.
	Sensors int
	// Blocks is the width K of feedback truth vectors. Default 3.
	Blocks int

	// Workers is the number of concurrent unary clients. Default 8.
	Workers int
	// Requests is the total number of unary requests (predict plus
	// feedback). 0 skips the unary phase.
	Requests int
	// FeedbackEvery makes every Nth unary request a /v1/feedback call
	// instead of /v1/predict. 0 sends only predicts.
	FeedbackEvery int
	// CalibrateEvery makes every Nth unary request a /v1/calibrate call
	// carrying a small labeled batch (CalibrateSamples readings/voltages
	// pairs), exercising the fleet transfer-calibration path: MAP alignment,
	// thin delta artifact write, and registry refresh. 0 sends none. The
	// target must run in fleet mode with a shared prior or every calibrate
	// counts as an error. Takes precedence over FeedbackEvery on collisions.
	CalibrateEvery int
	// CalibrateSamples is the labeled batch size per calibrate call.
	// Default 8 — comfortably past the default evidence gate of 4.
	CalibrateSamples int

	// Streams is the number of NDJSON sessions opened concurrently. All
	// accepted sessions are held open until every open has resolved, so the
	// peak concurrency the server sustained is a real measurement, then each
	// pumps StreamCycles cycles. 0 skips the streaming phase.
	Streams int
	// StreamCycles is the number of cycles pumped per accepted session.
	// Default 4.
	StreamCycles int
}

// OpStats summarizes one operation type.
type OpStats struct {
	Count     int64   `json:"count"`
	Errors    int64   `json:"errors"`
	Shed      int64   `json:"shed"`
	MeanNs    float64 `json:"mean_ns"`
	P50Ns     float64 `json:"p50_ns"`
	P95Ns     float64 `json:"p95_ns"`
	P99Ns     float64 `json:"p99_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// Report is the outcome of one Run.
type Report struct {
	Tenants     int     `json:"tenants"`
	Streams     int     `json:"streams_requested"`
	PeakStreams int64   `json:"streams_peak_concurrent"`
	WallNs      int64   `json:"wall_ns"`
	ShedTotal   int64   `json:"shed_total"`
	ShedRate    float64 `json:"shed_rate"`

	Predict     OpStats `json:"predict"`
	Feedback    OpStats `json:"feedback"`
	Calibrate   OpStats `json:"calibrate"`
	StreamOpen  OpStats `json:"stream_open"`
	StreamCycle OpStats `json:"stream_cycle"`
}

// recorder accumulates one operation type's latencies and failure counts.
type recorder struct {
	mu   sync.Mutex
	lat  []time.Duration
	errs atomic.Int64
	shed atomic.Int64
}

func (r *recorder) ok(d time.Duration) {
	r.mu.Lock()
	r.lat = append(r.lat, d)
	r.mu.Unlock()
}

// stats freezes the recorder into quantiles over the given wall time.
func (r *recorder) stats(wall time.Duration) OpStats {
	r.mu.Lock()
	lat := r.lat
	r.mu.Unlock()
	st := OpStats{
		Count:  int64(len(lat)),
		Errors: r.errs.Load(),
		Shed:   r.shed.Load(),
	}
	if len(lat) == 0 {
		return st
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var total time.Duration
	for _, d := range lat {
		total += d
	}
	q := func(p float64) float64 {
		i := int(p*float64(len(lat))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return float64(lat[i].Nanoseconds())
	}
	st.MeanNs = float64(total.Nanoseconds()) / float64(len(lat))
	st.P50Ns = q(0.50)
	st.P95Ns = q(0.95)
	st.P99Ns = q(0.99)
	if wall > 0 {
		st.OpsPerSec = float64(len(lat)) / wall.Seconds()
	}
	return st
}

// Run offers the configured load to the target and reports what came back.
// Request failures are counted, not fatal: a bench against an overloaded
// server is measuring exactly that.
func Run(t Target, o Options) (*Report, error) {
	if len(o.Tenants) == 0 {
		return nil, fmt.Errorf("loadgen: at least one tenant required")
	}
	if o.Sensors <= 0 {
		o.Sensors = 2
	}
	if o.Blocks <= 0 {
		o.Blocks = 3
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.StreamCycles <= 0 {
		o.StreamCycles = 4
	}
	if o.CalibrateSamples <= 0 {
		o.CalibrateSamples = 8
	}

	rep := &Report{Tenants: len(o.Tenants), Streams: o.Streams}
	start := time.Now()

	var predict, feedback, calibrate, open, cycle recorder
	if o.Requests > 0 {
		unaryPhase(t, o, &predict, &feedback, &calibrate)
	}
	if o.Streams > 0 {
		rep.PeakStreams = streamPhase(t, o, &open, &cycle)
	}

	wall := time.Since(start)
	rep.WallNs = wall.Nanoseconds()
	rep.Predict = predict.stats(wall)
	rep.Feedback = feedback.stats(wall)
	rep.Calibrate = calibrate.stats(wall)
	rep.StreamOpen = open.stats(wall)
	rep.StreamCycle = cycle.stats(wall)
	rep.ShedTotal = rep.Predict.Shed + rep.Feedback.Shed + rep.Calibrate.Shed + rep.StreamOpen.Shed
	if n := rep.Predict.Count + rep.Feedback.Count + rep.Calibrate.Count + rep.StreamOpen.Count + rep.ShedTotal; n > 0 {
		rep.ShedRate = float64(rep.ShedTotal) / float64(n)
	}
	return rep, nil
}

// readings builds one deterministic Q-wide reading vector; seed varies it
// so consecutive cycles are not byte-identical.
func readings(q, seed int) []float64 {
	v := make([]float64, q)
	for i := range v {
		v[i] = 0.94 + 0.005*float64((seed+i)%4)
	}
	return v
}

// unaryPhase fires o.Requests predict/feedback/calibrate calls from
// o.Workers goroutines, round-robining tenants.
func unaryPhase(t Target, o Options, predict, feedback, calibrate *recorder) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.Requests {
					return
				}
				tenant := o.Tenants[i%len(o.Tenants)]
				switch {
				case o.CalibrateEvery > 0 && i%o.CalibrateEvery == o.CalibrateEvery-1:
					unaryCall(t, tenant, "/v1/calibrate", calibrateBody(o, i), calibrate)
				case o.FeedbackEvery > 0 && i%o.FeedbackEvery == o.FeedbackEvery-1:
					unaryCall(t, tenant, "/v1/feedback", feedbackBody(o, i), feedback)
				default:
					unaryCall(t, tenant, "/v1/predict", predictBody(o, i), predict)
				}
			}
		}()
	}
	wg.Wait()
}

func predictBody(o Options, seed int) []byte {
	b, _ := json.Marshal(map[string]any{"readings": [][]float64{readings(o.Sensors, seed)}})
	return b
}

func feedbackBody(o Options, seed int) []byte {
	truth := make([]float64, o.Blocks)
	for i := range truth {
		truth[i] = 0.94 + 0.004*float64((seed+i)%5)
	}
	b, _ := json.Marshal(map[string]any{"samples": []map[string]any{{
		"readings": readings(o.Sensors, seed),
		"voltages": truth,
	}}})
	return b
}

// calibrateBody builds one few-shot labeled batch: CalibrateSamples
// deterministic readings/voltages pairs, varied by seed so repeated
// calibrations of the same tenant are not byte-identical.
func calibrateBody(o Options, seed int) []byte {
	samples := make([]map[string]any, o.CalibrateSamples)
	for s := range samples {
		truth := make([]float64, o.Blocks)
		for i := range truth {
			truth[i] = 0.94 + 0.004*float64((seed+s+i)%5)
		}
		samples[s] = map[string]any{
			"readings": readings(o.Sensors, seed+s),
			"voltages": truth,
		}
	}
	b, _ := json.Marshal(map[string]any{"samples": samples})
	return b
}

// unaryCall posts one body and buckets the outcome: latency on 2xx, shed on
// 503, error otherwise.
func unaryCall(t Target, tenant, path string, body []byte, rec *recorder) {
	req, err := http.NewRequest(http.MethodPost, t.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		rec.errs.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, tenant)
	t0 := time.Now()
	resp, err := t.Client.Do(req)
	if err != nil {
		rec.errs.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode < 300:
		rec.ok(time.Since(t0))
	case resp.StatusCode == http.StatusServiceUnavailable:
		rec.shed.Add(1)
	default:
		rec.errs.Add(1)
	}
}

// streamPhase opens o.Streams NDJSON sessions concurrently. Accepted
// sessions hold at a barrier until every open has resolved — so the reported
// peak is concurrency the server genuinely sustained — then pump
// o.StreamCycles cycles each, measuring per-cycle round trips.
func streamPhase(t Target, o Options, open, cycle *recorder) (peak int64) {
	var active, high atomic.Int64
	var openWG, doneWG sync.WaitGroup
	pump := make(chan struct{}) // closed once all opens resolved
	for i := 0; i < o.Streams; i++ {
		openWG.Add(1)
		doneWG.Add(1)
		go func(i int) {
			defer doneWG.Done()
			runStream(t, o, o.Tenants[i%len(o.Tenants)], i, open, cycle,
				&active, &high, openWG.Done, pump)
		}(i)
	}
	openWG.Wait()
	close(pump)
	doneWG.Wait()
	return high.Load()
}

// runStream drives one session: open, barrier, pump cycles, close, drain
// the summary.
func runStream(t Target, o Options, tenant string, seed int, open, cyc *recorder,
	active, high *atomic.Int64, opened func(), pump <-chan struct{}) {
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, t.BaseURL+"/v1/stream?emit_voltages=true", pr)
	if err != nil {
		open.errs.Add(1)
		opened()
		return
	}
	req.Header.Set(TenantHeader, tenant)
	t0 := time.Now()
	resp, err := t.Client.Do(req)
	if err != nil {
		open.errs.Add(1)
		opened()
		pw.Close()
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusServiceUnavailable {
			open.shed.Add(1)
		} else {
			open.errs.Add(1)
		}
		opened()
		pw.Close()
		io.Copy(io.Discard, resp.Body)
		return
	}
	open.ok(time.Since(t0))
	if n := active.Add(1); n > high.Load() {
		high.Store(n) // racy max is fine: the floor only ever rises
	}
	defer active.Add(-1)
	opened()
	<-pump

	br := bufio.NewReader(resp.Body)
	enc := json.NewEncoder(pw)
	for c := 0; c < o.StreamCycles; c++ {
		t0 = time.Now()
		if err := enc.Encode(map[string]any{"readings": readings(o.Sensors, seed+c)}); err != nil {
			cyc.errs.Add(1)
			break
		}
		// Each cycle answers with a voltages line; alarm events may precede
		// it, so scan until the voltages line for this cycle arrives.
		if err := awaitVoltages(br); err != nil {
			cyc.errs.Add(1)
			break
		}
		cyc.ok(time.Since(t0))
	}
	pw.Close() // EOF ends the session; the server replies with a summary
	io.Copy(io.Discard, resp.Body)
}

// awaitVoltages reads NDJSON lines until one carries a voltages payload.
func awaitVoltages(br *bufio.Reader) error {
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return err
		}
		if strings.Contains(line, `"voltages"`) {
			return nil
		}
	}
}
