package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"voltsense/internal/core"
	"voltsense/internal/monitor"
	"voltsense/internal/serve"
	"voltsense/internal/transfer"
)

const testArtifact = `{
  "format": "voltsense-predictor/v1",
  "selected_sensors": [3, 7],
  "alpha": [[1, 0], [0, 1], [0.5, 0.5]],
  "c": [0, 0, 0]
}`

func newTarget(t *testing.T, tenants []string, overload serve.Overload) (Target, func()) {
	return newTargetWithPrior(t, tenants, overload, nil)
}

func newTargetWithPrior(t *testing.T, tenants []string, overload serve.Overload, prior *transfer.SharedPrior) (Target, func()) {
	t.Helper()
	dir := t.TempDir()
	for _, id := range tenants {
		if err := os.WriteFile(filepath.Join(dir, id+".json"), []byte(testArtifact), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := serve.New(serve.Config{
		StoreDir: dir,
		Monitor:  monitor.Config{Vth: 0.85, ClearMargin: 0.02, ClearCycles: 2},
		Adapt:    true,
		Overload: overload,
		Prior:    prior,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ServeInProcess(s.Handler())
}

func TestRunMixedLoad(t *testing.T) {
	tenants := []string{"default", "chipA", "chipB", "chipC"}
	target, shutdown := newTarget(t, tenants, serve.Overload{})
	defer shutdown()

	rep, err := Run(target, Options{
		Tenants:       tenants,
		Workers:       4,
		Requests:      40,
		FeedbackEvery: 4,
		Streams:       12,
		StreamCycles:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Predict.Count != 30 || rep.Predict.Errors != 0 {
		t.Errorf("predict count=%d errors=%d, want 30/0", rep.Predict.Count, rep.Predict.Errors)
	}
	if rep.Feedback.Count != 10 || rep.Feedback.Errors != 0 {
		t.Errorf("feedback count=%d errors=%d, want 10/0", rep.Feedback.Count, rep.Feedback.Errors)
	}
	if rep.StreamOpen.Count != 12 || rep.StreamOpen.Errors != 0 {
		t.Errorf("stream opens=%d errors=%d, want 12/0", rep.StreamOpen.Count, rep.StreamOpen.Errors)
	}
	if rep.PeakStreams != 12 {
		t.Errorf("peak concurrent streams = %d, want 12 (opens barrier before pumping)", rep.PeakStreams)
	}
	if want := int64(12 * 3); rep.StreamCycle.Count != want {
		t.Errorf("stream cycles = %d, want %d", rep.StreamCycle.Count, want)
	}
	if rep.Predict.P50Ns <= 0 || rep.Predict.P99Ns < rep.Predict.P50Ns {
		t.Errorf("implausible predict quantiles: p50=%v p99=%v", rep.Predict.P50Ns, rep.Predict.P99Ns)
	}
	if rep.ShedTotal != 0 {
		t.Errorf("unexpected shedding: %d", rep.ShedTotal)
	}
}

// TestRunCalibrateMix exercises the /v1/calibrate slice of the unary mix
// against a fleet server carrying a shared prior: every calibrate must land
// (no errors) and take precedence over feedback on colliding indices.
func TestRunCalibrateMix(t *testing.T) {
	golden, err := core.LoadPredictor(strings.NewReader(testArtifact))
	if err != nil {
		t.Fatal(err)
	}
	prior, err := transfer.FitPrior([]*core.Predictor{golden}, transfer.PriorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tenants := []string{"default", "chipA"}
	target, shutdown := newTargetWithPrior(t, tenants, serve.Overload{}, prior)
	defer shutdown()

	rep, err := Run(target, Options{
		Tenants:        tenants,
		Workers:        4,
		Requests:       40,
		FeedbackEvery:  4,
		CalibrateEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Of 40 requests: i%8==7 → 5 calibrates (every one collides with the
	// feedback stride and must win), i%4==3 otherwise → 5 feedbacks, 30
	// predicts.
	if rep.Calibrate.Count != 5 || rep.Calibrate.Errors != 0 {
		t.Errorf("calibrate count=%d errors=%d, want 5/0", rep.Calibrate.Count, rep.Calibrate.Errors)
	}
	if rep.Feedback.Count != 5 || rep.Feedback.Errors != 0 {
		t.Errorf("feedback count=%d errors=%d, want 5/0", rep.Feedback.Count, rep.Feedback.Errors)
	}
	if rep.Predict.Count != 30 || rep.Predict.Errors != 0 {
		t.Errorf("predict count=%d errors=%d, want 30/0", rep.Predict.Count, rep.Predict.Errors)
	}
}

func TestRunReportsShedding(t *testing.T) {
	tenants := []string{"default", "chipA"}
	target, shutdown := newTarget(t, tenants, serve.Overload{MaxStreams: 4})
	defer shutdown()

	rep, err := Run(target, Options{
		Tenants:      tenants,
		Streams:      10,
		StreamCycles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StreamOpen.Count != 4 {
		t.Errorf("accepted streams = %d, want 4 (MaxStreams)", rep.StreamOpen.Count)
	}
	if rep.StreamOpen.Shed != 6 {
		t.Errorf("shed streams = %d, want 6", rep.StreamOpen.Shed)
	}
	if rep.PeakStreams != 4 {
		t.Errorf("peak = %d, want 4", rep.PeakStreams)
	}
	if rep.ShedRate <= 0 {
		t.Error("shed rate not reported")
	}
}
