package vmap

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"voltsense/internal/floorplan"
	"voltsense/internal/grid"
	"voltsense/internal/mat"
)

func smallGrid() *grid.Grid {
	chip := floorplan.New(floorplan.DefaultConfig())
	cfg := grid.DefaultConfig()
	cfg.NX, cfg.NY = 13, 6

	return grid.Build(chip, cfg)
}

func TestTrainGenerateRecoversLinearField(t *testing.T) {
	// Node voltages are exact linear functions of 3 latent sensors: the
	// generator must reconstruct maps nearly perfectly.
	rng := rand.New(rand.NewSource(1))
	q, nodes, n := 3, 40, 300
	sensors := mat.Zeros(q, n)
	for i := 0; i < q; i++ {
		for j := 0; j < n; j++ {
			sensors.Set(i, j, 0.95+0.03*rng.NormFloat64())
		}
	}
	w := mat.Zeros(nodes, q)
	for i := 0; i < nodes; i++ {
		for k := 0; k < q; k++ {
			w.Set(i, k, rng.Float64())
		}
	}
	nodeV := mat.Mul(w, sensors)
	g, err := Train(sensors, nodeV)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != nodes {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	for j := 0; j < 5; j++ {
		pred := g.Generate(sensors.Col(j))
		e := Compare(pred, nodeV.Col(j))
		if e.MaxAbs > 1e-8 {
			t.Fatalf("sample %d max error %v on exact linear field", j, e.MaxAbs)
		}
	}
}

func TestGenerateMatrixMatchesGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sensors := mat.Zeros(2, 50)
	nodeV := mat.Zeros(10, 50)
	for j := 0; j < 50; j++ {
		sensors.Set(0, j, rng.NormFloat64())
		sensors.Set(1, j, rng.NormFloat64())
		for i := 0; i < 10; i++ {
			nodeV.Set(i, j, rng.NormFloat64())
		}
	}
	g, err := Train(sensors, nodeV)
	if err != nil {
		t.Fatal(err)
	}
	m := g.GenerateMatrix(sensors)
	one := g.Generate(sensors.Col(7))
	for i := range one {
		if math.Abs(m.At(i, 7)-one[i]) > 1e-12 {
			t.Fatal("GenerateMatrix disagrees with Generate")
		}
	}
}

func TestCompareMetrics(t *testing.T) {
	truth := []float64{1, 1, 1, 1}
	pred := []float64{1, 1, 1, 0.9}
	e := Compare(pred, truth)
	if math.Abs(e.MaxAbs-0.1) > 1e-12 {
		t.Errorf("MaxAbs = %v", e.MaxAbs)
	}
	if math.Abs(e.RMS-0.05) > 1e-12 {
		t.Errorf("RMS = %v", e.RMS)
	}
	if math.Abs(e.Rel-0.05) > 1e-12 {
		t.Errorf("Rel = %v", e.Rel)
	}
}

func TestCompareMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Compare([]float64{1}, []float64{1, 2})
}

func TestRenderShape(t *testing.T) {
	g := smallGrid()
	v := make([]float64, g.NumNodes())
	for i := range v {
		v[i] = 1.0
	}
	s := Render(g, v, 0.8, 1.0)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != g.Cfg.NY {
		t.Fatalf("rendered %d lines, want %d", len(lines), g.Cfg.NY)
	}
	for _, ln := range lines {
		if len(ln) != g.Cfg.NX {
			t.Fatalf("line length %d, want %d", len(ln), g.Cfg.NX)
		}
		if strings.Trim(ln, " ") != "" {
			t.Fatalf("full-rail map should render blank, got %q", ln)
		}
	}
}

func TestRenderDroopVisible(t *testing.T) {
	g := smallGrid()
	v := make([]float64, g.NumNodes())
	for i := range v {
		v[i] = 1.0
	}
	v[g.NodeID(6, 3)] = 0.8
	s := Render(g, v, 0.8, 1.0)
	if !strings.Contains(s, "@") {
		t.Fatal("deep droop should render '@'")
	}
	if strings.Count(s, "@") != 1 {
		t.Fatalf("exactly one deep node expected:\n%s", s)
	}
}

func TestRenderBadScalePanics(t *testing.T) {
	g := smallGrid()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Render(g, make([]float64, g.NumNodes()), 1.0, 1.0)
}

func TestRenderDiff(t *testing.T) {
	g := smallGrid()
	a := make([]float64, g.NumNodes())
	b := make([]float64, g.NumNodes())
	for i := range a {
		a[i], b[i] = 1.0, 1.0
	}
	b[g.NodeID(2, 2)] = 0.9 // 0.1 V error at one node
	s := RenderDiff(g, a, b, 0.1)
	if strings.Count(s, "@") != 1 {
		t.Fatalf("want exactly one max-error cell:\n%s", s)
	}
}
