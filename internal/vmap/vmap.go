// Package vmap implements the title's "full-chip voltage map generation":
// extending the paper's block-level prediction model to every node of the
// power grid, so the Q placed sensors reconstruct a complete voltage map at
// runtime.
//
// Training fits one ridge-stabilized least-squares row per grid node against
// the selected sensors — the same Eq. 17 machinery as the block model, with
// K equal to the node count. Rendering helpers visualize maps as ASCII heat
// fields for the CLI and examples.
package vmap

import (
	"fmt"
	"math"
	"strings"

	"voltsense/internal/grid"
	"voltsense/internal/mat"
	"voltsense/internal/ols"
)

// Generator reconstructs full-chip voltage maps from selected-sensor
// readings.
type Generator struct {
	model *ols.Model
	nodes int
}

// Train fits the map generator. sensorX is Q-by-N selected-sensor voltages;
// nodeV is NumNodes-by-N full-map training voltages (same sample columns).
func Train(sensorX, nodeV *mat.Matrix) (*Generator, error) {
	m, err := ols.Fit(sensorX, nodeV)
	if err != nil {
		return nil, fmt.Errorf("vmap: %w", err)
	}
	return &Generator{model: m, nodes: nodeV.Rows()}, nil
}

// NumNodes returns the size of generated maps.
func (g *Generator) NumNodes() int { return g.nodes }

// Generate reconstructs the full voltage map (one value per grid node) from
// one sensor reading vector.
func (g *Generator) Generate(sensorV []float64) []float64 {
	return g.model.Predict(sensorV)
}

// GenerateMatrix reconstructs maps for Q-by-N sensor samples, returning
// NumNodes-by-N voltages.
func (g *Generator) GenerateMatrix(sensorX *mat.Matrix) *mat.Matrix {
	return g.model.PredictMatrix(sensorX)
}

// MapError summarizes reconstruction quality of one map against truth.
type MapError struct {
	Rel    float64 // ‖pred − truth‖₂ / ‖truth‖₂
	MaxAbs float64 // worst node error, volts
	RMS    float64 // root mean square node error, volts
}

// Compare computes reconstruction errors for one map.
func Compare(pred, truth []float64) MapError {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("vmap: map sizes %d vs %d", len(pred), len(truth)))
	}
	var num, den, mx, sq float64
	for i := range pred {
		d := pred[i] - truth[i]
		num += d * d
		den += truth[i] * truth[i]
		sq += d * d
		if a := math.Abs(d); a > mx {
			mx = a
		}
	}
	e := MapError{MaxAbs: mx}
	if den > 0 {
		e.Rel = math.Sqrt(num / den)
	}
	if len(pred) > 0 {
		e.RMS = math.Sqrt(sq / float64(len(pred)))
	}
	return e
}

// heatRamp runs from deepest droop to full rail.
const heatRamp = "@%#*+=-:. "

// Render draws a voltage map as an ASCII heat field, one character per grid
// node, rows printed top-down. lo and hi set the color scale (volts); nodes
// at or below lo render '@', nodes at or above hi render ' '.
func Render(g *grid.Grid, v []float64, lo, hi float64) string {
	if len(v) != g.NumNodes() {
		panic(fmt.Sprintf("vmap: map size %d, grid has %d nodes", len(v), g.NumNodes()))
	}
	if hi <= lo {
		panic(fmt.Sprintf("vmap: bad scale [%v, %v]", lo, hi))
	}
	var b strings.Builder
	nx, ny := g.Cfg.NX, g.Cfg.NY
	for iy := ny - 1; iy >= 0; iy-- {
		for ix := 0; ix < nx; ix++ {
			x := v[g.NodeID(ix, iy)]
			t := (x - lo) / (hi - lo)
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
			idx := int(t * float64(len(heatRamp)-1))
			b.WriteByte(heatRamp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderDiff draws |pred − truth| on a scale of 0..scale volts, for eyeballing
// where reconstruction error concentrates.
func RenderDiff(g *grid.Grid, pred, truth []float64, scale float64) string {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("vmap: map sizes %d vs %d", len(pred), len(truth)))
	}
	diff := make([]float64, len(pred))
	for i := range diff {
		// Invert so larger error maps to the "deep" end of the ramp.
		diff[i] = scale - math.Abs(pred[i]-truth[i])
	}
	return Render(g, diff, 0, scale)
}
