package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// gridLaplacian assembles the 5-point Laplacian of an nx×ny grid plus a
// uniform diagonal shift (the pad conductance that makes power-grid systems
// strictly SPD), using direct CSR assembly — the same fast path the PDN
// backend uses for million-node grids.
func gridLaplacianCSR(nx, ny int, shift float64) *CSR {
	n := nx * ny
	rowPtr := make([]int, n+1)
	colIdx := make([]int, 0, 5*n)
	val := make([]float64, 0, 5*n)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			i := iy*nx + ix
			deg := 0.0
			if iy > 0 {
				colIdx = append(colIdx, i-nx)
				val = append(val, -1)
				deg++
			}
			if ix > 0 {
				colIdx = append(colIdx, i-1)
				val = append(val, -1)
				deg++
			}
			diagAt := len(val)
			colIdx = append(colIdx, i)
			val = append(val, 0)
			if ix < nx-1 {
				colIdx = append(colIdx, i+1)
				val = append(val, -1)
				deg++
			}
			if iy < ny-1 {
				colIdx = append(colIdx, i+nx)
				val = append(val, -1)
				deg++
			}
			val[diagAt] = deg + shift
			rowPtr[i+1] = len(val)
		}
	}
	return NewCSR(n, n, rowPtr, colIdx, val)
}

func residualNorm(a *CSR, x, b []float64) float64 {
	r := a.MulVec(x)
	s := 0.0
	for i := range r {
		d := b[i] - r[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// TestICExactOnTridiagonal: IC(0) on a tridiagonal matrix has no dropped
// fill, so it equals the exact Cholesky factor and Apply inverts A.
func TestICExactOnTridiagonal(t *testing.T) {
	a := gridLaplacianCSR(9, 1, 0.5) // 1-D chain → tridiagonal
	ic, err := NewIC(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b := make([]float64, a.Rows())
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	z := make([]float64, a.Rows())
	ic.Apply(z, b)
	if res := residualNorm(a, z, b); res > 1e-10 {
		t.Fatalf("tridiagonal IC should be exact, residual %g", res)
	}
}

// TestICFactorMatchesPattern: L·Lᵀ reproduces A exactly on A's own sparsity
// pattern (the defining property of IC(0)).
func TestICFactorMatchesPattern(t *testing.T) {
	a := gridLaplacianCSR(6, 5, 0.3)
	ic, err := NewIC(a)
	if err != nil {
		t.Fatal(err)
	}
	l := ic.L()
	n := a.Rows()
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			aij := a.At(i, j)
			if aij == 0 {
				continue
			}
			// (L Lᵀ)_ij = Σ_k L_ik L_jk
			s := 0.0
			for k := 0; k <= j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			if math.Abs(s-aij) > 1e-12 {
				t.Fatalf("(LLᵀ)[%d][%d] = %g, A = %g", i, j, s, aij)
			}
		}
	}
}

// TestICBeatsPlainCG is the satellite property test: on the grid Laplacian,
// IC(0)-preconditioned CG must take strictly fewer iterations than
// unpreconditioned CG to the same tolerance.
func TestICBeatsPlainCG(t *testing.T) {
	a := gridLaplacianCSR(48, 48, 0.05)
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, a.Rows())
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, plainIt, err := SolveCG(a, b, nil, CGOptions{Tol: 1e-10, Precond: Identity{}})
	if err != nil {
		t.Fatalf("plain CG: %v", err)
	}
	ic, err := NewIC(a)
	if err != nil {
		t.Fatal(err)
	}
	x, icIt, err := SolveCG(a, b, nil, CGOptions{Tol: 1e-10, Precond: ic})
	if err != nil {
		t.Fatalf("IC-PCG: %v", err)
	}
	if icIt >= plainIt {
		t.Fatalf("IC-PCG took %d iterations, plain CG %d — preconditioner not helping", icIt, plainIt)
	}
	bnorm := norm2(b)
	if res := residualNorm(a, x, b); res > 1e-9*bnorm {
		t.Fatalf("IC-PCG residual %g exceeds 1e-9·‖b‖", res)
	}
	t.Logf("grid 48×48: plain CG %d iters, IC(0)-PCG %d iters", plainIt, icIt)
}

// TestICConverges512 is the satellite convergence test at 512×512 — a
// quarter-million unknowns, the scale the sparse transient backend targets.
func TestICConverges512(t *testing.T) {
	if testing.Short() {
		t.Skip("512×512 solve skipped in -short mode")
	}
	a := gridLaplacianCSR(512, 512, 0.01)
	n := a.Rows()
	rng := rand.New(rand.NewSource(11))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.Float64()
	}
	ic, err := NewIC(a)
	if err != nil {
		t.Fatal(err)
	}
	x, it, err := SolveCG(a, b, nil, CGOptions{Tol: 1e-10, Precond: ic})
	if err != nil {
		t.Fatalf("512×512 IC-PCG: %v after %d iterations", err, it)
	}
	if res := residualNorm(a, x, b); res > 1e-9*norm2(b) {
		t.Fatalf("512×512 residual %g", res)
	}
	t.Logf("512×512 (n=%d, nnz=%d): converged in %d iterations", n, a.NNZ(), it)
}

// TestCGSolverZeroAlloc: the reusable solver must not allocate per Solve —
// the contract the transient hot loop depends on.
func TestCGSolverZeroAlloc(t *testing.T) {
	a := gridLaplacianCSR(24, 24, 0.1)
	n := a.Rows()
	ic, err := NewIC(a)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCGSolver(a, CGOptions{Tol: 1e-10, Precond: ic})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.Solve(x, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("CGSolver.Solve allocates %v objects per run, want 0", allocs)
	}
}

// TestCGSolverWarmStart: solving from the previous solution converges in
// zero iterations, the property the transient Step leans on.
func TestCGSolverWarmStart(t *testing.T) {
	a := gridLaplacianCSR(16, 16, 0.2)
	n := a.Rows()
	s, err := NewCGSolver(a, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	cold, err := s.Solve(x, b)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Solve(x, b) // x already the solution
	if err != nil {
		t.Fatal(err)
	}
	if warm != 0 {
		t.Fatalf("warm re-solve took %d iterations, want 0 (cold took %d)", warm, cold)
	}
}

func TestNewCSRValidation(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("bad rowPtr length", func() {
		NewCSR(2, 2, []int{0, 1}, []int{0}, []float64{1})
	})
	expectPanic("unsorted columns", func() {
		NewCSR(1, 3, []int{0, 2}, []int{2, 0}, []float64{1, 1})
	})
	expectPanic("column out of range", func() {
		NewCSR(1, 2, []int{0, 1}, []int{5}, []float64{1})
	})
	// Well-formed input round-trips.
	c := NewCSR(2, 2, []int{0, 2, 3}, []int{0, 1, 1}, []float64{2, -1, 3})
	if c.At(0, 1) != -1 || c.At(1, 1) != 3 || c.At(1, 0) != 0 {
		t.Fatal("NewCSR contents wrong")
	}
}
