package sparse

import (
	"fmt"
	"math"
)

// Blocked multi-RHS preconditioned conjugate gradient. Transient stepping
// across a benchmark suite solves the SAME matrix against many right-hand
// sides per time step, and the per-solve cost at mesh sizes past L2 is
// memory traffic: every PCG iteration streams the matrix (and the IC
// factor) once per RHS. BatchCGSolver interleaves nrhs systems — element
// (i, c) lives at x[i*nrhs+c] — so each matrix and factor traversal serves
// every RHS at once, amortizing the dominant stream nrhs ways while the
// per-column arithmetic stays untouched.
//
// Equivalence contract: per column, the floating-point operations execute
// in exactly the order of a CGSolver.Solve on that column alone — the same
// k-ascending SpMV accumulation, the same dotBlock-blocked reductions
// combined serially in block order, the same update sequence — and columns
// that converge are frozen (no further state updates), exactly where the
// looped solve would have returned. SolveBatch is therefore bitwise
// identical to looping Solve over the columns, at any worker count. Tests
// assert this, not just a tolerance.

// BatchCGSolver solves A·X = B for a fixed column count with one matrix
// traversal per PCG iteration. Workspace — including every parallel stage
// closure — is allocated at construction; SolveBatch allocates nothing.
// Not safe for concurrent use.
type BatchCGSolver struct {
	a       *CSR
	pre     Preconditioner
	tol     float64
	maxIter int
	n, m    int

	t    team
	sums []float64 // numDotBlocks(n) * m reduction blocks

	// interleaved n×m workspaces
	r, z, p, ap []float64

	// per-column state
	bnorm, rn2, rz, pap, sc []float64
	active                  []bool
	iters                   []int

	// staged operands for the prebuilt stages
	sx, sy, sz, sw []float64

	fnSpMV, fnDot, fnAxpy2, fnXpBY, fnSub func(lo, hi int)

	// preconditioner application, chosen at construction
	applyPreBatch func(z, r []float64)
	// fallback per-column scratch (generic Preconditioner)
	colZ, colR []float64
	// Chebyshev batch workspace
	chRes, chW, chD []float64
}

// NewBatchCGSolver prepares a solver for nrhs simultaneous systems on the
// SPD matrix a. Options mirror NewCGSolver: nil Precond builds Jacobi; IC,
// Jacobi and Cheby preconditioners get dedicated batch applications (factor
// traversed once for all columns), anything else is applied column by
// column.
func NewBatchCGSolver(a *CSR, nrhs int, opt CGOptions) (*BatchCGSolver, error) {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("sparse: batch CG needs square matrix, got %dx%d", a.rows, a.cols))
	}
	if nrhs < 1 {
		panic(fmt.Sprintf("sparse: batch CG needs nrhs >= 1, got %d", nrhs))
	}
	pre := opt.Precond
	if pre == nil {
		j, err := NewJacobi(a)
		if err != nil {
			return nil, err
		}
		pre = j
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	m := nrhs
	s := &BatchCGSolver{
		a: a, pre: pre, tol: tol, maxIter: maxIter, n: n, m: m,
		sums: make([]float64, numDotBlocks(n)*m),
		r:    make([]float64, n*m), z: make([]float64, n*m),
		p: make([]float64, n*m), ap: make([]float64, n*m),
		bnorm: make([]float64, m), rn2: make([]float64, m),
		rz: make([]float64, m), pap: make([]float64, m),
		sc:     make([]float64, m),
		active: make([]bool, m), iters: make([]int, m),
	}
	s.t.init(opt.Workers)
	s.buildStages()
	s.bindPreconditioner()
	return s, nil
}

// NRHS returns the column count the solver was built for.
func (s *BatchCGSolver) NRHS() int { return s.m }

// buildStages prebuilds the interleaved parallel kernels. Partitioning is
// by row (SpMV, elementwise) or by reduction block (dots): one writer per
// output element, per-column operation order fixed — bitwise identical
// across worker counts, like the single-RHS kernels in parallel.go.
func (s *BatchCGSolver) buildStages() {
	m := s.m
	s.fnSpMV = func(lo, hi int) {
		a := s.a
		for i := lo; i < hi; i++ {
			yi := s.sy[i*m : i*m+m]
			for c := range yi {
				yi[c] = 0
			}
			for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
				v := a.val[k]
				xj := s.sx[a.colIdx[k]*m : a.colIdx[k]*m+m]
				for c, xv := range xj {
					yi[c] += v * xv
				}
			}
		}
	}
	s.fnDot = func(lo, hi int) {
		for b := lo; b < hi; b++ {
			start := b * dotBlock
			end := start + dotBlock
			if end > s.n {
				end = s.n
			}
			sums := s.sums[b*m : b*m+m]
			for c := range sums {
				sums[c] = 0
			}
			for i := start; i < end; i++ {
				xi := s.sx[i*m : i*m+m]
				yi := s.sy[i*m : i*m+m]
				for c, xv := range xi {
					sums[c] += xv * yi[c]
				}
			}
		}
	}
	s.fnAxpy2 = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			base := i * m
			for c := 0; c < m; c++ {
				if !s.active[c] {
					continue
				}
				a := s.sc[c]
				s.sx[base+c] += a * s.sz[base+c]
				s.sy[base+c] -= a * s.sw[base+c]
			}
		}
	}
	s.fnXpBY = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			base := i * m
			for c := 0; c < m; c++ {
				if !s.active[c] {
					continue
				}
				s.sx[base+c] = s.sy[base+c] + s.sc[c]*s.sx[base+c]
			}
		}
	}
	s.fnSub = func(lo, hi int) {
		for i := lo * m; i < hi*m; i++ {
			s.sx[i] = s.sy[i] - s.sx[i]
		}
	}
}

// batchRowChunk is the minimum rows per share for interleaved kernels: each
// row carries m elements, so the threshold scales down with the width.
func (s *BatchCGSolver) batchRowChunk() int {
	c := vecChunk / s.m
	if c < 1 {
		c = 1
	}
	return c
}

func (s *BatchCGSolver) bMulVec(y, x []float64) {
	s.sy, s.sx = y, x
	rc := rowChunk / s.m
	if rc < 1 {
		rc = 1
	}
	s.t.run(s.n, rc, s.fnSpMV)
}

// bDot computes out[c] = Σ_i x[i·m+c]·y[i·m+c] with the dotBlock-blocked
// deterministic reduction per column.
func (s *BatchCGSolver) bDot(x, y, out []float64) {
	s.sx, s.sy = x, y
	nb := numDotBlocks(s.n)
	s.t.run(nb, dotBlockChunk, s.fnDot)
	m := s.m
	for c := 0; c < m; c++ {
		total := 0.0
		for b := 0; b < nb; b++ {
			total += s.sums[b*m+c]
		}
		out[c] = total
	}
}

func (s *BatchCGSolver) bAxpy2(alpha []float64, x, p, r, ap []float64) {
	copy(s.sc, alpha)
	s.sx, s.sz, s.sy, s.sw = x, p, r, ap
	s.t.run(s.n, s.batchRowChunk(), s.fnAxpy2)
}

func (s *BatchCGSolver) bXpBY(p, z, beta []float64) {
	copy(s.sc, beta)
	s.sx, s.sy = p, z
	s.t.run(s.n, s.batchRowChunk(), s.fnXpBY)
}

func (s *BatchCGSolver) bSub(r, b []float64) {
	s.sx, s.sy = r, b
	s.t.run(s.n, s.batchRowChunk(), s.fnSub)
}

// SolveBatch solves A·X = B for every column in place: x and b are
// interleaved n×nrhs buffers (element (i, c) at i*nrhs+c), x holding the
// warm starts on entry and the solutions on return. It returns per-column
// iteration counts (the slice is reused by the next call) and the first
// error: ErrNoConvergence if any column ran out of iterations, or the
// pᵀAp breakdown error. A column that fails is frozen where the equivalent
// single-RHS Solve would have stopped; the remaining columns still finish.
// Allocates nothing.
func (s *BatchCGSolver) SolveBatch(x, b []float64) ([]int, error) {
	n, m := s.n, s.m
	if len(x) != n*m || len(b) != n*m {
		panic(fmt.Sprintf("sparse: SolveBatch lengths x=%d b=%d, want %d", len(x), len(b), n*m))
	}
	var firstErr error
	s.bDot(b, b, s.rn2)
	remaining := 0
	for c := 0; c < m; c++ {
		s.bnorm[c] = math.Sqrt(s.rn2[c])
		s.iters[c] = 0
		if s.bnorm[c] == 0 {
			s.active[c] = false
			for i := 0; i < n; i++ {
				x[i*m+c] = 0
			}
		} else {
			s.active[c] = true
			remaining++
		}
	}
	if remaining == 0 {
		return s.iters, nil
	}
	s.bMulVec(s.r, x)
	s.bSub(s.r, b)
	s.bDot(s.r, s.r, s.rn2)
	for c := 0; c < m; c++ {
		if s.active[c] && math.Sqrt(s.rn2[c]) <= s.tol*s.bnorm[c] {
			s.active[c] = false // warm start already within tolerance
			remaining--
		}
	}
	if remaining == 0 {
		return s.iters, nil
	}
	s.applyPreBatch(s.z, s.r)
	copy(s.p, s.z)
	s.bDot(s.r, s.z, s.rz)
	for it := 1; it <= s.maxIter; it++ {
		s.bMulVec(s.ap, s.p)
		s.bDot(s.p, s.ap, s.pap)
		for c := 0; c < m; c++ {
			if !s.active[c] {
				s.sc[c] = 0
				continue
			}
			if s.pap[c] <= 0 {
				if firstErr == nil {
					firstErr = fmt.Errorf("sparse: column %d: pᵀAp = %g <= 0; matrix not SPD", c, s.pap[c])
				}
				s.iters[c] = it
				s.active[c] = false
				s.sc[c] = 0
				remaining--
				continue
			}
			s.sc[c] = s.rz[c] / s.pap[c]
		}
		if remaining == 0 {
			return s.iters, firstErr
		}
		s.bAxpy2(s.sc, x, s.p, s.r, s.ap)
		s.bDot(s.r, s.r, s.rn2)
		for c := 0; c < m; c++ {
			if s.active[c] && math.Sqrt(s.rn2[c]) <= s.tol*s.bnorm[c] {
				s.iters[c] = it
				s.active[c] = false
				remaining--
			}
		}
		if remaining == 0 {
			return s.iters, firstErr
		}
		s.applyPreBatch(s.z, s.r)
		s.bDot(s.r, s.z, s.rn2) // rn2 reused as rzNew
		for c := 0; c < m; c++ {
			if !s.active[c] {
				s.sc[c] = 0
				continue
			}
			s.sc[c] = s.rn2[c] / s.rz[c]
			s.rz[c] = s.rn2[c]
		}
		s.bXpBY(s.p, s.z, s.sc)
	}
	for c := 0; c < m; c++ {
		if s.active[c] {
			s.iters[c] = s.maxIter
			s.active[c] = false
		}
	}
	if firstErr == nil {
		firstErr = ErrNoConvergence
	}
	return s.iters, firstErr
}

// bindPreconditioner selects the batch application for the concrete
// preconditioner type. IC traverses the factor once for all columns with
// level-scheduled parallel sweeps; Jacobi and Chebyshev are row-partitioned
// interleaved kernels; anything else falls back to column-by-column Apply.
func (s *BatchCGSolver) bindPreconditioner() {
	switch p := s.pre.(type) {
	case *Jacobi:
		stage := func(lo, hi int) {
			m := s.m
			for i := lo; i < hi; i++ {
				d := p.invD[i]
				base := i * m
				for c := 0; c < m; c++ {
					s.sx[base+c] = d * s.sy[base+c]
				}
			}
		}
		s.applyPreBatch = func(z, r []float64) {
			s.sx, s.sy = z, r
			s.t.run(s.n, s.batchRowChunk(), stage)
		}
	case *IC:
		s.bindIC(p)
	case *Cheby:
		s.bindCheby(p)
	default:
		s.colZ = make([]float64, s.n)
		s.colR = make([]float64, s.n)
		s.applyPreBatch = func(z, r []float64) {
			m := s.m
			for c := 0; c < m; c++ {
				UnpackColumn(s.colR, r, c, m)
				s.pre.Apply(s.colZ, s.colR)
				PackColumn(z, s.colZ, c, m)
			}
		}
	}
}

// bindIC prebuilds the multi-RHS level-scheduled triangular sweeps: within
// each level the rows are independent, and each row's forward/backward
// substitution runs for all columns while the factor row is hot. Per
// column the operation order matches IC.Apply exactly.
func (s *BatchCGSolver) bindIC(p *IC) {
	m := s.m
	l, lt := p.l, p.lt
	var rowsCur []int
	fwdStage := func(lo, hi int) {
		z, r := s.sx, s.sy
		for idx := lo; idx < hi; idx++ {
			i := rowsCur[idx]
			base := i * m
			zi := z[base : base+m]
			copy(zi, r[base:base+m])
			end := l.rowPtr[i+1] - 1 // diagonal is last
			for k := l.rowPtr[i]; k < end; k++ {
				v := l.val[k]
				zj := z[l.colIdx[k]*m : l.colIdx[k]*m+m]
				for c, zv := range zj {
					zi[c] -= v * zv
				}
			}
			d := l.val[end]
			for c := range zi {
				zi[c] /= d
			}
		}
	}
	n := s.n
	bwdStage := func(lo, hi int) {
		z := s.sx
		for idx := lo; idx < hi; idx++ {
			i := n - 1 - rowsCur[idx]
			base := i * m
			zi := z[base : base+m]
			start := lt.rowPtr[i] // diagonal is first
			for k := start + 1; k < lt.rowPtr[i+1]; k++ {
				v := lt.val[k]
				zj := z[lt.colIdx[k]*m : lt.colIdx[k]*m+m]
				for c, zv := range zj {
					zi[c] -= v * zv
				}
			}
			d := lt.val[start]
			for c := range zi {
				zi[c] /= d
			}
		}
	}
	levelChunk := levelRowChunk / m
	if levelChunk < 1 {
		levelChunk = 1
	}
	s.applyPreBatch = func(z, r []float64) {
		s.sx, s.sy = z, r
		for lv := 0; lv < p.fwd.numLevels(); lv++ {
			rowsCur = p.fwd.rows[p.fwd.ptr[lv]:p.fwd.ptr[lv+1]]
			s.t.run(len(rowsCur), levelChunk, fwdStage)
		}
		for lv := 0; lv < p.bwd.numLevels(); lv++ {
			rowsCur = p.bwd.rows[p.bwd.ptr[lv]:p.bwd.ptr[lv+1]]
			s.t.run(len(rowsCur), levelChunk, bwdStage)
		}
		rowsCur = nil
	}
}

// bindCheby prebuilds the multi-RHS Chebyshev semi-iteration: the
// recurrence scalars are column-independent (they depend only on the
// spectrum bounds), so the batch application is the single-RHS stage
// sequence over interleaved vectors with batch SpMVs.
func (s *BatchCGSolver) bindCheby(p *Cheby) {
	m, n := s.m, s.n
	s.chRes = make([]float64, n*m)
	s.chW = make([]float64, n*m)
	s.chD = make([]float64, n*m)
	var s1, s2 float64
	var z, r []float64
	stFirst := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f := s1 * p.invD[i]
			base := i * m
			for c := 0; c < m; c++ {
				v := f * r[base+c]
				z[base+c] = v
				s.chD[base+c] = v
			}
		}
	}
	stResid := func(lo, hi int) {
		for i := lo * m; i < hi*m; i++ {
			s.chRes[i] = r[i] - s.chRes[i]
		}
	}
	stScaleW := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d := p.invD[i]
			base := i * m
			for c := 0; c < m; c++ {
				s.chW[base+c] = d * s.chRes[base+c]
			}
		}
	}
	stUpdate := func(lo, hi int) {
		a1, a2 := s1, s2
		for i := lo * m; i < hi*m; i++ {
			s.chD[i] = a1*s.chD[i] + a2*s.chW[i]
			z[i] += s.chD[i]
		}
	}
	rc := s.batchRowChunk()
	s.applyPreBatch = func(zz, rr []float64) {
		z, r = zz, rr
		theta := (p.lmax + p.lmin) / 2
		delta := (p.lmax - p.lmin) / 2
		sigma := theta / delta
		s1 = 1 / theta
		s.t.run(n, rc, stFirst)
		rho := 1 / sigma
		for k := 1; k < p.degree; k++ {
			s.bMulVec(s.chRes, z)
			s.t.run(n, rc, stResid)
			s.t.run(n, rc, stScaleW)
			rhoNew := 1 / (2*sigma - rho)
			s1 = rhoNew * rho
			s2 = 2 * rhoNew / delta
			s.t.run(n, rc, stUpdate)
			rho = rhoNew
		}
		z, r = nil, nil
	}
}

// PackColumn scatters the n-vector src into column c of the interleaved
// n×nrhs buffer dst.
func PackColumn(dst, src []float64, c, nrhs int) {
	for i, v := range src {
		dst[i*nrhs+c] = v
	}
}

// UnpackColumn gathers column c of the interleaved n×nrhs buffer src into
// the n-vector dst.
func UnpackColumn(dst, src []float64, c, nrhs int) {
	for i := range dst {
		dst[i] = src[i*nrhs+c]
	}
}
