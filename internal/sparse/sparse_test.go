package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gridLaplacian builds the SPD matrix of a w-by-h resistive grid with a
// small conductance to ground at every node (so it is nonsingular).
func gridLaplacian(w, h int, gGround float64) *CSR {
	n := w * h
	t := NewTriplet(n, n)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := id(x, y)
			t.Add(i, i, gGround)
			if x+1 < w {
				j := id(x+1, y)
				t.Add(i, i, 1)
				t.Add(j, j, 1)
				t.Add(i, j, -1)
				t.Add(j, i, -1)
			}
			if y+1 < h {
				j := id(x, y+1)
				t.Add(i, i, 1)
				t.Add(j, j, 1)
				t.Add(i, j, -1)
				t.Add(j, i, -1)
			}
		}
	}
	return t.ToCSR()
}

func TestTripletSumsDuplicates(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Add(0, 1, 1.5)
	tr.Add(0, 1, 2.5)
	tr.Add(1, 0, -1)
	tr.Add(1, 0, 1) // cancels to zero → dropped
	c := tr.ToCSR()
	if got := c.At(0, 1); got != 4 {
		t.Fatalf("At(0,1) = %v, want 4", got)
	}
	if got := c.At(1, 0); got != 0 {
		t.Fatalf("At(1,0) = %v, want 0", got)
	}
	if c.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (zero dropped)", c.NNZ())
	}
}

func TestTripletOutOfRangePanics(t *testing.T) {
	tr := NewTriplet(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Add(2, 0, 1)
}

func TestCSRAtAndMulVec(t *testing.T) {
	tr := NewTriplet(3, 3)
	tr.Add(0, 0, 2)
	tr.Add(0, 2, 1)
	tr.Add(1, 1, 3)
	tr.Add(2, 0, 4)
	c := tr.ToCSR()
	y := c.MulVec([]float64{1, 2, 3})
	want := []float64{5, 6, 4}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-15 {
			t.Fatalf("MulVec = %v, want %v", y, want)
		}
	}
	if c.At(2, 2) != 0 {
		t.Fatal("missing entry should read 0")
	}
}

func TestDiag(t *testing.T) {
	tr := NewTriplet(3, 3)
	tr.Add(0, 0, 1)
	tr.Add(2, 2, 5)
	d := tr.ToCSR().Diag()
	if d[0] != 1 || d[1] != 0 || d[2] != 5 {
		t.Fatalf("Diag = %v", d)
	}
}

// Property: CG solves random grid Laplacian systems to tight tolerance.
func TestCGGridSystems(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 2 + rng.Intn(8)
		h := 2 + rng.Intn(8)
		a := gridLaplacian(w, h, 0.5)
		n := w * h
		xStar := make([]float64, n)
		for i := range xStar {
			xStar[i] = rng.NormFloat64()
		}
		b := a.MulVec(xStar)
		x, _, err := SolveCG(a, b, nil, CGOptions{Tol: 1e-12})
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-xStar[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCGWarmStartConverges(t *testing.T) {
	a := gridLaplacian(10, 10, 1)
	b := make([]float64, 100)
	for i := range b {
		b[i] = float64(i % 5)
	}
	xCold, itCold, err := SolveCG(a, b, nil, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the solution: should converge (almost) immediately.
	_, itWarm, err := SolveCG(a, b, xCold, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if itWarm >= itCold {
		t.Errorf("warm start took %d iters, cold took %d", itWarm, itCold)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := gridLaplacian(4, 4, 1)
	x, it, err := SolveCG(a, make([]float64, 16), nil, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if it != 0 {
		t.Errorf("zero rhs took %d iterations", it)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero rhs must give zero solution")
		}
	}
}

func TestCGRejectsNonSPDDiag(t *testing.T) {
	tr := NewTriplet(2, 2)
	tr.Add(0, 0, -1)
	tr.Add(1, 1, 1)
	if _, _, err := SolveCG(tr.ToCSR(), []float64{1, 1}, nil, CGOptions{}); err == nil {
		t.Fatal("expected error for negative diagonal")
	}
}

func TestCGIterationBudget(t *testing.T) {
	a := gridLaplacian(12, 12, 0.001) // poorly conditioned
	b := make([]float64, 144)
	b[0] = 1
	_, _, err := SolveCG(a, b, nil, CGOptions{Tol: 1e-14, MaxIter: 2})
	if err == nil {
		t.Fatal("expected ErrNoConvergence with MaxIter=2")
	}
}
