package sparse

import (
	"fmt"
	"math"
	"sort"
)

// IC is a zero-fill incomplete Cholesky preconditioner: A ≈ L·Lᵀ with L
// restricted to the sparsity pattern of A's lower triangle. For M-matrices
// — the power-grid conductance systems this package targets — the
// factorization is guaranteed to exist (Meijerink–van der Vorst), and it
// cuts PCG iteration counts well below Jacobi because it captures the
// neighbor coupling, not just the diagonal.
//
// NewICModified builds the modified variant (MIC): fill that IC(0) would
// discard is instead subtracted from the two affected diagonals, which
// preserves row sums and improves the preconditioned condition number of
// mesh Laplacians from O(h⁻²) to O(h⁻¹) — the difference between hundreds
// and tens of CG iterations on fine power grids.
type IC struct {
	n  int
	l  *CSR // lower triangle including diagonal; diagonal last in each row
	lt *CSR // Lᵀ; diagonal first in each row

	// Level schedules and prebuilt sweep stages for the parallel applyTeam
	// path (see levels.go). rowsCur stages the active level's row list; z
	// and r stage the operands so the sweeps allocate nothing.
	fwd, bwd           levelSchedule
	rowsCur            []int
	z, r               []float64
	fwdStage, bwdStage func(lo, hi int)
}

// NewIC factors the symmetric matrix a into a plain IC(0) preconditioner.
// It fails if a row has no diagonal entry or a pivot comes out
// non-positive, which signals the matrix is not an M-matrix-like SPD
// system.
func NewIC(a *CSR) (*IC, error) { return newIC(a, 0) }

// NewICModified factors a into a relaxed modified incomplete Cholesky
// preconditioner: dropped fill is subtracted from the diagonals scaled by
// omega ∈ [0, 1]. omega = 0 is plain IC(0); omega = 1 preserves row sums
// exactly but can break down, so ~0.95 is the usual production choice.
func NewICModified(a *CSR, omega float64) (*IC, error) {
	if omega < 0 || omega > 1 {
		return nil, fmt.Errorf("sparse: NewICModified omega %g outside [0, 1]", omega)
	}
	return newIC(a, omega)
}

// newIC runs right-looking (submatrix) incomplete Cholesky on the lower
// triangle of a, which must be structurally symmetric. After eliminating
// column k, every update l_ij -= l_ik·l_jk with (i, j) inside the pattern
// is applied; updates outside it are dropped (IC) or routed to the
// diagonals of rows i and j (MIC, scaled by omega).
func newIC(a *CSR, omega float64) (*IC, error) {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("sparse: NewIC needs square matrix, got %dx%d", a.rows, a.cols))
	}
	// Extract the lower-triangular pattern (columns ≤ i) with a's values.
	nnz := 0
	for i := 0; i < n; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			if a.colIdx[k] <= i {
				nnz++
			}
		}
	}
	l := &CSR{
		rows: n, cols: n,
		rowPtr: make([]int, n+1),
		colIdx: make([]int, 0, nnz),
		val:    make([]float64, 0, nnz),
	}
	for i := 0; i < n; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			if a.colIdx[k] <= i {
				l.colIdx = append(l.colIdx, a.colIdx[k])
				l.val = append(l.val, a.val[k])
			}
		}
		l.rowPtr[i+1] = len(l.colIdx)
		if end := l.rowPtr[i+1]; end == l.rowPtr[i] || l.colIdx[end-1] != i {
			return nil, fmt.Errorf("sparse: NewIC: row %d has no diagonal entry", i)
		}
	}
	diagIdx := func(i int) int { return l.rowPtr[i+1] - 1 }
	// below[k] enumerates rows i > k with (i, k) in the pattern; by
	// structural symmetry that is exactly the columns > k of a's row k.
	var rows []int
	var liks []float64
	var idxs []int
	for k := 0; k < n; k++ {
		dk := l.val[diagIdx(k)]
		if dk <= 0 {
			return nil, fmt.Errorf("sparse: NewIC: non-positive pivot %g at row %d", dk, k)
		}
		dk = math.Sqrt(dk)
		l.val[diagIdx(k)] = dk
		rows, liks, idxs = rows[:0], liks[:0], idxs[:0]
		for kk := a.rowPtr[k]; kk < a.rowPtr[k+1]; kk++ {
			i := a.colIdx[kk]
			if i <= k {
				continue
			}
			idx := locate(l, i, k)
			if idx < 0 {
				return nil, fmt.Errorf("sparse: NewIC: pattern not symmetric at (%d,%d)", i, k)
			}
			l.val[idx] /= dk
			rows = append(rows, i)
			liks = append(liks, l.val[idx])
			idxs = append(idxs, idx)
		}
		for ai, i := range rows {
			lik := liks[ai]
			for bi := 0; bi <= ai; bi++ {
				j := rows[bi]
				v := lik * liks[bi]
				switch {
				case j == i:
					l.val[diagIdx(i)] -= v
				default:
					if idx := locate(l, i, j); idx >= 0 {
						l.val[idx] -= v
					} else if omega > 0 {
						// MIC: the full-matrix update would also hit the
						// symmetric entry (j, i), so both row sums lose v.
						l.val[diagIdx(i)] -= omega * v
						l.val[diagIdx(j)] -= omega * v
					}
				}
			}
		}
	}
	m := &IC{n: n, l: l, lt: transposeCSR(l)}
	m.buildSchedules()
	return m, nil
}

// locate returns the index of (i, j) inside l's storage, or -1.
func locate(l *CSR, i, j int) int {
	lo, hi := l.rowPtr[i], l.rowPtr[i+1]
	k := lo + sort.SearchInts(l.colIdx[lo:hi], j)
	if k < hi && l.colIdx[k] == j {
		return k
	}
	return -1
}

// transposeCSR returns mᵀ with columns ascending in every row.
func transposeCSR(m *CSR) *CSR {
	t := &CSR{
		rows: m.cols, cols: m.rows,
		rowPtr: make([]int, m.cols+1),
		colIdx: make([]int, len(m.val)),
		val:    make([]float64, len(m.val)),
	}
	for _, j := range m.colIdx {
		t.rowPtr[j+1]++
	}
	for i := 0; i < t.rows; i++ {
		t.rowPtr[i+1] += t.rowPtr[i]
	}
	next := make([]int, t.rows)
	copy(next, t.rowPtr[:t.rows])
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := m.colIdx[k]
			t.colIdx[next[j]] = i
			t.val[next[j]] = m.val[k]
			next[j]++
		}
	}
	return t
}

// Apply solves L·Lᵀ·z = r by one forward and one backward triangular
// sweep, using z as the only workspace. It allocates nothing.
func (m *IC) Apply(z, r []float64) {
	if len(z) != m.n || len(r) != m.n {
		panic(fmt.Sprintf("sparse: IC.Apply lengths z=%d r=%d, want %d", len(z), len(r), m.n))
	}
	l := m.l
	for i := 0; i < m.n; i++ {
		s := r[i]
		end := l.rowPtr[i+1] - 1 // diagonal is last
		for k := l.rowPtr[i]; k < end; k++ {
			s -= l.val[k] * z[l.colIdx[k]]
		}
		z[i] = s / l.val[end]
	}
	lt := m.lt
	for i := m.n - 1; i >= 0; i-- {
		s := z[i]
		start := lt.rowPtr[i] // diagonal is first
		for k := start + 1; k < lt.rowPtr[i+1]; k++ {
			s -= lt.val[k] * z[lt.colIdx[k]]
		}
		z[i] = s / lt.val[start]
	}
}

// L returns the incomplete Cholesky factor (lower triangular, diagonal
// included), mainly for tests and diagnostics.
func (m *IC) L() *CSR { return m.l }
