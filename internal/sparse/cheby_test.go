package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// TestChebyIsSymmetricOperator: PCG requires a symmetric preconditioner.
// Cheby.Apply is a fixed polynomial in D⁻¹A applied after D⁻¹, which is
// self-adjoint in the A-free inner product: ⟨M⁻¹r₁, r₂⟩ = ⟨r₁, M⁻¹r₂⟩.
// Verified numerically on random vectors.
func TestChebyIsSymmetricOperator(t *testing.T) {
	a := gridLaplacianCSR(23, 17, 0.3)
	n := a.Rows()
	c, err := NewCheby(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	r1 := make([]float64, n)
	r2 := make([]float64, n)
	for i := range r1 {
		r1[i], r2[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	z1 := make([]float64, n)
	z2 := make([]float64, n)
	c.Apply(z1, r1)
	c.Apply(z2, r2)
	lhs := dot(z1, r2)
	rhs := dot(r1, z2)
	scale := math.Abs(lhs) + math.Abs(rhs) + 1
	if math.Abs(lhs-rhs)/scale > 1e-12 {
		t.Fatalf("asymmetric: ⟨Mr₁,r₂⟩=%v vs ⟨r₁,Mr₂⟩=%v", lhs, rhs)
	}
}

// TestChebyIsPositiveOperator: ⟨M⁻¹r, r⟩ > 0 for random r — the SPD half
// of the preconditioner contract (the polynomial stays positive on the
// estimated spectrum interval).
func TestChebyIsPositiveOperator(t *testing.T) {
	a := gridLaplacianCSR(19, 21, 0.2)
	n := a.Rows()
	c, err := NewCheby(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	r := make([]float64, n)
	z := make([]float64, n)
	for trial := 0; trial < 20; trial++ {
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		c.Apply(z, r)
		if q := dot(z, r); q <= 0 {
			t.Fatalf("trial %d: ⟨M⁻¹r, r⟩ = %v, want > 0", trial, q)
		}
	}
}

// TestChebyPCGMatchesDirectSolve: CG preconditioned with Cheby converges to
// the same solution as IC-preconditioned CG (tight tolerance), on grids
// with varying anisotropy.
func TestChebyPCGMatchesDirectSolve(t *testing.T) {
	for _, dims := range [][2]int{{31, 31}, {64, 24}, {17, 53}} {
		a := gridLaplacianCSR(dims[0], dims[1], 0.3)
		n := a.Rows()
		rng := rand.New(rand.NewSource(4))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ch, err := NewCheby(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		xc, itc, err := SolveCG(a, b, nil, CGOptions{Tol: 1e-12, Precond: ch})
		if err != nil {
			t.Fatalf("%v: cheby CG: %v", dims, err)
		}
		ic, err := NewICModified(a, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		xi, _, err := SolveCG(a, b, nil, CGOptions{Tol: 1e-12, Precond: ic})
		if err != nil {
			t.Fatalf("%v: ic CG: %v", dims, err)
		}
		maxDiff := 0.0
		for i := range xc {
			if d := math.Abs(xc[i] - xi[i]); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-8 {
			t.Fatalf("%v: cheby vs ic solutions differ by %v", dims, maxDiff)
		}
		if itc <= 0 {
			t.Fatalf("%v: cheby CG reported %d iterations", dims, itc)
		}
	}
}

// TestChebyCutsIterationsVsJacobi: the whole point of the polynomial — an
// application costs degree SpMVs but the outer iteration count must drop by
// well more than that factor's worth of Jacobi iterations would suggest on
// a stiff grid. We assert a strict iteration-count reduction.
func TestChebyCutsIterationsVsJacobi(t *testing.T) {
	a := gridLaplacianCSR(96, 96, 0.05)
	n := a.Rows()
	b := make([]float64, n)
	rng := rand.New(rand.NewSource(6))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, itJac, err := SolveCG(a, b, nil, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewCheby(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, itCh, err := SolveCG(a, b, nil, CGOptions{Tol: 1e-10, Precond: ch})
	if err != nil {
		t.Fatal(err)
	}
	if itCh*2 >= itJac {
		t.Fatalf("cheby took %d iterations vs jacobi %d; want < half", itCh, itJac)
	}
}

// TestChebyBounds: the power-iteration estimate brackets the true extreme
// eigenvalue of D⁻¹A from above (it is padded 5%), and λmin is positive.
func TestChebyBounds(t *testing.T) {
	a := gridLaplacianCSR(25, 25, 0.5)
	c, err := NewCheby(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	lmin, lmax := c.Bounds()
	if lmin <= 0 || lmax <= lmin {
		t.Fatalf("bounds [%v, %v] not a positive interval", lmin, lmax)
	}
	// For the 5-point Laplacian with shift s, eigenvalues of D⁻¹A lie in
	// (0, 2): Gershgorin on the scaled matrix. λmax estimate must not exceed
	// the padded Gershgorin bound.
	if lmax > 2.1 {
		t.Fatalf("λmax estimate %v exceeds Gershgorin bound 2 (+5%% pad)", lmax)
	}
	if lmax < 1.0 {
		t.Fatalf("λmax estimate %v implausibly small for a mesh Laplacian", lmax)
	}
}

// TestParsePrecond covers the flag surface.
func TestParsePrecond(t *testing.T) {
	cases := map[string]Precond{
		"": PrecondAuto, "auto": PrecondAuto,
		"ic": PrecondIC, "jacobi": PrecondJacobi, "cheby": PrecondCheby,
	}
	for in, want := range cases {
		got, err := ParsePrecond(in)
		if err != nil || got != want {
			t.Fatalf("ParsePrecond(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePrecond("ilu"); err == nil {
		t.Fatal("ParsePrecond(\"ilu\") succeeded, want error")
	}
	for _, p := range []Precond{PrecondAuto, PrecondIC, PrecondJacobi, PrecondCheby} {
		rt, err := ParsePrecond(p.String())
		if err != nil || rt != p {
			t.Fatalf("round trip %v → %q → %v, %v", p, p.String(), rt, err)
		}
	}
}
