package sparse

import (
	"math/rand"
	"runtime"
	"testing"
)

// batchFixture builds an SPD grid system with nrhs random right-hand sides
// and warm starts, returned both interleaved and as per-column slices.
func batchFixture(nx, ny, nrhs int, seed int64) (a *CSR, xI, bI []float64, xCols, bCols [][]float64) {
	a = gridLaplacianCSR(nx, ny, 0.3)
	n := a.Rows()
	rng := rand.New(rand.NewSource(seed))
	xI = make([]float64, n*nrhs)
	bI = make([]float64, n*nrhs)
	xCols = make([][]float64, nrhs)
	bCols = make([][]float64, nrhs)
	for c := 0; c < nrhs; c++ {
		xCols[c] = make([]float64, n)
		bCols[c] = make([]float64, n)
		for i := 0; i < n; i++ {
			bCols[c][i] = rng.NormFloat64()
			xCols[c][i] = 0.05 * rng.NormFloat64()
		}
		PackColumn(bI, bCols[c], c, nrhs)
		PackColumn(xI, xCols[c], c, nrhs)
	}
	return
}

// mkPre builds the named preconditioner for a (nil = solver default).
func mkPre(t *testing.T, a *CSR, name string) Preconditioner {
	t.Helper()
	var pre Preconditioner
	var err error
	switch name {
	case "jacobi":
		pre, err = NewJacobi(a)
	case "ic":
		pre, err = NewICModified(a, 1.0)
	case "cheby":
		pre, err = NewCheby(a, 0)
	case "identity":
		return Identity{} // exercises the generic per-column fallback
	}
	if err != nil {
		t.Fatal(err)
	}
	return pre
}

// TestSolveBatchBitwiseMatchesLooped: the core equivalence contract — for
// every preconditioner family, SolveBatch produces bit-for-bit the same
// solutions and iteration counts as looping CGSolver.Solve column by
// column. Not a tolerance comparison: the operation orders are engineered
// to coincide.
func TestSolveBatchBitwiseMatchesLooped(t *testing.T) {
	const nrhs = 3
	for _, name := range []string{"jacobi", "ic", "cheby", "identity"} {
		a, xI, bI, xCols, bCols := batchFixture(33, 27, nrhs, 12)
		opt := CGOptions{Tol: 1e-11, Precond: mkPre(t, a, name)}
		bs, err := NewBatchCGSolver(a, nrhs, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		iters, err := bs.SolveBatch(xI, bI)
		if err != nil {
			t.Fatalf("%s: batch: %v", name, err)
		}
		ss, err := NewCGSolver(a, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, a.Rows())
		for c := 0; c < nrhs; c++ {
			itWant, err := ss.Solve(xCols[c], bCols[c])
			if err != nil {
				t.Fatalf("%s col %d: looped: %v", name, c, err)
			}
			if iters[c] != itWant {
				t.Fatalf("%s col %d: %d iterations, looped %d", name, c, iters[c], itWant)
			}
			UnpackColumn(got, xI, c, nrhs)
			for i := range got {
				if got[i] != xCols[c][i] {
					t.Fatalf("%s col %d: x[%d] = %v, looped %v (not bitwise identical)",
						name, c, i, got[i], xCols[c][i])
				}
			}
		}
	}
}

// TestSolveBatchInvariantUnderParallelism: batch solves are bitwise
// identical across worker counts too.
func TestSolveBatchInvariantUnderParallelism(t *testing.T) {
	const nrhs = 4
	var ref []float64
	var refIt []int
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		a, xI, bI, _, _ := batchFixture(29, 31, nrhs, 21)
		ic := mkPre(t, a, "ic")
		bs, err := NewBatchCGSolver(a, nrhs, CGOptions{Tol: 1e-11, Precond: ic, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		iters, err := bs.SolveBatch(xI, bI)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = append([]float64(nil), xI...)
			refIt = append([]int(nil), iters...)
			continue
		}
		for c := range refIt {
			if iters[c] != refIt[c] {
				t.Fatalf("workers=%d col %d: %d iterations, want %d", w, c, iters[c], refIt[c])
			}
		}
		for i := range ref {
			if xI[i] != ref[i] {
				t.Fatalf("workers=%d: x[%d] = %v, want %v (not bitwise identical)", w, i, xI[i], ref[i])
			}
		}
	}
}

// TestSolveBatchMixedConvergence: columns converging at different
// iterations freeze independently — a trivially-converged warm start and a
// zero RHS ride along with hard columns without perturbing them.
func TestSolveBatchMixedConvergence(t *testing.T) {
	const nrhs = 3
	a, xI, bI, xCols, bCols := batchFixture(25, 25, nrhs, 30)
	n := a.Rows()
	// Column 0: zero RHS → solution zeroed, 0 iterations.
	for i := 0; i < n; i++ {
		bI[i*nrhs] = 0
		bCols[0][i] = 0
	}
	// Column 1: warm start = exact solution of its system.
	opt := CGOptions{Tol: 1e-11, Precond: mkPre(t, a, "ic")}
	exact, _, err := SolveCG(a, bCols[1], nil, CGOptions{Tol: 1e-14, Precond: mkPre(t, a, "ic")})
	if err != nil {
		t.Fatal(err)
	}
	copy(xCols[1], exact)
	PackColumn(xI, exact, 1, nrhs)

	bs, err := NewBatchCGSolver(a, nrhs, opt)
	if err != nil {
		t.Fatal(err)
	}
	iters, err := bs.SolveBatch(xI, bI)
	if err != nil {
		t.Fatal(err)
	}
	if iters[0] != 0 {
		t.Fatalf("zero-RHS column took %d iterations, want 0", iters[0])
	}
	for i := 0; i < n; i++ {
		if xI[i*nrhs] != 0 {
			t.Fatalf("zero-RHS column x[%d] = %v, want 0", i, xI[i*nrhs])
		}
	}
	if iters[1] != 0 {
		t.Fatalf("pre-converged column took %d iterations, want 0", iters[1])
	}
	// Column 2 must match its looped solve bitwise despite the frozen peers.
	ss, err := NewCGSolver(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	itWant, err := ss.Solve(xCols[2], bCols[2])
	if err != nil {
		t.Fatal(err)
	}
	if iters[2] != itWant {
		t.Fatalf("hard column: %d iterations, looped %d", iters[2], itWant)
	}
	got := make([]float64, n)
	UnpackColumn(got, xI, 2, nrhs)
	for i := range got {
		if got[i] != xCols[2][i] {
			t.Fatalf("hard column x[%d] = %v, looped %v", i, got[i], xCols[2][i])
		}
	}
}

// TestSolveBatchZeroAlloc: the batch solve hot path allocates nothing, for
// every dedicated batch preconditioner.
func TestSolveBatchZeroAlloc(t *testing.T) {
	const nrhs = 4
	for _, name := range []string{"jacobi", "ic", "cheby"} {
		a, xI, bI, _, _ := batchFixture(32, 32, nrhs, 40)
		bs, err := NewBatchCGSolver(a, nrhs, CGOptions{Tol: 1e-10, Precond: mkPre(t, a, name), Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bs.SolveBatch(xI, bI); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(3, func() {
			if _, err := bs.SolveBatch(xI, bI); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: SolveBatch allocates %v per run, want 0", name, allocs)
		}
	}
}

// TestPackUnpackColumn round-trips the interleaved layout.
func TestPackUnpackColumn(t *testing.T) {
	const n, m = 5, 3
	inter := make([]float64, n*m)
	for c := 0; c < m; c++ {
		col := make([]float64, n)
		for i := range col {
			col[i] = float64(10*c + i)
		}
		PackColumn(inter, col, c, m)
	}
	got := make([]float64, n)
	for c := 0; c < m; c++ {
		UnpackColumn(got, inter, c, m)
		for i := range got {
			if got[i] != float64(10*c+i) {
				t.Fatalf("col %d: got[%d] = %v, want %d", c, i, got[i], 10*c+i)
			}
		}
	}
}

// BenchmarkSolveBatch vs BenchmarkSolveLooped: the batched-vs-looped
// speedup pair — same 8 transient-style warm-started systems stepped
// through one matrix traversal vs eight.
const benchBatchNRHS = 8

func benchBatchSystems(b *testing.B) (*CSR, []float64, []float64) {
	a := gridLaplacianCSR(256, 256, 0.3)
	n := a.Rows()
	rng := rand.New(rand.NewSource(50))
	xI := make([]float64, n*benchBatchNRHS)
	bI := make([]float64, n*benchBatchNRHS)
	for i := range bI {
		bI[i] = rng.NormFloat64()
	}
	return a, xI, bI
}

func BenchmarkSolveBatch(b *testing.B) {
	a, xI, bI := benchBatchSystems(b)
	ic, err := NewICModified(a, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	bs, err := NewBatchCGSolver(a, benchBatchNRHS, CGOptions{Tol: 1e-10, Precond: ic})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range xI {
			xI[j] = 0
		}
		if _, err := bs.SolveBatch(xI, bI); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveLooped(b *testing.B) {
	a, xI, bI := benchBatchSystems(b)
	n := a.Rows()
	ic, err := NewICModified(a, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	ss, err := NewCGSolver(a, CGOptions{Tol: 1e-10, Precond: ic})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, n)
	rhs := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < benchBatchNRHS; c++ {
			UnpackColumn(rhs, bI, c, benchBatchNRHS)
			for j := range x {
				x[j] = 0
			}
			if _, err := ss.Solve(x, rhs); err != nil {
				b.Fatal(err)
			}
			PackColumn(xI, x, c, benchBatchNRHS)
		}
	}
}
