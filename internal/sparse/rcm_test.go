package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// shuffleSym returns P·A·Pᵀ for a random permutation — a scrambled node
// numbering of the same graph, plus the permutation used.
func shuffleSym(a *CSR, seed int64) (*CSR, []int) {
	n := a.Rows()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	return PermuteSym(a, perm), perm
}

// TestRCMIsPermutation: RCM returns each index exactly once.
func TestRCMIsPermutation(t *testing.T) {
	a := gridLaplacianCSR(21, 13, 0.3)
	perm := RCM(a)
	if len(perm) != a.Rows() {
		t.Fatalf("perm length %d, want %d", len(perm), a.Rows())
	}
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			t.Fatalf("index %d repeated or out of range", p)
		}
		seen[p] = true
	}
}

// TestRCMRecoversGridBandwidth: scrambling a grid's node numbering blows
// the bandwidth up to O(n); RCM must bring it back to the O(min(nx, ny))
// band of the natural ordering.
func TestRCMRecoversGridBandwidth(t *testing.T) {
	nx, ny := 40, 30
	a := gridLaplacianCSR(nx, ny, 0.3)
	scrambled, _ := shuffleSym(a, 17)
	bwBad := Bandwidth(scrambled)
	perm := RCM(scrambled)
	bwGood := Bandwidth(PermuteSym(scrambled, perm))
	if bwBad < 5*bwGood {
		t.Fatalf("scrambled bandwidth %d not much worse than RCM'd %d; test not probing anything", bwBad, bwGood)
	}
	// RCM on a 5-point grid lands within a small factor of min(nx, ny).
	if limit := 2*min(nx, ny) + 2; bwGood > limit {
		t.Fatalf("RCM bandwidth %d, want <= %d", bwGood, limit)
	}
}

// TestRCMLevelsStayNearWavefrontCount: after RCM the IC level count (the
// sequential depth of the parallel sweeps) lands near the mesh wavefront
// count nx+ny-1, with each level a contiguous cache-friendly index range —
// unlike scrambled orderings, whose shallow but scattered level sets
// defeat the row-partitioned sweep's locality.
func TestRCMLevelsStayNearWavefrontCount(t *testing.T) {
	nx, ny := 24, 18
	a := gridLaplacianCSR(nx, ny, 0.4)
	scrambled, _ := shuffleSym(a, 23)
	icRCM, err := NewIC(PermuteSym(scrambled, RCM(scrambled)))
	if err != nil {
		t.Fatal(err)
	}
	fwdRCM, bwdRCM := icRCM.Levels()
	if limit := 2 * (nx + ny); fwdRCM > limit || bwdRCM > limit {
		t.Fatalf("RCM levels fwd=%d bwd=%d, want <= %d (~mesh wavefront count)", fwdRCM, bwdRCM, limit)
	}
}

// TestPermuteSymValues: entry (i, j) of the permuted matrix equals
// a[perm[i], perm[j]], columns ascending.
func TestPermuteSymValues(t *testing.T) {
	a := gridLaplacianCSR(9, 7, 0.25)
	p, perm := shuffleSym(a, 31)
	n := a.Rows()
	for i := 0; i < n; i++ {
		for k := p.rowPtr[i]; k < p.rowPtr[i+1]; k++ {
			if k > p.rowPtr[i] && p.colIdx[k] <= p.colIdx[k-1] {
				t.Fatalf("row %d columns not ascending", i)
			}
			j := p.colIdx[k]
			if got, want := p.val[k], a.At(perm[i], perm[j]); got != want {
				t.Fatalf("(%d,%d) = %v, want a[%d,%d] = %v", i, j, got, perm[i], perm[j], want)
			}
		}
	}
	if p.NNZ() != a.NNZ() {
		t.Fatalf("nnz %d, want %d", p.NNZ(), a.NNZ())
	}
}

// TestPermutedSolveMatchesOriginal: solving the permuted system and mapping
// the solution back agrees with solving the original — the transparency
// contract the pdn backend relies on.
func TestPermutedSolveMatchesOriginal(t *testing.T) {
	a := gridLaplacianCSR(26, 22, 0.3)
	n := a.Rows()
	rng := rand.New(rand.NewSource(8))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, _, err := SolveCG(a, b, nil, CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	perm := RCM(a)
	pa := PermuteSym(a, perm)
	pb := make([]float64, n)
	for newI, oldI := range perm {
		pb[newI] = b[oldI]
	}
	ic, err := NewICModified(pa, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	px, _, err := SolveCG(pa, pb, nil, CGOptions{Tol: 1e-12, Precond: ic})
	if err != nil {
		t.Fatal(err)
	}
	maxDiff := 0.0
	for newI, oldI := range perm {
		if d := math.Abs(px[newI] - x[oldI]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-8 {
		t.Fatalf("permuted solve differs from original by %v", maxDiff)
	}
}

// TestRCMDisconnectedComponents: a block-diagonal graph (two separate
// grids) still yields a full valid permutation.
func TestRCMDisconnectedComponents(t *testing.T) {
	g := gridLaplacianCSR(7, 5, 0.3)
	ng := g.Rows()
	n := 2 * ng
	tr := NewTriplet(n, n)
	for i := 0; i < ng; i++ {
		for k := g.rowPtr[i]; k < g.rowPtr[i+1]; k++ {
			tr.Add(i, g.colIdx[k], g.val[k])
			tr.Add(ng+i, ng+g.colIdx[k], g.val[k])
		}
	}
	a := tr.ToCSR()
	perm := RCM(a)
	seen := make([]bool, n)
	for _, p := range perm {
		if seen[p] {
			t.Fatalf("index %d repeated", p)
		}
		seen[p] = true
	}
}
