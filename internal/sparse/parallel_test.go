package sparse

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

// workerCounts are the parallelism settings every invariance test sweeps:
// serial, two shares, and the machine default. The engine's contract is
// bitwise-identical results across all of them.
func workerCounts() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0)}
}

// refToCSR is the original map+sort Triplet build, kept verbatim as the
// golden reference for the counting-sort rewrite: accumulate duplicates in
// a map, drop zeros, emit rows with sorted columns.
func refToCSR(t *Triplet) *CSR {
	type key struct{ i, j int }
	acc := make(map[key]float64, len(t.v))
	for k := range t.v {
		acc[key{t.i[k], t.j[k]}] += t.v[k]
	}
	c := &CSR{rows: t.rows, cols: t.cols, rowPtr: make([]int, t.rows+1)}
	perRow := make([][]int, t.rows)
	for k, v := range acc {
		if v != 0 {
			perRow[k.i] = append(perRow[k.i], k.j)
		}
	}
	for i := 0; i < t.rows; i++ {
		sort.Ints(perRow[i])
		for _, j := range perRow[i] {
			c.colIdx = append(c.colIdx, j)
			c.val = append(c.val, acc[key{i, j}])
		}
		c.rowPtr[i+1] = len(c.colIdx)
	}
	return c
}

// TestToCSRMatchesReference: the two-pass counting-sort build produces the
// same structure as the map+sort reference on random triplet streams heavy
// with duplicates and exact zero cancellations.
//
// The one intended difference is duplicate summation order: the counting
// sort sums duplicates in insertion order, the map reference accumulates in
// the same insertion order too (map value += is order-preserving per key),
// so even values match bitwise.
func TestToCSRMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(12)
		tr := NewTriplet(rows, cols)
		nAdd := rng.Intn(80)
		for k := 0; k < nAdd; k++ {
			i, j := rng.Intn(rows), rng.Intn(cols)
			v := float64(rng.Intn(7) - 3) // integer values so cancellation is exact
			tr.Add(i, j, v)
			if rng.Intn(3) == 0 {
				tr.Add(i, j, -v) // force exact zero-sum duplicates
			}
		}
		got := tr.ToCSR()
		want := refToCSR(tr)
		if got.rows != want.rows || got.cols != want.cols || got.NNZ() != want.NNZ() {
			t.Fatalf("trial %d: shape/nnz %dx%d/%d, want %dx%d/%d",
				trial, got.rows, got.cols, got.NNZ(), want.rows, want.cols, want.NNZ())
		}
		for i := 0; i <= rows; i++ {
			if got.rowPtr[i] != want.rowPtr[i] {
				t.Fatalf("trial %d: rowPtr[%d] = %d, want %d", trial, i, got.rowPtr[i], want.rowPtr[i])
			}
		}
		for k := range want.val {
			if got.colIdx[k] != want.colIdx[k] || got.val[k] != want.val[k] {
				t.Fatalf("trial %d: entry %d = (%d, %v), want (%d, %v)",
					trial, k, got.colIdx[k], got.val[k], want.colIdx[k], want.val[k])
			}
		}
	}
}

// TestToCSREmptyAndAllZero: degenerate inputs — no entries, and entries
// that all cancel — produce valid empty matrices.
func TestToCSREmptyAndAllZero(t *testing.T) {
	c := NewTriplet(3, 4).ToCSR()
	if c.NNZ() != 0 || c.Rows() != 3 || c.Cols() != 4 {
		t.Fatalf("empty: nnz=%d shape=%dx%d", c.NNZ(), c.Rows(), c.Cols())
	}
	tr := NewTriplet(2, 2)
	tr.Add(1, 1, 5)
	tr.Add(1, 1, -5)
	c = tr.ToCSR()
	if c.NNZ() != 0 {
		t.Fatalf("all-zero: nnz=%d, want 0", c.NNZ())
	}
	if got := c.At(1, 1); got != 0 {
		t.Fatalf("all-zero: At(1,1)=%v", got)
	}
}

// TestSpMVDeterministicAcrossWorkerCounts: the parallel SpMV is bitwise
// identical to the serial MulVecTo at every worker count.
func TestSpMVDeterministicAcrossWorkerCounts(t *testing.T) {
	a := gridLaplacianCSR(67, 53, 0.3)
	n := a.Rows()
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	a.MulVecTo(want, x)
	for _, w := range workerCounts() {
		o := newOps(n, w)
		got := make([]float64, n)
		o.mulVec(a, got, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: y[%d] = %v, want %v (not bitwise identical)", w, i, got[i], want[i])
			}
		}
	}
}

// TestDotDeterministicAcrossWorkerCounts: the blocked reduction returns the
// same bits at every worker count (and for the serial path).
func TestDotDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, dotBlock - 1, dotBlock, 3*dotBlock + 17, 50000} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		var want float64
		for wi, w := range workerCounts() {
			o := newOps(n, w)
			got := o.dot(x, y)
			if wi == 0 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("n=%d workers=%d: dot = %v, want %v (not bitwise identical)", n, w, got, want)
			}
		}
	}
}

// TestCGInvariantUnderParallelism: full PCG solves — every preconditioner
// family — return bitwise-identical solutions and iteration counts for
// Workers ∈ {1, 2, GOMAXPROCS}.
func TestCGInvariantUnderParallelism(t *testing.T) {
	a := gridLaplacianCSR(48, 37, 0.2)
	n := a.Rows()
	rng := rand.New(rand.NewSource(3))
	b := make([]float64, n)
	x0 := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
		x0[i] = 0.1 * rng.NormFloat64() // nontrivial warm start
	}
	preconds := map[string]func() Preconditioner{
		"jacobi": func() Preconditioner { p, _ := NewJacobi(a); return p },
		"ic":     func() Preconditioner { p, _ := NewICModified(a, 1.0); return p },
		"cheby":  func() Preconditioner { p, _ := NewCheby(a, 0); return p },
	}
	for name, mk := range preconds {
		var refX []float64
		refIt := -1
		for _, w := range workerCounts() {
			s, err := NewCGSolver(a, CGOptions{Tol: 1e-11, Precond: mk(), Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			x := append([]float64(nil), x0...)
			it, err := s.Solve(x, b)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if refX == nil {
				refX, refIt = x, it
				continue
			}
			if it != refIt {
				t.Fatalf("%s workers=%d: %d iterations, want %d", name, w, it, refIt)
			}
			for i := range x {
				if x[i] != refX[i] {
					t.Fatalf("%s workers=%d: x[%d] = %v, want %v (not bitwise identical)", name, w, i, x[i], refX[i])
				}
			}
		}
	}
}

// TestICApplyTeamMatchesSerial: the level-scheduled parallel triangular
// sweeps are bitwise identical to the sequential Apply.
func TestICApplyTeamMatchesSerial(t *testing.T) {
	a := gridLaplacianCSR(41, 29, 0.4)
	n := a.Rows()
	ic, err := NewICModified(a, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	r := make([]float64, n)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	ic.Apply(want, r)
	for _, w := range workerCounts() {
		o := newOps(n, w)
		got := make([]float64, n)
		ic.applyTeam(o, got, r)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: z[%d] = %v, want %v (not bitwise identical)", w, i, got[i], want[i])
			}
		}
	}
}

// TestICLevelsAreMeshWavefronts: on an nx×ny 5-point mesh in natural order
// the forward (and backward) level sets are the anti-diagonal wavefronts:
// exactly nx+ny-1 levels.
func TestICLevelsAreMeshWavefronts(t *testing.T) {
	nx, ny := 13, 9
	a := gridLaplacianCSR(nx, ny, 0.5)
	ic, err := NewIC(a)
	if err != nil {
		t.Fatal(err)
	}
	fwd, bwd := ic.Levels()
	if want := nx + ny - 1; fwd != want || bwd != want {
		t.Fatalf("levels fwd=%d bwd=%d, want %d", fwd, bwd, want)
	}
	// Every level's rows must be solvable given earlier levels only.
	l := ic.L()
	seen := make([]bool, a.Rows())
	for lv := 0; lv < ic.fwd.numLevels(); lv++ {
		rows := ic.fwd.rows[ic.fwd.ptr[lv]:ic.fwd.ptr[lv+1]]
		for _, i := range rows {
			for k := l.rowPtr[i]; k < l.rowPtr[i+1]-1; k++ {
				if !seen[l.colIdx[k]] {
					t.Fatalf("level %d row %d depends on unsolved row %d", lv, i, l.colIdx[k])
				}
			}
		}
		for _, i := range rows {
			seen[i] = true
		}
	}
}

// TestCGSolverZeroAllocParallel: the parallel solve path allocates nothing
// in steady state, for the team-applied preconditioners.
func TestCGSolverZeroAllocParallel(t *testing.T) {
	a := gridLaplacianCSR(32, 32, 0.3)
	n := a.Rows()
	for _, name := range []string{"jacobi", "ic", "cheby"} {
		var pre Preconditioner
		var err error
		switch name {
		case "jacobi":
			pre, err = NewJacobi(a)
		case "ic":
			pre, err = NewICModified(a, 1.0)
		case "cheby":
			pre, err = NewCheby(a, 0)
		}
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewCGSolver(a, CGOptions{Tol: 1e-10, Precond: pre, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		x := make([]float64, n)
		for i := range b {
			b[i] = 1
		}
		if _, err := s.Solve(x, b); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(3, func() {
			if _, err := s.Solve(x, b); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: Solve allocates %v per run, want 0", name, allocs)
		}
	}
}

func BenchmarkSpMVSerial(b *testing.B) { benchSpMV(b, 1) }

func BenchmarkSpMVParallel(b *testing.B) { benchSpMV(b, 0) }

func benchSpMV(b *testing.B, workers int) {
	a := gridLaplacianCSR(512, 512, 0.3)
	n := a.Rows()
	o := newOps(n, workers)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%17) * 0.25
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.mulVec(a, y, x)
	}
}

func BenchmarkICApplySerial(b *testing.B) { benchICApply(b, 1) }

func BenchmarkICApplyParallel(b *testing.B) { benchICApply(b, 0) }

func benchICApply(b *testing.B, workers int) {
	a := gridLaplacianCSR(512, 512, 0.3)
	n := a.Rows()
	ic, err := NewICModified(a, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	o := newOps(n, workers)
	r := make([]float64, n)
	z := make([]float64, n)
	for i := range r {
		r[i] = float64(i%13) * 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if workers == 1 {
			ic.Apply(z, r)
		} else {
			ic.applyTeam(o, z, r)
		}
	}
}
