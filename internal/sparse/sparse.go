// Package sparse implements compressed sparse row matrices and a parallel
// preconditioned conjugate-gradient engine.
//
// It is the production transient-solve path for large power grids: past a
// half-bandwidth of ~256 the banded Cholesky in package banded stops scaling
// (O(n·bw²) factor time, O(n·bw) memory — ~8.6 GB at a 1024×1024 mesh), and
// pdn's Auto backend routes every wider or larger mesh here. The banded
// factor remains the fast path for narrow meshes and the independent
// cross-check oracle in tests; this package also handles meshes with
// irregular connectivity (extra via stitching, cut-outs) whose bandwidth
// would blow up any banded factor.
//
// The engine is parallel end to end on the mat worker pool: row-partitioned
// SpMV and fused vector kernels, level-scheduled IC(0) triangular sweeps, a
// fully parallel Chebyshev/Jacobi polynomial preconditioner (ParsePrecond
// selects between them), reverse Cuthill–McKee reordering (RCM/PermuteSym)
// for cache locality and tighter level sets, and a blocked multi-RHS PCG
// (BatchCGSolver) that steps many transients through one matrix traversal.
// Everything preserves the house invariant: results are bitwise identical
// across worker counts, and the solve hot loops allocate nothing.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoConvergence is returned when CG fails to reach the requested tolerance
// within the iteration budget.
var ErrNoConvergence = errors.New("sparse: conjugate gradient did not converge")

// Triplet accumulates (i, j, v) entries for building a CSR matrix. Duplicate
// coordinates are summed, which makes circuit-style stamping natural.
type Triplet struct {
	rows, cols int
	i, j       []int
	v          []float64
}

// NewTriplet returns an empty accumulator for an r-by-c matrix.
func NewTriplet(r, c int) *Triplet {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %dx%d", r, c))
	}
	return &Triplet{rows: r, cols: c}
}

// Add accumulates v at (i, j).
func (t *Triplet) Add(i, j int, v float64) {
	if i < 0 || i >= t.rows || j < 0 || j >= t.cols {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of range %dx%d", i, j, t.rows, t.cols))
	}
	t.i = append(t.i, i)
	t.j = append(t.j, j)
	t.v = append(t.v, v)
}

// ToCSR compacts the accumulated triplets into a CSR matrix, summing
// duplicates and dropping exact zeros. The build is a two-pass counting
// sort — stable by column, then by row — followed by a linear merge of
// adjacent duplicates: O(nnz + rows + cols) with no map and no comparison
// sort, which is what keeps assembly linear at million-node grids.
func (t *Triplet) ToCSR() *CSR {
	nnz := len(t.v)
	// Pass 1: stable counting sort by column.
	count := make([]int, maxInt(t.cols, t.rows)+1)
	for _, j := range t.j {
		count[j+1]++
	}
	for j := 0; j < t.cols; j++ {
		count[j+1] += count[j]
	}
	bi := make([]int, nnz)
	bj := make([]int, nnz)
	bv := make([]float64, nnz)
	for k := 0; k < nnz; k++ {
		p := count[t.j[k]]
		count[t.j[k]]++
		bi[p], bj[p], bv[p] = t.i[k], t.j[k], t.v[k]
	}
	// Pass 2: stable counting sort by row. Stability preserves the column
	// order within each row, so the result is sorted by (row, col).
	for i := range count[:t.rows+1] {
		count[i] = 0
	}
	for _, i := range bi {
		count[i+1]++
	}
	for i := 0; i < t.rows; i++ {
		count[i+1] += count[i]
	}
	ci := make([]int, nnz)
	cj := make([]int, nnz)
	cv := make([]float64, nnz)
	for k := 0; k < nnz; k++ {
		p := count[bi[k]]
		count[bi[k]]++
		ci[p], cj[p], cv[p] = bi[k], bj[k], bv[k]
	}
	// Merge adjacent duplicates and drop exact zeros while building the CSR.
	c := &CSR{rows: t.rows, cols: t.cols, rowPtr: make([]int, t.rows+1)}
	for k := 0; k < nnz; {
		i, j, v := ci[k], cj[k], cv[k]
		for k++; k < nnz && ci[k] == i && cj[k] == j; k++ {
			v += cv[k]
		}
		if v != 0 {
			c.rowPtr[i+1]++
			c.colIdx = append(c.colIdx, j)
			c.val = append(c.val, v)
		}
	}
	for i := 0; i < t.rows; i++ {
		c.rowPtr[i+1] += c.rowPtr[i]
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	val        []float64
}

// NewCSR wraps pre-built CSR arrays without copying. Column indices must be
// strictly ascending within each row. This is the fast path for regular
// stencils (million-node grids) where the map-based Triplet accumulator is
// too slow; the structure is validated once and panics on malformed input
// since that is a programming error, matching the package's style.
func NewCSR(rows, cols int, rowPtr, colIdx []int, val []float64) *CSR {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %dx%d", rows, cols))
	}
	if len(rowPtr) != rows+1 || rowPtr[0] != 0 {
		panic(fmt.Sprintf("sparse: NewCSR rowPtr length %d, want %d starting at 0", len(rowPtr), rows+1))
	}
	if len(colIdx) != rowPtr[rows] || len(val) != rowPtr[rows] {
		panic(fmt.Sprintf("sparse: NewCSR %d cols / %d vals, rowPtr ends at %d", len(colIdx), len(val), rowPtr[rows]))
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i+1] < rowPtr[i] {
			panic(fmt.Sprintf("sparse: NewCSR rowPtr decreases at row %d", i))
		}
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			if colIdx[k] < 0 || colIdx[k] >= cols {
				panic(fmt.Sprintf("sparse: NewCSR column %d out of range at row %d", colIdx[k], i))
			}
			if k > rowPtr[i] && colIdx[k] <= colIdx[k-1] {
				panic(fmt.Sprintf("sparse: NewCSR columns not strictly ascending in row %d", i))
			}
		}
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// Rows returns the number of rows.
func (c *CSR) Rows() int { return c.rows }

// Cols returns the number of columns.
func (c *CSR) Cols() int { return c.cols }

// NNZ returns the number of stored nonzeros.
func (c *CSR) NNZ() int { return len(c.val) }

// At returns element (i, j) with a binary search over row i.
func (c *CSR) At(i, j int) float64 {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of range %dx%d", i, j, c.rows, c.cols))
	}
	lo, hi := c.rowPtr[i], c.rowPtr[i+1]
	k := lo + sort.SearchInts(c.colIdx[lo:hi], j)
	if k < hi && c.colIdx[k] == j {
		return c.val[k]
	}
	return 0
}

// MulVec returns c * x.
func (c *CSR) MulVec(x []float64) []float64 {
	y := make([]float64, c.rows)
	c.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = c * x without allocating.
func (c *CSR) MulVecTo(y, x []float64) {
	if len(x) != c.cols || len(y) != c.rows {
		panic(fmt.Sprintf("sparse: MulVecTo shapes y=%d x=%d, want %d/%d", len(y), len(x), c.rows, c.cols))
	}
	for i := 0; i < c.rows; i++ {
		s := 0.0
		for k := c.rowPtr[i]; k < c.rowPtr[i+1]; k++ {
			s += c.val[k] * x[c.colIdx[k]]
		}
		y[i] = s
	}
}

// Diag returns a copy of the main diagonal.
func (c *CSR) Diag() []float64 {
	n := c.rows
	if c.cols < n {
		n = c.cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = c.At(i, i)
	}
	return d
}

// Preconditioner approximates A⁻¹ for conjugate gradient: Apply writes
// z = M⁻¹·r. Implementations must not alias z and r and must not allocate,
// so solvers built on them stay allocation-free in steady state.
type Preconditioner interface {
	Apply(z, r []float64)
}

// Identity is the no-op preconditioner (plain CG).
type Identity struct{}

// Apply copies r into z.
func (Identity) Apply(z, r []float64) { copy(z, r) }

// Jacobi is the diagonal preconditioner M = diag(A).
type Jacobi struct {
	invD []float64

	// staged operands + prebuilt stage for the parallel applyTeam path.
	z, r  []float64
	stage func(lo, hi int)
}

// NewJacobi builds a Jacobi preconditioner, rejecting non-positive
// diagonals since those contradict the SPD contract.
func NewJacobi(a *CSR) (*Jacobi, error) {
	invD := a.Diag()
	for i, d := range invD {
		if d <= 0 {
			return nil, fmt.Errorf("sparse: non-positive diagonal %g at %d; matrix not SPD", d, i)
		}
		invD[i] = 1 / d
	}
	j := &Jacobi{invD: invD}
	j.stage = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			j.z[i] = j.invD[i] * j.r[i]
		}
	}
	return j, nil
}

// Apply computes z = diag(A)⁻¹ r.
func (j *Jacobi) Apply(z, r []float64) {
	for i, d := range j.invD {
		z[i] = d * r[i]
	}
}

// CGOptions configures SolveCG and NewCGSolver.
type CGOptions struct {
	Tol     float64 // relative residual target; default 1e-10
	MaxIter int     // default 10 * n
	// Precond overrides the default Jacobi preconditioner. Use Identity{}
	// for unpreconditioned CG, NewIC(a) for incomplete Cholesky, or
	// NewCheby(a, deg) for the fully parallel polynomial preconditioner.
	Precond Preconditioner
	// Workers bounds the parallel shares of every kernel in the solve
	// (SpMV, reductions, preconditioner sweeps). 0 means the mat pool
	// default (SetParallelism / GOMAXPROCS); 1 forces serial execution.
	// Results are bitwise identical for every setting.
	Workers int
}

// CGSolver is a reusable preconditioned conjugate-gradient solver: all
// workspace — including the parallel kernel stages — is allocated once at
// construction so repeated Solve calls (the transient-stepping hot loop) run
// with zero allocations. A CGSolver is not safe for concurrent use.
type CGSolver struct {
	a       *CSR
	pre     Preconditioner
	preTeam teamPreconditioner // non-nil when pre supports team application
	tol     float64
	maxIter int
	o       *ops
	r, z    []float64
	p, ap   []float64
}

// NewCGSolver prepares a solver for the SPD matrix a. With opt.Precond nil
// it builds a Jacobi preconditioner, which fails on non-positive diagonals.
func NewCGSolver(a *CSR, opt CGOptions) (*CGSolver, error) {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("sparse: CG needs square matrix, got %dx%d", a.rows, a.cols))
	}
	pre := opt.Precond
	if pre == nil {
		j, err := NewJacobi(a)
		if err != nil {
			return nil, err
		}
		pre = j
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	s := &CGSolver{
		a: a, pre: pre, tol: tol, maxIter: maxIter,
		o: newOps(n, opt.Workers),
		r: make([]float64, n), z: make([]float64, n),
		p: make([]float64, n), ap: make([]float64, n),
	}
	s.preTeam, _ = pre.(teamPreconditioner)
	return s, nil
}

// applyPre applies the preconditioner on the team when it supports it.
func (s *CGSolver) applyPre(z, r []float64) {
	if s.preTeam != nil {
		s.preTeam.applyTeam(s.o, z, r)
	} else {
		s.pre.Apply(z, r)
	}
}

// Solve solves A x = b in place: x holds the initial guess on entry (the
// warm start) and the solution on return. It returns the iteration count
// and allocates nothing. Every kernel runs on the worker team; the result
// is bitwise identical for every worker count.
func (s *CGSolver) Solve(x, b []float64) (int, error) {
	n := s.a.rows
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("sparse: Solve lengths x=%d b=%d, want %d", len(x), len(b), n))
	}
	bnorm := math.Sqrt(s.o.dot(b, b))
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return 0, nil
	}
	s.o.mulVec(s.a, s.r, x)
	s.o.sub(s.r, b)
	if math.Sqrt(s.o.dot(s.r, s.r)) <= s.tol*bnorm {
		return 0, nil // warm start already within tolerance
	}
	s.applyPre(s.z, s.r)
	copy(s.p, s.z)
	rz := s.o.dot(s.r, s.z)
	for it := 1; it <= s.maxIter; it++ {
		s.o.mulVec(s.a, s.ap, s.p)
		pap := s.o.dot(s.p, s.ap)
		if pap <= 0 {
			return it, fmt.Errorf("sparse: pᵀAp = %g <= 0; matrix not SPD", pap)
		}
		alpha := rz / pap
		s.o.axpy2(alpha, x, s.p, s.r, s.ap)
		if math.Sqrt(s.o.dot(s.r, s.r)) <= s.tol*bnorm {
			return it, nil
		}
		s.applyPre(s.z, s.r)
		rzNew := s.o.dot(s.r, s.z)
		beta := rzNew / rz
		rz = rzNew
		s.o.xpby(s.p, s.z, beta)
	}
	return s.maxIter, ErrNoConvergence
}

// SolveCG solves the symmetric positive definite system A x = b with
// preconditioned conjugate gradient (Jacobi unless opt.Precond says
// otherwise), starting from x0 (nil means zero). It returns the solution
// and the iteration count. One-shot convenience over CGSolver.
func SolveCG(a *CSR, b, x0 []float64, opt CGOptions) ([]float64, int, error) {
	n := a.rows
	if len(b) != n {
		panic(fmt.Sprintf("sparse: SolveCG rhs length %d, want %d", len(b), n))
	}
	s, err := NewCGSolver(a, opt)
	if err != nil {
		return nil, 0, err
	}
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	it, err := s.Solve(x, b)
	if err != nil {
		return nil, it, err
	}
	return x, it, nil
}

func dot(x, y []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

func norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
