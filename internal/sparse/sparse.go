// Package sparse implements compressed sparse row matrices and a
// preconditioned conjugate-gradient solver.
//
// The banded Cholesky in package banded is the production path for the
// power-grid transient solve; this package provides the independent solver
// used to cross-check it in tests, and handles meshes with irregular
// connectivity (extra via stitching, cut-outs) whose bandwidth would blow up
// the banded factor.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoConvergence is returned when CG fails to reach the requested tolerance
// within the iteration budget.
var ErrNoConvergence = errors.New("sparse: conjugate gradient did not converge")

// Triplet accumulates (i, j, v) entries for building a CSR matrix. Duplicate
// coordinates are summed, which makes circuit-style stamping natural.
type Triplet struct {
	rows, cols int
	i, j       []int
	v          []float64
}

// NewTriplet returns an empty accumulator for an r-by-c matrix.
func NewTriplet(r, c int) *Triplet {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %dx%d", r, c))
	}
	return &Triplet{rows: r, cols: c}
}

// Add accumulates v at (i, j).
func (t *Triplet) Add(i, j int, v float64) {
	if i < 0 || i >= t.rows || j < 0 || j >= t.cols {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of range %dx%d", i, j, t.rows, t.cols))
	}
	t.i = append(t.i, i)
	t.j = append(t.j, j)
	t.v = append(t.v, v)
}

// ToCSR compacts the accumulated triplets into a CSR matrix, summing
// duplicates and dropping exact zeros.
func (t *Triplet) ToCSR() *CSR {
	type key struct{ i, j int }
	sum := make(map[key]float64, len(t.v))
	for k := range t.v {
		sum[key{t.i[k], t.j[k]}] += t.v[k]
	}
	keys := make([]key, 0, len(sum))
	for k, v := range sum {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].i != keys[b].i {
			return keys[a].i < keys[b].i
		}
		return keys[a].j < keys[b].j
	})
	c := &CSR{
		rows: t.rows, cols: t.cols,
		rowPtr: make([]int, t.rows+1),
		colIdx: make([]int, len(keys)),
		val:    make([]float64, len(keys)),
	}
	for n, k := range keys {
		c.rowPtr[k.i+1]++
		c.colIdx[n] = k.j
		c.val[n] = sum[k]
	}
	for i := 0; i < t.rows; i++ {
		c.rowPtr[i+1] += c.rowPtr[i]
	}
	return c
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	val        []float64
}

// Rows returns the number of rows.
func (c *CSR) Rows() int { return c.rows }

// Cols returns the number of columns.
func (c *CSR) Cols() int { return c.cols }

// NNZ returns the number of stored nonzeros.
func (c *CSR) NNZ() int { return len(c.val) }

// At returns element (i, j) with a binary search over row i.
func (c *CSR) At(i, j int) float64 {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of range %dx%d", i, j, c.rows, c.cols))
	}
	lo, hi := c.rowPtr[i], c.rowPtr[i+1]
	k := lo + sort.SearchInts(c.colIdx[lo:hi], j)
	if k < hi && c.colIdx[k] == j {
		return c.val[k]
	}
	return 0
}

// MulVec returns c * x.
func (c *CSR) MulVec(x []float64) []float64 {
	y := make([]float64, c.rows)
	c.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = c * x without allocating.
func (c *CSR) MulVecTo(y, x []float64) {
	if len(x) != c.cols || len(y) != c.rows {
		panic(fmt.Sprintf("sparse: MulVecTo shapes y=%d x=%d, want %d/%d", len(y), len(x), c.rows, c.cols))
	}
	for i := 0; i < c.rows; i++ {
		s := 0.0
		for k := c.rowPtr[i]; k < c.rowPtr[i+1]; k++ {
			s += c.val[k] * x[c.colIdx[k]]
		}
		y[i] = s
	}
}

// Diag returns a copy of the main diagonal.
func (c *CSR) Diag() []float64 {
	n := c.rows
	if c.cols < n {
		n = c.cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = c.At(i, i)
	}
	return d
}

// CGOptions configures SolveCG.
type CGOptions struct {
	Tol     float64 // relative residual target; default 1e-10
	MaxIter int     // default 10 * n
}

// SolveCG solves the symmetric positive definite system A x = b with
// Jacobi-preconditioned conjugate gradient, starting from x0 (nil means
// zero). It returns the solution and the iteration count.
func SolveCG(a *CSR, b, x0 []float64, opt CGOptions) ([]float64, int, error) {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("sparse: SolveCG needs square matrix, got %dx%d", a.rows, a.cols))
	}
	if len(b) != n {
		panic(fmt.Sprintf("sparse: SolveCG rhs length %d, want %d", len(b), n))
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	r := make([]float64, n)
	a.MulVecTo(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	// Jacobi preconditioner.
	invD := a.Diag()
	for i, d := range invD {
		if d <= 0 {
			return nil, 0, fmt.Errorf("sparse: non-positive diagonal %g at %d; matrix not SPD", d, i)
		}
		invD[i] = 1 / d
	}
	z := make([]float64, n)
	for i := range z {
		z[i] = invD[i] * r[i]
	}
	p := make([]float64, n)
	copy(p, z)
	ap := make([]float64, n)

	bnorm := norm2(b)
	if bnorm == 0 {
		return x, 0, nil // b = 0 → x = x0 already has residual ‖b‖ = 0 target
	}
	rz := dot(r, z)
	for it := 1; it <= maxIter; it++ {
		a.MulVecTo(ap, p)
		pap := dot(p, ap)
		if pap <= 0 {
			return nil, it, fmt.Errorf("sparse: pᵀAp = %g <= 0; matrix not SPD", pap)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		if norm2(r) <= tol*bnorm {
			return x, it, nil
		}
		for i := range z {
			z[i] = invD[i] * r[i]
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return nil, maxIter, ErrNoConvergence
}

func dot(x, y []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

func norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
