// Package sparse implements compressed sparse row matrices and a
// preconditioned conjugate-gradient solver.
//
// The banded Cholesky in package banded is the production path for the
// power-grid transient solve; this package provides the independent solver
// used to cross-check it in tests, and handles meshes with irregular
// connectivity (extra via stitching, cut-outs) whose bandwidth would blow up
// the banded factor.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoConvergence is returned when CG fails to reach the requested tolerance
// within the iteration budget.
var ErrNoConvergence = errors.New("sparse: conjugate gradient did not converge")

// Triplet accumulates (i, j, v) entries for building a CSR matrix. Duplicate
// coordinates are summed, which makes circuit-style stamping natural.
type Triplet struct {
	rows, cols int
	i, j       []int
	v          []float64
}

// NewTriplet returns an empty accumulator for an r-by-c matrix.
func NewTriplet(r, c int) *Triplet {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %dx%d", r, c))
	}
	return &Triplet{rows: r, cols: c}
}

// Add accumulates v at (i, j).
func (t *Triplet) Add(i, j int, v float64) {
	if i < 0 || i >= t.rows || j < 0 || j >= t.cols {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of range %dx%d", i, j, t.rows, t.cols))
	}
	t.i = append(t.i, i)
	t.j = append(t.j, j)
	t.v = append(t.v, v)
}

// ToCSR compacts the accumulated triplets into a CSR matrix, summing
// duplicates and dropping exact zeros.
func (t *Triplet) ToCSR() *CSR {
	type key struct{ i, j int }
	sum := make(map[key]float64, len(t.v))
	for k := range t.v {
		sum[key{t.i[k], t.j[k]}] += t.v[k]
	}
	keys := make([]key, 0, len(sum))
	for k, v := range sum {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].i != keys[b].i {
			return keys[a].i < keys[b].i
		}
		return keys[a].j < keys[b].j
	})
	c := &CSR{
		rows: t.rows, cols: t.cols,
		rowPtr: make([]int, t.rows+1),
		colIdx: make([]int, len(keys)),
		val:    make([]float64, len(keys)),
	}
	for n, k := range keys {
		c.rowPtr[k.i+1]++
		c.colIdx[n] = k.j
		c.val[n] = sum[k]
	}
	for i := 0; i < t.rows; i++ {
		c.rowPtr[i+1] += c.rowPtr[i]
	}
	return c
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	val        []float64
}

// NewCSR wraps pre-built CSR arrays without copying. Column indices must be
// strictly ascending within each row. This is the fast path for regular
// stencils (million-node grids) where the map-based Triplet accumulator is
// too slow; the structure is validated once and panics on malformed input
// since that is a programming error, matching the package's style.
func NewCSR(rows, cols int, rowPtr, colIdx []int, val []float64) *CSR {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %dx%d", rows, cols))
	}
	if len(rowPtr) != rows+1 || rowPtr[0] != 0 {
		panic(fmt.Sprintf("sparse: NewCSR rowPtr length %d, want %d starting at 0", len(rowPtr), rows+1))
	}
	if len(colIdx) != rowPtr[rows] || len(val) != rowPtr[rows] {
		panic(fmt.Sprintf("sparse: NewCSR %d cols / %d vals, rowPtr ends at %d", len(colIdx), len(val), rowPtr[rows]))
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i+1] < rowPtr[i] {
			panic(fmt.Sprintf("sparse: NewCSR rowPtr decreases at row %d", i))
		}
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			if colIdx[k] < 0 || colIdx[k] >= cols {
				panic(fmt.Sprintf("sparse: NewCSR column %d out of range at row %d", colIdx[k], i))
			}
			if k > rowPtr[i] && colIdx[k] <= colIdx[k-1] {
				panic(fmt.Sprintf("sparse: NewCSR columns not strictly ascending in row %d", i))
			}
		}
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// Rows returns the number of rows.
func (c *CSR) Rows() int { return c.rows }

// Cols returns the number of columns.
func (c *CSR) Cols() int { return c.cols }

// NNZ returns the number of stored nonzeros.
func (c *CSR) NNZ() int { return len(c.val) }

// At returns element (i, j) with a binary search over row i.
func (c *CSR) At(i, j int) float64 {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of range %dx%d", i, j, c.rows, c.cols))
	}
	lo, hi := c.rowPtr[i], c.rowPtr[i+1]
	k := lo + sort.SearchInts(c.colIdx[lo:hi], j)
	if k < hi && c.colIdx[k] == j {
		return c.val[k]
	}
	return 0
}

// MulVec returns c * x.
func (c *CSR) MulVec(x []float64) []float64 {
	y := make([]float64, c.rows)
	c.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = c * x without allocating.
func (c *CSR) MulVecTo(y, x []float64) {
	if len(x) != c.cols || len(y) != c.rows {
		panic(fmt.Sprintf("sparse: MulVecTo shapes y=%d x=%d, want %d/%d", len(y), len(x), c.rows, c.cols))
	}
	for i := 0; i < c.rows; i++ {
		s := 0.0
		for k := c.rowPtr[i]; k < c.rowPtr[i+1]; k++ {
			s += c.val[k] * x[c.colIdx[k]]
		}
		y[i] = s
	}
}

// Diag returns a copy of the main diagonal.
func (c *CSR) Diag() []float64 {
	n := c.rows
	if c.cols < n {
		n = c.cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = c.At(i, i)
	}
	return d
}

// Preconditioner approximates A⁻¹ for conjugate gradient: Apply writes
// z = M⁻¹·r. Implementations must not alias z and r and must not allocate,
// so solvers built on them stay allocation-free in steady state.
type Preconditioner interface {
	Apply(z, r []float64)
}

// Identity is the no-op preconditioner (plain CG).
type Identity struct{}

// Apply copies r into z.
func (Identity) Apply(z, r []float64) { copy(z, r) }

// Jacobi is the diagonal preconditioner M = diag(A).
type Jacobi struct{ invD []float64 }

// NewJacobi builds a Jacobi preconditioner, rejecting non-positive
// diagonals since those contradict the SPD contract.
func NewJacobi(a *CSR) (*Jacobi, error) {
	invD := a.Diag()
	for i, d := range invD {
		if d <= 0 {
			return nil, fmt.Errorf("sparse: non-positive diagonal %g at %d; matrix not SPD", d, i)
		}
		invD[i] = 1 / d
	}
	return &Jacobi{invD: invD}, nil
}

// Apply computes z = diag(A)⁻¹ r.
func (j *Jacobi) Apply(z, r []float64) {
	for i, d := range j.invD {
		z[i] = d * r[i]
	}
}

// CGOptions configures SolveCG and NewCGSolver.
type CGOptions struct {
	Tol     float64 // relative residual target; default 1e-10
	MaxIter int     // default 10 * n
	// Precond overrides the default Jacobi preconditioner. Use Identity{}
	// for unpreconditioned CG or NewIC(a) for incomplete Cholesky.
	Precond Preconditioner
}

// CGSolver is a reusable preconditioned conjugate-gradient solver: all
// workspace is allocated once at construction so repeated Solve calls (the
// transient-stepping hot loop) run with zero allocations.
type CGSolver struct {
	a       *CSR
	pre     Preconditioner
	tol     float64
	maxIter int
	r, z    []float64
	p, ap   []float64
}

// NewCGSolver prepares a solver for the SPD matrix a. With opt.Precond nil
// it builds a Jacobi preconditioner, which fails on non-positive diagonals.
func NewCGSolver(a *CSR, opt CGOptions) (*CGSolver, error) {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("sparse: CG needs square matrix, got %dx%d", a.rows, a.cols))
	}
	pre := opt.Precond
	if pre == nil {
		j, err := NewJacobi(a)
		if err != nil {
			return nil, err
		}
		pre = j
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	return &CGSolver{
		a: a, pre: pre, tol: tol, maxIter: maxIter,
		r: make([]float64, n), z: make([]float64, n),
		p: make([]float64, n), ap: make([]float64, n),
	}, nil
}

// Solve solves A x = b in place: x holds the initial guess on entry (the
// warm start) and the solution on return. It returns the iteration count
// and allocates nothing.
func (s *CGSolver) Solve(x, b []float64) (int, error) {
	n := s.a.rows
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("sparse: Solve lengths x=%d b=%d, want %d", len(x), len(b), n))
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return 0, nil
	}
	s.a.MulVecTo(s.r, x)
	for i := range s.r {
		s.r[i] = b[i] - s.r[i]
	}
	if norm2(s.r) <= s.tol*bnorm {
		return 0, nil // warm start already within tolerance
	}
	s.pre.Apply(s.z, s.r)
	copy(s.p, s.z)
	rz := dot(s.r, s.z)
	for it := 1; it <= s.maxIter; it++ {
		s.a.MulVecTo(s.ap, s.p)
		pap := dot(s.p, s.ap)
		if pap <= 0 {
			return it, fmt.Errorf("sparse: pᵀAp = %g <= 0; matrix not SPD", pap)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * s.p[i]
			s.r[i] -= alpha * s.ap[i]
		}
		if norm2(s.r) <= s.tol*bnorm {
			return it, nil
		}
		s.pre.Apply(s.z, s.r)
		rzNew := dot(s.r, s.z)
		beta := rzNew / rz
		rz = rzNew
		for i := range s.p {
			s.p[i] = s.z[i] + beta*s.p[i]
		}
	}
	return s.maxIter, ErrNoConvergence
}

// SolveCG solves the symmetric positive definite system A x = b with
// preconditioned conjugate gradient (Jacobi unless opt.Precond says
// otherwise), starting from x0 (nil means zero). It returns the solution
// and the iteration count. One-shot convenience over CGSolver.
func SolveCG(a *CSR, b, x0 []float64, opt CGOptions) ([]float64, int, error) {
	n := a.rows
	if len(b) != n {
		panic(fmt.Sprintf("sparse: SolveCG rhs length %d, want %d", len(b), n))
	}
	s, err := NewCGSolver(a, opt)
	if err != nil {
		return nil, 0, err
	}
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	it, err := s.Solve(x, b)
	if err != nil {
		return nil, it, err
	}
	return x, it, nil
}

func dot(x, y []float64) float64 {
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

func norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
