package sparse

import "fmt"

// Cheby is a Chebyshev polynomial preconditioner over Jacobi scaling:
// Apply(z, r) runs a fixed number of Chebyshev semi-iterations on the
// diagonally scaled system, which makes z = p(D⁻¹A) D⁻¹ r for a fixed
// polynomial p that approximates the inverse on the estimated spectrum
// [λmin, λmax] of D⁻¹A. Because p is fixed and D is SPD, the operator is a
// symmetric positive definite preconditioner — legal inside plain PCG.
//
// Unlike the IC triangular sweeps, every flop here is an SpMV or an
// elementwise update, so the application parallelizes perfectly: this is
// the preconditioner of choice when cores are plentiful and the sequential
// depth of level-scheduled sweeps (the mesh wavefront count) would bound
// the speedup.
type Cheby struct {
	a      *CSR
	invD   []float64
	degree int
	lmin   float64
	lmax   float64

	// workspace + staged operands for the prebuilt stages; Apply and
	// applyTeam allocate nothing.
	res, w, d []float64
	z, r      []float64
	s1, s2    float64
	stScaleW  func(lo, hi int) // w = invD ⊙ res
	stFirst   func(lo, hi int) // z = s1 · invD ⊙ r; d = z
	stUpdate  func(lo, hi int) // d = s1·d + s2·w; z += d
	stResid   func(lo, hi int) // res = r - res   (after res = A z)
}

// DefaultChebyDegree is the SpMV count per application: enough that
// Chebyshev-PCG iteration counts land near IC-PCG on mesh Laplacians while
// every flop stays parallel.
const DefaultChebyDegree = 8

// NewCheby builds a degree-deg Chebyshev preconditioner for the SPD matrix
// a (deg <= 0 uses DefaultChebyDegree). The spectrum bound of D⁻¹A is
// estimated with a deterministic power iteration; λmin is taken as a fixed
// fraction of λmax, the standard smoother heuristic — eigenvalues below the
// interval are handled by the outer CG, not the polynomial.
func NewCheby(a *CSR, deg int) (*Cheby, error) {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("sparse: NewCheby needs square matrix, got %dx%d", a.rows, a.cols))
	}
	if deg <= 0 {
		deg = DefaultChebyDegree
	}
	j, err := NewJacobi(a) // rejects non-positive diagonals
	if err != nil {
		return nil, err
	}
	c := &Cheby{
		a: a, invD: j.invD, degree: deg,
		res: make([]float64, n), w: make([]float64, n), d: make([]float64, n),
	}
	c.lmax = c.estimateLambdaMax()
	// λmax/30 brackets the smooth end tightly enough that the polynomial
	// stays positive and effective on mesh Laplacians; the exact lower
	// bound only tunes the iteration count, never correctness.
	c.lmin = c.lmax / 30
	c.stScaleW = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c.w[i] = c.invD[i] * c.res[i]
		}
	}
	c.stFirst = func(lo, hi int) {
		s := c.s1
		for i := lo; i < hi; i++ {
			v := s * c.invD[i] * c.r[i]
			c.z[i] = v
			c.d[i] = v
		}
	}
	c.stUpdate = func(lo, hi int) {
		a1, a2 := c.s1, c.s2
		for i := lo; i < hi; i++ {
			c.d[i] = a1*c.d[i] + a2*c.w[i]
			c.z[i] += c.d[i]
		}
	}
	c.stResid = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c.res[i] = c.r[i] - c.res[i]
		}
	}
	return c, nil
}

// estimateLambdaMax runs a deterministic power iteration on D⁻¹A (similarity
// transform of the symmetric D^{-1/2}AD^{-1/2}, so the eigenvalues are real
// and positive) and pads the estimate by 5% so the Chebyshev interval covers
// the true spectrum edge.
func (c *Cheby) estimateLambdaMax() float64 {
	n := c.a.rows
	v := make([]float64, n)
	av := make([]float64, n)
	for i := range v {
		// Fixed sign-alternating start vector: deterministic, rich in the
		// high-frequency modes that carry λmax on mesh Laplacians.
		if i%2 == 0 {
			v[i] = 1
		} else {
			v[i] = -1
		}
	}
	lambda := 1.0
	for it := 0; it < 20; it++ {
		c.a.MulVecTo(av, v)
		for i := range av {
			av[i] *= c.invD[i]
		}
		nrm := norm2(av)
		if nrm == 0 {
			break
		}
		lambda = nrm / norm2(v)
		for i := range v {
			v[i] = av[i] / nrm
		}
	}
	// One Rayleigh-quotient-style refinement via the iterate norm ratio has
	// already converged to a couple of digits after 20 iterations; the 5%
	// headroom absorbs the rest.
	return 1.05 * lambda
}

// Degree returns the SpMV count per application.
func (c *Cheby) Degree() int { return c.degree }

// Bounds returns the Chebyshev interval [λmin, λmax] used for D⁻¹A.
func (c *Cheby) Bounds() (lmin, lmax float64) { return c.lmin, c.lmax }

// Apply runs the serial Chebyshev semi-iteration: z := p(D⁻¹A) D⁻¹ r.
func (c *Cheby) Apply(z, r []float64) {
	c.applyStages(z, r, nil)
}

// applyTeam is the parallel application: identical operation order per
// element, every stage on the worker team.
func (c *Cheby) applyTeam(o *ops, z, r []float64) {
	c.applyStages(z, r, o)
}

// applyStages runs the semi-iteration with each stage either inline (o nil)
// or on the team. The recurrence is the standard two-term Chebyshev
// acceleration: with θ = (λmax+λmin)/2, δ = (λmax−λmin)/2, σ = θ/δ,
//
//	z₁ = (1/θ) D⁻¹ r,      d₀ = z₁,      ρ₀ = 1/σ
//	ρ_k = 1/(2σ − ρ_{k−1})
//	d_k = ρ_k ρ_{k−1} d_{k−1} + (2ρ_k/δ) D⁻¹ (r − A z_k)
//	z_{k+1} = z_k + d_k
func (c *Cheby) applyStages(z, r []float64, o *ops) {
	n := c.a.rows
	if len(z) != n || len(r) != n {
		panic(fmt.Sprintf("sparse: Cheby.Apply lengths z=%d r=%d, want %d", len(z), len(r), n))
	}
	theta := (c.lmax + c.lmin) / 2
	delta := (c.lmax - c.lmin) / 2
	sigma := theta / delta
	c.z, c.r = z, r
	c.s1 = 1 / theta
	c.runStage(o, n, c.stFirst)
	rho := 1 / sigma
	for k := 1; k < c.degree; k++ {
		// res = r - A z, then w = D⁻¹ res.
		if o != nil {
			o.mulVec(c.a, c.res, z)
		} else {
			c.a.MulVecTo(c.res, z)
		}
		c.runStage(o, n, c.stResid)
		c.runStage(o, n, c.stScaleW)
		rhoNew := 1 / (2*sigma - rho)
		c.s1 = rhoNew * rho
		c.s2 = 2 * rhoNew / delta
		c.runStage(o, n, c.stUpdate)
		rho = rhoNew
	}
	c.z, c.r = nil, nil
}

func (c *Cheby) runStage(o *ops, n int, fn func(lo, hi int)) {
	if o != nil {
		o.t.run(n, vecChunk, fn)
	} else {
		fn(0, n)
	}
}

// SPD note: the applied polynomial is positive on [λmin, λmax], so the
// preconditioner stays symmetric positive definite as long as the padded
// power-iteration bound covers the true λmax. The invariant is exercised by
// the PCG-equivalence property tests rather than enforced at runtime.
var _ Preconditioner = (*Cheby)(nil)
